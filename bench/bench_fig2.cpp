// Figure 2 reproduction: Vdd^{1/alpha} and its linear approximation
// A*Vdd + B for alpha = 1.5 on [0.3, 0.9] (the figure's parameters), plus
// the paper's published fit A = 0.671 / B = 0.347 for alpha = 1.86 on
// [0.3, 1.0].
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "tech/linearization.h"
#include "util/ascii_plot.h"
#include "util/csv.h"

namespace optpower {
namespace {

void print_figure2() {
  bench::print_header("Figure 2: Vdd^{1/alpha} [*] vs linear approximation [-], alpha = 1.5");
  const Linearization lin = linearize_vdd_root(1.5, 0.3, 0.9);

  AsciiPlot plot({.width = 72, .height = 20,
                  .title = "Vdd^(1/1.5) and A*Vdd+B on [0.3, 0.9] V",
                  .x_label = "Vdd [V]"});
  PlotSeries exact, approx;
  CsvWriter csv({"vdd", "exact", "approx", "error"});
  for (int i = 0; i <= 60; ++i) {
    const double v = 0.3 + 0.6 * i / 60.0;
    const double e = std::pow(v, 1.0 / 1.5);
    exact.x.push_back(v);
    exact.y.push_back(e);
    approx.x.push_back(v);
    approx.y.push_back(lin(v));
    csv.add_row(std::vector<double>{v, e, lin(v), e - lin(v)});
  }
  exact.glyph = '*';
  exact.label = "Vdd^(1/alpha)";
  approx.glyph = '-';
  approx.label = "A*Vdd+B";
  plot.add_series(exact);
  plot.add_series(approx);
  std::fputs(plot.render().c_str(), stdout);
  std::printf("\nFit for the figure: %s\n", to_string(lin).c_str());

  const Linearization ll = linearize_vdd_root(1.86, 0.3, 1.0);
  std::printf("Paper's Section-4 fit reproduction (alpha = 1.86, 0.3-1.0 V):\n"
              "  ours: A = %.4f, B = %.4f   paper: A = 0.671, B = 0.347\n",
              ll.a, ll.b);
  const Linearization mmx = linearize_vdd_root(1.86, 0.3, 1.0, LinearizationMethod::kMinimax);
  std::printf("  minimax alternative: A = %.4f, B = %.4f (max err %.4f vs lsq %.4f)\n", mmx.a,
              mmx.b, mmx.max_abs_error, ll.max_abs_error);
  std::printf("\nCSV series follow:\n");
  std::fputs(csv.to_string().c_str(), stdout);
}

void BM_LinearizeLsq(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linearize_vdd_root(1.86, 0.3, 1.0, LinearizationMethod::kLeastSquares,
                           static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_LinearizeLsq)->Arg(128)->Arg(512)->Arg(2048);

void BM_LinearizeMinimax(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linearize_vdd_root(1.86, 0.3, 1.0, LinearizationMethod::kMinimax));
  }
}
BENCHMARK(BM_LinearizeMinimax);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_figure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
