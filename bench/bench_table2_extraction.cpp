// Table 2 reproduction: the STM CMOS09 flavor parameters (Io, zeta, alpha,
// n, Vth0) re-extracted through the full characterization flow - mini-SPICE
// sub-threshold sweeps and inverter-chain delay sweeps fitted by
// calib/tech_extract (the paper's ELDO ring-oscillator methodology).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "calib/tech_extract.h"
#include "spice/testbench.h"
#include "tech/stm_cmos09.h"
#include "util/constants.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_table2() {
  bench::print_header("Table 2: STM CMOS09 flavors - parameters re-extracted via mini-SPICE");
  Table t({"Flavor", "Vth0 [V]", "Io uA (pap)", "n (pap)", "alpha (pap)", "zeta fit [pF]",
           "leak @1.2V [nA]", "fit rms"});
  for (const Technology& tech : stm_cmos09_all()) {
    InverterConfig cfg;
    cfg.nmos = tech.reference_transistor();

    const auto sub = measure_subthreshold(cfg.nmos, 1.2, 0.02, tech.vth0_nom - 0.08, 15);
    const auto subfit = extract_subthreshold(sub.vgs, sub.ids, tech.vth0_nom, thermal_voltage());

    std::vector<double> supplies;
    for (double v = 0.55; v <= 1.21; v += 0.1) supplies.push_back(v);
    const auto sweep = measure_delay_vs_vdd(cfg, supplies, 5);
    const auto dly = extract_delay_params(sweep.vdd, sweep.tgate, subfit.io, subfit.n,
                                          tech.vth0_nom, 0.0, thermal_voltage());
    const double leak = measure_inverter_leakage(cfg, 1.2);

    t.add_row({tech.name, strprintf("%.3f", tech.vth0_nom),
               strprintf("%.2f (%.2f)", subfit.io * 1e6, tech.io * 1e6),
               strprintf("%.3f (%.2f)", subfit.n, tech.n),
               strprintf("%.3f (%.2f)", dly.alpha, tech.alpha),
               strprintf("%.4f", dly.zeta * 1e12), strprintf("%.4f", leak * 1e9),
               strprintf("%.3f", dly.rms_rel_error)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "Note: the extracted zeta is per single loaded inverter; the paper's Table-2 zeta\n"
      "averages the synthesized library cell (the Table-1 calibration infers that scale).\n"
      "Alpha deviates by the triode-region share the pure alpha-power law lumps in.\n");
}

void BM_SubthresholdSweep(benchmark::State& state) {
  const MosfetParams nmos = stm_cmos09_ll().reference_transistor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_subthreshold(nmos, 1.2, 0.02, 0.27, 15));
  }
}
BENCHMARK(BM_SubthresholdSweep);

void BM_InverterChainTransient(benchmark::State& state) {
  InverterConfig cfg;
  cfg.nmos = stm_cmos09_ll().reference_transistor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(inverter_chain_delay(cfg, 5, 0.9));
  }
}
BENCHMARK(BM_InverterChainTransient)->Unit(benchmark::kMillisecond);

void BM_RingOscillator(benchmark::State& state) {
  InverterConfig cfg;
  cfg.nmos = stm_cmos09_ll().reference_transistor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring_oscillator_stage_delay(cfg, 5, 1.2));
  }
}
BENCHMARK(BM_RingOscillator)->Unit(benchmark::kMillisecond);

void BM_DelayFit(benchmark::State& state) {
  InverterConfig cfg;
  cfg.nmos = stm_cmos09_ll().reference_transistor();
  std::vector<double> supplies;
  for (double v = 0.55; v <= 1.21; v += 0.1) supplies.push_back(v);
  const auto sweep = measure_delay_vs_vdd(cfg, supplies, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_delay_params(sweep.vdd, sweep.tgate, 3.34e-6, 1.33, 0.354,
                                                  0.0, thermal_voltage()));
  }
}
BENCHMARK(BM_DelayFit);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
