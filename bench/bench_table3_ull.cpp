// Table 3 reproduction: the Wallace family on the ULL flavor.
//
// Tables 3/4 publish only (Vdd*, Vth*, Ptot*); calibrate_from_optimum()
// solves the 2x2 system {total power, optimality} for (C, Io_eff), then the
// numerical optimum and Eq. 13 (with the ULL-alpha linearization) are
// recomputed and compared.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "calib/calibrate.h"
#include "power/closed_form.h"
#include "power/optimum.h"
#include "tech/stm_cmos09.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_flavor_table(const char* title, const std::vector<WallaceFlavorRow>& rows,
                        const Technology& tech) {
  bench::print_header(title);
  const Linearization lin = linearize_vdd_root(tech.alpha, 0.3, 1.0);
  std::printf("Flavor linearization: %s\n", to_string(lin).c_str());
  Table t({"Architecture", "Vdd*", "(pap)", "Vth*", "(pap)", "Ptot uW", "(pap)", "Eq13 uW",
           "(pap)", "err%", "(pap)"});
  for (const WallaceFlavorRow& row : rows) {
    const auto structure = find_table1_row(row.name);
    const CalibratedModel cal = calibrate_from_optimum(row, *structure, tech);
    const OptimumResult opt = find_optimum(cal.model, kPaperFrequency);
    const ClosedFormResult cf = closed_form_optimum(cal.model, kPaperFrequency, lin);
    const double err = bench::eq13_error_pct(opt.point.ptot, cf.ptot_eq13);
    t.add_row({row.name, bench::volts(opt.point.vdd), bench::volts(row.vdd_opt),
               bench::volts(opt.point.vth), bench::volts(row.vth_opt), bench::uw(opt.point.ptot),
               bench::uw(row.ptot), bench::uw(cf.ptot_eq13), bench::uw(row.ptot_eq13),
               bench::pct(err), bench::pct(row.eq13_err_pct)});
  }
  std::fputs(t.to_string().c_str(), stdout);
}

void BM_CalibrateFromOptimum(benchmark::State& state) {
  const Technology ull = stm_cmos09_ull();
  const auto structure = *find_table1_row("Wallace");
  for (auto _ : state) {
    benchmark::DoNotOptimize(calibrate_from_optimum(paper_table3_ull()[0], structure, ull));
  }
}
BENCHMARK(BM_CalibrateFromOptimum);

void BM_UllOptimum(benchmark::State& state) {
  const CalibratedModel cal = calibrate_from_optimum(
      paper_table3_ull()[0], *find_table1_row("Wallace"), stm_cmos09_ull());
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_optimum(cal.model, kPaperFrequency));
  }
}
BENCHMARK(BM_UllOptimum);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_flavor_table(
      "Table 3: Wallace family optimal power, ULL flavor (f = 31.25 MHz)",
      optpower::paper_table3_ull(), optpower::stm_cmos09_ull());
  std::printf("Cross-flavor check: ULL Ptot is above the LL values of Table 1 for every row\n"
              "(slow technology -> higher optimal Vdd, lower Vth).\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
