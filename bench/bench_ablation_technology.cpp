// Extension bench: hypothetical technology scaling.
//
// Section 5 closes with "a smaller technology node with ultra-high speed and
// large leakage might consume more than a larger techno with better balanced
// alpha, Io, zeta ... when considering the same performances."  This bench
// quantifies the remark with the scaling model of tech/scaling.h applied to
// the calibrated Wallace multiplier.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "calib/calibrate.h"
#include "power/optimum.h"
#include "tech/scaling.h"
#include "tech/stm_cmos09.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_scaling() {
  bench::print_header("Extension: optimal power across hypothetical scaled nodes (Wallace)");
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("Wallace"), stm_cmos09_ll());
  const Technology base = cal.model.tech();

  Table t({"Node scale", "Io [uA]", "zeta [pF]", "alpha", "Vdd*", "Vth*", "Ptot uW"});
  for (const double ratio : {1.0, 0.9, 0.69, 0.5, 0.35}) {
    ScalingModel model;  // default: leakage-aggressive scaling
    const Technology scaled = scale_technology(base, ratio, model);
    const PowerModel pm(scaled, cal.model.arch());
    const OptimumResult opt = find_optimum(pm, kPaperFrequency);
    t.add_row({strprintf("%.2fx (%.0f nm-ish)", ratio, 130.0 * ratio),
               strprintf("%.2f", scaled.io * 1e6), strprintf("%.2f", scaled.zeta * 1e12),
               strprintf("%.2f", scaled.alpha), bench::volts(opt.point.vdd),
               bench::volts(opt.point.vth), bench::uw(opt.point.ptot)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "With leakage-aggressive scaling (io ~ s^-2, alpha drifting toward 1), the\n"
      "optimal total power at fixed 31.25 MHz throughput eventually RISES as the\n"
      "node shrinks - the paper's closing observation.  A milder leakage exponent\n"
      "keeps scaling beneficial:\n");
  Table t2({"Node scale", "g=1 Ptot uW", "g=2 Ptot uW", "g=3 Ptot uW"});
  for (const double ratio : {1.0, 0.69, 0.5, 0.35}) {
    std::vector<std::string> row{strprintf("%.2fx", ratio)};
    for (const double g : {1.0, 2.0, 3.0}) {
      ScalingModel model;
      model.leakage_aggressiveness = g;
      const Technology scaled = scale_technology(base, ratio, model);
      const OptimumResult opt = find_optimum(PowerModel(scaled, cal.model.arch()), kPaperFrequency);
      row.push_back(bench::uw(opt.point.ptot));
    }
    t2.add_row(row);
  }
  std::fputs(t2.to_string().c_str(), stdout);
}

void BM_ScaleTechnology(benchmark::State& state) {
  const Technology base = stm_cmos09_ll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scale_technology(base, 0.69));
  }
}
BENCHMARK(BM_ScaleTechnology);

void BM_ScaledNodeOptimum(benchmark::State& state) {
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("Wallace"), stm_cmos09_ll());
  const Technology scaled = scale_technology(cal.model.tech(), 0.69);
  const PowerModel pm(scaled, cal.model.arch());
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_optimum(pm, kPaperFrequency));
  }
}
BENCHMARK(BM_ScaledNodeOptimum);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
