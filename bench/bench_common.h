// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints its reproduction table(s) first - the deliverable that
// regenerates the paper's table/figure - and then runs google-benchmark
// timings of the kernels involved.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "arch/paper_data.h"
#include "tech/linearization.h"
#include "util/format.h"

namespace optpower::bench {

/// The paper's published Eq. 7 fit for the LL flavor (A = 0.671, B = 0.347
/// on 0.3-1.0 V); used wherever the paper's own Eq. 13 numbers are compared.
inline Linearization paper_ll_linearization() {
  Linearization lin;
  const PaperModelConstants c = paper_model_constants();
  lin.a = c.lin_a;
  lin.b = c.lin_b;
  lin.alpha = c.alpha;
  lin.lo = 0.3;
  lin.hi = 1.0;
  return lin;
}

/// Paper sign convention for the Eq. 13 error column:
/// err% = (Ptot_numerical - Ptot_eq13) / Ptot_numerical * 100.
inline double eq13_error_pct(double ptot_numerical, double ptot_eq13) {
  return (ptot_numerical - ptot_eq13) / ptot_numerical * 100.0;
}

inline std::string uw(double watts) { return strprintf("%.2f", watts * 1e6); }
inline std::string volts(double v) { return strprintf("%.3f", v); }
inline std::string pct(double p) { return strprintf("%+.2f", p); }

inline void print_header(const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what);
  std::printf("Schuster et al., DATE 2006 - optpower reproduction\n");
  std::printf("================================================================\n");
}

}  // namespace optpower::bench
