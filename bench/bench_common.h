// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints its reproduction table(s) first - the deliverable that
// regenerates the paper's table/figure - and then runs google-benchmark
// timings of the kernels involved.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/paper_data.h"
#include "exec/exec.h"
#include "tech/linearization.h"
#include "util/format.h"

namespace optpower::bench {

/// Env-overridable bench constant: returns the integer in $`name` when set
/// to a positive value, else `fallback`.  The CI bench-smoke step shrinks
/// the problem sizes this way (e.g. OPTPOWER_BENCH_SURFACE_N=128) while the
/// regression-gate job and local runs use the defaults.
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<int>(parsed);
}

/// Shared parallel context for the *Parallel bench variants: sized from
/// OPTPOWER_THREADS (unset = all cores).  One pool per process, spun up on
/// first use, shared by every copy.
inline const ExecContext& parallel_context() {
  static const ExecContext ctx = ExecContext::from_env();
  return ctx;
}

/// The paper's published Eq. 7 fit for the LL flavor (A = 0.671, B = 0.347
/// on 0.3-1.0 V); used wherever the paper's own Eq. 13 numbers are compared.
inline Linearization paper_ll_linearization() {
  Linearization lin;
  const PaperModelConstants c = paper_model_constants();
  lin.a = c.lin_a;
  lin.b = c.lin_b;
  lin.alpha = c.alpha;
  lin.lo = 0.3;
  lin.hi = 1.0;
  return lin;
}

/// Paper sign convention for the Eq. 13 error column:
/// err% = (Ptot_numerical - Ptot_eq13) / Ptot_numerical * 100.
inline double eq13_error_pct(double ptot_numerical, double ptot_eq13) {
  return (ptot_numerical - ptot_eq13) / ptot_numerical * 100.0;
}

inline std::string uw(double watts) { return strprintf("%.2f", watts * 1e6); }
inline std::string volts(double v) { return strprintf("%.3f", v); }
inline std::string pct(double p) { return strprintf("%+.2f", p); }

inline void print_header(const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what);
  std::printf("Schuster et al., DATE 2006 - optpower reproduction\n");
  std::printf("================================================================\n");
}

}  // namespace optpower::bench
