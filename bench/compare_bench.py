#!/usr/bin/env python3
"""Benchmark-regression gate for the optpower bench suite.

Compares google-benchmark JSON results (``--benchmark_format=json`` /
``--benchmark_out``) against the checked-in baseline and fails when any
benchmark regressed by more than the threshold (default: 25% slower on
real_time).

Usage:
  # Gate (CI): exit 1 on regression
  python3 bench/compare_bench.py --baseline bench/baseline.json BENCH_*.json

  # Refresh the baseline from fresh results
  python3 bench/compare_bench.py --baseline bench/baseline.json --update BENCH_*.json

Conventions:
  * Each result file is keyed by its benchmark binary, taken from the
    "executable" field of the google-benchmark context (basename, so the
    same baseline works for any build directory).
  * Benchmarks present in the results but not in the baseline are reported
    as NEW warnings and NEVER fail the gate: a PR that adds a bench binary
    stays green without a same-PR baseline refresh (adopt the new entries
    with ``--update`` when re-recording on the gate's runner class).
  * Baseline entries with no current measurement are reported as MISSING
    and do not fail the gate (CI may legitimately run a subset).
  * ``*Serial`` / ``*Parallel`` benchmark pairs additionally get a speedup
    line (serial real_time / parallel real_time) in the summary.

The baseline must be recorded on the same runner class the gate runs on;
absolute times do not transfer between machines.
"""

import argparse
import json
import os
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def real_time_ns(bench):
    return float(bench["real_time"]) * TIME_UNIT_NS[bench.get("time_unit", "ns")]


def load_results(path):
    """Map 'binary/benchmark_name' -> real_time in ns for one JSON file."""
    with open(path) as fh:
        doc = json.load(fh)
    executable = os.path.basename(doc.get("context", {}).get("executable", ""))
    if not executable:
        # Fall back to the file name (BENCH_bench_fig1.json -> bench_fig1).
        executable = os.path.splitext(os.path.basename(path))[0]
        executable = executable[len("BENCH_"):] if executable.startswith("BENCH_") else executable
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[f"{executable}/{bench['name']}"] = real_time_ns(bench)
    return out


def load_all_results(paths):
    merged = {}
    for path in paths:
        for key, value in load_results(path).items():
            merged[key] = value
    return merged


def update_baseline(baseline_path, results, note):
    baseline = {
        "_meta": {
            "note": note,
            "format": "name -> real_time_ns (google-benchmark real_time, ns)",
        },
        "benchmarks": {name: results[name] for name in sorted(results)},
    }
    with open(baseline_path, "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"baseline updated: {baseline_path} ({len(results)} benchmarks)")


def print_speedups(results):
    pairs = []
    for name in sorted(results):
        if "Serial" not in name:
            continue
        partner = name.replace("Serial", "Parallel")
        if partner in results and results[partner] > 0.0:
            pairs.append((name, partner, results[name] / results[partner]))
    if pairs:
        print("\nSerial vs parallel speedups (real_time):")
        for serial, parallel, speedup in pairs:
            print(f"  {speedup:5.2f}x  {parallel}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+", help="google-benchmark JSON result files")
    parser.add_argument("--baseline", required=True, help="checked-in baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction before failing (default 0.25 = +25%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the results instead of gating")
    parser.add_argument("--note", default="refreshed by compare_bench.py --update",
                        help="note stored in the baseline _meta on --update")
    args = parser.parse_args()

    results = load_all_results(args.results)
    if not results:
        print("error: no benchmark entries found in the result files", file=sys.stderr)
        return 2

    if args.update:
        update_baseline(args.baseline, results, args.note)
        print_speedups(results)
        return 0

    with open(args.baseline) as fh:
        baseline = json.load(fh)["benchmarks"]

    regressions = []
    improved = 0
    compared = 0
    new = 0
    for name in sorted(results):
        if name not in baseline:
            new += 1
            print(f"  NEW      {name} (warn only, not in baseline; adopt via --update)")
            continue
        compared += 1
        base, cur = baseline[name], results[name]
        ratio = cur / base if base > 0.0 else float("inf")
        if ratio > 1.0 + args.threshold:
            regressions.append((name, base, cur, ratio))
            print(f"  REGRESSED {name}: {base:.0f} ns -> {cur:.0f} ns ({ratio:.2f}x)")
        elif ratio < 1.0:
            improved += 1
    for name in sorted(baseline):
        if name not in results:
            print(f"  MISSING  {name} (in baseline, not measured)")

    print(f"\n{compared} compared, {improved} improved, {new} new (warn only), "
          f"{len(regressions)} regressed (threshold +{args.threshold * 100:.0f}%)")
    print_speedups(results)

    if regressions:
        print("\nFAIL: benchmark regression gate", file=sys.stderr)
        return 1
    print("OK: no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
