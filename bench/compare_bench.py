#!/usr/bin/env python3
"""Benchmark-regression gate for the optpower bench suite.

Compares google-benchmark JSON results (``--benchmark_format=json`` /
``--benchmark_out``) against the checked-in baseline and fails when any
benchmark regressed by more than the threshold (default: 25% slower on
real_time).

Usage:
  # Gate (CI): exit 1 on regression
  python3 bench/compare_bench.py --baseline bench/baseline.json BENCH_*.json

  # Refresh the baseline from fresh results
  python3 bench/compare_bench.py --baseline bench/baseline.json --update BENCH_*.json

  # Gate, then adopt any NEW entries into the baseline (existing entries
  # keep their recorded times and still gate normally)
  python3 bench/compare_bench.py --baseline bench/baseline.json --adopt-new BENCH_*.json

Conventions:
  * Each result file is keyed by its benchmark binary, taken from the
    "executable" field of the google-benchmark context (basename, so the
    same baseline works for any build directory).
  * Benchmarks present in the results but not in the baseline are reported
    as NEW warnings and do not fail the gate on first sight: a PR that adds
    a bench binary stays green without a same-PR baseline refresh.  Pass
    ``--new-seen state.json`` (a scratch file CI caches between runs) to
    keep NEW from becoming a permanent blind spot: an entry that is STILL
    new on the next gated run fails the gate until someone either adopts it
    (``--adopt-new`` / ``--update``) or deletes the benchmark.
  * ``--adopt-new`` merges the new entries' measured times into the
    baseline after gating; existing entries are left untouched (unlike
    ``--update``, which rewrites every entry).
  * Baseline entries with no current measurement are reported as MISSING
    and do not fail the gate (CI may legitimately run a subset).
  * ``*Serial`` / ``*Parallel`` benchmark pairs additionally get a speedup
    line (serial real_time / parallel real_time) in the summary.

The baseline must be recorded on the same runner class the gate runs on;
absolute times do not transfer between machines.
"""

import argparse
import json
import os
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def real_time_ns(bench):
    return float(bench["real_time"]) * TIME_UNIT_NS[bench.get("time_unit", "ns")]


def load_results(path):
    """Map 'binary/benchmark_name' -> real_time in ns for one JSON file."""
    with open(path) as fh:
        doc = json.load(fh)
    executable = os.path.basename(doc.get("context", {}).get("executable", ""))
    if not executable:
        # Fall back to the file name (BENCH_bench_fig1.json -> bench_fig1).
        executable = os.path.splitext(os.path.basename(path))[0]
        executable = executable[len("BENCH_"):] if executable.startswith("BENCH_") else executable
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[f"{executable}/{bench['name']}"] = real_time_ns(bench)
    return out


def load_all_results(paths):
    merged = {}
    for path in paths:
        for key, value in load_results(path).items():
            merged[key] = value
    return merged


def load_baseline(path):
    """The baseline's name -> real_time_ns map (and its _meta note)."""
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("benchmarks", {}), doc.get("_meta", {})


def read_new_seen(path):
    """Names reported NEW by the previous gated run (empty when absent)."""
    if not os.path.exists(path):
        return set()
    with open(path) as fh:
        return set(json.load(fh))


def write_new_seen(path, names):
    with open(path, "w") as fh:
        json.dump(sorted(names), fh, indent=2)
        fh.write("\n")


def update_baseline(baseline_path, results, note):
    baseline = {
        "_meta": {
            "note": note,
            "format": "name -> real_time_ns (google-benchmark real_time, ns)",
        },
        "benchmarks": {name: results[name] for name in sorted(results)},
    }
    with open(baseline_path, "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"baseline updated: {baseline_path} ({len(results)} benchmarks)")


def print_speedups(results):
    pairs = []
    for name in sorted(results):
        if "Serial" not in name:
            continue
        partner = name.replace("Serial", "Parallel")
        if partner in results and results[partner] > 0.0:
            pairs.append((name, partner, results[name] / results[partner]))
    if pairs:
        print("\nSerial vs parallel speedups (real_time):")
        for serial, parallel, speedup in pairs:
            print(f"  {speedup:5.2f}x  {parallel}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+", help="google-benchmark JSON result files")
    parser.add_argument("--baseline", required=True, help="checked-in baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction before failing (default 0.25 = +25%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the results instead of gating")
    parser.add_argument("--adopt-new", action="store_true",
                        help="after gating, merge NEW entries into the baseline "
                             "(existing entries keep their recorded times)")
    parser.add_argument("--new-seen", metavar="STATE",
                        help="scratch file tracking NEW entries across runs; an entry "
                             "still NEW on the next run fails the gate")
    parser.add_argument("--note", default="refreshed by compare_bench.py --update",
                        help="note stored in the baseline _meta on --update/--adopt-new")
    args = parser.parse_args(argv)

    results = load_all_results(args.results)
    if not results:
        print("error: no benchmark entries found in the result files", file=sys.stderr)
        return 2

    if args.update:
        update_baseline(args.baseline, results, args.note)
        print_speedups(results)
        return 0

    baseline, _ = load_baseline(args.baseline)

    regressions = []
    improved = 0
    compared = 0
    new_names = []
    for name in sorted(results):
        if name not in baseline:
            new_names.append(name)
            print(f"  NEW      {name} (not in baseline; adopt via --adopt-new or --update)")
            continue
        compared += 1
        base, cur = baseline[name], results[name]
        ratio = cur / base if base > 0.0 else float("inf")
        if ratio > 1.0 + args.threshold:
            regressions.append((name, base, cur, ratio))
            print(f"  REGRESSED {name}: {base:.0f} ns -> {cur:.0f} ns ({ratio:.2f}x)")
        elif ratio < 1.0:
            improved += 1
    for name in sorted(baseline):
        if name not in results:
            print(f"  MISSING  {name} (in baseline, not measured)")

    print(f"\n{compared} compared, {improved} improved, {len(new_names)} new, "
          f"{len(regressions)} regressed (threshold +{args.threshold * 100:.0f}%)")
    print_speedups(results)

    if args.adopt_new and new_names:
        merged = dict(baseline)
        merged.update({name: results[name] for name in new_names})
        update_baseline(args.baseline, merged, args.note)
        print(f"adopted {len(new_names)} new entries into the baseline")
        new_names = []

    stale = []
    if args.new_seen:
        stale = sorted(set(new_names) & read_new_seen(args.new_seen))
        write_new_seen(args.new_seen, new_names)
        for name in stale:
            print(f"  STALE-NEW {name} (still not in baseline since the previous run)")

    if regressions:
        print("\nFAIL: benchmark regression gate", file=sys.stderr)
        return 1
    if stale:
        print("\nFAIL: NEW benchmarks persisted across runs without baseline adoption "
              "(run compare_bench.py --adopt-new on the gate's runner class)",
              file=sys.stderr)
        return 1
    print("OK: no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
