// Figures 3 & 4 reproduction: the 8-bit RCA horizontal and diagonal
// pipelines.  The figures are structural schematics; we regenerate the
// structures (via the scheduling-based pipeliner), verify functional
// equivalence, and quantify the figures' point - the diagonal cut yields a
// shorter critical path but a larger path-delay spread, hence more
// glitching and higher activity.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mult/array.h"
#include "sim/activity.h"
#include "sta/sta.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_figures() {
  bench::print_header("Figures 3/4: 8-bit RCA horizontal vs diagonal pipeline structure");
  const Netlist base = array_multiplier(8);
  const Netlist hor = array_multiplier_hpipe(8, 2);
  const Netlist diag = array_multiplier_dpipe(8, 2);

  ActivityOptions opt;
  opt.num_vectors = 128;
  Table t({"Structure", "cells", "DFFs", "area um2", "LD/cycle", "activity", "glitch frac"});
  for (const auto* entry : {&base, &hor, &diag}) {
    const NetlistStats s = entry->stats();
    const TimingReport tr = analyze_timing(*entry);
    const ActivityMeasurement a = measure_activity(*entry, opt);
    t.add_row({entry->name(), strprintf("%zu", s.num_cells), strprintf("%zu", s.num_sequential),
               strprintf("%.0f", s.area_um2), strprintf("%.1f", tr.critical_path_units),
               strprintf("%.3f", a.activity), strprintf("%.3f", a.glitch_fraction)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  const auto a_h = measure_activity(hor, opt);
  const auto a_d = measure_activity(diag, opt);
  const auto tr_h = analyze_timing(hor);
  const auto tr_d = analyze_timing(diag);
  std::printf("Figure-4-vs-3 checks: diagonal LD <= horizontal LD?  %s   "
              "diagonal activity > horizontal?  %s\n",
              tr_d.critical_path_units <= tr_h.critical_path_units ? "YES" : "NO",
              a_d.activity > a_h.activity ? "YES (glitch penalty reproduced)" : "NO");
}

void BM_BuildHorizontalPipe(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(array_multiplier_hpipe(8, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_BuildHorizontalPipe)->Arg(2)->Arg(4);

void BM_BuildDiagonalPipe(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(array_multiplier_dpipe(8, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_BuildDiagonalPipe)->Arg(2)->Arg(4);

// Env-overridable sizes: the CI bench-smoke step shrinks these to stay fast;
// the regression-gate job uses the defaults (see bench_common.h).
const int kActivityVectors = bench::env_int("OPTPOWER_BENCH_ACTIVITY_VECTORS", 128);
const int kActivityStreams = bench::env_int("OPTPOWER_BENCH_ACTIVITY_STREAMS", 8);

void BM_ActivitySimulation(benchmark::State& state) {
  const Netlist nl = array_multiplier_dpipe(8, 2);
  ActivityOptions opt;
  opt.num_vectors = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity(nl, opt));
  }
}
BENCHMARK(BM_ActivitySimulation)->Arg(32)->Arg(kActivityVectors)->Unit(benchmark::kMillisecond);

// Multi-testbench extraction (kActivityStreams independent RNG streams over
// the same netlist), serial vs fanned out - the paper's multi-vector
// activity numbers, produced stream-parallel.
void BM_ActivityMultiSerial(benchmark::State& state) {
  const Netlist nl = array_multiplier_dpipe(8, 2);
  ActivityOptions opt;
  opt.num_vectors = kActivityVectors;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity_sharded(nl, opt, kActivityStreams));
  }
}
BENCHMARK(BM_ActivityMultiSerial)->Unit(benchmark::kMillisecond);

void BM_ActivityMultiParallel(benchmark::State& state) {
  const Netlist nl = array_multiplier_dpipe(8, 2);
  ActivityOptions opt;
  opt.num_vectors = kActivityVectors;
  const ExecContext& ctx = bench::parallel_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity_sharded(nl, opt, kActivityStreams, ctx));
  }
  state.counters["threads"] = static_cast<double>(ctx.threads());
}
BENCHMARK(BM_ActivityMultiParallel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_figures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
