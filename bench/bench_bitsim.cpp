// Bit-parallel activity-engine benchmarks: the 512-lane SIMD simulator
// against the scalar event path it widens, in both its modes - levelized
// kZero and the timed (kUnit/kCellDepth) slot-ring engine that reproduces
// glitches exactly.
//
// Reproduction table: Monte-Carlo activity throughput (vectors/sec) per
// engine and delay mode across the RCA / Wallace / Sequential families at
// widths 8/16/32 - the visible record of the bit-parallel speedup targets -
// with the measured "a" printed per mode as a live cross-check (bit-parallel
// kZero must track scalar kZero; the kCellDepth pair sits above both by the
// glitch power, and bit-parallel kCellDepth equals the scalar sharded
// extraction counter for counter).
//
// The default-named benchmarks (BM_BitParallelActivity & co) run on the
// process default SIMD backend (cpuid, or OPTPOWER_SIMD); main()
// additionally registers one BM_BitParallelActivityBackend/<name> variant
// per backend the machine supports, so one run records the scalar / AVX2 /
// AVX-512 ladder side by side.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "mult/factory.h"
#include "sim/activity.h"
#include "sim/bitsim.h"
#include "simd/simd.h"
#include "util/table.h"

namespace optpower {
namespace {

using bench::env_int;

// Env-overridable (see docs/PERF.md): CI smoke shrinks these.
const int kTableVectors = env_int("OPTPOWER_BENCH_BITSIM_TABLE_VECTORS", 512);
const int kTableMaxWidth = env_int("OPTPOWER_BENCH_BITSIM_TABLE_MAXWIDTH", 32);
const int kBitsimWidth = env_int("OPTPOWER_BENCH_BITSIM_WIDTH", 16);
const int kBitsimVectors = env_int("OPTPOWER_BENCH_BITSIM_VECTORS", 2048);
const int kActivityStreams = env_int("OPTPOWER_BENCH_ACTIVITY_STREAMS", 8);

const Netlist& bitsim_netlist() {
  static const GeneratedMultiplier gen = build_multiplier("RCA", kBitsimWidth);
  return gen.netlist;
}

struct EngineRun {
  double vectors_per_sec = 0.0;
  double activity = 0.0;
};

EngineRun timed_run(const Netlist& nl, const ActivityOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const ActivityMeasurement m = measure_activity(nl, options);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return {seconds > 0.0 ? static_cast<double>(options.num_vectors) / seconds : 0.0, m.activity};
}

void print_throughput_table() {
  bench::print_header(
      "Monte-Carlo activity throughput: bit-parallel vs scalar kZero vs kCellDepth\n"
      "(vectors/sec; bit-parallel packs 512 testbench streams per lane block)");
  std::printf("simd backend: %s (supported:",
              simd::backend_name(simd::default_backend()));
  for (const simd::Backend b : simd::supported_backends()) {
    std::printf(" %s", simd::backend_name(b));
  }
  std::printf(")\n\n");
  Table t({"Arch", "w", "bp-kZ vec/s", "kZ vec/s", "kZ speedup", "bp-kCD vec/s", "kCD vec/s",
           "kCD speedup", "a bp-kCD", "a kCD"});
  const auto ratio = [](const EngineRun& fast, const EngineRun& slow) {
    return slow.vectors_per_sec > 0.0 ? fast.vectors_per_sec / slow.vectors_per_sec : 0.0;
  };
  for (const char* arch : {"RCA", "Wallace", "Sequential"}) {
    for (const int w : {8, 16, 32}) {
      if (w > kTableMaxWidth) continue;
      const GeneratedMultiplier gen = build_multiplier(arch, w);
      ActivityOptions opt;
      opt.num_vectors = kTableVectors;
      opt.cycles_per_vector = gen.cycles_per_result;
      opt.delay_mode = SimDelayMode::kZero;

      ActivityOptions bp = opt;
      bp.engine = ActivityEngine::kBitParallel;
      const EngineRun bit = timed_run(gen.netlist, bp);
      const EngineRun zero = timed_run(gen.netlist, opt);
      ActivityOptions depth_scalar = opt;
      depth_scalar.delay_mode = SimDelayMode::kCellDepth;
      const EngineRun depth = timed_run(gen.netlist, depth_scalar);
      ActivityOptions depth_bp = depth_scalar;
      depth_bp.engine = ActivityEngine::kBitParallel;
      const EngineRun bit_depth = timed_run(gen.netlist, depth_bp);

      t.add_row({arch, strprintf("%d", w), strprintf("%.0f", bit.vectors_per_sec),
                 strprintf("%.0f", zero.vectors_per_sec), strprintf("%.1fx", ratio(bit, zero)),
                 strprintf("%.0f", bit_depth.vectors_per_sec),
                 strprintf("%.0f", depth.vectors_per_sec),
                 strprintf("%.1fx", ratio(bit_depth, depth)),
                 strprintf("%.5f", bit_depth.activity), strprintf("%.5f", depth.activity)});
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
}

void BM_BitParallelActivity(benchmark::State& state) {
  const Netlist& nl = bitsim_netlist();
  ActivityOptions opt;
  opt.num_vectors = kBitsimVectors;
  opt.delay_mode = SimDelayMode::kZero;
  opt.engine = ActivityEngine::kBitParallel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity(nl, opt).transitions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
  state.SetLabel(simd::backend_name(simd::default_backend()));
}
BENCHMARK(BM_BitParallelActivity)->Unit(benchmark::kMillisecond);

// One registration per supported backend (see main): the same measurement
// as BM_BitParallelActivity, pinned to an explicit kernel backend.
void BM_BitParallelActivityBackend(benchmark::State& state, simd::Backend backend) {
  const Netlist& nl = bitsim_netlist();
  ActivityOptions opt;
  opt.num_vectors = kBitsimVectors;
  opt.delay_mode = SimDelayMode::kZero;
  opt.engine = ActivityEngine::kBitParallel;
  BitSimulator sim(nl, backend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity_lanes_with(sim, opt).size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
}

// Timed bit-parallel throughput: the same 512-stream packing running the
// slot-ring engine.  Compare against BM_CellDepthActivity /
// BM_UnitDelayActivity for the glitch-accurate speedup the issue targets.
void BM_BitParallelTimedActivity(benchmark::State& state, SimDelayMode mode) {
  const Netlist& nl = bitsim_netlist();
  ActivityOptions opt;
  opt.num_vectors = kBitsimVectors;
  opt.delay_mode = mode;
  opt.engine = ActivityEngine::kBitParallel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity(nl, opt).transitions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
  state.SetLabel(simd::backend_name(simd::default_backend()));
}
BENCHMARK_CAPTURE(BM_BitParallelTimedActivity, kUnit, SimDelayMode::kUnit)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BitParallelTimedActivity, kCellDepth, SimDelayMode::kCellDepth)
    ->Unit(benchmark::kMillisecond);

void BM_BitParallelTimedShardedParallel(benchmark::State& state) {
  // Whole lane blocks of the glitch-accurate engine over the pool.
  const Netlist& nl = bitsim_netlist();
  (void)nl.fanout();
  ActivityOptions total;
  total.num_vectors = kBitsimVectors;
  total.delay_mode = SimDelayMode::kCellDepth;
  total.engine = ActivityEngine::kBitParallel;
  const ExecContext& ctx = bench::parallel_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity_sharded(nl, total, kActivityStreams, ctx));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
  state.counters["threads"] = static_cast<double>(ctx.threads());
}
BENCHMARK(BM_BitParallelTimedShardedParallel)->Unit(benchmark::kMillisecond);

void BM_ScalarKZeroActivity(benchmark::State& state) {
  const Netlist& nl = bitsim_netlist();
  ActivityOptions opt;
  opt.num_vectors = kBitsimVectors;
  opt.delay_mode = SimDelayMode::kZero;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity(nl, opt).transitions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
}
BENCHMARK(BM_ScalarKZeroActivity)->Unit(benchmark::kMillisecond);

void BM_CellDepthActivity(benchmark::State& state) {
  // The glitch-accurate scalar reference point (the default forward-flow
  // delay mode) - the denominator of BM_BitParallelTimedActivity/kCellDepth.
  const Netlist& nl = bitsim_netlist();
  ActivityOptions opt;
  opt.num_vectors = kBitsimVectors;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity(nl, opt).transitions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
}
BENCHMARK(BM_CellDepthActivity)->Unit(benchmark::kMillisecond);

void BM_UnitDelayActivity(benchmark::State& state) {
  // Scalar kUnit - the denominator of BM_BitParallelTimedActivity/kUnit.
  const Netlist& nl = bitsim_netlist();
  ActivityOptions opt;
  opt.num_vectors = kBitsimVectors;
  opt.delay_mode = SimDelayMode::kUnit;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity(nl, opt).transitions);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
}
BENCHMARK(BM_UnitDelayActivity)->Unit(benchmark::kMillisecond);

// Sharding whole 512-lane blocks over the pool: the bit-parallel analogue
// of bench_event_sim's BM_ActivitySharded pair.
void BM_BitParallelShardedSerial(benchmark::State& state) {
  const Netlist& nl = bitsim_netlist();
  ActivityOptions total;
  total.num_vectors = kBitsimVectors;
  total.delay_mode = SimDelayMode::kZero;
  total.engine = ActivityEngine::kBitParallel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity_sharded(nl, total, kActivityStreams));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
}
BENCHMARK(BM_BitParallelShardedSerial)->Unit(benchmark::kMillisecond);

void BM_BitParallelShardedParallel(benchmark::State& state) {
  const Netlist& nl = bitsim_netlist();
  (void)nl.fanout();
  ActivityOptions total;
  total.num_vectors = kBitsimVectors;
  total.delay_mode = SimDelayMode::kZero;
  total.engine = ActivityEngine::kBitParallel;
  const ExecContext& ctx = bench::parallel_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity_sharded(nl, total, kActivityStreams, ctx));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBitsimVectors));
  state.counters["threads"] = static_cast<double>(ctx.threads());
}
BENCHMARK(BM_BitParallelShardedParallel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_throughput_table();
  for (const optpower::simd::Backend b : optpower::simd::supported_backends()) {
    benchmark::RegisterBenchmark(
        ("BM_BitParallelActivityBackend/" +
         std::string(optpower::simd::backend_name(b)))
            .c_str(),
        optpower::BM_BitParallelActivityBackend, b)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
