// Ablation: the approximation chain behind Eq. 13.
//
// Quantifies each design choice DESIGN.md calls out:
//   1. Eq. 11 -> Eq. 12 (completing the square)
//   2. Eq. 12 -> Eq. 13 (substituting the linearized Vdd*)
//   3. linearization method (least squares vs minimax) and fitting range
//   4. the pure alpha-power law vs the C1 sub-threshold blend
//   5. the Vdd >> nUt/(1-chi*A) assumption across activities
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "calib/calibrate.h"
#include "power/closed_form.h"
#include "power/optimum.h"
#include "tech/stm_cmos09.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_ablation() {
  bench::print_header("Ablation: Eq. 13's approximation chain");
  const Technology ll = stm_cmos09_ll();

  Table t({"Architecture", "num uW", "Eq11 uW", "Eq12 uW", "Eq13 uW", "lsq err%", "mmx err%",
           "narrow-fit err%"});
  for (const Table1Row& row : paper_table1()) {
    const CalibratedModel cal = calibrate_from_table1_row(row, ll);
    const OptimumResult num = find_optimum(cal.model, kPaperFrequency);
    const Linearization lsq = linearize_vdd_root(ll.alpha, 0.3, 1.0);
    const Linearization mmx =
        linearize_vdd_root(ll.alpha, 0.3, 1.0, LinearizationMethod::kMinimax);
    const Linearization narrow = linearize_vdd_root(ll.alpha, 0.3, 0.6);
    const ClosedFormResult a = closed_form_optimum(cal.model, kPaperFrequency, lsq);
    const ClosedFormResult b = closed_form_optimum(cal.model, kPaperFrequency, mmx);
    const ClosedFormResult c = closed_form_optimum(cal.model, kPaperFrequency, narrow);
    t.add_row({row.name, bench::uw(num.point.ptot), bench::uw(a.ptot_eq11),
               bench::uw(a.ptot_eq12), bench::uw(a.ptot_eq13),
               bench::pct(bench::eq13_error_pct(num.point.ptot, a.ptot_eq13)),
               bench::pct(bench::eq13_error_pct(num.point.ptot, b.ptot_eq13)),
               bench::pct(bench::eq13_error_pct(num.point.ptot, c.ptot_eq13))});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "Reading: Eq.11->12 costs <1%%; the linearization choice moves the error by ~1%%;\n"
      "a fit range centered on the actual optima (0.3-0.6 V) tightens low-Vdd rows\n"
      "and loosens the sequential (high-Vdd) rows - the paper's 0.3-1.0 V is a\n"
      "reasonable compromise across the whole set.\n");

  // Alpha-power vs C1 blend: only matters near/below the branch point.
  std::printf("\nOn-current model ablation (Wallace par4, the lowest-overdrive row):\n");
  const Table1Row wp4 = *find_table1_row("Wallace par4");
  const CalibratedModel cal = calibrate_from_table1_row(wp4, ll);
  const PowerModel blended(cal.model.tech(), cal.model.arch(), OnCurrentModel::kC1Blended);
  const OptimumResult o_alpha = find_optimum(cal.model, kPaperFrequency);
  const OptimumResult o_blend = find_optimum(blended, kPaperFrequency);
  std::printf("  pure alpha-power: Vdd* = %.3f V, Ptot* = %.2f uW (the paper's model)\n",
              o_alpha.point.vdd, o_alpha.point.ptot * 1e6);
  std::printf("  C1 blended:       Vdd* = %.3f V, Ptot* = %.2f uW (delta %.2f%%)\n",
              o_blend.point.vdd, o_blend.point.ptot * 1e6,
              (o_blend.point.ptot / o_alpha.point.ptot - 1.0) * 100.0);
}

void BM_Eq13Evaluation(benchmark::State& state) {
  const CalibratedModel cal = calibrate_from_table1_row(paper_table1()[0], stm_cmos09_ll());
  const double nut = cal.model.tech().n_ut();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eq13_total_power(608, 0.5056, cal.cell_cap, kPaperFrequency,
                                              cal.io_eff, nut, cal.chi, 0.671, 0.347));
  }
}
BENCHMARK(BM_Eq13Evaluation);

void BM_OptimumAlphaVsBlended(benchmark::State& state) {
  const CalibratedModel cal = calibrate_from_table1_row(paper_table1()[9], stm_cmos09_ll());
  const PowerModel model(cal.model.tech(), cal.model.arch(),
                         state.range(0) == 0 ? OnCurrentModel::kAlphaPower
                                             : OnCurrentModel::kC1Blended);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_optimum(model, kPaperFrequency));
  }
  state.SetLabel(state.range(0) == 0 ? "alpha-power" : "c1-blended");
}
BENCHMARK(BM_OptimumAlphaVsBlended)->Arg(0)->Arg(1);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
