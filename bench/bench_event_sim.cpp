// Scheduler microbenchmarks: the timing-wheel EventSimulator against the
// reference heap scheduler it replaced, plus the multi-stream activity
// extraction that dominates the forward-flow profiles.  The printed table
// doubles as a visible equivalence check: both schedulers must report the
// same transition counts before the timings mean anything.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "mult/factory.h"
#include "sim/activity.h"
#include "sim/event_sim.h"
#include "sim/reference_sim.h"
#include "util/random.h"
#include "util/table.h"

namespace optpower {
namespace {

// Env-overridable (see docs/PERF.md): CI smoke shrinks these.
const int kSimWidth = bench::env_int("OPTPOWER_BENCH_SIM_WIDTH", 16);
const int kSimCycles = bench::env_int("OPTPOWER_BENCH_SIM_CYCLES", 256);
const int kActivityVectors = bench::env_int("OPTPOWER_BENCH_ACTIVITY_VECTORS", 128);
const int kActivityStreams = bench::env_int("OPTPOWER_BENCH_ACTIVITY_STREAMS", 8);

const Netlist& rca_netlist() {
  static const GeneratedMultiplier gen = build_multiplier("RCA", kSimWidth);
  return gen.netlist;
}

template <typename Simulator>
std::uint64_t run_cycles(Simulator& sim, const Netlist& nl, int cycles, Pcg32& rng) {
  const std::size_t num_inputs = nl.primary_inputs().size();
  std::vector<bool> vec(num_inputs);
  for (int c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < num_inputs; ++i) vec[i] = rng.next_bool();
    sim.set_inputs(vec);
    sim.step_cycle();
  }
  return sim.stats().total_transitions;
}

void print_scheduler_check() {
  bench::print_header(
      "Event scheduler: timing wheel vs reference heap (identical stats required)\n"
      "(activity substrate for Table 1's 'a' column; see docs/PERF.md)");
  const Netlist& nl = rca_netlist();
  Table t({"Delay mode", "wheel transitions", "heap transitions", "match"});
  for (const SimDelayMode mode :
       {SimDelayMode::kUnit, SimDelayMode::kCellDepth, SimDelayMode::kZero}) {
    EventSimulator wheel(nl, mode);
    ReferenceSimulator heap(nl, mode);
    Pcg32 rng_w(0x5eedbe9c), rng_h(0x5eedbe9c);
    const std::uint64_t tw = run_cycles(wheel, nl, 64, rng_w);
    const std::uint64_t th = run_cycles(heap, nl, 64, rng_h);
    const char* name = mode == SimDelayMode::kUnit     ? "kUnit"
                       : mode == SimDelayMode::kCellDepth ? "kCellDepth"
                                                          : "kZero";
    t.add_row({name, strprintf("%llu", static_cast<unsigned long long>(tw)),
               strprintf("%llu", static_cast<unsigned long long>(th)),
               tw == th ? "YES" : "NO  <-- BUG"});
  }
  std::fputs(t.to_string().c_str(), stdout);
}

void BM_TimingWheelScheduler(benchmark::State& state) {
  const Netlist& nl = rca_netlist();
  EventSimulator sim(nl);
  Pcg32 rng(0x5eed1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cycles(sim, nl, kSimCycles, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.stats().cycles));
  state.counters["transitions"] =
      benchmark::Counter(static_cast<double>(sim.stats().total_transitions),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimingWheelScheduler)->Unit(benchmark::kMillisecond);

void BM_ReferenceHeapScheduler(benchmark::State& state) {
  const Netlist& nl = rca_netlist();
  ReferenceSimulator sim(nl);
  Pcg32 rng(0x5eed1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cycles(sim, nl, kSimCycles, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.stats().cycles));
  state.counters["transitions"] =
      benchmark::Counter(static_cast<double>(sim.stats().total_transitions),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReferenceHeapScheduler)->Unit(benchmark::kMillisecond);

// The forward-flow hot path: sharded multi-stream activity extraction,
// serial vs fanned out over the shared pool.
void BM_ActivityShardedSerial(benchmark::State& state) {
  const Netlist& nl = rca_netlist();
  ActivityOptions total;
  total.num_vectors = kActivityVectors;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity_sharded(nl, total, kActivityStreams));
  }
}
BENCHMARK(BM_ActivityShardedSerial)->Unit(benchmark::kMillisecond);

void BM_ActivityShardedParallel(benchmark::State& state) {
  const Netlist& nl = rca_netlist();
  ActivityOptions total;
  total.num_vectors = kActivityVectors;
  const ExecContext& ctx = bench::parallel_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity_sharded(nl, total, kActivityStreams, ctx));
  }
  state.counters["threads"] = static_cast<double>(ctx.threads());
}
BENCHMARK(BM_ActivityShardedParallel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_scheduler_check();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
