// Table 1 reproduction: the thirteen 16-bit multipliers at their optimal
// working point (STM 0.13um LL flavor, f = 31.25 MHz).
//
// Method: each published row over-determines the unpublished per-architecture
// parameters (C, chi, Io_eff); calibrate_from_table1_row() infers them, then
// the numerical optimum and Eq. 13 are recomputed from scratch and compared
// column-by-column against the paper, including the <3% closed-form error
// claim with the paper's sign convention.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "calib/calibrate.h"
#include "power/closed_form.h"
#include "power/optimum.h"
#include "tech/stm_cmos09.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_table1() {
  bench::print_header(
      "Table 1: 16-bit multipliers at the optimal working point (LL, 31.25 MHz)");
  const Technology ll = stm_cmos09_ll();
  const Linearization lin = bench::paper_ll_linearization();

  Table t({"Architecture", "Vdd*", "(pap)", "Vth*", "(pap)", "Pdyn uW", "Pstat uW", "Ptot uW",
           "(pap)", "Eq13 uW", "(pap)", "err%", "(pap)"});
  double max_abs_err = 0.0;
  for (const Table1Row& row : paper_table1()) {
    const CalibratedModel cal = calibrate_from_table1_row(row, ll);
    const OptimumResult opt = find_optimum(cal.model, kPaperFrequency);
    const ClosedFormResult cf = closed_form_optimum(cal.model, kPaperFrequency, lin);
    const double err = bench::eq13_error_pct(opt.point.ptot, cf.ptot_eq13);
    max_abs_err = std::max(max_abs_err, std::fabs(err));
    t.add_row({row.name, bench::volts(opt.point.vdd), bench::volts(row.vdd_opt),
               bench::volts(opt.point.vth), bench::volts(row.vth_opt), bench::uw(opt.point.pdyn),
               bench::uw(opt.point.pstat), bench::uw(opt.point.ptot), bench::uw(row.ptot),
               bench::uw(cf.ptot_eq13), bench::uw(row.ptot_eq13), bench::pct(err),
               bench::pct(row.eq13_err_pct)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("Headline claim check: max |Eq.13 error| = %.2f%% (paper: < 3%%)\n", max_abs_err);
  std::printf("Qualitative checks: Sequential worst (%.0fx Wallace), Wallace family best,\n"
              "hor.pipe beats diag.pipe, Wallace par4 loses to par2 (mux overhead).\n",
              find_table1_row("Sequential")->ptot / find_table1_row("Wallace")->ptot);
}

void BM_CalibrateRow(benchmark::State& state) {
  const Technology ll = stm_cmos09_ll();
  const Table1Row& row = paper_table1()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(calibrate_from_table1_row(row, ll));
  }
}
BENCHMARK(BM_CalibrateRow)->DenseRange(0, 12);

void BM_NumericalOptimum(benchmark::State& state) {
  const CalibratedModel cal = calibrate_from_table1_row(
      paper_table1()[static_cast<std::size_t>(state.range(0))], stm_cmos09_ll());
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_optimum(cal.model, kPaperFrequency));
  }
}
BENCHMARK(BM_NumericalOptimum)->DenseRange(0, 12);

void BM_ClosedFormEq13(benchmark::State& state) {
  const CalibratedModel cal = calibrate_from_table1_row(paper_table1()[0], stm_cmos09_ll());
  const Linearization lin = bench::paper_ll_linearization();
  for (auto _ : state) {
    benchmark::DoNotOptimize(closed_form_optimum(cal.model, kPaperFrequency, lin));
  }
}
BENCHMARK(BM_ClosedFormEq13);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
