// BDD/BMD subsystem benchmarks: exact-activity extraction vs the
// Monte-Carlo testbench, symbolic netlist compilation across widths, and
// formal multiplier equivalence (bit-level case-split fan-out - the
// Serial/Parallel pair - plus the word-level backward-substitution prover
// that carries the 16x16 proofs).
//
// Reproduction table: exact vs simulated activity per architecture (the
// BDD cross-check of the paper's "a" column), then the proof timings.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bdd/equiv.h"
#include "bdd/symbolic.h"
#include "bench_common.h"
#include "mult/array.h"
#include "mult/wallace.h"
#include "sim/activity.h"

namespace optpower {
namespace {

using bench::env_int;

int activity_width() { return env_int("OPTPOWER_BENCH_BDD_ACT_WIDTH", 8); }
int equiv_width() { return env_int("OPTPOWER_BENCH_BDD_EQUIV_WIDTH", 10); }
int equiv_split() { return env_int("OPTPOWER_BENCH_BDD_EQUIV_SPLIT", 3); }

void print_reproduction_table() {
  bench::print_header("Exact (BDD) vs simulated switching activity - zero-delay cross-check");
  // Same estimand on both sides since kZero went truly levelized: the raw
  // Monte-Carlo activity converges on the exact value, no hazard
  // reconciliation factor (the bit-parallel column is the 64-lane engine on
  // the same schedule).
  std::printf("%-12s %10s %14s %14s %14s %10s\n", "netlist", "cells", "a (exact)", "a (MC)",
              "a (bit-par)", "BDD nodes");
  for (const bool wallace : {false, true}) {
    const int w = activity_width();
    const Netlist nl = wallace ? wallace_multiplier(w) : array_multiplier(w);
    const ExactActivity exact = exact_activity(nl);
    ActivityOptions mc;
    mc.num_vectors = 2048;
    mc.delay_mode = SimDelayMode::kZero;
    const ActivityMeasurement measured = measure_activity_sharded(nl, mc, 4);
    ActivityOptions bp = mc;
    bp.engine = ActivityEngine::kBitParallel;
    const ActivityMeasurement bit = measure_activity(nl, bp);
    std::printf("%-12s %10zu %14.5f %14.5f %14.5f %10zu\n", wallace ? "Wallace" : "RCA",
                nl.stats().num_cells, exact.activity, measured.activity, bit.activity,
                exact.bdd_nodes);
  }
  std::printf("\nWord-level proofs (BMD backward substitution), width 16:\n");
  for (const bool wallace : {false, true}) {
    const Netlist nl = wallace ? wallace_multiplier(16) : array_multiplier(16);
    const EquivResult r = check_multiplier_word_level(nl, 16);
    std::printf("  %-8s equivalent=%d proven=%d regions=%zu nodes=%zu\n",
                wallace ? "Wallace" : "RCA", r.equivalent ? 1 : 0, r.proven ? 1 : 0,
                r.collapsed_regions, r.bdd_nodes);
  }
}

void BM_BddCompile(benchmark::State& state) {
  const Netlist nl = array_multiplier(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SymbolicSimulator sym(nl);
    sym.inject_fresh_inputs();
    sym.settle();
    benchmark::DoNotOptimize(sym.outputs());
    state.counters["nodes"] = static_cast<double>(sym.manager().node_count());
  }
}
BENCHMARK(BM_BddCompile)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ExactActivity(benchmark::State& state) {
  const Netlist nl = array_multiplier(activity_width());
  for (auto _ : state) {
    const ExactActivity exact = exact_activity(nl);
    benchmark::DoNotOptimize(exact.activity);
  }
}
BENCHMARK(BM_ExactActivity)->Unit(benchmark::kMillisecond);

void BM_MonteCarloActivityBaseline(benchmark::State& state) {
  // The simulation-based estimate the exact path replaces (same netlist,
  // enough vectors that the estimate is within ~2% of exact).
  const Netlist nl = array_multiplier(activity_width());
  ActivityOptions mc;
  mc.num_vectors = 2048;
  mc.delay_mode = SimDelayMode::kZero;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_activity(nl, mc).activity);
  }
}
BENCHMARK(BM_MonteCarloActivityBaseline)->Unit(benchmark::kMillisecond);

void BM_WordLevelProofRca16(benchmark::State& state) {
  const Netlist nl = array_multiplier(16);
  for (auto _ : state) {
    const EquivResult r = check_multiplier_word_level(nl, 16);
    benchmark::DoNotOptimize(r.equivalent);
  }
}
BENCHMARK(BM_WordLevelProofRca16)->Unit(benchmark::kMillisecond);

void BM_WordLevelProofWallace16(benchmark::State& state) {
  const Netlist nl = wallace_multiplier(16);
  for (auto _ : state) {
    const EquivResult r = check_multiplier_word_level(nl, 16);
    benchmark::DoNotOptimize(r.equivalent);
  }
}
BENCHMARK(BM_WordLevelProofWallace16)->Unit(benchmark::kMillisecond);

void BM_BitLevelEquivSerial(benchmark::State& state) {
  const Netlist nl = array_multiplier(equiv_width());
  EquivOptions options;
  options.case_split_bits = equiv_split();
  for (auto _ : state) {
    const EquivResult r = check_multiplier_against_spec(nl, equiv_width(), options);
    benchmark::DoNotOptimize(r.equivalent);
  }
}
BENCHMARK(BM_BitLevelEquivSerial)->Unit(benchmark::kMillisecond);

void BM_BitLevelEquivParallel(benchmark::State& state) {
  const Netlist nl = array_multiplier(equiv_width());
  (void)nl.fanout();
  EquivOptions options;
  options.case_split_bits = equiv_split();
  for (auto _ : state) {
    const EquivResult r =
        check_multiplier_against_spec(nl, equiv_width(), options, bench::parallel_context());
    benchmark::DoNotOptimize(r.equivalent);
  }
}
BENCHMARK(BM_BitLevelEquivParallel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_reproduction_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
