// Ablation: numerical-optimum search strategies.
//
// The paper computes its reference numbers "numerically ... by calculating
// the total power for all reasonable Vdd/Vth couples" (a 2-D grid).  The
// library's production path restricts the search to the timing-constraint
// curve (1-D).  This bench quantifies the accuracy/cost trade-off.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "calib/calibrate.h"
#include "power/optimum.h"
#include "tech/stm_cmos09.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_comparison() {
  bench::print_header("Ablation: 1-D constrained search vs 2-D grid (paper's method)");
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("RCA"), stm_cmos09_ll());

  const OptimumResult fine = find_optimum(cal.model, kPaperFrequency);
  Table t({"Method", "grid", "Vdd*", "Vth*", "Ptot uW", "vs 1-D"});
  t.add_row({"1-D constrained (Brent)", "-", bench::volts(fine.point.vdd),
             bench::volts(fine.point.vth), bench::uw(fine.point.ptot), "ref"});
  for (const std::size_t n : {41ul, 81ul, 161ul, 321ul}) {
    OptimumOptions opt;
    opt.grid_nx = n;
    opt.grid_ny = n;
    const OptimumResult grid = find_optimum_grid(cal.model, kPaperFrequency, opt);
    t.add_row({"2-D grid", strprintf("%zux%zu", n, n), bench::volts(grid.point.vdd),
               bench::volts(grid.point.vth), bench::uw(grid.point.ptot),
               strprintf("%+.3f%%", (grid.point.ptot / fine.point.ptot - 1.0) * 100.0)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("The grid never undercuts the constrained optimum (it can only land on or\n"
              "above the constraint curve) and converges to it as the grid refines -\n"
              "empirical evidence that the optimum lies ON the timing-equality curve,\n"
              "the assumption Section 3 of the paper builds Eq. 5 on.\n");
}

void BM_Constrained1d(benchmark::State& state) {
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("RCA"), stm_cmos09_ll());
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_optimum(cal.model, kPaperFrequency));
  }
}
BENCHMARK(BM_Constrained1d);

void BM_Grid2d(benchmark::State& state) {
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("RCA"), stm_cmos09_ll());
  OptimumOptions opt;
  opt.grid_nx = static_cast<std::size_t>(state.range(0));
  opt.grid_ny = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_optimum_grid(cal.model, kPaperFrequency, opt));
  }
}
BENCHMARK(BM_Grid2d)->Arg(41)->Arg(81)->Arg(161)->Arg(321)->Unit(benchmark::kMillisecond);

void BM_ScanSamplesSweep(benchmark::State& state) {
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("RCA"), stm_cmos09_ll());
  OptimumOptions opt;
  opt.scan_samples = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_optimum(cal.model, kPaperFrequency, opt));
  }
}
BENCHMARK(BM_ScanSamplesSweep)->Arg(50)->Arg(200)->Arg(600)->Arg(2000);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
