// Table 4 reproduction: the Wallace family on the HS flavor, including the
// paper's parallelization crossover - on HS, "Wallace parallel" consumes
// MORE than the basic Wallace (leaky technology penalizes the doubled cell
// count), the opposite of LL/ULL.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "calib/calibrate.h"
#include "power/closed_form.h"
#include "power/optimum.h"
#include "tech/stm_cmos09.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_table4() {
  bench::print_header("Table 4: Wallace family optimal power, HS flavor (f = 31.25 MHz)");
  const Technology hs = stm_cmos09_hs();
  const Linearization lin = linearize_vdd_root(hs.alpha, 0.3, 1.0);
  std::printf("Flavor linearization: %s\n", to_string(lin).c_str());
  Table t({"Architecture", "Vdd*", "(pap)", "Vth*", "(pap)", "Ptot uW", "(pap)", "Eq13 uW",
           "(pap)", "err%", "(pap)"});
  std::vector<double> ptots;
  for (const WallaceFlavorRow& row : paper_table4_hs()) {
    const auto structure = find_table1_row(row.name);
    const CalibratedModel cal = calibrate_from_optimum(row, *structure, hs);
    const OptimumResult opt = find_optimum(cal.model, kPaperFrequency);
    const ClosedFormResult cf = closed_form_optimum(cal.model, kPaperFrequency, lin);
    const double err = bench::eq13_error_pct(opt.point.ptot, cf.ptot_eq13);
    ptots.push_back(opt.point.ptot);
    t.add_row({row.name, bench::volts(opt.point.vdd), bench::volts(row.vdd_opt),
               bench::volts(opt.point.vth), bench::volts(row.vth_opt), bench::uw(opt.point.ptot),
               bench::uw(row.ptot), bench::uw(cf.ptot_eq13), bench::uw(row.ptot_eq13),
               bench::pct(err), bench::pct(row.eq13_err_pct)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("Crossover check (Section 5): parallel > basic on HS?  %s\n",
              ptots[1] > ptots[0] ? "YES (reproduced)" : "NO (MISMATCH)");
  std::printf("Flavor ordering for the Wallace family: LL (%.2f uW) < ULL (%.2f) < HS (%.2f)\n",
              find_table1_row("Wallace")->ptot * 1e6, paper_table3_ull()[0].ptot * 1e6,
              paper_table4_hs()[0].ptot * 1e6);
}

void BM_HsOptimum(benchmark::State& state) {
  const CalibratedModel cal = calibrate_from_optimum(
      paper_table4_hs()[0], *find_table1_row("Wallace"), stm_cmos09_hs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_optimum(cal.model, kPaperFrequency));
  }
}
BENCHMARK(BM_HsOptimum);

void BM_FlavorLinearization(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(linearize_vdd_root(1.58, 0.3, 1.0));
  }
}
BENCHMARK(BM_FlavorLinearization);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
