// Serving-layer benchmarks: the cache-hit vs steady-state-miss latency
// asymmetry documented in docs/PERF.md (a hit is a hash lookup + LRU
// splice; a miss dispatches a full activity-simulation + optimizer run to a
// worker), plus the raw ResultCache lookup cost in isolation.
//
// Knobs: OPTPOWER_BENCH_SERVE_WORKERS (fleet size, default 2),
// OPTPOWER_BENCH_SERVE_VECTORS (testbench size per query, default 32),
// OPTPOWER_BENCH_SERVE_CACHE_KEYS (microbench key count, default 4096).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/controller.h"
#include "tech/stm_cmos09.h"

namespace optpower {
namespace {

serve::OptimumRequest bench_request() {
  serve::OptimumRequest req =
      serve::make_optimum_request("RCA", stm_cmos09_ull(), 10e6);
  req.activity_vectors =
      static_cast<std::uint32_t>(bench::env_int("OPTPOWER_BENCH_SERVE_VECTORS", 32));
  return req;
}

serve::ControllerOptions bench_options() {
  serve::ControllerOptions opts;
  opts.num_workers = bench::env_int("OPTPOWER_BENCH_SERVE_WORKERS", 2);
  return opts;
}

void BM_ServeCacheHit(benchmark::State& state) {
  serve::Controller controller(bench_options());
  controller.start();
  const serve::OptimumRequest req = bench_request();
  if (controller.handle_optimum(req).error != 0) {
    state.SkipWithError("warm-up query failed");
    controller.stop();
    return;
  }
  for (auto _ : state) {
    serve::OptimumResponse resp = controller.handle_optimum(req);
    benchmark::DoNotOptimize(resp.point.ptot);
  }
  state.counters["cache_hits"] =
      static_cast<double>(controller.stats_snapshot().cache.hits);
  controller.stop();
}
BENCHMARK(BM_ServeCacheHit)->Unit(benchmark::kMicrosecond);

void BM_ServeColdMiss(benchmark::State& state) {
  // Steady-state miss: the cache is bypassed both ways, so every iteration
  // pays a worker dispatch + activity simulation + optimizer search on a
  // warm worker (resident netlist and simulator, as a live fleet sees after
  // its first touch of a design).  The gap to BM_ServeCacheHit is the value
  // of the cache; first-touch misses additionally pay netlist generation.
  serve::Controller controller(bench_options());
  controller.start();
  serve::OptimumRequest req = bench_request();
  req.flags = serve::kFlagNoCacheRead | serve::kFlagNoCacheStore;
  if (controller.handle_optimum(req).error != 0) {
    state.SkipWithError("warm-up query failed");
    controller.stop();
    return;
  }
  for (auto _ : state) {
    serve::OptimumResponse resp = controller.handle_optimum(req);
    benchmark::DoNotOptimize(resp.point.ptot);
  }
  state.counters["dispatches"] =
      static_cast<double>(controller.stats_snapshot().worker_dispatches);
  controller.stop();
}
BENCHMARK(BM_ServeColdMiss)->Unit(benchmark::kMillisecond);

void BM_ResultCacheLookup(benchmark::State& state) {
  const int keys = bench::env_int("OPTPOWER_BENCH_SERVE_CACHE_KEYS", 4096);
  serve::ResultCache cache(static_cast<std::size_t>(keys));
  std::vector<std::string> materials;
  materials.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    materials.push_back("opsv1:bench-key:" + std::to_string(i));
    cache.insert(materials.back(), serve::OptimumResponse{});
  }
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(materials[next]));
    next = (next + 1) % materials.size();
  }
  state.counters["keys"] = static_cast<double>(keys);
}
BENCHMARK(BM_ResultCacheLookup);

}  // namespace
}  // namespace optpower

BENCHMARK_MAIN();
