"""Unit tests for the benchmark-regression gate (stdlib unittest only).

Run from the repo root with:
  python3 -m unittest discover -s bench -p "test_*.py" -v
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import compare_bench


def result_doc(executable, benches):
    """A google-benchmark JSON document with {name: (time, unit)} entries."""
    return {
        "context": {"executable": f"/some/build/dir/{executable}"},
        "benchmarks": [
            {"name": name, "run_type": "iteration", "real_time": time, "time_unit": unit}
            for name, (time, unit) in benches.items()
        ],
    }


class CompareBenchBase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.dir = self._tmp.name

    def write_json(self, name, doc):
        path = os.path.join(self.dir, name)
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return path

    def write_results(self, name, executable, benches):
        return self.write_json(name, result_doc(executable, benches))

    def write_baseline(self, benchmarks):
        return self.write_json("baseline.json", {"_meta": {}, "benchmarks": benchmarks})

    def run_main(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = compare_bench.main(argv)
        return code, out.getvalue(), err.getvalue()


class LoadResultsTest(CompareBenchBase):
    def test_keys_by_executable_basename_and_normalizes_units(self):
        path = self.write_results(
            "BENCH_bench_x.json", "bench_x",
            {"BM_Fast": (2.0, "us"), "BM_Slow": (3.0, "ms")})
        results = compare_bench.load_results(path)
        self.assertEqual(results, {"bench_x/BM_Fast": 2000.0, "bench_x/BM_Slow": 3e6})

    def test_skips_aggregate_rows(self):
        doc = result_doc("bench_x", {"BM_A": (1.0, "ns")})
        doc["benchmarks"].append(
            {"name": "BM_A_mean", "run_type": "aggregate", "real_time": 9.0, "time_unit": "ns"})
        results = compare_bench.load_results(self.write_json("r.json", doc))
        self.assertEqual(list(results), ["bench_x/BM_A"])

    def test_falls_back_to_file_name_without_executable(self):
        doc = result_doc("", {"BM_A": (1.0, "ns")})
        doc["context"] = {}
        results = compare_bench.load_results(self.write_json("BENCH_bench_y.json", doc))
        self.assertEqual(list(results), ["bench_y/BM_A"])


class GateTest(CompareBenchBase):
    def test_regression_beyond_threshold_fails(self):
        baseline = self.write_baseline({"bench_x/BM_A": 1000.0})
        results = self.write_results("r.json", "bench_x", {"BM_A": (1400.0, "ns")})
        code, out, err = self.run_main([results, "--baseline", baseline])
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)
        self.assertIn("FAIL", err)

    def test_within_threshold_passes(self):
        baseline = self.write_baseline({"bench_x/BM_A": 1000.0})
        results = self.write_results("r.json", "bench_x", {"BM_A": (1200.0, "ns")})
        code, out, _ = self.run_main([results, "--baseline", baseline])
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_missing_entries_warn_but_pass(self):
        baseline = self.write_baseline({"bench_x/BM_A": 1000.0, "bench_x/BM_Gone": 5.0})
        results = self.write_results("r.json", "bench_x", {"BM_A": (900.0, "ns")})
        code, out, _ = self.run_main([results, "--baseline", baseline])
        self.assertEqual(code, 0)
        self.assertIn("MISSING", out)

    def test_new_entries_warn_only_on_first_sight(self):
        baseline = self.write_baseline({"bench_x/BM_A": 1000.0})
        results = self.write_results(
            "r.json", "bench_x", {"BM_A": (1000.0, "ns"), "BM_New": (7.0, "ns")})
        code, out, _ = self.run_main([results, "--baseline", baseline])
        self.assertEqual(code, 0)
        self.assertIn("NEW", out)

    def test_update_rewrites_baseline(self):
        baseline = self.write_baseline({"bench_x/BM_Old": 1.0})
        results = self.write_results("r.json", "bench_x", {"BM_A": (42.0, "ns")})
        code, _, _ = self.run_main([results, "--baseline", baseline, "--update"])
        self.assertEqual(code, 0)
        entries, _ = compare_bench.load_baseline(baseline)
        self.assertEqual(entries, {"bench_x/BM_A": 42.0})


class AdoptNewTest(CompareBenchBase):
    def test_adopts_only_new_entries(self):
        baseline = self.write_baseline({"bench_x/BM_A": 1000.0})
        results = self.write_results(
            "r.json", "bench_x", {"BM_A": (1100.0, "ns"), "BM_New": (7.0, "ns")})
        code, out, _ = self.run_main([results, "--baseline", baseline, "--adopt-new"])
        self.assertEqual(code, 0)
        self.assertIn("adopted 1 new", out)
        entries, _ = compare_bench.load_baseline(baseline)
        # The existing entry keeps its recorded time; only BM_New is added.
        self.assertEqual(entries, {"bench_x/BM_A": 1000.0, "bench_x/BM_New": 7.0})

    def test_adoption_still_gates_existing_entries(self):
        baseline = self.write_baseline({"bench_x/BM_A": 1000.0})
        results = self.write_results(
            "r.json", "bench_x", {"BM_A": (2000.0, "ns"), "BM_New": (7.0, "ns")})
        code, _, err = self.run_main([results, "--baseline", baseline, "--adopt-new"])
        self.assertEqual(code, 1)
        self.assertIn("FAIL", err)


class NewSeenTest(CompareBenchBase):
    def setUp(self):
        super().setUp()
        self.baseline = self.write_baseline({"bench_x/BM_A": 1000.0})
        self.results = self.write_results(
            "r.json", "bench_x", {"BM_A": (1000.0, "ns"), "BM_New": (7.0, "ns")})
        self.state = os.path.join(self.dir, "new_seen.json")

    def test_first_sight_passes_and_records_state(self):
        code, _, _ = self.run_main(
            [self.results, "--baseline", self.baseline, "--new-seen", self.state])
        self.assertEqual(code, 0)
        self.assertEqual(compare_bench.read_new_seen(self.state), {"bench_x/BM_New"})

    def test_persisting_new_entry_fails_second_run(self):
        args = [self.results, "--baseline", self.baseline, "--new-seen", self.state]
        self.assertEqual(self.run_main(args)[0], 0)
        code, out, err = self.run_main(args)
        self.assertEqual(code, 1)
        self.assertIn("STALE-NEW", out)
        self.assertIn("FAIL", err)

    def test_adoption_clears_the_state(self):
        args = [self.results, "--baseline", self.baseline, "--new-seen", self.state]
        self.assertEqual(self.run_main(args)[0], 0)
        code, _, _ = self.run_main(args + ["--adopt-new"])
        self.assertEqual(code, 0)
        self.assertEqual(compare_bench.read_new_seen(self.state), set())
        # And the run after that is clean: the entry is in the baseline now.
        self.assertEqual(self.run_main(args)[0], 0)


if __name__ == "__main__":
    unittest.main()
