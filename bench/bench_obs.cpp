// Observability-layer microbenchmarks: the per-event cost ceilings that
// docs/OBSERVABILITY.md and docs/PERF.md quote.  The load-bearing number is
// BM_SpanDisabled - a Span on a hot path with tracing off must cost one
// relaxed atomic load and a branch (sub-nanosecond), which is why the
// simulator and serving layers can keep their spans compiled in
// unconditionally.  BM_SpanEnabled prices the opt-in path (two
// clock_gettime calls + a ring-slot write under an uncontended mutex).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace optpower {
namespace {

void BM_CounterAdd(benchmark::State& state) {
  // The documented hot-path pattern: resolve once, then touch the atomic.
  static obs::Counter& counter = obs::registry().counter("bench.obs.counter");
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  static obs::Histogram& hist = obs::registry().histogram("bench.obs.histogram");
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.observe(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cycle the bucket index
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistryResolve(benchmark::State& state) {
  // The cost the resolve-once pattern avoids paying per event: a mutex plus
  // a linear name scan.  Fine at setup time, not in a simulator inner loop.
  for (auto _ : state) {
    benchmark::DoNotOptimize(&obs::registry().counter("bench.obs.resolve"));
  }
}
BENCHMARK(BM_RegistryResolve);

void BM_SpanDisabled(benchmark::State& state) {
  if (obs::trace_enabled()) {
    state.SkipWithError("tracing is on (OPTPOWER_TRACE set?); disabled-path bench is void");
    return;
  }
  for (auto _ : state) {
    obs::Span span("bench.obs.disabled", "bench");
    span.arg("request_id", 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  const std::string path =
      "/tmp/optpower_bench_obs_trace_" + std::to_string(::getpid()) + ".json";
  if (!obs::trace_start(path.c_str())) {
    state.SkipWithError("trace_start failed");
    return;
  }
  for (auto _ : state) {
    obs::Span span("bench.obs.enabled", "bench");
    span.arg("request_id", 1);
    benchmark::DoNotOptimize(&span);
  }
  obs::trace_stop();  // flushes at most one ring of events, then disables
  ::unlink(path.c_str());
}
BENCHMARK(BM_SpanEnabled);

void BM_MetricsTextDump(benchmark::State& state) {
  // Exposition cost as kMetricsRequest sees it (plus this process's own
  // bench.* instruments; the dump is O(registered instruments)).
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::registry().text_dump());
  }
}
BENCHMARK(BM_MetricsTextDump);

}  // namespace
}  // namespace optpower

BENCHMARK_MAIN();
