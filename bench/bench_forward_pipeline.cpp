// Forward-pipeline reproduction of Table 1's methodology: every multiplier
// is generated as a netlist, characterized with our own STA +
// delay-annotated simulation + cell library (no peeking at the published
// aggregates), and optimized.  Absolute uW differ from the paper's ST flow;
// the orderings and ratios are the check.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "report/forward_flow.h"
#include "tech/stm_cmos09.h"
#include "util/error.h"
#include "util/table.h"

namespace optpower {
namespace {

void print_forward() {
  bench::print_header(
      "Forward pipeline: netlist -> (N, a, LDeff, C) -> optimal working point\n"
      "(own substrates; compare orderings, not absolute uW, against Table 1)");
  ForwardFlowOptions opt;
  opt.activity_vectors = 96;
  const auto results = run_forward_flow_all(stm_cmos09_ll(), kPaperFrequency, opt);

  Table t({"Architecture", "N", "(pap)", "a", "(pap)", "LDeff", "(pap)", "Vdd*", "Vth*",
           "Ptot uW", "(pap uW)", "Eq13 err%"});
  for (const auto& r : results) {
    const auto row = find_table1_row(r.character.name);
    const double err = r.closed_form.valid
                           ? bench::eq13_error_pct(r.optimum.ptot, r.closed_form.ptot_eq13)
                           : 0.0;
    t.add_row({r.character.name, strprintf("%.0f", r.character.arch.n_cells),
               strprintf("%d", row->n_cells), strprintf("%.3f", r.character.arch.activity),
               strprintf("%.4f", row->activity), strprintf("%.1f", r.character.arch.logic_depth),
               strprintf("%.2f", row->logic_depth), bench::volts(r.optimum.vdd),
               bench::volts(r.optimum.vth), bench::uw(r.optimum.ptot), bench::uw(row->ptot),
               r.closed_form.valid ? bench::pct(err) : std::string("n/a")});
  }
  std::fputs(t.to_string().c_str(), stdout);

  const auto find = [&](const char* name) -> const ForwardResult& {
    for (const auto& r : results) {
      if (r.character.name == name) return r;
    }
    throw InvalidArgument("missing row");
  };
  std::printf("Ordering checks vs the paper:\n");
  std::printf("  Wallace < RCA:                 %s\n",
              find("Wallace").optimum.ptot < find("RCA").optimum.ptot ? "YES" : "NO");
  std::printf("  Sequential worst of all:       %s\n",
              find("Sequential").optimum.ptot > find("RCA").optimum.ptot * 3 ? "YES" : "NO");
  std::printf("  pipelining helps RCA:          %s\n",
              find("RCA hor.pipe4").optimum.ptot < find("RCA").optimum.ptot ? "YES" : "NO");
  std::printf("  diag pipe glitchier than hor:  %s\n",
              find("RCA diagpipe4").character.arch.activity >
                      find("RCA hor.pipe4").character.arch.activity
                  ? "YES"
                  : "NO");
  std::printf("  parallelization helps RCA:     %s\n",
              find("RCA parallel").optimum.ptot < find("RCA").optimum.ptot ? "YES" : "NO");
}

// Env-overridable: the CI bench-smoke step shrinks the simulation window;
// the regression-gate job uses the default.
const int kForwardVectors = bench::env_int("OPTPOWER_BENCH_FWD_VECTORS", 32);

void BM_ForwardFlowOneArch(benchmark::State& state) {
  ForwardFlowOptions opt;
  opt.activity_vectors = kForwardVectors;
  const std::string name = multiplier_names()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_forward_flow(name, stm_cmos09_ll(), kPaperFrequency, opt));
  }
  state.SetLabel(name);
}
BENCHMARK(BM_ForwardFlowOneArch)->DenseRange(0, 12)->Unit(benchmark::kMillisecond);

// All 13 architectures end-to-end, serial vs one-task-per-architecture - the
// architecture-exploration sweep the examples run.
void BM_ForwardFlowAllSerial(benchmark::State& state) {
  ForwardFlowOptions opt;
  opt.activity_vectors = kForwardVectors;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_forward_flow_all(stm_cmos09_ll(), kPaperFrequency, opt));
  }
}
BENCHMARK(BM_ForwardFlowAllSerial)->Unit(benchmark::kMillisecond);

void BM_ForwardFlowAllParallel(benchmark::State& state) {
  ForwardFlowOptions opt;
  opt.activity_vectors = kForwardVectors;
  const ExecContext& ctx = bench::parallel_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_forward_flow_all(stm_cmos09_ll(), kPaperFrequency, opt, ctx));
  }
  state.counters["threads"] = static_cast<double>(ctx.threads());
}
BENCHMARK(BM_ForwardFlowAllParallel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_forward();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
