// Figure 1 reproduction: total power of the 16-bit RCA multiplier along the
// timing-constraint curve for several activities, with the optimal working
// points marked and the dynamic/static ratio annotated (exactly the
// figure's content).  Emits an ASCII plot plus a CSV block for replotting.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "calib/calibrate.h"
#include "power/surface.h"
#include "tech/stm_cmos09.h"
#include "util/ascii_plot.h"
#include "util/csv.h"

namespace optpower {
namespace {

PowerModel rca_model() {
  return calibrate_from_table1_row(*find_table1_row("RCA"), stm_cmos09_ll()).model;
}

void print_figure1() {
  bench::print_header(
      "Figure 1: Ptot vs Vdd along the timing constraint, RCA multiplier,\n"
      "activities a, a/2, a/4, a/8 (X marks the optimal working points)");
  const PowerModel model = rca_model();
  const std::vector<double> scales = {1.0, 0.5, 0.25, 0.125};
  const auto curves = figure1_curves(model, kPaperFrequency, scales, 0.33, 1.1, 160);

  AsciiPlot plot({.width = 76, .height = 24, .log_y = true,
                  .title = "Ptot [W] (log) vs Vdd [V], f = 31.25 MHz",
                  .x_label = "Vdd [V]"});
  const char glyphs[] = {'*', 'o', '+', '.'};
  for (std::size_t k = 0; k < curves.size(); ++k) {
    PlotSeries s;
    for (const auto& sample : curves[k].samples) {
      s.x.push_back(sample.vdd);
      s.y.push_back(sample.ptot);
    }
    s.glyph = glyphs[k % 4];
    s.label = strprintf("a = %.4f", curves[k].activity);
    plot.add_series(std::move(s));
  }
  for (const auto& c : curves) plot.add_marker(c.optimum.vdd, c.optimum.ptot, 'X');
  std::fputs(plot.render().c_str(), stdout);

  std::printf("\nOptimal working points (the figure's annotations):\n");
  for (const auto& c : curves) {
    std::printf("  a = %.4f : Vdd* = %.3f V, Vth* = %.3f V, Ptot* = %8.2f uW, Pdyn/Pstat = %.2f\n",
                c.activity, c.optimum.vdd, c.optimum.vth, c.optimum.ptot * 1e6,
                c.dyn_stat_ratio);
  }
  std::printf("Shape checks: lower activity -> lower Ptot, higher Vdd* and Vth* (paper,\n"
              "Section 1); dyn/stat ratio stays within a small band across activities.\n");

  CsvWriter csv({"activity", "vdd", "vth", "pdyn_w", "pstat_w", "ptot_w"});
  for (const auto& c : curves) {
    for (const auto& s : c.samples) {
      csv.add_row(std::vector<double>{c.activity, s.vdd, s.vth, s.pdyn, s.pstat, s.ptot});
    }
  }
  std::printf("\nCSV series (%zu rows) follow; pipe to a file to replot:\n", csv.num_rows());
  std::fputs(csv.to_string().c_str(), stdout);
}

// Env-overridable problem sizes: the CI bench-smoke step shrinks these to
// stay fast; the regression-gate job and the committed BENCH_*.json use the
// defaults.
const int kSurfaceN = bench::env_int("OPTPOWER_BENCH_SURFACE_N", 512);
const int kFig1Samples = bench::env_int("OPTPOWER_BENCH_FIG1_SAMPLES", 160);

void BM_ConstraintCurve(benchmark::State& state) {
  const PowerModel model = rca_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        constraint_curve(model, kPaperFrequency, 0.33, 1.1, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ConstraintCurve)->Arg(40)->Arg(160)->Arg(640);

void BM_Figure1FullSweepSerial(benchmark::State& state) {
  const PowerModel model = rca_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(figure1_curves(model, kPaperFrequency, {1.0, 0.5, 0.25, 0.125},
                                            0.33, 1.1, kFig1Samples));
  }
}
BENCHMARK(BM_Figure1FullSweepSerial)->Unit(benchmark::kMillisecond);

void BM_Figure1FullSweepParallel(benchmark::State& state) {
  const PowerModel model = rca_model();
  const ExecContext& ctx = bench::parallel_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(figure1_curves(model, kPaperFrequency, {1.0, 0.5, 0.25, 0.125},
                                            0.33, 1.1, kFig1Samples, ctx));
  }
  state.counters["threads"] = static_cast<double>(ctx.threads());
}
BENCHMARK(BM_Figure1FullSweepParallel)->Unit(benchmark::kMillisecond);

// The headline sweep of the regression gate: a dense (Vdd, Vth) power
// surface, serial vs fanned out over the pool.  Identical cells either way.
void BM_PowerSurfaceSerial(benchmark::State& state) {
  const PowerModel model = rca_model();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(power_surface(model, kPaperFrequency, 0.2, 1.2, n, 0.0, 0.5, n));
  }
}
BENCHMARK(BM_PowerSurfaceSerial)->Arg(64)->Arg(kSurfaceN)->Unit(benchmark::kMillisecond);

void BM_PowerSurfaceParallel(benchmark::State& state) {
  const PowerModel model = rca_model();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ExecContext& ctx = bench::parallel_context();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        power_surface(model, kPaperFrequency, 0.2, 1.2, n, 0.0, 0.5, n, ctx));
  }
  state.counters["threads"] = static_cast<double>(ctx.threads());
}
BENCHMARK(BM_PowerSurfaceParallel)->Arg(64)->Arg(kSurfaceN)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace optpower

int main(int argc, char** argv) {
  optpower::print_figure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
