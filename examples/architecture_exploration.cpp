// Architecture exploration: which multiplier should you use at which
// throughput?  Runs the full forward flow (netlist generation -> simulation
// -> STA -> optimization) for a few candidate architectures over a range of
// data rates and prints the winner per operating point - the paper's
// Section-4 question answered as a library workflow.
#include <cstdio>
#include <vector>

#include "optpower/optpower.h"

int main() {
  using namespace optpower;

  const std::vector<std::string> candidates = {"RCA", "RCA hor.pipe4", "Wallace",
                                               "Wallace parallel", "Sequential"};
  std::printf("Characterizing %zu architectures (build + simulate + STA)...\n\n",
              candidates.size());

  // Characterize once; the aggregates don't depend on frequency.
  ForwardFlowOptions opt;
  opt.activity_vectors = 64;
  std::vector<ForwardCharacterization> chars;
  for (const auto& name : candidates) {
    chars.push_back(characterize_multiplier(build_multiplier(name), opt));
    const auto& c = chars.back();
    std::printf("  %-18s N = %5.0f  a = %.3f  LDeff = %6.1f  C = %.1f fF\n", c.name.c_str(),
                c.arch.n_cells, c.arch.activity, c.arch.logic_depth, c.arch.cell_cap * 1e15);
  }

  Technology tech = stm_cmos09_ll();
  tech.io *= 16.0;  // per-cell effective scale (see report/forward_flow.h)

  std::printf("\n%-12s", "f [MHz]");
  for (const auto& c : chars) std::printf(" %16s", c.name.c_str());
  std::printf("   winner\n");

  for (const double f_mhz : {2.0, 8.0, 31.25, 125.0, 350.0}) {
    std::printf("%-12.2f", f_mhz);
    std::string winner;
    double best = 1e9;
    for (const auto& c : chars) {
      const PowerModel model(tech, c.arch);
      double ptot_uw;
      try {
        ptot_uw = find_optimum(model, f_mhz * 1e6).point.ptot * 1e6;
      } catch (const Error&) {
        std::printf(" %16s", "infeasible");
        continue;
      }
      std::printf(" %13.1fuW", ptot_uw);
      if (ptot_uw < best) {
        best = ptot_uw;
        winner = c.name;
      }
    }
    std::printf("   %s\n", winner.c_str());
  }

  std::printf(
      "\nReading: at very low data rates the compact sequential design becomes\n"
      "competitive (its huge effective logic depth stops binding); at high rates the\n"
      "short-depth Wallace structures win - the trade-off Section 4 of the paper\n"
      "explains through Eq. 13's chi term.\n");
  return 0;
}
