// Architecture exploration: which multiplier should you use at which
// throughput?  Runs the full forward flow (netlist generation -> simulation
// -> STA -> optimization) for a few candidate architectures over a range of
// data rates and prints the winner per operating point - the paper's
// Section-4 question answered as a library workflow.
#include <cstdio>
#include <vector>

#include "optpower/optpower.h"

int main() {
  using namespace optpower;

  const std::vector<std::string> candidates = {"RCA", "RCA hor.pipe4", "Wallace",
                                               "Wallace parallel", "Sequential"};
  // The exploration sweep is the hot path: each candidate's characterization
  // (netlist build + event simulation + STA) is independent, so fan them out
  // over OPTPOWER_THREADS workers (unset = all cores; results are identical
  // to the serial loop either way).
  const ExecContext exec = ExecContext::from_env();
  std::printf("Characterizing %zu architectures (build + simulate + STA, %d thread%s)...\n\n",
              candidates.size(), exec.threads(), exec.threads() == 1 ? "" : "s");

  // Characterize once; the aggregates don't depend on frequency.
  ForwardFlowOptions opt;
  opt.activity_vectors = 64;
  const std::vector<ForwardCharacterization> chars =
      parallel_map<ForwardCharacterization>(exec, candidates.size(), [&](std::size_t k) {
        return characterize_multiplier(build_multiplier(candidates[k]), opt);
      });
  for (const auto& c : chars) {
    std::printf("  %-18s N = %5.0f  a = %.3f  LDeff = %6.1f  C = %.1f fF\n", c.name.c_str(),
                c.arch.n_cells, c.arch.activity, c.arch.logic_depth, c.arch.cell_cap * 1e15);
  }

  Technology tech = stm_cmos09_ll();
  tech.io *= 16.0;  // per-cell effective scale (see report/forward_flow.h)

  std::printf("\n%-12s", "f [MHz]");
  for (const auto& c : chars) std::printf(" %16s", c.name.c_str());
  std::printf("   winner\n");

  const std::vector<double> f_mhz = {2.0, 8.0, 31.25, 125.0, 350.0};
  std::vector<double> frequencies;
  frequencies.reserve(f_mhz.size());
  for (const double f : f_mhz) frequencies.push_back(f * 1e6);

  // One per-configuration sweep per candidate, fanned out across the
  // frequency axis; infeasible operating points come back flagged instead
  // of throwing.
  std::vector<std::vector<OptimumSweepPoint>> sweeps;
  sweeps.reserve(chars.size());
  for (const auto& c : chars) {
    const PowerModel model(tech, c.arch);
    sweeps.push_back(optimum_sweep(model, frequencies, {}, exec));
  }

  for (std::size_t fi = 0; fi < frequencies.size(); ++fi) {
    std::printf("%-12.2f", f_mhz[fi]);
    std::string winner;
    double best = 1e9;
    for (std::size_t k = 0; k < chars.size(); ++k) {
      const OptimumSweepPoint& point = sweeps[k][fi];
      if (!point.feasible) {
        std::printf(" %16s", "infeasible");
        continue;
      }
      const double ptot_uw = point.result.point.ptot * 1e6;
      std::printf(" %13.1fuW", ptot_uw);
      if (ptot_uw < best) {
        best = ptot_uw;
        winner = chars[k].name;
      }
    }
    std::printf("   %s\n", winner.c_str());
  }

  std::printf(
      "\nReading: at very low data rates the compact sequential design becomes\n"
      "competitive (its huge effective logic depth stops binding); at high rates the\n"
      "short-depth Wallace structures win - the trade-off Section 4 of the paper\n"
      "explains through Eq. 13's chi term.\n");
  return 0;
}
