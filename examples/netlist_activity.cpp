// Netlist playground: build a multiplier netlist, inspect its structure,
// watch it compute, and measure its switching activity with and without
// glitch-accurate delays - the simulation substrate behind the paper's "a".
#include <cstdio>

#include "optpower/optpower.h"

int main() {
  using namespace optpower;

  // Build the 8-bit diagonal-pipelined array multiplier of Figure 4.
  const GeneratedMultiplier gen = build_multiplier("RCA diagpipe2", 8);
  const Netlist& nl = gen.netlist;
  const NetlistStats stats = nl.stats();
  std::printf("Netlist '%s': %zu cells (%zu DFFs), %zu nets, %.0f um2\n", nl.name().c_str(),
              stats.num_cells, stats.num_sequential, stats.num_nets, stats.area_um2);

  const TimingReport timing = analyze_timing(nl);
  std::printf("Critical path: %.1f equivalent gate delays through %zu cells\n",
              timing.critical_path_units, timing.critical_path.size());

  // Watch it multiply.
  EventSimulator sim(nl, SimDelayMode::kUnit);
  std::printf("\nComputing 13 x 11 (pipeline flushes through):\n");
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::vector<bool> in(16);
    for (int i = 0; i < 8; ++i) {
      in[static_cast<std::size_t>(i)] = (13 >> i) & 1;
      in[static_cast<std::size_t>(8 + i)] = (11 >> i) & 1;
    }
    sim.set_inputs(in);
    sim.step_cycle();
    std::printf("  cycle %d: p = %llu\n", cycle,
                static_cast<unsigned long long>(sim.outputs_word()));
  }
  std::printf("  expected 143\n");

  // Activity with and without timing-accurate delays: glitches are the
  // difference (the paper's diagonal-pipeline penalty).
  ActivityOptions opt;
  opt.num_vectors = 256;
  opt.delay_mode = SimDelayMode::kCellDepth;
  const ActivityMeasurement timed = measure_activity(nl, opt);
  opt.delay_mode = SimDelayMode::kZero;
  const ActivityMeasurement zero_delay = measure_activity(nl, opt);
  std::printf("\nActivity, delay-annotated: a = %.3f (glitch fraction %.1f%%)\n",
              timed.activity, timed.glitch_fraction * 100.0);
  std::printf("Activity, zero-delay:      a = %.3f (functional toggles only)\n",
              zero_delay.activity);
  std::printf("Glitch overhead: %.1f%% extra switched capacitance\n",
              (timed.activity / zero_delay.activity - 1.0) * 100.0);

  // Same zero-delay estimate through the 64-lane bit-parallel engine: one
  // word-level pass simulates 64 testbench streams at once.
  opt.engine = ActivityEngine::kBitParallel;
  const ActivityMeasurement bit_parallel = measure_activity(nl, opt);
  std::printf("Activity, bit-parallel:    a = %.3f (64 zero-delay lanes per pass)\n",
              bit_parallel.activity);
  opt.engine = ActivityEngine::kScalarEvent;

  // Compare against the horizontal cut of Figure 3.
  const GeneratedMultiplier hor = build_multiplier("RCA hor.pipe2", 8);
  opt.delay_mode = SimDelayMode::kCellDepth;
  const ActivityMeasurement hor_act = measure_activity(hor.netlist, opt);
  std::printf("\nHorizontal pipeline for comparison: a = %.3f (glitch fraction %.1f%%)\n",
              hor_act.activity, hor_act.glitch_fraction * 100.0);
  std::printf("The diagonal cut is %.0f%% more active - the Figure 3/4 story.\n",
              (timed.activity / hor_act.activity - 1.0) * 100.0);
  return 0;
}
