// Quickstart: find the optimal (Vdd, Vth) working point of a circuit.
//
// Describe your circuit by four aggregates (cells N, activity a, effective
// logic depth LD, average cell capacitance C), pick a technology, and ask
// for the minimum-total-power working point at your clock frequency - both
// numerically and with the paper's closed-form Eq. 13.
#include <cstdio>

#include "optpower/optpower.h"

int main() {
  using namespace optpower;

  // 1. Technology: the STM 0.13 um Low-Leakage flavor of the paper (Table 2),
  //    with the per-cell effective scale the Table-1 calibration infers.
  Technology tech = stm_cmos09_ll();
  tech.io = 5.4e-5;    // average off-current per *cell* (not per transistor)
  tech.zeta = 7.1e-12; // average cell delay coefficient

  // 2. Architecture: a 16-bit Wallace-tree multiplier's aggregates.
  ArchitectureParams arch;
  arch.name = "my wallace multiplier";
  arch.n_cells = 729;
  arch.activity = 0.2976;   // switching cells per clock per cell
  arch.logic_depth = 17;    // critical path in equivalent gate delays
  arch.cell_cap = 60e-15;   // average equivalent cell capacitance [F]

  // 3. Optimize at 31.25 MHz.
  const double f = 31.25e6;
  const PowerModel model(tech, arch);
  const OptimumResult opt = find_optimum(model, f);

  std::printf("Numerical optimum for '%s' at %.2f MHz:\n", arch.name.c_str(), f / 1e6);
  std::printf("  Vdd* = %.3f V, Vth* = %.3f V\n", opt.point.vdd, opt.point.vth);
  std::printf("  Ptot = %.2f uW (dynamic %.2f + static %.2f, ratio %.2f)\n",
              opt.point.ptot * 1e6, opt.point.pdyn * 1e6, opt.point.pstat * 1e6,
              opt.point.dyn_stat_ratio());

  // 4. The closed-form estimate (Eq. 13) - no optimization loop needed.
  const ClosedFormResult cf = closed_form_optimum(model, f);
  std::printf("Closed form (Eq. 13): Ptot = %.2f uW (%.2f%% from numerical)\n",
              cf.ptot_eq13 * 1e6, (cf.ptot_eq13 / opt.point.ptot - 1.0) * 100.0);

  // 5. What would cutting the activity in half buy?
  ArchitectureParams quiet = arch;
  quiet.activity *= 0.5;
  const OptimumResult opt2 = find_optimum(PowerModel(tech, quiet), f);
  std::printf("Half the activity: Ptot = %.2f uW at Vdd* = %.3f V (higher supply, less power)\n",
              opt2.point.ptot * 1e6, opt2.point.vdd);
  return 0;
}
