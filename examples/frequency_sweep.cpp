// Frequency sweep: how the optimal working point moves with the throughput
// target.  Prints Vdd*, Vth*, the power split and Eq. 13 tracking across
// three decades of clock frequency, plus parameter elasticities at the
// paper's operating point.
#include <cmath>
#include <cstdio>

#include "optpower/optpower.h"

int main() {
  using namespace optpower;

  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("RCA"), stm_cmos09_ll());
  const PowerModel& model = cal.model;

  std::printf("16-bit RCA multiplier (calibrated), sweeping the throughput target:\n\n");
  std::printf("%10s %9s %9s %11s %11s %10s %10s\n", "f [MHz]", "Vdd* [V]", "Vth* [V]",
              "Ptot [uW]", "Eq13 [uW]", "dyn/stat", "Eq13 err%");
  for (const double f_mhz : {1.0, 3.125, 10.0, 31.25, 62.5, 125.0, 250.0, 500.0}) {
    const double f = f_mhz * 1e6;
    OptimumResult opt;
    try {
      opt = find_optimum(model, f);
    } catch (const NumericalError&) {
      // Beyond the architecture's reach: no (Vdd <= 1.4 V, Vth) meets timing.
      std::printf("%10.3f %s\n", f_mhz, "   -- infeasible at any allowed supply --");
      continue;
    }
    const ClosedFormResult cf = closed_form_optimum(model, f);
    const double err_pct = cf.valid
                               ? (opt.point.ptot - cf.ptot_eq13) / opt.point.ptot * 100.0
                               : 0.0;
    // Eq. 13 is meaningful while the optimum stays inside the linearization
    // range and clear of the supply clamp.
    const bool in_validity = cf.valid && opt.point.vdd < 1.35 && std::fabs(err_pct) < 25.0;
    std::printf("%10.3f %9.3f %9.3f %11.2f %11.2f %10.2f %10s\n", f_mhz, opt.point.vdd,
                opt.point.vth, opt.point.ptot * 1e6, cf.valid ? cf.ptot_eq13 * 1e6 : 0.0,
                opt.point.dyn_stat_ratio(),
                in_validity ? strprintf("%+.2f", err_pct).c_str() : "n/a");
  }

  std::printf("\nElasticities of Ptot* at f = 31.25 MHz (d ln Ptot / d ln x):\n");
  for (const Elasticity& e : optimal_power_elasticities(model, kPaperFrequency)) {
    std::printf("  %-20s %+6.3f\n", to_string(e.parameter).c_str(), e.elasticity);
  }
  std::printf(
      "\nReading: N scales power exactly linearly; activity slightly sub-linearly\n"
      "(the optimizer claws a little back); frequency super-linearly (it also\n"
      "tightens the timing constraint through chi).\n");
  return 0;
}
