// Technology selection: given an architecture and a throughput target,
// which process flavor minimizes the optimal total power?  Reproduces the
// paper's Section-5 conclusion (moderate flavors win) and extends it with
// hypothetical scaled nodes.
#include <cstdio>

#include "optpower/optpower.h"

int main() {
  using namespace optpower;

  // The calibrated Wallace multiplier of Table 1 as the workload.
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("Wallace"), stm_cmos09_ll());
  const ArchitectureParams arch = cal.model.arch();
  const double f = kPaperFrequency;

  std::printf("Workload: %s, f = %.2f MHz\n\n", arch.name.c_str(), f / 1e6);
  std::printf("%-22s %8s %8s %10s %12s\n", "Technology", "Vdd* [V]", "Vth* [V]", "Ptot [uW]",
              "dyn/stat");

  // The three real flavors: scale each flavor's (io, zeta) by the same
  // per-cell factor the LL calibration inferred, so the comparison carries
  // the flavor ratios of Table 2.
  const Technology ll = stm_cmos09_ll();
  const double io_scale = cal.io_eff / ll.io;
  const double zeta_scale = cal.zeta_eff / ll.zeta;
  for (Technology tech : stm_cmos09_all()) {
    tech.io *= io_scale;
    tech.zeta *= zeta_scale;
    const PowerModel model(tech, arch);
    const OptimumResult opt = find_optimum(model, f);
    std::printf("%-22s %8.3f %8.3f %10.2f %12.2f\n", tech.name.c_str(), opt.point.vdd,
                opt.point.vth, opt.point.ptot * 1e6, opt.point.dyn_stat_ratio());
  }

  // Hypothetical scaled nodes from the LL flavor.
  std::printf("\nHypothetical nodes (leakage-aggressive constant-field scaling of LL):\n");
  Technology base = ll;
  base.io *= io_scale;
  base.zeta *= zeta_scale;
  for (const double ratio : {1.0, 0.69, 0.5}) {
    const Technology scaled = scale_technology(base, ratio);
    const OptimumResult opt = find_optimum(PowerModel(scaled, arch), f);
    std::printf("  %-20s Ptot = %8.2f uW (Vdd* %.3f, Vth* %.3f)\n", scaled.name.c_str(),
                opt.point.ptot * 1e6, opt.point.vdd, opt.point.vth);
  }

  std::printf(
      "\nReading: the LL flavor beats both extremes (ULL too slow -> high Vdd; HS too\n"
      "leaky -> high Pstat), and aggressive leakage scaling can make a smaller node\n"
      "WORSE at iso-throughput - Section 5's two conclusions.\n");
  return 0;
}
