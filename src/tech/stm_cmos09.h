// The three flavors of the STM CMOS09 0.13 um technology from Table 2 of the
// paper, plus the paper's published model constants for the LL flavor.
//
//   Table 2 - STM CMOS09 technology
//             Vdd_nom  Vth0_nom  Io [uA]  zeta [pF]  alpha
//     ULL     1.2      0.466     2.11     7.5        1.95
//     LL      1.2      0.354     3.34     5.5        1.86
//     HS      1.2      0.328     7.08     6.1        1.58
//
// The weak-inversion slope n = 1.33 is published for LL only; the paper uses
// one n for the study and we follow it for all flavors (documented
// substitution, see DESIGN.md).
#pragma once

#include <vector>

#include "tech/technology.h"

namespace optpower {

/// Ultra Low Leakage flavor.
[[nodiscard]] Technology stm_cmos09_ull();
/// Low Leakage flavor (the paper's Table 1 baseline).
[[nodiscard]] Technology stm_cmos09_ll();
/// High Speed flavor.
[[nodiscard]] Technology stm_cmos09_hs();

/// All three flavors in the paper's order (ULL, LL, HS).
[[nodiscard]] std::vector<Technology> stm_cmos09_all();

/// Paper constants for the Eq. 7 linearization of the LL flavor:
/// "A = 0.671; B = 0.347" fitted on Vdd in [0.3, 1.0] V for alpha = 1.86.
struct PaperLinearization {
  double a = 0.671;
  double b = 0.347;
  double fit_lo = 0.3;
  double fit_hi = 1.0;
};
[[nodiscard]] PaperLinearization paper_linearization_ll();

}  // namespace optpower
