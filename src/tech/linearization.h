// Eq. 7 of the paper: the linearization Vdd^{1/alpha} ~= A*Vdd + B over a
// supply-voltage fitting range.  A and B feed the closed-form optimum
// (Eq. 9-13); Figure 2 of the paper plots this approximation for alpha = 1.5.
#pragma once

#include <string>

namespace optpower {

/// How to fit the line.
enum class LinearizationMethod {
  kLeastSquares,  ///< the paper "minimiz[es] the approximation error (7)"; LSQ on dense samples
  kMinimax,       ///< Chebyshev equioscillating line (alternative; ablation bench compares)
};

/// The fitted line plus metadata.
struct Linearization {
  double a = 0.0;      ///< slope (paper's A)
  double b = 0.0;      ///< intercept (paper's B)
  double alpha = 0.0;  ///< the exponent that was linearized
  double lo = 0.0;     ///< fit range [V]
  double hi = 0.0;
  LinearizationMethod method = LinearizationMethod::kLeastSquares;
  double max_abs_error = 0.0;  ///< max |Vdd^{1/alpha} - (A Vdd + B)| over the range
  double max_rel_error = 0.0;  ///< same, relative to Vdd^{1/alpha}

  /// Evaluate the linear approximation A*vdd + B.
  [[nodiscard]] double operator()(double vdd) const noexcept { return a * vdd + b; }
};

/// Fit Vdd^{1/alpha} ~= A*Vdd + B over [lo, hi].
/// Preconditions: alpha in [1, 2], 0 < lo < hi.
[[nodiscard]] Linearization linearize_vdd_root(
    double alpha, double lo, double hi,
    LinearizationMethod method = LinearizationMethod::kLeastSquares, int samples = 512);

/// Human-readable one-liner, e.g. "A=0.671 B=0.347 (alpha=1.86, 0.30-1.00V, lsq)".
[[nodiscard]] std::string to_string(const Linearization& lin);

}  // namespace optpower
