#include "tech/technology.h"

#include "util/error.h"
#include "util/hash.h"

namespace optpower {

MosfetParams Technology::reference_transistor() const {
  MosfetParams m;
  m.name = name;
  m.io = io;
  m.n = n;
  m.alpha = alpha;
  m.vth0 = vth0_nom;
  m.eta = eta;
  m.temperature_k = temperature_k;
  return m;
}

void validate(const Technology& tech) {
  require(tech.io > 0.0, "Technology '" + tech.name + "': io must be positive");
  require(tech.n >= 1.0, "Technology '" + tech.name + "': slope n must be >= 1");
  require(tech.alpha >= 1.0 && tech.alpha <= 2.0,
          "Technology '" + tech.name + "': alpha must lie in [1, 2]");
  require(tech.zeta > 0.0, "Technology '" + tech.name + "': zeta must be positive");
  require(tech.vdd_nom > 0.0, "Technology '" + tech.name + "': vdd_nom must be positive");
  require(tech.vth0_nom > 0.0 && tech.vth0_nom < tech.vdd_nom,
          "Technology '" + tech.name + "': vth0_nom must lie in (0, vdd_nom)");
  require(tech.eta >= 0.0 && tech.eta < 0.5,
          "Technology '" + tech.name + "': eta must lie in [0, 0.5)");
  require(tech.temperature_k > 0.0,
          "Technology '" + tech.name + "': temperature must be positive");
}

std::uint64_t content_hash(const Technology& tech) {
  Fnv1a64 h;
  h.update_f64(tech.io);
  h.update_f64(tech.n);
  h.update_f64(tech.alpha);
  h.update_f64(tech.zeta);
  h.update_f64(tech.vdd_nom);
  h.update_f64(tech.vth0_nom);
  h.update_f64(tech.eta);
  h.update_f64(tech.temperature_k);
  return h.digest();
}

}  // namespace optpower
