#include "tech/linearization.h"

#include <cmath>

#include "numeric/fit.h"
#include "util/error.h"
#include "util/format.h"

namespace optpower {

Linearization linearize_vdd_root(double alpha, double lo, double hi, LinearizationMethod method,
                                 int samples) {
  require(alpha >= 1.0 && alpha <= 2.0, "linearize_vdd_root: alpha must lie in [1, 2]");
  require(lo > 0.0 && lo < hi, "linearize_vdd_root: need 0 < lo < hi");
  const auto f = [alpha](double v) { return std::pow(v, 1.0 / alpha); };

  const LineFit fit = (method == LinearizationMethod::kLeastSquares)
                          ? fit_line_least_squares(f, lo, hi, samples)
                          : fit_line_minimax(f, lo, hi, samples);

  Linearization lin;
  lin.a = fit.slope;
  lin.b = fit.intercept;
  lin.alpha = alpha;
  lin.lo = lo;
  lin.hi = hi;
  lin.method = method;
  lin.max_abs_error = fit.max_abs_error;

  double max_rel = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double v = lo + (hi - lo) * static_cast<double>(i) / (samples - 1);
    const double exact = f(v);
    max_rel = std::max(max_rel, std::fabs(exact - lin(v)) / exact);
  }
  lin.max_rel_error = max_rel;
  return lin;
}

std::string to_string(const Linearization& lin) {
  return strprintf("A=%.4f B=%.4f (alpha=%.3f, %.2f-%.2fV, %s, max_err=%.2e)", lin.a, lin.b,
                   lin.alpha, lin.lo, lin.hi,
                   lin.method == LinearizationMethod::kLeastSquares ? "lsq" : "minimax",
                   lin.max_abs_error);
}

}  // namespace optpower
