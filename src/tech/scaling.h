// Hypothetical technology scaling.
//
// Section 5 of the paper closes with: "a smaller technology node with
// ultra-high speed and large leakage might consume more than a larger techno
// with better balanced alpha, Io, zeta ... at its optimal working point".
// This module builds such hypothetical nodes so the extension bench
// (bench_ablation_technology) can quantify that remark.
//
// Scaling model (first-order constant-field scaling with leakage-driven
// deviations, documented per parameter):
//   * zeta  ~ s^1   : switched capacitance shrinks with feature size s
//   * io    ~ s^-g  : off-current grows as thresholds drop with scaling
//                     (g = leakage_aggressiveness, default 2)
//   * alpha : drifts toward 1 (velocity saturation) by `alpha_drift` per
//             halving of the node
//   * vth0  ~ s^0.5 : thresholds shrink slower than the node
//   * vdd   ~ s^0.5 : same (post-Dennard supply scaling slowdown)
#pragma once

#include "tech/technology.h"

namespace optpower {

/// Knobs of the scaling model.
struct ScalingModel {
  double leakage_aggressiveness = 2.0;  ///< io ~ s^-g
  double alpha_drift = 0.15;            ///< alpha reduction per node halving
  double voltage_exponent = 0.5;        ///< vdd, vth ~ s^e
};

/// Scale `base` to a new feature size.  `size_ratio` is
/// new_node / old_node, e.g. 90/130 ~ 0.69 for 0.13 um -> 90 nm.
/// Throws InvalidArgument for non-positive or > 1.5 ratios.
[[nodiscard]] Technology scale_technology(const Technology& base, double size_ratio,
                                          const ScalingModel& model = {});

}  // namespace optpower
