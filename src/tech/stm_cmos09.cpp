#include "tech/stm_cmos09.h"

#include <vector>

namespace optpower {
namespace {

Technology make(const char* name, double vth0, double io, double zeta, double alpha) {
  Technology t;
  t.name = name;
  t.vdd_nom = 1.2;
  t.vth0_nom = vth0;
  t.io = io;
  t.zeta = zeta;
  t.alpha = alpha;
  t.n = 1.33;  // published for LL; assumed flavor-invariant (see header)
  return t;
}

}  // namespace

Technology stm_cmos09_ull() { return make("STM_CMOS09_ULL", 0.466, 2.11e-6, 7.5e-12, 1.95); }
Technology stm_cmos09_ll() { return make("STM_CMOS09_LL", 0.354, 3.34e-6, 5.5e-12, 1.86); }
Technology stm_cmos09_hs() { return make("STM_CMOS09_HS", 0.328, 7.08e-6, 6.1e-12, 1.58); }

std::vector<Technology> stm_cmos09_all() {
  return {stm_cmos09_ull(), stm_cmos09_ll(), stm_cmos09_hs()};
}

PaperLinearization paper_linearization_ll() { return {}; }

}  // namespace optpower
