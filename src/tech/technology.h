// Technology description: the parameter vector the paper reduces a CMOS
// process flavor to (Table 2), plus derived quantities.
#pragma once

#include <string>

#include "device/mosfet.h"
#include "util/constants.h"

namespace optpower {

/// A process flavor as seen by the power model: (Io, n, alpha, zeta) plus
/// nominal voltages.  Units: volts, amperes, farads, kelvin.
struct Technology {
  std::string name = "unnamed";

  double io = 3.34e-6;      ///< average off-current per cell at Vgs = Vth [A]
  double n = 1.33;          ///< weak-inversion slope
  double alpha = 1.86;      ///< alpha-power-law exponent
  double zeta = 5.5e-12;    ///< delay coefficient [F] (Eq. 4: tgate = zeta*Vdd/Ion)
  double vdd_nom = 1.2;     ///< nominal supply [V]
  double vth0_nom = 0.354;  ///< nominal zero-bias threshold [V]
  double eta = 0.0;         ///< DIBL coefficient (drops out of Eq. 13)
  double temperature_k = kDefaultTemperatureK;

  /// Thermal voltage Ut at this technology's temperature [V].
  [[nodiscard]] double ut() const noexcept { return thermal_voltage(temperature_k); }
  /// The sub-threshold scale n*Ut [V].
  [[nodiscard]] double n_ut() const noexcept { return n * ut(); }

  /// A MOSFET parameter set consistent with this flavor, used to drive the
  /// mini-SPICE characterization testbenches.
  [[nodiscard]] MosfetParams reference_transistor() const;
};

/// Validate invariants (positive currents/caps, alpha in [1,2], ...).
/// Throws InvalidArgument listing the first violated constraint.
void validate(const Technology& tech);

/// Stable 64-bit content hash of the *numeric* parameter vector (io, n,
/// alpha, zeta, vdd_nom, vth0_nom, eta, temperature_k - IEEE bit patterns,
/// see util/hash.h).  The name is metadata, not content: renaming a flavor
/// does not change any computed result, so it does not change the hash and
/// the serving layer's cache treats the two as the same technology.
[[nodiscard]] std::uint64_t content_hash(const Technology& tech);

}  // namespace optpower
