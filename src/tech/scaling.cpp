#include "tech/scaling.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/format.h"

namespace optpower {

Technology scale_technology(const Technology& base, double size_ratio, const ScalingModel& model) {
  require(size_ratio > 0.0 && size_ratio <= 1.5,
          "scale_technology: size_ratio must lie in (0, 1.5]");
  validate(base);
  Technology t = base;
  t.name = base.name + strprintf("_x%.2f", size_ratio);
  t.zeta = base.zeta * size_ratio;
  t.io = base.io * std::pow(size_ratio, -model.leakage_aggressiveness);
  // Number of halvings: log2(1/size_ratio); negative when up-scaling.
  const double halvings = std::log2(1.0 / size_ratio);
  t.alpha = std::clamp(base.alpha - model.alpha_drift * halvings, 1.0, 2.0);
  t.vdd_nom = base.vdd_nom * std::pow(size_ratio, model.voltage_exponent);
  t.vth0_nom = base.vth0_nom * std::pow(size_ratio, model.voltage_exponent);
  validate(t);
  return t;
}

}  // namespace optpower
