#include "exec/thread_pool.h"

#include "util/error.h"

namespace optpower {

ThreadPool::ThreadPool(int num_threads) {
  require(num_threads >= 1, "ThreadPool: need >= 1 worker thread");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace optpower
