#include "exec/thread_pool.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace optpower {

namespace {

// Resolved once; the per-task cost is one relaxed fetch_add each.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::registry().gauge("exec.pool.queue_depth");
  return g;
}

obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::registry().counter("exec.pool.tasks");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  require(num_threads >= 1, "ThreadPool: need >= 1 worker thread");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  if (obs::metrics_enabled()) queue_depth_gauge().add();
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (obs::metrics_enabled()) {
      queue_depth_gauge().sub();
      tasks_counter().add();
    }
    {
      obs::Span span("exec.task", "exec");
      task();
    }
  }
}

}  // namespace optpower
