// Parallel sweep engine: ExecContext + deterministic parallel_for/parallel_map.
//
// The paper's hot paths - dense (Vdd, Vth) power surfaces, constraint-curve
// sampling, per-configuration optimizer sweeps, and multi-vector activity
// extraction - are embarrassingly parallel: every grid cell / curve / seed is
// independent.  This header provides the one mechanism they all share:
//
//   * ExecContext: a copyable handle on a fixed ThreadPool.  Default-built it
//     is SERIAL (no pool, no threads), so every existing call site keeps its
//     exact behavior; ExecContext(n) spins an n-worker pool; from_env() reads
//     OPTPOWER_THREADS (0/unset = hardware concurrency).
//   * parallel_for(ctx, n, body): runs body(0..n-1), split into one
//     contiguous chunk per worker.  Each index must write only its own
//     output slot; under that contract the result is BIT-IDENTICAL to the
//     serial loop for any thread count, because every body(i) performs the
//     same floating-point operations on the same inputs and there is no
//     reduction whose order could vary.  The first exception (lowest chunk)
//     thrown by a body is rethrown on the calling thread.
//   * parallel_map(ctx, n, fn): the indexed-map convenience on top.
//
// Both are templates on the callable: the per-index inner loop stays fully
// inlinable, and type erasure happens once per CHUNK (worker task), never
// per index.
//
// Nesting: do not call parallel_for from inside a parallel_for body with the
// same context - pass a serial (default) context to inner calls instead.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "exec/thread_pool.h"

namespace optpower {

/// Execution policy handle threaded through the sweep APIs.  Copies share the
/// underlying pool.  A default-constructed context is serial.
class ExecContext {
 public:
  /// Serial context: no pool, parallel_for degenerates to a plain loop.
  ExecContext() = default;

  /// Context with `threads` workers (>= 1; 1 stays serial, no pool).
  explicit ExecContext(int threads);

  /// Context sized from the environment: OPTPOWER_THREADS workers, where
  /// unset, empty, or "0" means std::thread::hardware_concurrency().
  [[nodiscard]] static ExecContext from_env(const char* var = "OPTPOWER_THREADS");

  /// Worker count this context fans out to (1 when serial).
  [[nodiscard]] int threads() const noexcept { return pool_ ? pool_->size() : 1; }

  [[nodiscard]] bool is_parallel() const noexcept { return threads() > 1; }

  /// Underlying pool; nullptr when serial.
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_.get(); }

 private:
  std::shared_ptr<ThreadPool> pool_;
};

namespace detail {

/// Fan chunk_body(0..chunks-1) out over the pool, wait for all chunks, and
/// rethrow the lowest-chunk exception (if any) on the calling thread.
void run_chunks(ThreadPool& pool, std::size_t chunks,
                const std::function<void(std::size_t)>& chunk_body);

}  // namespace detail

/// Run body(i) for i in [0, n), fanned out over ctx's workers in contiguous
/// chunks.  Serial fallback when ctx is serial or n <= 1.  Rethrows the
/// lowest-chunk exception after all chunks finish.
template <typename Body>
void parallel_for(const ExecContext& ctx, std::size_t n, Body&& body) {
  if (n == 0) return;
  ThreadPool* pool = ctx.pool();
  const std::size_t chunks =
      pool != nullptr ? std::min(n, static_cast<std::size_t>(pool->size())) : 1;
  if (pool == nullptr || chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  detail::run_chunks(*pool, chunks, [&](std::size_t c) {
    const std::size_t lo = n * c / chunks;
    const std::size_t hi = n * (c + 1) / chunks;
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

/// Indexed map: out[i] = fn(i), each slot written exactly once by one worker.
/// T must be default-constructible.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(const ExecContext& ctx, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(ctx, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace optpower
