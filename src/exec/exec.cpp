#include "exec/exec.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.h"

namespace optpower {

ExecContext::ExecContext(int threads) {
  require(threads >= 1, "ExecContext: need >= 1 thread");
  if (threads > 1) pool_ = std::make_shared<ThreadPool>(threads);
}

ExecContext ExecContext::from_env(const char* var) {
  int threads = 0;
  if (const char* value = std::getenv(var); value != nullptr && *value != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    require(end != value && *end == '\0' && parsed >= 0,
            std::string("ExecContext::from_env: bad thread count in $") + var);
    threads = static_cast<int>(parsed);
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return ExecContext(threads);
}

namespace detail {

void run_chunks(ThreadPool& pool, std::size_t chunks,
                const std::function<void(std::size_t)>& chunk_body) {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = chunks;
  std::vector<std::exception_ptr> errors(chunks);

  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&, c] {
      try {
        chunk_body(c);
      } catch (...) {
        errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return remaining == 0; });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace detail

}  // namespace optpower
