// Fixed-size worker pool used by the parallel sweep engine (exec/exec.h).
//
// Deliberately minimal: a bounded set of workers draining a FIFO task queue.
// The pool never grows or shrinks after construction; destruction drains the
// queue (already-submitted tasks still run) and joins every worker.  Tasks
// must not throw - the higher-level parallel_for wrapper catches exceptions
// per chunk and rethrows them on the calling thread.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace optpower {

class ThreadPool {
 public:
  /// Spin up `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue (pending tasks still execute) and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueue one task.  The task must not throw.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace optpower
