#include "sim/activity.h"

#include <algorithm>
#include <optional>

#include "util/error.h"
#include "util/random.h"

namespace optpower {

ActivityMeasurement measure_activity(const Netlist& netlist, const ActivityOptions& options) {
  EventSimulator sim(netlist, options.delay_mode);
  return measure_activity_with(sim, options);
}

ActivityMeasurement measure_activity_with(EventSimulator& sim, const ActivityOptions& options) {
  require(options.num_vectors >= 1, "measure_activity: need >= 1 vectors");
  require(options.cycles_per_vector >= 1, "measure_activity: cycles_per_vector must be >= 1");
  require(options.warmup_vectors >= 0, "measure_activity: warmup must be >= 0");
  require(sim.delay_mode() == options.delay_mode,
          "measure_activity_with: simulator delay mode does not match the options");

  const Netlist& netlist = sim.netlist();
  // Bit-identical to a freshly constructed simulator: reset_state() restores
  // the all-zero settled image (and drops any parked events).
  sim.reset_state();
  sim.reset_stats();
  Pcg32 rng(options.seed);
  const std::size_t num_inputs = netlist.primary_inputs().size();

  const auto apply_random_vector = [&]() {
    std::vector<bool> vec(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) vec[i] = rng.next_bool();
    sim.set_inputs(vec);
  };

  for (int v = 0; v < options.warmup_vectors; ++v) {
    apply_random_vector();
    for (int c = 0; c < options.cycles_per_vector; ++c) sim.step_cycle();
  }
  sim.reset_stats();

  for (int v = 0; v < options.num_vectors; ++v) {
    apply_random_vector();
    for (int c = 0; c < options.cycles_per_vector; ++c) sim.step_cycle();
  }

  const SimStats& stats = sim.stats();
  const NetlistStats nstats = netlist.stats();

  ActivityMeasurement m;
  m.transitions = stats.total_transitions;
  m.glitches = stats.glitch_transitions;
  m.data_periods = static_cast<std::uint64_t>(options.num_vectors);
  m.clock_cycles = stats.cycles;
  const double denom = static_cast<double>(nstats.num_cells) * static_cast<double>(m.data_periods);
  // Charging-edge convention: on a rail-to-rail net, rising and falling
  // transitions alternate, so 0->1 edges = transitions/2.
  m.activity = denom > 0.0 ? 0.5 * static_cast<double>(m.transitions) / denom : 0.0;
  m.glitch_fraction = m.transitions > 0
                          ? static_cast<double>(m.glitches) / static_cast<double>(m.transitions)
                          : 0.0;
  return m;
}

std::vector<ActivityMeasurement> measure_activity_multi(const Netlist& netlist,
                                                        const std::vector<ActivityOptions>& runs,
                                                        const ExecContext& ctx) {
  // Warm the lazily-built fanout cache while still single-threaded; every
  // EventSimulator in the fan-out then only reads the shared netlist.
  (void)netlist.fanout();
  const std::size_t n = runs.size();
  std::vector<ActivityMeasurement> out(n);
  // One simulator per worker chunk, reset between repetitions, instead of a
  // fresh construction (verify + topo sort + wheel setup) per run -
  // construction is a visible fraction of short sweep repetitions.  Results
  // stay bit-identical for any thread count because reset_state() +
  // reset_stats() restore the exact post-construction state, making every
  // run independent of which simulator instance hosts it (asserted in
  // tests/exec/determinism_test.cpp).
  ThreadPool* pool = ctx.pool();
  const std::size_t chunks =
      pool != nullptr ? std::min(n, static_cast<std::size_t>(pool->size())) : 1;
  parallel_for(ctx, chunks, [&](std::size_t c) {
    const std::size_t lo = n * c / chunks;
    const std::size_t hi = n * (c + 1) / chunks;
    std::optional<EventSimulator> sim;
    for (std::size_t k = lo; k < hi; ++k) {
      if (!sim.has_value() || sim->delay_mode() != runs[k].delay_mode) {
        sim.emplace(netlist, runs[k].delay_mode);
      }
      out[k] = measure_activity_with(*sim, runs[k]);
    }
  });
  return out;
}

ActivityMeasurement measure_activity_sharded(const Netlist& netlist, const ActivityOptions& total,
                                             int streams, const ExecContext& ctx) {
  require(streams >= 1, "measure_activity_sharded: need >= 1 stream");
  require(total.num_vectors >= streams,
          "measure_activity_sharded: need >= 1 vector per stream");
  std::vector<ActivityOptions> runs(static_cast<std::size_t>(streams), total);
  const int base = total.num_vectors / streams;
  const int remainder = total.num_vectors % streams;
  for (int s = 0; s < streams; ++s) {
    runs[static_cast<std::size_t>(s)].num_vectors = base + (s < remainder ? 1 : 0);
    runs[static_cast<std::size_t>(s)].seed = total.seed + static_cast<std::uint64_t>(s);
  }
  return merge_activity(netlist, measure_activity_multi(netlist, runs, ctx));
}

ActivityMeasurement merge_activity(const Netlist& netlist,
                                   const std::vector<ActivityMeasurement>& parts) {
  require(!parts.empty(), "merge_activity: nothing to merge");
  ActivityMeasurement m;
  for (const ActivityMeasurement& part : parts) {
    m.transitions += part.transitions;
    m.glitches += part.glitches;
    m.data_periods += part.data_periods;
    m.clock_cycles += part.clock_cycles;
  }
  const NetlistStats nstats = netlist.stats();
  const double denom = static_cast<double>(nstats.num_cells) * static_cast<double>(m.data_periods);
  m.activity = denom > 0.0 ? 0.5 * static_cast<double>(m.transitions) / denom : 0.0;
  m.glitch_fraction = m.transitions > 0
                          ? static_cast<double>(m.glitches) / static_cast<double>(m.transitions)
                          : 0.0;
  return m;
}

}  // namespace optpower
