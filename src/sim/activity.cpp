#include "sim/activity.h"

#include <algorithm>
#include <optional>

#include "bdd/symbolic.h"
#include "sim/bitsim.h"
#include "simd/simd.h"
#include "util/error.h"
#include "util/random.h"

namespace optpower {

namespace {

void validate_schedule(const ActivityOptions& options) {
  require(options.num_vectors >= 1, "measure_activity: need >= 1 vectors");
  require(options.cycles_per_vector >= 1, "measure_activity: cycles_per_vector must be >= 1");
  require(options.warmup_vectors >= 0, "measure_activity: warmup must be >= 0");
}

/// Recompute the paper-normalized ratios from the raw counters.  Charging-
/// edge convention: on a rail-to-rail net, rising and falling transitions
/// alternate, so 0->1 edges = transitions/2.  Zero denominators (no cells,
/// no periods, no transitions) yield well-defined zeros, never NaN.
void recompute_ratios(ActivityMeasurement& m, std::size_t num_cells) {
  const double denom = static_cast<double>(num_cells) * static_cast<double>(m.data_periods);
  m.activity = denom > 0.0 ? 0.5 * static_cast<double>(m.transitions) / denom : 0.0;
  m.glitch_fraction = m.transitions > 0
                          ? static_cast<double>(m.glitches) / static_cast<double>(m.transitions)
                          : 0.0;
}

/// kBddExact: the exact zero-delay expectation of the same testbench
/// schedule (bdd/symbolic.h).  The integer counters stay 0 - the result is
/// an expectation, not a tally - so only the ratio fields are populated.
ActivityMeasurement measure_activity_exact(const Netlist& netlist,
                                           const ActivityOptions& options) {
  ExactActivityOptions exact;
  exact.num_vectors = options.num_vectors;
  exact.cycles_per_vector = options.cycles_per_vector;
  exact.warmup_vectors = options.warmup_vectors;
  const ExactActivity ea = exact_activity(netlist, exact);
  ActivityMeasurement m;
  m.activity = ea.activity;
  m.glitch_fraction = ea.glitch_fraction;
  m.data_periods = ea.data_periods;
  m.clock_cycles = ea.clock_cycles;
  return m;
}

}  // namespace

ActivityMeasurement measure_activity(const Netlist& netlist, const ActivityOptions& options) {
  switch (options.engine) {
    case ActivityEngine::kScalarEvent: {
      EventSimulator sim(netlist, options.delay_mode);
      return measure_activity_with(sim, options);
    }
    case ActivityEngine::kBitParallel: {
      BitSimulator sim(netlist, options.delay_mode);
      return merge_activity(netlist, measure_activity_lanes_with(sim, options));
    }
    case ActivityEngine::kBddExact: {
      validate_schedule(options);
      return measure_activity_exact(netlist, options);
    }
  }
  throw InvalidArgument("measure_activity: unknown engine");
}

ActivityMeasurement measure_activity_with(EventSimulator& sim, const ActivityOptions& options) {
  validate_schedule(options);
  require(options.engine == ActivityEngine::kScalarEvent,
          "measure_activity_with: an EventSimulator testbench is the scalar engine");
  require(sim.delay_mode() == options.delay_mode,
          "measure_activity_with: simulator delay mode does not match the options");

  const Netlist& netlist = sim.netlist();
  // Bit-identical to a freshly constructed simulator: reset_state() restores
  // the all-zero settled image (and drops any parked events).
  sim.reset_state();
  sim.reset_stats();
  Pcg32 rng(options.seed);
  const std::size_t num_inputs = netlist.primary_inputs().size();

  const auto apply_random_vector = [&]() {
    std::vector<bool> vec(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) vec[i] = rng.next_bool();
    sim.set_inputs(vec);
  };

  for (int v = 0; v < options.warmup_vectors; ++v) {
    apply_random_vector();
    for (int c = 0; c < options.cycles_per_vector; ++c) sim.step_cycle();
  }
  sim.reset_stats();

  for (int v = 0; v < options.num_vectors; ++v) {
    apply_random_vector();
    for (int c = 0; c < options.cycles_per_vector; ++c) sim.step_cycle();
  }

  const SimStats& stats = sim.stats();
  ActivityMeasurement m;
  m.transitions = stats.total_transitions;
  m.glitches = stats.glitch_transitions;
  m.data_periods = static_cast<std::uint64_t>(options.num_vectors);
  m.clock_cycles = stats.cycles;
  recompute_ratios(m, netlist.stats().num_cells);
  return m;
}

std::vector<ActivityMeasurement> measure_activity_lanes(const Netlist& netlist,
                                                        const ActivityOptions& options) {
  BitSimulator sim(netlist, options.delay_mode);
  return measure_activity_lanes_with(sim, options);
}

std::vector<ActivityMeasurement> measure_activity_lanes_with(BitSimulator& sim,
                                                             const ActivityOptions& options) {
  validate_schedule(options);
  require(options.engine == ActivityEngine::kBitParallel,
          "measure_activity_lanes: a BitSimulator testbench is the bit-parallel engine");
  require(sim.delay_mode() == options.delay_mode,
          "measure_activity_lanes: simulator delay mode does not match the options");

  const Netlist& netlist = sim.netlist();
  const std::size_t num_cells = netlist.stats().num_cells;
  const int lanes = std::min(BitSimulator::kLanes, options.num_vectors);
  const int base = options.num_vectors / lanes;
  const int rem = options.num_vectors % lanes;
  const BitSimulator::LaneMask full_mask = BitSimulator::lane_mask(lanes);

  sim.reset_state();
  sim.reset_stats();
  sim.set_active_mask(full_mask);

  // Lane l is the stream a scalar kZero run would execute with seed
  // options.seed + l: its RNG draws one bit per primary input per fresh
  // vector, in input-declaration order.  The draws themselves run in the
  // backend's stimulus kernel - many PCG32 registers advanced in lockstep,
  // draw-for-draw identical to Pcg32::next_bool() (every backend's kernel
  // replicates the exact arithmetic; tests/simd asserts the streams match).
  std::vector<std::uint64_t> rng_state(simd::kLanesPerBlock, 0);
  std::vector<std::uint64_t> rng_inc(simd::kLanesPerBlock, 1);
  for (int l = 0; l < lanes; ++l) {
    const Pcg32::State st =
        Pcg32(options.seed + static_cast<std::uint64_t>(l)).internal_state();
    rng_state[static_cast<std::size_t>(l)] = st.state;
    rng_inc[static_cast<std::size_t>(l)] = st.inc;
  }
  const std::size_t num_inputs = netlist.primary_inputs().size();
  std::vector<std::uint64_t> blocks(num_inputs * simd::kWordsPerBlock, 0);
  const simd::Kernels& kern = simd::kernels(sim.backend());

  const auto apply_random_vectors = [&](const BitSimulator::LaneMask& draw_mask) {
    // Lanes outside draw_mask hold their previous vector (their streams are
    // exhausted; their statistics are frozen by the active mask).
    simd::StimCtx sc;
    sc.state = rng_state.data();
    sc.inc = rng_inc.data();
    sc.blocks = blocks.data();
    sc.n_inputs = num_inputs;
    sc.draw_mask = draw_mask.data();
    kern.draw_bools(sc);
    sim.set_inputs(blocks);
  };

  // Warmup statistics are discarded by the reset below, so freeze every
  // lane's counters for the duration: the kernels skip all accounting work
  // for frozen lanes, making warmup cycles nearly as cheap as held-input
  // cycles.  Values still evolve normally (the mask gates stats only).
  if (options.warmup_vectors > 0) {
    sim.set_active_mask(BitSimulator::lane_mask(0));
    for (int v = 0; v < options.warmup_vectors; ++v) {
      apply_random_vectors(full_mask);
      for (int c = 0; c < options.cycles_per_vector; ++c) sim.step_cycle();
    }
    sim.set_active_mask(full_mask);
  }
  sim.reset_stats();

  // Vectors split like measure_activity_sharded: base per lane, remainder to
  // the lowest lanes.  The final partial step keeps only those rem lanes
  // active.
  const int max_count = base + (rem > 0 ? 1 : 0);
  for (int v = 0; v < max_count; ++v) {
    const BitSimulator::LaneMask mask = v < base ? full_mask : BitSimulator::lane_mask(rem);
    apply_random_vectors(mask);
    sim.set_active_mask(mask);
    for (int c = 0; c < options.cycles_per_vector; ++c) sim.step_cycle();
  }
  sim.set_active_mask(full_mask);

  std::vector<ActivityMeasurement> out(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    ActivityMeasurement& m = out[static_cast<std::size_t>(l)];
    m.transitions = sim.transitions(l);
    m.glitches = sim.glitches(l);
    m.data_periods = static_cast<std::uint64_t>(base + (l < rem ? 1 : 0));
    m.clock_cycles = sim.cycles(l);
    recompute_ratios(m, num_cells);
  }
  return out;
}

std::vector<ActivityMeasurement> measure_activity_multi(const Netlist& netlist,
                                                        const std::vector<ActivityOptions>& runs,
                                                        const ExecContext& ctx) {
  // Warm the lazily-built fanout cache while still single-threaded; every
  // simulator in the fan-out then only reads the shared netlist.
  (void)netlist.fanout();
  const std::size_t n = runs.size();
  std::vector<ActivityMeasurement> out(n);
  // One simulator per worker chunk (per engine), reset between repetitions,
  // instead of a fresh construction (verify + topo sort + wheel setup) per
  // run - construction is a visible fraction of short sweep repetitions.
  // Results stay bit-identical for any thread count because reset_state() +
  // reset_stats() restore the exact post-construction state, making every
  // run independent of which simulator instance hosts it (asserted in
  // tests/exec/determinism_test.cpp and tests/sim/bitsim_test.cpp).
  ThreadPool* pool = ctx.pool();
  const std::size_t chunks =
      pool != nullptr ? std::min(n, static_cast<std::size_t>(pool->size())) : 1;
  parallel_for(ctx, chunks, [&](std::size_t c) {
    const std::size_t lo = n * c / chunks;
    const std::size_t hi = n * (c + 1) / chunks;
    std::optional<EventSimulator> sim;
    std::optional<BitSimulator> bitsim;
    for (std::size_t k = lo; k < hi; ++k) {
      switch (runs[k].engine) {
        case ActivityEngine::kScalarEvent:
          if (!sim.has_value() || sim->delay_mode() != runs[k].delay_mode) {
            sim.emplace(netlist, runs[k].delay_mode);
          }
          out[k] = measure_activity_with(*sim, runs[k]);
          break;
        case ActivityEngine::kBitParallel:
          if (!bitsim.has_value() || bitsim->delay_mode() != runs[k].delay_mode) {
            bitsim.emplace(netlist, runs[k].delay_mode);
          }
          out[k] = merge_activity(netlist, measure_activity_lanes_with(*bitsim, runs[k]));
          break;
        case ActivityEngine::kBddExact:
          // One BddManager per run by design (no reusable state).
          out[k] = measure_activity(netlist, runs[k]);
          break;
      }
    }
  });
  return out;
}

ActivityMeasurement measure_activity_sharded(const Netlist& netlist, const ActivityOptions& total,
                                             int streams, const ExecContext& ctx) {
  require(streams >= 1, "measure_activity_sharded: need >= 1 stream");
  if (total.engine == ActivityEngine::kBddExact) {
    // Exact expectation: zero variance, nothing to shard.
    return measure_activity(netlist, total);
  }
  require(total.num_vectors >= streams,
          "measure_activity_sharded: need >= 1 vector per stream");
  std::vector<ActivityOptions> runs(static_cast<std::size_t>(streams), total);
  const int base = total.num_vectors / streams;
  const int remainder = total.num_vectors % streams;
  // Bit-parallel streams are whole lane blocks whose lanes consume seeds
  // [seed + kLanes*s, seed + kLanes*s + lanes); spacing the blocks kLanes
  // seeds apart keeps every stimulus stream in the pool globally distinct.
  const std::uint64_t seed_stride =
      total.engine == ActivityEngine::kBitParallel
          ? static_cast<std::uint64_t>(BitSimulator::kLanes)
          : 1;
  for (int s = 0; s < streams; ++s) {
    runs[static_cast<std::size_t>(s)].num_vectors = base + (s < remainder ? 1 : 0);
    runs[static_cast<std::size_t>(s)].seed =
        total.seed + seed_stride * static_cast<std::uint64_t>(s);
  }
  return merge_activity(netlist, measure_activity_multi(netlist, runs, ctx));
}

ActivityMeasurement merge_activity(const Netlist& netlist,
                                   const std::vector<ActivityMeasurement>& parts) {
  require(!parts.empty(), "merge_activity: nothing to merge");
  ActivityMeasurement m;
  for (const ActivityMeasurement& part : parts) {
    m.transitions += part.transitions;
    m.glitches += part.glitches;
    m.data_periods += part.data_periods;
    m.clock_cycles += part.clock_cycles;
  }
  require(m.data_periods > 0,
          "merge_activity: pooled measurement has zero data periods (empty shards?)");
  recompute_ratios(m, netlist.stats().num_cells);
  return m;
}

}  // namespace optpower
