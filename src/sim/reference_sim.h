// Reference event scheduler: the original priority-queue (binary-heap)
// implementation of EventSimulator, kept verbatim as the correctness oracle
// for the timing-wheel scheduler that replaced it in the hot path.
//
// The production EventSimulator (sim/event_sim.h) is required to produce
// bit-identical SimStats and net values for every netlist, delay mode, and
// stimulus sequence.  tests/sim/scheduler_equivalence_test.cpp drives both
// side by side; keep the two semantics documents (inertial delay, canonical
// intra-tick order by driver topo rank, two settle passes per cycle, glitch
// accounting) in sync if either ever changes.
//
// kZero is levelized on both sides (since the truly-levelized rewrite): the
// production simulator does one topological pass per settle, while this
// oracle runs full topological sweeps to a fixpoint - independent
// formulations of the same hazard-free semantics.
//
// This class is NOT a performance path: scheduling is O(log n) per event and
// every fanout cell is re-evaluated once per changed input.  Use it only from
// tests and ablation benches.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace optpower {

/// Heap-scheduler twin of EventSimulator (same public surface, same
/// semantics); see the file comment for why it exists.
class ReferenceSimulator {
 public:
  /// Build a simulator over `netlist` (verified, topo-ordered) using `mode`
  /// for per-cell delays.
  explicit ReferenceSimulator(const Netlist& netlist, SimDelayMode mode = SimDelayMode::kCellDepth);

  /// Set a primary input for the upcoming cycle (stable for the whole cycle).
  void set_input(NetId net, bool value);
  /// Set all primary inputs from an LSB-first packed word per declaration
  /// order.
  void set_inputs(const std::vector<bool>& values);

  /// Run one clock cycle: propagate events to quiescence, record stats, then
  /// clock all DFFs.  Throws NumericalError if the circuit fails to settle.
  void step_cycle();

  /// Current value of a net (post-settling).
  [[nodiscard]] bool value(NetId net) const { return values_[net]; }
  /// Current primary-output values in declaration order.
  [[nodiscard]] std::vector<bool> outputs() const;
  /// Primary outputs packed LSB-first into a word.
  [[nodiscard]] std::uint64_t outputs_word() const;

  /// Cumulative statistics since construction or the last reset_stats().
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  /// Zero all counters (cycle count included).
  void reset_stats();

  /// Full state reset: all nets to 0 (constants re-propagated), stats kept.
  void reset_state();

 private:
  void settle();
  int cell_delay_ticks(CellId c) const;

  const Netlist& netlist_;
  SimDelayMode mode_;
  std::vector<CellId> topo_;
  std::vector<char> values_;    // per net
  std::vector<char> dff_next_;  // sampled D per cell (sequential only)
  SimStats stats_;

  // Event heap entry: ordered by (time, canonical net rank, serial) -
  // same-tick events pop in (driver topo position, output pin) order, the
  // canonical intra-tick order shared with the production wheel scheduler;
  // lazy-invalidated by serial.
  struct Event {
    std::int64_t time;
    std::uint32_t rank;
    std::uint64_t serial;
    NetId net;
    char value;
    bool operator>(const Event& rhs) const {
      if (time != rhs.time) return time > rhs.time;
      if (rank != rhs.rank) return rank > rhs.rank;
      return serial > rhs.serial;
    }
  };
  std::vector<std::uint32_t> net_rank_;        // driver topo rank * 2 + output pin
  std::vector<std::uint64_t> pending_serial_;  // latest serial per net
  std::uint64_t next_serial_ = 0;
};

}  // namespace optpower
