// Switching-activity measurement: random-stimulus testbench around
// EventSimulator producing the paper's "a" (switching cells per throughput
// cycle over total cells, glitches included).
#pragma once

#include <cstdint>

#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace optpower {

/// Testbench configuration.
struct ActivityOptions {
  int num_vectors = 256;          ///< data periods to simulate
  int cycles_per_vector = 1;      ///< clock cycles per data period (16 for the
                                  ///< basic sequential multiplier, `ways` after
                                  ///< parallelization is already 1: the wrapper
                                  ///< consumes one input per clock)
  int warmup_vectors = 8;         ///< periods excluded from the statistics
  std::uint64_t seed = 0x5eed0001;
  SimDelayMode delay_mode = SimDelayMode::kCellDepth;
};

/// Activity result in the paper's normalization.
struct ActivityMeasurement {
  double activity = 0.0;            ///< a: charging transitions / (N * data periods).
                                    ///< Convention: Pdyn = a*C*Vdd^2*f draws C*Vdd^2
                                    ///< from the supply only on 0->1 edges, so a
                                    ///< counts transitions/2 (edges alternate).
  double glitch_fraction = 0.0;     ///< glitch transitions / total transitions
  std::uint64_t transitions = 0;
  std::uint64_t glitches = 0;
  std::uint64_t data_periods = 0;
  std::uint64_t clock_cycles = 0;
};

/// Drive `netlist` with uniform random input vectors (one fresh vector per
/// data period, held for cycles_per_vector clocks) and measure activity.
[[nodiscard]] ActivityMeasurement measure_activity(const Netlist& netlist,
                                                   const ActivityOptions& options = {});

}  // namespace optpower
