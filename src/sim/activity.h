// Switching-activity measurement: random-stimulus testbenches producing the
// paper's "a" (switching cells per throughput cycle over total cells,
// glitches included), unified behind the ActivityEngine seam - the same
// options and the same ActivityMeasurement whether the extraction runs the
// scalar event simulator, the 512-lane bit-parallel engine, or the exact
// BDD model.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/exec.h"
#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace optpower {

class BitSimulator;

/// Which engine extracts the switching activity.  All three produce an
/// ActivityMeasurement through the same measure_activity* entry points.
enum class ActivityEngine {
  /// Event-driven EventSimulator testbench, one vector at a time: the
  /// scalar reference for every SimDelayMode (kCellDepth = glitch-accurate).
  kScalarEvent,
  /// 512-lane bit-parallel engine (sim/bitsim.h): packs up to
  /// BitSimulator::kLanes independent testbench streams into one lane block
  /// per net and evaluates gates with block operations on the runtime-
  /// selected SIMD backend.  Honors every SimDelayMode - kZero runs
  /// levelized, kUnit/kCellDepth run the timed slot-ring engine with exact
  /// glitch accounting.  Stream l is bit-identical to a scalar run of the
  /// same delay mode seeded `seed + l`, so the pooled result equals
  /// measure_activity_sharded() of the scalar engine with
  /// min(kLanes, num_vectors) streams, counter for counter.
  kBitParallel,
  /// Exact zero-delay expectation via BDD signal probabilities
  /// (bdd/symbolic.h): no stimulus, no variance.  `seed` and `delay_mode`
  /// are ignored; the integer transition counters stay 0 (the result is an
  /// expectation, not a tally).  Keep widths small (<= ~10): per-net BDDs
  /// of wide multipliers are the textbook exponential case.
  kBddExact,
};

/// Testbench configuration.
struct ActivityOptions {
  int num_vectors = 256;          ///< data periods to simulate
  int cycles_per_vector = 1;      ///< clock cycles per data period (16 for the
                                  ///< basic sequential multiplier, `ways` after
                                  ///< parallelization is already 1: the wrapper
                                  ///< consumes one input per clock)
  int warmup_vectors = 8;         ///< periods excluded from the statistics
  std::uint64_t seed = 0x5eed0001;  ///< PCG32 stimulus seed
  SimDelayMode delay_mode = SimDelayMode::kCellDepth;  ///< kCellDepth = glitch-accurate
  ActivityEngine engine = ActivityEngine::kScalarEvent;  ///< extraction engine
};

/// Activity result in the paper's normalization.
struct ActivityMeasurement {
  double activity = 0.0;            ///< a: charging transitions / (N * data periods).
                                    ///< Convention: Pdyn = a*C*Vdd^2*f draws C*Vdd^2
                                    ///< from the supply only on 0->1 edges, so a
                                    ///< counts transitions/2 (edges alternate).
  double glitch_fraction = 0.0;     ///< glitch transitions / total transitions
  std::uint64_t transitions = 0;    ///< raw net value changes, glitches included
  std::uint64_t glitches = 0;       ///< transitions beyond the per-net functional minimum
  std::uint64_t data_periods = 0;   ///< measured input vectors (excl. warmup)
  std::uint64_t clock_cycles = 0;   ///< simulated clock cycles (excl. warmup)
};

/// Drive `netlist` with uniform random input vectors (one fresh vector per
/// data period, held for cycles_per_vector clocks) and measure activity
/// with the selected engine.  kBitParallel splits the vectors over up to
/// BitSimulator::kLanes lanes (seeded seed + lane) and pools them; kBddExact
/// computes the exact expectation of the same schedule.
[[nodiscard]] ActivityMeasurement measure_activity(const Netlist& netlist,
                                                   const ActivityOptions& options = {});

/// Same testbench on a caller-owned simulator: resets `sim`'s state and
/// statistics, then runs the schedule.  Because reset_state() restores the
/// exact post-construction state, the result is bit-identical to a fresh
/// measure_activity() with the same options - which is what lets sweep
/// drivers amortize simulator construction (verify + topo + wheel setup)
/// across repetitions.  `options.delay_mode` must match the simulator's
/// (`options.engine` is implied: kScalarEvent).
[[nodiscard]] ActivityMeasurement measure_activity_with(EventSimulator& sim,
                                                        const ActivityOptions& options = {});

/// The bit-parallel testbench, one ActivityMeasurement per lane: lane l runs
/// an independent stimulus stream seeded `options.seed + l` over
/// `options.num_vectors` split evenly across min(BitSimulator::kLanes,
/// num_vectors) lanes (remainder to the lowest lanes, like
/// measure_activity_sharded), each with its own warmup.  Lane l's
/// measurement is bit-identical to a scalar measure_activity() of that
/// stream under the same delay mode; merge_activity() of the result is what
/// measure_activity() with engine = kBitParallel returns.
[[nodiscard]] std::vector<ActivityMeasurement> measure_activity_lanes(
    const Netlist& netlist, const ActivityOptions& options = {});

/// Lane testbench on a caller-owned bit simulator (reset + rerun, exactly
/// like measure_activity_with): bit-identical to a fresh
/// measure_activity_lanes() with the same options.
[[nodiscard]] std::vector<ActivityMeasurement> measure_activity_lanes_with(
    BitSimulator& sim, const ActivityOptions& options = {});

/// Multi-testbench extraction: one independent testbench (own simulator, own
/// RNG stream) per entry of `runs`, fanned out over `ctx`'s workers.  Slot k
/// of the result always belongs to runs[k], so the output is bit-identical
/// for any thread count.  Engines may differ per run; scalar and bit-parallel
/// simulators are reused across same-chunk repetitions.  The netlist's lazy
/// fanout cache is warmed before the fan-out, which keeps the shared
/// `netlist` strictly read-only inside the parallel region.
[[nodiscard]] std::vector<ActivityMeasurement> measure_activity_multi(
    const Netlist& netlist, const std::vector<ActivityOptions>& runs, const ExecContext& ctx = {});

/// Convenience for variance reduction: `streams` testbenches that split
/// `total.num_vectors` evenly (remainder to the first streams), merged into
/// one pooled measurement.  Deterministic for a fixed stream count
/// regardless of thread count.  Stream seeds are engine-dependent:
///  * kScalarEvent: stream s runs scalar with seed total.seed + s.
///  * kBitParallel: stream s is one whole LANE BLOCK with lane seeds
///    total.seed + kLanes*s + l (globally distinct streams), so the blocks
///    shard over `ctx` with slot-stable determinism.
///  * kBddExact: sharding cannot reduce the variance of an exact
///    expectation, so this returns measure_activity(netlist, total) as-is.
[[nodiscard]] ActivityMeasurement measure_activity_sharded(const Netlist& netlist,
                                                           const ActivityOptions& total,
                                                           int streams,
                                                           const ExecContext& ctx = {});

/// Pool independent measurements of the SAME netlist into one: counters are
/// summed and the ratios recomputed (requires num_cells > 0 measurements to
/// have come from the same design, which the callers above guarantee).
/// Throws InvalidArgument when `parts` is empty or pools to zero data
/// periods (e.g. all-empty shards) - the ratios would be 0/0.
[[nodiscard]] ActivityMeasurement merge_activity(const Netlist& netlist,
                                                 const std::vector<ActivityMeasurement>& parts);

}  // namespace optpower
