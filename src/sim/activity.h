// Switching-activity measurement: random-stimulus testbench around
// EventSimulator producing the paper's "a" (switching cells per throughput
// cycle over total cells, glitches included).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/exec.h"
#include "netlist/netlist.h"
#include "sim/event_sim.h"

namespace optpower {

/// Testbench configuration.
struct ActivityOptions {
  int num_vectors = 256;          ///< data periods to simulate
  int cycles_per_vector = 1;      ///< clock cycles per data period (16 for the
                                  ///< basic sequential multiplier, `ways` after
                                  ///< parallelization is already 1: the wrapper
                                  ///< consumes one input per clock)
  int warmup_vectors = 8;         ///< periods excluded from the statistics
  std::uint64_t seed = 0x5eed0001;  ///< PCG32 stimulus seed
  SimDelayMode delay_mode = SimDelayMode::kCellDepth;  ///< kCellDepth = glitch-accurate
};

/// Activity result in the paper's normalization.
struct ActivityMeasurement {
  double activity = 0.0;            ///< a: charging transitions / (N * data periods).
                                    ///< Convention: Pdyn = a*C*Vdd^2*f draws C*Vdd^2
                                    ///< from the supply only on 0->1 edges, so a
                                    ///< counts transitions/2 (edges alternate).
  double glitch_fraction = 0.0;     ///< glitch transitions / total transitions
  std::uint64_t transitions = 0;    ///< raw net value changes, glitches included
  std::uint64_t glitches = 0;       ///< transitions beyond the per-net functional minimum
  std::uint64_t data_periods = 0;   ///< measured input vectors (excl. warmup)
  std::uint64_t clock_cycles = 0;   ///< simulated clock cycles (excl. warmup)
};

/// Drive `netlist` with uniform random input vectors (one fresh vector per
/// data period, held for cycles_per_vector clocks) and measure activity.
[[nodiscard]] ActivityMeasurement measure_activity(const Netlist& netlist,
                                                   const ActivityOptions& options = {});

/// Same testbench on a caller-owned simulator: resets `sim`'s state and
/// statistics, then runs the schedule.  Because reset_state() restores the
/// exact post-construction state, the result is bit-identical to a fresh
/// measure_activity() with the same options - which is what lets sweep
/// drivers amortize simulator construction (verify + topo + wheel setup)
/// across repetitions.  `options.delay_mode` must match the simulator's.
[[nodiscard]] ActivityMeasurement measure_activity_with(EventSimulator& sim,
                                                        const ActivityOptions& options = {});

/// Multi-testbench extraction: one independent testbench (own simulator, own
/// RNG stream) per entry of `runs`, fanned out over `ctx`'s workers.  Slot k
/// of the result always belongs to runs[k], so the output is bit-identical
/// for any thread count.  The netlist's lazy fanout cache is warmed before
/// the fan-out, which keeps the shared `netlist` strictly read-only inside
/// the parallel region.
[[nodiscard]] std::vector<ActivityMeasurement> measure_activity_multi(
    const Netlist& netlist, const std::vector<ActivityOptions>& runs, const ExecContext& ctx = {});

/// Convenience for variance reduction: `streams` testbenches that split
/// `total.num_vectors` evenly (remainder to the first streams), each seeded
/// with total.seed + stream index, merged into one pooled measurement.
/// Deterministic for a fixed stream count regardless of thread count.
[[nodiscard]] ActivityMeasurement measure_activity_sharded(const Netlist& netlist,
                                                           const ActivityOptions& total,
                                                           int streams,
                                                           const ExecContext& ctx = {});

/// Pool independent measurements of the SAME netlist into one: counters are
/// summed and the ratios recomputed (requires num_cells > 0 measurements to
/// have come from the same design, which the callers above guarantee).
[[nodiscard]] ActivityMeasurement merge_activity(const Netlist& netlist,
                                                 const std::vector<ActivityMeasurement>& parts);

}  // namespace optpower
