#include "sim/reference_sim.h"

#include <cmath>
#include <queue>

#include "netlist/cell.h"
#include "util/error.h"

namespace optpower {

ReferenceSimulator::ReferenceSimulator(const Netlist& netlist, SimDelayMode mode)
    : netlist_(netlist), mode_(mode) {
  netlist_.verify();
  topo_ = netlist_.topo_order();
  net_rank_.assign(netlist_.num_nets(), 0);
  for (std::size_t i = 0; i < topo_.size(); ++i) {
    const CellInstance& cell = netlist_.cell(topo_[i]);
    for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
      net_rank_[cell.outputs[k]] = static_cast<std::uint32_t>(i * 2 + k);
    }
  }
  values_.assign(netlist_.num_nets(), 0);
  dff_next_.assign(netlist_.num_cells(), 0);
  pending_serial_.assign(netlist_.num_nets(), 0);
  stats_.cell_transitions.assign(netlist_.num_cells(), 0);
  reset_state();
}

void ReferenceSimulator::reset_stats() {
  stats_ = SimStats{};
  stats_.cell_transitions.assign(netlist_.num_cells(), 0);
}

void ReferenceSimulator::reset_state() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(dff_next_.begin(), dff_next_.end(), 0);
  // Constants and the combinational image of the all-zero state must be
  // established without counting transitions.
  const SimStats saved = stats_;
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (cell_spec(cell.type).is_sequential) continue;
    std::uint8_t in = 0;
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
      in |= static_cast<std::uint8_t>((values_[cell.inputs[i]] ? 1u : 0u) << i);
    }
    const std::uint8_t outv = eval_cell(cell.type, in);
    for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
      values_[cell.outputs[k]] = static_cast<char>((outv >> k) & 1u);
    }
  }
  stats_ = saved;
}

void ReferenceSimulator::set_input(NetId net, bool value) {
  require(net < values_.size(), "ReferenceSimulator::set_input: unknown net");
  require(netlist_.driver_of(net) == Netlist::kNoCell,
          "ReferenceSimulator::set_input: net is not a primary input");
  values_[net] = value ? 1 : 0;
}

void ReferenceSimulator::set_inputs(const std::vector<bool>& values) {
  require(values.size() == netlist_.primary_inputs().size(),
          "ReferenceSimulator::set_inputs: input count mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[netlist_.primary_inputs()[i]] = values[i] ? 1 : 0;
  }
}

int ReferenceSimulator::cell_delay_ticks(CellId c) const {
  switch (mode_) {
    case SimDelayMode::kUnit: return 1;
    case SimDelayMode::kZero: return 0;
    case SimDelayMode::kCellDepth:
      return std::max(1, static_cast<int>(std::lround(
                             cell_spec(netlist_.cell(c).type).depth_units * 10.0)));
  }
  return 1;
}

void ReferenceSimulator::settle() {
  if (mode_ == SimDelayMode::kZero) {
    // Zero-delay oracle: repeated full topological sweeps until a whole pass
    // changes nothing (a fixpoint).  On a verified (acyclic) netlist the
    // first pass already reaches the fixpoint and the second merely confirms
    // it, so the transition counts equal the production scheduler's
    // single-pass levelized settle - but the formulations stay independent,
    // which is what keeps the equivalence suite meaningful.
    for (int pass = 0;; ++pass) {
      if (pass > 64) {
        throw NumericalError("ReferenceSimulator: circuit failed to settle (oscillation?)");
      }
      bool changed = false;
      for (const CellId c : topo_) {
        const CellInstance& cell = netlist_.cell(c);
        if (cell_spec(cell.type).is_sequential) continue;
        std::uint8_t in = 0;
        for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
          in |= static_cast<std::uint8_t>((values_[cell.inputs[i]] ? 1u : 0u) << i);
        }
        const std::uint8_t outv = eval_cell(cell.type, in);
        for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
          const char nv = static_cast<char>((outv >> k) & 1u);
          const NetId net = cell.outputs[k];
          if (values_[net] == nv) continue;
          values_[net] = nv;
          changed = true;
          ++stats_.total_transitions;
          ++stats_.cell_transitions[c];
        }
      }
      if (!changed) return;
    }
  }

  // Seed: evaluate every combinational cell whose output is stale w.r.t. the
  // (possibly changed) primary inputs and DFF outputs.  Using a timed event
  // wheel from t = 0 reproduces glitching under the chosen delay model.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> wheel;
  const auto& fanout = netlist_.fanout();

  const auto schedule_cell = [&](CellId c, std::int64_t now) {
    const CellInstance& cell = netlist_.cell(c);
    if (cell_spec(cell.type).is_sequential) return;
    std::uint8_t in = 0;
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
      in |= static_cast<std::uint8_t>((values_[cell.inputs[i]] ? 1u : 0u) << i);
    }
    const std::uint8_t outv = eval_cell(cell.type, in);
    const std::int64_t when = now + cell_delay_ticks(c);
    for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
      const char nv = static_cast<char>((outv >> k) & 1u);
      const NetId net = cell.outputs[k];
      // Inertial: the newest scheduled value supersedes older pendings.
      wheel.push({when, net_rank_[net], ++next_serial_, net, nv});
      pending_serial_[net] = next_serial_;
    }
  };

  for (const CellId c : topo_) schedule_cell(c, 0);

  constexpr std::int64_t kMaxTicks = 1 << 22;  // oscillation guard
  while (!wheel.empty()) {
    const Event ev = wheel.top();
    wheel.pop();
    if (ev.serial != pending_serial_[ev.net]) continue;  // superseded (inertial cancel)
    pending_serial_[ev.net] = 0;
    if (ev.time > kMaxTicks) {
      throw NumericalError("ReferenceSimulator: circuit failed to settle (oscillation?)");
    }
    if (values_[ev.net] == ev.value) continue;  // no change
    values_[ev.net] = ev.value;
    ++stats_.total_transitions;
    const CellId drv = netlist_.driver_of(ev.net);
    if (drv != Netlist::kNoCell) ++stats_.cell_transitions[drv];
    for (const CellId reader : fanout[ev.net]) schedule_cell(reader, ev.time);
  }
}

void ReferenceSimulator::step_cycle() {
  // Track per-net transition counts to separate functional toggles from
  // glitches: a net that ends the cycle at a different value needs exactly
  // one transition; anything beyond that (and any transition on a net that
  // returns to its start value) is glitch power.
  const std::uint64_t transitions_before = stats_.total_transitions;
  std::vector<char> start_values = values_;

  // Pre-edge settle: propagate this cycle's inputs (and last edge's Q
  // changes, already settled) through the combinational logic.
  settle();

  // Clock edge: sample D (and EN), then apply Q updates; count Q toggles.
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    const bool d = values_[cell.inputs[0]];
    if (cell.type == CellType::kDffEnable) {
      const bool en = values_[cell.inputs[1]];
      dff_next_[c] = en ? (d ? 1 : 0) : values_[cell.outputs[0]];
    } else {
      dff_next_[c] = d ? 1 : 0;
    }
  }
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    const NetId q = cell.outputs[0];
    if (values_[q] != dff_next_[c]) {
      values_[q] = dff_next_[c];
      ++stats_.total_transitions;
      ++stats_.cell_transitions[c];
    }
  }

  // Post-edge settle: propagate the new Q values so that value()/outputs()
  // observe the state "during the next cycle" - combinational and registered
  // output paths then agree on latency (a 2-stage pipeline shows its result
  // exactly pipeline_latency() steps after the operands were applied).
  settle();

  std::uint64_t functional = 0;
  for (std::size_t n = 0; n < values_.size(); ++n) {
    if (values_[n] != start_values[n]) ++functional;
  }
  const std::uint64_t cycle_transitions = stats_.total_transitions - transitions_before;
  stats_.glitch_transitions += cycle_transitions - std::min(cycle_transitions, functional);
  ++stats_.cycles;
}

std::vector<bool> ReferenceSimulator::outputs() const {
  std::vector<bool> out;
  out.reserve(netlist_.primary_outputs().size());
  for (const NetId net : netlist_.primary_outputs()) out.push_back(values_[net] != 0);
  return out;
}

std::uint64_t ReferenceSimulator::outputs_word() const {
  std::uint64_t w = 0;
  const auto& pos = netlist_.primary_outputs();
  for (std::size_t i = 0; i < pos.size() && i < 64; ++i) {
    if (values_[pos[i]]) w |= (1ULL << i);
  }
  return w;
}

}  // namespace optpower
