// Event-driven gate-level logic simulator with per-cell inertial delays and
// switching-activity measurement.
//
// This is the ModelSIM stand-in: the paper derives its activity numbers "a"
// from timing-annotated gate-level simulation, where unequal path delays
// create glitches that count as real switched capacitance.  The simulator
// therefore runs each clock cycle as a timed event schedule (cell delays in
// integer femtosecond-free "delay units" from the cell library), counts
// every net transition - including glitches - and samples DFFs at the end of
// the cycle.
//
// Semantics:
//  * Two-valued logic; every net starts at 0, DFFs reset to 0.
//  * Inertial delay: a cell output has at most one pending event; a newer
//    evaluation replaces it (pulses shorter than the cell delay vanish).
//  * DFF/DFFE sample their D (and EN) after combinational settling; their Q
//    changes appear at time 0 of the next cycle.
//
// Scheduler: a hierarchical timing wheel (calendar queue) replaced the
// original binary-heap scheduler (kept as sim/reference_sim.h, the test
// oracle).  Level 0 is a power-of-two ring of per-tick event slots covering
// one "revolution" of simulated time; events beyond the current revolution
// park in per-revolution overflow buckets that are poured into the ring when
// their revolution begins.  Scheduling and popping are O(1) amortized
// (vs. O(log n) heap pushes), and under delay >= 1 modes each tick is
// processed in two levelized phases: first every surviving event is applied
// (transition counting), then each affected fanout cell is evaluated exactly
// ONCE per wave - the heap scheduler re-evaluated a cell once per changed
// input net.
//
// Intra-tick order is CANONICAL: same-tick events apply in (driver topo
// position, output pin) order and triggered cells re-evaluate in topo order,
// a pure function of the netlist rather than of scheduling history.  The
// heap oracle orders its queue by the same key, so SimStats and every net
// value stay bit-identical between the two schedulers
// (tests/sim/scheduler_equivalence_test.cpp) - and, more importantly, the
// canonical order is what the 512-lane bit-parallel engine (sim/bitsim.h)
// reproduces lane-for-lane in its timed modes: lane k of a timed
// BitSimulator is bit-identical to a kUnit/kCellDepth EventSimulator run on
// lane k's stimulus (tests/sim/bitsim_test.cpp).
//
// kZero bypasses the wheel entirely: it is a TRULY levelized settle - one
// topological evaluation per settle pass, every cell seeing its inputs'
// final values - so each net changes at most once per pass and the
// delta-cycle functional hazards the old FIFO produced on reconvergent
// paths are gone.  This makes the simulated zero-delay activity agree
// EXACTLY with bdd/symbolic.h's exact_activity() expectation, and it is the
// scalar twin of the bit-parallel engine's (levelized) kZero mode.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netlist/netlist.h"

namespace optpower {

/// Per-cycle and cumulative switching statistics.
struct SimStats {
  std::uint64_t cycles = 0;                 ///< clock cycles simulated
  std::uint64_t total_transitions = 0;      ///< net value changes incl. glitches
  std::uint64_t glitch_transitions = 0;     ///< changes beyond the per-net final-value minimum
  std::vector<std::uint64_t> cell_transitions;  ///< output transitions per cell
};

/// Delay model choice for the event scheduler.
enum class SimDelayMode {
  kUnit,       ///< every cell = 1 delay unit (fast functional checks)
  kCellDepth,  ///< CellSpec::depth_units scaled x10 to integer ticks (glitch-accurate)
  kZero,       ///< truly levelized zero-delay evaluation (one topological
               ///< pass per settle, hazard-free; matches exact_activity())
};

/// Timing-annotated gate-level event simulator over a verified Netlist.
///
/// One instance owns all mutable simulation state (net values, DFF samples,
/// the timing wheel, statistics) and only reads the shared netlist, so
/// independent instances over the same netlist may run on different threads
/// (warm the netlist's fanout cache first; measure_activity_multi does).
class EventSimulator {
 public:
  /// Level-0 ring size as log2(slots).  One revolution covers 2^bits ticks;
  /// under kCellDepth one tick is a tenth of an inverter delay, so the
  /// default 256-tick revolution holds ~6 typical cell hops.  Smaller rings
  /// push more traffic through the overflow buckets (the equivalence suite
  /// runs bits=2 to stress that path); larger rings trade memory for fewer
  /// revolution boundaries.
  static constexpr int kDefaultWheelBits = 8;

  /// Build a simulator over `netlist` (verify()-checked here) using `mode`
  /// delays.  `wheel_bits` sizes the level-0 ring; results never depend on
  /// it (it is a perf/test knob only).
  explicit EventSimulator(const Netlist& netlist, SimDelayMode mode = SimDelayMode::kCellDepth,
                          int wheel_bits = kDefaultWheelBits);

  /// The netlist this simulator runs (testbench reuse helpers need it).
  [[nodiscard]] const Netlist& netlist() const noexcept { return netlist_; }
  /// The delay model this simulator was built with.
  [[nodiscard]] SimDelayMode delay_mode() const noexcept { return mode_; }

  /// Set a primary input for the upcoming cycle (stable for the whole cycle).
  void set_input(NetId net, bool value);
  /// Set all primary inputs from an LSB-first packed word per declaration
  /// order.
  void set_inputs(const std::vector<bool>& values);

  /// Run one clock cycle: propagate events to quiescence, record stats, then
  /// clock all DFFs.  Throws NumericalError if the circuit fails to settle
  /// (oscillating combinational loop through rewired feedback).
  void step_cycle();

  /// Current value of a net (post-settling).
  [[nodiscard]] bool value(NetId net) const { return values_[net]; }
  /// Current primary-output values in declaration order.
  [[nodiscard]] std::vector<bool> outputs() const;
  /// Primary outputs packed LSB-first into a word.
  [[nodiscard]] std::uint64_t outputs_word() const;

  /// Cumulative statistics since construction or the last reset_stats().
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  /// Zero all counters (cycle count included); simulation state is kept.
  void reset_stats();

  /// Full state reset: all nets to 0 (constants re-propagated), stats kept.
  /// Also drops any events left parked in the wheel, so it recovers a
  /// simulator whose step_cycle() threw (oscillation guard) just like the
  /// reference scheduler's settle-local queue did.
  void reset_state();

 private:
  /// One scheduled output change.  `serial` is a global monotonically
  /// increasing id: the newest schedule for a net supersedes older pendings
  /// (inertial delay).  Application order within a tick is canonical
  /// (net_rank_, not serial), so results never depend on scheduling history.
  struct Event {
    std::int64_t time;
    std::uint64_t serial;
    NetId net;
    char value;
  };

  void settle();
  void settle_levelized();
  void schedule_cell(CellId c, std::int64_t now);
  void pour_overflow_revolution(std::int64_t revolution);
  void process_tick(std::int64_t tick);

  const Netlist& netlist_;
  SimDelayMode mode_;
  std::vector<CellId> topo_;
  std::vector<std::uint32_t> cell_rank_;  // topo position per cell
  std::vector<std::uint32_t> net_rank_;   // driver rank * 2 + output pin, per net
  std::vector<char> values_;             // per net
  std::vector<char> dff_next_;           // sampled D per cell (sequential only)
  std::vector<int> delay_ticks_;         // per cell, precomputed for mode_
  SimStats stats_;

  // --- timing wheel ---------------------------------------------------------
  int wheel_bits_;
  std::int64_t wheel_mask_;                       // 2^bits - 1
  std::vector<std::vector<Event>> slots_;         // level 0: one ring revolution
  std::map<std::int64_t, std::vector<Event>> overflow_;  // revolution -> events
  std::int64_t rev_base_ = 0;                     // first tick of the ring's revolution
  std::size_t ring_count_ = 0;                    // events currently in slots_
  std::size_t overflow_count_ = 0;                // events currently in overflow_

  // --- inertial cancellation + two-phase evaluation -------------------------
  std::vector<std::uint64_t> pending_serial_;  // latest scheduled serial per net
  std::uint64_t next_serial_ = 0;
  std::vector<std::uint64_t> eval_stamp_;  // per cell: trigger/eval mark of the current tick
  std::uint64_t wave_stamp_ = 0;
  std::vector<Event> wave_scratch_;        // current wave being applied
  std::vector<CellId> triggers_scratch_;   // cells triggered this tick (deduped)
  std::vector<std::uint64_t> sort_keys_;   // packed canonical-order keys (rank<<32 | idx)
  std::vector<char> start_scratch_;        // per-cycle start values (glitch accounting)
};

}  // namespace optpower
