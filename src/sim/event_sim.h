// Event-driven gate-level logic simulator with per-cell inertial delays and
// switching-activity measurement.
//
// This is the ModelSIM stand-in: the paper derives its activity numbers "a"
// from timing-annotated gate-level simulation, where unequal path delays
// create glitches that count as real switched capacitance.  The simulator
// therefore runs each clock cycle as a timed event wheel (cell delays in
// integer femtosecond-free "delay units" from the cell library), counts
// every net transition - including glitches - and samples DFFs at the end of
// the cycle.
//
// Semantics:
//  * Two-valued logic; every net starts at 0, DFFs reset to 0.
//  * Inertial delay: a cell output has at most one pending event; a newer
//    evaluation replaces it (pulses shorter than the cell delay vanish).
//  * DFF/DFFE sample their D (and EN) after combinational settling; their Q
//    changes appear at time 0 of the next cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace optpower {

/// Per-cycle and cumulative switching statistics.
struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t total_transitions = 0;      ///< net value changes incl. glitches
  std::uint64_t glitch_transitions = 0;     ///< changes beyond the per-net final-value minimum
  std::vector<std::uint64_t> cell_transitions;  ///< output transitions per cell
};

/// Delay model choice for the event wheel.
enum class SimDelayMode {
  kUnit,       ///< every cell = 1 delay unit (fast functional checks)
  kCellDepth,  ///< CellSpec::depth_units scaled x10 to integer ticks (glitch-accurate)
  kZero,       ///< pure levelized evaluation, no glitches counted
};

class EventSimulator {
 public:
  explicit EventSimulator(const Netlist& netlist, SimDelayMode mode = SimDelayMode::kCellDepth);

  /// Set a primary input for the upcoming cycle (stable for the whole cycle).
  void set_input(NetId net, bool value);
  /// Set all primary inputs from an LSB-first packed word per declaration
  /// order.
  void set_inputs(const std::vector<bool>& values);

  /// Run one clock cycle: propagate events to quiescence, record stats, then
  /// clock all DFFs.  Throws NumericalError if the circuit fails to settle
  /// (oscillating combinational loop through rewired feedback).
  void step_cycle();

  /// Current value of a net (post-settling).
  [[nodiscard]] bool value(NetId net) const { return values_[net]; }
  /// Current primary-output values in declaration order.
  [[nodiscard]] std::vector<bool> outputs() const;
  /// Primary outputs packed LSB-first into a word.
  [[nodiscard]] std::uint64_t outputs_word() const;

  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  void reset_stats();

  /// Full state reset: all nets to 0 (constants re-propagated), stats kept.
  void reset_state();

 private:
  void settle();
  int cell_delay_ticks(CellId c) const;
  void evaluate_cell(CellId c, std::int64_t now);

  const Netlist& netlist_;
  SimDelayMode mode_;
  std::vector<CellId> topo_;
  std::vector<char> values_;             // per net
  std::vector<char> dff_next_;           // sampled D per cell (sequential only)
  SimStats stats_;

  // Event wheel: (time, serial, net, value); lazy-invalidated by serial.
  struct Event {
    std::int64_t time;
    std::uint64_t serial;
    NetId net;
    char value;
    bool operator>(const Event& rhs) const {
      return time != rhs.time ? time > rhs.time : serial > rhs.serial;
    }
  };
  std::vector<std::uint64_t> pending_serial_;  // latest serial per net
  std::uint64_t next_serial_ = 0;
};

}  // namespace optpower
