#include "sim/bitsim.h"

#include <algorithm>

#include "netlist/cell.h"
#include "util/error.h"

namespace optpower {

namespace {

/// eval_cell lifted to 64-lane words: the cell's truth table expressed as
/// bitwise ops (the FA carry is the 3-input majority compressor form).
/// `in` holds one word per input pin, `out` receives one word per output.
inline void eval_cell_words(CellType type, const std::uint64_t* in, std::uint64_t* out) {
  switch (type) {
    case CellType::kConst0: out[0] = 0; return;
    case CellType::kConst1: out[0] = ~std::uint64_t{0}; return;
    case CellType::kBuf: out[0] = in[0]; return;
    case CellType::kInv: out[0] = ~in[0]; return;
    case CellType::kAnd2: out[0] = in[0] & in[1]; return;
    case CellType::kOr2: out[0] = in[0] | in[1]; return;
    case CellType::kNand2: out[0] = ~(in[0] & in[1]); return;
    case CellType::kNor2: out[0] = ~(in[0] | in[1]); return;
    case CellType::kXor2: out[0] = in[0] ^ in[1]; return;
    case CellType::kXnor2: out[0] = ~(in[0] ^ in[1]); return;
    case CellType::kMux2:
      // inputs {a, b, sel} -> sel ? b : a
      out[0] = (in[2] & in[1]) | (~in[2] & in[0]);
      return;
    case CellType::kHalfAdder:
      out[0] = in[0] ^ in[1];
      out[1] = in[0] & in[1];
      return;
    case CellType::kFullAdder: {
      const std::uint64_t ab = in[0] ^ in[1];
      out[0] = ab ^ in[2];
      out[1] = (in[0] & in[1]) | (in[2] & ab);
      return;
    }
    case CellType::kDff:
    case CellType::kDffEnable:
      // Sequential data path (what Q becomes on the next edge); settle()
      // skips these - step_cycle handles them explicitly.
      out[0] = in[0];
      return;
  }
}

}  // namespace

BitSimulator::BitSimulator(const Netlist& netlist) : netlist_(netlist) {
  netlist_.verify();
  // Per-cycle events per lane are bounded by one toggle per net per settle
  // (x2 settles) plus one per DFF; the carry-save accumulator must never
  // ripple past its top plane.
  require(2 * netlist_.num_nets() + netlist_.num_cells() <
              (std::size_t{1} << LaneAccumulator::kPlanes),
          "BitSimulator: netlist too large for the per-cycle lane accumulators");
  topo_ = netlist_.topo_order();
  words_.assign(netlist_.num_nets(), 0);
  dff_next_.assign(netlist_.num_cells(), 0);
  start_scratch_.assign(netlist_.num_nets(), 0);
  reset_state();
}

void BitSimulator::reset_stats() {
  transitions_.fill(0);
  glitches_.fill(0);
  cycles_.fill(0);
}

void BitSimulator::reset_state() {
  std::fill(words_.begin(), words_.end(), 0);
  std::fill(dff_next_.begin(), dff_next_.end(), 0);
  // Constants and the combinational image of the all-zero state are
  // established without counting transitions, like EventSimulator's reset:
  // an all-masked settle evaluates every cell but tallies nothing.
  const std::uint64_t saved_mask = active_mask_;
  active_mask_ = 0;
  settle();
  active_mask_ = saved_mask;
}

void BitSimulator::set_input_word(NetId net, std::uint64_t word) {
  require(net < words_.size(), "BitSimulator::set_input_word: unknown net");
  require(netlist_.driver_of(net) == Netlist::kNoCell,
          "BitSimulator::set_input_word: net is not a primary input");
  words_[net] = word;
}

void BitSimulator::set_inputs(const std::vector<std::uint64_t>& words) {
  require(words.size() == netlist_.primary_inputs().size(),
          "BitSimulator::set_inputs: input count mismatch");
  for (std::size_t i = 0; i < words.size(); ++i) {
    words_[netlist_.primary_inputs()[i]] = words[i];
  }
}

void BitSimulator::settle() {
  // One topological pass, every cell exactly once - the word-level image of
  // EventSimulator::settle_levelized().  Per changed net, the set bits of
  // old^new (masked to the active lanes) are exactly the lanes whose scalar
  // twin counts one transition here; they tally into the carry-save
  // accumulator, flushed per cycle.
  std::uint64_t scratch[2];
  std::uint64_t ins[3];
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (cell_spec(cell.type).is_sequential) continue;
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) ins[i] = words_[cell.inputs[i]];
    eval_cell_words(cell.type, ins, scratch);
    for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
      const NetId net = cell.outputs[k];
      const std::uint64_t nv = scratch[k];
      const std::uint64_t diff = (words_[net] ^ nv) & active_mask_;
      words_[net] = nv;
      if (diff != 0) trans_acc_.add(diff);
    }
  }
}

void BitSimulator::step_cycle() {
  trans_acc_.clear();
  func_acc_.clear();
  start_scratch_ = words_;

  // Pre-edge settle: propagate this cycle's inputs (and last edge's Q
  // changes, already settled) through the combinational logic.
  settle();

  // Clock edge: sample D (and EN) in every lane, then apply Q updates.
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    const std::uint64_t d = words_[cell.inputs[0]];
    if (cell.type == CellType::kDffEnable) {
      const std::uint64_t en = words_[cell.inputs[1]];
      dff_next_[c] = (en & d) | (~en & words_[cell.outputs[0]]);
    } else {
      dff_next_[c] = d;
    }
  }
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    const NetId q = cell.outputs[0];
    const std::uint64_t diff = (words_[q] ^ dff_next_[c]) & active_mask_;
    words_[q] = dff_next_[c];
    if (diff != 0) trans_acc_.add(diff);
  }

  // Post-edge settle: propagate the new Q values (combinational and
  // registered output paths agree on latency, like the scalar simulator).
  settle();

  // Per-lane glitch accounting, scalar formula per lane: transitions this
  // cycle beyond the per-net start-vs-end minimum (functional counts EVERY
  // net, primary inputs included, exactly like EventSimulator).
  for (std::size_t n = 0; n < words_.size(); ++n) {
    const std::uint64_t fdiff = (words_[n] ^ start_scratch_[n]) & active_mask_;
    if (fdiff != 0) func_acc_.add(fdiff);
  }
  std::uint64_t mask = active_mask_;
  for (; mask != 0; mask &= mask - 1) {
    const int lane = __builtin_ctzll(mask);
    const std::uint64_t ct = trans_acc_.lane(lane);
    transitions_[static_cast<std::size_t>(lane)] += ct;
    glitches_[static_cast<std::size_t>(lane)] += ct - std::min(ct, func_acc_.lane(lane));
    ++cycles_[static_cast<std::size_t>(lane)];
  }
}

std::uint64_t BitSimulator::outputs_word(int lane) const {
  std::uint64_t w = 0;
  const auto& pos = netlist_.primary_outputs();
  for (std::size_t i = 0; i < pos.size() && i < 64; ++i) {
    if (value(pos[i], lane)) w |= (std::uint64_t{1} << i);
  }
  return w;
}

}  // namespace optpower
