#include "sim/bitsim.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "netlist/cell.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace optpower {

namespace {
constexpr std::size_t kW = simd::kWordsPerBlock;
constexpr std::size_t kPlaneWords = simd::kAccPlanes * kW;

// Timed-mode flush guard: fold the carry-save planes into the scalar
// counters once this many plane event adds have accumulated.  The planes
// hold < 2^32 per lane; one cycle's events are bounded far below the 2^31
// slack (an acyclic settle ends within the maximum path delay in ticks, and
// each net toggles at most once per tick).
constexpr std::uint64_t kTimedFlushEvents = std::uint64_t{1} << 30;

// Registry instruments resolved once; per-cycle cost is a handful of relaxed
// adds against one kernel pass over the whole 512-lane block.
struct BitsimMetrics {
  obs::Counter& cycles = obs::registry().counter("sim.bitsim.cycles");
  obs::Counter& lanes = obs::registry().counter("sim.bitsim.lanes_simulated");
  obs::Counter& settle_passes = obs::registry().counter("sim.bitsim.settle_passes");
  obs::Counter& cells_evaluated = obs::registry().counter("sim.bitsim.cells_evaluated");
  obs::Counter& cells_skipped = obs::registry().counter("sim.bitsim.dirty_cone_skips");
  obs::Counter& timed_ticks = obs::registry().counter("sim.bitsim.timed_ticks");
  obs::Counter& timed_scheduled = obs::registry().counter("sim.bitsim.timed_scheduled");
  obs::Histogram& settle_ticks = obs::registry().histogram("sim.bitsim.settle_ticks_per_cycle");
};

BitsimMetrics& bitsim_metrics() {
  static BitsimMetrics* m = new BitsimMetrics();
  return *m;
}
}  // namespace

BitSimulator::LaneMask BitSimulator::lane_mask(int lanes) {
  require(lanes >= 0 && lanes <= kLanes, "BitSimulator::lane_mask: lane count out of range");
  LaneMask m{};
  for (int w = 0; w < kWords; ++w) {
    const int lo = w * 64;
    if (lanes >= lo + 64) m[static_cast<std::size_t>(w)] = ~std::uint64_t{0};
    else if (lanes > lo) m[static_cast<std::size_t>(w)] = (std::uint64_t{1} << (lanes - lo)) - 1;
  }
  return m;
}

BitSimulator::BitSimulator(const Netlist& netlist, SimDelayMode mode, simd::Backend backend)
    : netlist_(netlist), mode_(mode), backend_(backend), kernels_(&simd::kernels(backend)) {
  netlist_.verify();
  const std::size_t nets = netlist_.num_nets();

  // Flatten the combinational cells in topological order for the settle
  // kernel, padding unused input pins so the dirty-cone check is branchless,
  // and collect the sequential cells for the clock-edge kernel.
  std::vector<CellId> comb_ids;  // original ids, for the timed-mode build
  for (const CellId c : netlist_.topo_order()) {
    const CellInstance& cell = netlist_.cell(c);
    if (cell_spec(cell.type).is_sequential) {
      simd::SeqCell s{};
      s.d = cell.inputs[0];
      s.en = cell.type == CellType::kDffEnable ? cell.inputs[1] : kNoNet;
      s.q = cell.outputs[0];
      seq_cells_.push_back(s);
      continue;
    }
    simd::FlatCell f{};
    f.type = cell.type;
    f.num_outputs = static_cast<std::uint8_t>(cell.outputs.size());
    const NetId pad = cell.inputs.empty() ? cell.outputs[0] : cell.inputs[0];
    for (int p = 0; p < 3; ++p) {
      f.in[p] = static_cast<std::size_t>(p) < cell.inputs.size() ? cell.inputs[p] : pad;
    }
    f.out[0] = cell.outputs[0];
    f.out[1] = cell.outputs.size() > 1 ? cell.outputs[1] : cell.outputs[0];
    comb_cells_.push_back(f);
    comb_ids.push_back(c);
  }

  words_.assign(nets * kW, 0);
  dff_next_.assign(seq_cells_.size() * kW, 0);
  mask_ = all_lanes();
  dirty_.assign(nets, 0);
  dirty_list_.assign(nets, 0);
  touched_.assign(nets, 0);
  touched_list_.assign(nets, 0);
  start_words_.assign(nets * kW, 0);
  trans_planes_.assign(kPlaneWords, 0);
  func_planes_.assign(kPlaneWords, 0);
  cycle_planes_.assign(kPlaneWords, 0);

  // Overflow guard for the deferred carry-save tallies: one flush window
  // must stay below 2^31 events per lane.  Per cycle a lane sees at most
  // one transition per net per settle (x2), one per DFF commit, one
  // functional toggle per net, and one cycle tick.
  const std::uint64_t per_cycle = 3 * static_cast<std::uint64_t>(nets) + seq_cells_.size() + 1;
  flush_every_ = std::max<std::uint64_t>(1, (std::uint64_t{1} << 31) / per_cycle);

  const bool timed = mode_ != SimDelayMode::kZero;
  if (timed) {
    // Canonical order index per combinational output net: cells in topo
    // order, output pins in declaration order.  Sorting raw order indices IS
    // the canonical intra-tick event order of the scalar schedulers, which
    // is what makes the slot-ring engine lane-identical to them.
    delay_.resize(comb_cells_.size());
    cell_order_base_.resize(comb_cells_.size());
    for (std::size_t i = 0; i < comb_cells_.size(); ++i) {
      const CellInstance& cell = netlist_.cell(comb_ids[i]);
      const int d = mode_ == SimDelayMode::kUnit
                        ? 1
                        : std::max(1, static_cast<int>(
                                          std::lround(cell_spec(cell.type).depth_units * 10.0)));
      require(d < static_cast<int>(simd::kTimedSlots),
              "BitSimulator: cell delay exceeds the timed slot ring");
      delay_[i] = static_cast<std::uint8_t>(d);
      cell_order_base_[i] = static_cast<std::uint32_t>(order_to_net_.size());
      for (std::uint8_t k = 0; k < comb_cells_[i].num_outputs; ++k) {
        order_to_net_.push_back(k == 0 ? comb_cells_[i].out[0] : comb_cells_[i].out[1]);
        order_driver_.push_back(static_cast<std::uint32_t>(i));
      }
    }
    const std::size_t num_order = order_to_net_.size();

    // Combinational-reader CSR per order index (primary-input and Q changes
    // go through the dirty seed instead, so only comb outputs need fanout).
    constexpr std::uint32_t kNoOrder = 0xffffffffu;
    std::vector<std::uint32_t> net_order(nets, kNoOrder);
    for (std::size_t oi = 0; oi < num_order; ++oi) {
      net_order[order_to_net_[oi]] = static_cast<std::uint32_t>(oi);
    }
    fanout_offset_.assign(num_order + 1, 0);
    for (const CellId c : comb_ids) {
      for (const NetId in : netlist_.cell(c).inputs) {
        if (net_order[in] != kNoOrder) ++fanout_offset_[net_order[in] + 1];
      }
    }
    for (std::size_t oi = 0; oi < num_order; ++oi) fanout_offset_[oi + 1] += fanout_offset_[oi];
    fanout_cells_.assign(fanout_offset_[num_order], 0);
    std::vector<std::uint32_t> cursor(fanout_offset_.begin(), fanout_offset_.end() - 1);
    for (std::size_t i = 0; i < comb_ids.size(); ++i) {
      for (const NetId in : netlist_.cell(comb_ids[i]).inputs) {
        const std::uint32_t oi = net_order[in];
        if (oi != kNoOrder) fanout_cells_[cursor[oi]++] = static_cast<std::uint32_t>(i);
      }
    }

    pend_val_.assign(num_order * kW, 0);
    has_pend_.assign(num_order * kW, 0);
    stamp_.assign(num_order * simd::kStampPlanes * kW, 0);
    slot_entries_.assign(simd::kTimedSlots * num_order, 0);
    slot_count_.assign(simd::kTimedSlots, 0);
    slot_member_.assign(num_order, 0);
    retrig_.assign(comb_cells_.size() * kW, 0);
    trig_mark_.assign(comb_cells_.size(), 0);
    trig_list_.assign(comb_cells_.size(), 0);

    ctx_.timed = true;
    ctx_.num_order = num_order;
    ctx_.delay = delay_.data();
    ctx_.cell_order_base = cell_order_base_.data();
    ctx_.order_to_net = order_to_net_.data();
    ctx_.order_driver = order_driver_.data();
    ctx_.fanout_offset = fanout_offset_.data();
    ctx_.fanout_cells = fanout_cells_.data();
    ctx_.pend_val = pend_val_.data();
    ctx_.has_pend = has_pend_.data();
    ctx_.stamp = stamp_.data();
    ctx_.slot_entries = slot_entries_.data();
    ctx_.slot_count = slot_count_.data();
    ctx_.slot_member = slot_member_.data();
    ctx_.retrig = retrig_.data();
    ctx_.trig_mark = trig_mark_.data();
    ctx_.trig_list = trig_list_.data();
  }

  ctx_.mask_full = true;
  // Purely combinational designs settle in one levelized pass per cycle, so
  // every net changes at most once and functional toggles == transitions
  // (glitches identically zero); the kernel skips the start-vs-end pass and
  // flush_stats folds the transition planes into both counters.  Timed modes
  // always need the functional pass - glitches exist without DFFs.
  ctx_.count_func = timed || !seq_cells_.empty();
  ctx_.cells = comb_cells_.data();
  ctx_.num_cells = comb_cells_.size();
  ctx_.seq = seq_cells_.data();
  ctx_.num_seq = seq_cells_.size();
  ctx_.num_nets = nets;
  ctx_.words = words_.data();
  ctx_.dff_next = dff_next_.data();
  ctx_.mask = mask_.data();
  ctx_.dirty = dirty_.data();
  ctx_.dirty_list = dirty_list_.data();
  ctx_.touched = touched_.data();
  ctx_.touched_list = touched_list_.data();
  ctx_.start_words = start_words_.data();
  ctx_.trans_planes = trans_planes_.data();
  ctx_.func_planes = func_planes_.data();
  ctx_.cycle_planes = cycle_planes_.data();

  reset_state();
}

void BitSimulator::reset_stats() {
  std::fill(trans_planes_.begin(), trans_planes_.begin() + ctx_.trans_used * kW, 0);
  std::fill(func_planes_.begin(), func_planes_.begin() + ctx_.func_used * kW, 0);
  std::fill(cycle_planes_.begin(), cycle_planes_.begin() + ctx_.cycle_used * kW, 0);
  ctx_.trans_used = ctx_.func_used = ctx_.cycle_used = 0;
  pending_cycles_ = 0;
  pending_events_ = 0;
  transitions_.fill(0);
  functional_.fill(0);
  cycles_.fill(0);
}

void BitSimulator::reset_state() {
  std::fill(words_.begin(), words_.end(), 0);
  std::fill(dff_next_.begin(), dff_next_.end(), 0);
  if (ctx_.timed) {
    // Drop any pending events left by an oscillation abort (pend_val/stamp
    // residue is harmless once has_pend and the slot membership are clear).
    std::fill(has_pend_.begin(), has_pend_.end(), 0);
    std::fill(slot_count_.begin(), slot_count_.end(), 0);
    std::fill(slot_member_.begin(), slot_member_.end(), 0);
    std::fill(retrig_.begin(), retrig_.end(), 0);
    std::fill(trig_mark_.begin(), trig_mark_.end(), 0);
    ctx_.slot_total = 0;
    ctx_.oscillated = false;
  }
  // Constants and the combinational image of the all-zero state are
  // established without counting transitions, like EventSimulator's reset.
  kernels_->settle_full(ctx_);
}

void BitSimulator::set_input_word(NetId net, int word, std::uint64_t bits) {
  require(net < netlist_.num_nets(), "BitSimulator::set_input_word: unknown net");
  require(netlist_.driver_of(net) == Netlist::kNoCell,
          "BitSimulator::set_input_word: net is not a primary input");
  require(word >= 0 && word < kWords, "BitSimulator::set_input_word: word index out of range");
  std::uint64_t& w = words_[static_cast<std::size_t>(net) * kW + static_cast<std::size_t>(word)];
  if (w == bits) return;
  w = bits;
  if (!dirty_[net]) {
    dirty_[net] = 1;
    dirty_list_[ctx_.dirty_count++] = net;
  }
}

void BitSimulator::set_input_block(NetId net, const std::uint64_t* block) {
  require(net < netlist_.num_nets(), "BitSimulator::set_input_block: unknown net");
  require(netlist_.driver_of(net) == Netlist::kNoCell,
          "BitSimulator::set_input_block: net is not a primary input");
  std::uint64_t* w = words_.data() + static_cast<std::size_t>(net) * kW;
  if (std::memcmp(w, block, kW * sizeof(std::uint64_t)) == 0) return;
  std::memcpy(w, block, kW * sizeof(std::uint64_t));
  if (!dirty_[net]) {
    dirty_[net] = 1;
    dirty_list_[ctx_.dirty_count++] = net;
  }
}

void BitSimulator::set_inputs(const std::vector<std::uint64_t>& blocks) {
  require(blocks.size() == netlist_.primary_inputs().size() * kW,
          "BitSimulator::set_inputs: expected kWords words per primary input");
  const auto& pis = netlist_.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) set_input_block(pis[i], blocks.data() + i * kW);
}

void BitSimulator::step_cycle() {
  // Overflow guard for the deferred tallies: kZero flushes on a precomputed
  // cycle budget; timed modes count actual plane event adds (a cycle's event
  // volume depends on the stimulus, not just the design size).
  if (ctx_.timed ? pending_events_ >= kTimedFlushEvents : pending_cycles_ >= flush_every_) {
    flush_stats();
  }
  ++pending_cycles_;
  if (ctx_.timed) {
    kernels_->step_cycle_timed(ctx_);
  } else {
    kernels_->step_cycle(ctx_);
  }
  pending_events_ += ctx_.stat_events;
  ctx_.stat_events = 0;
  // Drain the kernel's per-cycle tallies into the registry and re-zero them
  // so each cycle publishes a delta (re-zeroed even when metrics are off so
  // the plain-integer kernel tallies never overflow a delta's worth).
  if (obs::metrics_enabled()) {
    BitsimMetrics& m = bitsim_metrics();
    m.cycles.add();
    std::uint64_t active = kLanes;
    if (!ctx_.mask_full) {
      active = 0;
      for (int w = 0; w < kWords; ++w) {
        active +=
            static_cast<std::uint64_t>(__builtin_popcountll(mask_[static_cast<std::size_t>(w)]));
      }
    }
    m.lanes.add(active);
    m.settle_passes.add(ctx_.settle_passes);
    m.cells_evaluated.add(ctx_.cells_evaluated);
    m.cells_skipped.add(ctx_.settle_passes * ctx_.num_cells - ctx_.cells_evaluated);
    if (ctx_.timed) {
      m.timed_ticks.add(ctx_.timed_ticks);
      m.timed_scheduled.add(ctx_.timed_scheduled);
      m.settle_ticks.observe(ctx_.timed_ticks);
    }
  }
  ctx_.settle_passes = 0;
  ctx_.cells_evaluated = 0;
  ctx_.timed_ticks = 0;
  ctx_.timed_scheduled = 0;
  if (ctx_.oscillated) {
    throw NumericalError("BitSimulator: circuit failed to settle (oscillation?)");
  }
}

void BitSimulator::flush_stats() const {
  for (int l = 0; l < kLanes; ++l) {
    const std::size_t w = static_cast<std::size_t>(l) >> 6;
    const int sh = l & 63;
    std::uint64_t t = 0;
    for (std::size_t p = 0; p < ctx_.trans_used; ++p) {
      t |= ((trans_planes_[p * kW + w] >> sh) & 1u) << p;
    }
    std::uint64_t f = 0;
    for (std::size_t p = 0; p < ctx_.func_used; ++p) {
      f |= ((func_planes_[p * kW + w] >> sh) & 1u) << p;
    }
    std::uint64_t c = 0;
    for (std::size_t p = 0; p < ctx_.cycle_used; ++p) {
      c |= ((cycle_planes_[p * kW + w] >> sh) & 1u) << p;
    }
    transitions_[static_cast<std::size_t>(l)] += t;
    functional_[static_cast<std::size_t>(l)] += ctx_.count_func ? f : t;
    cycles_[static_cast<std::size_t>(l)] += c;
  }
  std::fill(trans_planes_.begin(), trans_planes_.begin() + ctx_.trans_used * kW, 0);
  std::fill(func_planes_.begin(), func_planes_.begin() + ctx_.func_used * kW, 0);
  std::fill(cycle_planes_.begin(), cycle_planes_.begin() + ctx_.cycle_used * kW, 0);
  ctx_.trans_used = ctx_.func_used = ctx_.cycle_used = 0;
  pending_cycles_ = 0;
  pending_events_ = 0;
}

std::uint64_t BitSimulator::cycles(int lane) const {
  if (pending_cycles_ != 0) flush_stats();
  return cycles_[static_cast<std::size_t>(lane)];
}

std::uint64_t BitSimulator::transitions(int lane) const {
  if (pending_cycles_ != 0) flush_stats();
  return transitions_[static_cast<std::size_t>(lane)];
}

std::uint64_t BitSimulator::glitches(int lane) const {
  // Per cycle and lane, transitions >= functional toggles (a net whose end
  // value differs from its start value changed at least once), so the scalar
  // per-cycle formula  sum(ct - min(ct, func))  telescopes to the difference
  // of the totals.
  if (pending_cycles_ != 0) flush_stats();
  return transitions_[static_cast<std::size_t>(lane)] - functional_[static_cast<std::size_t>(lane)];
}

std::uint64_t BitSimulator::outputs_word(int lane) const {
  std::uint64_t w = 0;
  const auto& pos = netlist_.primary_outputs();
  for (std::size_t i = 0; i < pos.size() && i < 64; ++i) {
    if (value(pos[i], lane)) w |= (std::uint64_t{1} << i);
  }
  return w;
}

}  // namespace optpower
