#include "sim/bitsim.h"

#include <algorithm>
#include <cstring>

#include "netlist/cell.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace optpower {

namespace {
constexpr std::size_t kW = simd::kWordsPerBlock;
constexpr std::size_t kPlaneWords = simd::kAccPlanes * kW;

// Registry instruments resolved once; per-cycle cost is a handful of relaxed
// adds against one kernel pass over the whole 512-lane block.
struct BitsimMetrics {
  obs::Counter& cycles = obs::registry().counter("sim.bitsim.cycles");
  obs::Counter& lanes = obs::registry().counter("sim.bitsim.lanes_simulated");
  obs::Counter& settle_passes = obs::registry().counter("sim.bitsim.settle_passes");
  obs::Counter& cells_evaluated = obs::registry().counter("sim.bitsim.cells_evaluated");
  obs::Counter& cells_skipped = obs::registry().counter("sim.bitsim.dirty_cone_skips");
};

BitsimMetrics& bitsim_metrics() {
  static BitsimMetrics* m = new BitsimMetrics();
  return *m;
}
}  // namespace

BitSimulator::LaneMask BitSimulator::lane_mask(int lanes) {
  require(lanes >= 0 && lanes <= kLanes, "BitSimulator::lane_mask: lane count out of range");
  LaneMask m{};
  for (int w = 0; w < kWords; ++w) {
    const int lo = w * 64;
    if (lanes >= lo + 64) m[static_cast<std::size_t>(w)] = ~std::uint64_t{0};
    else if (lanes > lo) m[static_cast<std::size_t>(w)] = (std::uint64_t{1} << (lanes - lo)) - 1;
  }
  return m;
}

BitSimulator::BitSimulator(const Netlist& netlist, simd::Backend backend)
    : netlist_(netlist), backend_(backend), kernels_(&simd::kernels(backend)) {
  netlist_.verify();
  const std::size_t nets = netlist_.num_nets();

  // Flatten the combinational cells in topological order for the settle
  // kernel, padding unused input pins so the dirty-cone check is branchless,
  // and collect the sequential cells for the clock-edge kernel.
  for (const CellId c : netlist_.topo_order()) {
    const CellInstance& cell = netlist_.cell(c);
    if (cell_spec(cell.type).is_sequential) {
      simd::SeqCell s{};
      s.d = cell.inputs[0];
      s.en = cell.type == CellType::kDffEnable ? cell.inputs[1] : kNoNet;
      s.q = cell.outputs[0];
      seq_cells_.push_back(s);
      continue;
    }
    simd::FlatCell f{};
    f.type = cell.type;
    f.num_outputs = static_cast<std::uint8_t>(cell.outputs.size());
    const NetId pad = cell.inputs.empty() ? cell.outputs[0] : cell.inputs[0];
    for (int p = 0; p < 3; ++p) {
      f.in[p] = static_cast<std::size_t>(p) < cell.inputs.size() ? cell.inputs[p] : pad;
    }
    f.out[0] = cell.outputs[0];
    f.out[1] = cell.outputs.size() > 1 ? cell.outputs[1] : cell.outputs[0];
    comb_cells_.push_back(f);
  }

  words_.assign(nets * kW, 0);
  dff_next_.assign(seq_cells_.size() * kW, 0);
  mask_ = all_lanes();
  dirty_.assign(nets, 0);
  dirty_list_.assign(nets, 0);
  touched_.assign(nets, 0);
  touched_list_.assign(nets, 0);
  start_words_.assign(nets * kW, 0);
  trans_planes_.assign(kPlaneWords, 0);
  func_planes_.assign(kPlaneWords, 0);
  cycle_planes_.assign(kPlaneWords, 0);

  // Overflow guard for the deferred carry-save tallies: one flush window
  // must stay below 2^31 events per lane.  Per cycle a lane sees at most
  // one transition per net per settle (x2), one per DFF commit, one
  // functional toggle per net, and one cycle tick.
  const std::uint64_t per_cycle = 3 * static_cast<std::uint64_t>(nets) + seq_cells_.size() + 1;
  flush_every_ = std::max<std::uint64_t>(1, (std::uint64_t{1} << 31) / per_cycle);

  ctx_.mask_full = true;
  // Purely combinational designs settle in one levelized pass per cycle, so
  // every net changes at most once and functional toggles == transitions
  // (glitches identically zero); the kernel skips the start-vs-end pass and
  // flush_stats folds the transition planes into both counters.
  ctx_.count_func = !seq_cells_.empty();
  ctx_.cells = comb_cells_.data();
  ctx_.num_cells = comb_cells_.size();
  ctx_.seq = seq_cells_.data();
  ctx_.num_seq = seq_cells_.size();
  ctx_.num_nets = nets;
  ctx_.words = words_.data();
  ctx_.dff_next = dff_next_.data();
  ctx_.mask = mask_.data();
  ctx_.dirty = dirty_.data();
  ctx_.dirty_list = dirty_list_.data();
  ctx_.touched = touched_.data();
  ctx_.touched_list = touched_list_.data();
  ctx_.start_words = start_words_.data();
  ctx_.trans_planes = trans_planes_.data();
  ctx_.func_planes = func_planes_.data();
  ctx_.cycle_planes = cycle_planes_.data();

  reset_state();
}

void BitSimulator::reset_stats() {
  std::fill(trans_planes_.begin(), trans_planes_.begin() + ctx_.trans_used * kW, 0);
  std::fill(func_planes_.begin(), func_planes_.begin() + ctx_.func_used * kW, 0);
  std::fill(cycle_planes_.begin(), cycle_planes_.begin() + ctx_.cycle_used * kW, 0);
  ctx_.trans_used = ctx_.func_used = ctx_.cycle_used = 0;
  pending_cycles_ = 0;
  transitions_.fill(0);
  functional_.fill(0);
  cycles_.fill(0);
}

void BitSimulator::reset_state() {
  std::fill(words_.begin(), words_.end(), 0);
  std::fill(dff_next_.begin(), dff_next_.end(), 0);
  // Constants and the combinational image of the all-zero state are
  // established without counting transitions, like EventSimulator's reset.
  kernels_->settle_full(ctx_);
}

void BitSimulator::set_input_word(NetId net, int word, std::uint64_t bits) {
  require(net < netlist_.num_nets(), "BitSimulator::set_input_word: unknown net");
  require(netlist_.driver_of(net) == Netlist::kNoCell,
          "BitSimulator::set_input_word: net is not a primary input");
  require(word >= 0 && word < kWords, "BitSimulator::set_input_word: word index out of range");
  std::uint64_t& w = words_[static_cast<std::size_t>(net) * kW + static_cast<std::size_t>(word)];
  if (w == bits) return;
  w = bits;
  if (!dirty_[net]) {
    dirty_[net] = 1;
    dirty_list_[ctx_.dirty_count++] = net;
  }
}

void BitSimulator::set_input_block(NetId net, const std::uint64_t* block) {
  require(net < netlist_.num_nets(), "BitSimulator::set_input_block: unknown net");
  require(netlist_.driver_of(net) == Netlist::kNoCell,
          "BitSimulator::set_input_block: net is not a primary input");
  std::uint64_t* w = words_.data() + static_cast<std::size_t>(net) * kW;
  if (std::memcmp(w, block, kW * sizeof(std::uint64_t)) == 0) return;
  std::memcpy(w, block, kW * sizeof(std::uint64_t));
  if (!dirty_[net]) {
    dirty_[net] = 1;
    dirty_list_[ctx_.dirty_count++] = net;
  }
}

void BitSimulator::set_inputs(const std::vector<std::uint64_t>& blocks) {
  require(blocks.size() == netlist_.primary_inputs().size() * kW,
          "BitSimulator::set_inputs: expected kWords words per primary input");
  const auto& pis = netlist_.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) set_input_block(pis[i], blocks.data() + i * kW);
}

void BitSimulator::step_cycle() {
  if (pending_cycles_ >= flush_every_) flush_stats();
  ++pending_cycles_;
  kernels_->step_cycle(ctx_);
  // Drain the kernel's per-cycle tallies into the registry and re-zero them
  // so each cycle publishes a delta (re-zeroed even when metrics are off so
  // the plain-integer kernel tallies never overflow a delta's worth).
  if (obs::metrics_enabled()) {
    BitsimMetrics& m = bitsim_metrics();
    m.cycles.add();
    std::uint64_t active = kLanes;
    if (!ctx_.mask_full) {
      active = 0;
      for (int w = 0; w < kWords; ++w) {
        active +=
            static_cast<std::uint64_t>(__builtin_popcountll(mask_[static_cast<std::size_t>(w)]));
      }
    }
    m.lanes.add(active);
    m.settle_passes.add(ctx_.settle_passes);
    m.cells_evaluated.add(ctx_.cells_evaluated);
    m.cells_skipped.add(ctx_.settle_passes * ctx_.num_cells - ctx_.cells_evaluated);
  }
  ctx_.settle_passes = 0;
  ctx_.cells_evaluated = 0;
}

void BitSimulator::flush_stats() const {
  for (int l = 0; l < kLanes; ++l) {
    const std::size_t w = static_cast<std::size_t>(l) >> 6;
    const int sh = l & 63;
    std::uint64_t t = 0;
    for (std::size_t p = 0; p < ctx_.trans_used; ++p) {
      t |= ((trans_planes_[p * kW + w] >> sh) & 1u) << p;
    }
    std::uint64_t f = 0;
    for (std::size_t p = 0; p < ctx_.func_used; ++p) {
      f |= ((func_planes_[p * kW + w] >> sh) & 1u) << p;
    }
    std::uint64_t c = 0;
    for (std::size_t p = 0; p < ctx_.cycle_used; ++p) {
      c |= ((cycle_planes_[p * kW + w] >> sh) & 1u) << p;
    }
    transitions_[static_cast<std::size_t>(l)] += t;
    functional_[static_cast<std::size_t>(l)] += ctx_.count_func ? f : t;
    cycles_[static_cast<std::size_t>(l)] += c;
  }
  std::fill(trans_planes_.begin(), trans_planes_.begin() + ctx_.trans_used * kW, 0);
  std::fill(func_planes_.begin(), func_planes_.begin() + ctx_.func_used * kW, 0);
  std::fill(cycle_planes_.begin(), cycle_planes_.begin() + ctx_.cycle_used * kW, 0);
  ctx_.trans_used = ctx_.func_used = ctx_.cycle_used = 0;
  pending_cycles_ = 0;
}

std::uint64_t BitSimulator::cycles(int lane) const {
  if (pending_cycles_ != 0) flush_stats();
  return cycles_[static_cast<std::size_t>(lane)];
}

std::uint64_t BitSimulator::transitions(int lane) const {
  if (pending_cycles_ != 0) flush_stats();
  return transitions_[static_cast<std::size_t>(lane)];
}

std::uint64_t BitSimulator::glitches(int lane) const {
  // Per cycle and lane, transitions >= functional toggles (a net whose end
  // value differs from its start value changed at least once), so the scalar
  // per-cycle formula  sum(ct - min(ct, func))  telescopes to the difference
  // of the totals.
  if (pending_cycles_ != 0) flush_stats();
  return transitions_[static_cast<std::size_t>(lane)] - functional_[static_cast<std::size_t>(lane)];
}

std::uint64_t BitSimulator::outputs_word(int lane) const {
  std::uint64_t w = 0;
  const auto& pos = netlist_.primary_outputs();
  for (std::size_t i = 0; i < pos.size() && i < 64; ++i) {
    if (value(pos[i], lane)) w |= (std::uint64_t{1} << i);
  }
  return w;
}

}  // namespace optpower
