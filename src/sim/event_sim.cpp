#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>

#include "netlist/cell.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace optpower {

namespace {
// Oscillation guard: identical bound (and message) to the reference
// scheduler, so throwing runs stay equivalent too.
constexpr std::int64_t kMaxTicks = 1 << 22;

obs::Counter& settle_pass_counter() {
  static obs::Counter& c = obs::registry().counter("sim.event.settle_passes");
  return c;
}
}  // namespace

EventSimulator::EventSimulator(const Netlist& netlist, SimDelayMode mode, int wheel_bits)
    : netlist_(netlist), mode_(mode), wheel_bits_(wheel_bits) {
  require(wheel_bits_ >= 1 && wheel_bits_ <= 20, "EventSimulator: wheel_bits must be in [1, 20]");
  netlist_.verify();
  topo_ = netlist_.topo_order();
  // Canonical intra-tick order: same-tick events apply in (driver topo
  // position, output pin) order, and triggered cells re-evaluate in topo
  // order.  The rank is a pure function of the netlist - no scheduling
  // history - which is what lets the 512-lane bit-parallel engine reproduce
  // timed runs lane-for-lane (its dense per-net pendings have no serial
  // numbers to order by).
  cell_rank_.assign(netlist_.num_cells(), 0);
  for (std::size_t i = 0; i < topo_.size(); ++i) {
    cell_rank_[topo_[i]] = static_cast<std::uint32_t>(i);
  }
  net_rank_.assign(netlist_.num_nets(), 0);
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
      net_rank_[cell.outputs[k]] = cell_rank_[c] * 2 + static_cast<std::uint32_t>(k);
    }
  }
  values_.assign(netlist_.num_nets(), 0);
  dff_next_.assign(netlist_.num_cells(), 0);
  pending_serial_.assign(netlist_.num_nets(), 0);
  eval_stamp_.assign(netlist_.num_cells(), 0);
  stats_.cell_transitions.assign(netlist_.num_cells(), 0);
  // Per-cell delays are mode-constant: precompute once instead of paying the
  // lround() in every evaluation like the reference scheduler did.
  delay_ticks_.resize(netlist_.num_cells());
  for (std::size_t c = 0; c < netlist_.num_cells(); ++c) {
    switch (mode_) {
      case SimDelayMode::kUnit: delay_ticks_[c] = 1; break;
      case SimDelayMode::kZero: delay_ticks_[c] = 0; break;
      case SimDelayMode::kCellDepth:
        delay_ticks_[c] = std::max(
            1, static_cast<int>(std::lround(
                   cell_spec(netlist_.cell(static_cast<CellId>(c)).type).depth_units * 10.0)));
        break;
    }
  }
  wheel_mask_ = (std::int64_t{1} << wheel_bits_) - 1;
  slots_.resize(std::size_t{1} << wheel_bits_);
  reset_state();
}

void EventSimulator::reset_stats() {
  stats_ = SimStats{};
  stats_.cell_transitions.assign(netlist_.num_cells(), 0);
}

void EventSimulator::reset_state() {
  // An aborted settle() (oscillation throw) leaves events parked in the
  // wheel and stale pending serials; the heap scheduler's queue was
  // settle-local so it recovered for free - drop everything here so a full
  // state reset means what it says.  No-ops at clean cycle boundaries.
  for (auto& slot : slots_) slot.clear();
  overflow_.clear();
  ring_count_ = 0;
  overflow_count_ = 0;
  std::fill(pending_serial_.begin(), pending_serial_.end(), 0);

  std::fill(values_.begin(), values_.end(), 0);
  std::fill(dff_next_.begin(), dff_next_.end(), 0);
  // Constants and the combinational image of the all-zero state must be
  // established without counting transitions: one levelized topo pass (the
  // image is delay-independent) under a stats save/restore.
  const SimStats saved = stats_;
  settle_levelized();
  stats_ = saved;
}

void EventSimulator::set_input(NetId net, bool value) {
  require(net < values_.size(), "EventSimulator::set_input: unknown net");
  require(netlist_.driver_of(net) == Netlist::kNoCell,
          "EventSimulator::set_input: net is not a primary input");
  values_[net] = value ? 1 : 0;
}

void EventSimulator::set_inputs(const std::vector<bool>& values) {
  require(values.size() == netlist_.primary_inputs().size(),
          "EventSimulator::set_inputs: input count mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[netlist_.primary_inputs()[i]] = values[i] ? 1 : 0;
  }
}

void EventSimulator::schedule_cell(CellId c, std::int64_t now) {
  const CellInstance& cell = netlist_.cell(c);
  if (cell_spec(cell.type).is_sequential) return;
  std::uint8_t in = 0;
  for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
    in |= static_cast<std::uint8_t>((values_[cell.inputs[i]] ? 1u : 0u) << i);
  }
  const std::uint8_t outv = eval_cell(cell.type, in);
  const std::int64_t when = now + delay_ticks_[c];
  for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
    const char nv = static_cast<char>((outv >> k) & 1u);
    const NetId net = cell.outputs[k];
    // Inertial: the newest scheduled value supersedes older pendings.
    const Event ev{when, ++next_serial_, net, nv};
    pending_serial_[net] = ev.serial;
    if (when - rev_base_ <= wheel_mask_) {
      // Within the ring's current revolution: straight into its slot.  Slot
      // append order is serial order because every earlier event in this slot
      // was scheduled earlier (time only moves forward within a revolution).
      slots_[static_cast<std::size_t>(when & wheel_mask_)].push_back(ev);
      ++ring_count_;
    } else {
      // Far future: park in the event's revolution bucket; poured into the
      // ring (in serial order, before any same-revolution direct insert can
      // exist) when that revolution begins.
      overflow_[when >> wheel_bits_].push_back(ev);
      ++overflow_count_;
    }
  }
}

void EventSimulator::pour_overflow_revolution(std::int64_t revolution) {
  const auto it = overflow_.find(revolution);
  if (it == overflow_.end()) return;
  for (const Event& ev : it->second) {
    slots_[static_cast<std::size_t>(ev.time & wheel_mask_)].push_back(ev);
  }
  ring_count_ += it->second.size();
  overflow_count_ -= it->second.size();
  overflow_.erase(it);
}

void EventSimulator::process_tick(std::int64_t tick) {
  std::vector<Event>& slot = slots_[static_cast<std::size_t>(tick & wheel_mask_)];
  if (slot.empty()) return;
  const auto& fanout = netlist_.fanout();

  // Delay >= 1 (kUnit/kCellDepth): everything a tick-t evaluation schedules
  // lands at t+1 or later, so the slot's content is fixed for the whole tick
  // and can be processed as one levelized wave with deferred, deduplicated
  // cell evaluations.  Canonical intra-tick order: surviving events apply in
  // net-rank order (driver topo position, then output pin), and the
  // triggered cells re-evaluate in topo order.  One tie-break rule makes the
  // wave exact:
  //  * An event whose driver was already re-triggered by an earlier change
  //    in THIS tick must be skipped: the deferred re-evaluation of the
  //    driver (which sees the whole tick's changes) supersedes it.  Topo
  //    order guarantees the triggering change always ranks BEFORE the
  //    superseded event, so the skip decision never depends on scheduling
  //    history - only on the netlist.
  // The heap oracle pops same-tick events in the same net-rank order and
  // re-evaluates readers immediately; its last (surviving) evaluation per
  // cell sees exactly the values our deferred evaluation sees, so SimStats
  // and every net value remain bit-identical (scheduler_equivalence_test).
  wave_scratch_.clear();
  wave_scratch_.swap(slot);
  ring_count_ -= wave_scratch_.size();
  // Pack (net rank << 32 | slot index) keys so the sort never gathers
  // through net_rank_ per comparison; slot index rises with the scheduling
  // serial, so the tie-break is the serial one.  Scheduling itself mostly
  // runs in topo order, so the wave is usually already canonical - detect
  // that while packing and skip the sort (the hot path of timed settles).
  sort_keys_.clear();
  bool wave_sorted = true;
  for (std::size_t i = 0; i < wave_scratch_.size(); ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(net_rank_[wave_scratch_[i].net]) << 32) | i;
    if (!sort_keys_.empty() && key < sort_keys_.back()) wave_sorted = false;
    sort_keys_.push_back(key);
  }
  if (!wave_sorted) std::sort(sort_keys_.begin(), sort_keys_.end());
  triggers_scratch_.clear();
  // Phase 1: apply every surviving event of the wave in canonical order.
  const std::uint64_t trigger_mark = ++wave_stamp_;
  for (const std::uint64_t key : sort_keys_) {
    const Event& ev = wave_scratch_[key & 0xffffffffu];
    if (ev.serial != pending_serial_[ev.net]) continue;  // superseded (inertial cancel)
    const CellId drv = netlist_.driver_of(ev.net);
    if (drv != Netlist::kNoCell && eval_stamp_[drv] == trigger_mark) {
      // The deferred re-evaluation of `drv` supersedes this event.
      continue;
    }
    pending_serial_[ev.net] = 0;
    if (ev.time > kMaxTicks) {
      throw NumericalError("EventSimulator: circuit failed to settle (oscillation?)");
    }
    if (values_[ev.net] == ev.value) continue;  // no change
    values_[ev.net] = ev.value;
    ++stats_.total_transitions;
    if (drv != Netlist::kNoCell) ++stats_.cell_transitions[drv];
    for (const CellId reader : fanout[ev.net]) {
      if (eval_stamp_[reader] == trigger_mark) continue;
      eval_stamp_[reader] = trigger_mark;
      triggers_scratch_.push_back(reader);
    }
  }
  // Phase 2: evaluate each triggered cell exactly once, in topo order; every
  // evaluation sees all of the tick's value changes.  Same packed-key trick:
  // triggers arrive nearly topo-sorted, so the sort rarely runs.
  sort_keys_.clear();
  bool trig_sorted = true;
  for (const CellId c : triggers_scratch_) {
    const std::uint64_t key = (static_cast<std::uint64_t>(cell_rank_[c]) << 32) | c;
    if (!sort_keys_.empty() && key < sort_keys_.back()) trig_sorted = false;
    sort_keys_.push_back(key);
  }
  if (!trig_sorted) std::sort(sort_keys_.begin(), sort_keys_.end());
  for (const std::uint64_t key : sort_keys_) {
    schedule_cell(static_cast<CellId>(key & 0xffffffffu), tick);
  }
}

void EventSimulator::settle_levelized() {
  // kZero: one topological evaluation per settle.  Every cell sees its
  // inputs' FINAL values (PIs and DFF outputs are sources of the topo
  // order), so each net changes at most once per settle and no delta-cycle
  // hazards exist - the transition count is exactly the per-net
  // start-vs-settled indicator the BDD exact-activity model computes.
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (cell_spec(cell.type).is_sequential) continue;
    std::uint8_t in = 0;
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
      in |= static_cast<std::uint8_t>((values_[cell.inputs[i]] ? 1u : 0u) << i);
    }
    const std::uint8_t outv = eval_cell(cell.type, in);
    for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
      const char nv = static_cast<char>((outv >> k) & 1u);
      const NetId net = cell.outputs[k];
      if (values_[net] == nv) continue;
      values_[net] = nv;
      ++stats_.total_transitions;
      ++stats_.cell_transitions[c];
    }
  }
}

void EventSimulator::settle() {
  if (obs::metrics_enabled()) settle_pass_counter().add();
  if (mode_ == SimDelayMode::kZero) {
    settle_levelized();
    return;
  }
  // Seed: evaluate every combinational cell against the (possibly changed)
  // primary inputs and DFF outputs; running the schedule from t = 0
  // reproduces glitching under the chosen delay model.
  rev_base_ = 0;
  for (const CellId c : topo_) schedule_cell(c, 0);

  while (ring_count_ + overflow_count_ > 0) {
    if (ring_count_ == 0) {
      // Ring drained: skip empty revolutions, straight to the next populated
      // overflow bucket.
      rev_base_ = overflow_.begin()->first << wheel_bits_;
    }
    pour_overflow_revolution(rev_base_ >> wheel_bits_);
    for (std::int64_t offset = 0; offset <= wheel_mask_ && ring_count_ > 0; ++offset) {
      process_tick(rev_base_ + offset);
    }
    rev_base_ += wheel_mask_ + 1;
  }
}

void EventSimulator::step_cycle() {
  // Track per-net transition counts to separate functional toggles from
  // glitches: a net that ends the cycle at a different value needs exactly
  // one transition; anything beyond that (and any transition on a net that
  // returns to its start value) is glitch power.
  const std::uint64_t transitions_before = stats_.total_transitions;
  start_scratch_ = values_;

  // Pre-edge settle: propagate this cycle's inputs (and last edge's Q
  // changes, already settled) through the combinational logic.
  settle();

  // Clock edge: sample D (and EN), then apply Q updates; count Q toggles.
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    const bool d = values_[cell.inputs[0]];
    if (cell.type == CellType::kDffEnable) {
      const bool en = values_[cell.inputs[1]];
      dff_next_[c] = en ? (d ? 1 : 0) : values_[cell.outputs[0]];
    } else {
      dff_next_[c] = d ? 1 : 0;
    }
  }
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    const NetId q = cell.outputs[0];
    if (values_[q] != dff_next_[c]) {
      values_[q] = dff_next_[c];
      ++stats_.total_transitions;
      ++stats_.cell_transitions[c];
    }
  }

  // Post-edge settle: propagate the new Q values so that value()/outputs()
  // observe the state "during the next cycle" - combinational and registered
  // output paths then agree on latency (a 2-stage pipeline shows its result
  // exactly pipeline_latency() steps after the operands were applied).
  settle();

  std::uint64_t functional = 0;
  for (std::size_t n = 0; n < values_.size(); ++n) {
    if (values_[n] != start_scratch_[n]) ++functional;
  }
  const std::uint64_t cycle_transitions = stats_.total_transitions - transitions_before;
  stats_.glitch_transitions += cycle_transitions - std::min(cycle_transitions, functional);
  ++stats_.cycles;
}

std::vector<bool> EventSimulator::outputs() const {
  std::vector<bool> out;
  out.reserve(netlist_.primary_outputs().size());
  for (const NetId net : netlist_.primary_outputs()) out.push_back(values_[net] != 0);
  return out;
}

std::uint64_t EventSimulator::outputs_word() const {
  std::uint64_t w = 0;
  const auto& pos = netlist_.primary_outputs();
  for (std::size_t i = 0; i < pos.size() && i < 64; ++i) {
    if (values_[pos[i]]) w |= (1ULL << i);
  }
  return w;
}

}  // namespace optpower
