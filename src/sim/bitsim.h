// Bit-parallel levelized zero-delay logic simulator: 512 independent input
// vectors packed into an 8-word lane block per net, every gate evaluated
// once per topological level with bitwise block operations dispatched to a
// runtime-selected SIMD backend (simd/simd.h: scalar, AVX2, or AVX-512).
//
// This is the wide twin of EventSimulator's (truly levelized) kZero mode:
// lane k of a BitSimulator is bit-identical - every net value after every
// cycle, and the per-lane transition/glitch statistics - to a scalar kZero
// EventSimulator driven with lane k's stimulus, on every backend
// (tests/sim/bitsim_test.cpp asserts this per backend).  One block-level
// pass evaluates what the scalar path needs 512 full simulations for; the
// ActivityEngine seam in sim/activity.h packs testbench streams into lanes
// and pools the per-lane counters into the usual ActivityMeasurement.
//
// Semantics (shared with EventSimulator kZero):
//  * Two-valued logic; every net starts at 0 in all lanes, DFFs reset to 0.
//  * settle = ONE topological evaluation: each cell sees its inputs' final
//    values, so each net changes at most once per settle - no delta-cycle
//    hazards, which is exactly the estimator bdd/symbolic.h exact_activity()
//    computes in closed form.
//  * step_cycle() = pre-edge settle, DFF sample + Q update, post-edge
//    settle, then per-lane glitch accounting identical to the scalar
//    formula (cycle transitions beyond the per-net start-vs-end minimum).
//
// Incremental (dirty-cone) mode, on by default: a settle skips every cell
// none of whose inputs changed since the cell last settled.  Because one
// levelized pass sees all changes of the cycle, clean fanin proves the
// cell's output cannot change - the skip is EXACT, not approximate (a
// dedicated test runs both modes in lockstep).  Testbenches that hold
// inputs steady across cycles_per_vector clocks, and the post-edge settle
// of combinational designs, skip nearly everything.
//
// The active-lane mask freezes STATISTICS per lane (values keep evolving):
// a testbench whose streams consume different vector counts masks a lane
// out once its stream is exhausted, leaving that lane's counters exactly
// where the equivalent scalar run stopped.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "simd/simd.h"

namespace optpower {

/// 512-lane block-level zero-delay simulator over a verified Netlist.  One
/// instance owns all mutable state and only reads the shared netlist, so
/// independent instances may run on different threads (warm the netlist's
/// fanout cache first if any other simulator shares the netlist).
class BitSimulator {
 public:
  /// 64-bit words per lane block.
  static constexpr int kWords = static_cast<int>(simd::kWordsPerBlock);
  /// Lanes per block: one bit per independent simulation.
  static constexpr int kLanes = kWords * 64;

  /// One bit per lane, word w covering lanes [64w, 64w + 64).
  using LaneMask = std::array<std::uint64_t, static_cast<std::size_t>(kWords)>;

  /// Mask with the first `lanes` lanes set (0 <= lanes <= kLanes).
  [[nodiscard]] static LaneMask lane_mask(int lanes);
  /// All lanes set.
  [[nodiscard]] static LaneMask all_lanes() { return lane_mask(kLanes); }

  /// Build a simulator over `netlist` (verify()-checked here), running on
  /// `backend` (default: the process-wide choice - cpuid, overridable with
  /// OPTPOWER_SIMD).  All backends produce bit-identical results.
  explicit BitSimulator(const Netlist& netlist,
                        simd::Backend backend = simd::default_backend());

  /// The netlist this simulator runs.
  [[nodiscard]] const Netlist& netlist() const noexcept { return netlist_; }

  /// The SIMD backend the kernels dispatch to.
  [[nodiscard]] simd::Backend backend() const noexcept { return backend_; }

  /// Set one 64-lane word (lanes [64w, 64w+64)) of a primary input's block
  /// for the upcoming cycle (bit l = lane 64w+l's value, stable for the
  /// whole cycle).
  void set_input_word(NetId net, int word, std::uint64_t bits);
  /// Set a primary input's whole lane block (kWords words).
  void set_input_block(NetId net, const std::uint64_t* block);
  /// Set all primary inputs from one block per input, declaration order
  /// (kWords consecutive words per input).
  void set_inputs(const std::vector<std::uint64_t>& blocks);

  /// Lanes whose statistics accumulate (default: all).  Masked-out lanes
  /// keep simulating but their transition/glitch/cycle counters freeze -
  /// the testbench hook for streams of unequal length.
  void set_active_mask(const LaneMask& mask) noexcept {
    mask_ = mask;
    ctx_.mask_full = mask == all_lanes();
  }
  [[nodiscard]] const LaneMask& active_mask() const noexcept { return mask_; }

  /// Dirty-cone incremental settling (default on).  Off = every settle
  /// evaluates every cell; results are bit-identical either way.
  void set_incremental(bool on) noexcept { ctx_.incremental = on; }
  [[nodiscard]] bool incremental() const noexcept { return ctx_.incremental; }

  /// Run one clock cycle for all lanes: settle, clock all DFFs, settle.
  void step_cycle();

  /// Current word w of a net's block (post-settling).
  [[nodiscard]] std::uint64_t word(NetId net, int w) const {
    return words_[static_cast<std::size_t>(net) * simd::kWordsPerBlock +
                  static_cast<std::size_t>(w)];
  }
  /// Current value of a net in one lane.
  [[nodiscard]] bool value(NetId net, int lane) const {
    return ((word(net, lane >> 6) >> (lane & 63)) & 1u) != 0;
  }
  /// Primary outputs of one lane packed LSB-first (EventSimulator::
  /// outputs_word() of that lane's scalar twin).
  [[nodiscard]] std::uint64_t outputs_word(int lane) const;

  /// Per-lane counters since construction or the last reset_stats();
  /// lane k matches the scalar kZero SimStats of lane k's stimulus.
  [[nodiscard]] std::uint64_t cycles(int lane) const;
  [[nodiscard]] std::uint64_t transitions(int lane) const;
  [[nodiscard]] std::uint64_t glitches(int lane) const;

  /// Zero all per-lane counters; simulation state (and the mask) is kept.
  void reset_stats();

  /// Full state reset: all nets to 0 in every lane (constants
  /// re-propagated), stats and mask kept - mirrors EventSimulator.
  void reset_state();

 private:
  /// Fold the pending carry-save planes into the per-lane counters.  The
  /// planes give every event window 2^31 headroom per lane; step_cycle
  /// auto-flushes long before a window can overflow.
  void flush_stats() const;

  const Netlist& netlist_;
  simd::Backend backend_;
  const simd::Kernels* kernels_;
  std::vector<simd::FlatCell> comb_cells_;  // topo order
  std::vector<simd::SeqCell> seq_cells_;
  std::vector<std::uint64_t> words_;        // per net: one lane block
  std::vector<std::uint64_t> dff_next_;     // per seq cell: sampled D block
  LaneMask mask_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint32_t> dirty_list_;
  std::vector<std::uint8_t> touched_;
  std::vector<std::uint32_t> touched_list_;
  std::vector<std::uint64_t> start_words_;  // cycle-start snapshots (touched nets)

  // Deferred statistics: bit-sliced carry-save planes accumulate events
  // across cycles; the scalar per-lane counters are only updated on flush
  // (counter reads, resets, and the periodic overflow guard).
  mutable std::vector<std::uint64_t> trans_planes_;
  mutable std::vector<std::uint64_t> func_planes_;
  mutable std::vector<std::uint64_t> cycle_planes_;
  mutable std::array<std::uint64_t, kLanes> transitions_{};
  mutable std::array<std::uint64_t, kLanes> functional_{};
  mutable std::array<std::uint64_t, kLanes> cycles_{};
  mutable std::uint64_t pending_cycles_ = 0;
  std::uint64_t flush_every_ = 1;  // cycles per flush window (overflow guard)

  mutable simd::BitsimCtx ctx_;  // stable pointer view handed to the kernels
};

}  // namespace optpower
