// Bit-parallel logic simulator: 512 independent input vectors packed into an
// 8-word lane block per net, gates evaluated with bitwise block operations
// dispatched to a runtime-selected SIMD backend (simd/simd.h: scalar, AVX2,
// or AVX-512).  Supports every SimDelayMode:
//
//  * kZero (default): levelized - every gate evaluated once per topological
//    level, hazard-free; the wide twin of EventSimulator's kZero mode.
//  * kUnit / kCellDepth (timed): each settle is a level-synchronized event
//    propagation through a slot ring of per-net pending blocks - glitches
//    from unequal path delays are reproduced exactly, at block speed.
//
// In every mode, lane k of a BitSimulator is bit-identical - every net value
// after every cycle, and the per-lane transition/glitch statistics - to a
// scalar EventSimulator built with the same delay mode and driven with lane
// k's stimulus, on every backend (tests/sim/bitsim_test.cpp asserts this per
// backend and per mode).  The timed equivalence leans on the canonical
// intra-tick event order being a pure function of the netlist (see
// sim/event_sim.h): the block engine applies same-tick events in the same
// (driver topo position, output pin) order and re-evaluates triggered cells
// in the same topo order as the scalar schedulers, so inertial cancellation
// and retrigger supersession resolve identically lane-for-lane.  One
// block-level pass evaluates what the scalar path needs 512 full simulations
// for; the ActivityEngine seam in sim/activity.h packs testbench streams
// into lanes and pools the per-lane counters into ActivityMeasurement.
//
// Semantics (shared with EventSimulator):
//  * Two-valued logic; every net starts at 0 in all lanes, DFFs reset to 0.
//  * kZero settle = ONE topological evaluation: each cell sees its inputs'
//    final values, so each net changes at most once per settle - no
//    delta-cycle hazards, which is exactly the estimator bdd/symbolic.h
//    exact_activity() computes in closed form.
//  * Timed settle = seed every (dirty-reachable) cell at t = 0, then walk
//    ticks applying pending output changes after each cell's delay, with
//    inertial cancellation (a newer evaluation supersedes an older pending).
//  * step_cycle() = pre-edge settle, DFF sample + Q update, post-edge
//    settle, then per-lane glitch accounting identical to the scalar
//    formula (cycle transitions beyond the per-net start-vs-end minimum).
//
// Incremental (dirty-cone) mode, on by default: a settle skips every cell
// none of whose inputs changed since the cell last settled.  Because one
// levelized pass sees all changes of the cycle, clean fanin proves the
// cell's output cannot change - the skip is EXACT, not approximate (a
// dedicated test runs both modes in lockstep).  Testbenches that hold
// inputs steady across cycles_per_vector clocks, and the post-edge settle
// of combinational designs, skip nearly everything.
//
// The active-lane mask freezes STATISTICS per lane (values keep evolving):
// a testbench whose streams consume different vector counts masks a lane
// out once its stream is exhausted, leaving that lane's counters exactly
// where the equivalent scalar run stopped.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/event_sim.h"
#include "simd/simd.h"

namespace optpower {

/// 512-lane block-level simulator over a verified Netlist (any delay mode;
/// see the file comment).  One
/// instance owns all mutable state and only reads the shared netlist, so
/// independent instances may run on different threads (warm the netlist's
/// fanout cache first if any other simulator shares the netlist).
class BitSimulator {
 public:
  /// 64-bit words per lane block.
  static constexpr int kWords = static_cast<int>(simd::kWordsPerBlock);
  /// Lanes per block: one bit per independent simulation.
  static constexpr int kLanes = kWords * 64;

  /// One bit per lane, word w covering lanes [64w, 64w + 64).
  using LaneMask = std::array<std::uint64_t, static_cast<std::size_t>(kWords)>;

  /// Mask with the first `lanes` lanes set (0 <= lanes <= kLanes).
  [[nodiscard]] static LaneMask lane_mask(int lanes);
  /// All lanes set.
  [[nodiscard]] static LaneMask all_lanes() { return lane_mask(kLanes); }

  /// Build a simulator over `netlist` (verify()-checked here) under `mode`
  /// delays, running on `backend` (default: the process-wide choice - cpuid,
  /// overridable with OPTPOWER_SIMD).  All backends produce bit-identical
  /// results, and every lane matches a scalar EventSimulator of the same
  /// mode.
  explicit BitSimulator(const Netlist& netlist, SimDelayMode mode = SimDelayMode::kZero,
                        simd::Backend backend = simd::default_backend());

  /// Backend-only convenience overload (kZero delays).
  BitSimulator(const Netlist& netlist, simd::Backend backend)
      : BitSimulator(netlist, SimDelayMode::kZero, backend) {}

  /// The netlist this simulator runs.
  [[nodiscard]] const Netlist& netlist() const noexcept { return netlist_; }

  /// The delay model this simulator was built with.
  [[nodiscard]] SimDelayMode delay_mode() const noexcept { return mode_; }

  /// The SIMD backend the kernels dispatch to.
  [[nodiscard]] simd::Backend backend() const noexcept { return backend_; }

  /// Set one 64-lane word (lanes [64w, 64w+64)) of a primary input's block
  /// for the upcoming cycle (bit l = lane 64w+l's value, stable for the
  /// whole cycle).
  void set_input_word(NetId net, int word, std::uint64_t bits);
  /// Set a primary input's whole lane block (kWords words).
  void set_input_block(NetId net, const std::uint64_t* block);
  /// Set all primary inputs from one block per input, declaration order
  /// (kWords consecutive words per input).
  void set_inputs(const std::vector<std::uint64_t>& blocks);

  /// Lanes whose statistics accumulate (default: all).  Masked-out lanes
  /// keep simulating but their transition/glitch/cycle counters freeze -
  /// the testbench hook for streams of unequal length.
  void set_active_mask(const LaneMask& mask) noexcept {
    mask_ = mask;
    ctx_.mask_full = mask == all_lanes();
  }
  [[nodiscard]] const LaneMask& active_mask() const noexcept { return mask_; }

  /// Dirty-cone incremental settling (default on).  Off = every settle
  /// evaluates every cell; results are bit-identical either way.
  void set_incremental(bool on) noexcept { ctx_.incremental = on; }
  [[nodiscard]] bool incremental() const noexcept { return ctx_.incremental; }

  /// Run one clock cycle for all lanes: settle, clock all DFFs, settle.
  /// Timed modes throw NumericalError if the circuit fails to settle
  /// (oscillation guard) - call reset_state() to recover, like the scalar
  /// simulator.
  void step_cycle();

  /// Current word w of a net's block (post-settling).
  [[nodiscard]] std::uint64_t word(NetId net, int w) const {
    return words_[static_cast<std::size_t>(net) * simd::kWordsPerBlock +
                  static_cast<std::size_t>(w)];
  }
  /// Current value of a net in one lane.
  [[nodiscard]] bool value(NetId net, int lane) const {
    return ((word(net, lane >> 6) >> (lane & 63)) & 1u) != 0;
  }
  /// Primary outputs of one lane packed LSB-first (EventSimulator::
  /// outputs_word() of that lane's scalar twin).
  [[nodiscard]] std::uint64_t outputs_word(int lane) const;

  /// Per-lane counters since construction or the last reset_stats(); lane k
  /// matches the scalar SimStats of lane k's stimulus under delay_mode().
  [[nodiscard]] std::uint64_t cycles(int lane) const;
  [[nodiscard]] std::uint64_t transitions(int lane) const;
  [[nodiscard]] std::uint64_t glitches(int lane) const;

  /// Zero all per-lane counters; simulation state (and the mask) is kept.
  void reset_stats();

  /// Full state reset: all nets to 0 in every lane (constants
  /// re-propagated), stats and mask kept - mirrors EventSimulator.
  void reset_state();

 private:
  /// Fold the pending carry-save planes into the per-lane counters.  The
  /// planes give every event window 2^31 headroom per lane; step_cycle
  /// auto-flushes long before a window can overflow.
  void flush_stats() const;

  const Netlist& netlist_;
  SimDelayMode mode_;
  simd::Backend backend_;
  const simd::Kernels* kernels_;
  std::vector<simd::FlatCell> comb_cells_;  // topo order
  std::vector<simd::SeqCell> seq_cells_;
  std::vector<std::uint64_t> words_;        // per net: one lane block
  std::vector<std::uint64_t> dff_next_;     // per seq cell: sampled D block
  LaneMask mask_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint32_t> dirty_list_;
  std::vector<std::uint8_t> touched_;
  std::vector<std::uint32_t> touched_list_;
  std::vector<std::uint64_t> start_words_;  // cycle-start snapshots (touched nets)

  // Deferred statistics: bit-sliced carry-save planes accumulate events
  // across cycles; the scalar per-lane counters are only updated on flush
  // (counter reads, resets, and the periodic overflow guard).
  mutable std::vector<std::uint64_t> trans_planes_;
  mutable std::vector<std::uint64_t> func_planes_;
  mutable std::vector<std::uint64_t> cycle_planes_;
  mutable std::array<std::uint64_t, kLanes> transitions_{};
  mutable std::array<std::uint64_t, kLanes> functional_{};
  mutable std::array<std::uint64_t, kLanes> cycles_{};
  mutable std::uint64_t pending_cycles_ = 0;
  mutable std::uint64_t pending_events_ = 0;  // plane event adds this window (timed guard)
  std::uint64_t flush_every_ = 1;  // cycles per flush window (overflow guard)

  // Timed-mode (kUnit / kCellDepth) state; empty under kZero.  See the
  // BitsimCtx field docs in simd/simd.h for the layout.
  std::vector<std::uint8_t> delay_;
  std::vector<std::uint32_t> cell_order_base_;
  std::vector<std::uint32_t> order_to_net_;
  std::vector<std::uint32_t> order_driver_;
  std::vector<std::uint32_t> fanout_offset_;
  std::vector<std::uint32_t> fanout_cells_;
  std::vector<std::uint64_t> pend_val_;
  std::vector<std::uint64_t> has_pend_;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint32_t> slot_entries_;
  std::vector<std::uint32_t> slot_count_;
  std::vector<std::uint32_t> slot_member_;
  std::vector<std::uint64_t> retrig_;
  std::vector<std::uint8_t> trig_mark_;
  std::vector<std::uint32_t> trig_list_;

  mutable simd::BitsimCtx ctx_;  // stable pointer view handed to the kernels
};

}  // namespace optpower
