// Bit-parallel levelized zero-delay logic simulator: 64 independent input
// vectors packed into one uint64_t lane word per net, every gate evaluated
// once per topological level with plain bitwise word operations.
//
// This is the wide twin of EventSimulator's (truly levelized) kZero mode:
// lane k of a BitSimulator is bit-identical - every net value after every
// cycle, and the per-lane transition/glitch statistics - to a scalar kZero
// EventSimulator driven with lane k's stimulus (tests/sim/bitsim_test.cpp
// asserts this for every lane of every word).  One word-level pass evaluates
// what the scalar path needs 64 full simulations for, which is what makes
// the Monte-Carlo activity testbenches ~64x wider per settle; the
// ActivityEngine seam in sim/activity.h packs testbench streams into lanes
// and pools the per-lane counters into the usual ActivityMeasurement.
//
// Semantics (shared with EventSimulator kZero):
//  * Two-valued logic; every net starts at 0 in all lanes, DFFs reset to 0.
//  * settle() = ONE topological evaluation: each cell sees its inputs' final
//    values, so each net changes at most once per settle - no delta-cycle
//    hazards, which is exactly the estimator bdd/symbolic.h exact_activity()
//    computes in closed form.
//  * step_cycle() = pre-edge settle, DFF sample + Q update, post-edge
//    settle, then per-lane glitch accounting identical to the scalar
//    formula (cycle transitions beyond the per-net start-vs-end minimum).
//
// The active-lane mask freezes STATISTICS per lane (values keep evolving):
// a testbench whose streams consume different vector counts masks a lane
// out once its stream is exhausted, leaving that lane's counters exactly
// where the equivalent scalar run stopped.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace optpower {

/// 64-lane word-level zero-delay simulator over a verified Netlist.  One
/// instance owns all mutable state and only reads the shared netlist, so
/// independent instances may run on different threads (warm the netlist's
/// fanout cache first if any other simulator shares the netlist).
class BitSimulator {
 public:
  /// Lanes per word: one uint64_t bit per independent simulation.
  static constexpr int kLanes = 64;

  /// Build a simulator over `netlist` (verify()-checked here).
  explicit BitSimulator(const Netlist& netlist);

  /// The netlist this simulator runs.
  [[nodiscard]] const Netlist& netlist() const noexcept { return netlist_; }

  /// Set a primary input's 64-lane word for the upcoming cycle (bit l =
  /// lane l's value, stable for the whole cycle).
  void set_input_word(NetId net, std::uint64_t word);
  /// Set all primary inputs from one word per input, declaration order.
  void set_inputs(const std::vector<std::uint64_t>& words);

  /// Lanes whose statistics accumulate (default: all 64).  Masked-out lanes
  /// keep simulating but their transition/glitch/cycle counters freeze -
  /// the testbench hook for streams of unequal length.
  void set_active_mask(std::uint64_t mask) noexcept { active_mask_ = mask; }
  [[nodiscard]] std::uint64_t active_mask() const noexcept { return active_mask_; }

  /// Run one clock cycle for all lanes: settle, clock all DFFs, settle.
  void step_cycle();

  /// Current 64-lane word of a net (post-settling).
  [[nodiscard]] std::uint64_t word(NetId net) const { return words_[net]; }
  /// Current value of a net in one lane.
  [[nodiscard]] bool value(NetId net, int lane) const {
    return ((words_[net] >> lane) & 1u) != 0;
  }
  /// Primary outputs of one lane packed LSB-first (EventSimulator::
  /// outputs_word() of that lane's scalar twin).
  [[nodiscard]] std::uint64_t outputs_word(int lane) const;

  /// Per-lane counters since construction or the last reset_stats();
  /// lane k matches the scalar kZero SimStats of lane k's stimulus.
  [[nodiscard]] std::uint64_t cycles(int lane) const {
    return cycles_[static_cast<std::size_t>(lane)];
  }
  [[nodiscard]] std::uint64_t transitions(int lane) const {
    return transitions_[static_cast<std::size_t>(lane)];
  }
  [[nodiscard]] std::uint64_t glitches(int lane) const {
    return glitches_[static_cast<std::size_t>(lane)];
  }

  /// Zero all per-lane counters; simulation state (and the mask) is kept.
  void reset_stats();

  /// Full state reset: all nets to 0 in every lane (constants
  /// re-propagated), stats and mask kept - mirrors EventSimulator.
  void reset_state();

 private:
  void settle();

  const Netlist& netlist_;
  std::vector<CellId> topo_;
  std::vector<std::uint64_t> words_;     // per net: 64 lanes
  std::vector<std::uint64_t> dff_next_;  // sampled D word per cell (sequential only)
  std::uint64_t active_mask_ = ~std::uint64_t{0};

  /// Carry-save vertical counter: 64 per-lane tallies kept bit-sliced
  /// (plane p holds bit p of every lane's count), so adding one 0/1 event
  /// word for all 64 lanes is an amortized ~2 word ops ripple instead of a
  /// per-set-bit scalar increment.  Flushed into the scalar per-lane
  /// counters once per cycle.
  struct LaneAccumulator {
    static constexpr std::size_t kPlanes = 26;  // 2^26 events/lane/cycle headroom
    std::array<std::uint64_t, kPlanes> planes{};
    std::size_t used = 0;  // highest touched plane + 1 (bounds clear/read)

    void add(std::uint64_t bits) noexcept {
      std::uint64_t carry = bits;
      for (std::size_t p = 0; carry != 0; ++p) {
        const std::uint64_t t = planes[p];
        planes[p] = t ^ carry;
        carry = t & carry;
        if (p >= used) used = p + 1;
      }
    }
    [[nodiscard]] std::uint64_t lane(int l) const noexcept {
      std::uint64_t v = 0;
      for (std::size_t p = 0; p < used; ++p) v |= ((planes[p] >> l) & 1u) << p;
      return v;
    }
    void clear() noexcept {
      for (std::size_t p = 0; p < used; ++p) planes[p] = 0;
      used = 0;
    }
  };

  std::array<std::uint64_t, kLanes> transitions_{};
  std::array<std::uint64_t, kLanes> glitches_{};
  std::array<std::uint64_t, kLanes> cycles_{};
  LaneAccumulator trans_acc_;                 // per-cycle transition events
  LaneAccumulator func_acc_;                  // per-cycle functional toggles
  std::vector<std::uint64_t> start_scratch_;  // per-cycle start words
};

}  // namespace optpower
