#include "power/surface.h"

#include "util/error.h"

namespace optpower {

std::vector<ConstraintSample> constraint_curve(const PowerModel& model, double frequency,
                                               double vdd_lo, double vdd_hi, int samples,
                                               double vth_floor) {
  require(vdd_lo > 0.0 && vdd_lo < vdd_hi, "constraint_curve: bad vdd range");
  require(samples >= 2, "constraint_curve: need >= 2 samples");
  std::vector<ConstraintSample> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double vdd = vdd_lo + (vdd_hi - vdd_lo) * static_cast<double>(i) / (samples - 1);
    const double vth = model.vth_on_constraint(vdd, frequency);
    if (vth < vth_floor || vth >= vdd) continue;
    ConstraintSample s;
    s.vdd = vdd;
    s.vth = vth;
    s.pdyn = model.dynamic_power(vdd, frequency);
    s.pstat = model.static_power(vdd, vth);
    s.ptot = s.pdyn + s.pstat;
    out.push_back(s);
  }
  return out;
}

std::vector<ActivityCurve> figure1_curves(const PowerModel& base, double frequency,
                                          const std::vector<double>& activity_scales,
                                          double vdd_lo, double vdd_hi, int samples) {
  require(!activity_scales.empty(), "figure1_curves: no activity scales given");
  std::vector<ActivityCurve> out;
  out.reserve(activity_scales.size());
  for (const double scale : activity_scales) {
    require(scale > 0.0, "figure1_curves: activity scales must be positive");
    ArchitectureParams arch = base.arch();
    arch.activity *= scale;
    const PowerModel model(base.tech(), arch);
    ActivityCurve curve;
    curve.activity = arch.activity;
    curve.samples = constraint_curve(model, frequency, vdd_lo, vdd_hi, samples);
    const OptimumResult opt = find_optimum(model, frequency);
    curve.optimum = opt.point;
    curve.dyn_stat_ratio = opt.point.dyn_stat_ratio();
    out.push_back(std::move(curve));
  }
  return out;
}

std::vector<SurfaceCell> power_surface(const PowerModel& model, double frequency, double vdd_lo,
                                       double vdd_hi, std::size_t nx, double vth_lo,
                                       double vth_hi, std::size_t ny) {
  require(nx >= 2 && ny >= 2, "power_surface: need at least a 2x2 grid");
  std::vector<SurfaceCell> cells;
  cells.reserve(nx * ny);
  for (std::size_t i = 0; i < nx; ++i) {
    const double vdd = vdd_lo + (vdd_hi - vdd_lo) * static_cast<double>(i) / static_cast<double>(nx - 1);
    for (std::size_t j = 0; j < ny; ++j) {
      const double vth = vth_lo + (vth_hi - vth_lo) * static_cast<double>(j) / static_cast<double>(ny - 1);
      SurfaceCell c;
      c.vdd = vdd;
      c.vth = vth;
      c.ptot = model.total_power(vdd, vth, frequency);
      c.feasible = vth < vdd && model.meets_timing(vdd, vth, frequency);
      cells.push_back(c);
    }
  }
  return cells;
}

}  // namespace optpower
