#include "power/surface.h"

#include "util/error.h"

namespace optpower {

std::vector<ConstraintSample> constraint_curve(const PowerModel& model, double frequency,
                                               double vdd_lo, double vdd_hi, int samples,
                                               double vth_floor) {
  return constraint_curve(model, frequency, vdd_lo, vdd_hi, samples, vth_floor, ExecContext());
}

std::vector<ConstraintSample> constraint_curve(const PowerModel& model, double frequency,
                                               double vdd_lo, double vdd_hi, int samples,
                                               double vth_floor, const ExecContext& ctx) {
  require(vdd_lo > 0.0 && vdd_lo < vdd_hi, "constraint_curve: bad vdd range");
  require(samples >= 2, "constraint_curve: need >= 2 samples");
  const std::size_t n = static_cast<std::size_t>(samples);
  // Evaluate every sample into its own slot, then compact the feasible ones
  // in index order - the same samples survive, in the same order, as the
  // serial skip-as-you-go loop.
  std::vector<ConstraintSample> slots(n);
  std::vector<char> keep(n, 0);
  parallel_for(ctx, n, [&](std::size_t i) {
    const double vdd =
        vdd_lo + (vdd_hi - vdd_lo) * static_cast<double>(i) / static_cast<double>(samples - 1);
    const double vth = model.vth_on_constraint(vdd, frequency);
    if (vth < vth_floor || vth >= vdd) return;
    ConstraintSample& s = slots[i];
    s.vdd = vdd;
    s.vth = vth;
    s.pdyn = model.dynamic_power(vdd, frequency);
    s.pstat = model.static_power(vdd, vth);
    s.ptot = s.pdyn + s.pstat;
    keep[i] = 1;
  });
  std::vector<ConstraintSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(slots[i]);
  }
  return out;
}

std::vector<ActivityCurve> figure1_curves(const PowerModel& base, double frequency,
                                          const std::vector<double>& activity_scales,
                                          double vdd_lo, double vdd_hi, int samples) {
  return figure1_curves(base, frequency, activity_scales, vdd_lo, vdd_hi, samples, ExecContext());
}

std::vector<ActivityCurve> figure1_curves(const PowerModel& base, double frequency,
                                          const std::vector<double>& activity_scales,
                                          double vdd_lo, double vdd_hi, int samples,
                                          const ExecContext& ctx) {
  require(!activity_scales.empty(), "figure1_curves: no activity scales given");
  for (const double scale : activity_scales) {
    require(scale > 0.0, "figure1_curves: activity scales must be positive");
  }
  return parallel_map<ActivityCurve>(ctx, activity_scales.size(), [&](std::size_t k) {
    ArchitectureParams arch = base.arch();
    arch.activity *= activity_scales[k];
    const PowerModel model(base.tech(), arch);
    ActivityCurve curve;
    curve.activity = arch.activity;
    curve.samples = constraint_curve(model, frequency, vdd_lo, vdd_hi, samples);
    const OptimumResult opt = find_optimum(model, frequency);
    curve.optimum = opt.point;
    curve.dyn_stat_ratio = opt.point.dyn_stat_ratio();
    return curve;
  });
}

std::vector<SurfaceCell> power_surface(const PowerModel& model, double frequency, double vdd_lo,
                                       double vdd_hi, std::size_t nx, double vth_lo,
                                       double vth_hi, std::size_t ny) {
  return power_surface(model, frequency, vdd_lo, vdd_hi, nx, vth_lo, vth_hi, ny, ExecContext());
}

std::vector<SurfaceCell> power_surface(const PowerModel& model, double frequency, double vdd_lo,
                                       double vdd_hi, std::size_t nx, double vth_lo,
                                       double vth_hi, std::size_t ny, const ExecContext& ctx) {
  require(nx >= 2 && ny >= 2, "power_surface: need at least a 2x2 grid");
  std::vector<SurfaceCell> cells(nx * ny);
  parallel_for(ctx, nx, [&](std::size_t i) {
    const double vdd =
        vdd_lo + (vdd_hi - vdd_lo) * static_cast<double>(i) / static_cast<double>(nx - 1);
    // Whole vth row at once through the SIMD power kernel; feasibility stays
    // a scalar per-cell check (timing is not on the row kernel's fast path).
    std::vector<double> vths(ny);
    std::vector<double> ptots(ny);
    for (std::size_t j = 0; j < ny; ++j) {
      vths[j] = vth_lo + (vth_hi - vth_lo) * static_cast<double>(j) / static_cast<double>(ny - 1);
    }
    model.total_power_row(vdd, frequency, vths.data(), ptots.data(), ny);
    for (std::size_t j = 0; j < ny; ++j) {
      SurfaceCell& c = cells[i * ny + j];
      c.vdd = vdd;
      c.vth = vths[j];
      c.ptot = ptots[j];
      c.feasible = vths[j] < vdd && model.meets_timing(vdd, vths[j], frequency);
    }
  });
  return cells;
}

}  // namespace optpower
