#include "power/savings.h"

#include <algorithm>

#include "util/error.h"

namespace optpower {

SavingsReport analyze_savings(const PowerModel& model, double frequency) {
  require(frequency > 0.0, "analyze_savings: frequency must be positive");
  const Technology& tech = model.tech();

  SavingsReport report;
  report.frequency = frequency;

  const double vth_nom = model.effective_from_vth0(tech.vth0_nom, tech.vdd_nom);
  report.nominal = model.operating_point(tech.vdd_nom, vth_nom, frequency);
  report.nominal_meets_timing = model.meets_timing(tech.vdd_nom, vth_nom, frequency);

  // Vdd-only scaling: lower the supply until the timing constraint is tight,
  // keeping the nominal threshold.  If even vdd_nom misses timing, the best
  // DVS can do is stay at nominal.
  double vdd_scaled = tech.vdd_nom;
  if (report.nominal_meets_timing) {
    const double vth0_const = tech.vth0_nom;
    // vdd_on_constraint works on the *effective* threshold; with DIBL the
    // effective threshold shifts as vdd moves, so iterate a couple of times.
    double v = tech.vdd_nom;
    for (int i = 0; i < 8; ++i) {
      const double vth_eff = model.effective_from_vth0(vth0_const, v);
      v = model.vdd_on_constraint(vth_eff, frequency);
    }
    vdd_scaled = std::min(v, tech.vdd_nom);
  }
  report.vdd_only = model.operating_point(
      vdd_scaled, model.effective_from_vth0(tech.vth0_nom, vdd_scaled), frequency);

  try {
    report.optimal = find_optimum(model, frequency).point;
  } catch (const NumericalError&) {
    // Frequency unreachable at any allowed (Vdd, Vth): report honestly.
    report.optimal = report.vdd_only;
    report.optimal_found = false;
  }
  return report;
}

}  // namespace optpower
