// Numerical search for the optimal working point (Section 3 of the paper):
// the (Vdd, Vth) pair that minimizes total power while exactly meeting the
// frequency constraint.
//
// Two independent searches are provided:
//  * find_optimum():      1-D minimization of Ptot(Vdd) restricted to the
//                         timing-constraint curve Vth(Vdd) (Eq. 5) - this is
//                         exact because the optimum always lies on the curve
//                         (a positive slack would allow lowering Vdd; the
//                         paper makes the same argument).
//  * find_optimum_grid(): brute-force 2-D scan over all "reasonable Vdd/Vth
//                         couples" exactly like the paper's numerical
//                         reference.  Slower; used to cross-validate.
#pragma once

#include <vector>

#include "exec/exec.h"
#include "power/model.h"

namespace optpower {

/// Search-space configuration for the optimum searches.
struct OptimumOptions {
  double vdd_min = 0.08;   ///< [V]
  double vdd_max = 1.40;   ///< [V]
  double vth_min = -0.30;  ///< effective-threshold floor [V]
  double vth_max = 0.60;   ///< [V] (grid search only)
  int scan_samples = 600;  ///< coarse samples before Brent refinement
  std::size_t grid_nx = 281;  ///< grid-search resolution (Vdd)
  std::size_t grid_ny = 361;  ///< grid-search resolution (Vth)
};

/// Result of an optimum search.
struct OptimumResult {
  OperatingPoint point;
  double frequency = 0.0;
  bool on_constraint = true;  ///< optimum sits on the timing-equality curve
  bool converged = false;
};

/// 1-D constrained search (the production method).
/// Throws NumericalError when no feasible supply exists in the options range.
[[nodiscard]] OptimumResult find_optimum(const PowerModel& model, double frequency,
                                         const OptimumOptions& options = {});

/// Parallel overload: the coarse constraint-curve scan fans out over `ctx`;
/// bit-identical to the serial search.
[[nodiscard]] OptimumResult find_optimum(const PowerModel& model, double frequency,
                                         const OptimumOptions& options, const ExecContext& ctx);

/// 2-D exhaustive grid search (the paper's reference method).
/// Infeasible cells (timing not met, or vth outside range) are skipped.
[[nodiscard]] OptimumResult find_optimum_grid(const PowerModel& model, double frequency,
                                              const OptimumOptions& options = {});

/// Parallel overload: Vdd rows of the grid fan out over `ctx`; the winning
/// cell (ties included) is identical to the serial scan.
[[nodiscard]] OptimumResult find_optimum_grid(const PowerModel& model, double frequency,
                                              const OptimumOptions& options,
                                              const ExecContext& ctx);

/// One entry of a per-configuration sweep: the optimum at `frequency`, or
/// feasible == false when no allowed (Vdd, Vth) meets timing there (the
/// NumericalError the scalar search would throw is captured per point, so
/// one infeasible configuration doesn't abort the whole sweep).
struct OptimumSweepPoint {
  double frequency = 0.0;
  bool feasible = false;
  OptimumResult result;
};

/// Sweep find_optimum over many frequency targets (the per-configuration
/// loop behind the architecture-exploration and frequency-sweep workflows).
/// The search is batched (numeric/minimize.h scan_then_refine_batch): every
/// configuration's constraint-curve scan runs in one flattened parallel
/// epoch over `ctx`, then one Brent-refinement round fans out per curve -
/// balanced even when sweeping fewer configurations than workers.  Slot k of
/// the result always belongs to frequencies[k] and is bit-identical to the
/// serial find_optimum there.
[[nodiscard]] std::vector<OptimumSweepPoint> optimum_sweep(const PowerModel& model,
                                                           const std::vector<double>& frequencies,
                                                           const OptimumOptions& options = {},
                                                           const ExecContext& ctx = {});

}  // namespace optpower
