// Power curves and surfaces: the data behind the paper's Figure 1
// ("Total power consumption ... for different circuit activities; the
// optimal working points are marked, and the dynamic over static power
// ratio at this point is given").
//
// Every sweep here is embarrassingly parallel (independent samples/cells),
// so each entry point has an ExecContext overload that fans the loop out
// over a thread pool; results are bit-identical to the serial path for any
// thread count (each index writes only its own slot, no reductions).  The
// short overloads stay serial so existing call sites are unchanged.
#pragma once

#include <vector>

#include "exec/exec.h"
#include "power/model.h"
#include "power/optimum.h"

namespace optpower {

/// One sample of Ptot along the timing-constraint curve.
struct ConstraintSample {
  double vdd = 0.0;
  double vth = 0.0;   ///< effective threshold from Eq. 5
  double pdyn = 0.0;
  double pstat = 0.0;
  double ptot = 0.0;
};

/// Sample Ptot(Vdd) restricted to the constraint curve on [vdd_lo, vdd_hi].
/// Points whose constrained vth collapses below `vth_floor` are skipped.
[[nodiscard]] std::vector<ConstraintSample> constraint_curve(const PowerModel& model,
                                                             double frequency, double vdd_lo,
                                                             double vdd_hi, int samples = 200,
                                                             double vth_floor = -0.3);

/// Parallel overload: samples are evaluated across `ctx`'s workers.
[[nodiscard]] std::vector<ConstraintSample> constraint_curve(const PowerModel& model,
                                                             double frequency, double vdd_lo,
                                                             double vdd_hi, int samples,
                                                             double vth_floor,
                                                             const ExecContext& ctx);

/// One activity's curve plus its optimum (a full Figure-1 series).
struct ActivityCurve {
  double activity = 0.0;
  std::vector<ConstraintSample> samples;
  OperatingPoint optimum;
  double dyn_stat_ratio = 0.0;
};

/// Regenerate Figure 1: curves for each activity scale factor applied to the
/// model's base architecture (the paper varies "a" on a 16-bit RCA).
[[nodiscard]] std::vector<ActivityCurve> figure1_curves(const PowerModel& base, double frequency,
                                                        const std::vector<double>& activity_scales,
                                                        double vdd_lo = 0.15, double vdd_hi = 1.2,
                                                        int samples = 240);

/// Parallel overload: one task per activity scale (curve + optimum search).
[[nodiscard]] std::vector<ActivityCurve> figure1_curves(const PowerModel& base, double frequency,
                                                        const std::vector<double>& activity_scales,
                                                        double vdd_lo, double vdd_hi, int samples,
                                                        const ExecContext& ctx);

/// Dense 2-D map of Ptot(Vdd, Vth) with a feasibility flag per cell; used by
/// the grid cross-check visualizations and tests.
struct SurfaceCell {
  double vdd = 0.0;
  double vth = 0.0;
  double ptot = 0.0;
  bool feasible = false;  ///< meets the frequency at (vdd, vth)
};
[[nodiscard]] std::vector<SurfaceCell> power_surface(const PowerModel& model, double frequency,
                                                     double vdd_lo, double vdd_hi, std::size_t nx,
                                                     double vth_lo, double vth_hi, std::size_t ny);

/// Parallel overload: Vdd rows are distributed across `ctx`'s workers; the
/// returned cells are in the same row-major order and bit-identical to the
/// serial result.
[[nodiscard]] std::vector<SurfaceCell> power_surface(const PowerModel& model, double frequency,
                                                     double vdd_lo, double vdd_hi, std::size_t nx,
                                                     double vth_lo, double vth_hi, std::size_t ny,
                                                     const ExecContext& ctx);

}  // namespace optpower
