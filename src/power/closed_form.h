// The closed-form optimal working point of Section 3 (Eq. 9-13).
//
// Derivation carried by the implementation (verified step-by-step in
// tests/power/closed_form_test.cpp):
//   Linearize Vdd^{1/alpha} ~= A*Vdd + B (Eq. 7)
//     => Vth(Vdd) ~= (1 - chi*A)*Vdd - chi*B on the constraint curve (Eq. 8)
//   d Ptot / d Vdd = 0 with Vdd >> n*Ut/(1 - chi*A)
//     => Io*exp(-Vth*/nUt) = 2*a*C*f*nUt/(1 - chi*A)                  (Eq. 9)
//     => Vdd* = [nUt*ln(Io(1-chi A)/(2 a C f nUt)) + chi*B]/(1-chi A) (Eq. 10)
//   Substituting back:
//     Ptot* = N a C f Vdd*(Vdd* + 2 nUt/(1-chi A))                    (Eq. 11)
//           ~= N a C f (Vdd* + nUt/(1-chi A))^2                       (Eq. 12)
//           ~= N a C f/(1-chi A)^2 *
//              [nUt(ln(Io(1-chi A)/(2 a C f nUt)) + 1) + chi*B]^2     (Eq. 13)
//
// Validity: requires 1 - chi*A > 0 (fast-enough architecture) and a positive
// logarithm argument; `valid` is false otherwise and the power fields are
// NaN.  eta (DIBL) never appears - the paper's closing observation about
// Eq. 13 - which tests/power/closed_form_test.cpp checks by sweeping eta.
#pragma once

#include "power/model.h"
#include "tech/linearization.h"

namespace optpower {

/// Closed-form estimates for one (model, frequency, linearization) triple.
struct ClosedFormResult {
  double chi = 0.0;               ///< Eq. 6
  double one_minus_chi_a = 0.0;   ///< the paper's (1 - chi*A) factor
  double vth_opt = 0.0;           ///< Eq. 9 [V] (effective threshold)
  double vdd_opt = 0.0;           ///< Eq. 10 [V]
  double ptot_eq11 = 0.0;         ///< Eq. 11 [W] (uses Eq. 10's Vdd)
  double ptot_eq12 = 0.0;         ///< Eq. 12 [W]
  double ptot_eq13 = 0.0;         ///< Eq. 13 [W] (the headline formula)
  bool valid = false;
};

/// Evaluate Eq. 9-13.  The linearization must have been fitted for the
/// model's alpha (checked; throws InvalidArgument on mismatch > 1e-9).
[[nodiscard]] ClosedFormResult closed_form_optimum(const PowerModel& model, double frequency,
                                                   const Linearization& lin);

/// Convenience overload: fits the linearization on [0.3, 1.0] V with least
/// squares (the paper's published fitting range) before evaluating.
[[nodiscard]] ClosedFormResult closed_form_optimum(const PowerModel& model, double frequency);

/// Evaluate Eq. 13 only, from raw scalars (used by sensitivity sweeps that
/// bypass PowerModel).  Returns NaN when invalid.
[[nodiscard]] double eq13_total_power(double n_cells, double activity, double cell_cap,
                                      double frequency, double io, double n_ut, double chi,
                                      double lin_a, double lin_b);

}  // namespace optpower
