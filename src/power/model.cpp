#include "power/model.h"

#include <cmath>

#include "numeric/roots.h"
#include "simd/simd.h"
#include "util/constants.h"
#include "util/error.h"

namespace optpower {

PowerModel::PowerModel(Technology tech, ArchitectureParams arch, OnCurrentModel current_model)
    : tech_(std::move(tech)), arch_(std::move(arch)), current_model_(current_model) {
  validate(tech_);
  validate(arch_);
}

double PowerModel::dynamic_power(double vdd, double frequency) const noexcept {
  return arch_.n_cells * arch_.activity * arch_.cell_cap * vdd * vdd * frequency;
}

double PowerModel::static_power(double vdd, double vth) const noexcept {
  return arch_.n_cells * vdd * tech_.io * std::exp(-vth / tech_.n_ut());
}

double PowerModel::total_power(double vdd, double vth, double frequency) const noexcept {
  return dynamic_power(vdd, frequency) + static_power(vdd, vth);
}

void PowerModel::total_power_row(double vdd, double frequency, const double* vth, double* out,
                                 std::size_t n) const {
  simd::PowRowArgs args;
  args.vth = vth;
  args.out = out;
  args.n = n;
  args.pdyn = dynamic_power(vdd, frequency);
  args.stat_coeff = arch_.n_cells * vdd * tech_.io;
  args.neg_inv_nut = -1.0 / tech_.n_ut();
  simd::kernels(simd::default_backend()).total_power_row(args);
}

OperatingPoint PowerModel::operating_point(double vdd, double vth, double frequency) const {
  OperatingPoint p;
  p.vdd = vdd;
  p.vth = vth;
  p.vth0 = vth0_from_effective(vth, vdd);
  p.pdyn = dynamic_power(vdd, frequency);
  p.pstat = static_power(vdd, vth);
  p.ptot = p.pdyn + p.pstat;
  return p;
}

double PowerModel::on_current(double vdd, double vth) const noexcept {
  const double vgt = vdd - vth;
  const double nut = tech_.n_ut();
  const double vswitch = tech_.alpha * nut;
  if (current_model_ == OnCurrentModel::kC1Blended && vgt <= vswitch) {
    // C1 sub-threshold continuation (value Io*e^alpha, slope matched at vswitch).
    return tech_.io * std::exp(vgt / nut);
  }
  if (vgt <= 0.0) return 0.0;  // alpha-power law: no drive below threshold
  return tech_.io * std::pow(kEuler * vgt / vswitch, tech_.alpha);
}

double PowerModel::gate_delay(double vdd, double vth) const noexcept {
  return tech_.zeta * vdd / on_current(vdd, vth);
}

double PowerModel::critical_path_delay(double vdd, double vth) const noexcept {
  return arch_.logic_depth * gate_delay(vdd, vth);
}

double PowerModel::max_frequency(double vdd, double vth) const noexcept {
  const double t = critical_path_delay(vdd, vth);
  return t > 0.0 ? 1.0 / t : 0.0;
}

bool PowerModel::meets_timing(double vdd, double vth, double frequency) const noexcept {
  return max_frequency(vdd, vth) >= frequency;
}

double PowerModel::chi(double frequency) const noexcept {
  const double nut = tech_.n_ut();
  return (tech_.alpha * nut / kEuler) *
         std::pow(tech_.zeta * arch_.logic_depth * frequency / tech_.io, 1.0 / tech_.alpha);
}

double PowerModel::vth_on_constraint(double vdd, double frequency) const noexcept {
  // Required on-current: LD * zeta * vdd / Ion = 1/f  =>  Ion = zeta*LD*f*vdd.
  const double ion_required = tech_.zeta * arch_.logic_depth * frequency * vdd;
  const double nut = tech_.n_ut();
  const double vswitch = tech_.alpha * nut;
  const double ratio = ion_required / tech_.io;
  double vgt;
  if (current_model_ == OnCurrentModel::kC1Blended && ratio <= std::exp(tech_.alpha)) {
    // Sub-threshold branch of the C1 model: Io*exp(vgt/nut) = ion_required.
    vgt = nut * std::log(ratio);
  } else {
    // Alpha branch: Io*(e*vgt/vswitch)^alpha = ion_required.  Equivalent to
    // vgt = chi(f) * vdd^{1/alpha}, i.e. the paper's Eq. 5.
    vgt = vswitch / kEuler * std::pow(ratio, 1.0 / tech_.alpha);
  }
  return vdd - vgt;
}

double PowerModel::vdd_on_constraint(double vth, double frequency) const {
  const auto residual = [&](double vdd) {
    return max_frequency(vdd, vth) - frequency;
  };
  // fmax(vdd) is increasing in vdd only where d tgate/d vdd < 0, i.e. for
  // vdd > -vth/(alpha - 1) when vth < 0 (for vth >= 0 the whole positive
  // overdrive region is monotone).  Restrict the search accordingly so the
  // bracketing below is sound.
  double lo = std::max(1e-3, vth + 1e-4);
  if (vth < 0.0 && tech_.alpha > 1.0) {
    lo = std::max(lo, -vth / (tech_.alpha - 1.0) + 1e-6);
  }
  const double hi = 10.0;
  if (residual(hi) < 0.0) {
    throw NumericalError("vdd_on_constraint: frequency unreachable at vdd = 10 V");
  }
  if (residual(lo) > 0.0) return lo;  // already fast enough at the minimum supply
  const RootResult root = brent_root(residual, lo, hi, {.x_tol = 1e-12});
  if (!root.converged) throw NumericalError("vdd_on_constraint: root search failed");
  return root.x;
}

double PowerModel::vth0_from_effective(double vth, double vdd) const noexcept {
  return vth + tech_.eta * vdd;
}

double PowerModel::effective_from_vth0(double vth0, double vdd) const noexcept {
  return vth0 - tech_.eta * vdd;
}

}  // namespace optpower
