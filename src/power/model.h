// The total-power model of Section 2 of the paper (Eq. 1-6): dynamic +
// sub-threshold static power of an (architecture, technology) pair, the
// alpha-power-law delay, and the timing-constraint curve that ties Vth to
// Vdd at a given operating frequency.
//
// Voltage conventions: all public methods take the *effective* threshold
// voltage (DIBL already applied, the paper's Eq. 3).  Helpers convert
// between the effective Vth and the zero-bias Vth0.
#pragma once

#include <cstddef>

#include "arch/architecture.h"
#include "tech/technology.h"

namespace optpower {

/// A fully specified working point with its power breakdown.
struct OperatingPoint {
  double vdd = 0.0;        ///< supply [V]
  double vth = 0.0;        ///< effective threshold [V]
  double vth0 = 0.0;       ///< zero-bias threshold (vth + eta*vdd) [V]
  double pdyn = 0.0;       ///< dynamic power [W]
  double pstat = 0.0;      ///< static power [W]
  double ptot = 0.0;       ///< total power [W]

  /// Pdyn / Pstat, the ratio annotated on the paper's Figure 1.
  [[nodiscard]] double dyn_stat_ratio() const noexcept {
    return pstat > 0.0 ? pdyn / pstat : 0.0;
  }
};

/// On-current model selection for Eq. 2.
enum class OnCurrentModel {
  /// The paper's pure alpha-power law Io*(e*vgt/(alpha*n*Ut))^alpha, defined
  /// for vgt > 0 only (zero current, i.e. infinite delay, below).  This is
  /// the model behind every published number; the default.
  kAlphaPower,
  /// C1 extension that follows the sub-threshold exponential below
  /// vgt = alpha*n*Ut (value- and slope-matched).  Physically better for
  /// near/sub-threshold supplies; bench_ablation_approx quantifies the
  /// difference against the paper's model.
  kC1Blended,
};

/// Eq. 1-6 evaluated for one (technology, architecture) pair.
class PowerModel {
 public:
  PowerModel(Technology tech, ArchitectureParams arch,
             OnCurrentModel current_model = OnCurrentModel::kAlphaPower);

  [[nodiscard]] OnCurrentModel current_model() const noexcept { return current_model_; }

  [[nodiscard]] const Technology& tech() const noexcept { return tech_; }
  [[nodiscard]] const ArchitectureParams& arch() const noexcept { return arch_; }

  // --- Eq. 1: power ------------------------------------------------------

  /// Pdyn = N*a*C*Vdd^2*f  [W].
  [[nodiscard]] double dynamic_power(double vdd, double frequency) const noexcept;

  /// Pstat = N*Vdd*Io*exp(-Vth/(n*Ut))  [W]  (vth = effective threshold).
  [[nodiscard]] double static_power(double vdd, double vth) const noexcept;

  /// Ptot = Pdyn + Pstat  [W].
  [[nodiscard]] double total_power(double vdd, double vth, double frequency) const noexcept;

  /// Vectorized row: out[i] = total_power(vdd, vth[i], frequency) for a whole
  /// vth sweep at a fixed supply, dispatched to the simd/ backend's
  /// polynomial-exp kernel.  Bit-identical on every backend (the kernels
  /// share one mul/add-only exp), and within ~1e-13 relative of the scalar
  /// std::exp path - the surface/report sweeps absorb that.
  void total_power_row(double vdd, double frequency, const double* vth, double* out,
                       std::size_t n) const;

  /// Assemble a full OperatingPoint record at (vdd, vth, f).
  [[nodiscard]] OperatingPoint operating_point(double vdd, double vth, double frequency) const;

  // --- Eq. 2-4: device & delay --------------------------------------------

  /// Eq. 2: the on-current per average cell,
  /// Io*(e*(vdd-vth)/(alpha*n*Ut))^alpha (branching per current_model()).
  [[nodiscard]] double on_current(double vdd, double vth) const noexcept;

  /// Eq. 4: tgate = zeta * vdd / Ion  [s].
  [[nodiscard]] double gate_delay(double vdd, double vth) const noexcept;

  /// Critical-path delay LD * tgate  [s].
  [[nodiscard]] double critical_path_delay(double vdd, double vth) const noexcept;

  /// Largest operating frequency at (vdd, vth): 1 / (LD * tgate)  [Hz].
  [[nodiscard]] double max_frequency(double vdd, double vth) const noexcept;

  /// True when the circuit meets `frequency` at (vdd, vth).
  [[nodiscard]] bool meets_timing(double vdd, double vth, double frequency) const noexcept;

  // --- Eq. 5/6: the timing-constraint curve --------------------------------

  /// Eq. 6: chi = (alpha*n*Ut/e) * (zeta*LD*f/Io)^(1/alpha).
  [[nodiscard]] double chi(double frequency) const noexcept;

  /// Eq. 5 solved exactly for the effective threshold: the unique vth such
  /// that the critical path exactly matches 1/f at supply `vdd`.  For the
  /// paper's alpha-power model this is exactly vth = vdd - chi*vdd^{1/alpha};
  /// the C1 variant additionally covers the sub-threshold branch.
  [[nodiscard]] double vth_on_constraint(double vdd, double frequency) const noexcept;

  /// Inverse of the constraint in the other direction: the supply that makes
  /// the critical path match 1/f at the given effective vth.  Solved with
  /// Brent; throws NumericalError when no supply in (1 mV, 10 V) works.
  [[nodiscard]] double vdd_on_constraint(double vth, double frequency) const;

  // --- DIBL (Eq. 3) ---------------------------------------------------------

  /// Zero-bias threshold for an effective vth at supply vdd: vth + eta*vdd.
  [[nodiscard]] double vth0_from_effective(double vth, double vdd) const noexcept;
  /// Effective threshold from the zero-bias one: vth0 - eta*vdd.
  [[nodiscard]] double effective_from_vth0(double vth0, double vdd) const noexcept;

 private:
  Technology tech_;
  ArchitectureParams arch_;
  OnCurrentModel current_model_;
};

}  // namespace optpower
