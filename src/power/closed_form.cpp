#include "power/closed_form.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace optpower {

double eq13_total_power(double n_cells, double activity, double cell_cap, double frequency,
                        double io, double n_ut, double chi, double lin_a, double lin_b) {
  const double one_minus = 1.0 - chi * lin_a;
  if (one_minus <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double acf = activity * cell_cap * frequency;
  const double log_arg = io * one_minus / (2.0 * acf * n_ut);
  if (log_arg <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double bracket = n_ut * (std::log(log_arg) + 1.0) + chi * lin_b;
  return n_cells * acf / (one_minus * one_minus) * bracket * bracket;
}

ClosedFormResult closed_form_optimum(const PowerModel& model, double frequency,
                                     const Linearization& lin) {
  require(frequency > 0.0, "closed_form_optimum: frequency must be positive");
  require(std::fabs(lin.alpha - model.tech().alpha) < 1e-9,
          "closed_form_optimum: linearization was fitted for a different alpha");

  const Technology& tech = model.tech();
  const ArchitectureParams& arch = model.arch();
  const double nut = tech.n_ut();
  const double chi = model.chi(frequency);
  const double one_minus = 1.0 - chi * lin.a;

  ClosedFormResult result;
  result.chi = chi;
  result.one_minus_chi_a = one_minus;
  result.vth_opt = std::numeric_limits<double>::quiet_NaN();
  result.vdd_opt = std::numeric_limits<double>::quiet_NaN();
  result.ptot_eq11 = std::numeric_limits<double>::quiet_NaN();
  result.ptot_eq12 = std::numeric_limits<double>::quiet_NaN();
  result.ptot_eq13 = std::numeric_limits<double>::quiet_NaN();

  if (one_minus <= 0.0) return result;  // architecture too slow for Eq. 13

  const double acf = arch.activity * arch.cell_cap * frequency;
  const double log_arg = tech.io * one_minus / (2.0 * acf * nut);
  if (log_arg <= 0.0) return result;

  // Eq. 9: the optimal leakage level fixes the effective threshold.
  result.vth_opt = nut * std::log(log_arg);
  // Eq. 10: map back through the linearized constraint.
  result.vdd_opt = (result.vth_opt + chi * lin.b) / one_minus;
  // Eq. 11/12: total power expressed via the optimal supply.
  const double vdd = result.vdd_opt;
  const double naf = arch.n_cells * acf;
  result.ptot_eq11 = naf * vdd * (vdd + 2.0 * nut / one_minus);
  const double shifted = vdd + nut / one_minus;
  result.ptot_eq12 = naf * shifted * shifted;
  // Eq. 13: fully closed form.
  result.ptot_eq13 = eq13_total_power(arch.n_cells, arch.activity, arch.cell_cap, frequency,
                                      tech.io, nut, chi, lin.a, lin.b);
  result.valid = std::isfinite(result.ptot_eq13) && result.ptot_eq13 > 0.0;
  return result;
}

ClosedFormResult closed_form_optimum(const PowerModel& model, double frequency) {
  const Linearization lin =
      linearize_vdd_root(model.tech().alpha, 0.3, 1.0, LinearizationMethod::kLeastSquares);
  return closed_form_optimum(model, frequency, lin);
}

}  // namespace optpower
