#include "power/optimum.h"

#include <cmath>
#include <limits>

#include "numeric/minimize.h"
#include "util/error.h"

namespace optpower {

OptimumResult find_optimum(const PowerModel& model, double frequency,
                           const OptimumOptions& options) {
  return find_optimum(model, frequency, options, ExecContext());
}

OptimumResult find_optimum(const PowerModel& model, double frequency,
                           const OptimumOptions& options, const ExecContext& ctx) {
  require(frequency > 0.0, "find_optimum: frequency must be positive");
  require(options.vdd_min > 0.0 && options.vdd_min < options.vdd_max,
          "find_optimum: bad vdd range");

  const auto objective = [&](double vdd) -> double {
    const double vth = model.vth_on_constraint(vdd, frequency);
    if (vth < options.vth_min || vth >= vdd) {
      return std::numeric_limits<double>::infinity();
    }
    return model.total_power(vdd, vth, frequency);
  };

  const MinimizeResult best = scan_then_refine(objective, options.vdd_min, options.vdd_max,
                                               options.scan_samples, MinimizeOptions{}, ctx);

  OptimumResult result;
  result.frequency = frequency;
  const double vth = model.vth_on_constraint(best.x, frequency);
  result.point = model.operating_point(best.x, vth, frequency);
  result.on_constraint = true;
  result.converged = best.converged || std::isfinite(best.f);
  return result;
}

OptimumResult find_optimum_grid(const PowerModel& model, double frequency,
                                const OptimumOptions& options) {
  return find_optimum_grid(model, frequency, options, ExecContext());
}

OptimumResult find_optimum_grid(const PowerModel& model, double frequency,
                                const OptimumOptions& options, const ExecContext& ctx) {
  require(frequency > 0.0, "find_optimum_grid: frequency must be positive");

  const auto objective = [&](double vdd, double vth) -> double {
    if (vth >= vdd) return std::numeric_limits<double>::infinity();
    if (!model.meets_timing(vdd, vth, frequency)) {
      return std::numeric_limits<double>::infinity();
    }
    return model.total_power(vdd, vth, frequency);
  };

  const GridMinimum grid =
      grid_minimize_2d(objective, options.vdd_min, options.vdd_max, options.grid_nx,
                       options.vth_min, options.vth_max, options.grid_ny, ctx);

  OptimumResult result;
  result.frequency = frequency;
  result.point = model.operating_point(grid.x, grid.y, frequency);
  // The constrained optimum lies on the timing-equality boundary; report how
  // close the best grid cell is to it.
  const double vth_exact = model.vth_on_constraint(grid.x, frequency);
  result.on_constraint = std::fabs(vth_exact - grid.y) <
                         2.0 * (options.vth_max - options.vth_min) /
                             static_cast<double>(options.grid_ny - 1);
  result.converged = true;
  return result;
}

std::vector<OptimumSweepPoint> optimum_sweep(const PowerModel& model,
                                             const std::vector<double>& frequencies,
                                             const OptimumOptions& options,
                                             const ExecContext& ctx) {
  return parallel_map<OptimumSweepPoint>(ctx, frequencies.size(), [&](std::size_t k) {
    OptimumSweepPoint point;
    point.frequency = frequencies[k];
    try {
      // Inner search stays serial: the sweep itself is the parallel axis.
      point.result = find_optimum(model, frequencies[k], options);
      point.feasible = true;
    } catch (const NumericalError&) {
      point.feasible = false;
    }
    return point;
  });
}

}  // namespace optpower
