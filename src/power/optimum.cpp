#include "power/optimum.h"

#include <cmath>
#include <limits>

#include "numeric/minimize.h"
#include "util/error.h"

namespace optpower {

OptimumResult find_optimum(const PowerModel& model, double frequency,
                           const OptimumOptions& options) {
  return find_optimum(model, frequency, options, ExecContext());
}

namespace {

/// Ptot(Vdd) restricted to the timing-constraint curve - the 1-D objective
/// shared by find_optimum and the batched optimum_sweep.
std::function<double(double)> constraint_objective(const PowerModel& model, double frequency,
                                                   const OptimumOptions& options) {
  return [&model, frequency, options](double vdd) -> double {
    const double vth = model.vth_on_constraint(vdd, frequency);
    if (vth < options.vth_min || vth >= vdd) {
      return std::numeric_limits<double>::infinity();
    }
    return model.total_power(vdd, vth, frequency);
  };
}

/// Assemble the OptimumResult for a refined constraint-curve minimum; shared
/// so the sweep reports exactly what find_optimum would.
OptimumResult optimum_from_refined(const PowerModel& model, double frequency,
                                   const MinimizeResult& best) {
  OptimumResult result;
  result.frequency = frequency;
  const double vth = model.vth_on_constraint(best.x, frequency);
  result.point = model.operating_point(best.x, vth, frequency);
  result.on_constraint = true;
  result.converged = best.converged || std::isfinite(best.f);
  return result;
}

}  // namespace

OptimumResult find_optimum(const PowerModel& model, double frequency,
                           const OptimumOptions& options, const ExecContext& ctx) {
  require(frequency > 0.0, "find_optimum: frequency must be positive");
  require(options.vdd_min > 0.0 && options.vdd_min < options.vdd_max,
          "find_optimum: bad vdd range");

  const MinimizeResult best =
      scan_then_refine(constraint_objective(model, frequency, options), options.vdd_min,
                       options.vdd_max, options.scan_samples, MinimizeOptions{}, ctx);
  return optimum_from_refined(model, frequency, best);
}

OptimumResult find_optimum_grid(const PowerModel& model, double frequency,
                                const OptimumOptions& options) {
  return find_optimum_grid(model, frequency, options, ExecContext());
}

OptimumResult find_optimum_grid(const PowerModel& model, double frequency,
                                const OptimumOptions& options, const ExecContext& ctx) {
  require(frequency > 0.0, "find_optimum_grid: frequency must be positive");

  const auto objective = [&](double vdd, double vth) -> double {
    if (vth >= vdd) return std::numeric_limits<double>::infinity();
    if (!model.meets_timing(vdd, vth, frequency)) {
      return std::numeric_limits<double>::infinity();
    }
    return model.total_power(vdd, vth, frequency);
  };

  const GridMinimum grid =
      grid_minimize_2d(objective, options.vdd_min, options.vdd_max, options.grid_nx,
                       options.vth_min, options.vth_max, options.grid_ny, ctx);

  OptimumResult result;
  result.frequency = frequency;
  result.point = model.operating_point(grid.x, grid.y, frequency);
  // The constrained optimum lies on the timing-equality boundary; report how
  // close the best grid cell is to it.
  const double vth_exact = model.vth_on_constraint(grid.x, frequency);
  result.on_constraint = std::fabs(vth_exact - grid.y) <
                         2.0 * (options.vth_max - options.vth_min) /
                             static_cast<double>(options.grid_ny - 1);
  result.converged = true;
  return result;
}

std::vector<OptimumSweepPoint> optimum_sweep(const PowerModel& model,
                                             const std::vector<double>& frequencies,
                                             const OptimumOptions& options,
                                             const ExecContext& ctx) {
  // Batched search: instead of one opaque task per frequency (which starves
  // the pool when sweeping fewer configurations than workers), all
  // constraint-curve scans run as ONE flattened parallel epoch and the
  // per-curve Brent refinements as a second round.  scan_then_refine_batch
  // guarantees slot k bit-identical to the serial find_optimum at
  // frequencies[k], with per-curve NumericalError mapped to feasible=false.
  require(options.vdd_min > 0.0 && options.vdd_min < options.vdd_max,
          "find_optimum: bad vdd range");
  std::vector<std::function<double(double)>> objectives;
  objectives.reserve(frequencies.size());
  for (const double frequency : frequencies) {
    require(frequency > 0.0, "find_optimum: frequency must be positive");
    objectives.push_back(constraint_objective(model, frequency, options));
  }

  const std::vector<BatchMinimizeResult> refined = scan_then_refine_batch(
      objectives, options.vdd_min, options.vdd_max, options.scan_samples, MinimizeOptions{}, ctx);

  std::vector<OptimumSweepPoint> points(frequencies.size());
  for (std::size_t k = 0; k < frequencies.size(); ++k) {
    points[k].frequency = frequencies[k];
    if (!refined[k].feasible) continue;
    try {
      points[k].result = optimum_from_refined(model, frequencies[k], refined[k].result);
      points[k].feasible = true;
    } catch (const NumericalError&) {
      points[k].feasible = false;  // constraint solve failed at the refined point
    }
  }
  return points;
}

}  // namespace optpower
