// Sensitivity of the optimal total power to architecture and technology
// parameters.  Section 4/5 of the paper reasons qualitatively from Eq. 13
// ("reducing chi lowers Ptot", "high activity is doubly penalized", ...);
// this module quantifies those statements as elasticities
//     E_x = d ln Ptot* / d ln x
// computed by re-running the numerical optimum at perturbed parameters.
#pragma once

#include <string>
#include <vector>

#include "power/model.h"

namespace optpower {

/// Parameters the sensitivity sweep can perturb.
enum class ModelParameter {
  kActivity,
  kNumCells,
  kLogicDepth,
  kCellCap,
  kIo,
  kZeta,
  kAlpha,
  kSlopeN,
  kFrequency,
};

[[nodiscard]] std::string to_string(ModelParameter p);

/// One elasticity record.
struct Elasticity {
  ModelParameter parameter;
  double value = 0.0;       ///< the parameter's base value
  double elasticity = 0.0;  ///< d ln Ptot* / d ln x at the base point
};

/// Compute elasticities of the numerically-optimized Ptot for every
/// parameter in `params` (central differences with relative step `rel_step`).
[[nodiscard]] std::vector<Elasticity> optimal_power_elasticities(
    const PowerModel& model, double frequency,
    const std::vector<ModelParameter>& params = {
        ModelParameter::kActivity, ModelParameter::kNumCells, ModelParameter::kLogicDepth,
        ModelParameter::kCellCap, ModelParameter::kIo, ModelParameter::kZeta,
        ModelParameter::kFrequency},
    double rel_step = 0.02);

/// Helper: rebuild the model with one parameter scaled by `factor`.
[[nodiscard]] PowerModel perturbed_model(const PowerModel& model, ModelParameter p,
                                         double factor);

}  // namespace optpower
