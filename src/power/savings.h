// Power savings of the optimal working point versus nominal operation.
//
// The motivation behind the paper: running a circuit at its nominal
// (Vdd_nom, Vth0_nom) wastes the slack between its actual speed and the
// required throughput.  This module quantifies what moving to the optimal
// (Vdd*, Vth*) buys, and what a cheaper Vdd-only scaling (DVS with fixed
// threshold - the paper's reference [7] scenario) achieves in between.
#pragma once

#include "power/model.h"
#include "power/optimum.h"

namespace optpower {

/// Comparison of three operating strategies at one frequency.
struct SavingsReport {
  OperatingPoint nominal;        ///< (Vdd_nom, Vth_nom): no scaling at all
  OperatingPoint vdd_only;       ///< Vdd lowered to the timing wall, Vth fixed
  OperatingPoint optimal;        ///< joint (Vdd*, Vth*) optimum
  double frequency = 0.0;
  bool nominal_meets_timing = false;
  bool optimal_found = true;     ///< false when NO (Vdd, Vth) in range meets timing;
                                 ///< `optimal` then falls back to `vdd_only`

  /// Ptot(nominal) / Ptot(optimal): the headline saving factor.
  [[nodiscard]] double total_saving_factor() const noexcept {
    return optimal.ptot > 0.0 ? nominal.ptot / optimal.ptot : 0.0;
  }
  /// Ptot(nominal) / Ptot(vdd_only): what DVS alone achieves.
  [[nodiscard]] double vdd_only_saving_factor() const noexcept {
    return vdd_only.ptot > 0.0 ? nominal.ptot / vdd_only.ptot : 0.0;
  }
};

/// Evaluate all three strategies.  The nominal threshold is taken from the
/// technology (effective: vth0_nom - eta*vdd_nom).  Throws NumericalError if
/// even the nominal point cannot reach `frequency` (check
/// nominal_meets_timing in that case is moot - the architecture is too slow).
[[nodiscard]] SavingsReport analyze_savings(const PowerModel& model, double frequency);

}  // namespace optpower
