#include "power/sensitivity.h"

#include <cmath>

#include "power/optimum.h"
#include "util/error.h"

namespace optpower {

std::string to_string(ModelParameter p) {
  switch (p) {
    case ModelParameter::kActivity: return "activity (a)";
    case ModelParameter::kNumCells: return "cells (N)";
    case ModelParameter::kLogicDepth: return "logic depth (LD)";
    case ModelParameter::kCellCap: return "cell cap (C)";
    case ModelParameter::kIo: return "off-current (Io)";
    case ModelParameter::kZeta: return "delay coeff (zeta)";
    case ModelParameter::kAlpha: return "alpha";
    case ModelParameter::kSlopeN: return "slope (n)";
    case ModelParameter::kFrequency: return "frequency (f)";
  }
  return "unknown";
}

PowerModel perturbed_model(const PowerModel& model, ModelParameter p, double factor) {
  require(factor > 0.0, "perturbed_model: factor must be positive");
  Technology tech = model.tech();
  ArchitectureParams arch = model.arch();
  switch (p) {
    case ModelParameter::kActivity: arch.activity *= factor; break;
    case ModelParameter::kNumCells: arch.n_cells *= factor; break;
    case ModelParameter::kLogicDepth: arch.logic_depth *= factor; break;
    case ModelParameter::kCellCap: arch.cell_cap *= factor; break;
    case ModelParameter::kIo: tech.io *= factor; break;
    case ModelParameter::kZeta: tech.zeta *= factor; break;
    case ModelParameter::kAlpha: tech.alpha *= factor; break;
    case ModelParameter::kSlopeN: tech.n *= factor; break;
    case ModelParameter::kFrequency:
      throw InvalidArgument(
          "perturbed_model: frequency is not a model member; scale it at the call site");
  }
  return {tech, arch};
}

std::vector<Elasticity> optimal_power_elasticities(const PowerModel& model, double frequency,
                                                   const std::vector<ModelParameter>& params,
                                                   double rel_step) {
  require(rel_step > 0.0 && rel_step < 0.5, "optimal_power_elasticities: bad rel_step");
  std::vector<Elasticity> out;
  out.reserve(params.size());
  const double up = 1.0 + rel_step;
  const double down = 1.0 - rel_step;

  const auto optimum_power = [&](ModelParameter p, double factor) {
    if (p == ModelParameter::kFrequency) {
      return find_optimum(model, frequency * factor).point.ptot;
    }
    return find_optimum(perturbed_model(model, p, factor), frequency).point.ptot;
  };

  for (const ModelParameter p : params) {
    Elasticity e;
    e.parameter = p;
    switch (p) {
      case ModelParameter::kActivity: e.value = model.arch().activity; break;
      case ModelParameter::kNumCells: e.value = model.arch().n_cells; break;
      case ModelParameter::kLogicDepth: e.value = model.arch().logic_depth; break;
      case ModelParameter::kCellCap: e.value = model.arch().cell_cap; break;
      case ModelParameter::kIo: e.value = model.tech().io; break;
      case ModelParameter::kZeta: e.value = model.tech().zeta; break;
      case ModelParameter::kAlpha: e.value = model.tech().alpha; break;
      case ModelParameter::kSlopeN: e.value = model.tech().n; break;
      case ModelParameter::kFrequency: e.value = frequency; break;
    }
    const double p_up = optimum_power(p, up);
    const double p_down = optimum_power(p, down);
    e.elasticity = (std::log(p_up) - std::log(p_down)) / (std::log(up) - std::log(down));
    out.push_back(e);
  }
  return out;
}

}  // namespace optpower
