#include "calib/tech_extract.h"

#include <algorithm>
#include <cmath>

#include "numeric/fit.h"
#include "numeric/levenberg_marquardt.h"
#include "util/constants.h"
#include "util/error.h"

namespace optpower {

SubthresholdExtraction extract_subthreshold(const std::vector<double>& vgs,
                                            const std::vector<double>& ids, double vth0,
                                            double ut) {
  require(vgs.size() == ids.size() && vgs.size() >= 3,
          "extract_subthreshold: need >= 3 matched samples");
  require(ut > 0.0, "extract_subthreshold: ut must be positive");
  for (std::size_t i = 0; i < vgs.size(); ++i) {
    require(ids[i] > 0.0, "extract_subthreshold: currents must be positive");
    require(vgs[i] < vth0, "extract_subthreshold: all samples must be below vth0");
  }
  // ln I = ln(Io e^{-vth0/(n Ut)}) + Vgs/(n Ut): a line in Vgs.
  const ExponentialFit fit = fit_exponential(vgs, ids);
  SubthresholdExtraction out;
  out.n = fit.scale / ut;
  require(out.n > 0.5 && out.n < 5.0, "extract_subthreshold: implausible slope factor");
  out.i_at_vgs0 = fit.y0;
  out.io = fit.y0 * std::exp(vth0 / fit.scale);
  double sq = 0.0;
  for (std::size_t i = 0; i < vgs.size(); ++i) {
    const double e = std::log(ids[i]) - std::log(fit(vgs[i]));
    sq += e * e;
  }
  out.rms_log_error = std::sqrt(sq / static_cast<double>(vgs.size()));
  return out;
}

double extract_threshold_max_gm(const std::vector<double>& vgs, const std::vector<double>& ids) {
  require(vgs.size() == ids.size() && vgs.size() >= 5,
          "extract_threshold_max_gm: need >= 5 matched samples");
  // Central-difference transconductance; find its maximum.
  std::size_t best = 1;
  double best_gm = -1.0;
  for (std::size_t i = 1; i + 1 < vgs.size(); ++i) {
    const double gm = (ids[i + 1] - ids[i - 1]) / (vgs[i + 1] - vgs[i - 1]);
    if (gm > best_gm) {
      best_gm = gm;
      best = i;
    }
  }
  require(best_gm > 0.0, "extract_threshold_max_gm: non-increasing current data");
  // Tangent at the max-gm point, extrapolated to Ids = 0.
  return vgs[best] - ids[best] / best_gm;
}

DelayExtraction extract_delay_params(const std::vector<double>& vdd,
                                     const std::vector<double>& tgate, double io, double n,
                                     double vth0, double eta, double ut) {
  require(vdd.size() == tgate.size() && vdd.size() >= 4,
          "extract_delay_params: need >= 4 matched samples");
  require(io > 0.0 && n >= 1.0 && ut > 0.0, "extract_delay_params: bad device constants");
  for (std::size_t i = 0; i < vdd.size(); ++i) {
    require(vdd[i] > vth0 && tgate[i] > 0.0,
            "extract_delay_params: supplies must exceed vth0; delays must be positive");
  }

  const auto model_delay = [&](double v, double zeta, double alpha) {
    const double vth_eff = vth0 - eta * v;
    const double overdrive = v - vth_eff;
    const double ion = io * std::pow(kEuler * overdrive / (alpha * n * ut), alpha);
    return zeta * v / ion;
  };

  // Seed: a crude power-law relation between overdrive and delay gives alpha;
  // zeta then follows from matching the mid-range point.
  std::vector<double> od(vdd.size()), inv_t(vdd.size());
  for (std::size_t i = 0; i < vdd.size(); ++i) {
    od[i] = vdd[i] - (vth0 - eta * vdd[i]);
    inv_t[i] = vdd[i] / tgate[i];  // proportional to Ion
  }
  const PowerLawFit seed_law = fit_power_law(od, inv_t);
  double alpha0 = std::clamp(seed_law.p, 1.0, 2.0);
  const std::size_t mid = vdd.size() / 2;
  const double ion_mid =
      io * std::pow(kEuler * od[mid] / (alpha0 * n * ut), alpha0);
  double zeta0 = tgate[mid] * ion_mid / vdd[mid];

  const auto residuals = [&](const std::vector<double>& p) {
    const double zeta = p[0];
    const double alpha = p[1];
    std::vector<double> r(vdd.size());
    if (zeta <= 0.0 || alpha < 1.0 || alpha > 2.0) {
      std::fill(r.begin(), r.end(), 1e6);
      return r;
    }
    for (std::size_t i = 0; i < vdd.size(); ++i) {
      r[i] = std::log(model_delay(vdd[i], zeta, alpha)) - std::log(tgate[i]);
    }
    return r;
  };

  const LevenbergMarquardtResult lm = levenberg_marquardt(residuals, {zeta0, alpha0});

  DelayExtraction out;
  out.zeta = lm.params[0];
  out.alpha = lm.params[1];
  out.converged = lm.converged || lm.chi2 < 1e-6;
  double sq = 0.0;
  for (std::size_t i = 0; i < vdd.size(); ++i) {
    const double rel = model_delay(vdd[i], out.zeta, out.alpha) / tgate[i] - 1.0;
    sq += rel * rel;
  }
  out.rms_rel_error = std::sqrt(sq / static_cast<double>(vdd.size()));
  return out;
}

}  // namespace optpower
