// Inverse calibration from the paper's published optimal working points.
//
// The paper computes its per-architecture parameters (average cell
// capacitance C, average off-current Io, delay coefficient zeta) from a
// proprietary synthesis/simulation flow and does not publish them - it
// explicitly notes "architectures with different cells distributions could
// present slightly different parameters".  Each published row, however,
// over-determines those parameters:
//
//   * Table 1 rows publish (N, a, LD, Vdd*, Vth*, Pdyn*, Pstat*):
//       C      from  Pdyn* = N a C Vdd*^2 f
//       chi    from  Vth*  = Vdd* - chi Vdd*^{1/alpha}        (Eq. 5)
//       Io_eff from  Pstat* = N Vdd* Io exp(-Vth*/nUt)
//       zeta   from  chi via Eq. 6 (with Io_eff)
//     The *optimality* of (Vdd*, Vth*) is then a genuine prediction of the
//     calibrated model - the reproduction checks it.
//
//   * Table 3/4 rows publish only (Vdd*, Vth*, Ptot*).  chi again comes from
//     Eq. 5; (C, Io_eff) follow from the 2x2 linear system
//       { Pdyn + Pstat = Ptot* ,  dPtot/dVdd = 0 at Vdd* }
//     which encodes that the published point *is* the optimum.
//
// Both calibrators return a ready-to-use PowerModel whose Technology carries
// the per-architecture effective (Io, zeta).
#pragma once

#include "arch/paper_data.h"
#include "power/model.h"

namespace optpower {

/// A per-architecture calibrated model plus the inferred parameters.
struct CalibratedModel {
  PowerModel model;     ///< tech carries io_eff/zeta_eff; arch carries N, a, LD, C
  double frequency;     ///< calibration frequency [Hz]
  double chi;           ///< Eq. 6 value at the published optimum
  double cell_cap;      ///< inferred C [F]
  double io_eff;        ///< inferred per-cell off-current [A]
  double zeta_eff;      ///< inferred delay coefficient [F]
};

/// Calibrate from a full Table-1 row (see file comment).  `base` supplies the
/// flavor-level constants (alpha, n, temperature); its io/zeta are replaced.
/// Throws InvalidArgument when the row is internally inconsistent (e.g. the
/// published overdrive falls below the alpha-branch validity limit).
[[nodiscard]] CalibratedModel calibrate_from_table1_row(const Table1Row& row,
                                                        const Technology& base,
                                                        double frequency = kPaperFrequency);

/// Calibrate from an optimum-only row (Tables 3/4).  The structural
/// aggregates (N, a, LD) come from `structure` - for the Wallace family these
/// are the Table-1 values, since the same netlists were re-characterized per
/// flavor.  Throws NumericalError when the 2x2 system is singular or yields
/// non-positive C / Io.
[[nodiscard]] CalibratedModel calibrate_from_optimum(const WallaceFlavorRow& row,
                                                     const Table1Row& structure,
                                                     const Technology& base,
                                                     double frequency = kPaperFrequency);

/// Shared helper: chi from a published (vdd, vth) pair on the alpha branch of
/// Eq. 5: chi = (vdd - vth)/vdd^{1/alpha}.  Throws InvalidArgument when the
/// overdrive is below alpha*n*Ut (the C1 branch switch), where Eq. 5's alpha
/// form does not apply.
[[nodiscard]] double chi_from_published_point(double vdd, double vth, const Technology& tech);

/// Shared helper: invert Eq. 6 for zeta given chi:
/// zeta = (chi*e/(alpha*n*Ut))^alpha * io / (LD * f).
[[nodiscard]] double zeta_from_chi(double chi, double io, double logic_depth, double frequency,
                                   const Technology& tech);

}  // namespace optpower
