#include "calib/calibrate.h"

#include <cmath>

#include "numeric/linalg.h"
#include "util/constants.h"
#include "util/error.h"
#include "util/format.h"

namespace optpower {

double chi_from_published_point(double vdd, double vth, const Technology& tech) {
  require(vdd > 0.0 && vth < vdd, "chi_from_published_point: need vth < vdd, vdd > 0");
  // Pure alpha-power law (the paper's Eq. 2/5): valid for any positive
  // overdrive vdd - vth.
  return (vdd - vth) / std::pow(vdd, 1.0 / tech.alpha);
}

double zeta_from_chi(double chi, double io, double logic_depth, double frequency,
                     const Technology& tech) {
  require(chi > 0.0 && io > 0.0 && logic_depth >= 1.0 && frequency > 0.0,
          "zeta_from_chi: all inputs must be positive (logic_depth >= 1)");
  const double scale = chi * kEuler / (tech.alpha * tech.n_ut());
  return std::pow(scale, tech.alpha) * io / (logic_depth * frequency);
}

CalibratedModel calibrate_from_table1_row(const Table1Row& row, const Technology& base,
                                          double frequency) {
  validate(base);
  require(frequency > 0.0, "calibrate_from_table1_row: frequency must be positive");
  require(row.pdyn > 0.0 && row.pstat > 0.0,
          "calibrate_from_table1_row: row must have positive power split");

  const double nut = base.n_ut();
  const double n = static_cast<double>(row.n_cells);

  // C from the dynamic power at the published optimum.
  const double cell_cap = row.pdyn / (n * row.activity * row.vdd_opt * row.vdd_opt * frequency);

  // chi from the published (Vdd*, Vth*) on the constraint curve.
  const double chi = chi_from_published_point(row.vdd_opt, row.vth_opt, base);

  // Io_eff from the static power at the published optimum.
  const double io_eff = row.pstat * std::exp(row.vth_opt / nut) / (n * row.vdd_opt);
  require(io_eff > 0.0, "calibrate_from_table1_row: non-positive io_eff");

  // zeta_eff so that Eq. 6 reproduces chi with the effective Io.
  const double zeta_eff = zeta_from_chi(chi, io_eff, row.logic_depth, frequency, base);

  Technology tech = base;
  tech.name = base.name + "/" + row.name;
  tech.io = io_eff;
  tech.zeta = zeta_eff;

  ArchitectureParams arch;
  arch.name = row.name;
  arch.n_cells = n;
  arch.activity = row.activity;
  arch.logic_depth = row.logic_depth;
  arch.cell_cap = cell_cap;
  arch.area_um2 = row.area_um2;

  return {PowerModel(tech, arch), frequency, chi, cell_cap, io_eff, zeta_eff};
}

CalibratedModel calibrate_from_optimum(const WallaceFlavorRow& row, const Table1Row& structure,
                                       const Technology& base, double frequency) {
  validate(base);
  require(frequency > 0.0, "calibrate_from_optimum: frequency must be positive");
  require(row.ptot > 0.0, "calibrate_from_optimum: ptot must be positive");

  const double nut = base.n_ut();
  const double n = static_cast<double>(structure.n_cells);
  const double a = structure.activity;
  const double vdd = row.vdd_opt;
  const double vth = row.vth_opt;

  const double chi = chi_from_published_point(vdd, vth, base);

  // dVth/dVdd along the constraint: g = 1 - (chi/alpha) vdd^{1/alpha - 1}.
  const double g = 1.0 - (chi / base.alpha) * std::pow(vdd, 1.0 / base.alpha - 1.0);
  const double leak_shape = std::exp(-vth / nut);

  // Unknowns x = (C, Io_eff):
  //   [ n a f vdd^2        n vdd leak_shape              ] [C ]   [ptot]
  //   [ 2 n a f vdd        n leak_shape (1 - vdd g/nut)  ] [Io] = [0   ]
  Matrix m(2, 2);
  m(0, 0) = n * a * frequency * vdd * vdd;
  m(0, 1) = n * vdd * leak_shape;
  m(1, 0) = 2.0 * n * a * frequency * vdd;
  m(1, 1) = n * leak_shape * (1.0 - vdd * g / nut);
  const std::vector<double> rhs = {row.ptot, 0.0};
  const std::vector<double> solution = solve_linear(m, rhs);
  const double cell_cap = solution[0];
  const double io_eff = solution[1];
  if (cell_cap <= 0.0 || io_eff <= 0.0) {
    throw NumericalError(strprintf(
        "calibrate_from_optimum('%s'): inconsistent row, got C=%.3e F, Io=%.3e A",
        row.name.c_str(), cell_cap, io_eff));
  }

  const double zeta_eff = zeta_from_chi(chi, io_eff, structure.logic_depth, frequency, base);

  Technology tech = base;
  tech.name = base.name + "/" + row.name;
  tech.io = io_eff;
  tech.zeta = zeta_eff;

  ArchitectureParams arch;
  arch.name = row.name;
  arch.n_cells = n;
  arch.activity = a;
  arch.logic_depth = structure.logic_depth;
  arch.cell_cap = cell_cap;
  arch.area_um2 = structure.area_um2;

  return {PowerModel(tech, arch), frequency, chi, cell_cap, io_eff, zeta_eff};
}

}  // namespace optpower
