// Technology-parameter extraction: the paper's ELDO flow ("technology
// parameters have been estimated with Spice simulations ... by fitting
// delays on inverter chains ring oscillators") re-implemented on top of
// measurement vectors produced by the mini-SPICE engine (src/spice).
//
// The extractors are pure functions of data so they can be unit-tested with
// synthetic curves and reused on real measurements.
#pragma once

#include <vector>

namespace optpower {

/// Result of a weak-inversion (sub-threshold) fit of Ids(Vgs) data.
struct SubthresholdExtraction {
  double n = 0.0;            ///< weak-inversion slope factor
  double io = 0.0;           ///< current at Vgs = Vth0 [A] (the paper's Io)
  double i_at_vgs0 = 0.0;    ///< leakage at Vgs = 0 [A]
  double rms_log_error = 0.0;
};

/// Fit I = Io * exp((Vgs - vth0)/(n*Ut)) on sub-threshold sweep data
/// (Vgs strictly below vth0).  `ut` is the thermal voltage at the
/// measurement temperature.  Throws InvalidArgument on bad data.
[[nodiscard]] SubthresholdExtraction extract_subthreshold(const std::vector<double>& vgs,
                                                          const std::vector<double>& ids,
                                                          double vth0, double ut);

/// Threshold extraction by the maximum-transconductance extrapolation
/// method: find the steepest point of Ids(Vgs) and extrapolate its tangent
/// to Ids = 0.  Standard silicon practice; works on our analytic model too.
[[nodiscard]] double extract_threshold_max_gm(const std::vector<double>& vgs,
                                              const std::vector<double>& ids);

/// Result of the delay fit (the paper's ring-oscillator flow).
struct DelayExtraction {
  double zeta = 0.0;   ///< Eq. 4 coefficient [F]
  double alpha = 0.0;  ///< alpha-power exponent
  double rms_rel_error = 0.0;
  bool converged = false;
};

/// Fit tgate(Vdd) = zeta * Vdd / (Io * (e*(Vdd - vth_eff)/(alpha n Ut))^alpha)
/// to measured stage delays at supplies `vdd` (all with overdrive above the
/// sub-threshold matching point).  (io, n, vth0, eta, ut) are known from the
/// leakage extraction; (zeta, alpha) are fitted with Levenberg-Marquardt on
/// log-delay residuals, seeded by a power-law regression.
[[nodiscard]] DelayExtraction extract_delay_params(const std::vector<double>& vdd,
                                                   const std::vector<double>& tgate, double io,
                                                   double n, double vth0, double eta, double ut);

}  // namespace optpower
