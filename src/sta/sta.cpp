#include "sta/sta.h"

#include <algorithm>

#include "netlist/cell.h"
#include "util/error.h"

namespace optpower {

TimingReport analyze_timing(const Netlist& netlist) {
  netlist.verify();
  TimingReport report;
  report.net_arrival.assign(netlist.num_nets(), 0.0);
  std::vector<CellId> pred(netlist.num_nets(), Netlist::kNoCell);

  // Sequential outputs launch with their clock-to-Q delay.
  for (CellId c = 0; c < netlist.num_cells(); ++c) {
    const CellInstance& cell = netlist.cell(c);
    const CellSpec& spec = cell_spec(cell.type);
    if (!spec.is_sequential) continue;
    for (const NetId q : cell.outputs) {
      report.net_arrival[q] = spec.depth_units;
      pred[q] = c;
    }
  }

  for (const CellId c : netlist.topo_order()) {
    const CellInstance& cell = netlist.cell(c);
    const CellSpec& spec = cell_spec(cell.type);
    if (spec.is_sequential) continue;
    double worst = 0.0;
    for (const NetId in : cell.inputs) worst = std::max(worst, report.net_arrival[in]);
    const double arrival = worst + spec.depth_units;
    for (const NetId out : cell.outputs) {
      report.net_arrival[out] = arrival;
      pred[out] = c;
    }
  }

  // Sinks: primary outputs and D/EN pins of sequential cells.
  const auto consider = [&](NetId net) {
    if (report.net_arrival[net] > report.critical_path_units) {
      report.critical_path_units = report.net_arrival[net];
      report.critical_endpoint = net;
    }
  };
  for (const NetId po : netlist.primary_outputs()) consider(po);
  for (CellId c = 0; c < netlist.num_cells(); ++c) {
    const CellInstance& cell = netlist.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    for (const NetId in : cell.inputs) consider(in);
  }

  // Trace the critical path back through worst-arrival inputs.
  NetId net = report.critical_endpoint;
  while (net != kNoNet && pred[net] != Netlist::kNoCell) {
    const CellId c = pred[net];
    report.critical_path.push_back(c);
    const CellInstance& cell = netlist.cell(c);
    if (cell_spec(cell.type).is_sequential) break;  // reached a launching DFF
    NetId worst_in = kNoNet;
    double worst = -1.0;
    for (const NetId in : cell.inputs) {
      if (report.net_arrival[in] > worst) {
        worst = report.net_arrival[in];
        worst_in = in;
      }
    }
    net = worst_in;
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

double effective_logic_depth(double ld_per_cycle, int internal_cycles_per_result, int ways) {
  require(ld_per_cycle > 0.0, "effective_logic_depth: ld_per_cycle must be positive");
  require(internal_cycles_per_result >= 1, "effective_logic_depth: cycles must be >= 1");
  require(ways >= 1, "effective_logic_depth: ways must be >= 1");
  return ld_per_cycle * static_cast<double>(internal_cycles_per_result) /
         static_cast<double>(ways);
}

}  // namespace optpower
