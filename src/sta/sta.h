// Static timing analysis: topological longest-path over the combinational
// graph, in units of equivalent inverter delays (CellSpec::depth_units).
//
// This is the paper's "LDeff" substrate: the critical register-to-register /
// input-to-output path measured in gate delays, then normalized to the
// throughput period (a sequential multiplier that takes 16 internal cycles
// per result contributes 16x its per-cycle depth; a 2-way parallel design
// has 2 throughput periods per result, halving its effective depth).
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace optpower {

/// Result of a timing analysis.
struct TimingReport {
  double critical_path_units = 0.0;   ///< LD per clock cycle [inverter delays]
  NetId critical_endpoint = kNoNet;   ///< net where the worst path ends
  std::vector<CellId> critical_path;  ///< cells along the worst path, source to sink
  std::vector<double> net_arrival;    ///< arrival time per net
};

/// Longest combinational path.  Sources: primary inputs and DFF outputs
/// (arrival 0).  Sinks: primary outputs and DFF inputs.  Sequential cells
/// contribute their clock-to-q as source offset and setup as sink cost via
/// their depth_units (applied at the source side).
[[nodiscard]] TimingReport analyze_timing(const Netlist& netlist);

/// The paper's effective logic depth relative to the *throughput* period:
///   LDeff = LD_per_cycle * internal_cycles_per_result / ways
/// where `internal_cycles_per_result` models sequential multipliers (16 for
/// the basic add-and-shift) and `ways` models parallel replication (each
/// lane gets `ways` throughput periods).
[[nodiscard]] double effective_logic_depth(double ld_per_cycle, int internal_cycles_per_result,
                                           int ways);

}  // namespace optpower
