#include "numeric/roots.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace optpower {
namespace {

bool opposite_signs(double a, double b) noexcept {
  return (a < 0.0 && b > 0.0) || (a > 0.0 && b < 0.0);
}

}  // namespace

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& options) {
  require(lo < hi, "bisect: lo must be < hi");
  double flo = f(lo);
  double fhi = f(hi);
  RootResult result;
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  if (!opposite_signs(flo, fhi)) {
    throw NumericalError("bisect: f(lo) and f(hi) do not bracket a root");
  }
  for (int i = 0; i < options.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    ++result.iterations;
    if (fm == 0.0 || (options.f_tol > 0.0 && std::fabs(fm) <= options.f_tol) ||
        (hi - lo) * 0.5 <= options.x_tol) {
      return {mid, fm, result.iterations, true};
    }
    if (opposite_signs(flo, fm)) {
      hi = mid;
      fhi = fm;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  result.x = 0.5 * (lo + hi);
  result.f = f(result.x);
  result.converged = false;
  return result;
}

RootResult brent_root(const std::function<double(double)>& f, double lo, double hi,
                      const RootOptions& options) {
  require(lo < hi, "brent_root: lo must be < hi");
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if (!opposite_signs(fa, fb)) {
    throw NumericalError("brent_root: f(lo) and f(hi) do not bracket a root");
  }
  double c = a, fc = fa;
  double d = b - a, e = d;
  RootResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 = 2.0 * 2.22e-16 * std::fabs(b) + 0.5 * options.x_tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0 ||
        (options.f_tol > 0.0 && std::fabs(fb) <= options.f_tol)) {
      return {b, fb, result.iterations, true};
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if (!opposite_signs(fb, fc)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  result.x = b;
  result.f = fb;
  result.converged = false;
  return result;
}

RootResult newton_root(const std::function<double(double)>& f, double x0, double lo, double hi,
                       const RootOptions& options) {
  require(lo < hi, "newton_root: lo must be < hi");
  double x = std::clamp(x0, lo, hi);
  double flo = f(lo), fhi = f(hi);
  const bool bracketed = opposite_signs(flo, fhi);
  RootResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    ++result.iterations;
    const double fx = f(x);
    if (fx == 0.0 || (options.f_tol > 0.0 && std::fabs(fx) <= options.f_tol)) {
      return {x, fx, result.iterations, true};
    }
    if (bracketed) {
      // Maintain the bracket BEFORE choosing the next point so the bisection
      // fallback always makes progress.
      if (opposite_signs(flo, fx)) {
        hi = x;
        fhi = fx;
      } else {
        lo = x;
        flo = fx;
      }
    }
    if (bracketed && (hi - lo) <= options.x_tol) {
      const double mid = 0.5 * (lo + hi);
      return {mid, f(mid), result.iterations, true};
    }
    const double h = std::max(1e-7 * std::fabs(x), 1e-10);
    const double dfx = (f(x + h) - f(x - h)) / (2.0 * h);
    double next;
    if (dfx == 0.0 || !std::isfinite(dfx)) {
      next = 0.5 * (lo + hi);
    } else {
      next = x - fx / dfx;
    }
    if (next <= lo || next >= hi) {
      next = bracketed ? 0.5 * (lo + hi) : std::clamp(next, lo, hi);
    }
    // Genuine Newton convergence: a small step that also improves |f|.
    if (std::fabs(next - x) <= options.x_tol) {
      const double fn = f(next);
      if (std::fabs(fn) <= std::fabs(fx)) {
        return {next, fn, result.iterations, true};
      }
    }
    x = next;
  }
  result.x = x;
  result.f = f(x);
  result.converged = false;
  return result;
}

bool expand_bracket(const std::function<double(double)>& f, double& lo, double& hi,
                    int max_expansions) {
  require(lo < hi, "expand_bracket: lo must be < hi");
  double flo = f(lo), fhi = f(hi);
  const double kGrow = 1.6;
  for (int i = 0; i < max_expansions; ++i) {
    if (opposite_signs(flo, fhi) || flo == 0.0 || fhi == 0.0) return true;
    if (std::fabs(flo) < std::fabs(fhi)) {
      lo -= kGrow * (hi - lo);
      flo = f(lo);
    } else {
      hi += kGrow * (hi - lo);
      fhi = f(hi);
    }
  }
  return opposite_signs(flo, fhi);
}

}  // namespace optpower
