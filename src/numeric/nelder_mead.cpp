#include "numeric/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace optpower {

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& options) {
  require(!x0.empty(), "nelder_mead: x0 must not be empty");
  const std::size_t n = x0.size();

  // Standard coefficients: reflection, expansion, contraction, shrink.
  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    double step = options.initial_step * std::fabs(x0[i]);
    if (step == 0.0) step = options.initial_step;
    simplex[i + 1][i] += step;
  }
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  NelderMeadResult result;
  std::vector<std::size_t> order(n + 1);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence: function spread and simplex diameter.
    double diameter = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
      double d = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        d = std::max(d, std::fabs(simplex[order[i]][j] - simplex[best][j]));
      }
      diameter = std::max(diameter, d);
    }
    const double spread = std::fabs(values[worst] - values[best]);
    // Require BOTH a tiny function spread and a collapsed simplex: a simplex
    // straddling a minimum symmetrically has zero spread at finite diameter.
    if ((std::isfinite(values[worst]) && spread <= options.f_tol &&
         diameter <= 1e3 * options.x_tol) ||
        diameter <= options.x_tol) {
      result.converged = true;
      result.x = simplex[best];
      result.f = values[best];
      return result;
    }

    // Centroid of all points except the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (auto& c : centroid) c /= static_cast<double>(n);

    const auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j) {
        p[j] = centroid[j] + coeff * (centroid[j] - simplex[worst][j]);
      }
      return p;
    };

    const std::vector<double> reflected = blend(kAlpha);
    const double f_reflected = f(reflected);

    if (f_reflected < values[best]) {
      const std::vector<double> expanded = blend(kGamma);
      const double f_expanded = f(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
      continue;
    }
    const std::vector<double> contracted = blend(-kRho);
    const double f_contracted = f(contracted);
    if (f_contracted < values[worst]) {
      simplex[worst] = contracted;
      values[worst] = f_contracted;
      continue;
    }
    // Shrink towards the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < n; ++j) {
        simplex[i][j] = simplex[best][j] + kSigma * (simplex[i][j] - simplex[best][j]);
      }
      values[i] = f(simplex[i]);
    }
  }

  const std::size_t best =
      static_cast<std::size_t>(std::min_element(values.begin(), values.end()) - values.begin());
  result.x = simplex[best];
  result.f = values[best];
  result.converged = false;
  return result;
}

}  // namespace optpower
