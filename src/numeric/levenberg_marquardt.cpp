#include "numeric/levenberg_marquardt.h"

#include <cmath>

#include "numeric/linalg.h"
#include "util/error.h"

namespace optpower {
namespace {

double sum_squares(const std::vector<double>& r) {
  double s = 0.0;
  for (const double v : r) s += v * v;
  return s;
}

}  // namespace

LevenbergMarquardtResult levenberg_marquardt(
    const std::function<std::vector<double>(const std::vector<double>&)>& residuals,
    std::vector<double> p0, const LevenbergMarquardtOptions& options) {
  require(!p0.empty(), "levenberg_marquardt: empty parameter vector");
  const std::size_t np = p0.size();

  std::vector<double> r = residuals(p0);
  require(!r.empty(), "levenberg_marquardt: empty residual vector");
  const std::size_t nr = r.size();
  double chi2 = sum_squares(r);
  double lambda = options.lambda0;

  LevenbergMarquardtResult result;
  result.params = p0;
  result.chi2 = chi2;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;

    // Numerical Jacobian: J(i, j) = d r_i / d p_j (forward differences).
    Matrix jac(nr, np);
    for (std::size_t j = 0; j < np; ++j) {
      std::vector<double> pj = result.params;
      double h = options.relative_jacobian_step * std::fabs(pj[j]);
      if (h == 0.0) h = options.relative_jacobian_step;
      pj[j] += h;
      const std::vector<double> rj = residuals(pj);
      require(rj.size() == nr, "levenberg_marquardt: residual size changed");
      for (std::size_t i = 0; i < nr; ++i) jac(i, j) = (rj[i] - r[i]) / h;
    }

    // Normal equations with Marquardt damping: (J^T J + lambda diag) dp = -J^T r
    const Matrix jt = jac.transposed();
    const Matrix jtj = jt * jac;
    std::vector<double> g(np, 0.0);
    for (std::size_t j = 0; j < np; ++j)
      for (std::size_t i = 0; i < nr; ++i) g[j] += jt(j, i) * r[i];

    double gmax = 0.0;
    for (const double v : g) gmax = std::max(gmax, std::fabs(v));
    if (gmax < options.gradient_tol) {
      result.converged = true;
      return result;
    }

    bool improved = false;
    for (int attempt = 0; attempt < 30 && !improved; ++attempt) {
      Matrix damped = jtj;
      for (std::size_t j = 0; j < np; ++j) {
        const double d = jtj(j, j);
        damped(j, j) = d + lambda * std::max(d, 1e-12);
      }
      std::vector<double> step;
      try {
        std::vector<double> neg_g(np);
        for (std::size_t j = 0; j < np; ++j) neg_g[j] = -g[j];
        step = solve_linear(damped, neg_g);
      } catch (const NumericalError&) {
        lambda *= options.lambda_up;
        continue;
      }
      std::vector<double> trial = result.params;
      double step_norm = 0.0;
      for (std::size_t j = 0; j < np; ++j) {
        trial[j] += step[j];
        step_norm = std::max(step_norm, std::fabs(step[j]));
      }
      const std::vector<double> r_trial = residuals(trial);
      const double chi2_trial = sum_squares(r_trial);
      if (std::isfinite(chi2_trial) && chi2_trial < chi2) {
        result.params = std::move(trial);
        r = r_trial;
        chi2 = chi2_trial;
        result.chi2 = chi2;
        lambda *= options.lambda_down;
        improved = true;
        if (step_norm < options.step_tol) {
          result.converged = true;
          return result;
        }
      } else {
        lambda *= options.lambda_up;
      }
    }
    if (!improved) {
      // Damping exploded without progress: accept the current point.
      result.converged = chi2 < 1e-20 || gmax < std::sqrt(options.gradient_tol);
      return result;
    }
  }
  return result;
}

}  // namespace optpower
