// Small dense linear algebra: row-major Matrix, LU decomposition with partial
// pivoting, linear solves, inverse and determinant.
//
// The mini-SPICE Newton iteration, the Levenberg-Marquardt normal equations
// and polynomial least-squares all run on circuits/fits with at most a few
// dozen unknowns, so a simple O(n^3) dense LU is the right tool.
#pragma once

#include <cstddef>
#include <vector>

namespace optpower {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> operator*(const std::vector<double>& v) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Max-abs element (used by convergence checks).
  [[nodiscard]] double max_abs() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting: PA = LU.
class LuDecomposition {
 public:
  /// Factorizes `a` (must be square).  Throws NumericalError when singular to
  /// working precision.
  explicit LuDecomposition(Matrix a);

  /// Solve A x = b for one right-hand side.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve A X = B column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  [[nodiscard]] double determinant() const noexcept;
  [[nodiscard]] Matrix inverse() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int pivot_sign_ = 1;
};

/// Convenience: solve a dense system A x = b (A square).
[[nodiscard]] std::vector<double> solve_linear(Matrix a, const std::vector<double>& b);

/// Solve the least-squares problem min ||A x - b||_2 via normal equations
/// with LU (adequate for the small, well-conditioned fits in this library).
[[nodiscard]] std::vector<double> solve_least_squares(const Matrix& a,
                                                      const std::vector<double>& b);

}  // namespace optpower
