#include "numeric/integrate.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace optpower {
namespace {

std::vector<double> axpy(const std::vector<double>& y, double a, const std::vector<double>& x) {
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i] + a * x[i];
  return out;
}

}  // namespace

std::vector<OdeSample> integrate_rk4(const OdeFunction& f, double t0, double t1,
                                     std::vector<double> y0, int steps) {
  require(steps >= 1, "integrate_rk4: steps must be >= 1");
  require(t1 > t0, "integrate_rk4: t1 must be > t0");
  const double h = (t1 - t0) / steps;
  std::vector<OdeSample> out;
  out.reserve(static_cast<std::size_t>(steps) + 1);
  out.push_back({t0, y0});
  std::vector<double> y = std::move(y0);
  for (int s = 0; s < steps; ++s) {
    const double t = t0 + s * h;
    const auto k1 = f(t, y);
    const auto k2 = f(t + 0.5 * h, axpy(y, 0.5 * h, k1));
    const auto k3 = f(t + 0.5 * h, axpy(y, 0.5 * h, k2));
    const auto k4 = f(t + h, axpy(y, h, k3));
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    out.push_back({t + h, y});
  }
  return out;
}

std::vector<OdeSample> integrate_rkf45(const OdeFunction& f, double t0, double t1,
                                       std::vector<double> y0, const AdaptiveOptions& options) {
  require(t1 > t0, "integrate_rkf45: t1 must be > t0");
  // Fehlberg coefficients.
  constexpr double a2 = 1.0 / 4, a3 = 3.0 / 8, a4 = 12.0 / 13, a5 = 1.0, a6 = 1.0 / 2;
  constexpr double b21 = 1.0 / 4;
  constexpr double b31 = 3.0 / 32, b32 = 9.0 / 32;
  constexpr double b41 = 1932.0 / 2197, b42 = -7200.0 / 2197, b43 = 7296.0 / 2197;
  constexpr double b51 = 439.0 / 216, b52 = -8.0, b53 = 3680.0 / 513, b54 = -845.0 / 4104;
  constexpr double b61 = -8.0 / 27, b62 = 2.0, b63 = -3544.0 / 2565, b64 = 1859.0 / 4104,
                   b65 = -11.0 / 40;
  constexpr double c1 = 25.0 / 216, c3 = 1408.0 / 2565, c4 = 2197.0 / 4104, c5 = -1.0 / 5;
  constexpr double d1 = 16.0 / 135, d3 = 6656.0 / 12825, d4 = 28561.0 / 56430, d5 = -9.0 / 50,
                   d6 = 2.0 / 55;

  double h = options.h_initial > 0.0 ? options.h_initial : (t1 - t0) / 100.0;
  double t = t0;
  std::vector<double> y = std::move(y0);
  std::vector<OdeSample> out;
  out.push_back({t, y});

  for (int step = 0; step < options.max_steps && t < t1; ++step) {
    h = std::min(h, t1 - t);
    const auto k1 = f(t, y);
    const auto k2 = f(t + a2 * h, axpy(y, h * b21, k1));
    std::vector<double> tmp = y;
    for (std::size_t i = 0; i < y.size(); ++i) tmp[i] += h * (b31 * k1[i] + b32 * k2[i]);
    const auto k3 = f(t + a3 * h, tmp);
    tmp = y;
    for (std::size_t i = 0; i < y.size(); ++i)
      tmp[i] += h * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
    const auto k4 = f(t + a4 * h, tmp);
    tmp = y;
    for (std::size_t i = 0; i < y.size(); ++i)
      tmp[i] += h * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] + b54 * k4[i]);
    const auto k5 = f(t + a5 * h, tmp);
    tmp = y;
    for (std::size_t i = 0; i < y.size(); ++i)
      tmp[i] += h * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] + b64 * k4[i] + b65 * k5[i]);
    const auto k6 = f(t + a6 * h, tmp);

    double err = 0.0;
    std::vector<double> y5(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double y4 = y[i] + h * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c5 * k5[i]);
      y5[i] = y[i] + h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] + d5 * k5[i] + d6 * k6[i]);
      const double scale =
          options.abs_tol + options.rel_tol * std::max(std::fabs(y[i]), std::fabs(y5[i]));
      err = std::max(err, std::fabs(y5[i] - y4) / scale);
    }
    if (err <= 1.0) {
      t += h;
      y = std::move(y5);
      out.push_back({t, y});
    }
    const double factor = (err > 0.0) ? 0.9 * std::pow(err, -0.2) : 5.0;
    h *= std::clamp(factor, 0.2, 5.0);
    if (h < options.h_min) {
      throw NumericalError("integrate_rkf45: step size underflow");
    }
  }
  if (t < t1) throw NumericalError("integrate_rkf45: max_steps exceeded");
  return out;
}

double integrate_simpson(const std::function<double(double)>& f, double a, double b, int n) {
  require(b > a, "integrate_simpson: b must be > a");
  require(n >= 2, "integrate_simpson: need >= 2 intervals");
  if (n % 2 != 0) ++n;
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace optpower
