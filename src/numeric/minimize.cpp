#include "numeric/minimize.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace optpower {

MinimizeResult golden_section(const std::function<double(double)>& f, double lo, double hi,
                              const MinimizeOptions& options) {
  require(lo < hi, "golden_section: lo must be < hi");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  MinimizeResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    ++result.iterations;
    if (b - a <= options.x_tol) break;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  result.x = (f1 < f2) ? x1 : x2;
  result.f = std::min(f1, f2);
  result.converged = (b - a) <= options.x_tol * 4.0;
  return result;
}

MinimizeResult brent_minimize(const std::function<double(double)>& f, double lo, double hi,
                              const MinimizeOptions& options) {
  require(lo < hi, "brent_minimize: lo must be < hi");
  constexpr double kGold = 0.3819660112501051;
  const double eps = std::sqrt(2.22e-16);
  double a = lo, b = hi;
  double x = a + kGold * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  MinimizeResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    const double xm = 0.5 * (a + b);
    const double tol1 = eps * std::fabs(x) + options.x_tol / 3.0;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - xm) <= tol2 - 0.5 * (b - a)) {
      return {x, fx, result.iterations, true};
    }
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Fit a parabola through (v, fv), (w, fw), (x, fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double etemp = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * etemp) && p > q * (a - x) && p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (xm >= x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? (a - x) : (b - x);
      d = kGold * e;
    }
    const double u = (std::fabs(d) >= tol1) ? (x + d) : (x + (d > 0.0 ? tol1 : -tol1));
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x) a = x;
      else b = x;
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) a = u;
      else b = u;
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  result.x = x;
  result.f = fx;
  result.converged = false;
  return result;
}

MinimizeResult scan_then_refine(const std::function<double(double)>& f, double lo, double hi,
                                int samples, const MinimizeOptions& options) {
  return scan_then_refine(f, lo, hi, samples, options, ExecContext());
}

MinimizeResult scan_then_refine(const std::function<double(double)>& f, double lo, double hi,
                                int samples, const MinimizeOptions& options,
                                const ExecContext& ctx) {
  require(lo < hi, "scan_then_refine: lo must be < hi");
  require(samples >= 3, "scan_then_refine: need at least 3 samples");
  const std::size_t n = static_cast<std::size_t>(samples);
  std::vector<double> values(n);
  parallel_for(ctx, n, [&](std::size_t i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (samples - 1);
    values[i] = f(x);
  });
  double best_x = lo;
  double best_f = std::numeric_limits<double>::infinity();
  int best_i = 0;
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / (samples - 1);
    const double fx = values[static_cast<std::size_t>(i)];
    if (std::isfinite(fx) && fx < best_f) {
      best_f = fx;
      best_x = x;
      best_i = i;
    }
  }
  if (!std::isfinite(best_f)) {
    throw NumericalError("scan_then_refine: objective is non-finite over the whole range");
  }
  const double step = (hi - lo) / (samples - 1);
  const double a = (best_i == 0) ? lo : best_x - step;
  const double b = (best_i == samples - 1) ? hi : best_x + step;
  MinimizeResult refined = brent_minimize(f, a, b, options);
  if (refined.f > best_f) {  // Defensive: never return worse than the scan.
    refined.x = best_x;
    refined.f = best_f;
  }
  return refined;
}

GridMinimum grid_minimize_2d(const std::function<double(double, double)>& f, double xlo,
                             double xhi, std::size_t nx, double ylo, double yhi, std::size_t ny) {
  return grid_minimize_2d(f, xlo, xhi, nx, ylo, yhi, ny, ExecContext());
}

GridMinimum grid_minimize_2d(const std::function<double(double, double)>& f, double xlo,
                             double xhi, std::size_t nx, double ylo, double yhi, std::size_t ny,
                             const ExecContext& ctx) {
  require(xlo < xhi && ylo < yhi, "grid_minimize_2d: bad bounds");
  require(nx >= 2 && ny >= 2, "grid_minimize_2d: need at least a 2x2 grid");
  // Per-row minima in parallel (strict `<` keeps the first/lowest-j winner),
  // then a serial ascending-row merge with the same strict `<`: the winning
  // cell matches the serial i-major/j-minor scan exactly, ties included.
  struct RowBest {
    double y = 0.0;
    double f = std::numeric_limits<double>::infinity();
    std::size_t j = 0;
    bool found = false;
  };
  std::vector<RowBest> rows(nx);
  parallel_for(ctx, nx, [&](std::size_t i) {
    const double x = xlo + (xhi - xlo) * static_cast<double>(i) / static_cast<double>(nx - 1);
    RowBest& row = rows[i];
    for (std::size_t j = 0; j < ny; ++j) {
      const double y = ylo + (yhi - ylo) * static_cast<double>(j) / static_cast<double>(ny - 1);
      const double v = f(x, y);
      if (std::isfinite(v) && v < row.f) {
        row = {y, v, j, true};
      }
    }
  });
  GridMinimum best;
  best.f = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < nx; ++i) {
    if (!rows[i].found || rows[i].f >= best.f) continue;
    const double x = xlo + (xhi - xlo) * static_cast<double>(i) / static_cast<double>(nx - 1);
    best = {x, rows[i].y, rows[i].f, i, rows[i].j};
    found = true;
  }
  if (!found) throw NumericalError("grid_minimize_2d: no feasible grid point");
  return best;
}

}  // namespace optpower
