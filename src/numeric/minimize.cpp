#include "numeric/minimize.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace optpower {

MinimizeResult golden_section(const std::function<double(double)>& f, double lo, double hi,
                              const MinimizeOptions& options) {
  require(lo < hi, "golden_section: lo must be < hi");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  MinimizeResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    ++result.iterations;
    if (b - a <= options.x_tol) break;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  result.x = (f1 < f2) ? x1 : x2;
  result.f = std::min(f1, f2);
  result.converged = (b - a) <= options.x_tol * 4.0;
  return result;
}

MinimizeResult brent_minimize(const std::function<double(double)>& f, double lo, double hi,
                              const MinimizeOptions& options) {
  require(lo < hi, "brent_minimize: lo must be < hi");
  constexpr double kGold = 0.3819660112501051;
  const double eps = std::sqrt(2.22e-16);
  double a = lo, b = hi;
  double x = a + kGold * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  MinimizeResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    const double xm = 0.5 * (a + b);
    const double tol1 = eps * std::fabs(x) + options.x_tol / 3.0;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - xm) <= tol2 - 0.5 * (b - a)) {
      return {x, fx, result.iterations, true};
    }
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Fit a parabola through (v, fv), (w, fw), (x, fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double etemp = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * etemp) && p > q * (a - x) && p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (xm >= x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? (a - x) : (b - x);
      d = kGold * e;
    }
    const double u = (std::fabs(d) >= tol1) ? (x + d) : (x + (d > 0.0 ? tol1 : -tol1));
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x) a = x;
      else b = x;
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) a = u;
      else b = u;
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  result.x = x;
  result.f = fx;
  result.converged = false;
  return result;
}

namespace {

/// Position of coarse-scan sample `i`; shared by every scan/refine path so
/// they all evaluate the objective at bit-identical abscissae.
double scan_position(double lo, double hi, int samples, int i) {
  return lo + (hi - lo) * static_cast<double>(i) / (samples - 1);
}

/// Argmin over pre-computed scan values (read at `values[offset + i]`) plus
/// the local Brent refinement; factored out so scan_then_refine and
/// scan_then_refine_batch make identical floating-point decisions.  Throws
/// NumericalError when every sample is non-finite.
MinimizeResult refine_from_scan(const std::function<double(double)>& f, double lo, double hi,
                                int samples, const std::vector<double>& values,
                                std::size_t offset, const MinimizeOptions& options) {
  double best_x = lo;
  double best_f = std::numeric_limits<double>::infinity();
  int best_i = 0;
  for (int i = 0; i < samples; ++i) {
    const double x = scan_position(lo, hi, samples, i);
    const double fx = values[offset + static_cast<std::size_t>(i)];
    if (std::isfinite(fx) && fx < best_f) {
      best_f = fx;
      best_x = x;
      best_i = i;
    }
  }
  if (!std::isfinite(best_f)) {
    throw NumericalError("scan_then_refine: objective is non-finite over the whole range");
  }
  const double step = (hi - lo) / (samples - 1);
  const double a = (best_i == 0) ? lo : best_x - step;
  const double b = (best_i == samples - 1) ? hi : best_x + step;
  MinimizeResult refined = brent_minimize(f, a, b, options);
  if (refined.f > best_f) {  // Defensive: never return worse than the scan.
    refined.x = best_x;
    refined.f = best_f;
  }
  return refined;
}

}  // namespace

MinimizeResult scan_then_refine(const std::function<double(double)>& f, double lo, double hi,
                                int samples, const MinimizeOptions& options) {
  return scan_then_refine(f, lo, hi, samples, options, ExecContext());
}

MinimizeResult scan_then_refine(const std::function<double(double)>& f, double lo, double hi,
                                int samples, const MinimizeOptions& options,
                                const ExecContext& ctx) {
  require(lo < hi, "scan_then_refine: lo must be < hi");
  require(samples >= 3, "scan_then_refine: need at least 3 samples");
  const std::size_t n = static_cast<std::size_t>(samples);
  std::vector<double> values(n);
  parallel_for(ctx, n, [&](std::size_t i) {
    values[i] = f(scan_position(lo, hi, samples, static_cast<int>(i)));
  });
  return refine_from_scan(f, lo, hi, samples, values, 0, options);
}

std::vector<BatchMinimizeResult> scan_then_refine_batch(
    const std::vector<std::function<double(double)>>& fs, double lo, double hi, int samples,
    const MinimizeOptions& options, const ExecContext& ctx) {
  require(lo < hi, "scan_then_refine_batch: lo must be < hi");
  require(samples >= 3, "scan_then_refine_batch: need at least 3 samples");
  const std::size_t n_curves = fs.size();
  const std::size_t n_samples = static_cast<std::size_t>(samples);
  if (n_curves == 0) return {};

  // Epoch 1: every curve's coarse-scan samples, one flat index space.  A
  // curve whose objective throws NumericalError is marked infeasible (the
  // per-curve scan_then_refine would have propagated the throw); the flag is
  // atomic because one curve's samples may straddle two worker chunks.
  std::vector<double> values(n_curves * n_samples);
  std::vector<std::atomic<bool>> threw(n_curves);
  for (auto& flag : threw) flag.store(false, std::memory_order_relaxed);
  parallel_for(ctx, n_curves * n_samples, [&](std::size_t idx) {
    const std::size_t k = idx / n_samples;
    const int i = static_cast<int>(idx % n_samples);
    try {
      values[idx] = fs[k](scan_position(lo, hi, samples, i));
    } catch (const NumericalError&) {
      threw[k].store(true, std::memory_order_relaxed);
      values[idx] = std::numeric_limits<double>::quiet_NaN();
    }
  });

  // Epoch 2: one serial Brent refinement per surviving curve, fanned out a
  // curve per task.  Bit-identical to the per-curve serial path because the
  // argmin/bracket/refine logic is the shared refine_from_scan.
  return parallel_map<BatchMinimizeResult>(ctx, n_curves, [&](std::size_t k) {
    BatchMinimizeResult out;
    if (threw[k].load(std::memory_order_relaxed)) return out;
    try {
      out.result = refine_from_scan(fs[k], lo, hi, samples, values, k * n_samples, options);
      out.feasible = true;
    } catch (const NumericalError&) {
      out.feasible = false;
    }
    return out;
  });
}

GridMinimum grid_minimize_2d(const std::function<double(double, double)>& f, double xlo,
                             double xhi, std::size_t nx, double ylo, double yhi, std::size_t ny) {
  return grid_minimize_2d(f, xlo, xhi, nx, ylo, yhi, ny, ExecContext());
}

GridMinimum grid_minimize_2d(const std::function<double(double, double)>& f, double xlo,
                             double xhi, std::size_t nx, double ylo, double yhi, std::size_t ny,
                             const ExecContext& ctx) {
  require(xlo < xhi && ylo < yhi, "grid_minimize_2d: bad bounds");
  require(nx >= 2 && ny >= 2, "grid_minimize_2d: need at least a 2x2 grid");
  // Per-row minima in parallel (strict `<` keeps the first/lowest-j winner),
  // then a serial ascending-row merge with the same strict `<`: the winning
  // cell matches the serial i-major/j-minor scan exactly, ties included.
  struct RowBest {
    double y = 0.0;
    double f = std::numeric_limits<double>::infinity();
    std::size_t j = 0;
    bool found = false;
  };
  std::vector<RowBest> rows(nx);
  parallel_for(ctx, nx, [&](std::size_t i) {
    const double x = xlo + (xhi - xlo) * static_cast<double>(i) / static_cast<double>(nx - 1);
    RowBest& row = rows[i];
    for (std::size_t j = 0; j < ny; ++j) {
      const double y = ylo + (yhi - ylo) * static_cast<double>(j) / static_cast<double>(ny - 1);
      const double v = f(x, y);
      if (std::isfinite(v) && v < row.f) {
        row = {y, v, j, true};
      }
    }
  });
  GridMinimum best;
  best.f = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < nx; ++i) {
    if (!rows[i].found || rows[i].f >= best.f) continue;
    const double x = xlo + (xhi - xlo) * static_cast<double>(i) / static_cast<double>(nx - 1);
    best = {x, rows[i].y, rows[i].f, i, rows[i].j};
    found = true;
  }
  if (!found) throw NumericalError("grid_minimize_2d: no feasible grid point");
  return best;
}

}  // namespace optpower
