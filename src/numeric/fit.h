// Curve fitting: straight-line least squares, polynomial least squares, and
// minimax (Chebyshev) straight-line approximation of a convex/concave
// function.
//
// The paper's Eq. 7 replaces Vdd^{1/alpha} by A*Vdd + B over a fitting range;
// the published A = 0.671, B = 0.347 (alpha = 1.86, range 0.3-1.0 V) are
// reproduced by these fitters (see tests/tech/linearization_test.cpp).
#pragma once

#include <functional>
#include <vector>

namespace optpower {

/// y ~= slope * x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double max_abs_error = 0.0;   ///< max |y_i - fit(x_i)| over the data
  double rms_error = 0.0;

  [[nodiscard]] double operator()(double x) const noexcept { return slope * x + intercept; }
};

/// Ordinary least-squares straight line through (x_i, y_i).
/// Requires at least two distinct x values.
[[nodiscard]] LineFit fit_line_least_squares(const std::vector<double>& x,
                                             const std::vector<double>& y);

/// Least-squares line to a *function* sampled on `samples` uniform points of
/// [lo, hi] (how the paper fits Eq. 7 over the Vdd range).
[[nodiscard]] LineFit fit_line_least_squares(const std::function<double(double)>& f, double lo,
                                             double hi, int samples = 512);

/// Minimax (equioscillation) straight-line fit of a function that is convex
/// or concave on [lo, hi].  For such functions the Chebyshev line is
/// characterized by: slope = chord slope, and the intercept centers the error
/// between the chord and the parallel tangent.  Falls back to a dense-sample
/// refinement when the tangency search fails.
[[nodiscard]] LineFit fit_line_minimax(const std::function<double(double)>& f, double lo,
                                       double hi, int samples = 2048);

/// Polynomial least squares; returns coefficients c[0] + c[1] x + ... c[d] x^d.
[[nodiscard]] std::vector<double> fit_polynomial(const std::vector<double>& x,
                                                 const std::vector<double>& y, int degree);

/// Evaluate a polynomial (Horner).
[[nodiscard]] double eval_polynomial(const std::vector<double>& coeffs, double x) noexcept;

/// Fit y = k * x^p (power law) by linear regression in log-log space.
/// Requires strictly positive x and y.
struct PowerLawFit {
  double k = 0.0;
  double p = 0.0;
  [[nodiscard]] double operator()(double x) const noexcept;
};
[[nodiscard]] PowerLawFit fit_power_law(const std::vector<double>& x,
                                        const std::vector<double>& y);

/// Fit y = y0 * exp(x / s) (exponential) by linear regression on log(y);
/// returns {y0, s}.  Used to extract (Io, n) from sub-threshold sweeps.
struct ExponentialFit {
  double y0 = 0.0;
  double scale = 0.0;  ///< the "s" in exp(x/s)
  [[nodiscard]] double operator()(double x) const noexcept;
};
[[nodiscard]] ExponentialFit fit_exponential(const std::vector<double>& x,
                                             const std::vector<double>& y);

}  // namespace optpower
