// ODE integration (explicit RK4 and adaptive RK45) and 1-D quadrature.
//
// The mini-SPICE transient engine uses its own implicit (backward-Euler +
// Newton) stepper for stiff circuits; the explicit integrators here serve
// the lighter-weight device characterization sweeps (e.g. single-node
// inverter discharge used to cross-check the transient engine) and tests.
#pragma once

#include <functional>
#include <vector>

namespace optpower {

/// dy/dt = f(t, y) for a vector state.
using OdeFunction = std::function<std::vector<double>(double, const std::vector<double>&)>;

/// One dense-output sample of an ODE solution.
struct OdeSample {
  double t = 0.0;
  std::vector<double> y;
};

/// Classic fixed-step RK4 from t0 to t1 with `steps` steps.
[[nodiscard]] std::vector<OdeSample> integrate_rk4(const OdeFunction& f, double t0, double t1,
                                                   std::vector<double> y0, int steps);

struct AdaptiveOptions {
  double abs_tol = 1e-9;
  double rel_tol = 1e-7;
  double h_initial = 0.0;   ///< 0 = auto
  double h_min = 1e-18;
  int max_steps = 2000000;
};

/// Adaptive Runge-Kutta-Fehlberg 4(5).  Returns all accepted steps.
/// Throws NumericalError when the step size underflows h_min.
[[nodiscard]] std::vector<OdeSample> integrate_rkf45(const OdeFunction& f, double t0, double t1,
                                                     std::vector<double> y0,
                                                     const AdaptiveOptions& options = {});

/// Composite Simpson quadrature of f over [a, b] with n (even) intervals.
[[nodiscard]] double integrate_simpson(const std::function<double(double)>& f, double a, double b,
                                       int n = 256);

}  // namespace optpower
