// Levenberg-Marquardt nonlinear least squares with numerical Jacobian.
//
// The technology-extraction flow (reproducing the paper's ELDO fitting of
// Io, n, alpha, zeta on inverter chains / ring oscillators) uses this to fit
// the alpha-power delay model to simulated delay-vs-voltage curves.
#pragma once

#include <functional>
#include <vector>

namespace optpower {

struct LevenbergMarquardtOptions {
  int max_iterations = 200;
  double gradient_tol = 1e-12;   ///< stop on small J^T r
  double step_tol = 1e-12;       ///< stop on small parameter update
  double lambda0 = 1e-3;         ///< initial damping
  double lambda_up = 10.0;
  double lambda_down = 0.25;
  double relative_jacobian_step = 1e-6;
};

struct LevenbergMarquardtResult {
  std::vector<double> params;
  double chi2 = 0.0;             ///< final sum of squared residuals
  int iterations = 0;
  bool converged = false;
};

/// Minimize sum_i residuals(p)[i]^2 over p, starting from `p0`.
/// `residuals` must return the same-sized vector on every call.
[[nodiscard]] LevenbergMarquardtResult levenberg_marquardt(
    const std::function<std::vector<double>(const std::vector<double>&)>& residuals,
    std::vector<double> p0, const LevenbergMarquardtOptions& options = {});

}  // namespace optpower
