#include "numeric/fit.h"

#include <cmath>

#include "numeric/linalg.h"
#include "numeric/minimize.h"
#include "util/error.h"

namespace optpower {
namespace {

void fill_errors(LineFit& fit, const std::vector<double>& x, const std::vector<double>& y) {
  double max_err = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - fit(x[i]);
    max_err = std::max(max_err, std::fabs(e));
    sq += e * e;
  }
  fit.max_abs_error = max_err;
  fit.rms_error = x.empty() ? 0.0 : std::sqrt(sq / static_cast<double>(x.size()));
}

std::pair<std::vector<double>, std::vector<double>> sample_function(
    const std::function<double(double)>& f, double lo, double hi, int samples) {
  require(lo < hi, "sample_function: lo must be < hi");
  require(samples >= 2, "sample_function: need >= 2 samples");
  std::vector<double> x(static_cast<std::size_t>(samples)), y(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    x[static_cast<std::size_t>(i)] = lo + (hi - lo) * static_cast<double>(i) / (samples - 1);
    y[static_cast<std::size_t>(i)] = f(x[static_cast<std::size_t>(i)]);
  }
  return {std::move(x), std::move(y)};
}

}  // namespace

LineFit fit_line_least_squares(const std::vector<double>& x, const std::vector<double>& y) {
  require(x.size() == y.size(), "fit_line_least_squares: x/y size mismatch");
  require(x.size() >= 2, "fit_line_least_squares: need >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-300) {
    throw NumericalError("fit_line_least_squares: degenerate x values");
  }
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  fill_errors(fit, x, y);
  return fit;
}

LineFit fit_line_least_squares(const std::function<double(double)>& f, double lo, double hi,
                               int samples) {
  auto [x, y] = sample_function(f, lo, hi, samples);
  return fit_line_least_squares(x, y);
}

LineFit fit_line_minimax(const std::function<double(double)>& f, double lo, double hi,
                         int samples) {
  require(lo < hi, "fit_line_minimax: lo must be < hi");
  // For a convex or concave f, the minimax line has the slope of the chord
  // between the endpoints; the worst error occurs where f' equals that slope
  // (the parallel-tangent point).  The optimal intercept places the line
  // midway between the chord and the tangent.
  const double fl = f(lo), fh = f(hi);
  const double slope = (fh - fl) / (hi - lo);
  // Find the parallel-tangent point by maximizing |f(x) - slope*x|.
  const auto deviation = [&](double x) {
    return -(std::fabs(f(x) - slope * x - (fl - slope * lo)));
  };
  const MinimizeResult tangent = scan_then_refine(deviation, lo, hi, samples);
  const double xt = tangent.x;
  const double chord_intercept = fl - slope * lo;
  const double tangent_intercept = f(xt) - slope * xt;
  LineFit fit;
  fit.slope = slope;
  fit.intercept = 0.5 * (chord_intercept + tangent_intercept);
  auto [xs, ys] = sample_function(f, lo, hi, samples);
  fill_errors(fit, xs, ys);
  return fit;
}

std::vector<double> fit_polynomial(const std::vector<double>& x, const std::vector<double>& y,
                                   int degree) {
  require(x.size() == y.size(), "fit_polynomial: x/y size mismatch");
  require(degree >= 0, "fit_polynomial: degree must be >= 0");
  require(x.size() >= static_cast<std::size_t>(degree) + 1,
          "fit_polynomial: not enough points for requested degree");
  Matrix a(x.size(), static_cast<std::size_t>(degree) + 1);
  for (std::size_t r = 0; r < x.size(); ++r) {
    double p = 1.0;
    for (int c = 0; c <= degree; ++c) {
      a(r, static_cast<std::size_t>(c)) = p;
      p *= x[r];
    }
  }
  return solve_least_squares(a, y);
}

double eval_polynomial(const std::vector<double>& coeffs, double x) noexcept {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

double PowerLawFit::operator()(double x) const noexcept { return k * std::pow(x, p); }

PowerLawFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  require(x.size() == y.size() && x.size() >= 2, "fit_power_law: bad input sizes");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    require(x[i] > 0.0 && y[i] > 0.0, "fit_power_law: x and y must be positive");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LineFit line = fit_line_least_squares(lx, ly);
  PowerLawFit fit;
  fit.p = line.slope;
  fit.k = std::exp(line.intercept);
  return fit;
}

double ExponentialFit::operator()(double x) const noexcept { return y0 * std::exp(x / scale); }

ExponentialFit fit_exponential(const std::vector<double>& x, const std::vector<double>& y) {
  require(x.size() == y.size() && x.size() >= 2, "fit_exponential: bad input sizes");
  std::vector<double> ly(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    require(y[i] > 0.0, "fit_exponential: y must be positive");
    ly[i] = std::log(y[i]);
  }
  const LineFit line = fit_line_least_squares(x, ly);
  if (line.slope == 0.0) throw NumericalError("fit_exponential: zero slope (constant data)");
  ExponentialFit fit;
  fit.scale = 1.0 / line.slope;
  fit.y0 = std::exp(line.intercept);
  return fit;
}

}  // namespace optpower
