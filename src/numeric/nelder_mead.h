// Nelder-Mead downhill simplex minimization in N dimensions.
//
// Used by the calibration module (joint (C, Io_eff) solves for Tables 3/4)
// and as a derivative-free fallback for the technology-extraction fits.
#pragma once

#include <functional>
#include <vector>

namespace optpower {

struct NelderMeadOptions {
  double f_tol = 1e-12;       ///< stop when simplex function spread < f_tol
  double x_tol = 1e-10;       ///< ... or simplex diameter < x_tol
  int max_iterations = 2000;
  double initial_step = 0.1;  ///< relative perturbation used to seed the simplex
};

struct NelderMeadResult {
  std::vector<double> x;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimize `f` starting from `x0`.  The objective may return +inf to mark
/// infeasible points (the simplex will move away from them).
[[nodiscard]] NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f, std::vector<double> x0,
    const NelderMeadOptions& options = {});

}  // namespace optpower
