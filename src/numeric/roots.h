// Scalar root finding: bisection, Brent's method and safeguarded Newton.
//
// Used by the power model to invert the timing constraint (find the Vdd that
// yields a target delay at fixed Vth), by the calibration module, and by the
// mini-SPICE DC operating-point helper.
#pragma once

#include <functional>

namespace optpower {

/// Options shared by the root finders.
struct RootOptions {
  double x_tol = 1e-12;     ///< absolute tolerance on the root location
  double f_tol = 0.0;       ///< treat |f| <= f_tol as converged (0 = off)
  int max_iterations = 200;
};

/// Result of a root search.
struct RootResult {
  double x = 0.0;         ///< root estimate
  double f = 0.0;         ///< residual f(x)
  int iterations = 0;
  bool converged = false;
};

/// Plain bisection on [lo, hi].  Requires f(lo) and f(hi) to have opposite
/// signs; throws NumericalError otherwise.  Always converges (linearly).
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                                const RootOptions& options = {});

/// Brent's method (inverse quadratic interpolation + secant + bisection
/// fallback).  Same bracketing precondition as bisect; superlinear in
/// practice.  This is the workhorse root finder.
[[nodiscard]] RootResult brent_root(const std::function<double(double)>& f, double lo, double hi,
                                    const RootOptions& options = {});

/// Newton's method with numeric derivative, safeguarded to stay inside
/// [lo, hi] by bisection steps when the Newton step leaves the bracket.
[[nodiscard]] RootResult newton_root(const std::function<double(double)>& f, double x0, double lo,
                                     double hi, const RootOptions& options = {});

/// Expand a bracket geometrically around [lo, hi] until f changes sign or
/// `max_expansions` is hit.  Returns true and updates lo/hi on success.
[[nodiscard]] bool expand_bracket(const std::function<double(double)>& f, double& lo, double& hi,
                                  int max_expansions = 60);

}  // namespace optpower
