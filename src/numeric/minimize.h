// One-dimensional minimization: golden-section search, Brent's parabolic
// method, and exhaustive grid scan.
//
// The optimal-working-point search (Section 3 of the paper) is a 1-D
// minimization of Ptot(Vdd) restricted to the timing-constraint curve; the
// 2-D (Vdd, Vth) grid scan cross-checks it the way the paper's "numerical
// calculation over all reasonable Vdd/Vth couples" does.
#pragma once

#include <functional>
#include <vector>

namespace optpower {

/// Options for the 1-D minimizers.
struct MinimizeOptions {
  double x_tol = 1e-10;
  int max_iterations = 200;
};

/// Result of a 1-D minimization.
struct MinimizeResult {
  double x = 0.0;     ///< argmin estimate
  double f = 0.0;     ///< minimum value
  int iterations = 0;
  bool converged = false;
};

/// Golden-section search on [lo, hi]; assumes unimodality inside the bracket.
[[nodiscard]] MinimizeResult golden_section(const std::function<double(double)>& f, double lo,
                                            double hi, const MinimizeOptions& options = {});

/// Brent's minimization (golden section + successive parabolic interpolation).
[[nodiscard]] MinimizeResult brent_minimize(const std::function<double(double)>& f, double lo,
                                            double hi, const MinimizeOptions& options = {});

/// Exhaustive scan over `samples` equally spaced points followed by a local
/// golden-section refinement around the best sample.  Robust to mild
/// non-unimodality (e.g. the flat region near a sequential design's optimum).
[[nodiscard]] MinimizeResult scan_then_refine(const std::function<double(double)>& f, double lo,
                                              double hi, int samples = 200,
                                              const MinimizeOptions& options = {});

/// Result of a 2-D grid minimization.
struct GridMinimum {
  double x = 0.0;
  double y = 0.0;
  double f = 0.0;
  std::size_t ix = 0;
  std::size_t iy = 0;
};

/// Dense 2-D grid minimization over [xlo,xhi] x [ylo,yhi].  Cells where `f`
/// returns a non-finite value (infeasible points) are skipped.  Throws
/// NumericalError when every cell is infeasible.
[[nodiscard]] GridMinimum grid_minimize_2d(const std::function<double(double, double)>& f,
                                           double xlo, double xhi, std::size_t nx, double ylo,
                                           double yhi, std::size_t ny);

}  // namespace optpower
