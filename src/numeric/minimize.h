// One-dimensional minimization: golden-section search, Brent's parabolic
// method, and exhaustive grid scan.
//
// The optimal-working-point search (Section 3 of the paper) is a 1-D
// minimization of Ptot(Vdd) restricted to the timing-constraint curve; the
// 2-D (Vdd, Vth) grid scan cross-checks it the way the paper's "numerical
// calculation over all reasonable Vdd/Vth couples" does.
#pragma once

#include <functional>
#include <vector>

#include "exec/exec.h"

namespace optpower {

/// Options for the 1-D minimizers.
struct MinimizeOptions {
  double x_tol = 1e-10;
  int max_iterations = 200;
};

/// Result of a 1-D minimization.
struct MinimizeResult {
  double x = 0.0;     ///< argmin estimate
  double f = 0.0;     ///< minimum value
  int iterations = 0;
  bool converged = false;
};

/// Golden-section search on [lo, hi]; assumes unimodality inside the bracket.
[[nodiscard]] MinimizeResult golden_section(const std::function<double(double)>& f, double lo,
                                            double hi, const MinimizeOptions& options = {});

/// Brent's minimization (golden section + successive parabolic interpolation).
[[nodiscard]] MinimizeResult brent_minimize(const std::function<double(double)>& f, double lo,
                                            double hi, const MinimizeOptions& options = {});

/// Exhaustive scan over `samples` equally spaced points followed by a local
/// golden-section refinement around the best sample.  Robust to mild
/// non-unimodality (e.g. the flat region near a sequential design's optimum).
[[nodiscard]] MinimizeResult scan_then_refine(const std::function<double(double)>& f, double lo,
                                              double hi, int samples = 200,
                                              const MinimizeOptions& options = {});

/// Parallel overload: the coarse scan is evaluated across `ctx`'s workers
/// (each sample writes its own slot; the argmin pick and the Brent
/// refinement stay serial), so the result is bit-identical to the serial
/// path.  `f` must be safe to call concurrently.
[[nodiscard]] MinimizeResult scan_then_refine(const std::function<double(double)>& f, double lo,
                                              double hi, int samples,
                                              const MinimizeOptions& options,
                                              const ExecContext& ctx);

/// One curve's outcome from scan_then_refine_batch.  `feasible` is false when
/// the per-curve scan_then_refine would have thrown NumericalError (objective
/// non-finite over the whole range, or threw NumericalError itself).
struct BatchMinimizeResult {
  bool feasible = false;
  MinimizeResult result;
};

/// Batched scan-then-refine over many independent curves sharing one [lo, hi]
/// bracket (the per-configuration optimizer sweeps): ALL curves' coarse-scan
/// samples are evaluated in a single flattened parallel epoch over `ctx` -
/// curves x samples tasks instead of one task per curve, so the fan-out stays
/// balanced even when there are fewer curves than workers - and the
/// serial-per-curve Brent refinement round then fans out one task per curve.
/// Slot k is bit-identical to scan_then_refine(fs[k], lo, hi, samples,
/// options) run serially, with NumericalError captured per curve as
/// feasible == false instead of aborting the batch.  Every fs[k] must be
/// safe to call concurrently.
[[nodiscard]] std::vector<BatchMinimizeResult> scan_then_refine_batch(
    const std::vector<std::function<double(double)>>& fs, double lo, double hi, int samples,
    const MinimizeOptions& options = {}, const ExecContext& ctx = {});

/// Result of a 2-D grid minimization.
struct GridMinimum {
  double x = 0.0;
  double y = 0.0;
  double f = 0.0;
  std::size_t ix = 0;
  std::size_t iy = 0;
};

/// Dense 2-D grid minimization over [xlo,xhi] x [ylo,yhi].  Cells where `f`
/// returns a non-finite value (infeasible points) are skipped.  Throws
/// NumericalError when every cell is infeasible.
[[nodiscard]] GridMinimum grid_minimize_2d(const std::function<double(double, double)>& f,
                                           double xlo, double xhi, std::size_t nx, double ylo,
                                           double yhi, std::size_t ny);

/// Parallel overload: rows are scanned across `ctx`'s workers, each keeping
/// its strictly-first row minimum; the cross-row merge walks rows in
/// ascending order with the same strict `<`, so the selected cell (ties
/// included) is identical to the serial scan.  `f` must be safe to call
/// concurrently.
[[nodiscard]] GridMinimum grid_minimize_2d(const std::function<double(double, double)>& f,
                                           double xlo, double xhi, std::size_t nx, double ylo,
                                           double yhi, std::size_t ny, const ExecContext& ctx);

}  // namespace optpower
