#include "numeric/linalg.h"

#include <cmath>

#include "util/error.h"

namespace optpower {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  require(cols_ == rhs.rows_, "Matrix::operator*: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += v * rhs(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  require(cols_ == v.size(), "Matrix::operator*: vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix::operator+=: dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  require(lu_.rows() == lu_.cols(), "LuDecomposition: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest |entry| in this column at/under the diagonal.
    std::size_t pivot = col;
    double best = std::fabs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw NumericalError("LuDecomposition: matrix is singular to working precision");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(pivot, c), lu_(col, c));
      std::swap(perm_[pivot], perm_[col]);
      pivot_sign_ = -pivot_sign_;
    }
    const double diag = lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) / diag;
      lu_(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) lu_(r, c) -= factor * lu_(col, c);
    }
  }
}

std::vector<double> LuDecomposition::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  require(b.size() == n, "LuDecomposition::solve: rhs dimension mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (L has implicit unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  require(b.rows() == lu_.rows(), "LuDecomposition::solve: rhs dimension mismatch");
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const auto sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double det = static_cast<double>(pivot_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Matrix LuDecomposition::inverse() const { return solve(Matrix::identity(lu_.rows())); }

std::vector<double> solve_linear(Matrix a, const std::vector<double>& b) {
  return LuDecomposition(std::move(a)).solve(b);
}

std::vector<double> solve_least_squares(const Matrix& a, const std::vector<double>& b) {
  require(a.rows() == b.size(), "solve_least_squares: dimension mismatch");
  require(a.rows() >= a.cols(), "solve_least_squares: underdetermined system");
  const Matrix at = a.transposed();
  return LuDecomposition(at * a).solve(at * b);
}

}  // namespace optpower
