#include "arch/transforms.h"

#include <cmath>

#include "util/error.h"

namespace optpower {

ArchitectureParams pipeline_params(const ArchitectureParams& arch, int stages,
                                   const PipelineOverheads& ov) {
  validate(arch);
  require(stages >= 2 && stages <= 16, "pipeline_params: stages must lie in [2, 16]");
  ArchitectureParams out = arch;
  out.name = arch.name + "_pipe" + std::to_string(stages);
  out.logic_depth = arch.logic_depth / (1.0 + (stages - 1) * ov.depth_efficiency);
  out.n_cells = arch.n_cells * (1.0 + ov.register_cells_per_stage * (stages - 1));
  out.activity = arch.activity * std::pow(ov.activity_factor_per_stage, stages - 1);
  out.area_um2 = arch.area_um2 * out.n_cells / arch.n_cells;
  validate(out);
  return out;
}

PipelineOverheads diagonal_pipeline_overheads() {
  PipelineOverheads ov;
  ov.depth_efficiency = 1.15;           // deeper cut than horizontal
  ov.activity_factor_per_stage = 0.96;  // ... but glitches keep activity high
  return ov;
}

ArchitectureParams parallelize_params(const ArchitectureParams& arch, int ways,
                                      const ParallelOverheads& ov) {
  validate(arch);
  require(ways == 2 || ways == 4 || ways == 8, "parallelize_params: ways must be 2, 4 or 8");
  ArchitectureParams out = arch;
  out.name = arch.name + "_par" + std::to_string(ways);
  out.n_cells = arch.n_cells * ways * (1.0 + ov.extra_cells_fraction);
  out.logic_depth = arch.logic_depth / ways + ov.mux_depth;
  out.activity = arch.activity / ways * (1.0 + ov.activity_overhead * ways);
  out.area_um2 = arch.area_um2 * out.n_cells / arch.n_cells;
  validate(out);
  return out;
}

ArchitectureParams sequentialize_params(const ArchitectureParams& arch, int cycles,
                                        const SequentialOverheads& ov) {
  validate(arch);
  require(cycles >= 2 && cycles <= 64, "sequentialize_params: cycles must lie in [2, 64]");
  ArchitectureParams out = arch;
  out.name = arch.name + "_seq" + std::to_string(cycles);
  out.n_cells =
      std::max(arch.n_cells * ov.cells_fraction / std::sqrt(static_cast<double>(cycles)),
               ov.control_cells) +
      ov.control_cells;
  // Activity per *throughput* period: the shared datapath toggles every
  // internal cycle, so per-cell activity multiplies by ~cycles.
  out.activity = arch.activity * static_cast<double>(cycles) * 0.5;
  // Each internal cycle carries a fraction of the combinational depth, and
  // all `cycles` of them must fit in one throughput period.
  out.logic_depth = arch.logic_depth * ov.step_depth_fraction * static_cast<double>(cycles);
  out.area_um2 = arch.area_um2 * out.n_cells / arch.n_cells;
  validate(out);
  return out;
}

}  // namespace optpower
