// Architectural parameter vector: what an architecture looks like to the
// power model (Eq. 1/13):  N cells, average activity a, effective logic
// depth LD (relative to the throughput period), and the average equivalent
// cell capacitance C.
#pragma once

#include <string>

namespace optpower {

/// The aggregates the paper's Eq. 13 consumes.  Obtainable either from the
/// published dataset (arch/paper_data.h), from parameter-level transforms
/// (arch/transforms.h), or measured from a synthesized netlist
/// (netlist/ + sim/ + sta/, see report/forward_flow.h).
struct ArchitectureParams {
  std::string name = "unnamed";

  double n_cells = 0.0;       ///< N: number of cells
  double activity = 0.0;      ///< a: switching cells per *throughput* cycle / N
                              ///<    (can exceed 1 for sequential designs)
  double logic_depth = 0.0;   ///< LD: critical path in equivalent gate delays,
                              ///<    normalized to the throughput period
  double cell_cap = 70e-15;   ///< C: average equivalent cell capacitance [F]
  double area_um2 = 0.0;      ///< informational (Table 1 column)

  /// Effective switched capacitance per throughput cycle, N*a*C [F].
  [[nodiscard]] double switched_cap() const noexcept { return n_cells * activity * cell_cap; }
};

/// Validate invariants; throws InvalidArgument on the first violation.
void validate(const ArchitectureParams& arch);

}  // namespace optpower
