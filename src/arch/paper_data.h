// Machine-readable copies of the paper's published tables.
//
// These are the reproduction targets: the benchmark harnesses calibrate
// models against some columns and check the remaining columns as
// predictions (see src/calib and EXPERIMENTS.md).
//
// Source: Schuster, Nagel, Piguet, Farine, "Architectural and Technology
// Influence on the Optimal Total Power Consumption", DATE 2006 - Table 1
// (16-bit multipliers, LL flavor, f = 31.25 MHz), Table 2 (flavors, in
// tech/stm_cmos09.h), Tables 3/4 (Wallace family on ULL/HS).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace optpower {

/// The multiplier families of Section 4.
enum class MultiplierFamily { kRca, kWallace, kSequential };

/// One row of Table 1.  All values refer to the optimal working point at
/// f = 31.25 MHz in the STM LL flavor.  Powers in watts, voltages in volts.
struct Table1Row {
  std::string name;
  MultiplierFamily family;
  int n_cells;            ///< N
  double area_um2;        ///< Area [um^2]
  double activity;        ///< a (vs. throughput frequency)
  double logic_depth;     ///< LDeff
  double vdd_opt;         ///< optimal Vdd [V]
  double vth_opt;         ///< optimal Vth [V]
  double pdyn;            ///< dynamic power at optimum [W]
  double pstat;           ///< static power at optimum [W]
  double ptot;            ///< total power at optimum [W]
  double ptot_eq13;       ///< paper's Eq. 13 estimate [W]
  double eq13_err_pct;    ///< paper's reported error [%]
};

/// One row of Table 3 (ULL) / Table 4 (HS): Wallace family, no power split.
struct WallaceFlavorRow {
  std::string name;
  double vdd_opt;       ///< [V]
  double vth_opt;       ///< [V]
  double ptot;          ///< [W]
  double ptot_eq13;     ///< [W]
  double eq13_err_pct;  ///< [%]
};

/// Operating frequency of every experiment in the paper [Hz].
inline constexpr double kPaperFrequency = 31.25e6;

/// Model constants published in Section 4 for the LL flavor:
/// A = 0.671, B = 0.347, alpha = 1.86, n = 1.33, Vth0 = 0.354, Vdd_nom = 1.2.
struct PaperModelConstants {
  double lin_a = 0.671;
  double lin_b = 0.347;
  double alpha = 1.86;
  double n = 1.33;
  double vth0_nom = 0.354;
  double vdd_nom = 1.2;
};
[[nodiscard]] PaperModelConstants paper_model_constants();

/// The thirteen Table-1 rows in the paper's order.
[[nodiscard]] const std::vector<Table1Row>& paper_table1();

/// Table 3: Wallace family, ULL flavor.
[[nodiscard]] const std::vector<WallaceFlavorRow>& paper_table3_ull();

/// Table 4: Wallace family, HS flavor.
[[nodiscard]] const std::vector<WallaceFlavorRow>& paper_table4_hs();

/// Look up a Table-1 row by name; std::nullopt when absent.
[[nodiscard]] std::optional<Table1Row> find_table1_row(const std::string& name);

}  // namespace optpower
