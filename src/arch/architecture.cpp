#include "arch/architecture.h"

#include "util/error.h"

namespace optpower {

void validate(const ArchitectureParams& arch) {
  require(arch.n_cells > 0.0, "ArchitectureParams '" + arch.name + "': n_cells must be positive");
  require(arch.activity > 0.0, "ArchitectureParams '" + arch.name + "': activity must be positive");
  require(arch.activity < 16.0,
          "ArchitectureParams '" + arch.name + "': activity unreasonably large (>= 16)");
  require(arch.logic_depth >= 1.0,
          "ArchitectureParams '" + arch.name + "': logic_depth must be >= 1 gate");
  require(arch.cell_cap > 0.0, "ArchitectureParams '" + arch.name + "': cell_cap must be positive");
}

}  // namespace optpower
