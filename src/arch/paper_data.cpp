#include "arch/paper_data.h"

#include "util/units.h"

namespace optpower {

PaperModelConstants paper_model_constants() { return {}; }

const std::vector<Table1Row>& paper_table1() {
  // Columns: name, family, N, area, a, LDeff, Vdd, Vth, Pdyn, Pstat, Ptot,
  // Eq13 Ptot, Eq13 err [%].  Powers converted from the paper's uW.
  static const std::vector<Table1Row> kRows = {
      {"RCA", MultiplierFamily::kRca, 608, 11038.0, 0.5056, 61.0, 0.478, 0.213,
       micro(154.86), micro(36.57), micro(191.44), micro(191.09), 0.182},
      {"RCA parallel", MultiplierFamily::kRca, 1256, 22223.0, 0.2624, 30.5, 0.395, 0.233,
       micro(117.20), micro(30.37), micro(147.57), micro(150.29), -1.844},
      {"RCA parallel 4", MultiplierFamily::kRca, 2455, 43735.0, 0.1344, 15.75, 0.359, 0.256,
       micro(100.51), micro(26.39), micro(126.90), micro(129.93), -2.384},
      {"RCA hor.pipe2", MultiplierFamily::kRca, 672, 12458.0, 0.3904, 40.0, 0.423, 0.225,
       micro(100.51), micro(25.27), micro(125.78), micro(127.25), -1.166},
      {"RCA hor.pipe4", MultiplierFamily::kRca, 800, 15298.0, 0.2944, 28.0, 0.394, 0.238,
       micro(81.54), micro(20.94), micro(102.48), micro(104.34), -1.819},
      {"RCA diagpipe2", MultiplierFamily::kRca, 670, 12684.0, 0.4064, 26.0, 0.407, 0.224,
       micro(98.65), micro(25.50), micro(124.15), micro(126.11), -1.581},
      {"RCA diagpipe4", MultiplierFamily::kRca, 812, 15762.0, 0.3456, 14.0, 0.366, 0.233,
       micro(82.83), micro(22.52), micro(105.35), micro(108.04), -2.559},
      {"Wallace", MultiplierFamily::kWallace, 729, 11928.0, 0.2976, 17.0, 0.372, 0.236,
       micro(56.69), micro(15.17), micro(71.86), micro(73.56), -2.376},
      {"Wallace parallel", MultiplierFamily::kWallace, 1465, 23993.0, 0.1568, 8.0, 0.341, 0.256,
       micro(55.64), micro(15.06), micro(70.69), micro(72.58), -2.676},
      {"Wallace par4", MultiplierFamily::kWallace, 2939, 47271.0, 0.0832, 4.75, 0.333, 0.277,
       micro(58.04), micro(15.26), micro(73.30), micro(75.01), -2.335},
      {"Sequential", MultiplierFamily::kSequential, 290, 4954.0, 2.9152, 224.0, 0.824, 0.173,
       micro(1134.00), micro(184.48), micro(1318.48), micro(1318.94), -0.035},
      {"Seq4_16", MultiplierFamily::kSequential, 351, 6132.0, 0.2464, 120.0, 0.711, 0.228,
       micro(184.69), micro(31.59), micro(216.29), micro(212.62), 1.696},
      {"Seq parallel", MultiplierFamily::kSequential, 322, 7276.0, 1.3280, 168.0, 0.817, 0.192,
       micro(888.19), micro(142.07), micro(1030.26), micro(1028.97), 0.124},
  };
  return kRows;
}

const std::vector<WallaceFlavorRow>& paper_table3_ull() {
  static const std::vector<WallaceFlavorRow> kRows = {
      {"Wallace", 0.409, 0.231, micro(84.79), micro(86.03), -1.47},
      {"Wallace parallel", 0.363, 0.253, micro(76.24), micro(78.02), -2.33},
      {"Wallace par4", 0.360, 0.281, micro(80.61), micro(82.21), -1.98},
  };
  return kRows;
}

const std::vector<WallaceFlavorRow>& paper_table4_hs() {
  static const std::vector<WallaceFlavorRow> kRows = {
      {"Wallace", 0.398, 0.328, micro(99.56), micro(100.33), -0.78},
      {"Wallace parallel", 0.383, 0.349, micro(110.27), micro(111.39), -1.01},
      {"Wallace par4", 0.390, 0.376, micro(118.89), micro(119.99), -0.93},
  };
  return kRows;
}

std::optional<Table1Row> find_table1_row(const std::string& name) {
  for (const auto& row : paper_table1()) {
    if (row.name == name) return row;
  }
  return std::nullopt;
}

}  // namespace optpower
