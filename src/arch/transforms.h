// Parameter-level architecture transforms: the Section-4 transformations
// expressed directly on the (N, a, LD, C) aggregates, for what-if studies
// without building netlists.  Default overhead factors are fitted to the
// ratios observable in the paper's Table 1.
#pragma once

#include "arch/architecture.h"

namespace optpower {

/// Pipelining: cuts the logic depth (not exactly by the stage count), adds
/// register cells, and changes activity (horizontal cuts *reduce* glitching;
/// diagonal cuts increase path-delay spread and raise it).
struct PipelineOverheads {
  double depth_efficiency = 0.45;     ///< LD' = LD / (1 + (stages-1)*eff)
                                      ///< (0.45 fits Table 1: 61 -> 40/28 for 2/4 stages)
  double register_cells_per_stage = 0.105;  ///< N' = N * (1 + this*(stages-1))
  double activity_factor_per_stage = 0.85;  ///< a' = a * factor^(stages-1)
};
[[nodiscard]] ArchitectureParams pipeline_params(const ArchitectureParams& arch, int stages,
                                                 const PipelineOverheads& ov = {});

/// Diagonal-pipeline defaults: deeper depth cut, glitch-driven activity gain
/// (Table 1: diagpipe4 has LD 14 vs hor.pipe4's 28, but activity 0.346 vs 0.294).
[[nodiscard]] PipelineOverheads diagonal_pipeline_overheads();

/// Parallelization by replication + multiplexing: LD' = LD/ways + mux depth,
/// N' slightly above ways*N (mux/control), a' ~ a/ways + mux activity.
struct ParallelOverheads {
  double extra_cells_fraction = 0.033;  ///< N' = ways*N*(1+this)
  double mux_depth = 0.25;              ///< LD' = LD/ways * (1 + this/ways...)
  double activity_overhead = 0.04;      ///< a' = a/ways * (1 + this*ways)
};
[[nodiscard]] ArchitectureParams parallelize_params(const ArchitectureParams& arch, int ways,
                                                    const ParallelOverheads& ov = {});

/// Sequentialization: one shared datapath reused over `cycles` clock cycles
/// per result.  N shrinks dramatically; the *effective* logic depth and the
/// throughput-normalized activity explode (Table 1's Sequential row).
struct SequentialOverheads {
  double cells_fraction = 0.4;     ///< N' = N * this / sqrt(cycles)... coarse
  double control_cells = 40.0;     ///< counter/mux control overhead
  double step_depth_fraction = 0.25;  ///< per-cycle LD vs combinational LD
};
[[nodiscard]] ArchitectureParams sequentialize_params(const ArchitectureParams& arch, int cycles,
                                                      const SequentialOverheads& ov = {});

}  // namespace optpower
