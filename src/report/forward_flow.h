// The end-to-end forward characterization flow (the paper's Section-4
// methodology with our substrates): generate a multiplier netlist, measure
// N/C from the cell library, activity from delay-annotated simulation, LDeff
// from STA, then find the optimal (Vdd, Vth) working point.
//
// Absolute numbers differ from the paper's ST-synthesis flow (different cell
// library, different stimulus); the orderings and ratios are the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "arch/architecture.h"
#include "exec/exec.h"
#include "mult/factory.h"
#include "power/closed_form.h"
#include "power/optimum.h"
#include "sim/activity.h"
#include "tech/technology.h"

namespace optpower {

/// Where the switching-activity factor "a" comes from.  Each source maps
/// onto one ActivityEngine of the sim/activity.h seam.
enum class ActivitySource {
  /// Random-stimulus event simulation (sim/activity.h): the paper's
  /// ModelSIM-style path, glitch-accurate under kCellDepth delays.
  kEventSim,
  /// 512-lane bit-parallel Monte-Carlo (sim/bitsim.h): the same stimulus
  /// distribution evaluated 512 vectors per pass under any `delay_mode` -
  /// glitch-accurate under kCellDepth, lane-for-lane identical to kEventSim.
  kBitParallel,
  /// Exact zero-delay signal-probability propagation through BDDs
  /// (bdd/symbolic.h): no stimulus, no variance, no glitch power.  Keep the
  /// width small (<= ~10): per-net BDDs of wide multipliers are the textbook
  /// exponential case and the node budget will throw.
  kBddExact,
};

/// Knobs of the forward flow.
struct ForwardFlowOptions {
  int width = 16;
  int activity_vectors = 96;
  std::uint64_t seed = 0x5eed0001;
  SimDelayMode delay_mode = SimDelayMode::kCellDepth;
  /// Activity extraction path; kEventSim and kBitParallel honor
  /// `delay_mode`, kBddExact ignores `seed`/`delay_mode` entirely (it
  /// computes the exact zero-delay expectation).
  ActivitySource activity_source = ActivitySource::kEventSim;
  /// Effective per-cell off-current scale: our average cell leaks this many
  /// reference-transistor Io's (wide/stacked cells leak more than the unit
  /// inverter; the Table-1 calibration infers ~15-20x for the ST library).
  double io_per_cell_scale = 16.0;
  /// zeta scale from the single-inverter value to the average library cell.
  double zeta_cell_scale = 1.0;
};

/// Everything the flow measured for one architecture.
struct ForwardCharacterization {
  std::string name;
  ArchitectureParams arch;          ///< N, a, LDeff, C as measured
  ActivityMeasurement activity;
  double ld_per_cycle = 0.0;        ///< STA critical path per clock cycle
  int cycles_per_result = 1;
  int ways = 1;
};

/// One forward-flow result row.
struct ForwardResult {
  ForwardCharacterization character;
  OperatingPoint optimum;           ///< numerical optimum at `frequency`
  ClosedFormResult closed_form;     ///< Eq. 13 at the same point
};

/// Characterize one generated multiplier (no optimization).
[[nodiscard]] ForwardCharacterization characterize_multiplier(
    const GeneratedMultiplier& gen, const ForwardFlowOptions& options = {});

/// Full flow for one architecture name on a technology at `frequency`.
[[nodiscard]] ForwardResult run_forward_flow(const std::string& arch_name, const Technology& tech,
                                             double frequency,
                                             const ForwardFlowOptions& options = {});

/// Full flow for all thirteen architectures.
[[nodiscard]] std::vector<ForwardResult> run_forward_flow_all(
    const Technology& tech, double frequency, const ForwardFlowOptions& options = {});

/// Parallel overload: one architecture (netlist build + simulation + STA +
/// optimization, all private state) per task, fanned out over `ctx`.  Row
/// order and every number match the serial flow exactly.
[[nodiscard]] std::vector<ForwardResult> run_forward_flow_all(const Technology& tech,
                                                              double frequency,
                                                              const ForwardFlowOptions& options,
                                                              const ExecContext& ctx);

}  // namespace optpower
