#include "report/forward_flow.h"

#include "sta/sta.h"
#include "util/error.h"

namespace optpower {

ForwardCharacterization characterize_multiplier(const GeneratedMultiplier& gen,
                                                const ForwardFlowOptions& options) {
  ForwardCharacterization c;
  c.name = gen.name;
  c.cycles_per_result = gen.cycles_per_result;
  c.ways = gen.ways;

  const NetlistStats stats = gen.netlist.stats();
  const TimingReport timing = analyze_timing(gen.netlist);
  c.ld_per_cycle = timing.critical_path_units;

  // Every source runs through the ActivityEngine seam: same schedule, same
  // ActivityMeasurement, different extraction engine.
  ActivityOptions act;
  act.num_vectors = options.activity_vectors;
  act.cycles_per_vector = gen.cycles_per_result;
  act.seed = options.seed;
  act.delay_mode = options.delay_mode;
  switch (options.activity_source) {
    case ActivitySource::kEventSim:
      act.engine = ActivityEngine::kScalarEvent;
      break;
    case ActivitySource::kBitParallel:
      act.engine = ActivityEngine::kBitParallel;
      break;
    case ActivitySource::kBddExact:
      act.engine = ActivityEngine::kBddExact;  // seed/delay_mode ignored
      break;
  }
  c.activity = measure_activity(gen.netlist, act);

  c.arch.name = gen.name;
  c.arch.n_cells = static_cast<double>(stats.num_cells);
  c.arch.activity = c.activity.activity;
  c.arch.logic_depth =
      effective_logic_depth(timing.critical_path_units, gen.cycles_per_result, gen.ways);
  c.arch.cell_cap = stats.avg_cell_cap_f;
  c.arch.area_um2 = stats.area_um2;
  validate(c.arch);
  return c;
}

ForwardResult run_forward_flow(const std::string& arch_name, const Technology& tech,
                               double frequency, const ForwardFlowOptions& options) {
  require(frequency > 0.0, "run_forward_flow: frequency must be positive");
  const GeneratedMultiplier gen = build_multiplier(arch_name, options.width);
  ForwardResult result;
  result.character = characterize_multiplier(gen, options);

  Technology scaled = tech;
  scaled.io = tech.io * options.io_per_cell_scale;
  scaled.zeta = tech.zeta * options.zeta_cell_scale;
  const PowerModel model(scaled, result.character.arch);
  result.optimum = find_optimum(model, frequency).point;
  result.closed_form = closed_form_optimum(model, frequency);
  return result;
}

std::vector<ForwardResult> run_forward_flow_all(const Technology& tech, double frequency,
                                                const ForwardFlowOptions& options) {
  return run_forward_flow_all(tech, frequency, options, ExecContext());
}

std::vector<ForwardResult> run_forward_flow_all(const Technology& tech, double frequency,
                                                const ForwardFlowOptions& options,
                                                const ExecContext& ctx) {
  const std::vector<std::string>& names = multiplier_names();
  return parallel_map<ForwardResult>(ctx, names.size(), [&](std::size_t k) {
    return run_forward_flow(names[k], tech, frequency, options);
  });
}

}  // namespace optpower
