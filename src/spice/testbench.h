// Characterization testbenches on the mini-SPICE engine: the measurement
// half of the paper's "technology parameters ... estimated with Spice
// simulations for inverter cells / fitting delays on inverter chains ring
// oscillators".  The data they produce feeds calib/tech_extract.h.
#pragma once

#include <vector>

#include "device/mosfet.h"
#include "spice/circuit.h"

namespace optpower {

/// Configuration of the standard inverter used by the testbenches.
struct InverterConfig {
  MosfetParams nmos;          ///< PMOS is mirrored from this
  double load_cap = 8e-15;    ///< output load per stage [F]
  double vdd = 1.2;
};

/// Average stage delay of a `stages`-long inverter chain at supply `vdd`,
/// measured from a step input by 50%-crossing times of successive stages
/// (the first stage is excluded as the input edge is ideal).
[[nodiscard]] double inverter_chain_delay(const InverterConfig& config, int stages, double vdd,
                                          double t_end = 0.0, double dt = 0.0);

/// Ring-oscillator stage delay: an odd ring of `stages` inverters is kicked
/// from an asymmetric initial state; the oscillation period T at the first
/// node gives tgate = T / (2 * stages).
[[nodiscard]] double ring_oscillator_stage_delay(const InverterConfig& config, int stages,
                                                 double vdd);

/// Sweep of delay vs supply voltage: the input data for the (zeta, alpha)
/// delay fit of calib/tech_extract.h.
struct DelaySweep {
  std::vector<double> vdd;
  std::vector<double> tgate;
};
[[nodiscard]] DelaySweep measure_delay_vs_vdd(const InverterConfig& config,
                                              const std::vector<double>& supplies,
                                              int stages = 7);

/// Sub-threshold transfer sweep of a single NMOS (drain at vdd):
/// Ids(vgs) for vgs in [lo, hi], measured as the drain-supply current.
struct SubthresholdSweep {
  std::vector<double> vgs;
  std::vector<double> ids;
};
[[nodiscard]] SubthresholdSweep measure_subthreshold(const MosfetParams& nmos, double vdd,
                                                     double lo, double hi, int points = 25);

/// Static leakage of one inverter at input low (NMOS off), measured as the
/// current delivered by the supply source at the DC operating point.
[[nodiscard]] double measure_inverter_leakage(const InverterConfig& config, double vdd);

}  // namespace optpower
