#include "spice/testbench.h"

#include <cmath>

#include "util/error.h"

namespace optpower {
namespace {

/// Estimate a sensible transient window from the device's own scales: a few
/// RC-like constants at the weakest expected drive.
double default_window(const InverterConfig& config, double vdd) {
  const Mosfet ref(config.nmos);
  const double vth = config.nmos.vth0;
  const double overdrive = std::max(vdd - vth, 0.05);
  const double ion = ref.saturation_current(overdrive);
  const double tau = config.load_cap * vdd / std::max(ion, 1e-12);
  return 40.0 * tau;
}

/// Linear interpolation of the time at which `node` crosses `level`.
double crossing_time(const Circuit::TransientResult& tr, NodeId node, double level, bool rising) {
  for (std::size_t i = 1; i < tr.time.size(); ++i) {
    const double v0 = tr.voltages[i - 1][static_cast<std::size_t>(node)];
    const double v1 = tr.voltages[i][static_cast<std::size_t>(node)];
    const bool crossed = rising ? (v0 < level && v1 >= level) : (v0 > level && v1 <= level);
    if (crossed) {
      const double frac = (level - v0) / (v1 - v0);
      return tr.time[i - 1] + frac * (tr.time[i] - tr.time[i - 1]);
    }
  }
  throw NumericalError("crossing_time: node never crossed the level");
}

struct ChainCircuit {
  Circuit circuit;
  NodeId vdd_node = 0;
  NodeId input = 0;
  std::vector<NodeId> stage_outputs;
};

ChainCircuit build_chain(const InverterConfig& config, int stages, double vdd,
                         const Waveform& input_waveform) {
  ChainCircuit cc;
  cc.vdd_node = cc.circuit.add_node("vdd");
  cc.circuit.add_dc_source(cc.vdd_node, vdd);
  cc.input = cc.circuit.add_node("in");
  cc.circuit.add_voltage_source(cc.input, input_waveform);
  const MosfetParams pmos = complementary_pmos(config.nmos);
  NodeId prev = cc.input;
  for (int s = 0; s < stages; ++s) {
    const NodeId out = cc.circuit.add_node("s" + std::to_string(s));
    cc.circuit.add_nmos(out, prev, kGround, config.nmos);
    cc.circuit.add_pmos(out, prev, cc.vdd_node, pmos);
    cc.circuit.add_capacitor(out, kGround, config.load_cap);
    cc.stage_outputs.push_back(out);
    prev = out;
  }
  return cc;
}

}  // namespace

double inverter_chain_delay(const InverterConfig& config, int stages, double vdd, double t_end,
                            double dt) {
  require(stages >= 3, "inverter_chain_delay: need >= 3 stages");
  if (t_end <= 0.0) t_end = default_window(config, vdd) * stages / 4.0;
  if (dt <= 0.0) dt = t_end / 4000.0;

  // Step input after a short settle time.
  const double t_step = t_end * 0.05;
  ChainCircuit cc = build_chain(config, stages, vdd,
                                [t_step, vdd](double t) { return t < t_step ? 0.0 : vdd; });
  // Seed the transient with the logically-propagated rail pattern (in = 0 ->
  // alternating high/low): the exact DC differs only by leakage-level mV, and
  // Newton converges reliably from it (an all-zeros guess does not for
  // multi-stage chains).
  std::vector<double> initial(static_cast<std::size_t>(cc.circuit.num_nodes()), 0.0);
  initial[static_cast<std::size_t>(cc.vdd_node)] = vdd;
  initial[static_cast<std::size_t>(cc.input)] = 0.0;
  for (std::size_t s = 0; s < cc.stage_outputs.size(); ++s) {
    initial[static_cast<std::size_t>(cc.stage_outputs[s])] = (s % 2 == 0) ? vdd : 0.0;
  }
  const auto tr = cc.circuit.transient(t_end, dt, initial);

  // 50% crossings: stage k switches alternately falling/rising.
  const double mid = vdd / 2.0;
  std::vector<double> crossings;
  for (std::size_t s = 0; s < cc.stage_outputs.size(); ++s) {
    const bool rising = (s % 2 == 1);  // input rises -> stage0 falls, stage1 rises...
    crossings.push_back(crossing_time(tr, cc.stage_outputs[s], mid, rising));
  }
  // Average of successive stage-to-stage deltas, excluding the first stage.
  double sum = 0.0;
  int count = 0;
  for (std::size_t s = 1; s < crossings.size(); ++s) {
    const double d = crossings[s] - crossings[s - 1];
    require(d > 0.0, "inverter_chain_delay: non-causal crossing order");
    sum += d;
    ++count;
  }
  return sum / count;
}

double ring_oscillator_stage_delay(const InverterConfig& config, int stages, double vdd) {
  require(stages >= 3 && stages % 2 == 1, "ring_oscillator_stage_delay: stages must be odd >= 3");
  Circuit c;
  const NodeId vdd_node = c.add_node("vdd");
  c.add_dc_source(vdd_node, vdd);
  const MosfetParams pmos = complementary_pmos(config.nmos);
  std::vector<NodeId> nodes;
  for (int s = 0; s < stages; ++s) nodes.push_back(c.add_node("r" + std::to_string(s)));
  for (int s = 0; s < stages; ++s) {
    const NodeId in = nodes[static_cast<std::size_t>((s + stages - 1) % stages)];
    const NodeId out = nodes[static_cast<std::size_t>(s)];
    c.add_nmos(out, in, kGround, config.nmos);
    c.add_pmos(out, in, vdd_node, pmos);
    c.add_capacitor(out, kGround, config.load_cap);
  }
  // Kick from an alternating pattern (the odd ring has no stable DC state
  // matching it, so oscillation starts immediately).
  std::vector<double> initial(static_cast<std::size_t>(c.num_nodes()), 0.0);
  initial[static_cast<std::size_t>(vdd_node)] = vdd;
  for (int s = 0; s < stages; ++s) {
    initial[static_cast<std::size_t>(nodes[static_cast<std::size_t>(s)])] =
        (s % 2 == 0) ? vdd : 0.0;
  }
  const double window = default_window(config, vdd) * stages;
  const auto tr = c.transient(window, window / 20000.0, initial);

  // Period from successive rising crossings of node 0 (skip the start-up).
  const double mid = vdd / 2.0;
  std::vector<double> rising;
  for (std::size_t i = 1; i < tr.time.size(); ++i) {
    const double v0 = tr.voltages[i - 1][static_cast<std::size_t>(nodes[0])];
    const double v1 = tr.voltages[i][static_cast<std::size_t>(nodes[0])];
    if (v0 < mid && v1 >= mid) {
      const double frac = (mid - v0) / (v1 - v0);
      rising.push_back(tr.time[i - 1] + frac * (tr.time[i] - tr.time[i - 1]));
    }
  }
  require(rising.size() >= 3, "ring_oscillator_stage_delay: too few oscillation periods captured");
  const double period = rising.back() - rising[rising.size() - 2];
  return period / (2.0 * stages);
}

DelaySweep measure_delay_vs_vdd(const InverterConfig& config, const std::vector<double>& supplies,
                                int stages) {
  require(!supplies.empty(), "measure_delay_vs_vdd: no supplies given");
  DelaySweep sweep;
  for (const double vdd : supplies) {
    require(vdd > config.nmos.vth0, "measure_delay_vs_vdd: supply below threshold");
    sweep.vdd.push_back(vdd);
    sweep.tgate.push_back(inverter_chain_delay(config, stages, vdd));
  }
  return sweep;
}

SubthresholdSweep measure_subthreshold(const MosfetParams& nmos, double vdd, double lo, double hi,
                                       int points) {
  require(points >= 3 && lo < hi, "measure_subthreshold: bad sweep range");
  SubthresholdSweep sweep;
  for (int i = 0; i < points; ++i) {
    const double vgs = lo + (hi - lo) * static_cast<double>(i) / (points - 1);
    Circuit c;
    const NodeId drain = c.add_node("d");
    const NodeId gate = c.add_node("g");
    c.add_dc_source(drain, vdd);
    c.add_dc_source(gate, vgs);
    c.add_nmos(drain, gate, kGround, nmos);
    const auto v = c.dc_operating_point();
    sweep.vgs.push_back(vgs);
    sweep.ids.push_back(c.source_current(drain, v));
  }
  return sweep;
}

double measure_inverter_leakage(const InverterConfig& config, double vdd) {
  Circuit c;
  const NodeId vdd_node = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.add_dc_source(vdd_node, vdd);
  c.add_dc_source(in, 0.0);  // NMOS off; leakage flows through it
  c.add_nmos(out, in, kGround, config.nmos);
  c.add_pmos(out, in, vdd_node, complementary_pmos(config.nmos));
  std::vector<double> guess(static_cast<std::size_t>(c.num_nodes()), 0.0);
  guess[static_cast<std::size_t>(vdd_node)] = vdd;
  guess[static_cast<std::size_t>(out)] = vdd;  // PMOS pulls the output high
  const auto v = c.dc_operating_point(0.0, guess);
  return c.source_current(vdd_node, v);
}

}  // namespace optpower
