// Mini circuit simulator: nodal analysis with ideal voltage sources,
// capacitors, resistors and the analytic MOSFET of src/device.
//
// This is the ELDO/Spice stand-in for the paper's technology
// characterization: "All technology parameters have been estimated with
// Spice simulations for inverter cells" / "fitting delays on inverter
// chains ring oscillators".  The solver is deliberately small - tens of
// nodes - but real: backward-Euler integration with a damped Newton
// iteration and a dense-LU linear solve per step.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "device/mosfet.h"

namespace optpower {

using NodeId = int;
inline constexpr NodeId kGround = 0;

/// A stimulus: node voltage as a function of time (for driven nodes).
using Waveform = std::function<double(double)>;

/// The circuit under construction.
class Circuit {
 public:
  Circuit();

  /// New floating node; returns its id (ground is node 0).
  NodeId add_node(const std::string& name = "");

  /// Ideal voltage source fixing `node` to waveform(t).
  void add_voltage_source(NodeId node, Waveform waveform);
  /// DC convenience.
  void add_dc_source(NodeId node, double volts);

  void add_capacitor(NodeId a, NodeId b, double farads);
  void add_resistor(NodeId a, NodeId b, double ohms);

  /// NMOS: current drain->source when on.  PMOS: source->drain.
  void add_nmos(NodeId drain, NodeId gate, NodeId source, MosfetParams params);
  void add_pmos(NodeId drain, NodeId gate, NodeId source, MosfetParams params);

  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(node_names_.size()); }
  [[nodiscard]] const std::string& node_name(NodeId n) const {
    return node_names_[static_cast<std::size_t>(n)];
  }

  // --- analysis -------------------------------------------------------------

  /// DC operating point at time `t` (sources evaluated at t).  `initial`
  /// seeds Newton (empty = zeros).  Throws NumericalError on divergence.
  [[nodiscard]] std::vector<double> dc_operating_point(double t = 0.0,
                                                       std::vector<double> initial = {}) const;

  /// Transient: backward Euler with fixed step `dt` from a DC start (or the
  /// caller-provided initial node voltages).  Returns node voltages per
  /// step, sample[i] = state at t = i*dt.
  struct TransientResult {
    std::vector<double> time;
    std::vector<std::vector<double>> voltages;  ///< [step][node]
  };
  [[nodiscard]] TransientResult transient(double t_end, double dt,
                                          std::vector<double> initial = {}) const;

  /// Current delivered by the source fixing `node` at the operating point
  /// `v` (positive = flowing out of the source into the circuit).  Used to
  /// "measure" leakage the way a supply ammeter would.
  [[nodiscard]] double source_current(NodeId node, const std::vector<double>& v,
                                      double t = 0.0) const;

 private:
  struct Vsrc {
    NodeId node;
    Waveform waveform;
  };
  struct Cap {
    NodeId a, b;
    double c;
  };
  struct Res {
    NodeId a, b;
    double r;
  };
  struct Mos {
    NodeId d, g, s;
    Mosfet model;
    bool is_pmos;
  };

  /// Sum of static (non-capacitive) element currents INTO each node.
  void static_currents(const std::vector<double>& v, std::vector<double>& into) const;
  /// Damped Newton solve of F(v) = 0.  When inv_h > 0, backward-Euler
  /// capacitor companions against `v_old` are included in F.
  std::vector<double> solve_newton(double t, std::vector<double> v, double inv_h,
                                   const std::vector<double>& v_old) const;

  std::vector<std::string> node_names_;
  std::vector<Vsrc> sources_;
  std::vector<Cap> caps_;
  std::vector<Res> resistors_;
  std::vector<Mos> mosfets_;
  std::vector<char> is_driven_;  // per node
};

}  // namespace optpower
