#include "spice/circuit.h"

#include <algorithm>
#include <cmath>

#include "numeric/linalg.h"
#include "util/error.h"

namespace optpower {
namespace {

/// Conductance to ground added to every node for well-posedness (gmin).
constexpr double kGmin = 1e-12;

}  // namespace

Circuit::Circuit() {
  node_names_.push_back("gnd");
  is_driven_.push_back(1);  // ground is fixed at 0 V
}

NodeId Circuit::add_node(const std::string& name) {
  node_names_.push_back(name.empty() ? "n" + std::to_string(node_names_.size()) : name);
  is_driven_.push_back(0);
  return static_cast<NodeId>(node_names_.size() - 1);
}

void Circuit::add_voltage_source(NodeId node, Waveform waveform) {
  require(node > 0 && node < num_nodes(), "Circuit::add_voltage_source: bad node");
  require(!is_driven_[static_cast<std::size_t>(node)],
          "Circuit::add_voltage_source: node already driven");
  sources_.push_back({node, std::move(waveform)});
  is_driven_[static_cast<std::size_t>(node)] = 1;
}

void Circuit::add_dc_source(NodeId node, double volts) {
  add_voltage_source(node, [volts](double) { return volts; });
}

void Circuit::add_capacitor(NodeId a, NodeId b, double farads) {
  require(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(),
          "Circuit::add_capacitor: bad node");
  require(farads > 0.0, "Circuit::add_capacitor: capacitance must be positive");
  caps_.push_back({a, b, farads});
}

void Circuit::add_resistor(NodeId a, NodeId b, double ohms) {
  require(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(),
          "Circuit::add_resistor: bad node");
  require(ohms > 0.0, "Circuit::add_resistor: resistance must be positive");
  resistors_.push_back({a, b, ohms});
}

void Circuit::add_nmos(NodeId drain, NodeId gate, NodeId source, MosfetParams params) {
  require(drain >= 0 && gate >= 0 && source >= 0 && drain < num_nodes() && gate < num_nodes() &&
              source < num_nodes(),
          "Circuit::add_nmos: bad node");
  params.polarity = MosPolarity::kNmos;
  mosfets_.push_back({drain, gate, source, Mosfet(params), false});
}

void Circuit::add_pmos(NodeId drain, NodeId gate, NodeId source, MosfetParams params) {
  require(drain >= 0 && gate >= 0 && source >= 0 && drain < num_nodes() && gate < num_nodes() &&
              source < num_nodes(),
          "Circuit::add_pmos: bad node");
  params.polarity = MosPolarity::kPmos;
  mosfets_.push_back({drain, gate, source, Mosfet(params), true});
}

void Circuit::static_currents(const std::vector<double>& v, std::vector<double>& into) const {
  std::fill(into.begin(), into.end(), 0.0);
  for (const auto& r : resistors_) {
    const double i = (v[static_cast<std::size_t>(r.a)] - v[static_cast<std::size_t>(r.b)]) / r.r;
    into[static_cast<std::size_t>(r.a)] -= i;
    into[static_cast<std::size_t>(r.b)] += i;
  }
  for (const auto& m : mosfets_) {
    const double vd = v[static_cast<std::size_t>(m.d)];
    const double vg = v[static_cast<std::size_t>(m.g)];
    const double vs = v[static_cast<std::size_t>(m.s)];
    double id;  // current drain -> source (NMOS convention)
    if (!m.is_pmos) {
      id = m.model.drain_current(vg - vs, vd - vs);
    } else {
      // PMOS mirrored: conducts when gate below source; current source->drain.
      id = -m.model.drain_current(vs - vg, vs - vd);
    }
    into[static_cast<std::size_t>(m.d)] -= id;
    into[static_cast<std::size_t>(m.s)] += id;
  }
  // gmin to ground.
  for (std::size_t n = 1; n < into.size(); ++n) into[n] -= kGmin * v[n];
}

std::vector<double> Circuit::solve_newton(double t, std::vector<double> v, double inv_h,
                                          const std::vector<double>& v_old) const {
  const std::size_t nn = static_cast<std::size_t>(num_nodes());
  require(v.size() == nn, "Circuit::solve_newton: bad initial vector");

  // Pin driven nodes.
  v[0] = 0.0;
  for (const auto& s : sources_) v[static_cast<std::size_t>(s.node)] = s.waveform(t);

  // Free-node index map.
  std::vector<int> free_index(nn, -1);
  std::vector<std::size_t> free_nodes;
  for (std::size_t n = 1; n < nn; ++n) {
    if (!is_driven_[n]) {
      free_index[n] = static_cast<int>(free_nodes.size());
      free_nodes.push_back(n);
    }
  }
  const std::size_t nf = free_nodes.size();
  if (nf == 0) return v;

  std::vector<double> into(nn), residual(nf);
  const auto compute_residual = [&](const std::vector<double>& vv, std::vector<double>& out) {
    static_currents(vv, into);
    if (inv_h > 0.0) {
      for (const auto& c : caps_) {
        const double dv_new = vv[static_cast<std::size_t>(c.a)] - vv[static_cast<std::size_t>(c.b)];
        const double dv_old =
            v_old[static_cast<std::size_t>(c.a)] - v_old[static_cast<std::size_t>(c.b)];
        const double i = c.c * inv_h * (dv_new - dv_old);  // current a -> b through cap
        into[static_cast<std::size_t>(c.a)] -= i;
        into[static_cast<std::size_t>(c.b)] += i;
      }
    }
    for (std::size_t k = 0; k < nf; ++k) out[k] = into[free_nodes[k]];
  };

  constexpr int kMaxIterations = 200;
  constexpr double kVoltageStepLimit = 0.25;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    compute_residual(v, residual);
    double worst = 0.0;
    for (const double r : residual) worst = std::max(worst, std::fabs(r));

    // Numeric Jacobian d residual / d free voltage.
    Matrix jac(nf, nf);
    std::vector<double> r_pert(nf);
    for (std::size_t j = 0; j < nf; ++j) {
      const double save = v[free_nodes[j]];
      const double h = 1e-7;
      v[free_nodes[j]] = save + h;
      compute_residual(v, r_pert);
      v[free_nodes[j]] = save;
      for (std::size_t i = 0; i < nf; ++i) jac(i, j) = (r_pert[i] - residual[i]) / h;
    }

    std::vector<double> step;
    try {
      std::vector<double> neg(nf);
      for (std::size_t i = 0; i < nf; ++i) neg[i] = -residual[i];
      step = solve_linear(jac, neg);
    } catch (const NumericalError&) {
      throw NumericalError("Circuit::solve_newton: singular Jacobian at t=" + std::to_string(t));
    }
    double step_norm = 0.0;
    for (std::size_t k = 0; k < nf; ++k) {
      const double limited = std::clamp(step[k], -kVoltageStepLimit, kVoltageStepLimit);
      v[free_nodes[k]] += limited;
      step_norm = std::max(step_norm, std::fabs(limited));
    }
    if (step_norm < 1e-10 && worst < 1e-9) return v;
  }
  throw NumericalError("Circuit::solve_newton: Newton failed to converge at t=" +
                       std::to_string(t));
}

std::vector<double> Circuit::dc_operating_point(double t, std::vector<double> initial) const {
  std::vector<double> v =
      initial.empty() ? std::vector<double>(static_cast<std::size_t>(num_nodes()), 0.0)
                      : std::move(initial);
  require(v.size() == static_cast<std::size_t>(num_nodes()),
          "Circuit::dc_operating_point: bad initial vector size");
  return solve_newton(t, std::move(v), 0.0, {});
}

Circuit::TransientResult Circuit::transient(double t_end, double dt,
                                            std::vector<double> initial) const {
  require(t_end > 0.0 && dt > 0.0 && dt < t_end, "Circuit::transient: bad time range");
  TransientResult out;
  std::vector<double> v = initial.empty() ? dc_operating_point(0.0) : std::move(initial);
  require(v.size() == static_cast<std::size_t>(num_nodes()),
          "Circuit::transient: bad initial vector size");
  out.time.push_back(0.0);
  out.voltages.push_back(v);
  const double inv_h = 1.0 / dt;
  const int steps = static_cast<int>(std::ceil(t_end / dt));
  for (int s = 1; s <= steps; ++s) {
    const double t = s * dt;
    v = solve_newton(t, v, inv_h, out.voltages.back());
    out.time.push_back(t);
    out.voltages.push_back(v);
  }
  return out;
}

double Circuit::source_current(NodeId node, const std::vector<double>& v, double /*t*/) const {
  require(node >= 0 && node < num_nodes(), "Circuit::source_current: bad node");
  std::vector<double> into(static_cast<std::size_t>(num_nodes()));
  static_currents(v, into);
  // Elements draw -into[node] from the source (into[] is current delivered
  // INTO the node by elements; the source must supply the balance).
  return -into[static_cast<std::size_t>(node)];
}

}  // namespace optpower
