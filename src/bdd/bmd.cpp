#include "bdd/bmd.h"

#include <algorithm>

#include "util/error.h"
#include "util/format.h"

namespace optpower {
namespace {

constexpr BmdRef kNoRef = 0xffffffffu;

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_internal(std::uint32_t var, BmdRef m0, BmdRef m1) noexcept {
  return mix64((static_cast<std::uint64_t>(var) << 40) ^ (static_cast<std::uint64_t>(m0) << 20) ^
               m1 ^ 0x517cc1b727220a95ULL);
}

std::uint64_t hash_terminal(std::int64_t value) noexcept {
  return mix64(static_cast<std::uint64_t>(value) ^ 0x2545f4914f6cdd1dULL);
}

std::uint64_t hash_pair(BmdRef a, BmdRef b) noexcept {
  return mix64((static_cast<std::uint64_t>(a) << 32) | b);
}

}  // namespace

BmdManager::BmdManager(int num_vars, const BmdOptions& options) : options_(options) {
  require(num_vars >= 0, "BmdManager: num_vars must be >= 0");
  require(options_.cache_bits >= 4 && options_.cache_bits <= 26,
          "BmdManager: cache_bits must lie in [4, 26]");
  nodes_.reserve(1024);
  rehash(1024);
  const std::size_t cache_size = std::size_t{1} << options_.cache_bits;
  add_cache_.assign(cache_size, CacheEntry{});
  mul_cache_.assign(cache_size, CacheEntry{});
  subst_cache_.assign(cache_size, CacheEntry{});
  cache_mask_ = cache_size - 1;
  zero_ = intern_terminal(0);
  one_ = intern_terminal(1);
  num_vars_ = num_vars;
}

int BmdManager::add_var() { return num_vars_++; }

std::int64_t BmdManager::checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    throw NumericalError("BmdManager: terminal overflow in addition");
  }
  return r;
}

std::int64_t BmdManager::checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    throw NumericalError("BmdManager: terminal overflow in multiplication");
  }
  return r;
}

void BmdManager::check_budget() const {
  if (nodes_.size() >= options_.max_nodes) {
    throw NumericalError(strprintf(
        "BmdManager: node budget exceeded (%zu nodes); raise BmdOptions::max_nodes",
        nodes_.size()));
  }
}

void BmdManager::rehash(std::size_t new_capacity) {
  table_.assign(new_capacity, kNoRef);
  table_mask_ = new_capacity - 1;
  for (BmdRef n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    std::size_t slot = (node.var == kTerminal ? hash_terminal(node.value)
                                              : hash_internal(node.var, node.m0, node.m1)) &
                       table_mask_;
    while (table_[slot] != kNoRef) slot = (slot + 1) & table_mask_;
    table_[slot] = n;
  }
}

BmdRef BmdManager::intern(std::uint32_t var, BmdRef m0, BmdRef m1, std::int64_t value) {
  const std::uint64_t h = var == kTerminal ? hash_terminal(value) : hash_internal(var, m0, m1);
  std::size_t slot = h & table_mask_;
  while (table_[slot] != kNoRef) {
    const Node& cand = nodes_[table_[slot]];
    if (cand.var == var &&
        (var == kTerminal ? cand.value == value : (cand.m0 == m0 && cand.m1 == m1))) {
      return table_[slot];
    }
    slot = (slot + 1) & table_mask_;
  }
  check_budget();
  const auto id = static_cast<BmdRef>(nodes_.size());
  nodes_.push_back({var, m0, m1, value});
  table_[slot] = id;
  if (nodes_.size() * 10 >= table_.size() * 7) rehash(table_.size() * 2);
  return id;
}

BmdRef BmdManager::intern_terminal(std::int64_t value) {
  return intern(kTerminal, 0, 0, value);
}

BmdRef BmdManager::make(std::uint32_t var, BmdRef m0, BmdRef m1) {
  if (m1 == zero_) return m0;  // reduction: no linear dependence on var
  return intern(var, m0, m1, 0);
}

BmdRef BmdManager::constant(std::int64_t value) { return intern_terminal(value); }

BmdRef BmdManager::var(int i) {
  require(i >= 0 && i < num_vars_, "BmdManager::var: index out of range");
  return make(static_cast<std::uint32_t>(i), zero_, one_);
}

BmdRef BmdManager::add(BmdRef f, BmdRef g) {
  if (f == zero_) return g;
  if (g == zero_) return f;
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  if (nf.var == kTerminal && ng.var == kTerminal) {
    return intern_terminal(checked_add(nf.value, ng.value));
  }
  if (f > g) std::swap(f, g);  // commutative: canonical operand order
  CacheEntry& entry = add_cache_[hash_pair(f, g) & cache_mask_];
  if (entry.generation != 0 && entry.a == f && entry.b == g) return entry.result;

  const std::uint32_t top = std::min(nodes_[f].var, nodes_[g].var);
  const Node& rf = nodes_[f];
  const Node& rg = nodes_[g];
  const BmdRef f0 = rf.var == top ? rf.m0 : f;
  const BmdRef f1 = rf.var == top ? rf.m1 : zero_;
  const BmdRef g0 = rg.var == top ? rg.m0 : g;
  const BmdRef g1 = rg.var == top ? rg.m1 : zero_;
  const BmdRef result = make(top, add(f0, g0), add(f1, g1));
  entry = CacheEntry{f, g, result, 1};
  return result;
}

BmdRef BmdManager::mul_const(BmdRef f, std::int64_t c) { return mul(f, constant(c)); }

BmdRef BmdManager::sub(BmdRef f, BmdRef g) { return add(f, mul_const(g, -1)); }

BmdRef BmdManager::mul(BmdRef f, BmdRef g) {
  if (f == zero_ || g == zero_) return zero_;
  if (f == one_) return g;
  if (g == one_) return f;
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  if (nf.var == kTerminal && ng.var == kTerminal) {
    return intern_terminal(checked_mul(nf.value, ng.value));
  }
  if (f > g) std::swap(f, g);
  CacheEntry& entry = mul_cache_[hash_pair(f, g) & cache_mask_];
  if (entry.generation != 0 && entry.a == f && entry.b == g) return entry.result;

  const std::uint32_t top = std::min(nodes_[f].var, nodes_[g].var);
  const Node& rf = nodes_[f];
  const Node& rg = nodes_[g];
  const BmdRef f0 = rf.var == top ? rf.m0 : f;
  const BmdRef f1 = rf.var == top ? rf.m1 : zero_;
  const BmdRef g0 = rg.var == top ? rg.m0 : g;
  const BmdRef g1 = rg.var == top ? rg.m1 : zero_;
  // (f0 + x f1)(g0 + x g1) with x^2 = x:
  //   f0 g0  +  x (f0 g1 + f1 g0 + f1 g1)
  const BmdRef r0 = mul(f0, g0);
  const BmdRef r1 = add(add(mul(f0, g1), mul(f1, g0)), mul(f1, g1));
  const BmdRef result = make(top, r0, r1);
  entry = CacheEntry{f, g, result, 1};
  return result;
}

BmdRef BmdManager::substitute(BmdRef f, int v, BmdRef h) {
  require(v >= 0 && v < num_vars_, "BmdManager::substitute: variable out of range");
  if (subst_var_ != v || subst_h_ != h) {
    // New (v, h) context: the cache keys only mention f, so invalidate - in
    // O(1) via the generation counter (a flush per eliminated variable would
    // walk the whole cache once per netlist cell).
    if (++subst_generation_ == 0) {
      subst_cache_.assign(subst_cache_.size(), CacheEntry{});  // u32 wrapped
      subst_generation_ = 1;
    }
    subst_var_ = v;
    subst_h_ = h;
  }
  const auto uv = static_cast<std::uint32_t>(v);
  // Copy the node out: add/mul/make below may grow (reallocate) the arena.
  const Node nf = nodes_[f];
  if (nf.var > uv) return f;  // v is above every variable of f: absent
  if (nf.var == uv) {
    const BmdRef scaled = mul(h, nf.m1);
    return add(nf.m0, scaled);
  }
  const CacheEntry probe = subst_cache_[hash_pair(f, 0x9e37u) & cache_mask_];
  if (probe.generation == subst_generation_ && probe.a == f) return probe.result;
  const BmdRef s0 = substitute(nf.m0, v, h);
  const BmdRef s1 = substitute(nf.m1, v, h);
  const BmdRef result = make(nf.var, s0, s1);
  // The recursive calls cannot have changed the context: it is fixed here.
  subst_cache_[hash_pair(f, 0x9e37u) & cache_mask_] =
      CacheEntry{f, 0, result, subst_generation_};
  return result;
}

std::int64_t BmdManager::eval(BmdRef f, const std::vector<char>& assignment) const {
  // Memoized over the sub-DAG (plain recursion would be exponential).
  std::vector<std::int64_t> memo(nodes_.size(), 0);
  std::vector<char> known(nodes_.size(), 0);
  struct Frame {
    BmdRef ref;
    bool expanded;
  };
  std::vector<Frame> stack{{f, false}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& n = nodes_[frame.ref];
    if (known[frame.ref]) continue;
    if (n.var == kTerminal) {
      memo[frame.ref] = n.value;
      known[frame.ref] = 1;
      continue;
    }
    if (!frame.expanded) {
      stack.push_back({frame.ref, true});
      stack.push_back({n.m0, false});
      stack.push_back({n.m1, false});
      continue;
    }
    const bool x = n.var < assignment.size() && assignment[n.var] != 0;
    memo[frame.ref] =
        x ? checked_add(memo[n.m0], memo[n.m1]) : memo[n.m0];
    known[frame.ref] = 1;
  }
  return memo[f];
}

std::vector<char> BmdManager::find_nonzero(BmdRef f) const {
  require(f != zero_, "BmdManager::find_nonzero: function is identically zero");
  std::vector<char> assignment(static_cast<std::size_t>(num_vars_), 0);
  while (nodes_[f].var != kTerminal) {
    const Node& n = nodes_[f];
    if (n.m0 != zero_) {
      f = n.m0;  // f|x=0 = m0, a nonzero function: prefer the 0 branch
    } else {
      assignment[n.var] = 1;  // f|x=1 = m0 + m1 = m1, nonzero by reduction
      f = n.m1;
    }
  }
  return assignment;
}

std::size_t BmdManager::dag_size(BmdRef f) const {
  std::vector<BmdRef> stack{f};
  std::vector<char> seen(nodes_.size(), 0);
  std::size_t count = 0;
  while (!stack.empty()) {
    const BmdRef r = stack.back();
    stack.pop_back();
    if (seen[r]) continue;
    seen[r] = 1;
    if (nodes_[r].var == kTerminal) continue;
    ++count;
    stack.push_back(nodes_[r].m0);
    stack.push_back(nodes_[r].m1);
  }
  return count;
}

}  // namespace optpower
