// Internal helpers shared by the bit-level (equiv.cpp) and word-level
// (word_equiv.cpp) equivalence checkers.  Not part of the public API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace optpower {
namespace equiv_detail {

[[nodiscard]] bool netlist_has_sequential(const Netlist& netlist);

/// Primary-input indices of bus `prefix`, ordered by bit index.  Throws when
/// any of the `width` bits is missing.
[[nodiscard]] std::vector<std::size_t> parse_bus(const Netlist& netlist,
                                                 const std::string& prefix, int width);

[[nodiscard]] std::uint64_t word_from_bits(const std::vector<bool>& inputs,
                                           const std::vector<std::size_t>& pins);

/// Gate-level replay: apply `inputs`, run `cycles` clock cycles, return the
/// output word.  kUnit delays - settled per-cycle values are delay-mode
/// independent, and unit mode is the fastest.
[[nodiscard]] std::uint64_t replay_event_sim(const Netlist& netlist,
                                             const std::vector<bool>& inputs, int cycles);

}  // namespace equiv_detail
}  // namespace optpower
