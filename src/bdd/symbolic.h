// Symbolic netlist interpretation over BDDs: compile a gate-level Netlist
// into per-net boolean functions, step it through symbolic clock cycles, and
// derive EXACT zero-delay switching statistics.
//
// This is the analytical cross-check for the Monte-Carlo testbenches in
// sim/activity.h: signal-probability propagation through BDDs computes the
// expectation of the event simulator's zero-delay activity estimator in
// closed form - no stimulus, no variance.  The SymbolicSimulator mirrors
// EventSimulator's cycle semantics exactly (pre-edge settle, DFF sample and
// update, post-edge settle; two-valued logic; everything resets to 0), and
// since the kZero scheduler became truly levelized the match is EXACT term
// for term: each settle changes every net at most once, precisely the
// indicator whose expectation the XOR-probability computes.  So
// exact_activity() with the same warmup/measure schedule equals
// E[measure_activity(...) with delay_mode = kZero] (and equals the average
// of the pairwise-enumerated simulator runs to rounding), with no hazard
// reconciliation factor - tests/bdd/symbolic_activity_test.cpp asserts the
// strict equality.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"
#include "netlist/netlist.h"

namespace optpower {

/// Variable-order strategy for the primary inputs.  BDD sizes are extremely
/// order-sensitive (the multiplier families here span orders of magnitude
/// between the best and worst of these), but *results* never are.
enum class VarOrderHeuristic {
  kDeclaration,  ///< declaration order (a[0..w), then b[0..w), ...)
  kInterleaved,  ///< round-robin across the name-prefix buses (a[0], b[0], a[1], ...)
  kTopoCone,     ///< first-visit order of a DFS through the output fanin cones,
                 ///< outputs in declaration order: inputs that feed the same
                 ///< shallow logic end up adjacent (the netlist-topology
                 ///< heuristic; equals interleaving on the multiplier arrays)
};

/// Positions of the primary inputs in the BDD variable order:
/// result[pi_index] = variable index (0 = first in the order).
[[nodiscard]] std::vector<int> bdd_variable_order(const Netlist& netlist,
                                                  VarOrderHeuristic heuristic);

/// Knobs shared by the symbolic clients.
struct SymbolicOptions {
  VarOrderHeuristic order = VarOrderHeuristic::kTopoCone;
  BddOptions bdd;
};

/// Pin value for SymbolicSimulator's fixed-input vector: keep the pin
/// symbolic (fresh variable) or tie it to a constant (case splitting).
inline constexpr int kSymbolicInput = -1;

/// Zero-delay symbolic twin of EventSimulator: per-net BddRef instead of
/// per-net bit.  Construction settles the all-zero state (like
/// EventSimulator's reset); inject_fresh_inputs() starts a new data period
/// by binding every non-fixed primary input to a fresh variable.
class SymbolicSimulator {
 public:
  /// All primary inputs symbolic.
  explicit SymbolicSimulator(const Netlist& netlist, const SymbolicOptions& options = {});

  /// `fixed[i]` pins primary input i to 0/1; kSymbolicInput keeps it
  /// symbolic.  Must have one entry per primary input.
  SymbolicSimulator(const Netlist& netlist, const std::vector<int>& fixed,
                    const SymbolicOptions& options = {});

  [[nodiscard]] BddManager& manager() noexcept { return manager_; }
  [[nodiscard]] const Netlist& netlist() const noexcept { return netlist_; }

  /// Bind fresh variables (constants for fixed pins) to the primary inputs -
  /// the symbolic analogue of applying one new random vector.  Variables are
  /// appended batch-by-batch, each batch internally permuted by the chosen
  /// order heuristic.
  void inject_fresh_inputs();

  /// Zero-delay combinational propagation of the current input/state values.
  void settle();

  /// Clock edge: every DFF samples (kDffEnable holds when en = 0), then all
  /// Q outputs update.  Call settle() afterwards, or use step_cycle().
  void clock_edge();

  /// One full clock cycle exactly like EventSimulator::step_cycle():
  /// pre-edge settle, clock edge, post-edge settle.
  void step_cycle();

  /// Current function of a net.
  [[nodiscard]] BddRef value(NetId net) const { return values_[net]; }
  [[nodiscard]] const std::vector<BddRef>& values() const noexcept { return values_; }
  /// Primary outputs in declaration order.
  [[nodiscard]] std::vector<BddRef> outputs() const;

  /// Variable index bound to primary input `pi` by the LAST injection
  /// (-1 when the pin is fixed or no injection happened yet).  Used to map
  /// find_sat() assignments back to input vectors.
  [[nodiscard]] int input_var(std::size_t pi) const { return input_var_[pi]; }

  /// Nets driven by a cell (what the activity statistics count), in net-id
  /// order.
  [[nodiscard]] const std::vector<NetId>& cell_driven_nets() const noexcept {
    return cell_nets_;
  }

 private:
  void eval_comb_cell(const CellInstance& cell);

  const Netlist& netlist_;
  SymbolicOptions options_;
  BddManager manager_;
  std::vector<CellId> topo_;
  std::vector<BddRef> values_;     // per net
  std::vector<BddRef> dff_next_;   // per sequential cell id (others unused)
  std::vector<int> fixed_;         // per PI: kSymbolicInput / 0 / 1
  std::vector<int> order_;         // per PI: position within one injection batch
  std::vector<int> input_var_;     // per PI: var of the last injection (-1 = fixed)
  std::vector<NetId> cell_nets_;   // nets with a driving cell, ascending
};

/// One-shot combinational compile into a caller-owned manager: the
/// primary-output functions of `netlist` under caller-provided per-input
/// values (one BddRef per primary input, constants allowed).  This is how
/// two netlists get compiled against the SAME variables for cross-netlist
/// equivalence (bdd/equiv.h).  Throws NetlistError if `netlist` contains
/// sequential cells.
[[nodiscard]] std::vector<BddRef> compile_combinational(BddManager& manager,
                                                        const Netlist& netlist,
                                                        const std::vector<BddRef>& input_values);

/// Configuration of the exact-activity computation.  Mirror the
/// ActivityOptions of the Monte-Carlo run being cross-checked: the symbolic
/// result is the exact expectation of that testbench's estimator (same
/// warmup, same measured-period count), so any schedule mismatch shows up as
/// transient bias on sequential netlists.
struct ExactActivityOptions {
  int num_vectors = 8;       ///< measured data periods
  int cycles_per_vector = 1; ///< clock cycles per data period
  int warmup_vectors = 8;    ///< periods stepped before measurement starts
  SymbolicOptions symbolic;
};

/// Exact zero-delay switching statistics.
struct ExactActivity {
  /// The paper's "a" (charging transitions per cell per data period):
  /// 0.5 * E[transitions] / (N * data_periods), EXACTLY the expectation of
  /// ActivityMeasurement::activity under delay_mode = kZero (the levelized
  /// scheduler counts one transition per net per settled change - the very
  /// indicator this propagates).
  double activity = 0.0;
  /// Expected transitions beyond the per-net functional minimum, as a
  /// fraction of expected transitions.  Zero for combinational netlists
  /// (levelized settles cannot hazard); for sequential ones this counts
  /// pre-vs-post-edge double toggles over CELL nets, a slight upper proxy
  /// of the simulator's glitch counter (whose per-cycle functional floor
  /// also credits primary-input toggles).
  double glitch_fraction = 0.0;
  double expected_transitions = 0.0;  ///< over the whole measured window
  double expected_functional = 0.0;   ///< expected per-net start != end counts
  std::vector<double> net_probability;  ///< last measured period: P(net = 1)
  std::vector<double> net_toggle;       ///< last measured period: E[toggles] per net
  std::uint64_t data_periods = 0;
  std::uint64_t clock_cycles = 0;
  std::size_t bdd_nodes = 0;   ///< manager arena size after the run
  bool combinational = false;  ///< closed-form single-compile path was used
};

/// Compute exact zero-delay activity of `netlist` under uniform independent
/// input bits.  Combinational netlists take a closed-form path (one compile;
/// per-period expected transitions = sum over nets of 2 p (1 - p), since
/// consecutive data vectors are independent); sequential netlists are
/// stepped symbolically through warmup + measured periods with fresh
/// variables per period.  Throws NumericalError when the BDD node budget is
/// exceeded (symbolic.bdd.max_nodes).
[[nodiscard]] ExactActivity exact_activity(const Netlist& netlist,
                                           const ExactActivityOptions& options = {});

}  // namespace optpower
