// Reduced-ordered binary decision diagrams: the symbolic-analysis substrate
// behind exact switching-activity extraction and formal multiplier
// equivalence checking (bdd/symbolic.h, bdd/equiv.h).
//
// Engine shape (after the classic Brace/Rudell/Bryant package, and the
// related Cloud-BDD engine): arena-allocated nodes addressed by dense 32-bit
// refs, a hash-consed unique table that makes every function canonical
// (equality test == ref compare), and a memoized if-then-else on which all
// two-operand applies are built.  Complement edges are intentionally left
// out: they halve node counts but double the invariants, and the canonical
// no-complement form keeps the determinism story trivial (same op sequence
// -> bit-identical arena layout, asserted in tests/bdd/).
//
// There is no garbage collector: nodes live as long as the manager.  The
// intended lifetime is one manager per analysis (or per case-split
// subproblem), guarded by BddOptions::max_nodes - the engine throws
// NumericalError instead of thrashing when a function family (like the
// middle bits of wide multipliers, the textbook exponential case) blows up.
#pragma once

#include <cstdint>
#include <vector>

namespace optpower {

/// Handle of a BDD function inside one manager.  Dense index into the node
/// arena; 0/1 are the constant functions.  Refs from different managers must
/// never be mixed (unchecked for speed).
using BddRef = std::uint32_t;

inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

/// Engine tuning knobs.
struct BddOptions {
  /// Hard ceiling on unique nodes before the manager throws NumericalError.
  /// 1M nodes is ~12 MB of arena and far beyond anything the activity and
  /// (case-split) equivalence clients legitimately need; raise it only for
  /// deliberate monolithic experiments.
  std::size_t max_nodes = 1u << 20;
  /// log2 of the lossy direct-mapped ITE memo cache (entries overwrite on
  /// collision; only speed, never results, depends on this).
  int ite_cache_bits = 16;
};

/// One ROBDD manager: variable order fixed at var-creation order, all nodes
/// interned in the unique table.  Not thread-safe; use one manager per
/// thread (they are cheap - the parallel equivalence checker builds one per
/// case-split subproblem).
class BddManager {
 public:
  explicit BddManager(int num_vars = 0, const BddOptions& options = {});

  /// Publishes the manager's lifetime tallies (publish_obs_metrics).
  ~BddManager();

  // --- variables -----------------------------------------------------------

  /// Number of variables currently declared.
  [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(var_refs_.size()); }

  /// Append one fresh variable (last in the order); returns its index.
  int add_var();

  /// The function "variable i" (i in [0, num_vars)).
  [[nodiscard]] BddRef var(int i) const;

  /// The function "NOT variable i".
  [[nodiscard]] BddRef nvar(int i);

  // --- operations ----------------------------------------------------------

  [[nodiscard]] static constexpr BddRef constant(bool value) noexcept {
    return value ? kBddTrue : kBddFalse;
  }

  /// Memoized Shannon if-then-else: f ? g : h.  The universal connective -
  /// every other operation below is a fixed ITE pattern.
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);

  [[nodiscard]] BddRef bdd_not(BddRef f) { return ite(f, kBddFalse, kBddTrue); }
  [[nodiscard]] BddRef bdd_and(BddRef f, BddRef g) { return ite(f, g, kBddFalse); }
  [[nodiscard]] BddRef bdd_or(BddRef f, BddRef g) { return ite(f, kBddTrue, g); }
  [[nodiscard]] BddRef bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }
  [[nodiscard]] BddRef bdd_xnor(BddRef f, BddRef g) { return ite(f, g, bdd_not(g)); }
  [[nodiscard]] BddRef bdd_nand(BddRef f, BddRef g) { return bdd_not(bdd_and(f, g)); }
  [[nodiscard]] BddRef bdd_nor(BddRef f, BddRef g) { return bdd_not(bdd_or(f, g)); }

  /// Full-adder pair on single bits: {sum, carry}.
  struct BitSum {
    BddRef sum;
    BddRef carry;
  };
  [[nodiscard]] BitSum full_add(BddRef a, BddRef b, BddRef cin);

  // --- inspection ----------------------------------------------------------

  /// Evaluate under a complete assignment (assignment[i] != 0 means var i
  /// is true; entries beyond the vector default to false).
  [[nodiscard]] bool eval(BddRef f, const std::vector<char>& assignment) const;

  /// P(f = 1) under independent per-variable probabilities (default 0.5
  /// each).  Cached per node; the cache survives until a probability is
  /// changed, so sweeping many functions of a compiled netlist is
  /// incremental.
  [[nodiscard]] double probability(BddRef f);

  /// Set P(var i = 1); invalidates the probability cache.
  void set_var_probability(int i, double p);

  /// One satisfying assignment of f (f != kBddFalse; checked).  Greedy
  /// lowest-assignment walk: prefers var = 0 whenever the 0-branch is
  /// satisfiable, so the result is deterministic.  Unconstrained variables
  /// come back 0.
  [[nodiscard]] std::vector<char> find_sat(BddRef f) const;

  /// Unique internal (non-terminal) nodes reachable from f.
  [[nodiscard]] std::size_t dag_size(BddRef f) const;

  /// Internal nodes interned so far (terminals and dead nodes included -
  /// there is no GC; this is the figure max_nodes guards).
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size() - 2; }

  // --- observability -------------------------------------------------------
  // A manager is single-threaded, so these are plain members bumped with
  // ordinary increments inside ite() - zero atomic traffic on the recursion
  // hot path - and folded into the process-wide obs registry on publish.

  /// Memoized ite() invocations (terminal-rule short-circuits excluded).
  [[nodiscard]] std::uint64_t ite_calls() const noexcept { return ite_calls_; }
  /// ite() invocations answered by the direct-mapped cache.
  [[nodiscard]] std::uint64_t ite_cache_hits() const noexcept { return ite_hits_; }

  /// Fold ite_calls/hits deltas into the registry counters ("bdd.ite_calls",
  /// "bdd.ite_cache_hits") and set the "bdd.unique_table_nodes" /
  /// "bdd.node_budget_headroom" gauges from this manager's current state.
  /// The destructor calls this; long-lived managers may call it mid-life.
  void publish_obs_metrics();

  /// Level (variable index) of a ref; terminals report kTerminalLevel.
  static constexpr std::uint32_t kTerminalLevel = 0xffffffffu;
  [[nodiscard]] std::uint32_t level(BddRef f) const noexcept { return nodes_[f].var; }
  [[nodiscard]] BddRef low(BddRef f) const noexcept { return nodes_[f].lo; }
  [[nodiscard]] BddRef high(BddRef f) const noexcept { return nodes_[f].hi; }

 private:
  struct Node {
    std::uint32_t var;  // kTerminalLevel for the two terminals
    BddRef lo;
    BddRef hi;
  };
  struct IteKey {
    BddRef f = kBddFalse, g = kBddFalse, h = kBddFalse;
    BddRef result = kBddFalse;
    bool valid = false;
  };

  [[nodiscard]] BddRef unique(std::uint32_t var, BddRef lo, BddRef hi);
  void rehash_unique(std::size_t new_capacity);
  [[nodiscard]] static std::uint64_t hash_triple(std::uint32_t a, std::uint32_t b,
                                                 std::uint32_t c) noexcept;

  BddOptions options_;
  std::vector<Node> nodes_;          // arena; [0]=false, [1]=true
  std::vector<BddRef> unique_table_;  // open addressing; kBddFalse = empty slot
  std::size_t unique_mask_ = 0;
  std::vector<IteKey> ite_cache_;    // direct-mapped, lossy
  std::size_t ite_cache_mask_ = 0;
  std::vector<BddRef> var_refs_;
  std::vector<double> var_prob_;
  std::vector<double> prob_cache_;   // aligned with nodes_; NaN = unknown

  std::uint64_t ite_calls_ = 0;      // memoized ite() entries (plain: single-threaded)
  std::uint64_t ite_hits_ = 0;       // ...answered by the cache
  std::uint64_t published_calls_ = 0;  // already folded into the registry
  std::uint64_t published_hits_ = 0;
};

}  // namespace optpower
