#include "bdd/equiv.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "netlist/cell.h"
#include "sim/event_sim.h"
#include "util/error.h"
#include "util/format.h"
#include "bdd/equiv_detail.h"
#include "util/random.h"

namespace optpower {
namespace equiv_detail {

bool netlist_has_sequential(const Netlist& netlist) {
  for (const auto& cell : netlist.cells()) {
    if (cell_spec(cell.type).is_sequential) return true;
  }
  return false;
}

/// Primary-input indices of bus `prefix`, ordered by bit index.  Throws when
/// any of the `width` bits is missing.
std::vector<std::size_t> parse_bus(const Netlist& netlist, const std::string& prefix, int width) {
  std::vector<std::size_t> pins(static_cast<std::size_t>(width), SIZE_MAX);
  const auto& names = netlist.input_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    if (name.size() < prefix.size() + 3 || name.compare(0, prefix.size(), prefix) != 0 ||
        name[prefix.size()] != '[' || name.back() != ']') {
      continue;
    }
    const int bit = std::atoi(name.c_str() + prefix.size() + 1);
    if (bit >= 0 && bit < width) pins[static_cast<std::size_t>(bit)] = i;
  }
  for (int bit = 0; bit < width; ++bit) {
    if (pins[static_cast<std::size_t>(bit)] == SIZE_MAX) {
      throw InvalidArgument(strprintf("bdd/equiv: netlist '%s' has no input %s[%d]",
                                      netlist.name().c_str(), prefix.c_str(), bit));
    }
  }
  return pins;
}

std::uint64_t word_from_bits(const std::vector<bool>& inputs,
                             const std::vector<std::size_t>& pins) {
  std::uint64_t w = 0;
  for (std::size_t bit = 0; bit < pins.size() && bit < 64; ++bit) {
    if (inputs[pins[bit]]) w |= (std::uint64_t{1} << bit);
  }
  return w;
}

/// Gate-level replay: apply `inputs`, run `cycles` clock cycles, return the
/// output word.  kUnit delays - the settled values per cycle are delay-mode
/// independent, and unit mode is the fastest.
std::uint64_t replay_event_sim(const Netlist& netlist, const std::vector<bool>& inputs,
                               int cycles) {
  EventSimulator sim(netlist, SimDelayMode::kUnit);
  sim.set_inputs(inputs);
  for (int c = 0; c < cycles; ++c) sim.step_cycle();
  return sim.outputs_word();
}

}  // namespace equiv_detail

using namespace equiv_detail;

namespace {



/// Word-level golden spec as BDDs: p = a * b truncated to out_width bits,
/// built shift-and-add with symbolic full adders.  Constant b bits (case
/// splitting) collapse their rows for free.
std::vector<BddRef> spec_product(BddManager& m, const std::vector<BddRef>& a_bits,
                                 const std::vector<BddRef>& b_bits, std::size_t out_width) {
  std::vector<BddRef> acc(out_width, kBddFalse);
  for (std::size_t i = 0; i < b_bits.size(); ++i) {
    if (b_bits[i] == kBddFalse) continue;
    BddRef carry = kBddFalse;
    for (std::size_t j = 0; i + j < out_width; ++j) {
      const BddRef pp = j < a_bits.size() ? m.bdd_and(a_bits[j], b_bits[i]) : kBddFalse;
      if (pp == kBddFalse && carry == kBddFalse) break;
      const BddManager::BitSum s = m.full_add(acc[i + j], pp, carry);
      acc[i + j] = s.sum;
      carry = s.carry;
    }
  }
  return acc;
}


std::uint64_t eval_word(BddManager& m, const std::vector<BddRef>& bits,
                        const std::vector<char>& assignment) {
  std::uint64_t w = 0;
  for (std::size_t j = 0; j < bits.size() && j < 64; ++j) {
    if (m.eval(bits[j], assignment)) w |= (std::uint64_t{1} << j);
  }
  return w;
}


/// Per-case verdict (default-constructible for parallel_map).
struct CaseOutcome {
  bool ok = false;
  bool proven = false;
  std::size_t nodes = 0;
  int matched_at = 0;
  bool has_cx = false;
  EquivCounterexample cx;
};

std::uint64_t hash_state(const std::vector<BddRef>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the ref words
  for (const BddRef v : values) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Assignment -> concrete input vector (fixed pins from the case pattern,
/// symbolic pins from the sat assignment).
std::vector<bool> inputs_from_assignment(const SymbolicSimulator& sym,
                                         const std::vector<int>& fixed,
                                         const std::vector<char>& assignment) {
  std::vector<bool> inputs(fixed.size(), false);
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    if (fixed[i] != kSymbolicInput) {
      inputs[i] = fixed[i] != 0;
    } else {
      const int v = sym.input_var(i);
      inputs[i] = v >= 0 && static_cast<std::size_t>(v) < assignment.size() &&
                  assignment[static_cast<std::size_t>(v)] != 0;
    }
  }
  return inputs;
}

CaseOutcome run_spec_case(const Netlist& netlist, int width,
                          const std::vector<std::size_t>& a_pins,
                          const std::vector<std::size_t>& b_pins, const EquivOptions& options,
                          std::uint64_t case_bits) {
  const int split = options.case_split_bits;
  std::vector<int> fixed(netlist.primary_inputs().size(), kSymbolicInput);
  for (int j = 0; j < split; ++j) {
    fixed[b_pins[static_cast<std::size_t>(width - split + j)]] =
        static_cast<int>((case_bits >> j) & 1u);
  }

  SymbolicSimulator sym(netlist, fixed, options.symbolic);
  sym.inject_fresh_inputs();
  BddManager& m = sym.manager();

  const auto bus_values = [&](const std::vector<std::size_t>& pins) {
    std::vector<BddRef> bits;
    bits.reserve(pins.size());
    for (const std::size_t pin : pins) {
      bits.push_back(sym.value(netlist.primary_inputs()[pin]));
    }
    return bits;
  };
  const std::size_t out_width = netlist.primary_outputs().size();
  const std::vector<BddRef> spec = spec_product(m, bus_values(a_pins), bus_values(b_pins),
                                                out_width);

  CaseOutcome outcome;
  const auto fill_cx = [&](const std::vector<BddRef>& outs, int cycle) {
    BddRef miter = kBddFalse;
    for (std::size_t j = 0; j < out_width; ++j) {
      miter = m.bdd_or(miter, m.bdd_xor(outs[j], spec[j]));
    }
    const std::vector<char> assignment = m.find_sat(miter);
    EquivCounterexample cx;
    cx.inputs = inputs_from_assignment(sym, fixed, assignment);
    cx.a = word_from_bits(cx.inputs, a_pins);
    cx.b = word_from_bits(cx.inputs, b_pins);
    cx.expected = eval_word(m, spec, assignment);
    cx.predicted = eval_word(m, outs, assignment);
    cx.cycle = cycle;
    cx.simulated = replay_event_sim(netlist, cx.inputs, cycle);
    cx.replay_confirms = cx.simulated == cx.predicted && cx.simulated != cx.expected;
    outcome.has_cx = true;
    outcome.cx = cx;
  };

  if (!netlist_has_sequential(netlist)) {
    sym.settle();
    const std::vector<BddRef> outs = sym.outputs();
    outcome.proven = true;
    outcome.ok = outs == spec;
    outcome.matched_at = 1;
    if (!outcome.ok) fill_cx(outs, 1);
    outcome.nodes = m.node_count();
    return outcome;
  }

  // Sequential: march the symbolic state until it revisits a previous state.
  // The circuit is deterministic and the (symbolic) inputs are held, so the
  // state sequence is eventually periodic; once state(t) == state(t'), the
  // output sequence from t' on repeats with period t - t', and the verdict
  // over cycles (t', t] is the verdict for all time.
  const int max_cycles = options.max_cycles > 0 ? options.max_cycles : 8 * width + 16;
  std::vector<std::vector<BddRef>> states;   // state after cycle k+1
  std::vector<std::uint64_t> hashes;
  std::vector<char> matched;                  // outputs == spec after cycle k+1
  int loop_start = -1;                        // cycle t' with state(t') == state(t)
  int t = 0;
  for (t = 1; t <= max_cycles && loop_start < 0; ++t) {
    sym.step_cycle();
    const std::vector<BddRef>& state = sym.values();
    const std::uint64_t h = hash_state(state);
    for (std::size_t k = 0; k < states.size(); ++k) {
      if (hashes[k] == h && states[k] == state) {
        loop_start = static_cast<int>(k) + 1;
        break;
      }
    }
    if (loop_start >= 0) break;
    states.push_back(state);
    hashes.push_back(h);
    matched.push_back(sym.outputs() == spec ? 1 : 0);
  }
  outcome.nodes = m.node_count();
  if (loop_start < 0) {
    outcome.proven = false;  // max_cycles exhausted before the orbit closed
    return outcome;
  }
  outcome.proven = true;
  // Steady state = cycles (loop_start, t - 1] plus the re-visited cycle
  // loop_start; all of them must match.
  bool all_matched = true;
  int first_bad = -1;
  for (int c = loop_start; c <= t - 1; ++c) {
    if (!matched[static_cast<std::size_t>(c - 1)]) {
      all_matched = false;
      if (first_bad < 0) first_bad = c;
    }
  }
  outcome.ok = all_matched;
  if (all_matched) {
    // Report the first cycle from which the outputs match through the loop.
    int c0 = loop_start;
    while (c0 > 1 && matched[static_cast<std::size_t>(c0 - 2)]) --c0;
    outcome.matched_at = c0;
  } else {
    // Re-derive the mismatching cycle's outputs: replay symbolically from
    // the recorded loop knowledge by stepping a fresh simulator (cheap
    // relative to the search, and keeps the search loop allocation-light).
    SymbolicSimulator replay_sym(netlist, fixed, options.symbolic);
    replay_sym.inject_fresh_inputs();
    const std::vector<BddRef> a_bits2 = [&] {
      std::vector<BddRef> bits;
      for (const std::size_t pin : a_pins) {
        bits.push_back(replay_sym.value(netlist.primary_inputs()[pin]));
      }
      return bits;
    }();
    const std::vector<BddRef> b_bits2 = [&] {
      std::vector<BddRef> bits;
      for (const std::size_t pin : b_pins) {
        bits.push_back(replay_sym.value(netlist.primary_inputs()[pin]));
      }
      return bits;
    }();
    BddManager& m2 = replay_sym.manager();
    const std::vector<BddRef> spec2 = spec_product(m2, a_bits2, b_bits2, out_width);
    for (int c = 0; c < first_bad; ++c) replay_sym.step_cycle();
    const std::vector<BddRef> outs = replay_sym.outputs();
    BddRef miter = kBddFalse;
    for (std::size_t j = 0; j < out_width; ++j) {
      miter = m2.bdd_or(miter, m2.bdd_xor(outs[j], spec2[j]));
    }
    const std::vector<char> assignment = m2.find_sat(miter);
    EquivCounterexample cx;
    cx.inputs = inputs_from_assignment(replay_sym, fixed, assignment);
    cx.a = word_from_bits(cx.inputs, a_pins);
    cx.b = word_from_bits(cx.inputs, b_pins);
    cx.expected = eval_word(m2, spec2, assignment);
    cx.predicted = eval_word(m2, outs, assignment);
    cx.cycle = first_bad;
    cx.simulated = replay_event_sim(netlist, cx.inputs, first_bad);
    cx.replay_confirms = cx.simulated == cx.predicted && cx.simulated != cx.expected;
    outcome.has_cx = true;
    outcome.cx = cx;
    outcome.nodes += m2.node_count();
  }
  return outcome;
}

EquivResult aggregate(std::vector<CaseOutcome> outcomes) {
  EquivResult result;
  result.cases = outcomes.size();
  result.equivalent = true;
  result.proven = true;
  for (const CaseOutcome& o : outcomes) {
    result.bdd_nodes += o.nodes;
    result.matched_at_cycle = std::max(result.matched_at_cycle, o.matched_at);
    if (!o.proven) result.proven = false;
    if (!o.ok) result.equivalent = false;
  }
  if (!result.proven) result.equivalent = false;
  // Deterministic counterexample: the lowest failing case, regardless of the
  // thread count that ran the fan-out.
  for (const CaseOutcome& o : outcomes) {
    if (o.has_cx) {
      result.counterexample = o.cx;
      break;
    }
  }
  return result;
}

}  // namespace

EquivResult check_multiplier_against_spec(const Netlist& netlist, int width,
                                          const EquivOptions& options, const ExecContext& ctx) {
  require(width >= 1 && width <= 32, "check_multiplier_against_spec: width must lie in [1, 32]");
  require(options.case_split_bits >= 0 && options.case_split_bits <= width,
          "check_multiplier_against_spec: case_split_bits must lie in [0, width]");
  require(netlist.primary_outputs().size() <= 64,
          "check_multiplier_against_spec: more than 64 outputs");
  const std::vector<std::size_t> a_pins = parse_bus(netlist, "a", width);
  const std::vector<std::size_t> b_pins = parse_bus(netlist, "b", width);

  const std::size_t cases = std::size_t{1} << options.case_split_bits;
  std::vector<CaseOutcome> outcomes = parallel_map<CaseOutcome>(ctx, cases, [&](std::size_t k) {
    return run_spec_case(netlist, width, a_pins, b_pins, options,
                         static_cast<std::uint64_t>(k));
  });
  return aggregate(std::move(outcomes));
}

EquivResult check_combinational_equal(const Netlist& lhs, const Netlist& rhs,
                                      const EquivOptions& options, const ExecContext& ctx) {
  require(!netlist_has_sequential(lhs) && !netlist_has_sequential(rhs),
          "check_combinational_equal: both netlists must be purely combinational");
  // Port matching by name, in lhs declaration order.
  std::unordered_map<std::string, std::size_t> rhs_inputs;
  for (std::size_t j = 0; j < rhs.input_names().size(); ++j) {
    rhs_inputs.emplace(rhs.input_names()[j], j);
  }
  require(rhs.input_names().size() == lhs.input_names().size(),
          "check_combinational_equal: input counts differ");
  std::vector<std::size_t> rhs_pin_of(lhs.input_names().size());
  for (std::size_t i = 0; i < lhs.input_names().size(); ++i) {
    const auto it = rhs_inputs.find(lhs.input_names()[i]);
    require(it != rhs_inputs.end(),
            "check_combinational_equal: input '" + lhs.input_names()[i] + "' missing in rhs");
    rhs_pin_of[i] = it->second;
  }
  std::unordered_map<std::string, std::size_t> rhs_outputs;
  for (std::size_t j = 0; j < rhs.output_names().size(); ++j) {
    rhs_outputs.emplace(rhs.output_names()[j], j);
  }
  require(rhs.output_names().size() == lhs.output_names().size(),
          "check_combinational_equal: output counts differ");
  require(lhs.output_names().size() <= 64, "check_combinational_equal: more than 64 outputs");
  std::vector<std::size_t> rhs_out_of(lhs.output_names().size());
  for (std::size_t i = 0; i < lhs.output_names().size(); ++i) {
    const auto it = rhs_outputs.find(lhs.output_names()[i]);
    require(it != rhs_outputs.end(),
            "check_combinational_equal: output '" + lhs.output_names()[i] + "' missing in rhs");
    rhs_out_of[i] = it->second;
  }

  // Case splitting needs the operand buses; width from the b bus size.
  std::vector<std::size_t> a_pins;
  std::vector<std::size_t> b_pins;
  const int split = options.case_split_bits;
  if (split > 0) {
    int width = 0;
    for (const auto& name : lhs.input_names()) {
      if (name.compare(0, 2, "b[") == 0) ++width;
    }
    require(split <= width, "check_combinational_equal: case_split_bits exceeds b-bus width");
    a_pins = parse_bus(lhs, "a", width);
    b_pins = parse_bus(lhs, "b", width);
  }

  const std::vector<int> order = bdd_variable_order(lhs, options.symbolic.order);
  const std::size_t cases = std::size_t{1} << split;
  std::vector<CaseOutcome> outcomes = parallel_map<CaseOutcome>(ctx, cases, [&](std::size_t k) {
    std::vector<int> fixed(lhs.primary_inputs().size(), kSymbolicInput);
    for (int j = 0; j < split; ++j) {
      fixed[b_pins[b_pins.size() - static_cast<std::size_t>(split - j)]] =
          static_cast<int>((k >> j) & 1u);
    }
    // Variables in heuristic order over the symbolic pins.
    std::vector<std::size_t> by_position;
    for (std::size_t i = 0; i < fixed.size(); ++i) {
      if (fixed[i] == kSymbolicInput) by_position.push_back(i);
    }
    std::sort(by_position.begin(), by_position.end(),
              [&](std::size_t x, std::size_t y) { return order[x] < order[y]; });
    BddManager m(static_cast<int>(by_position.size()), options.symbolic.bdd);
    std::vector<int> var_of(fixed.size(), -1);
    std::vector<BddRef> lhs_values(fixed.size());
    for (std::size_t rank = 0; rank < by_position.size(); ++rank) {
      var_of[by_position[rank]] = static_cast<int>(rank);
    }
    for (std::size_t i = 0; i < fixed.size(); ++i) {
      lhs_values[i] = fixed[i] == kSymbolicInput ? m.var(var_of[i])
                                                 : BddManager::constant(fixed[i] != 0);
    }
    std::vector<BddRef> rhs_values(fixed.size());
    for (std::size_t i = 0; i < fixed.size(); ++i) rhs_values[rhs_pin_of[i]] = lhs_values[i];

    const std::vector<BddRef> louts = compile_combinational(m, lhs, lhs_values);
    const std::vector<BddRef> routs_raw = compile_combinational(m, rhs, rhs_values);
    std::vector<BddRef> routs(louts.size());
    for (std::size_t i = 0; i < louts.size(); ++i) routs[i] = routs_raw[rhs_out_of[i]];

    CaseOutcome outcome;
    outcome.proven = true;
    outcome.matched_at = 1;
    outcome.ok = louts == routs;
    outcome.nodes = m.node_count();
    if (!outcome.ok) {
      BddRef miter = kBddFalse;
      for (std::size_t i = 0; i < louts.size(); ++i) {
        miter = m.bdd_or(miter, m.bdd_xor(louts[i], routs[i]));
      }
      const std::vector<char> assignment = m.find_sat(miter);
      EquivCounterexample cx;
      cx.inputs.assign(fixed.size(), false);
      for (std::size_t i = 0; i < fixed.size(); ++i) {
        cx.inputs[i] = fixed[i] != kSymbolicInput
                           ? fixed[i] != 0
                           : assignment[static_cast<std::size_t>(var_of[i])] != 0;
      }
      if (!a_pins.empty()) {
        cx.a = word_from_bits(cx.inputs, a_pins);
        cx.b = word_from_bits(cx.inputs, b_pins);
      }
      cx.predicted = eval_word(m, louts, assignment);
      cx.expected = eval_word(m, routs, assignment);
      cx.cycle = 1;
      cx.simulated = replay_event_sim(lhs, cx.inputs, 1);
      std::vector<bool> rhs_in(fixed.size(), false);
      for (std::size_t i = 0; i < fixed.size(); ++i) rhs_in[rhs_pin_of[i]] = cx.inputs[i];
      const std::uint64_t rhs_sim_raw = replay_event_sim(rhs, rhs_in, 1);
      std::uint64_t rhs_sim = 0;  // re-permute into lhs output order
      for (std::size_t i = 0; i < louts.size(); ++i) {
        if ((rhs_sim_raw >> rhs_out_of[i]) & 1u) rhs_sim |= (std::uint64_t{1} << i);
      }
      cx.replay_confirms =
          cx.simulated == cx.predicted && rhs_sim == cx.expected && cx.predicted != cx.expected;
      outcome.has_cx = true;
      outcome.cx = cx;
    }
    return outcome;
  });
  return aggregate(std::move(outcomes));
}

}  // namespace optpower
