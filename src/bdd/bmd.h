// Binary moment diagrams (BMDs): the word-level companion of the BDD
// engine, and the piece that makes 16x16 multiplier equivalence tractable.
//
// A BMD represents an integer-valued pseudo-boolean function by its moment
// decomposition  f = m0 + x * m1  (m0 = f|x=0, the constant moment;
// m1 = f|x=1 - f|x=0, the linear moment), with integer terminals and the
// reduction rule "drop nodes whose linear moment is the zero function".
// Like BDDs they are canonical for a fixed variable order - but where the
// *bit-level* functions of a multiplier explode exponentially (the c6288
// phenomenon the case-split checker in bdd/equiv.h works around), the
// *word-level* function  a * b = (sum 2^i a_i) * (sum 2^j b_j)  is
// polynomial-size as a BMD.
//
// The intended client is Hamaguchi-style backward substitution
// (check_multiplier_word_level in bdd/equiv.h): encode the output word
// sum 2^j out_j over fresh per-net variables, then eliminate net variables
// in reverse topological order by substituting each gate's moment
// polynomial, until only primary-input variables remain; canonicity turns
// the final compare against the spec polynomial into a ref equality.
//
// Same engineering shape as bdd/bdd.h: arena nodes, hash-consed unique
// table, lossy direct-mapped operation caches, a node budget that throws
// NumericalError instead of thrashing, and no GC (one manager per proof).
// Terminal values are int64 with overflow checks: 16x16 proofs stay far
// below the guard, and a genuine overflow must fail loudly, not wrap.
#pragma once

#include <cstdint>
#include <vector>

namespace optpower {

/// Handle of a BMD function inside one BmdManager (dense arena index).
using BmdRef = std::uint32_t;

/// Tuning knobs (mirrors BddOptions).
struct BmdOptions {
  std::size_t max_nodes = 4u << 20;
  int cache_bits = 16;  ///< log2 entries of each lossy operation cache
};

/// One BMD manager: fixed variable order (creation order), canonical nodes.
/// Not thread-safe; use one per proof / per thread.
class BmdManager {
 public:
  explicit BmdManager(int num_vars = 0, const BmdOptions& options = {});

  [[nodiscard]] int num_vars() const noexcept { return num_vars_; }
  int add_var();

  /// Integer constant as a BMD.
  [[nodiscard]] BmdRef constant(std::int64_t value);
  /// The 0/1 function "variable i".
  [[nodiscard]] BmdRef var(int i);

  [[nodiscard]] BmdRef add(BmdRef f, BmdRef g);
  [[nodiscard]] BmdRef sub(BmdRef f, BmdRef g);
  [[nodiscard]] BmdRef mul(BmdRef f, BmdRef g);          ///< boolean vars: x*x = x
  [[nodiscard]] BmdRef mul_const(BmdRef f, std::int64_t c);

  /// Boolean connectives as moment polynomials over 0/1-valued operands.
  [[nodiscard]] BmdRef b_not(BmdRef f) { return sub(constant(1), f); }
  [[nodiscard]] BmdRef b_and(BmdRef f, BmdRef g) { return mul(f, g); }
  [[nodiscard]] BmdRef b_or(BmdRef f, BmdRef g) { return sub(add(f, g), mul(f, g)); }
  [[nodiscard]] BmdRef b_xor(BmdRef f, BmdRef g) {
    return sub(add(f, g), mul_const(mul(f, g), 2));
  }

  /// Substitute variable `v` (which must be at or above every variable of
  /// `h` in the order... formally: h must not depend on v) by the function
  /// `h` inside `f`:  f[v := h].  Used by backward substitution, where v is
  /// a net variable and h the driving gate's moment polynomial.
  [[nodiscard]] BmdRef substitute(BmdRef f, int v, BmdRef h);

  /// Evaluate under a 0/1 assignment (entries beyond the vector are 0).
  [[nodiscard]] std::int64_t eval(BmdRef f, const std::vector<char>& assignment) const;

  /// An assignment on which f evaluates to a nonzero value (f must not be
  /// the zero function; checked).  Greedy deterministic walk.
  [[nodiscard]] std::vector<char> find_nonzero(BmdRef f) const;

  [[nodiscard]] bool is_zero(BmdRef f) const noexcept { return f == zero_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t dag_size(BmdRef f) const;

  static constexpr std::uint32_t kTerminal = 0xffffffffu;
  [[nodiscard]] std::uint32_t level(BmdRef f) const noexcept { return nodes_[f].var; }

 private:
  struct Node {
    std::uint32_t var;   // kTerminal for constants
    BmdRef m0;           // constant moment (or unused for terminals)
    BmdRef m1;           // linear moment (never the zero function)
    std::int64_t value;  // terminal value (0 for internal nodes)
  };
  struct CacheEntry {
    BmdRef a = 0, b = 0, result = 0;
    std::uint32_t generation = 0;  // entry valid iff == the active generation
  };

  [[nodiscard]] BmdRef make(std::uint32_t var, BmdRef m0, BmdRef m1);
  [[nodiscard]] BmdRef intern_terminal(std::int64_t value);
  [[nodiscard]] BmdRef intern(std::uint32_t var, BmdRef m0, BmdRef m1, std::int64_t value);
  void rehash(std::size_t new_capacity);
  void check_budget() const;
  [[nodiscard]] static std::int64_t checked_add(std::int64_t a, std::int64_t b);
  [[nodiscard]] static std::int64_t checked_mul(std::int64_t a, std::int64_t b);

  BmdOptions options_;
  int num_vars_ = 0;
  std::vector<Node> nodes_;
  std::vector<BmdRef> table_;  // open addressing; sentinel = kNoRef
  std::size_t table_mask_ = 0;
  std::vector<CacheEntry> add_cache_;
  std::vector<CacheEntry> mul_cache_;
  std::vector<CacheEntry> subst_cache_;
  std::size_t cache_mask_ = 0;
  int subst_var_ = -1;     // active substitute() context; a change bumps the
  BmdRef subst_h_ = 0;     // generation below, invalidating subst_cache_ in O(1)
  std::uint32_t subst_generation_ = 1;
  BmdRef zero_ = 0;
  BmdRef one_ = 0;
};

}  // namespace optpower
