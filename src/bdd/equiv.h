// Formal equivalence checking of multiplier netlists against the word-level
// golden spec (p = a * b) and against each other, built on the BDD engine.
//
// Combinational netlists are compiled to canonical output BDDs and compared
// by reference (canonicity makes equality a pointer compare).  Sequential
// netlists (pipelined, parallelized, add-and-shift) are proven by *orbit
// analysis*: with the operands held at symbolic constants, the symbolic
// state sequence of a deterministic circuit must eventually revisit a state;
// once a state repeats and every cycle of the repeating loop showed the spec
// product on the outputs, the outputs equal the product for all future time
// - steady-state equivalence, machine-checked rather than latency-assumed.
//
// The textbook obstruction is BDD blowup: multiplier outputs have
// exponential BDDs in the smaller operand width (why monolithic BDDs famously
// fail on c6288).  EquivOptions::case_split_bits conquers it the classic
// way: enumerate the top bits of operand b, pin them to constants, and prove
// each cofactor subproblem independently - each case is a multiplier with a
// narrow free b operand whose BDDs stay small, and the conjunction of all
// cases is the full theorem.  Cases fan out over exec/ workers.
//
// Every counterexample is replayed through EventSimulator as a self-check:
// the BDD engine's predicted outputs must match gate-level simulation on the
// falsifying vector (tests/bdd/equiv_test.cpp runs this on deliberately
// mutated netlists).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bdd/bmd.h"
#include "bdd/symbolic.h"
#include "exec/exec.h"
#include "netlist/netlist.h"

namespace optpower {

/// Equivalence-check configuration.
struct EquivOptions {
  /// Enumerate the top `case_split_bits` bits of operand b as constants
  /// (2^bits independent subproblems).  0 = monolithic.  16-bit multipliers
  /// need ~8; small widths run monolithically.
  int case_split_bits = 0;
  /// Safety bound on symbolic cycles before a sequential check gives up
  /// (result.proven = false).  0 = auto (8 * width + 16, far beyond the
  /// orbit entry of every generator in mult/).
  int max_cycles = 0;
  SymbolicOptions symbolic;
};

/// A falsifying input vector with its replay evidence.
struct EquivCounterexample {
  std::vector<bool> inputs;     ///< per primary input of the checked netlist
  std::uint64_t a = 0;          ///< operand words (when a/b buses parse)
  std::uint64_t b = 0;
  std::uint64_t expected = 0;   ///< golden word (spec product / other netlist)
  std::uint64_t predicted = 0;  ///< BDD-evaluated outputs at `cycle`
  std::uint64_t simulated = 0;  ///< EventSimulator outputs at `cycle`
  int cycle = 1;                ///< clock cycles after applying the vector
  /// Gate-level replay reproduced the symbolic prediction AND the mismatch
  /// against `expected` - the engine-vs-simulator self-check.
  bool replay_confirms = false;
};

/// Verdict of an equivalence check.
struct EquivResult {
  bool equivalent = false;
  bool proven = false;          ///< false: max_cycles hit before orbit closure
  std::size_t cases = 0;        ///< case-split subproblems checked
  std::size_t bdd_nodes = 0;    ///< summed arena nodes across all cases
  int matched_at_cycle = 0;     ///< worst-case first cycle of stable spec match
  std::size_t collapsed_regions = 0;  ///< word-level: adder regions proven + rewritten
  /// Word-level sequential checks only: the state-closure induction could
  /// not be established symbolically (shift registers holding bit-reversed
  /// product words have no tractable word encoding), so the theorem proven
  /// is the BOUNDED one - outputs equal a*b for ALL operand values at every
  /// steady cycle of the first `closure_window` periods - rather than for
  /// all time.  False everywhere else.
  bool bounded = false;
  std::optional<EquivCounterexample> counterexample;
};

/// Prove `netlist` computes p = a * b for the width-bit input buses a/b
/// (input names "a[i]"/"b[i]", outputs in declaration order = p LSB first).
/// Combinational netlists are checked in one settle; sequential ones by
/// orbit analysis with operands held constant.  Case-split subproblems fan
/// out over `ctx`; the verdict and counterexample are identical for any
/// thread count (lowest failing case wins).
[[nodiscard]] EquivResult check_multiplier_against_spec(const Netlist& netlist, int width,
                                                        const EquivOptions& options = {},
                                                        const ExecContext& ctx = {});

/// Prove two purely combinational netlists compute the same function, pin
/// for pin (inputs and outputs matched by port name).  Supports the same
/// case splitting when both netlists carry a/b operand buses.
[[nodiscard]] EquivResult check_combinational_equal(const Netlist& lhs, const Netlist& rhs,
                                                    const EquivOptions& options = {},
                                                    const ExecContext& ctx = {});

/// Configuration of the word-level (BMD) proof.
struct WordEquivOptions {
  BmdOptions bmd;
  /// Budget for the bit-level BDD proofs that certify each collapsed adder
  /// region (see check_multiplier_word_level); adder logic has linear BDDs,
  /// but the Wallace partial-product cut legitimately needs a few million
  /// nodes at width 16.
  BddOptions region_proof{16u << 20, 16};
  /// Bound on the concrete orbit probe for sequential netlists; 0 = auto
  /// (8 * width + 16).
  int max_cycles = 0;
  /// Extra (T0 += P) retries when the symbolically verified steady window
  /// turns out to start later than the concrete probe suggested.
  int orbit_retries = 2;
  /// Periods covered by the bounded fallback proof when state closure is
  /// symbolically intractable (see EquivResult::bounded).  One period keeps
  /// every probe inside the first accumulation pass, where the word
  /// polynomials stay small.
  int closure_window = 1;
};

/// Word-level proof that `netlist` computes p = a * b, via Hamaguchi-style
/// backward substitution over binary moment diagrams (bdd/bmd.h): encode
/// sum 2^j out_j over per-net variables, eliminate the net variables in
/// reverse topological order, and compare the resulting input polynomial
/// against (sum 2^i a_i) * (sum 2^j b_j) by canonicity.  Polynomial-size for
/// every multiplier family in mult/ - this is the checker that covers 16x16
/// monolithically, where the bit-level BDD route needs case splitting.
///
/// Sequential netlists: a concrete simulation probe suggests the transient
/// length T0 and steady period P; the proof then symbolically unrolls
/// T0 + P + 1 cycles and verifies (for ALL operand values, held constant)
/// that the registered state words repeat, state(T0) == state(T0 + P), and
/// that every steady-window output word equals a * b - which by induction
/// extends to all cycles beyond T0.
[[nodiscard]] EquivResult check_multiplier_word_level(const Netlist& netlist, int width,
                                                      const WordEquivOptions& options = {});

}  // namespace optpower
