// Word-level multiplier equivalence: Hamaguchi-style backward substitution
// over binary moment diagrams, plus an adder-region collapse pre-pass that
// makes carry-select structures tractable.
//
// Plain backward substitution telescopes beautifully through ripple/array
// structures (carries enter the output word linearly and cancel), but a
// carry-select adder multiplies whole speculative sums by data-dependent
// mux selects - the select booleans then materialize as moment polynomials,
// which is exponential.  The collapse pass restores the telescoping shape:
// it finds the maximal fanout-closed {FA, HA, MUX2, BUF} regions around
// every data-selected mux, derives bit positions by structural offset
// propagation, PROVES with bit-level BDDs (linear-sized for adder logic)
// that each region computes the bits of its weighted input sum, and then
// rewrites the region into an equivalent FA/HA compressor network before
// the BMD substitution runs.  The rewrite is sound because it only happens
// after the region's sum identity has been verified for all cut values.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "bdd/equiv.h"
#include "bdd/equiv_detail.h"
#include "netlist/cell.h"
#include "sim/event_sim.h"
#include "util/error.h"
#include "util/format.h"
#include "util/random.h"

namespace optpower {

using namespace equiv_detail;

// ---------------------------------------------------------------------------
// Word-level proof (BMD backward substitution)
// ---------------------------------------------------------------------------

namespace {

/// Variable bookkeeping + reverse-topological elimination over one purely
/// combinational netlist.  Net variables are ordered deepest-first (the
/// variable being eliminated is always at or near the top of the diagram,
/// so substitution touches only shallow structure), primary inputs last,
/// interleaved a[0], b[0], a[1], ... for the final spec compare.
class BackwardSubstitution {
 public:
  BackwardSubstitution(const Netlist& netlist, const BmdOptions& options)
      : netlist_(netlist), topo_(netlist.topo_order()), mgr_(0, options) {
    net_var_.assign(netlist.num_nets(), -1);
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      for (const NetId out : netlist.cell(*it).outputs) net_var_[out] = mgr_.add_var();
    }
    const std::vector<int> order = bdd_variable_order(netlist, VarOrderHeuristic::kInterleaved);
    std::vector<std::size_t> by_position(netlist.primary_inputs().size());
    for (std::size_t i = 0; i < by_position.size(); ++i) by_position[i] = i;
    std::sort(by_position.begin(), by_position.end(),
              [&](std::size_t a, std::size_t b) { return order[a] < order[b]; });
    pi_var_.assign(by_position.size(), -1);
    for (const std::size_t pi : by_position) {
      const int v = mgr_.add_var();
      pi_var_[pi] = v;
      net_var_[netlist.primary_inputs()[pi]] = v;
    }
  }

  [[nodiscard]] BmdManager& manager() noexcept { return mgr_; }
  [[nodiscard]] int pi_var(std::size_t pi) const { return pi_var_[pi]; }

  /// sum of weight * net over the given probes.
  [[nodiscard]] BmdRef word(const std::vector<std::pair<NetId, std::int64_t>>& probes) {
    BmdRef g = mgr_.constant(0);
    for (const auto& [net, weight] : probes) {
      g = mgr_.add(g, mgr_.mul_const(mgr_.var(net_var_[net]), weight));
    }
    return g;
  }

  /// Weighted word of an input bus (over primary-input variables).
  [[nodiscard]] BmdRef input_word(const std::vector<std::size_t>& pins) {
    BmdRef g = mgr_.constant(0);
    for (std::size_t bit = 0; bit < pins.size(); ++bit) {
      g = mgr_.add(g, mgr_.mul_const(mgr_.var(pi_var_[pins[bit]]),
                                     std::int64_t{1} << bit));
    }
    return g;
  }

  /// Eliminate every net variable from `g` (reverse topological order).
  [[nodiscard]] BmdRef reduce(BmdRef g) {
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const CellInstance& cell = netlist_.cell(*it);
      for (std::size_t pin = cell.outputs.size(); pin-- > 0;) {
        const int v = net_var_[cell.outputs[pin]];
        if (mgr_.level(g) > static_cast<std::uint32_t>(v)) continue;  // absent
        g = mgr_.substitute(g, v, moment(cell, pin));
      }
    }
    return g;
  }

 private:
  /// The gate's moment polynomial for one output pin, over its input nets'
  /// variables.
  [[nodiscard]] BmdRef moment(const CellInstance& cell, std::size_t pin) {
    BmdManager& m = mgr_;
    const auto in = [&](std::size_t k) { return m.var(net_var_[cell.inputs[k]]); };
    switch (cell.type) {
      case CellType::kConst0: return m.constant(0);
      case CellType::kConst1: return m.constant(1);
      case CellType::kBuf: return in(0);
      case CellType::kInv: return m.b_not(in(0));
      case CellType::kAnd2: return m.b_and(in(0), in(1));
      case CellType::kOr2: return m.b_or(in(0), in(1));
      case CellType::kNand2: return m.b_not(m.b_and(in(0), in(1)));
      case CellType::kNor2: return m.b_not(m.b_or(in(0), in(1)));
      case CellType::kXor2: return m.b_xor(in(0), in(1));
      case CellType::kXnor2: return m.b_not(m.b_xor(in(0), in(1)));
      case CellType::kMux2:
        // a + s * (b - a)
        return m.add(in(0), m.mul(in(2), m.sub(in(1), in(0))));
      case CellType::kHalfAdder:
        return pin == 0 ? m.b_xor(in(0), in(1)) : m.b_and(in(0), in(1));
      case CellType::kFullAdder: {
        if (pin == 0) return m.b_xor(m.b_xor(in(0), in(1)), in(2));
        // majority = xy + xc + yc - 2xyc
        const BmdRef xy = m.mul(in(0), in(1));
        const BmdRef pairs = m.add(m.add(xy, m.mul(in(0), in(2))), m.mul(in(1), in(2)));
        return m.sub(pairs, m.mul_const(m.mul(xy, in(2)), 2));
      }
      case CellType::kDff:
      case CellType::kDffEnable: break;
    }
    throw NetlistError("BackwardSubstitution: sequential cell in combinational cone");
  }

  const Netlist& netlist_;
  std::vector<CellId> topo_;
  BmdManager mgr_;
  std::vector<int> net_var_;
  std::vector<int> pi_var_;
};

// ---------------------------------------------------------------------------
// Adder-region collapse
// ---------------------------------------------------------------------------

/// Union-find over nets with integer position offsets:
/// pos(net) = pos(parent) + offset.
class PositionUf {
 public:
  std::pair<NetId, std::int64_t> find(NetId n) {
    auto it = entries_.find(n);
    if (it == entries_.end()) {
      entries_.emplace(n, Entry{n, 0});
      return {n, 0};
    }
    if (it->second.parent == n) return {n, it->second.offset};
    const auto [root, parent_off] = find(it->second.parent);
    it = entries_.find(n);  // re-find: the recursion may rehash
    it->second.parent = root;
    it->second.offset += parent_off;
    return {root, it->second.offset};
  }

  /// Impose pos(a) = pos(b) + delta.  Returns false on contradiction.
  bool merge(NetId a, NetId b, std::int64_t delta) {
    const auto [ra, oa] = find(a);
    const auto [rb, ob] = find(b);
    if (ra == rb) return oa == ob + delta;
    entries_[ra] = Entry{rb, ob + delta - oa};
    return true;
  }

 private:
  struct Entry {
    NetId parent;
    std::int64_t offset;
  };
  std::unordered_map<NetId, Entry> entries_;
};

constexpr std::int64_t kNoPos = INT64_MIN;

/// One fanout-closed region of {FA, HA, MUX2, BUF} cells around
/// data-selected muxes, with solved bit positions.
struct Region {
  std::vector<CellId> cells;  // topological order
  std::vector<NetId> inputs;  // external non-constant inputs (cut)
  std::vector<NetId> outputs;  // internal nets read outside / POs
  bool has_data_mux = false;   // contains a mux with a PI-dependent select
  /// Concrete output bits at the all-zero cut assignment: the region's
  /// additive constant C, read off as sum 2^output_pos[j] * out_zero[j].
  /// Tie-cell inputs must NOT enter the spec sum directly - a carry-select
  /// adder's speculative one-chain has a const1 carry-in that contributes
  /// only when its rail is selected, which nets out to zero.  The BDD proof
  /// rejects the region if C does not capture the region's true constant behavior.
  std::vector<char> out_zero;
  std::vector<std::int64_t> input_pos;
  std::vector<std::int64_t> output_pos;
};

/// Weighted-bit compressor: reduce the per-position buckets with 3:2 / 2:2
/// steps until one entry per position remains.  Shared by the BDD sum PROOF
/// and the netlist REWRITE so the two sides always build the identical
/// reduction schedule; `full_add(a,b,c)` / `half_add(a,b)` return
/// {sum, carry}.
template <typename Bit, typename FullAdd, typename HalfAdd>
std::vector<Bit> compress_sum_bits(std::vector<std::vector<Bit>> buckets, Bit empty,
                                   FullAdd&& full_add, HalfAdd&& half_add) {
  for (std::size_t p = 0; p < buckets.size(); ++p) {
    while (buckets[p].size() > 1) {
      if (p + 1 >= buckets.size()) buckets.emplace_back();
      if (buckets[p].size() >= 3) {
        const Bit a = buckets[p][buckets[p].size() - 3];
        const Bit b = buckets[p][buckets[p].size() - 2];
        const Bit c = buckets[p][buckets[p].size() - 1];
        buckets[p].resize(buckets[p].size() - 3);
        const auto [sum, carry] = full_add(a, b, c);
        buckets[p].push_back(sum);
        buckets[p + 1].push_back(carry);
      } else {
        const Bit a = buckets[p][0];
        const Bit b = buckets[p][1];
        buckets[p].clear();
        const auto [sum, carry] = half_add(a, b);
        buckets[p].push_back(sum);
        buckets[p + 1].push_back(carry);
      }
    }
  }
  std::vector<Bit> bits(buckets.size(), empty);
  for (std::size_t p = 0; p < buckets.size(); ++p) {
    if (!buckets[p].empty()) bits[p] = buckets[p][0];
  }
  return bits;
}

std::vector<BddRef> bdd_sum_bits(BddManager& m, std::vector<std::vector<BddRef>> buckets) {
  return compress_sum_bits<BddRef>(
      std::move(buckets), kBddFalse,
      [&](BddRef a, BddRef b, BddRef c) {
        const BddManager::BitSum s = m.full_add(a, b, c);
        return std::pair<BddRef, BddRef>{s.sum, s.carry};
      },
      [&](BddRef a, BddRef b) {
        return std::pair<BddRef, BddRef>{m.bdd_xor(a, b), m.bdd_and(a, b)};
      });
}

/// The netlist twin of bdd_sum_bits: synthesizes the FA/HA network a proven
/// region is replaced with.
std::vector<NetId> synthesize_sum_bits(Netlist& nl, std::vector<std::vector<NetId>> buckets) {
  return compress_sum_bits<NetId>(
      std::move(buckets), kNoNet,
      [&](NetId a, NetId b, NetId c) {
        const auto outs = nl.add_cell(CellType::kFullAdder, {a, b, c});
        return std::pair<NetId, NetId>{outs[0], outs[1]};
      },
      [&](NetId a, NetId b) {
        const auto outs = nl.add_cell(CellType::kHalfAdder, {a, b});
        return std::pair<NetId, NetId>{outs[0], outs[1]};
      });
}

/// Detect the collapse regions of a combinational netlist and solve their
/// positions.  Returns false when a region is structurally not a positioned
/// adder (the caller bails out of the collapse).
bool find_regions(const Netlist& src, const std::vector<char>& blacklist,
                  std::vector<Region>* regions_out, std::vector<char>* in_region_out) {
  const std::size_t num_cells = src.num_cells();
  const auto& fanout = src.fanout();

  // Data dependence: does a net's cone reach a primary input?
  std::vector<char> pi_dep(src.num_nets(), 0);
  for (const NetId pi : src.primary_inputs()) pi_dep[pi] = 1;
  for (const CellId c : src.topo_order()) {
    const CellInstance& cell = src.cell(c);
    char dep = 0;
    for (const NetId in : cell.inputs) dep |= pi_dep[in];
    for (const NetId out : cell.outputs) pi_dep[out] = dep;
  }
  std::vector<char> is_po(src.num_nets(), 0);
  for (const NetId po : src.primary_outputs()) is_po[po] = 1;

  const auto const_value_of = [&](NetId n) -> int {  // -1: not a tie net
    const CellId drv = src.driver_of(n);
    if (drv == Netlist::kNoCell) return -1;
    if (src.cell(drv).type == CellType::kConst0) return 0;
    if (src.cell(drv).type == CellType::kConst1) return 1;
    return -1;
  };

  // Seed: muxes with data-dependent selects - the structure that breaks
  // word-level backward substitution - plus tie-selected muxes (a
  // carry-select adder's first block has a const0 carry-in select); the
  // latter keep a region from cutting through the middle of a speculative
  // block.  A region without any data-selected mux that fails its sum proof
  // is simply left uncollapsed (substitution handles constant selects), so
  // over-seeding cannot turn a provable netlist into an unproven one.
  std::vector<char>& in_region = *in_region_out;
  in_region.assign(num_cells, 0);
  bool any_data = false;
  for (CellId c = 0; c < num_cells; ++c) {
    const CellInstance& cell = src.cell(c);
    if (blacklist[c] || cell.type != CellType::kMux2) continue;
    if (pi_dep[cell.inputs[2]]) {
      in_region[c] = 1;
      any_data = true;
    } else if (const_value_of(cell.inputs[2]) >= 0) {
      in_region[c] = 1;
    }
  }
  if (!any_data) {
    in_region.assign(num_cells, 0);
    return true;  // no data muxes: caller keeps the source netlist
  }

  // Grow: absorb sum-preserving cells whose entire fanout lies inside the
  // region and whose outputs are not primary outputs.  Muxes are only
  // absorbed when their select is data-dependent or constant - a
  // control-selected hold mux must stay outside (it becomes a cut input).
  const auto absorbable = [&](CellId c) {
    if (blacklist[c]) return false;
    const CellInstance& cell = src.cell(c);
    switch (cell.type) {
      case CellType::kFullAdder:
      case CellType::kHalfAdder:
      case CellType::kBuf: break;
      case CellType::kMux2:
        if (!pi_dep[cell.inputs[2]] && const_value_of(cell.inputs[2]) < 0) return false;
        break;
      default: return false;
    }
    for (const NetId out : cell.outputs) {
      if (is_po[out]) return false;
      for (const CellId reader : fanout[out]) {
        if (!in_region[reader]) return false;
      }
    }
    return true;
  };
  // Downstream absorption: a mux whose select is data-dependent or constant
  // and whose data rails both come from region cells belongs to the region
  // too - a carry-select first block's sum muxes have a const0 select and
  // drive primary outputs, so the upstream rule alone would leave the
  // contradictory speculative rails exposed as region outputs.
  const auto absorbs_downstream = [&](CellId c) {
    if (blacklist[c]) return false;
    const CellInstance& cell = src.cell(c);
    if (cell.type != CellType::kMux2) return false;
    if (!pi_dep[cell.inputs[2]] && const_value_of(cell.inputs[2]) < 0) return false;
    for (int pin = 0; pin < 2; ++pin) {
      const CellId drv = src.driver_of(cell.inputs[static_cast<std::size_t>(pin)]);
      if (drv == Netlist::kNoCell || !in_region[drv]) return false;
    }
    return true;
  };
  bool grew = true;
  while (grew) {
    grew = false;
    for (CellId c = num_cells; c-- > 0;) {
      if (!in_region[c] && (absorbable(c) || absorbs_downstream(c))) {
        in_region[c] = 1;
        grew = true;
      }
    }
  }

  // Connected components along DIRECT region-cell -> region-cell edges.
  // Merging via arbitrary shared nets would fuse regions that only share a
  // tie net or an external operand - and worse, in an unrolled sequential
  // netlist it fuses consecutive cycles' adders into one component that has
  // plain cells both upstream and downstream (a cycle once the region is
  // contracted to a single scheduling unit).
  std::vector<int> comp_of_cell(num_cells, -1);
  int num_comps = 0;
  for (CellId seed = 0; seed < num_cells; ++seed) {
    if (!in_region[seed] || comp_of_cell[seed] >= 0) continue;
    const int comp = num_comps++;
    std::vector<CellId> stack{seed};
    comp_of_cell[seed] = comp;
    while (!stack.empty()) {
      const CellId c = stack.back();
      stack.pop_back();
      const CellInstance& cell = src.cell(c);
      for (const NetId n : cell.inputs) {
        const CellId drv = src.driver_of(n);
        if (drv != Netlist::kNoCell && in_region[drv] && comp_of_cell[drv] < 0) {
          comp_of_cell[drv] = comp;
          stack.push_back(drv);
        }
      }
      for (const NetId n : cell.outputs) {
        for (const CellId reader : fanout[n]) {
          if (in_region[reader] && comp_of_cell[reader] < 0) {
            comp_of_cell[reader] = comp;
            stack.push_back(reader);
          }
        }
      }
    }
  }

  std::vector<Region>& regions = *regions_out;
  regions.assign(static_cast<std::size_t>(num_comps), Region{});
  for (const CellId c : src.topo_order()) {
    if (in_region[c]) regions[static_cast<std::size_t>(comp_of_cell[c])].cells.push_back(c);
  }

  for (Region& region : regions) {
    PositionUf uf;
    std::vector<char> internal(src.num_nets(), 0);
    for (const CellId c : region.cells) {
      for (const NetId out : src.cell(c).outputs) internal[out] = 1;
    }
    // Offset propagation, anchored at each cell's first output (cell outputs
    // are never tie nets).  Constant inputs are NOT merged: one shared tie
    // net may sit at many positions (the const0 carry-in of every
    // carry-select block), so constants get per-USE positions later.
    std::vector<std::pair<NetId, NetId>> select_edges;  // (select, mux output)
    std::vector<std::pair<NetId, NetId>> external_selects;  // (select, mux output)
    for (const CellId c : region.cells) {
      const CellInstance& cell = src.cell(c);
      const NetId anchor = cell.outputs[0];
      const auto merge_in = [&](std::size_t pin, std::int64_t delta) {
        if (const_value_of(cell.inputs[pin]) >= 0) return true;  // per-use later
        return uf.merge(cell.inputs[pin], anchor, delta);
      };
      bool consistent = true;
      switch (cell.type) {
        case CellType::kFullAdder:
          consistent = merge_in(0, 0) && merge_in(1, 0) && merge_in(2, 0) &&
                       uf.merge(cell.outputs[1], anchor, 1);
          break;
        case CellType::kHalfAdder:
          consistent = merge_in(0, 0) && merge_in(1, 0) && uf.merge(cell.outputs[1], anchor, 1);
          break;
        case CellType::kMux2: {
          consistent = merge_in(0, 0) && merge_in(1, 0);
          // Internal selects stitch position islands (soft, below).  An
          // external non-constant select is a legitimate cut input: a
          // correct selection bank satisfies word(out) = A + sel * 2^base,
          // so the select acts as one more input bit at the bank's lowest
          // mux position.  The BDD sum proof validates that reading.
          const NetId sel = cell.inputs[2];
          if (internal[sel]) {
            select_edges.emplace_back(sel, cell.outputs[0]);
          } else if (const_value_of(sel) < 0) {
            external_selects.emplace_back(sel, cell.outputs[0]);
          }
          if (pi_dep[sel]) region.has_data_mux = true;
          break;
        }
        case CellType::kBuf: consistent = merge_in(0, 0); break;
        default: return false;
      }
      if (!consistent) {
        if (std::getenv("OPTPOWER_DEBUG_COLLAPSE") != nullptr)
          std::fprintf(stderr, "collapse: inconsistent positions at cell %u type %d\n", c,
                       (int)cell.type);
        return false;
      }
    }
    // Soft stitching across mux boundaries: a sum-selection mux's select is
    // the carry INTO its bit, i.e. pos(select) == pos(output).  That links
    // the per-block position islands of a carry-select adder (blocks touch
    // each other only through select pins).  It is deliberately soft - the
    // block-boundary carry-chain mux violates it (its select is the carry
    // into the block base, its output the carry out of the block top), so
    // contradictions are simply skipped.  A wrong stitch cannot produce a
    // wrong verdict: the BDD sum proof below rejects any mislabeled region.
    for (const auto& [sel, out] : select_edges) (void)uf.merge(sel, out, 0);

    // Classify external inputs (cut nets) and collect read-outside outputs.
    std::vector<char> seen(src.num_nets(), 0);
    for (const CellId c : region.cells) {
      const CellInstance& cell = src.cell(c);
      for (std::size_t pin = 0; pin < cell.inputs.size(); ++pin) {
        const NetId n = cell.inputs[pin];
        if (internal[n] || seen[n]) continue;
        if (cell.type == CellType::kMux2 && pin == 2) continue;  // constant select
        if (const_value_of(n) >= 0) continue;  // collected per use below
        seen[n] = 1;
        region.inputs.push_back(n);
      }
    }
    for (const CellId c : region.cells) {
      for (const NetId out : src.cell(c).outputs) {
        bool read_outside = is_po[out] != 0;
        for (const CellId reader : fanout[out]) {
          // A reader in a DIFFERENT region is outside this one.
          if (!in_region[reader] || comp_of_cell[reader] != comp_of_cell[c]) {
            read_outside = true;
          }
        }
        if (read_outside) region.outputs.push_back(out);
      }
    }
    if (region.outputs.empty()) {
      // Dead logic (nothing observable reads the region): collapse to
      // nothing.  The proof and the synthesis both trivially accept it.
      region.inputs.clear();
      continue;
    }

    // Resolve positions; every positioned net must share one frame (anchor
    // on the cut when there is one, else on the outputs - an input-free
    // region computes a constant).
    const NetId ref_root =
        uf.find(region.inputs.empty() ? region.outputs[0] : region.inputs[0]).first;
    const auto pos_of = [&](NetId n) -> std::int64_t {
      const auto [root, off] = uf.find(n);
      return root == ref_root ? off : kNoPos;
    };
    std::int64_t min_pos = INT64_MAX;
    const auto collect = [&](const NetId n, std::vector<std::int64_t>& into) {
      const std::int64_t p = pos_of(n);
      into.push_back(p);
      if (p != kNoPos) min_pos = std::min(min_pos, p);
      return p != kNoPos;
    };
    for (const NetId n : region.inputs) {
      if (!collect(n, region.input_pos)) {
        if (std::getenv("OPTPOWER_DEBUG_COLLAPSE") != nullptr) {
          std::fprintf(stderr,
                       "collapse: input net %u off-frame (region %zu cells, %zu in, %zu out)\n",
                       n, region.cells.size(), region.inputs.size(), region.outputs.size());
        }
        return false;
      }
    }
    for (const NetId n : region.outputs) {
      if (!collect(n, region.output_pos)) {
        if (std::getenv("OPTPOWER_DEBUG_COLLAPSE") != nullptr)
          std::fprintf(stderr, "collapse: output net %u off-frame\n", n);
        return false;
      }
    }
    // External selects become cut inputs at the minimum position of their
    // mux banks (word(bank) = A + sel * 2^base for a correct selection
    // bank; the sum proof validates the reading).
    {
      std::unordered_map<NetId, std::int64_t> sel_pos;
      for (const auto& [sel, anchor] : external_selects) {
        const std::int64_t p = pos_of(anchor);
        if (p == kNoPos) return false;
        const auto it = sel_pos.find(sel);
        if (it == sel_pos.end()) {
          sel_pos.emplace(sel, p);
        } else {
          it->second = std::min(it->second, p);
        }
      }
      for (const auto& [sel, p] : sel_pos) {
        if (std::find(region.inputs.begin(), region.inputs.end(), sel) !=
            region.inputs.end()) {
          continue;  // already a positioned operand; the proof arbitrates
        }
        region.inputs.push_back(sel);
        region.input_pos.push_back(p);
        min_pos = std::min(min_pos, p);
      }
    }
    const auto normalize = [&](std::vector<std::int64_t>& ps) {
      for (auto& p : ps) {
        p -= min_pos;
        if (p < 0 || p > 62) return false;
      }
      return true;
    };
    if (!normalize(region.input_pos) || !normalize(region.output_pos)) return false;

    // The region's additive constant, observed concretely at the all-zero
    // cut assignment (tie inputs at their tied values).
    std::vector<char> values(src.num_nets(), 0);
    for (const CellId c : region.cells) {
      for (const NetId in : src.cell(c).inputs) {
        if (const_value_of(in) == 1) values[in] = 1;
      }
    }
    for (const CellId c : region.cells) {
      const CellInstance& cell = src.cell(c);
      std::uint8_t packed = 0;
      for (std::size_t pin = 0; pin < cell.inputs.size(); ++pin) {
        packed |= static_cast<std::uint8_t>((values[cell.inputs[pin]] ? 1u : 0u) << pin);
      }
      const std::uint8_t out = eval_cell(cell.type, packed);
      for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
        values[cell.outputs[k]] = static_cast<char>((out >> k) & 1u);
      }
    }
    for (const NetId out : region.outputs) region.out_zero.push_back(values[out]);
  }
  return true;
}

/// Bit-level BDD proof: for every cut assignment, region output j equals
/// bit output_pos[j] of (sum 2^input_pos[i] x_i + sum 2^const_pos[k] c_k).
bool prove_region_is_adder(const Netlist& src, const Region& region,
                           const BddOptions& proof_options, std::size_t* nodes) {
  BddManager m(static_cast<int>(region.inputs.size()), proof_options);
  std::vector<BddRef> values(src.num_nets(), kBddFalse);
  // Position-major variable order keeps the carry profile narrow.
  std::vector<std::size_t> order(region.inputs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return region.input_pos[a] != region.input_pos[b] ? region.input_pos[a] < region.input_pos[b]
                                                      : a < b;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    values[region.inputs[order[rank]]] = m.var(static_cast<int>(rank));
  }
  // Tie nets (operands and constant selects alike) take their constant.
  for (const CellId c : region.cells) {
    for (const NetId in : src.cell(c).inputs) {
      const CellId drv = src.driver_of(in);
      if (drv == Netlist::kNoCell) continue;
      if (src.cell(drv).type == CellType::kConst0) values[in] = kBddFalse;
      if (src.cell(drv).type == CellType::kConst1) values[in] = kBddTrue;
    }
  }
  for (const CellId c : region.cells) {
    const CellInstance& cell = src.cell(c);
    switch (cell.type) {
      case CellType::kBuf: values[cell.outputs[0]] = values[cell.inputs[0]]; break;
      case CellType::kMux2:
        values[cell.outputs[0]] =
            m.ite(values[cell.inputs[2]], values[cell.inputs[1]], values[cell.inputs[0]]);
        break;
      case CellType::kHalfAdder:
        values[cell.outputs[0]] = m.bdd_xor(values[cell.inputs[0]], values[cell.inputs[1]]);
        values[cell.outputs[1]] = m.bdd_and(values[cell.inputs[0]], values[cell.inputs[1]]);
        break;
      case CellType::kFullAdder: {
        const BddManager::BitSum s =
            m.full_add(values[cell.inputs[0]], values[cell.inputs[1]], values[cell.inputs[2]]);
        values[cell.outputs[0]] = s.sum;
        values[cell.outputs[1]] = s.carry;
        break;
      }
      default: return false;
    }
  }
  std::vector<std::vector<BddRef>> buckets;
  const auto bucket_push = [&](std::int64_t pos, BddRef ref) {
    if (static_cast<std::size_t>(pos) >= buckets.size()) {
      buckets.resize(static_cast<std::size_t>(pos) + 1);
    }
    buckets[static_cast<std::size_t>(pos)].push_back(ref);
  };
  for (std::size_t i = 0; i < region.inputs.size(); ++i) {
    bucket_push(region.input_pos[i], values[region.inputs[i]]);
  }
  for (std::size_t j = 0; j < region.outputs.size(); ++j) {
    if (region.out_zero[j]) bucket_push(region.output_pos[j], kBddTrue);
  }
  const std::vector<BddRef> bits = bdd_sum_bits(m, std::move(buckets));
  for (std::size_t j = 0; j < region.outputs.size(); ++j) {
    const auto p = static_cast<std::size_t>(region.output_pos[j]);
    const BddRef expected = p < bits.size() ? bits[p] : kBddFalse;
    if (values[region.outputs[j]] != expected) {
      if (std::getenv("OPTPOWER_DEBUG_COLLAPSE") != nullptr) {
        std::fprintf(stderr, "collapse: sum proof failed at output %zu (pos %zu, %zu cells)\n",
                     j, p, region.cells.size());
      }
      return false;
    }
  }
  *nodes += m.node_count();
  return true;
}

struct CollapseResult {
  Netlist netlist{"collapsed"};
  std::vector<NetId> net_map;  ///< source net -> rewritten net (kNoNet = region-internal)
  bool changed = false;        ///< false: no data-selected mux; use the source netlist
  bool ok = true;              ///< false: some region failed its adder proof
  std::size_t regions = 0;
  std::size_t proof_nodes = 0;
};

CollapseResult collapse_adder_regions(const Netlist& src, const BddOptions& proof_options) {
  CollapseResult result;
  std::vector<Region> regions;
  std::vector<char> in_region;
  std::vector<char> blacklist(src.num_cells(), 0);
  // Over-seeded regions (constant selects only) that fail their sum proof
  // are blacklisted and the analysis repeats, so region boundaries and cut
  // classification always describe the final kept set.  Monotone blacklist
  // growth bounds the loop.
  for (;;) {
    regions.clear();
    if (!find_regions(src, blacklist, &regions, &in_region)) {
      result.ok = false;
      return result;
    }
    if (regions.empty()) return result;
    bool dropped = false;
    for (Region& region : regions) {
      if (prove_region_is_adder(src, region, proof_options, &result.proof_nodes)) continue;
      if (region.has_data_mux) {
        // A data-selected mux structure that is not a provable adder: the
        // BMD substitution would blow up on it, so the whole proof bails.
        result.ok = false;
        return result;
      }
      // Tie-select-only region: substitution handles it exactly; retry
      // without it.
      for (const CellId c : region.cells) blacklist[c] = 1;
      dropped = true;
    }
    if (!dropped) break;
  }
  result.changed = true;
  result.regions = regions.size();

  // Rebuild with each region contracted to one supernode, in unit-topological
  // order (regions may interleave with their readers in the flat cell order).
  result.netlist = Netlist(src.name() + "_collapsed");
  result.net_map.assign(src.num_nets(), kNoNet);
  for (std::size_t i = 0; i < src.primary_inputs().size(); ++i) {
    result.net_map[src.primary_inputs()[i]] = result.netlist.add_input(src.input_names()[i]);
  }

  const std::size_t num_cells = src.num_cells();
  std::vector<int> comp_of_cell(num_cells, -1);
  for (std::size_t r = 0; r < regions.size(); ++r) {
    for (const CellId c : regions[r].cells) comp_of_cell[c] = static_cast<int>(r);
  }
  const std::size_t num_units = num_cells + regions.size();
  const auto unit_of_cell = [&](CellId c) -> std::size_t {
    return comp_of_cell[c] < 0 ? c : num_cells + static_cast<std::size_t>(comp_of_cell[c]);
  };
  std::vector<std::vector<std::size_t>> unit_readers(num_units);
  std::vector<int> pending(num_units, 0);
  const auto& fanout = src.fanout();
  for (NetId n = 0; n < src.num_nets(); ++n) {
    const CellId drv = src.driver_of(n);
    if (drv == Netlist::kNoCell) continue;
    const std::size_t producer = unit_of_cell(drv);
    for (const CellId reader : fanout[n]) {
      const std::size_t consumer = unit_of_cell(reader);
      if (consumer == producer) continue;
      unit_readers[producer].push_back(consumer);
      ++pending[consumer];
    }
  }

  const auto emit_cell = [&](CellId c) {
    const CellInstance& cell = src.cell(c);
    if (cell.type == CellType::kConst0) {
      result.net_map[cell.outputs[0]] = result.netlist.const0();
      return;
    }
    if (cell.type == CellType::kConst1) {
      result.net_map[cell.outputs[0]] = result.netlist.const1();
      return;
    }
    std::vector<NetId> ins;
    ins.reserve(cell.inputs.size());
    for (const NetId in : cell.inputs) ins.push_back(result.net_map[in]);
    const auto outs = result.netlist.add_cell(cell.type, ins);
    for (std::size_t k = 0; k < outs.size(); ++k) result.net_map[cell.outputs[k]] = outs[k];
  };
  const auto emit_region = [&](const Region& region) {
    std::vector<std::vector<NetId>> buckets;
    const auto bucket_push = [&](std::int64_t pos, NetId net) {
      if (static_cast<std::size_t>(pos) >= buckets.size()) {
        buckets.resize(static_cast<std::size_t>(pos) + 1);
      }
      buckets[static_cast<std::size_t>(pos)].push_back(net);
    };
    for (std::size_t i = 0; i < region.inputs.size(); ++i) {
      bucket_push(region.input_pos[i], result.net_map[region.inputs[i]]);
    }
    for (std::size_t j = 0; j < region.outputs.size(); ++j) {
      if (region.out_zero[j]) bucket_push(region.output_pos[j], result.netlist.const1());
    }
    const std::vector<NetId> bits = synthesize_sum_bits(result.netlist, std::move(buckets));
    for (std::size_t j = 0; j < region.outputs.size(); ++j) {
      const auto p = static_cast<std::size_t>(region.output_pos[j]);
      result.net_map[region.outputs[j]] =
          p < bits.size() && bits[p] != kNoNet ? bits[p] : result.netlist.const0();
    }
  };

  // Kahn over units, smallest-id first for a deterministic rebuild.
  std::vector<std::size_t> ready;
  for (std::size_t u = 0; u < num_units; ++u) {
    if (pending[u] == 0) ready.push_back(u);
  }
  std::make_heap(ready.begin(), ready.end(), std::greater<>());
  std::size_t emitted = 0;
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>());
    const std::size_t u = ready.back();
    ready.pop_back();
    if (u < num_cells) {
      // Region members keep their (edge-free) unit ids; their region's unit
      // does the emitting.
      if (comp_of_cell[static_cast<CellId>(u)] < 0) emit_cell(static_cast<CellId>(u));
    } else {
      emit_region(regions[u - num_cells]);
    }
    ++emitted;
    for (const std::size_t reader : unit_readers[u]) {
      if (--pending[reader] == 0) {
        ready.push_back(reader);
        std::push_heap(ready.begin(), ready.end(), std::greater<>());
      }
    }
  }
  if (emitted != num_units) {
    // A region is not convex (a path leaves it and re-enters through plain
    // cells), so the contracted unit graph has a cycle.  Bail honestly.
    result.ok = false;
    return result;
  }
  for (std::size_t i = 0; i < src.primary_outputs().size(); ++i) {
    const NetId mapped = result.net_map[src.primary_outputs()[i]];
    require(mapped != kNoNet, "collapse_adder_regions: unmapped primary output");
    result.netlist.add_output(src.output_names()[i], mapped);
  }
  result.netlist.verify();
  return result;
}

/// Concrete orbit probe: drive one fixed pseudo-random vector, return the
/// first (T0, P) with state(T0) == state(T0 + P).
struct OrbitGuess {
  int t0 = 0;
  int period = 0;
  bool found = false;
};

OrbitGuess concrete_orbit(const Netlist& netlist, int max_cycles) {
  EventSimulator sim(netlist, SimDelayMode::kUnit);
  Pcg32 rng(0x0b5e55ed5eedULL);
  std::vector<bool> inputs(netlist.primary_inputs().size());
  for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = rng.next_bool();
  sim.set_inputs(inputs);
  std::vector<CellId> seq_cells;
  for (CellId c = 0; c < netlist.num_cells(); ++c) {
    if (cell_spec(netlist.cell(c).type).is_sequential) seq_cells.push_back(c);
  }
  std::vector<std::vector<char>> history;
  OrbitGuess guess;
  for (int t = 1; t <= max_cycles; ++t) {
    sim.step_cycle();
    std::vector<char> state;
    state.reserve(seq_cells.size());
    for (const CellId c : seq_cells) {
      state.push_back(sim.value(netlist.cell(c).outputs[0]) ? 1 : 0);
    }
    for (std::size_t k = 0; k < history.size(); ++k) {
      if (history[k] == state) {
        guess.t0 = static_cast<int>(k) + 1;
        guess.period = t - guess.t0;
        guess.found = true;
        return guess;
      }
    }
    history.push_back(std::move(state));
  }
  return guess;
}

/// Register-dependency analysis: is the register graph acyclic (a pure
/// feed-forward pipeline), and how deep is the longest register chain?
/// With held inputs an acyclic-register netlist settles structurally: a
/// depth-k register holds its final value from cycle k on, so state closure
/// needs no symbolic proof and a single output probe at depth+1 suffices.
struct RegisterGraph {
  bool acyclic = false;
  int depth = 0;  ///< longest register chain (0 = combinational)
};

RegisterGraph analyze_registers(const Netlist& netlist) {
  std::vector<CellId> seq_cells;
  std::vector<int> seq_index(netlist.num_cells(), -1);
  for (CellId c = 0; c < netlist.num_cells(); ++c) {
    if (cell_spec(netlist.cell(c).type).is_sequential) {
      seq_index[c] = static_cast<int>(seq_cells.size());
      seq_cells.push_back(c);
    }
  }
  RegisterGraph rg;
  if (seq_cells.empty()) {
    rg.acyclic = true;
    return rg;
  }
  // deps[i] = registers whose Q is in the combinational cone of i's inputs.
  // A kDffEnable holds its own value (q' = en ? d : q): that is a self-edge.
  std::vector<std::vector<int>> deps(seq_cells.size());
  for (std::size_t i = 0; i < seq_cells.size(); ++i) {
    const CellInstance& cell = netlist.cell(seq_cells[i]);
    if (cell.type == CellType::kDffEnable) {
      deps[i].push_back(static_cast<int>(i));
      continue;  // self-loop: cyclic regardless of the cone
    }
    std::vector<char> seen(netlist.num_nets(), 0);
    std::vector<NetId> stack(cell.inputs.begin(), cell.inputs.end());
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      if (seen[n]) continue;
      seen[n] = 1;
      const CellId drv = netlist.driver_of(n);
      if (drv == Netlist::kNoCell) continue;
      if (seq_index[drv] >= 0) {
        deps[i].push_back(seq_index[drv]);
        continue;
      }
      for (const NetId in : netlist.cell(drv).inputs) stack.push_back(in);
    }
  }
  // Longest-path DP over a Kahn order; a leftover node means a cycle.
  std::vector<int> pending(seq_cells.size(), 0);
  std::vector<std::vector<int>> readers(seq_cells.size());
  for (std::size_t i = 0; i < deps.size(); ++i) {
    for (const int j : deps[i]) {
      readers[static_cast<std::size_t>(j)].push_back(static_cast<int>(i));
      ++pending[i];
    }
  }
  std::vector<int> depth(seq_cells.size(), 1);
  std::vector<int> ready;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const int i = ready.back();
    ready.pop_back();
    ++processed;
    for (const int r : readers[static_cast<std::size_t>(i)]) {
      depth[static_cast<std::size_t>(r)] =
          std::max(depth[static_cast<std::size_t>(r)], depth[static_cast<std::size_t>(i)] + 1);
      if (--pending[static_cast<std::size_t>(r)] == 0) ready.push_back(r);
    }
  }
  if (processed != seq_cells.size()) return rg;  // cyclic
  rg.acyclic = true;
  rg.depth = *std::max_element(depth.begin(), depth.end());
  return rg;
}

/// Unrolled combinational image of a sequential netlist, with probe nets.
struct Unrolled {
  Netlist netlist{"unrolled"};
  /// Probe output nets, appended as primary outputs in this order: for each
  /// steady-window cycle t in (T0, T0+P] the PO image of cycle t, then the
  /// state bits after cycle T0, then the state bits after cycle T0 + P.
  std::vector<std::vector<NetId>> out_at;  // per steady cycle
  std::vector<NetId> state_t0;
  std::vector<NetId> state_t1;
};

Unrolled unroll_netlist(const Netlist& source, int t0, int period) {
  Unrolled u;
  u.netlist = Netlist(source.name() + "_unroll");
  std::vector<NetId> pi_map;
  pi_map.reserve(source.primary_inputs().size());
  for (const auto& name : source.input_names()) pi_map.push_back(u.netlist.add_input(name));

  std::vector<CellId> seq_cells;
  for (CellId c = 0; c < source.num_cells(); ++c) {
    if (cell_spec(source.cell(c).type).is_sequential) seq_cells.push_back(c);
  }
  const std::vector<CellId> topo = source.topo_order();

  // Q values per sequential cell, currently s_{c-1}; reset state is zero.
  std::unordered_map<CellId, NetId> q_value;
  for (const CellId c : seq_cells) q_value[c] = u.netlist.const0();

  // Constant folding: control logic (counters, decoders, load/phase
  // signals) is input-independent, so from the zero reset state it
  // evaluates to tie nets at build time.  Without this fold, the hold
  // muxes of enable registers stay symbolic in the control variables and
  // mix every cycle's register contents into the probe polynomials - the
  // word-level proof then blows up on functions that are really constants.
  const NetId u_c0 = u.netlist.const0();
  const NetId u_c1 = u.netlist.const1();
  const auto const_of = [&](NetId u_net) -> int {
    if (u_net == u_c0) return 0;
    if (u_net == u_c1) return 1;
    return -1;
  };

  const int total = t0 + period + 1;  // copy c computes the image over s_{c-1}
  for (int c = 1; c <= total; ++c) {
    // Combinational image over (s_{c-1}, x).
    std::unordered_map<NetId, NetId> net_map;
    for (std::size_t i = 0; i < pi_map.size(); ++i) {
      net_map[source.primary_inputs()[i]] = pi_map[i];
    }
    for (const CellId sc : seq_cells) net_map[source.cell(sc).outputs[0]] = q_value[sc];
    for (const CellId cc : topo) {
      const CellInstance& cell = source.cell(cc);
      if (cell_spec(cell.type).is_sequential) continue;
      if (cell.type == CellType::kConst0) {
        net_map[cell.outputs[0]] = u_c0;
        continue;
      }
      if (cell.type == CellType::kConst1) {
        net_map[cell.outputs[0]] = u_c1;
        continue;
      }
      std::vector<NetId> ins;
      ins.reserve(cell.inputs.size());
      bool all_const = true;
      std::uint8_t packed = 0;
      for (std::size_t pin = 0; pin < cell.inputs.size(); ++pin) {
        const NetId mapped_in = net_map.at(cell.inputs[pin]);
        ins.push_back(mapped_in);
        const int cv = const_of(mapped_in);
        if (cv < 0) {
          all_const = false;
        } else {
          packed |= static_cast<std::uint8_t>(static_cast<std::uint8_t>(cv) << pin);
        }
      }
      if (all_const) {
        const std::uint8_t out = eval_cell(cell.type, packed);
        for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
          net_map[cell.outputs[k]] = ((out >> k) & 1u) ? u_c1 : u_c0;
        }
        continue;
      }
      // Partial constant folding.  This is not just an optimization: an
      // AND(x, const0) left standing keeps x's word polynomial alive in the
      // backward substitution until the control cone reduces - long enough
      // for a dead accumulator pass to blow the node budget.
      const auto alias = [&](NetId out, NetId to) { net_map[out] = to; };
      const int c0v = const_of(ins[0]);
      const int c1v = cell.inputs.size() > 1 ? const_of(ins[1]) : -1;
      const int known01 = c0v >= 0 ? c0v : c1v;
      bool folded = true;
      switch (cell.type) {
        // Only constant-RESULT folds for the two-input gates: identity
        // folds (AND with const1 aliasing its operand through) would
        // dissolve the gate barrier between consecutive cycles' adder
        // regions and fuse them into a non-convex blob.
        case CellType::kAnd2:
          if (known01 == 0) alias(cell.outputs[0], u_c0);
          else folded = false;
          break;
        case CellType::kOr2:
          if (known01 == 1) alias(cell.outputs[0], u_c1);
          else folded = false;
          break;
        case CellType::kNand2:
          if (known01 == 0) alias(cell.outputs[0], u_c1);
          else folded = false;
          break;
        case CellType::kNor2:
          if (known01 == 1) alias(cell.outputs[0], u_c0);
          else folded = false;
          break;
        case CellType::kXor2:
        case CellType::kXnor2:
          folded = false;
          break;
        case CellType::kMux2:
          if (const_of(ins[2]) >= 0) {
            alias(cell.outputs[0], const_of(ins[2]) == 1 ? ins[1] : ins[0]);
          } else if (ins[0] == ins[1]) {
            alias(cell.outputs[0], ins[0]);
          } else {
            folded = false;
          }
          break;
        // FA/HA stay un-folded even with constant inputs: folding them into
        // XNOR/OR/INV gates would turn a carry-select adder's speculative
        // rails into non-absorbable logic and break the region collapse
        // (the sum proof handles their constant pins exactly anyway).
        default: folded = false; break;
      }
      if (folded) continue;
      const auto outs = u.netlist.add_cell(cell.type, ins);
      for (std::size_t k = 0; k < outs.size(); ++k) net_map[cell.outputs[k]] = outs[k];
    }
    // OUT(t) is observed after cycle t's edge, i.e. in copy t+1's image.
    const int t_observed = c - 1;
    if (t_observed > t0 && t_observed <= t0 + period) {
      std::vector<NetId> outs;
      outs.reserve(source.primary_outputs().size());
      for (const NetId po : source.primary_outputs()) outs.push_back(net_map.at(po));
      u.out_at.push_back(std::move(outs));
    }
    // Clock edge c: s_c from the image (kDffEnable holds via a mux, folded
    // when its enable is a build-time constant).
    std::unordered_map<CellId, NetId> next_q;
    for (const CellId sc : seq_cells) {
      const CellInstance& cell = source.cell(sc);
      const NetId d = net_map.at(cell.inputs[0]);
      if (cell.type == CellType::kDffEnable) {
        const NetId en = net_map.at(cell.inputs[1]);
        const int env = const_of(en);
        if (env >= 0) {
          next_q[sc] = env == 1 ? d : q_value[sc];
        } else {
          next_q[sc] = u.netlist.add_gate(CellType::kMux2, {q_value[sc], d, en});
        }
      } else {
        next_q[sc] = d;
      }
    }
    q_value = std::move(next_q);
    if (c == t0) {
      for (const CellId sc : seq_cells) u.state_t0.push_back(q_value[sc]);
    }
    if (c == t0 + period) {
      for (const CellId sc : seq_cells) u.state_t1.push_back(q_value[sc]);
    }
  }
  // Expose every probe net as a primary output (gives them stable handles
  // and keeps verify() happy about dangling logic).
  int tag = 0;
  for (const auto& outs : u.out_at) {
    for (std::size_t j = 0; j < outs.size(); ++j) {
      u.netlist.add_output(strprintf("probe_t%d[%zu]", tag, j), outs[j]);
    }
    ++tag;
  }
  for (std::size_t j = 0; j < u.state_t0.size(); ++j) {
    u.netlist.add_output(strprintf("state0[%zu]", j), u.state_t0[j]);
  }
  for (std::size_t j = 0; j < u.state_t1.size(); ++j) {
    u.netlist.add_output(strprintf("state1[%zu]", j), u.state_t1[j]);
  }
  u.netlist.verify();
  return u;
}

}  // namespace

EquivResult check_multiplier_word_level(const Netlist& netlist, int width,
                                        const WordEquivOptions& options) {
  require(width >= 1 && width <= 31, "check_multiplier_word_level: width must lie in [1, 31]");
  require(netlist.primary_outputs().size() <= 62,
          "check_multiplier_word_level: more than 62 outputs");
  const std::vector<std::size_t> a_pins = parse_bus(netlist, "a", width);
  const std::vector<std::size_t> b_pins = parse_bus(netlist, "b", width);
  const std::size_t out_width = netlist.primary_outputs().size();

  EquivResult result;
  result.cases = 1;

  const auto make_cx = [&](BackwardSubstitution& bs, BmdRef got, BmdRef spec, int cycle,
                           const Netlist& replay_netlist) {
    BmdManager& m = bs.manager();
    const BmdRef diff = m.sub(got, spec);
    const std::vector<char> assignment = m.find_nonzero(diff);
    EquivCounterexample cx;
    cx.inputs.assign(netlist.primary_inputs().size(), false);
    for (std::size_t i = 0; i < cx.inputs.size(); ++i) {
      const int v = bs.pi_var(i);
      cx.inputs[i] =
          v >= 0 && static_cast<std::size_t>(v) < assignment.size() && assignment[v] != 0;
    }
    cx.a = word_from_bits(cx.inputs, a_pins);
    cx.b = word_from_bits(cx.inputs, b_pins);
    cx.expected = static_cast<std::uint64_t>(m.eval(spec, assignment));
    cx.predicted = static_cast<std::uint64_t>(m.eval(got, assignment));
    cx.cycle = cycle;
    cx.simulated = replay_event_sim(replay_netlist, cx.inputs, cycle);
    cx.replay_confirms = cx.simulated == cx.predicted && cx.simulated != cx.expected;
    result.counterexample = cx;
  };

  if (!netlist_has_sequential(netlist)) {
    const CollapseResult collapsed = collapse_adder_regions(netlist, options.region_proof);
    if (!collapsed.ok) {
      result.proven = false;  // a mux region is not a provable adder
      return result;
    }
    const Netlist& target = collapsed.changed ? collapsed.netlist : netlist;
    result.collapsed_regions = collapsed.regions;
    result.bdd_nodes = collapsed.proof_nodes;
    BackwardSubstitution bs(target, options.bmd);
    std::vector<std::pair<NetId, std::int64_t>> probes;
    for (std::size_t j = 0; j < out_width; ++j) {
      probes.emplace_back(target.primary_outputs()[j], std::int64_t{1} << j);
    }
    const BmdRef got = bs.reduce(bs.word(probes));
    const BmdRef spec = bs.manager().mul(bs.input_word(parse_bus(target, "a", width)),
                                         bs.input_word(parse_bus(target, "b", width)));
    result.proven = true;
    result.equivalent = got == spec;
    result.matched_at_cycle = 1;
    result.bdd_nodes += bs.manager().node_count();
    if (!result.equivalent) make_cx(bs, got, spec, 1, netlist);
    return result;
  }

  // Feed-forward pipelines settle structurally (depth-k registers hold their
  // final value from cycle k on): probe one steady cycle, no closure proof.
  // Cyclic register graphs (counters, accumulators, enable holds) go through
  // the concrete orbit probe + symbolic state-closure route.
  const RegisterGraph rg = analyze_registers(netlist);
  OrbitGuess guess;
  if (rg.acyclic) {
    guess.t0 = rg.depth;
    guess.period = 1;
    guess.found = true;
  } else {
    const int max_cycles = options.max_cycles > 0 ? options.max_cycles : 8 * width + 16;
    guess = concrete_orbit(netlist, max_cycles);
  }
  if (!guess.found) {
    result.proven = false;
    return result;
  }
  // One steady-window check over `u`: collapse, substitute, compare every
  // probed output word against the spec polynomial.  `check_closure` adds
  // the state(t0) == state(t0+P) induction step that extends the verdict to
  // all time; it throws NumericalError when the state words are word-level
  // intractable (the bounded fallback below catches that).
  const auto run_window = [&](const Unrolled& u, int t0, bool check_closure,
                              bool* closed) -> bool {
    const CollapseResult collapsed = collapse_adder_regions(u.netlist, options.region_proof);
    if (!collapsed.ok) {
      result.proven = false;  // a mux region is not a provable adder
      *closed = true;         // do not retry: this will not improve
      return true;
    }
    const Netlist& target = collapsed.changed ? collapsed.netlist : u.netlist;
    const auto mapped = [&](NetId n) { return collapsed.changed ? collapsed.net_map[n] : n; };
    result.collapsed_regions = collapsed.regions;
    result.bdd_nodes = collapsed.proof_nodes;
    BackwardSubstitution bs(target, options.bmd);
    BmdManager& m = bs.manager();

    // State closure: state(t0) == state(t0 + P), word-chunked (equality of
    // the packed words of 0/1 bits is bitwise equality by uniqueness of
    // binary representation; 32-bit chunks keep intermediate moment
    // coefficients far from the int64 overflow guard).
    *closed = true;
    constexpr std::size_t kChunk = 32;
    for (std::size_t base = 0; check_closure && base < u.state_t0.size() && *closed;
         base += kChunk) {
      std::vector<std::pair<NetId, std::int64_t>> p0;
      std::vector<std::pair<NetId, std::int64_t>> p1;
      for (std::size_t j = base; j < std::min(base + kChunk, u.state_t0.size()); ++j) {
        p0.emplace_back(mapped(u.state_t0[j]), std::int64_t{1} << (j - base));
        p1.emplace_back(mapped(u.state_t1[j]), std::int64_t{1} << (j - base));
      }
      if (std::getenv("OPTPOWER_DEBUG_COLLAPSE") != nullptr)
        std::fprintf(stderr, "word: closure chunk %zu (nodes %zu)\n", base, m.node_count());
      *closed = bs.reduce(bs.word(p0)) == bs.reduce(bs.word(p1));
    }
    if (!*closed) return false;  // transient longer than probed: retry later t0

    const BmdRef spec = m.mul(bs.input_word(parse_bus(target, "a", width)),
                              bs.input_word(parse_bus(target, "b", width)));
    result.proven = true;
    result.equivalent = true;
    result.matched_at_cycle = t0 + 1;
    for (std::size_t w = 0; w < u.out_at.size(); ++w) {
      std::vector<std::pair<NetId, std::int64_t>> probes;
      for (std::size_t j = 0; j < out_width; ++j) {
        probes.emplace_back(mapped(u.out_at[w][j]), std::int64_t{1} << j);
      }
      if (std::getenv("OPTPOWER_DEBUG_COLLAPSE") != nullptr)
        std::fprintf(stderr, "word: out probe %zu (nodes %zu)\n", w, m.node_count());
      const BmdRef got = bs.reduce(bs.word(probes));
      if (got != spec) {
        result.equivalent = false;
        make_cx(bs, got, spec, t0 + 1 + static_cast<int>(w), netlist);
        break;
      }
    }
    result.bdd_nodes += m.node_count();
    return true;
  };

  bool closure_intractable = false;
  for (int attempt = 0; attempt <= options.orbit_retries && !closure_intractable; ++attempt) {
    const int t0 = guess.t0 + attempt * guess.period;
    const Unrolled u = unroll_netlist(netlist, t0, guess.period);
    bool closed = false;
    try {
      if (run_window(u, t0, /*check_closure=*/!rg.acyclic, &closed)) return result;
    } catch (const NumericalError&) {
      // The state words have no tractable moment encoding (e.g. a shift
      // register holding bit-reversed product bits): closure cannot be
      // proven word-level.  Fall back to the bounded-window theorem.
      closure_intractable = true;
    }
  }

  // Bounded fallback: prove, for ALL operand values, that every steady
  // cycle of the first `closure_window` periods shows a * b.  Universally
  // quantified over inputs but time-bounded; EquivResult::bounded says so.
  const int window = std::max(1, options.closure_window);
  const Unrolled u = unroll_netlist(netlist, guess.t0, window * guess.period);
  bool closed = false;
  result.bounded = true;
  (void)run_window(u, guess.t0, /*check_closure=*/false, &closed);
  return result;
}

}  // namespace optpower
