#include "bdd/symbolic.h"

#include <algorithm>
#include <string>

#include "netlist/cell.h"
#include "util/error.h"

namespace optpower {
namespace {

/// Bus prefix of a port name ("a[13]" -> "a"); names without an index are
/// their own bus.
std::string bus_prefix(const std::string& name) {
  const std::size_t bracket = name.find('[');
  return bracket == std::string::npos ? name : name.substr(0, bracket);
}

std::vector<int> interleaved_order(const Netlist& netlist) {
  const auto& names = netlist.input_names();
  std::vector<std::string> prefixes;
  std::vector<std::vector<std::size_t>> groups;  // pi indices per bus
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string prefix = bus_prefix(names[i]);
    const auto it = std::find(prefixes.begin(), prefixes.end(), prefix);
    if (it == prefixes.end()) {
      prefixes.push_back(prefix);
      groups.push_back({i});
    } else {
      groups[static_cast<std::size_t>(it - prefixes.begin())].push_back(i);
    }
  }
  std::vector<int> position(names.size(), 0);
  int next = 0;
  for (std::size_t round = 0;; ++round) {
    bool any = false;
    for (const auto& group : groups) {
      if (round < group.size()) {
        position[group[round]] = next++;
        any = true;
      }
    }
    if (!any) break;
  }
  return position;
}

std::vector<int> topo_cone_order(const Netlist& netlist) {
  // First-visit order of a depth-first walk from the primary outputs
  // (declaration order), descending through each driver's input pins in pin
  // order.  Inputs feeding the same shallow output cone (e.g. a[0], b[0]
  // under p[0] of a multiplier) become adjacent variables, which is what
  // keeps the array/Wallace BDDs in their polynomial-ish regime.
  const std::size_t num_pis = netlist.primary_inputs().size();
  std::vector<int> position(num_pis, -1);
  std::vector<std::size_t> pi_of_net(netlist.num_nets(), num_pis);
  for (std::size_t i = 0; i < num_pis; ++i) pi_of_net[netlist.primary_inputs()[i]] = i;

  std::vector<char> seen(netlist.num_nets(), 0);
  int next = 0;
  std::vector<NetId> stack;
  for (const NetId po : netlist.primary_outputs()) {
    stack.push_back(po);
    while (!stack.empty()) {
      const NetId net = stack.back();
      stack.pop_back();
      if (seen[net]) continue;
      seen[net] = 1;
      if (pi_of_net[net] < num_pis) {
        if (position[pi_of_net[net]] < 0) position[pi_of_net[net]] = next++;
        continue;
      }
      const CellId drv = netlist.driver_of(net);
      if (drv == Netlist::kNoCell) continue;
      const auto& inputs = netlist.cell(drv).inputs;
      // Reverse push so pin 0 is visited first.
      for (auto it = inputs.rbegin(); it != inputs.rend(); ++it) stack.push_back(*it);
    }
  }
  for (std::size_t i = 0; i < num_pis; ++i) {
    if (position[i] < 0) position[i] = next++;  // dead inputs last
  }
  return position;
}

}  // namespace

std::vector<int> bdd_variable_order(const Netlist& netlist, VarOrderHeuristic heuristic) {
  switch (heuristic) {
    case VarOrderHeuristic::kDeclaration: {
      std::vector<int> position(netlist.primary_inputs().size());
      for (std::size_t i = 0; i < position.size(); ++i) position[i] = static_cast<int>(i);
      return position;
    }
    case VarOrderHeuristic::kInterleaved: return interleaved_order(netlist);
    case VarOrderHeuristic::kTopoCone: return topo_cone_order(netlist);
  }
  throw InvalidArgument("bdd_variable_order: unknown heuristic");
}

SymbolicSimulator::SymbolicSimulator(const Netlist& netlist, const SymbolicOptions& options)
    : SymbolicSimulator(netlist,
                        std::vector<int>(netlist.primary_inputs().size(), kSymbolicInput),
                        options) {}

SymbolicSimulator::SymbolicSimulator(const Netlist& netlist, const std::vector<int>& fixed,
                                     const SymbolicOptions& options)
    : netlist_(netlist), options_(options), manager_(0, options.bdd), fixed_(fixed) {
  require(fixed_.size() == netlist_.primary_inputs().size(),
          "SymbolicSimulator: fixed-input vector must have one entry per primary input");
  netlist_.verify();
  topo_ = netlist_.topo_order();
  order_ = bdd_variable_order(netlist_, options_.order);
  values_.assign(netlist_.num_nets(), kBddFalse);
  dff_next_.assign(netlist_.num_cells(), kBddFalse);
  input_var_.assign(fixed_.size(), -1);
  cell_nets_.reserve(netlist_.num_nets());
  for (NetId n = 0; n < netlist_.num_nets(); ++n) {
    if (netlist_.driver_of(n) != Netlist::kNoCell) cell_nets_.push_back(n);
  }
  // Fixed pins hold their constant from the start; symbolic pins begin at 0
  // like EventSimulator's reset state, until the first injection.
  for (std::size_t i = 0; i < fixed_.size(); ++i) {
    if (fixed_[i] != kSymbolicInput) {
      values_[netlist_.primary_inputs()[i]] = BddManager::constant(fixed_[i] != 0);
    }
  }
  settle();  // combinational image of the all-zero state (constants included)
}

void SymbolicSimulator::inject_fresh_inputs() {
  // Allocate this period's variables in heuristic order: pin with batch
  // position 0 first.  Batches stack period after period, so within every
  // period the relative order is identical.
  std::vector<std::size_t> by_position;
  by_position.reserve(fixed_.size());
  for (std::size_t i = 0; i < fixed_.size(); ++i) {
    if (fixed_[i] == kSymbolicInput) by_position.push_back(i);
  }
  std::sort(by_position.begin(), by_position.end(),
            [&](std::size_t a, std::size_t b) { return order_[a] < order_[b]; });
  for (const std::size_t pi : by_position) {
    const int v = manager_.add_var();
    input_var_[pi] = v;
    values_[netlist_.primary_inputs()[pi]] = manager_.var(v);
  }
}

namespace {

/// Shared combinational cell semantics over BDD values (the symbolic
/// eval_cell); writes the cell's output nets into `values`.
void eval_cell_bdd(BddManager& m, const CellInstance& cell, std::vector<BddRef>& values) {
  const auto in = [&](std::size_t pin) { return values[cell.inputs[pin]]; };
  switch (cell.type) {
    case CellType::kConst0: values[cell.outputs[0]] = kBddFalse; return;
    case CellType::kConst1: values[cell.outputs[0]] = kBddTrue; return;
    case CellType::kBuf: values[cell.outputs[0]] = in(0); return;
    case CellType::kInv: values[cell.outputs[0]] = m.bdd_not(in(0)); return;
    case CellType::kAnd2: values[cell.outputs[0]] = m.bdd_and(in(0), in(1)); return;
    case CellType::kOr2: values[cell.outputs[0]] = m.bdd_or(in(0), in(1)); return;
    case CellType::kNand2: values[cell.outputs[0]] = m.bdd_nand(in(0), in(1)); return;
    case CellType::kNor2: values[cell.outputs[0]] = m.bdd_nor(in(0), in(1)); return;
    case CellType::kXor2: values[cell.outputs[0]] = m.bdd_xor(in(0), in(1)); return;
    case CellType::kXnor2: values[cell.outputs[0]] = m.bdd_xnor(in(0), in(1)); return;
    case CellType::kMux2:
      // inputs {a, b, sel} -> sel ? b : a
      values[cell.outputs[0]] = m.ite(in(2), in(1), in(0));
      return;
    case CellType::kHalfAdder:
      values[cell.outputs[0]] = m.bdd_xor(in(0), in(1));
      values[cell.outputs[1]] = m.bdd_and(in(0), in(1));
      return;
    case CellType::kFullAdder: {
      const BddManager::BitSum s = m.full_add(in(0), in(1), in(2));
      values[cell.outputs[0]] = s.sum;
      values[cell.outputs[1]] = s.carry;
      return;
    }
    case CellType::kDff:
    case CellType::kDffEnable: return;  // sequential: handled by clock_edge()
  }
}

}  // namespace

void SymbolicSimulator::eval_comb_cell(const CellInstance& cell) {
  eval_cell_bdd(manager_, cell, values_);
}

std::vector<BddRef> compile_combinational(BddManager& manager, const Netlist& netlist,
                                          const std::vector<BddRef>& input_values) {
  require(input_values.size() == netlist.primary_inputs().size(),
          "compile_combinational: one input value per primary input required");
  std::vector<BddRef> values(netlist.num_nets(), kBddFalse);
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    values[netlist.primary_inputs()[i]] = input_values[i];
  }
  for (const CellId c : netlist.topo_order()) {
    const CellInstance& cell = netlist.cell(c);
    if (cell_spec(cell.type).is_sequential) {
      throw NetlistError("compile_combinational: netlist '" + netlist.name() +
                         "' contains sequential cells; use SymbolicSimulator");
    }
    eval_cell_bdd(manager, cell, values);
  }
  std::vector<BddRef> out;
  out.reserve(netlist.primary_outputs().size());
  for (const NetId net : netlist.primary_outputs()) out.push_back(values[net]);
  return out;
}

void SymbolicSimulator::settle() {
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (cell_spec(cell.type).is_sequential) continue;
    eval_comb_cell(cell);
  }
}

void SymbolicSimulator::clock_edge() {
  // Sample everything first, then update: a DFF reading another DFF's Q must
  // see the pre-edge value (same two-pass shape as EventSimulator).
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    const BddRef d = values_[cell.inputs[0]];
    if (cell.type == CellType::kDffEnable) {
      const BddRef en = values_[cell.inputs[1]];
      dff_next_[c] = manager_.ite(en, d, values_[cell.outputs[0]]);
    } else {
      dff_next_[c] = d;
    }
  }
  for (const CellId c : topo_) {
    const CellInstance& cell = netlist_.cell(c);
    if (!cell_spec(cell.type).is_sequential) continue;
    values_[cell.outputs[0]] = dff_next_[c];
  }
}

void SymbolicSimulator::step_cycle() {
  settle();
  clock_edge();
  settle();
}

std::vector<BddRef> SymbolicSimulator::outputs() const {
  std::vector<BddRef> out;
  out.reserve(netlist_.primary_outputs().size());
  for (const NetId net : netlist_.primary_outputs()) out.push_back(values_[net]);
  return out;
}

namespace {

bool has_sequential(const Netlist& netlist) {
  for (const auto& cell : netlist.cells()) {
    if (cell_spec(cell.type).is_sequential) return true;
  }
  return false;
}

/// Sum of P(before[n] != after[n]) over `nets`; optionally records the
/// per-net contribution.
double expected_toggles(BddManager& m, const std::vector<BddRef>& before,
                        const std::vector<BddRef>& after, const std::vector<NetId>& nets,
                        std::vector<double>* per_net) {
  double sum = 0.0;
  for (const NetId n : nets) {
    if (before[n] == after[n]) continue;  // canonicity: equal refs never toggle
    const double p = m.probability(m.bdd_xor(before[n], after[n]));
    sum += p;
    if (per_net != nullptr) (*per_net)[n] += p;
  }
  return sum;
}

}  // namespace

ExactActivity exact_activity(const Netlist& netlist, const ExactActivityOptions& options) {
  require(options.num_vectors >= 1, "exact_activity: need >= 1 vectors");
  require(options.cycles_per_vector >= 1, "exact_activity: cycles_per_vector must be >= 1");
  require(options.warmup_vectors >= 0, "exact_activity: warmup must be >= 0");

  const NetlistStats stats = netlist.stats();
  const double n_cells = static_cast<double>(stats.num_cells);

  ExactActivity result;
  result.data_periods = static_cast<std::uint64_t>(options.num_vectors);
  result.net_probability.assign(netlist.num_nets(), 0.0);
  result.net_toggle.assign(netlist.num_nets(), 0.0);

  if (!has_sequential(netlist)) {
    // Closed form: consecutive data vectors are independent, so every
    // cell-driven net toggles with probability 2 p (1 - p) per data period
    // (and holds for the remaining cycles_per_vector - 1 clocks).
    result.combinational = true;
    SymbolicSimulator sym(netlist, options.symbolic);
    sym.inject_fresh_inputs();
    sym.settle();
    BddManager& m = sym.manager();
    double per_period = 0.0;
    for (NetId n = 0; n < netlist.num_nets(); ++n) {
      const double p = m.probability(sym.value(n));
      result.net_probability[n] = p;
    }
    for (const NetId n : sym.cell_driven_nets()) {
      const double toggle = 2.0 * result.net_probability[n] * (1.0 - result.net_probability[n]);
      result.net_toggle[n] = toggle;
      per_period += toggle;
    }
    result.expected_transitions = per_period * static_cast<double>(options.num_vectors);
    result.expected_functional = result.expected_transitions;
    result.activity = n_cells > 0.0 ? 0.5 * per_period / n_cells : 0.0;
    result.glitch_fraction = 0.0;
    result.clock_cycles = static_cast<std::uint64_t>(options.num_vectors) *
                          static_cast<std::uint64_t>(options.cycles_per_vector);
    result.bdd_nodes = m.node_count();
    return result;
  }

  // Sequential: symbolically replay the exact testbench schedule (fresh
  // variables per data period, held for cycles_per_vector clocks), counting
  // expected toggles per phase of every measured cycle - the phases mirror
  // EventSimulator::step_cycle so the expectation matches the zero-delay
  // Monte-Carlo estimator term for term.
  SymbolicSimulator sym(netlist, options.symbolic);
  BddManager& m = sym.manager();
  const std::vector<NetId>& cell_nets = sym.cell_driven_nets();
  std::vector<NetId> comb_nets;
  std::vector<NetId> dff_nets;
  for (const NetId n : cell_nets) {
    if (cell_spec(netlist.cell(netlist.driver_of(n)).type).is_sequential) {
      dff_nets.push_back(n);
    } else {
      comb_nets.push_back(n);
    }
  }

  const int total_periods = options.warmup_vectors + options.num_vectors;
  double transitions = 0.0;
  double functional = 0.0;
  std::vector<BddRef> start;
  std::vector<BddRef> before;
  for (int period = 0; period < total_periods; ++period) {
    const bool measured = period >= options.warmup_vectors;
    const bool last_period = period == total_periods - 1;
    sym.inject_fresh_inputs();
    for (int cycle = 0; cycle < options.cycles_per_vector; ++cycle) {
      if (!measured) {
        sym.step_cycle();
        continue;
      }
      std::vector<double>* per_net = last_period ? &result.net_toggle : nullptr;
      start = sym.values();
      sym.settle();
      transitions += expected_toggles(m, start, sym.values(), comb_nets, per_net);
      before = sym.values();
      sym.clock_edge();
      transitions += expected_toggles(m, before, sym.values(), dff_nets, per_net);
      before = sym.values();
      sym.settle();
      transitions += expected_toggles(m, before, sym.values(), comb_nets, per_net);
      functional += expected_toggles(m, start, sym.values(), cell_nets, nullptr);
      ++result.clock_cycles;
    }
  }
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    result.net_probability[n] = m.probability(sym.value(n));
  }
  result.expected_transitions = transitions;
  result.expected_functional = functional;
  const double denom = n_cells * static_cast<double>(options.num_vectors);
  result.activity = denom > 0.0 ? 0.5 * transitions / denom : 0.0;
  result.glitch_fraction =
      transitions > 0.0 ? std::max(0.0, transitions - functional) / transitions : 0.0;
  result.bdd_nodes = m.node_count();
  return result;
}

}  // namespace optpower
