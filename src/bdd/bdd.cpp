#include "bdd/bdd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/format.h"

namespace optpower {
namespace {

constexpr double kUnknownProb = std::numeric_limits<double>::quiet_NaN();

}  // namespace

BddManager::BddManager(int num_vars, const BddOptions& options) : options_(options) {
  require(num_vars >= 0, "BddManager: num_vars must be >= 0");
  require(options_.ite_cache_bits >= 4 && options_.ite_cache_bits <= 26,
          "BddManager: ite_cache_bits must lie in [4, 26]");
  require(options_.max_nodes >= 16, "BddManager: max_nodes must be >= 16");
  nodes_.reserve(1024);
  nodes_.push_back({kTerminalLevel, kBddFalse, kBddFalse});  // 0 = false
  nodes_.push_back({kTerminalLevel, kBddTrue, kBddTrue});    // 1 = true
  prob_cache_.assign(2, kUnknownProb);
  prob_cache_[kBddFalse] = 0.0;
  prob_cache_[kBddTrue] = 1.0;
  rehash_unique(1024);
  ite_cache_.assign(std::size_t{1} << options_.ite_cache_bits, IteKey{});
  ite_cache_mask_ = ite_cache_.size() - 1;
  for (int i = 0; i < num_vars; ++i) (void)add_var();
}

BddManager::~BddManager() { publish_obs_metrics(); }

void BddManager::publish_obs_metrics() {
  if (!obs::metrics_enabled()) return;
  // Deltas, so repeated mid-life publishes never double-count a call.
  obs::registry().counter("bdd.ite_calls").add(ite_calls_ - published_calls_);
  obs::registry().counter("bdd.ite_cache_hits").add(ite_hits_ - published_hits_);
  published_calls_ = ite_calls_;
  published_hits_ = ite_hits_;
  obs::registry().gauge("bdd.unique_table_nodes").set(static_cast<std::int64_t>(node_count()));
  const std::size_t used = node_count();
  const std::int64_t headroom =
      used >= options_.max_nodes ? 0
                                 : static_cast<std::int64_t>(options_.max_nodes - used);
  obs::registry().gauge("bdd.node_budget_headroom").set(headroom);
}

int BddManager::add_var() {
  const auto index = static_cast<std::uint32_t>(var_refs_.size());
  var_refs_.push_back(unique(index, kBddFalse, kBddTrue));
  var_prob_.push_back(0.5);
  return static_cast<int>(index);
}

BddRef BddManager::var(int i) const {
  require(i >= 0 && i < num_vars(), "BddManager::var: index out of range");
  return var_refs_[static_cast<std::size_t>(i)];
}

BddRef BddManager::nvar(int i) { return bdd_not(var(i)); }

std::uint64_t BddManager::hash_triple(std::uint32_t a, std::uint32_t b,
                                      std::uint32_t c) noexcept {
  // splitmix64-style finalization of the packed triple; empirically uniform
  // enough that the open-addressing tables stay short-probed at 0.7 load.
  std::uint64_t x = (static_cast<std::uint64_t>(a) << 32) ^ (static_cast<std::uint64_t>(b) << 16) ^
                    c ^ 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

void BddManager::rehash_unique(std::size_t new_capacity) {
  unique_table_.assign(new_capacity, kBddFalse);
  unique_mask_ = new_capacity - 1;
  for (BddRef n = 2; n < nodes_.size(); ++n) {
    std::size_t slot = hash_triple(nodes_[n].var, nodes_[n].lo, nodes_[n].hi) & unique_mask_;
    while (unique_table_[slot] != kBddFalse) slot = (slot + 1) & unique_mask_;
    unique_table_[slot] = n;
  }
}

BddRef BddManager::unique(std::uint32_t var, BddRef lo, BddRef hi) {
  // Reduction rule: both children equal -> the node is redundant.
  if (lo == hi) return lo;
  std::size_t slot = hash_triple(var, lo, hi) & unique_mask_;
  while (unique_table_[slot] != kBddFalse) {
    const Node& cand = nodes_[unique_table_[slot]];
    if (cand.var == var && cand.lo == lo && cand.hi == hi) return unique_table_[slot];
    slot = (slot + 1) & unique_mask_;
  }
  if (node_count() >= options_.max_nodes) {
    throw NumericalError(strprintf(
        "BddManager: node budget exceeded (%zu nodes); raise BddOptions::max_nodes or use "
        "case splitting (bdd/equiv.h EquivOptions::case_split_bits)",
        node_count()));
  }
  const auto id = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  prob_cache_.push_back(kUnknownProb);
  unique_table_[slot] = id;
  // Resize at ~0.7 load; rehash invalidates `slot`, so insert before growing.
  if (nodes_.size() * 10 >= unique_table_.size() * 7) rehash_unique(unique_table_.size() * 2);
  return id;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal rules.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  ++ite_calls_;
  const std::size_t slot = hash_triple(f, g, h ^ 0xa5a5a5a5u) & ite_cache_mask_;
  IteKey& entry = ite_cache_[slot];
  if (entry.valid && entry.f == f && entry.g == g && entry.h == h) {
    ++ite_hits_;
    return entry.result;
  }

  const std::uint32_t top =
      std::min(nodes_[f].var, std::min(nodes_[g].var, nodes_[h].var));
  const auto cofactor = [&](BddRef r, bool high_branch) {
    const Node& n = nodes_[r];
    if (n.var != top) return r;
    return high_branch ? n.hi : n.lo;
  };
  const BddRef lo = ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const BddRef hi = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const BddRef result = unique(top, lo, hi);

  // Direct-mapped, lossy: overwriting on collision only costs recomputation.
  ite_cache_[slot] = IteKey{f, g, h, result, true};
  return result;
}

BddManager::BitSum BddManager::full_add(BddRef a, BddRef b, BddRef cin) {
  const BddRef ab = bdd_xor(a, b);
  BitSum s;
  s.sum = bdd_xor(ab, cin);
  // carry = ab ? cin : a  (majority via the xor rail, one ITE).
  s.carry = ite(ab, cin, a);
  return s;
}

bool BddManager::eval(BddRef f, const std::vector<char>& assignment) const {
  while (f > kBddTrue) {
    const Node& n = nodes_[f];
    const bool value = n.var < assignment.size() && assignment[n.var] != 0;
    f = value ? n.hi : n.lo;
  }
  return f == kBddTrue;
}

double BddManager::probability(BddRef f) {
  const double cached = prob_cache_[f];
  if (!std::isnan(cached)) return cached;
  const Node& n = nodes_[f];
  const double p = var_prob_[n.var];
  const double result = (1.0 - p) * probability(n.lo) + p * probability(n.hi);
  prob_cache_[f] = result;
  return result;
}

void BddManager::set_var_probability(int i, double p) {
  require(i >= 0 && i < num_vars(), "BddManager::set_var_probability: index out of range");
  require(p >= 0.0 && p <= 1.0, "BddManager::set_var_probability: p must lie in [0, 1]");
  var_prob_[static_cast<std::size_t>(i)] = p;
  std::fill(prob_cache_.begin() + 2, prob_cache_.end(), kUnknownProb);
}

std::vector<char> BddManager::find_sat(BddRef f) const {
  require(f != kBddFalse, "BddManager::find_sat: function is unsatisfiable");
  std::vector<char> assignment(static_cast<std::size_t>(num_vars()), 0);
  while (f > kBddTrue) {
    const Node& n = nodes_[f];
    // In a reduced diagram every non-false ref reaches the true terminal, so
    // "lo != false" means the 0-branch is satisfiable: prefer it.
    if (n.lo != kBddFalse) {
      f = n.lo;
    } else {
      assignment[n.var] = 1;
      f = n.hi;
    }
  }
  return assignment;
}

std::size_t BddManager::dag_size(BddRef f) const {
  if (f <= kBddTrue) return 0;
  std::vector<BddRef> stack{f};
  // Dense visited bitmap: dag_size is a diagnostic, clarity over memory.
  std::vector<char> seen(nodes_.size(), 0);
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (r <= kBddTrue || seen[r]) continue;
    seen[r] = 1;
    ++count;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return count;
}

}  // namespace optpower
