// Umbrella header: the public API of the optpower library.
//
// Sub-APIs (include individually for faster builds):
//   power/model.h, power/optimum.h, power/closed_form.h  - the paper's core
//   power/surface.h, power/sensitivity.h                 - exploration tools
//   tech/*, arch/*                                       - parameter vectors
//   calib/*                                              - calibration & extraction
//   netlist/*, mult/*, sim/*, sta/*                      - EDA substrates
//   bdd/*                                                - exact activity & equivalence
//   spice/*                                              - mini circuit simulator
//   report/forward_flow.h                                - end-to-end flow
//   serve/*                                              - optimum-serving fleet (docs/SERVING.md)
//   exec/exec.h                                          - parallel sweep engine
#pragma once

#include "arch/architecture.h"
#include "arch/paper_data.h"
#include "bdd/bdd.h"
#include "bdd/bmd.h"
#include "bdd/equiv.h"
#include "bdd/symbolic.h"
#include "calib/calibrate.h"
#include "calib/tech_extract.h"
#include "exec/exec.h"
#include "mult/factory.h"
#include "netlist/builder.h"
#include "netlist/netlist.h"
#include "netlist/transform.h"
#include "power/closed_form.h"
#include "power/model.h"
#include "power/optimum.h"
#include "power/sensitivity.h"
#include "power/surface.h"
#include "report/forward_flow.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/controller.h"
#include "serve/hashing.h"
#include "serve/msg.h"
#include "serve/worker.h"
#include "sim/activity.h"
#include "sim/bitsim.h"
#include "sim/event_sim.h"
#include "spice/testbench.h"
#include "sta/sta.h"
#include "tech/linearization.h"
#include "tech/scaling.h"
#include "tech/stm_cmos09.h"
#include "tech/technology.h"
#include "util/ascii_plot.h"
#include "util/constants.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/format.h"
#include "util/table.h"
#include "util/units.h"
