// Minimal CSV writer for exporting figure series (Fig. 1 power curves,
// Fig. 2 linearization data) so users can replot the paper's figures.
#pragma once

#include <string>
#include <vector>

namespace optpower {

/// Accumulates rows and serializes RFC4180-ish CSV (quotes fields containing
/// commas/quotes/newlines).  Numeric columns are written via %.10g.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render the full document (header + rows), '\n' line endings.
  [[nodiscard]] std::string to_string() const;

  /// Write to a file; throws optpower::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace optpower
