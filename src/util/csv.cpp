#include "util/csv.h"

#include <fstream>

#include "util/error.h"
#include "util/format.h"

namespace optpower {
namespace {

std::string escape_cell(const std::string& cell) {
  const bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "CsvWriter: header must not be empty");
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  require(cells.size() == header_.size(), "CsvWriter::add_row: column count mismatch");
  rows_.push_back(cells);
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(strprintf("%.10g", v));
  add_row(cells);
}

std::string CsvWriter::to_string() const {
  std::string out;
  std::vector<std::string> escaped;
  escaped.reserve(header_.size());
  for (const auto& h : header_) escaped.push_back(escape_cell(h));
  out += join(escaped, ",") + "\n";
  for (const auto& row : rows_) {
    escaped.clear();
    for (const auto& c : row) escaped.push_back(escape_cell(c));
    out += join(escaped, ",") + "\n";
  }
  return out;
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("CsvWriter: cannot open '" + path + "' for writing");
  f << to_string();
  if (!f) throw Error("CsvWriter: write to '" + path + "' failed");
}

}  // namespace optpower
