// Physical constants and derived quantities used throughout the power model.
//
// The paper's equations are parameterized by the thermal voltage Ut = kT/q
// (Eq. 1, 2 of Schuster et al., DATE 2006).  All temperatures are in kelvin,
// all voltages in volts, currents in amperes, capacitances in farads,
// frequencies in hertz and powers in watts unless a name says otherwise.
#pragma once

namespace optpower {

/// Boltzmann constant [J/K] (2019 SI exact value).
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C] (2019 SI exact value).
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Euler's number, used by the alpha-power-law matching factor (Eq. 2).
inline constexpr double kEuler = 2.718281828459045235;

/// Default junction temperature [K] assumed by the paper's fits (room temp).
inline constexpr double kDefaultTemperatureK = 300.0;

/// Thermal voltage Ut = kT/q [V] at temperature `temperature_k`.
[[nodiscard]] constexpr double thermal_voltage(
    double temperature_k = kDefaultTemperatureK) noexcept {
  return kBoltzmann * temperature_k / kElementaryCharge;
}

/// Thermal voltage at the default temperature (~25.852 mV at 300 K).
inline constexpr double kThermalVoltage300K = thermal_voltage();

}  // namespace optpower
