// Deterministic pseudo-random number generation.
//
// The logic-simulation testbenches and property tests must be reproducible
// across platforms, so we carry our own small PCG32 implementation instead of
// relying on std::mt19937's distribution implementations (whose results are
// unspecified across standard libraries for e.g. uniform_int_distribution).
#pragma once

#include <cstdint>

namespace optpower {

/// PCG32 (O'Neill): 64-bit state, 32-bit output, period 2^64.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    state_ = 0U;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Next raw 32-bit output.
  std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, bound) without modulo bias (bound > 0).
  std::uint32_t next_below(std::uint32_t bound) noexcept {
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double next_double() noexcept {
    const std::uint64_t hi = next_u32() >> 5;  // 27 bits
    const std::uint64_t lo = next_u32() >> 6;  // 26 bits
    return static_cast<double>((hi << 26) | lo) * (1.0 / 9007199254740992.0);  // / 2^53
  }

  /// Uniform double in [lo, hi).
  double next_in(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Fair coin / biased coin with probability `p_true`.
  bool next_bool(double p_true = 0.5) noexcept { return next_double() < p_true; }

  /// Uniform n-bit unsigned value (n in [1, 64]).
  std::uint64_t next_bits(int n) noexcept {
    std::uint64_t v = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
    if (n >= 64) return v;
    return v & ((1ULL << n) - 1ULL);
  }

  /// Raw generator registers, for engines that advance many PCG32 streams in
  /// lockstep (the simd/ stimulus kernels) while staying draw-for-draw
  /// identical to this class.
  struct State {
    std::uint64_t state;
    std::uint64_t inc;
  };
  [[nodiscard]] State internal_state() const noexcept { return {state_, inc_}; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace optpower
