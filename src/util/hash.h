// Stable streaming content hash (FNV-1a, 64-bit).
//
// The serving layer's content-addressed result cache needs hashes that are
// identical across processes, runs, and machines, so this is a fixed
// byte-oriented algorithm over explicitly little-endian encodings - never
// std::hash (unspecified, ASLR-seeded in some implementations) and never raw
// struct memory (padding bytes).  Doubles hash their IEEE-754 bit pattern
// verbatim: two parameter sets hash equal exactly when every field is
// bit-equal, which is the same granularity at which the deterministic
// library path reproduces results.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace optpower {

/// Incremental FNV-1a (64-bit).  Feed fields in a fixed documented order;
/// variable-length fields must be length-prefixed by the caller (update_str
/// does this) so field boundaries cannot alias.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  /// Raw bytes, in order.
  void update_bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= static_cast<std::uint64_t>(p[i]);
      hash_ *= kPrime;
    }
  }

  void update_u8(std::uint8_t v) noexcept { update_bytes(&v, 1); }

  /// Fixed-width integers are hashed little-endian regardless of host order.
  void update_u32(std::uint32_t v) noexcept {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    update_bytes(b, sizeof(b));
  }

  void update_u64(std::uint64_t v) noexcept {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    update_bytes(b, sizeof(b));
  }

  /// IEEE-754 bit pattern (bit-equal inputs <=> equal hash contribution).
  void update_f64(double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    update_u64(bits);
  }

  /// Length-prefixed string (so "ab","c" never collides with "a","bc").
  void update_str(const std::string& s) noexcept {
    update_u64(static_cast<std::uint64_t>(s.size()));
    update_bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace optpower
