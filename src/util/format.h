// printf-style string formatting returning std::string, plus numeric
// pretty-printers used by the table/report code.
#pragma once

#include <string>
#include <vector>

namespace optpower {

/// snprintf into a std::string.  Format errors return an empty string.
[[nodiscard]] std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-point formatting with `digits` decimals, e.g. fmt_fixed(3.14159, 2) == "3.14".
[[nodiscard]] std::string fmt_fixed(double v, int digits);

/// Scientific formatting, e.g. fmt_sci(3.34e-6, 2) == "3.34e-06".
[[nodiscard]] std::string fmt_sci(double v, int digits);

/// Engineering-style formatting with an SI suffix (p, n, u, m, "", k, M, G),
/// e.g. fmt_si(3.34e-6, "A") == "3.340 uA".
[[nodiscard]] std::string fmt_si(double v, const std::string& unit, int digits = 3);

/// Left/right padding to a fixed width (spaces).  Strings longer than
/// `width` are returned unchanged.
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

/// Join a list of strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Repeat a character `n` times.
[[nodiscard]] std::string repeat(char c, std::size_t n);

}  // namespace optpower
