// Fixed-width ASCII table builder used by the benchmark harnesses to print
// the paper's tables (Table 1, 3, 4, ...) and by the examples.
//
// Usage:
//   Table t({"Arch", "Vdd [V]", "Ptot [uW]"});
//   t.add_row({"RCA", "0.478", "191.44"});
//   std::cout << t.to_string();
#pragma once

#include <string>
#include <vector>

namespace optpower {

/// Column alignment for rendered cells.
enum class Align { kLeft, kRight };

/// A simple monospace table renderer.  Rows must have exactly as many cells
/// as the header; violations throw InvalidArgument.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row.  Throws InvalidArgument on column-count mismatch.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator line at the current position.
  void add_separator();

  /// Set per-column alignment (default: first column left, rest right).
  void set_align(std::size_t column, Align align);

  /// Optional caption printed above the table.
  void set_caption(std::string caption) { caption_ = std::move(caption); }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept { return header_.size(); }

  /// Render the table, ending with a trailing newline.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
  std::vector<Align> align_;
  std::string caption_;
};

}  // namespace optpower
