// ASCII line plots.  The paper's figures (Fig. 1 power-vs-Vdd curves, Fig. 2
// linearization) are regenerated as terminal plots plus CSV; this module
// implements the terminal half (repro band: hand-roll plotting).
#pragma once

#include <string>
#include <vector>

namespace optpower {

/// One plotted series: x/y samples plus the glyph used for its points.
struct PlotSeries {
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
  std::string label;
};

/// Configuration for an AsciiPlot canvas.
struct PlotOptions {
  int width = 72;    ///< interior columns
  int height = 20;   ///< interior rows
  bool log_y = false;
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders one or more series on a character canvas with axes and a legend.
class AsciiPlot {
 public:
  explicit AsciiPlot(PlotOptions options = {});

  /// Add a series; throws InvalidArgument if x/y sizes differ or are empty.
  void add_series(PlotSeries series);

  /// Add a single marked point (drawn last, e.g. the optimum 'X' markers
  /// from Fig. 1).
  void add_marker(double x, double y, char glyph = 'X', const std::string& label = "");

  /// Render to a multi-line string.
  [[nodiscard]] std::string render() const;

 private:
  PlotOptions options_;
  std::vector<PlotSeries> series_;
};

}  // namespace optpower
