#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/format.h"

namespace optpower {

AsciiPlot::AsciiPlot(PlotOptions options) : options_(std::move(options)) {
  require(options_.width >= 16 && options_.height >= 4, "AsciiPlot: canvas too small");
}

void AsciiPlot::add_series(PlotSeries series) {
  require(!series.x.empty(), "AsciiPlot::add_series: empty series");
  require(series.x.size() == series.y.size(), "AsciiPlot::add_series: x/y size mismatch");
  series_.push_back(std::move(series));
}

void AsciiPlot::add_marker(double x, double y, char glyph, const std::string& label) {
  PlotSeries s;
  s.x = {x};
  s.y = {y};
  s.glyph = glyph;
  s.label = label;
  series_.push_back(std::move(s));
}

std::string AsciiPlot::render() const {
  if (series_.empty()) return "(empty plot)\n";

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double yv = s.y[i];
      if (options_.log_y) {
        if (yv <= 0) continue;
        yv = std::log10(yv);
      }
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, yv);
      ymax = std::max(ymax, yv);
    }
  }
  if (!(xmax > xmin)) xmax = xmin + 1.0;
  if (!(ymax > ymin)) ymax = ymin + 1.0;

  const int w = options_.width;
  const int h = options_.height;
  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));

  const auto to_col = [&](double x) {
    return static_cast<int>(std::lround((x - xmin) / (xmax - xmin) * (w - 1)));
  };
  const auto to_row = [&](double y) {
    if (options_.log_y) y = std::log10(std::max(y, 1e-300));
    const int r = static_cast<int>(std::lround((y - ymin) / (ymax - ymin) * (h - 1)));
    return (h - 1) - r;  // row 0 at top
  };

  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (options_.log_y && s.y[i] <= 0) continue;
      const int c = std::clamp(to_col(s.x[i]), 0, w - 1);
      const int r = std::clamp(to_row(s.y[i]), 0, h - 1);
      canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = s.glyph;
    }
  }

  std::string out;
  if (!options_.title.empty()) out += options_.title + "\n";
  const auto ylab = [&](double frac) {
    const double yv = ymin + frac * (ymax - ymin);
    return pad_left(strprintf("%.4g", options_.log_y ? std::pow(10.0, yv) : yv), 10);
  };
  for (int r = 0; r < h; ++r) {
    std::string prefix(12, ' ');
    if (r == 0) prefix = ylab(1.0) + " +";
    else if (r == h - 1) prefix = ylab(0.0) + " +";
    else prefix = std::string(10, ' ') + " |";
    out += prefix + canvas[static_cast<std::size_t>(r)] + "\n";
  }
  out += std::string(11, ' ') + "+" + repeat('-', static_cast<std::size_t>(w)) + "\n";
  out += std::string(12, ' ') +
         pad_right(strprintf("%.4g", xmin), static_cast<std::size_t>(w) - 8) +
         pad_left(strprintf("%.4g", xmax), 8) + "\n";
  if (!options_.x_label.empty()) {
    out += std::string(12, ' ') + options_.x_label + "\n";
  }
  std::vector<std::string> legend;
  for (const auto& s : series_) {
    if (!s.label.empty()) legend.push_back(std::string(1, s.glyph) + " = " + s.label);
  }
  if (!legend.empty()) out += "  legend: " + join(legend, ", ") + "\n";
  return out;
}

}  // namespace optpower
