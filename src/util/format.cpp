#include "util/format.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace optpower {

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string fmt_fixed(double v, int digits) {
  return strprintf("%.*f", digits, v);
}

std::string fmt_sci(double v, int digits) {
  return strprintf("%.*e", digits, v);
}

std::string fmt_si(double v, const std::string& unit, int digits) {
  struct Scale {
    double factor;
    const char* prefix;
  };
  static constexpr Scale kScales[] = {
      {1e-12, "p"}, {1e-9, "n"}, {1e-6, "u"}, {1e-3, "m"},
      {1.0, ""},    {1e3, "k"},  {1e6, "M"},  {1e9, "G"},
  };
  if (v == 0.0) return strprintf("%.*f %s", digits, 0.0, unit.c_str());
  const double mag = std::fabs(v);
  const Scale* best = &kScales[4];  // unity by default
  for (const auto& s : kScales) {
    if (mag >= s.factor && mag < s.factor * 1e3) {
      best = &s;
      break;
    }
  }
  if (mag < 1e-12) best = &kScales[0];
  if (mag >= 1e12) best = &kScales[7];
  return strprintf("%.*f %s%s", digits, v / best->factor, best->prefix, unit.c_str());
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string repeat(char c, std::size_t n) { return std::string(n, c); }

}  // namespace optpower
