// Small unit-conversion helpers.  The library computes in SI base units;
// these helpers exist so that call sites reading values out of the paper's
// tables (µW, µA, pF, µm², MHz) stay self-documenting.
#pragma once

namespace optpower {

[[nodiscard]] constexpr double micro(double v) noexcept { return v * 1e-6; }
[[nodiscard]] constexpr double nano(double v) noexcept { return v * 1e-9; }
[[nodiscard]] constexpr double pico(double v) noexcept { return v * 1e-12; }
[[nodiscard]] constexpr double femto(double v) noexcept { return v * 1e-15; }

[[nodiscard]] constexpr double kilo(double v) noexcept { return v * 1e3; }
[[nodiscard]] constexpr double mega(double v) noexcept { return v * 1e6; }
[[nodiscard]] constexpr double giga(double v) noexcept { return v * 1e9; }

/// Watts -> microwatts (for printing table rows in the paper's unit).
[[nodiscard]] constexpr double to_microwatt(double watts) noexcept { return watts * 1e6; }
/// Seconds -> picoseconds.
[[nodiscard]] constexpr double to_picosecond(double seconds) noexcept { return seconds * 1e12; }
/// Seconds -> nanoseconds.
[[nodiscard]] constexpr double to_nanosecond(double seconds) noexcept { return seconds * 1e9; }
/// Hertz -> megahertz.
[[nodiscard]] constexpr double to_megahertz(double hertz) noexcept { return hertz * 1e-6; }

}  // namespace optpower
