#include "util/table.h"

#include <algorithm>

#include "util/error.h"
#include "util/format.h"

namespace optpower {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(),
          "Table::add_row: row has " + std::to_string(row.size()) + " cells, expected " +
              std::to_string(header_.size()));
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::set_align(std::size_t column, Align align) {
  require(column < align_.size(), "Table::set_align: column out of range");
  align_[column] = align;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::vector<std::string> cells(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells[c] = (align_[c] == Align::kLeft) ? pad_right(row[c], widths[c])
                                             : pad_left(row[c], widths[c]);
    }
    return "| " + join(cells, " | ") + " |\n";
  };

  std::string rule = "+";
  for (const auto w : widths) rule += repeat('-', w + 2) + "+";
  rule += "\n";

  std::string out;
  if (!caption_.empty()) out += caption_ + "\n";
  out += rule;
  out += render_row(header_);
  out += rule;
  for (const auto& row : rows_) {
    out += row.empty() ? rule : render_row(row);
  }
  out += rule;
  return out;
}

}  // namespace optpower
