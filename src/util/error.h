// Error types for the optpower library.
//
// Policy (per C++ Core Guidelines E.2/E.14): throw exceptions derived from a
// library-specific base so callers can catch `optpower::Error` and know the
// failure came from this library.  Precondition violations on public APIs
// throw InvalidArgument; numerical non-convergence throws NumericalError.
#pragma once

#include <stdexcept>
#include <string>

namespace optpower {

/// Base class of every exception thrown by optpower.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad parameter, empty range...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An iterative numerical method failed to converge or was given an
/// ill-conditioned problem (no bracket, singular matrix, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// A netlist/structural consistency violation (dangling net, combinational
/// loop, width mismatch, ...).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

/// Internal helper: throw InvalidArgument when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

}  // namespace optpower
