#include "device/mosfet.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace optpower {

Mosfet::Mosfet(MosfetParams params) : params_(std::move(params)) {
  require(params_.io > 0.0, "Mosfet: io must be positive");
  require(params_.n >= 1.0, "Mosfet: weak-inversion slope n must be >= 1");
  require(params_.alpha >= 1.0 && params_.alpha <= 2.0,
          "Mosfet: alpha-power exponent must lie in [1, 2]");
  require(params_.temperature_k > 0.0, "Mosfet: temperature must be positive");
}

double Mosfet::threshold(double vds) const noexcept {
  return params_.vth0 - params_.eta * vds;
}

double Mosfet::saturation_current(double vgt) const noexcept {
  const double nut = params_.n_ut();
  const double vswitch = params_.alpha * nut;  // C1 matching point
  if (vgt <= vswitch) {
    return params_.io * std::exp(vgt / nut);
  }
  // Paper Eq. 2: Ion = Io * (e * vgt / (alpha * n * Ut))^alpha.
  return params_.io * std::pow(kEuler * vgt / vswitch, params_.alpha);
}

double Mosfet::drain_current(double vgs, double vds) const noexcept {
  if (vds < 0.0) return -drain_current(vgs + vds, -vds);  // source/drain swap
  const double vth = threshold(vds);
  const double vgt = vgs - vth;
  const double isat = saturation_current(vgt);
  // Simplified Sakurai linear region: Vdsat proportional to a softplus of the
  // overdrive so that Vdsat stays positive (and the triode blend smooth) even
  // in weak inversion.
  const double nut = params_.n_ut();
  const double vgt_eff = nut * std::log1p(std::exp(std::clamp(vgt / nut, -60.0, 60.0)));
  const double vdsat = std::max(params_.vdsat_factor * vgt_eff, 1e-6);
  double shape;
  if (vds >= vdsat) {
    shape = 1.0;
  } else {
    const double u = vds / vdsat;
    shape = u * (2.0 - u);  // Sakurai's (2 - Vds/Vd0)(Vds/Vd0)
  }
  return isat * shape * (1.0 + params_.lambda * vds);
}

double Mosfet::off_current(double vds) const noexcept {
  // Vgs = 0: vgt = -(vth0 - eta*vds); always on the exponential branch for
  // realistic thresholds.
  return drain_current(0.0, vds);
}

double Mosfet::gm(double vgs, double vds) const noexcept {
  const double h = 1e-6;
  return (drain_current(vgs + h, vds) - drain_current(vgs - h, vds)) / (2.0 * h);
}

double Mosfet::gds(double vgs, double vds) const noexcept {
  const double h = 1e-6;
  return (drain_current(vgs, vds + h) - drain_current(vgs, vds - h)) / (2.0 * h);
}

MosfetParams complementary_pmos(const MosfetParams& nmos) {
  MosfetParams p = nmos;
  p.name = nmos.name + "_p";
  p.polarity = MosPolarity::kPmos;
  return p;
}

}  // namespace optpower
