// Analytic MOSFET model: alpha-power law (Sakurai-Newton) on-current,
// C1-matched to the sub-threshold exponential, with DIBL and a
// linear/saturation Vds characteristic.
//
// This is the device model underneath both halves of the library:
//  * the power model's Eq. 2 (on-current) and Eq. 1 (sub-threshold leakage)
//    evaluate the saturated branch directly, and
//  * the mini-SPICE engine (src/spice) evaluates the full Ids(Vgs, Vds)
//    surface inside its Newton iteration, which is why the piecewise
//    branches are stitched with continuous value and first derivative.
//
// Matching construction: the sub-threshold current Io*exp(Vgt/(n*Ut)) and the
// alpha-power current Io*(e*Vgt/(alpha*n*Ut))^alpha take the same value
// Io*e^alpha AND the same slope at Vgt = alpha*n*Ut, so switching branches at
// that point is C1.  (This is exactly the matching factor (e/(alpha*n*Ut))^alpha
// in the paper's Eq. 2.)
#pragma once

#include <string>

#include "util/constants.h"

namespace optpower {

/// Transistor polarity.  The model is written for NMOS conventions; PMOS
/// devices are handled by mirroring terminal voltages at the call site
/// (see spice/elements.cpp).
enum class MosPolarity { kNmos, kPmos };

/// Parameters of the analytic MOSFET model.  Defaults approximate the STM
/// 0.13 um LL flavor used throughout the paper.
struct MosfetParams {
  std::string name = "generic";
  MosPolarity polarity = MosPolarity::kNmos;

  double io = 3.34e-6;     ///< off-current at Vgs = Vth [A] (paper's Io)
  double n = 1.33;         ///< weak-inversion slope factor
  double alpha = 1.86;     ///< alpha-power-law exponent
  double vth0 = 0.354;     ///< zero-bias threshold voltage [V]
  double eta = 0.0;        ///< DIBL coefficient: Vth = vth0 - eta*Vds
  double lambda = 0.05;    ///< channel-length modulation [1/V]
  double vdsat_factor = 0.8;  ///< Vdsat = vdsat_factor * Vgt (simplified Sakurai Vd0)
  double temperature_k = kDefaultTemperatureK;

  /// n * Ut, the sub-threshold exponential scale [V].
  [[nodiscard]] double n_ut() const noexcept { return n * thermal_voltage(temperature_k); }
  /// The branch-switch overdrive alpha*n*Ut [V].
  [[nodiscard]] double match_overdrive() const noexcept { return alpha * n_ut(); }
};

/// The MOSFET model.  Stateless; all methods are pure functions of params.
class Mosfet {
 public:
  explicit Mosfet(MosfetParams params);

  [[nodiscard]] const MosfetParams& params() const noexcept { return params_; }

  /// Effective threshold voltage with DIBL at drain-source bias `vds`.
  [[nodiscard]] double threshold(double vds) const noexcept;

  /// Saturated drain current as a function of gate overdrive
  /// Vgt = Vgs - Vth(Vds):  sub-threshold exponential below alpha*n*Ut,
  /// alpha-power law above (the paper's Eq. 2), C1-continuous at the switch.
  [[nodiscard]] double saturation_current(double vgt) const noexcept;

  /// Full drain current Ids(vgs, vds) including the triode region and
  /// channel-length modulation.  vds >= 0 expected (NMOS convention).
  [[nodiscard]] double drain_current(double vgs, double vds) const noexcept;

  /// Sub-threshold leakage at vgs = 0 and the given vds (includes DIBL).
  [[nodiscard]] double off_current(double vds) const noexcept;

  /// Numeric small-signal transconductance dIds/dVgs.
  [[nodiscard]] double gm(double vgs, double vds) const noexcept;
  /// Numeric output conductance dIds/dVds.
  [[nodiscard]] double gds(double vgs, double vds) const noexcept;

 private:
  MosfetParams params_;
};

/// Build the complementary PMOS of an NMOS parameter set (same magnitudes).
[[nodiscard]] MosfetParams complementary_pmos(const MosfetParams& nmos);

}  // namespace optpower
