#include "netlist/builder.h"

#include "netlist/cell.h"
#include "util/error.h"
#include "util/format.h"

namespace optpower {
namespace {

/// Width-mismatch diagnostic with enough context to map an equivalence
/// counterexample (or any failing construction) back to its source: the
/// function, the offending operand widths, the netlist, and the cell id the
/// next instantiation would have received.
void require_same_width(const Netlist& nl, const char* who, std::size_t a_width,
                        std::size_t b_width) {
  if (a_width == b_width && a_width != 0) return;
  if (a_width == b_width) {
    throw NetlistError(strprintf("%s: empty bus in netlist '%s' at cell %zu", who,
                                 nl.name().c_str(), nl.num_cells()));
  }
  throw NetlistError(strprintf(
      "%s: bus width mismatch (a = %zu bits, b = %zu bits) in netlist '%s' at cell %zu",
      who, a_width, b_width, nl.name().c_str(), nl.num_cells()));
}

}  // namespace

Bus add_input_bus(Netlist& nl, const std::string& prefix, int width) {
  require(width > 0, "add_input_bus: width must be positive");
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(nl.add_input(strprintf("%s[%d]", prefix.c_str(), i)));
  }
  return bus;
}

void add_output_bus(Netlist& nl, const std::string& prefix, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    nl.add_output(strprintf("%s[%zu]", prefix.c_str(), i), bus[i]);
  }
}

Bus constant_bus(Netlist& nl, std::uint64_t value, int width) {
  require(width > 0 && width <= 64, "constant_bus: width must lie in [1, 64]");
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(((value >> i) & 1u) ? nl.const1() : nl.const0());
  }
  return bus;
}

Bus and_with_bit(Netlist& nl, const Bus& bus, NetId bit) {
  Bus out;
  out.reserve(bus.size());
  for (const NetId b : bus) out.push_back(nl.add_gate(CellType::kAnd2, {b, bit}));
  return out;
}

AdderResult ripple_adder(Netlist& nl, const Bus& a, const Bus& b, NetId carry_in) {
  require_same_width(nl, "ripple_adder", a.size(), b.size());
  AdderResult r;
  r.sum.reserve(a.size());
  NetId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (carry == kNoNet) {
      const auto outs = nl.add_cell(CellType::kHalfAdder, {a[i], b[i]});
      r.sum.push_back(outs[0]);
      carry = outs[1];
    } else {
      const auto outs = nl.add_cell(CellType::kFullAdder, {a[i], b[i], carry});
      r.sum.push_back(outs[0]);
      carry = outs[1];
    }
  }
  r.carry_out = carry;
  return r;
}

AdderResult carry_select_adder(Netlist& nl, const Bus& a, const Bus& b, NetId carry_in,
                               int block) {
  require_same_width(nl, "carry_select_adder", a.size(), b.size());
  require(block >= 1, "carry_select_adder: block must be >= 1");
  AdderResult total;
  total.sum.reserve(a.size());
  NetId carry = (carry_in == kNoNet) ? nl.const0() : carry_in;
  for (std::size_t base = 0; base < a.size(); base += static_cast<std::size_t>(block)) {
    const std::size_t end = std::min(a.size(), base + static_cast<std::size_t>(block));
    const Bus a_blk(a.begin() + static_cast<long>(base), a.begin() + static_cast<long>(end));
    const Bus b_blk(b.begin() + static_cast<long>(base), b.begin() + static_cast<long>(end));
    // Speculative ripple for both carry assumptions.
    const AdderResult zero = ripple_adder(nl, a_blk, b_blk, nl.const0());
    const AdderResult one = ripple_adder(nl, a_blk, b_blk, nl.const1());
    for (std::size_t i = 0; i < a_blk.size(); ++i) {
      total.sum.push_back(nl.add_gate(CellType::kMux2, {zero.sum[i], one.sum[i], carry}));
    }
    carry = nl.add_gate(CellType::kMux2, {zero.carry_out, one.carry_out, carry});
  }
  total.carry_out = carry;
  return total;
}

CarrySaveRow carry_save_row(Netlist& nl, const Bus& a, const Bus& b, const Bus& c) {
  require_same_width(nl, "carry_save_row", a.size(), b.size());
  require_same_width(nl, "carry_save_row", b.size(), c.size());
  CarrySaveRow row;
  row.sum.reserve(a.size());
  row.carry.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto outs = nl.add_cell(CellType::kFullAdder, {a[i], b[i], c[i]});
    row.sum.push_back(outs[0]);
    row.carry.push_back(outs[1]);
  }
  return row;
}

Bus mux_bus(Netlist& nl, NetId sel, const Bus& a, const Bus& b) {
  require_same_width(nl, "mux_bus", a.size(), b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(nl.add_gate(CellType::kMux2, {a[i], b[i], sel}));
  }
  return out;
}

Bus register_bus(Netlist& nl, const Bus& d, NetId enable) {
  Bus q;
  q.reserve(d.size());
  for (const NetId bit : d) {
    if (enable == kNoNet) {
      q.push_back(nl.add_gate(CellType::kDff, {bit}));
    } else {
      q.push_back(nl.add_gate(CellType::kDffEnable, {bit, enable}));
    }
  }
  return q;
}

Bus add_counter(Netlist& nl, int bits) {
  require(bits >= 1 && bits <= 16, "add_counter: bits must lie in [1, 16]");
  // q_i' = q_i XOR carry_i with carry_0 = 1, carry_{i+1} = q_i AND carry_i:
  // a ripple of half-adders over the registered state.  The DFFs are created
  // on placeholder nets first (the HA cone reads their Q outputs), then
  // rewired onto the HA sums - the standard sequential-feedback pattern.
  Bus q;
  std::vector<CellId> dffs;
  q.reserve(static_cast<std::size_t>(bits));
  dffs.reserve(static_cast<std::size_t>(bits));
  const NetId placeholder = nl.const0();
  for (int i = 0; i < bits; ++i) {
    const NetId qi = nl.add_gate(CellType::kDff, {placeholder});
    dffs.push_back(nl.driver_of(qi));
    q.push_back(qi);
  }
  NetId carry = nl.const1();
  for (int i = 0; i < bits; ++i) {
    const auto ha = nl.add_cell(CellType::kHalfAdder, {q[static_cast<std::size_t>(i)], carry});
    nl.rewire_input(dffs[static_cast<std::size_t>(i)], 0, ha[0]);
    carry = ha[1];
  }
  return q;
}

Bus add_decoder(Netlist& nl, const Bus& state) {
  require(!state.empty() && state.size() <= 6, "add_decoder: 1..6 state bits");
  // Complement rails.
  Bus inv;
  inv.reserve(state.size());
  for (const NetId s : state) inv.push_back(nl.add_gate(CellType::kInv, {s}));
  const std::size_t n = 1u << state.size();
  Bus out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    NetId acc = ((k & 1u) ? state[0] : inv[0]);
    for (std::size_t b = 1; b < state.size(); ++b) {
      const NetId term = ((k >> b) & 1u) ? state[b] : inv[b];
      acc = nl.add_gate(CellType::kAnd2, {acc, term});
    }
    out.push_back(acc);
  }
  return out;
}

Bus resize_bus(Netlist& nl, const Bus& bus, int width) {
  require(width > 0, "resize_bus: width must be positive");
  Bus out = bus;
  if (static_cast<int>(out.size()) > width) {
    out.resize(static_cast<std::size_t>(width));
  } else {
    while (static_cast<int>(out.size()) < width) out.push_back(nl.const0());
  }
  return out;
}

}  // namespace optpower
