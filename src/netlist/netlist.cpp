#include "netlist/netlist.h"

#include <algorithm>
#include <queue>

#include "netlist/cell.h"
#include "util/error.h"
#include "util/hash.h"

namespace optpower {

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

NetId Netlist::new_net(CellId driver) {
  net_driver_.push_back(driver);
  fanout_valid_ = false;
  return static_cast<NetId>(net_driver_.size() - 1);
}

NetId Netlist::add_input(const std::string& port_name) {
  const NetId net = new_net(kNoCell);
  inputs_.push_back(net);
  input_names_.push_back(port_name);
  return net;
}

void Netlist::add_output(const std::string& port_name, NetId net) {
  require(net < net_driver_.size(), "Netlist::add_output: unknown net");
  outputs_.push_back(net);
  output_names_.push_back(port_name);
}

std::vector<NetId> Netlist::add_cell(CellType type, const std::vector<NetId>& inputs) {
  const CellSpec& spec = cell_spec(type);
  require(static_cast<int>(inputs.size()) == spec.num_inputs,
          std::string("Netlist::add_cell: ") + spec.name + " expects " +
              std::to_string(spec.num_inputs) + " inputs, got " + std::to_string(inputs.size()));
  for (const NetId in : inputs) {
    require(in < net_driver_.size(), "Netlist::add_cell: unknown input net");
  }
  const CellId id = static_cast<CellId>(cells_.size());
  CellInstance inst;
  inst.type = type;
  inst.inputs = inputs;
  inst.outputs.reserve(static_cast<std::size_t>(spec.num_outputs));
  cells_.push_back(std::move(inst));
  std::vector<NetId> outs;
  outs.reserve(static_cast<std::size_t>(spec.num_outputs));
  for (int i = 0; i < spec.num_outputs; ++i) outs.push_back(new_net(id));
  cells_[id].outputs = outs;
  fanout_valid_ = false;
  return outs;
}

NetId Netlist::add_gate(CellType type, const std::vector<NetId>& inputs) {
  const auto outs = add_cell(type, inputs);
  require(outs.size() == 1, "Netlist::add_gate: cell is not single-output");
  return outs[0];
}

NetId Netlist::const0() {
  if (const0_ == kNoNet) const0_ = add_gate(CellType::kConst0, {});
  return const0_;
}

NetId Netlist::const1() {
  if (const1_ == kNoNet) const1_ = add_gate(CellType::kConst1, {});
  return const1_;
}

void Netlist::tag_last_cell(std::int32_t row, std::int32_t col) {
  require(!cells_.empty(), "Netlist::tag_last_cell: no cells yet");
  cells_.back().tag_row = row;
  cells_.back().tag_col = col;
}

void Netlist::rewire_input(CellId cell, int pin, NetId net) {
  require(cell < cells_.size(), "Netlist::rewire_input: unknown cell");
  require(pin >= 0 && static_cast<std::size_t>(pin) < cells_[cell].inputs.size(),
          "Netlist::rewire_input: pin out of range");
  require(net < net_driver_.size(), "Netlist::rewire_input: unknown net");
  cells_[cell].inputs[static_cast<std::size_t>(pin)] = net;
  fanout_valid_ = false;
}

const std::vector<std::vector<CellId>>& Netlist::fanout() const {
  if (!fanout_valid_) {
    fanout_cache_.assign(net_driver_.size(), {});
    for (CellId c = 0; c < cells_.size(); ++c) {
      for (const NetId in : cells_[c].inputs) fanout_cache_[in].push_back(c);
    }
    fanout_valid_ = true;
  }
  return fanout_cache_;
}

std::vector<CellId> Netlist::topo_order() const {
  // Kahn's algorithm over combinational dependencies: a combinational cell
  // waits for all of its input drivers that are combinational; sequential
  // cell outputs and primary inputs are sources.
  std::vector<int> pending(cells_.size(), 0);
  for (CellId c = 0; c < cells_.size(); ++c) {
    if (cell_spec(cells_[c].type).is_sequential) continue;  // source
    for (const NetId in : cells_[c].inputs) {
      const CellId drv = net_driver_[in];
      if (drv != kNoCell && !cell_spec(cells_[drv].type).is_sequential) ++pending[c];
    }
  }
  std::queue<CellId> ready;
  std::vector<CellId> order;
  order.reserve(cells_.size());
  // Sequential cells first (their outputs are stable at cycle start).
  for (CellId c = 0; c < cells_.size(); ++c) {
    if (cell_spec(cells_[c].type).is_sequential) order.push_back(c);
  }
  for (CellId c = 0; c < cells_.size(); ++c) {
    if (!cell_spec(cells_[c].type).is_sequential && pending[c] == 0) ready.push(c);
  }
  const auto& fo = fanout();
  std::size_t comb_emitted = 0;
  while (!ready.empty()) {
    const CellId c = ready.front();
    ready.pop();
    order.push_back(c);
    ++comb_emitted;
    for (const NetId out : cells_[c].outputs) {
      for (const CellId reader : fo[out]) {
        if (cell_spec(cells_[reader].type).is_sequential) continue;
        if (--pending[reader] == 0) ready.push(reader);
      }
    }
  }
  std::size_t comb_total = 0;
  for (const auto& cell : cells_) {
    if (!cell_spec(cell.type).is_sequential) ++comb_total;
  }
  if (comb_emitted != comb_total) {
    throw NetlistError("Netlist '" + name_ + "': combinational cycle detected (" +
                       std::to_string(comb_total - comb_emitted) + " cells unreachable)");
  }
  return order;
}

void Netlist::verify() const {
  for (CellId c = 0; c < cells_.size(); ++c) {
    const CellSpec& spec = cell_spec(cells_[c].type);
    if (static_cast<int>(cells_[c].inputs.size()) != spec.num_inputs ||
        static_cast<int>(cells_[c].outputs.size()) != spec.num_outputs) {
      throw NetlistError("Netlist '" + name_ + "': cell " + std::to_string(c) +
                         " has wrong pin counts");
    }
    for (const NetId in : cells_[c].inputs) {
      if (in >= net_driver_.size()) {
        throw NetlistError("Netlist '" + name_ + "': cell " + std::to_string(c) +
                           " reads unknown net");
      }
    }
  }
  for (const NetId out : outputs_) {
    if (out >= net_driver_.size()) {
      throw NetlistError("Netlist '" + name_ + "': primary output on unknown net");
    }
  }
  (void)topo_order();  // throws on combinational cycles
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_nets = net_driver_.size();
  for (const auto& cell : cells_) {
    const CellSpec& spec = cell_spec(cell.type);
    if (cell.type == CellType::kConst0 || cell.type == CellType::kConst1) continue;
    ++s.num_cells;
    if (spec.is_sequential) ++s.num_sequential;
    s.area_um2 += spec.area_um2;
    s.total_cap_f += spec.cell_cap_f;
  }
  s.avg_cell_cap_f = s.num_cells > 0 ? s.total_cap_f / static_cast<double>(s.num_cells) : 0.0;
  return s;
}

std::uint64_t content_hash(const Netlist& netlist) {
  // Fixed field order; every variable-length list is count-prefixed so field
  // boundaries cannot alias.  Names and placement tags are excluded on
  // purpose (see the header): only behavior-bearing structure contributes.
  Fnv1a64 h;
  h.update_u32(static_cast<std::uint32_t>(netlist.primary_inputs().size()));
  for (const NetId net : netlist.primary_inputs()) h.update_u32(net);
  h.update_u32(static_cast<std::uint32_t>(netlist.num_cells()));
  for (const CellInstance& cell : netlist.cells()) {
    h.update_u8(static_cast<std::uint8_t>(cell.type));
    h.update_u32(static_cast<std::uint32_t>(cell.inputs.size()));
    for (const NetId net : cell.inputs) h.update_u32(net);
    h.update_u32(static_cast<std::uint32_t>(cell.outputs.size()));
    for (const NetId net : cell.outputs) h.update_u32(net);
  }
  h.update_u32(static_cast<std::uint32_t>(netlist.primary_outputs().size()));
  for (const NetId net : netlist.primary_outputs()) h.update_u32(net);
  return h.digest();
}

}  // namespace optpower
