// Structural architecture transforms: scheduling-based pipelining and
// replication-based parallelization (Section 4 of the paper: "registers
// inserted horizontally in the critical path", "diagonal insertion of
// registers", "replicating the basic multiplier and multiplexing data").
//
// Pipelining model: a stage function assigns each combinational cell an
// integer stage in [0, stages).  Every edge from stage s to stage t >= s
// receives (t - s) DFFs; primary inputs live at stage 0 and are delayed to
// each consumer's stage; primary outputs produced at stage s are padded to
// stage (stages - 1).  The result is functionally equivalent to the original
// circuit with a latency of (stages - 1) cycles - a property the tests
// check on all pipelined multipliers.
#pragma once

#include <functional>

#include "netlist/netlist.h"

namespace optpower {

/// Maps a cell of the source netlist to its pipeline stage.
/// Must be monotone along every combinational edge (producer stage <=
/// consumer stage); violations throw NetlistError during the transform.
using StageFunction = std::function<int(const Netlist&, CellId)>;

/// Pipeline `source` into `stages` stages.  The source must be purely
/// combinational (no DFFs) - all 13 base multiplier datapaths satisfy this
/// before sequencing.  Returns a new netlist whose outputs equal the
/// source's outputs delayed by (stages - 1) clock cycles.
[[nodiscard]] Netlist pipeline_netlist(const Netlist& source, int stages,
                                       const StageFunction& stage_of);

/// Stage function from the generators' (row, col) placement tags:
/// horizontal cut - stage grows with tag_row (Figure 3 of the paper).
[[nodiscard]] StageFunction horizontal_stages(int stages, int max_row);

/// Diagonal cut - stage grows with tag_row + tag_col (Figure 4).
[[nodiscard]] StageFunction diagonal_stages(int stages, int max_diag);

/// Parallelize by replication: `ways` copies of `core` (which must be purely
/// combinational), input registers that capture a new operand set into one
/// lane per cycle (round-robin via an internal counter + decoder), and an
/// output mux tree that follows the same schedule.  The result consumes one
/// input per clock and produces one result per clock with a latency of
/// `ways` cycles, while each lane's combinational logic has `ways` cycles to
/// settle - exactly the paper's relaxed-timing construction.
[[nodiscard]] Netlist parallelize_netlist(const Netlist& core, int ways);

/// How many cycles after applying an input its result appears on the
/// transformed netlist's outputs.
[[nodiscard]] int pipeline_latency(int stages) noexcept;
[[nodiscard]] int parallel_latency(int ways) noexcept;

/// Structure-preserving copy with cell `target`'s type swapped for
/// `new_type` (which must have the same pin counts, e.g. XOR2 -> XNOR2,
/// AND2 -> OR2).  Cell and net ids are preserved one-for-one.  This is fault
/// injection for validating checkers: a mutated multiplier is the
/// known-buggy input the BDD equivalence checker must refute with a
/// counterexample (tests/bdd/equiv_test.cpp).
[[nodiscard]] Netlist replace_cell_type(const Netlist& source, CellId target, CellType new_type);

}  // namespace optpower
