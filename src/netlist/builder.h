// Word-level construction helpers on top of Netlist: buses, adders,
// multiplexers, registers, counters.  All functions append cells to the
// given netlist and return the result nets LSB-first.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace optpower {

/// A bus is just an LSB-first vector of nets.
using Bus = std::vector<NetId>;

/// `width` fresh primary inputs named <prefix>[i].
[[nodiscard]] Bus add_input_bus(Netlist& nl, const std::string& prefix, int width);

/// Expose a bus as primary outputs named <prefix>[i].
void add_output_bus(Netlist& nl, const std::string& prefix, const Bus& bus);

/// Constant bus holding `value` (LSB-first), using tie cells.
[[nodiscard]] Bus constant_bus(Netlist& nl, std::uint64_t value, int width);

/// Bitwise AND of a bus with a single net (partial-product row).
[[nodiscard]] Bus and_with_bit(Netlist& nl, const Bus& bus, NetId bit);

/// Result of an adder: sum bits plus carry-out.
struct AdderResult {
  Bus sum;
  NetId carry_out = kNoNet;
};

/// Ripple-carry adder (one FA per bit; HA when carry-in is omitted).
[[nodiscard]] AdderResult ripple_adder(Netlist& nl, const Bus& a, const Bus& b,
                                       NetId carry_in = kNoNet);

/// Carry-select adder: ripple blocks of `block` bits computed for both carry
/// assumptions, selected by the real carry.  Shorter critical path than
/// ripple at ~2x area - the "fast final adder" of the Wallace tree and the
/// sequential multiplier's compact-but-fast addition.
[[nodiscard]] AdderResult carry_select_adder(Netlist& nl, const Bus& a, const Bus& b,
                                             NetId carry_in = kNoNet, int block = 4);

/// One carry-save (3:2) compression row: {a, b, c} -> {sum, carry<<1}.
/// All buses must share a width; returns sum and the *unshifted* carries
/// (caller shifts by indexing).
struct CarrySaveRow {
  Bus sum;
  Bus carry;  ///< same width; semantically weighted one bit higher
};
[[nodiscard]] CarrySaveRow carry_save_row(Netlist& nl, const Bus& a, const Bus& b, const Bus& c);

/// 2:1 mux per bit: sel ? b : a.
[[nodiscard]] Bus mux_bus(Netlist& nl, NetId sel, const Bus& a, const Bus& b);

/// DFF per bit (kDff) or enabled DFF (kDffEnable when `enable` given).
[[nodiscard]] Bus register_bus(Netlist& nl, const Bus& d, NetId enable = kNoNet);

/// Free-running binary up-counter of `bits` bits (DFF + XOR/AND chain).
/// Returns the state bits, LSB-first.
[[nodiscard]] Bus add_counter(Netlist& nl, int bits);

/// Decoder: AND/INV network asserting out[k] when the counter value is k.
[[nodiscard]] Bus add_decoder(Netlist& nl, const Bus& state);

/// Zero-extend / truncate a bus to `width` (uses tie-0 for extension).
[[nodiscard]] Bus resize_bus(Netlist& nl, const Bus& bus, int width);

}  // namespace optpower
