#include "netlist/cell.h"

namespace optpower {
namespace {

// Areas [um^2], equivalent switched caps [F] and depths [inverter delays]
// chosen to approximate a 0.13 um library: an inverter is ~4 um^2 and a DFF
// ~20 um^2; equivalent caps fold typical wire load at average fanout.
constexpr CellSpec kSpecs[] = {
    {CellType::kConst0, "TIE0", 0, 1, 1.6, 1e-15, 0.0, false},
    {CellType::kConst1, "TIE1", 0, 1, 1.6, 1e-15, 0.0, false},
    {CellType::kBuf, "BUF", 1, 1, 4.2, 4e-15, 1.0, false},
    {CellType::kInv, "INV", 1, 1, 3.6, 3e-15, 1.0, false},
    {CellType::kAnd2, "AND2", 2, 1, 5.8, 5e-15, 1.4, false},
    {CellType::kOr2, "OR2", 2, 1, 5.8, 5e-15, 1.4, false},
    {CellType::kNand2, "NAND2", 2, 1, 4.8, 4e-15, 1.0, false},
    {CellType::kNor2, "NOR2", 2, 1, 4.8, 4e-15, 1.2, false},
    {CellType::kXor2, "XOR2", 2, 1, 9.6, 9e-15, 1.8, false},
    {CellType::kXnor2, "XNOR2", 2, 1, 9.6, 9e-15, 1.8, false},
    {CellType::kMux2, "MUX2", 3, 1, 8.4, 7e-15, 1.4, false},
    {CellType::kHalfAdder, "HA1", 2, 2, 14.2, 12e-15, 1.8, false},
    {CellType::kFullAdder, "FA1", 3, 2, 28.6, 20e-15, 2.0, false},
    {CellType::kDff, "DFF", 1, 1, 21.4, 14e-15, 2.2, true},
    {CellType::kDffEnable, "DFFE", 2, 1, 26.0, 15e-15, 2.4, true},
};

}  // namespace

const CellSpec& cell_spec(CellType type) noexcept {
  return kSpecs[static_cast<std::uint8_t>(type)];
}

std::uint8_t eval_cell(CellType type, std::uint8_t in) noexcept {
  const auto a = static_cast<std::uint8_t>(in & 1u);
  const auto b = static_cast<std::uint8_t>((in >> 1) & 1u);
  const auto c = static_cast<std::uint8_t>((in >> 2) & 1u);
  switch (type) {
    case CellType::kConst0: return 0;
    case CellType::kConst1: return 1;
    case CellType::kBuf: return a;
    case CellType::kInv: return static_cast<std::uint8_t>(a ^ 1u);
    case CellType::kAnd2: return static_cast<std::uint8_t>(a & b);
    case CellType::kOr2: return static_cast<std::uint8_t>(a | b);
    case CellType::kNand2: return static_cast<std::uint8_t>((a & b) ^ 1u);
    case CellType::kNor2: return static_cast<std::uint8_t>((a | b) ^ 1u);
    case CellType::kXor2: return static_cast<std::uint8_t>(a ^ b);
    case CellType::kXnor2: return static_cast<std::uint8_t>((a ^ b) ^ 1u);
    case CellType::kMux2: return c ? b : a;
    case CellType::kHalfAdder:
      // bit0 = sum, bit1 = carry
      return static_cast<std::uint8_t>((a ^ b) | ((a & b) << 1));
    case CellType::kFullAdder: {
      const std::uint8_t sum = a ^ b ^ c;
      const std::uint8_t carry = static_cast<std::uint8_t>((a & b) | (a & c) | (b & c));
      return static_cast<std::uint8_t>(sum | (carry << 1));
    }
    case CellType::kDff: return a;            // next-Q = D
    case CellType::kDffEnable: return a;       // next-Q = D when enabled (handled by sim)
  }
  return 0;
}

std::string to_string(CellType type) { return cell_spec(type).name; }

}  // namespace optpower
