// Gate-level structural netlist: the synthesis-output stand-in that the
// multiplier generators produce and the simulator/STA consume.
//
// Model: single global clock; every net has exactly one driver (a cell
// output, a primary input, or a tie cell); cells are stored in creation
// order; combinational cycles are rejected by verify()/levelize().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace optpower {
enum class CellType : std::uint8_t;

using NetId = std::uint32_t;
using CellId = std::uint32_t;

inline constexpr NetId kNoNet = 0xffffffffu;

/// One cell instance.
struct CellInstance {
  CellType type;
  std::vector<NetId> inputs;   ///< pin order per CellSpec
  std::vector<NetId> outputs;
  /// Generator-attached placement tag (row/column in the multiplier array);
  /// the pipelining transform's stage functions read it.
  std::int32_t tag_row = -1;
  std::int32_t tag_col = -1;
};

/// Aggregate statistics in the units of the paper's Table 1.
struct NetlistStats {
  std::size_t num_cells = 0;        ///< N (excludes ports and tie cells)
  std::size_t num_sequential = 0;   ///< DFF count within N
  std::size_t num_nets = 0;
  double area_um2 = 0.0;
  double total_cap_f = 0.0;         ///< sum of per-cell equivalent caps
  double avg_cell_cap_f = 0.0;      ///< total_cap / N  (the paper's C)
};

/// The netlist graph.
class Netlist {
 public:
  explicit Netlist(std::string name = "netlist");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction --------------------------------------------------------

  /// New primary input; returns the net it drives.
  NetId add_input(const std::string& port_name);

  /// Mark `net` as a primary output.
  void add_output(const std::string& port_name, NetId net);

  /// Instantiate a cell.  `inputs` must match the type's pin count.
  /// Returns the output nets (created fresh).
  std::vector<NetId> add_cell(CellType type, const std::vector<NetId>& inputs);

  /// Single-output convenience wrapper.
  NetId add_gate(CellType type, const std::vector<NetId>& inputs);

  /// Tie cells (deduplicated: at most one of each per netlist).
  NetId const0();
  NetId const1();

  /// Attach a (row, col) placement tag to the most recently added cell.
  void tag_last_cell(std::int32_t row, std::int32_t col);

  /// Repoint one input pin of an existing cell to another net.  This is the
  /// escape hatch for sequential feedback (e.g. a counter's DFF reading
  /// logic computed from its own Q): create the DFF on a placeholder net,
  /// build the feedback cone from Q, then rewire.  verify() re-checks the
  /// result; combinational loops are still rejected.
  void rewire_input(CellId cell, int pin, NetId net);

  // --- inspection -----------------------------------------------------------

  [[nodiscard]] std::size_t num_cells() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t num_nets() const noexcept { return net_driver_.size(); }
  [[nodiscard]] const CellInstance& cell(CellId id) const { return cells_[id]; }
  [[nodiscard]] const std::vector<CellInstance>& cells() const noexcept { return cells_; }

  [[nodiscard]] const std::vector<NetId>& primary_inputs() const noexcept { return inputs_; }
  [[nodiscard]] const std::vector<NetId>& primary_outputs() const noexcept { return outputs_; }
  [[nodiscard]] const std::vector<std::string>& input_names() const noexcept {
    return input_names_;
  }
  [[nodiscard]] const std::vector<std::string>& output_names() const noexcept {
    return output_names_;
  }

  /// Driving cell of a net, or kNoCell for primary inputs.
  static constexpr CellId kNoCell = 0xffffffffu;
  [[nodiscard]] CellId driver_of(NetId net) const { return net_driver_.at(net); }

  /// Cells reading each net (computed once, cached; invalidated by edits).
  [[nodiscard]] const std::vector<std::vector<CellId>>& fanout() const;

  /// Topological order of all cells (sequential cells first as sources, then
  /// combinational cells by level).  Throws NetlistError on a combinational
  /// cycle.
  [[nodiscard]] std::vector<CellId> topo_order() const;

  /// Structural checks: pin counts, driven nets, single drivers, no
  /// combinational cycles.  Throws NetlistError with a description.
  void verify() const;

  /// Table-1-style aggregates.
  [[nodiscard]] NetlistStats stats() const;

 private:
  NetId new_net(CellId driver);

  std::string name_;
  std::vector<CellInstance> cells_;
  std::vector<CellId> net_driver_;            // driver per net (kNoCell = PI)
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
  mutable std::vector<std::vector<CellId>> fanout_cache_;
  mutable bool fanout_valid_ = false;
};

/// Stable 64-bit content hash of the netlist's *behavioral structure*: port
/// lists, every cell's type and pin connectivity (net ids are deterministic
/// functions of construction order), and tie-cell usage.  Identical across
/// processes, runs, and machines (FNV-1a over explicit little-endian
/// encodings - see util/hash.h), which is what lets the serving layer's
/// content-addressed result cache key on it.  Deliberately EXCLUDED: the
/// netlist name and the (row, col) placement tags - neither changes simulated
/// behavior, so two netlists differing only there serve from the same cache
/// entry.
[[nodiscard]] std::uint64_t content_hash(const Netlist& netlist);

}  // namespace optpower
