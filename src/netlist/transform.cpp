#include "netlist/transform.h"

#include <algorithm>
#include <unordered_map>

#include "netlist/builder.h"
#include "netlist/cell.h"
#include "util/error.h"

namespace optpower {
namespace {

void require_combinational(const Netlist& nl, const char* who) {
  for (const auto& cell : nl.cells()) {
    if (cell_spec(cell.type).is_sequential) {
      throw NetlistError(std::string(who) + ": source netlist must be purely combinational");
    }
  }
}

/// Lazily materializes "net delayed by k cycles" chains in the target
/// netlist.
class DelayChains {
 public:
  explicit DelayChains(Netlist& target) : target_(target) {}

  /// Declare the target net representing `source_net` at its base stage.
  void set_base(NetId source_net, NetId target_net, int base_stage) {
    entries_[source_net] = {base_stage, {target_net}};
  }

  /// Target net carrying `source_net`'s value at `stage` (>= base stage).
  NetId at_stage(NetId source_net, int stage) {
    auto it = entries_.find(source_net);
    require(it != entries_.end(), "DelayChains: unmapped net");
    Entry& e = it->second;
    require(stage >= e.base_stage, "DelayChains: consumer stage precedes producer stage");
    const std::size_t delay = static_cast<std::size_t>(stage - e.base_stage);
    while (e.chain.size() <= delay) {
      e.chain.push_back(target_.add_gate(CellType::kDff, {e.chain.back()}));
    }
    return e.chain[delay];
  }

 private:
  struct Entry {
    int base_stage = 0;
    std::vector<NetId> chain;  // chain[k] = value delayed by k cycles
  };
  Netlist& target_;
  std::unordered_map<NetId, Entry> entries_;
};

}  // namespace

int pipeline_latency(int stages) noexcept { return stages - 1; }
int parallel_latency(int ways) noexcept { return ways + 1; }

Netlist pipeline_netlist(const Netlist& source, int stages, const StageFunction& stage_of) {
  require(stages >= 2, "pipeline_netlist: need at least 2 stages");
  require_combinational(source, "pipeline_netlist");
  source.verify();

  Netlist out(source.name() + "_pipe" + std::to_string(stages));
  DelayChains chains(out);

  for (std::size_t i = 0; i < source.primary_inputs().size(); ++i) {
    const NetId pi = out.add_input(source.input_names()[i]);
    chains.set_base(source.primary_inputs()[i], pi, 0);
  }

  // Cache per-cell stages and validate the range.
  std::vector<int> stage(source.num_cells());
  for (CellId c = 0; c < source.num_cells(); ++c) {
    stage[c] = stage_of(source, c);
    if (stage[c] < 0 || stage[c] >= stages) {
      throw NetlistError("pipeline_netlist: stage function returned " +
                         std::to_string(stage[c]) + " outside [0, " + std::to_string(stages) +
                         ") for cell " + std::to_string(c));
    }
  }

  for (const CellId c : source.topo_order()) {
    const CellInstance& cell = source.cell(c);
    const int s = stage[c];
    std::vector<NetId> mapped_inputs;
    mapped_inputs.reserve(cell.inputs.size());
    for (const NetId in : cell.inputs) {
      const CellId drv = source.driver_of(in);
      if (drv != Netlist::kNoCell && stage[drv] > s) {
        throw NetlistError("pipeline_netlist: non-monotone stage assignment (cell " +
                           std::to_string(c) + " at stage " + std::to_string(s) +
                           " reads stage " + std::to_string(stage[drv]) + ")");
      }
      mapped_inputs.push_back(chains.at_stage(in, s));
    }
    const std::vector<NetId> outs = out.add_cell(cell.type, mapped_inputs);
    out.tag_last_cell(cell.tag_row, cell.tag_col);
    for (std::size_t k = 0; k < outs.size(); ++k) {
      chains.set_base(cell.outputs[k], outs[k], s);
    }
  }

  for (std::size_t i = 0; i < source.primary_outputs().size(); ++i) {
    out.add_output(source.output_names()[i],
                   chains.at_stage(source.primary_outputs()[i], stages - 1));
  }
  out.verify();
  return out;
}

StageFunction horizontal_stages(int stages, int max_row) {
  require(stages >= 2 && max_row >= 1, "horizontal_stages: bad arguments");
  return [stages, max_row](const Netlist& nl, CellId c) {
    const std::int32_t row = std::max<std::int32_t>(nl.cell(c).tag_row, 0);
    const int s = static_cast<int>(static_cast<long>(row) * stages / (max_row + 1));
    return std::clamp(s, 0, stages - 1);
  };
}

StageFunction diagonal_stages(int stages, int max_diag) {
  require(stages >= 2 && max_diag >= 1, "diagonal_stages: bad arguments");
  return [stages, max_diag](const Netlist& nl, CellId c) {
    const CellInstance& cell = nl.cell(c);
    const std::int32_t diag =
        std::max<std::int32_t>(cell.tag_row, 0) + std::max<std::int32_t>(cell.tag_col, 0);
    const int s = static_cast<int>(static_cast<long>(diag) * stages / (max_diag + 1));
    return std::clamp(s, 0, stages - 1);
  };
}

Netlist parallelize_netlist(const Netlist& core, int ways) {
  require(ways == 2 || ways == 4 || ways == 8, "parallelize_netlist: ways must be 2, 4 or 8");
  require_combinational(core, "parallelize_netlist");
  core.verify();

  Netlist out(core.name() + "_par" + std::to_string(ways));

  Bus pis;
  pis.reserve(core.primary_inputs().size());
  for (const auto& name : core.input_names()) pis.push_back(out.add_input(name));

  // Round-robin schedule: counter + one-hot decoder.
  const int bits = (ways == 2) ? 1 : (ways == 4 ? 2 : 3);
  const Bus counter = add_counter(out, bits);
  const Bus select = add_decoder(out, counter);

  // Per-lane: capture registers + a copy of the core.
  std::vector<Bus> lane_outputs(static_cast<std::size_t>(ways));
  for (int lane = 0; lane < ways; ++lane) {
    std::unordered_map<NetId, NetId> net_map;
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const NetId captured =
          out.add_gate(CellType::kDffEnable, {pis[i], select[static_cast<std::size_t>(lane)]});
      net_map[core.primary_inputs()[i]] = captured;
    }
    for (const CellId c : core.topo_order()) {
      const CellInstance& cell = core.cell(c);
      if (cell.type == CellType::kConst0) {
        net_map[cell.outputs[0]] = out.const0();
        continue;
      }
      if (cell.type == CellType::kConst1) {
        net_map[cell.outputs[0]] = out.const1();
        continue;
      }
      std::vector<NetId> ins;
      ins.reserve(cell.inputs.size());
      for (const NetId in : cell.inputs) ins.push_back(net_map.at(in));
      const auto outs = out.add_cell(cell.type, ins);
      out.tag_last_cell(cell.tag_row, cell.tag_col);
      for (std::size_t k = 0; k < outs.size(); ++k) net_map[cell.outputs[k]] = outs[k];
    }
    Bus& louts = lane_outputs[static_cast<std::size_t>(lane)];
    louts.reserve(core.primary_outputs().size());
    for (const NetId po : core.primary_outputs()) louts.push_back(net_map.at(po));
  }

  // Output selection: binary mux tree indexed by the counter (lane k is
  // selected exactly when it is about to be reloaded, i.e. its result has
  // had `ways` cycles to settle), then an output register.
  std::vector<Bus> level = lane_outputs;
  for (int b = 0; b < bits; ++b) {
    std::vector<Bus> next;
    next.reserve(level.size() / 2);
    for (std::size_t k = 0; k + 1 < level.size(); k += 2) {
      next.push_back(mux_bus(out, counter[static_cast<std::size_t>(b)], level[k], level[k + 1]));
    }
    level = std::move(next);
  }
  const Bus registered = register_bus(out, level[0]);
  for (std::size_t i = 0; i < registered.size(); ++i) {
    out.add_output(core.output_names()[i], registered[i]);
  }
  out.verify();
  return out;
}

Netlist replace_cell_type(const Netlist& source, CellId target, CellType new_type) {
  require(target < source.num_cells(), "replace_cell_type: unknown cell");
  const CellSpec& old_spec = cell_spec(source.cell(target).type);
  const CellSpec& new_spec = cell_spec(new_type);
  if (old_spec.num_inputs != new_spec.num_inputs ||
      old_spec.num_outputs != new_spec.num_outputs) {
    throw NetlistError(std::string("replace_cell_type: ") + old_spec.name + " -> " +
                       new_spec.name + " changes the pin counts");
  }
  source.verify();

  Netlist out(source.name() + "_mut");
  std::unordered_map<NetId, NetId> net_map;
  for (std::size_t i = 0; i < source.primary_inputs().size(); ++i) {
    net_map[source.primary_inputs()[i]] = out.add_input(source.input_names()[i]);
  }
  require(!source.primary_inputs().empty(),
          "replace_cell_type: source must have at least one primary input");
  // Two passes keep creation order (and therefore every id) identical even
  // through rewired sequential feedback: first instantiate every cell with
  // placeholder inputs, then point each pin at its mapped net.
  const NetId placeholder = out.primary_inputs()[0];
  for (CellId c = 0; c < source.num_cells(); ++c) {
    const CellInstance& cell = source.cell(c);
    const CellType type = (c == target) ? new_type : cell.type;
    const std::vector<NetId> ins(cell.inputs.size(), placeholder);
    const std::vector<NetId> outs = out.add_cell(type, ins);
    if (cell.tag_row >= 0 || cell.tag_col >= 0) out.tag_last_cell(cell.tag_row, cell.tag_col);
    for (std::size_t k = 0; k < outs.size(); ++k) net_map[cell.outputs[k]] = outs[k];
  }
  for (CellId c = 0; c < source.num_cells(); ++c) {
    const CellInstance& cell = source.cell(c);
    for (std::size_t pin = 0; pin < cell.inputs.size(); ++pin) {
      out.rewire_input(c, static_cast<int>(pin), net_map.at(cell.inputs[pin]));
    }
  }
  for (std::size_t i = 0; i < source.primary_outputs().size(); ++i) {
    out.add_output(source.output_names()[i], net_map.at(source.primary_outputs()[i]));
  }
  out.verify();
  return out;
}

}  // namespace optpower
