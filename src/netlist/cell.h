// Cell types and per-type static specifications of the generic standard-cell
// library used by the multiplier generators.
//
// The paper counts synthesized library cells ("N number of cells"), where a
// full adder is ONE cell - so full/half adders are primitive multi-output
// cells here, not gate compositions.  Areas and capacitances approximate a
// 0.13 um standard-cell library (the substitution for the ST CMOS09 library;
// see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

namespace optpower {

/// Every primitive the netlist knows.  kInput/kOutput are port markers, not
/// cells; kConst0/kConst1 are tie cells.
enum class CellType : std::uint8_t {
  kConst0,
  kConst1,
  kBuf,
  kInv,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,        ///< inputs {a, b, sel} -> sel ? b : a
  kHalfAdder,   ///< inputs {a, b} -> outputs {sum, carry}
  kFullAdder,   ///< inputs {a, b, cin} -> outputs {sum, carry}
  kDff,         ///< input {d} -> output {q}; clocked by the global clock
  kDffEnable,   ///< inputs {d, en} -> output {q}; holds when en = 0
};

/// Static description of one cell type.
struct CellSpec {
  CellType type;
  const char* name;        ///< library name, e.g. "FA1"
  int num_inputs;
  int num_outputs;
  double area_um2;         ///< layout area
  double cell_cap_f;       ///< equivalent switched capacitance per output toggle [F]
                           ///< (the per-cell "C" aggregated into Eq. 1)
  double depth_units;      ///< worst-case propagation delay in equivalent
                           ///< inverter delays (the STA's LD unit)
  bool is_sequential;      ///< DFF flavors
};

/// Look up the spec of a cell type (O(1), never fails).
[[nodiscard]] const CellSpec& cell_spec(CellType type) noexcept;

/// Evaluate the combinational function of `type`.
/// `inputs` packs input pin values LSB-first (pin 0 = bit 0).
/// Returns outputs packed the same way.  Sequential types evaluate their
/// *data path* (what Q would become on the next edge).
[[nodiscard]] std::uint8_t eval_cell(CellType type, std::uint8_t inputs) noexcept;

/// Human-readable name ("FA1", "NAND2", ...).
[[nodiscard]] std::string to_string(CellType type);

}  // namespace optpower
