// Process-wide metrics: lock-free counters and gauges (relaxed atomics - the
// instruments are safe to hammer from any thread and never serialize a hot
// path), a log2-bucketed latency histogram with quantile estimates, and a
// MetricsRegistry that interns instruments by name at first use.
//
// Usage pattern on hot paths: resolve the instrument ONCE (function-local
// static or constructor-cached pointer), then touch only the atomic -
//
//   static obs::Counter& hits = obs::registry().counter("serve.cache.hits");
//   hits.add();
//
// Registered instruments live for the whole process (the registry never
// deletes - references stay valid forever), so counters are lifetime totals
// across every client object that touched them.  Components that also need
// per-instance counts (e.g. one ResultCache's wire-visible counters) own
// standalone Counter members besides the registry's process totals.
//
// snapshot() is wait-free for writers; the text_dump() is a Prometheus-style
// exposition (one `# TYPE` line per instrument, histogram as cumulative
// `_bucket{le="..."}` series) served verbatim by the serving layer's
// kMetricsRequest and `serve_ctl metrics`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace optpower::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Process-wide metrics kill switch (default on; OPTPOWER_METRICS=0 at
/// process start disables).  The instruments themselves never check it -
/// per-instance wire counters (cache stats, controller stats) must stay
/// correct regardless - so hot paths gate their REGISTRY mirror updates and
/// any clock reads on this flag explicitly:
///
///   if (obs::metrics_enabled()) metrics().hits.add();
///
/// One relaxed load and a branch when disabled, which is what keeps the
/// serving hot path within noise of the uninstrumented build.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Flip the kill switch programmatically (test hook).  Meant for process
/// start: gauges maintained by gated add/sub pairs can go stale if the flag
/// flips between the two touches.
void set_metrics_enabled(bool on) noexcept;

/// Monotonic event count.  add() is one relaxed fetch_add - no fences, no
/// locks; readers see a value that is exact once writers quiesce.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Test-isolation hook (MetricsRegistry::reset_all); never on serving paths.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, live workers, headroom).  Signed so a
/// transient inc/dec imbalance reads as negative instead of wrapping.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) noexcept { value_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed distribution: observe(v) lands in bucket floor(log2(v))
/// (v = 0 shares bucket 0 with v = 1), so 64 buckets cover the whole u64
/// range with <= 2x relative quantile error - plenty for "where did the
/// milliseconds go" questions at zero per-sample allocation cost.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::uint64_t v) noexcept {
    const int b = v <= 1 ? 0 : 64 - __builtin_clzll(v) - 1;
    buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t bucket(int b) const noexcept {
    return buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of one histogram, with quantile estimation.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  /// Upper bound (2^(b+1) - 1) of the bucket where the cumulative count
  /// first reaches q * count; 0 when empty.  q in [0, 1].
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }
};

/// Everything the registry knows, copied at one instant (values are
/// individually-relaxed loads: exact once writers quiesce, monotone always).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Name-interned instrument store.  counter()/gauge()/histogram() register
/// on first use (one mutex acquisition) and return a stable reference; the
/// instruments themselves are lock-free.  Names are dotted lowercase paths
/// ("serve.cache.hits"); the exposition dump maps '.' to '_'.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Prometheus-style text exposition: `# TYPE` headers, `optpower_`-prefixed
  /// sanitized names, histograms as cumulative le-buckets plus _sum/_count
  /// and p50/p95/p99 gauge lines.
  [[nodiscard]] std::string text_dump() const;

  /// Zero every registered instrument (references stay valid - instruments
  /// are never deleted).  Test isolation hook; never used on serving paths.
  void reset_all();

 private:
  template <typename T>
  T& intern(std::deque<std::pair<std::string, T>>& store, const std::string& name);

  mutable std::mutex mutex_;  // registration + enumeration only, never add()
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

/// The process-wide registry every layer reports into.
[[nodiscard]] MetricsRegistry& registry();

}  // namespace optpower::obs
