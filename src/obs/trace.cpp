#include "obs/trace.h"

#include <fcntl.h>
#include <pthread.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace optpower::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

std::uint64_t now_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// One recorded span.  POD on purpose: ring slots are overwritten in place
/// and the pointers reference string literals, never owned storage.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_keys[2] = {nullptr, nullptr};
  std::uint64_t arg_vals[2] = {0, 0};
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint8_t nargs = 0;
};

constexpr std::uint64_t kDefaultRingCapacity = 16384;

/// Per-thread event ring.  Only the owning thread writes events; the mutex
/// serializes those writes against cross-thread flushes.  On wrap the ring
/// overwrites its oldest slot, so a long-running thread keeps the tail of
/// its history rather than the head.
struct ThreadRing {
  std::mutex mu;
  std::vector<TraceEvent> slots;
  std::uint64_t recorded = 0;  // events since last flush (can exceed capacity)
  int tid = 0;                 // registration index, stable for thread life

  void push(const TraceEvent& ev) {
    std::lock_guard<std::mutex> lock(mu);
    if (slots.empty()) return;
    slots[static_cast<std::size_t>(recorded % slots.size())] = ev;
    ++recorded;
  }
};

struct Global {
  std::mutex mu;  // rings list, orphans, path, enabled transitions
  std::vector<ThreadRing*> rings;
  std::vector<std::pair<TraceEvent, int>> orphans;  // events of exited threads + their tid
  std::string path;
  std::uint64_t ring_capacity = kDefaultRingCapacity;
  int next_tid = 1;
};

Global& global() {
  static Global* g = new Global();  // leaked: outlives atexit flushes
  return *g;
}

/// Thread-local ring handle.  The holder's destructor runs at thread exit
/// and parks any unflushed events in the global orphan list so they still
/// make the next flush.
struct RingHolder {
  ThreadRing* ring = nullptr;
  ~RingHolder() {
    if (ring == nullptr) return;
    Global& g = global();
    std::lock_guard<std::mutex> glock(g.mu);
    {
      std::lock_guard<std::mutex> rlock(ring->mu);
      const std::uint64_t cap = ring->slots.size();
      const std::uint64_t n = std::min(ring->recorded, cap);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t idx = (ring->recorded - n + i) % cap;
        g.orphans.emplace_back(ring->slots[static_cast<std::size_t>(idx)], ring->tid);
      }
    }
    g.rings.erase(std::remove(g.rings.begin(), g.rings.end(), ring), g.rings.end());
    delete ring;
  }
};

thread_local RingHolder t_holder;

ThreadRing& thread_ring() {
  if (t_holder.ring == nullptr) {
    auto* ring = new ThreadRing();
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    ring->slots.resize(static_cast<std::size_t>(g.ring_capacity));
    ring->tid = g.next_tid++;
    g.rings.push_back(ring);
    t_holder.ring = ring;
  }
  return *t_holder.ring;
}

void append_json_event(std::string& out, const TraceEvent& ev, int pid, int tid) {
  // Timestamps are CLOCK_MONOTONIC exported in microseconds with sub-us
  // precision kept as a decimal fraction - comparable across the controller
  // and its forked workers, which is what makes request-id correlation a
  // single Perfetto timeline instead of an alignment exercise.
  char buf[64];
  out += "{\"name\":\"";
  out += ev.name;
  out += "\",\"cat\":\"";
  out += ev.cat;
  out += "\",\"ph\":\"X\",\"ts\":";
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ev.ts_ns / 1000),
                static_cast<unsigned long long>(ev.ts_ns % 1000));
  out += buf;
  out += ",\"dur\":";
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ev.dur_ns / 1000),
                static_cast<unsigned long long>(ev.dur_ns % 1000));
  out += buf;
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  if (ev.nargs > 0) {
    out += ",\"args\":{";
    for (std::uint8_t i = 0; i < ev.nargs; ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += ev.arg_keys[i];
      out += "\":";
      out += std::to_string(ev.arg_vals[i]);
    }
    out += "}";
  }
  out += "}";
}

/// Append `body` (comma-separated JSON events, no brackets) to the trace
/// file under flock, keeping the invariant that the file is COMPLETE JSON
/// after every flush: it always ends "\n]\n", so a new flush truncates
/// those 3 bytes, joins with ",\n", and restores the tail.  This is how
/// controller and worker processes interleave into one parseable file.
void append_to_file(const std::string& path, const std::string& body) {
  if (body.empty()) return;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return;
  if (::flock(fd, LOCK_EX) != 0) {
    ::close(fd);
    return;
  }
  struct stat st{};
  std::string out;
  if (::fstat(fd, &st) == 0 && st.st_size >= 3) {
    (void)::ftruncate(fd, st.st_size - 3);  // drop "\n]\n"
    (void)::lseek(fd, 0, SEEK_END);
    out = ",\n";
  } else {
    (void)::ftruncate(fd, 0);
    (void)::lseek(fd, 0, SEEK_SET);
    out = "[\n";
  }
  out += body;
  out += "\n]\n";
  const char* p = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) break;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ::flock(fd, LOCK_UN);
  ::close(fd);
}

/// Drain every ring + the orphan list into the trace file.  Caller holds
/// g.mu.
void flush_locked(Global& g) {
  if (g.path.empty()) return;
  std::vector<std::pair<TraceEvent, int>> events;
  for (ThreadRing* ring : g.rings) {
    std::lock_guard<std::mutex> rlock(ring->mu);
    const std::uint64_t cap = ring->slots.size();
    if (cap == 0) continue;
    const std::uint64_t n = std::min(ring->recorded, cap);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t idx = (ring->recorded - n + i) % cap;
      events.emplace_back(ring->slots[static_cast<std::size_t>(idx)], ring->tid);
    }
    ring->recorded = 0;
  }
  for (auto& orphan : g.orphans) events.push_back(orphan);
  g.orphans.clear();
  if (events.empty()) return;
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.first.ts_ns < b.first.ts_ns; });
  const int pid = static_cast<int>(::getpid());
  std::string body;
  body.reserve(events.size() * 96);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) body += ",\n";
    append_json_event(body, events[i].first, pid, events[i].second);
  }
  append_to_file(g.path, body);
}

// ---- fork safety ------------------------------------------------------
//
// The serve controller forks workers while tracing.  Without intervention
// the child would inherit full rings and re-emit the parent's spans under
// its own pid.  prepare/parent bracket the fork with g.mu held so the
// child's copy of the lock is in a known state; the child then drops every
// ring except the forking thread's own (other threads do not exist in the
// child, and their ring mutexes may have been copied mid-acquisition) and
// clears what remains.

void atfork_prepare() { global().mu.lock(); }
void atfork_parent() { global().mu.unlock(); }

void atfork_child() {
  Global& g = global();
  ThreadRing* mine = t_holder.ring;  // the forking thread cannot hold mine->mu here
  g.rings.clear();
  if (mine != nullptr) {
    mine->recorded = 0;
    g.rings.push_back(mine);
  }
  g.orphans.clear();
  g.mu.unlock();
}

/// Static-init hook: pick up OPTPOWER_TRACE / OPTPOWER_TRACE_RING, register
/// the fork handlers and an atexit flush.
struct EnvInit {
  EnvInit() {
    ::pthread_atfork(&atfork_prepare, &atfork_parent, &atfork_child);
    if (const char* cap = std::getenv("OPTPOWER_TRACE_RING")) {
      const unsigned long long v = std::strtoull(cap, nullptr, 10);
      if (v >= 16) global().ring_capacity = v;
    }
    if (const char* path = std::getenv("OPTPOWER_TRACE")) {
      if (path[0] != '\0') trace_start(path);
    }
    std::atexit([] { trace_stop(); });
  }
};

EnvInit g_env_init;

}  // namespace

bool trace_start(const char* path) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (detail::g_trace_enabled.load(std::memory_order_relaxed)) return true;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  ::close(fd);
  g.path = path;
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void trace_stop() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (!detail::g_trace_enabled.load(std::memory_order_relaxed)) return;
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
  flush_locked(g);
  g.path.clear();
}

void trace_flush() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  if (!detail::g_trace_enabled.load(std::memory_order_relaxed)) return;
  flush_locked(g);
}

void Span::begin(const char* name, const char* cat) noexcept {
  name_ = name;
  cat_ = cat;
  start_ns_ = now_ns();
  live_ = true;
}

void Span::end() noexcept {
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.ts_ns = start_ns_;
  const std::uint64_t now = now_ns();
  ev.dur_ns = now > start_ns_ ? now - start_ns_ : 0;
  ev.nargs = nargs_;
  for (std::uint8_t i = 0; i < nargs_; ++i) {
    ev.arg_keys[i] = arg_keys_[i];
    ev.arg_vals[i] = arg_vals_[i];
  }
  thread_ring().push(ev);
}

namespace detail {

std::uint64_t thread_events_recorded() noexcept {
  ThreadRing& ring = thread_ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  return ring.recorded;
}

std::uint64_t ring_capacity() noexcept {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.ring_capacity;
}

}  // namespace detail

}  // namespace optpower::obs
