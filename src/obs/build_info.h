// Build provenance: which binary produced this answer?  Fleet stats and
// recorded bench results both carry these strings so a number can always be
// traced back to a compiler, a git revision, and the SIMD backend that was
// actually live at runtime (cpuid-resolved, not compile-time).
#pragma once

#include <string>

namespace optpower::obs {

/// `git describe --always --dirty --tags` captured at configure time via
/// the generated version.h ("unknown" outside a git checkout).
[[nodiscard]] const char* build_version() noexcept;

/// Compiler id + version the library was built with, e.g. "GNU 13.2.0".
[[nodiscard]] const char* build_compiler() noexcept;

/// Name of the SIMD backend the runtime dispatcher selected on this
/// machine ("scalar", "avx2", "avx512").
[[nodiscard]] std::string active_simd_backend();

}  // namespace optpower::obs
