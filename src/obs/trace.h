// Chrome-trace spans: RAII `Span` objects recorded into per-thread ring
// buffers and exported as Chrome `trace_event` JSON (open the file in
// Perfetto or chrome://tracing).
//
// Cost model, which everything else here bends around:
//   - tracing DISABLED (the default): constructing a Span is ONE relaxed
//     atomic load and a branch.  No clock read, no TLS write, nothing.
//   - tracing ENABLED: two clock_gettime(CLOCK_MONOTONIC) calls and one
//     slot write into a thread-local ring.  No locks, no allocation.
//
// Names, categories, and arg keys must be STRING LITERALS (or otherwise
// immortal storage): the ring stores the pointers, not copies.
//
// Enable by setting OPTPOWER_TRACE=<file> before process start (a static
// initializer picks it up and registers an atexit flush), or
// programmatically via trace_start()/trace_stop().  OPTPOWER_TRACE_RING
// overrides the per-thread ring capacity (default 16384 events; the ring
// overwrites its oldest events on wrap, so a long run keeps the tail).
//
// Multi-process fleets (the serve controller forks workers) share one trace
// file: every flush appends under flock() and leaves the file as complete,
// parseable JSON (`[ ... ]`), so controller and worker spans land in the
// same Perfetto timeline, distinguished by pid and correlated by the
// request-id span args.  Forked children start with cleared rings (a
// pthread_atfork handler) so parent spans are never re-attributed to the
// child's pid; workers that _exit() must call trace_flush() themselves
// (the serve worker loop does).
#pragma once

#include <atomic>
#include <cstdint>

namespace optpower::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// One relaxed load and a branch - the whole disabled-path cost of a Span.
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Start tracing to `path` (truncates).  Thread-safe; no-op if already
/// tracing.  Returns false if the file cannot be opened.
bool trace_start(const char* path);

/// Flush all rings and stop tracing.  No-op if not tracing.
void trace_stop();

/// Flush every thread's ring to the trace file without stopping.  The file
/// is valid JSON after every flush - this is what forked serve workers call
/// before _exit().  No-op if not tracing.
void trace_flush();

/// RAII duration span ("ph":"X" complete event).  `name` and `cat` must be
/// string literals.  Up to two u64 args (e.g. the wire request id) attach
/// via arg() and appear under "args" in the JSON.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "optpower") noexcept {
    if (trace_enabled()) begin(name, cat);
  }
  ~Span() {
    if (live_) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a u64 argument.  `key` must be a string literal.  At most two
  /// args per span; extras are dropped.
  void arg(const char* key, std::uint64_t value) noexcept {
    if (live_ && nargs_ < 2) {
      arg_keys_[nargs_] = key;
      arg_vals_[nargs_] = value;
      ++nargs_;
    }
  }

 private:
  void begin(const char* name, const char* cat) noexcept;
  void end() noexcept;

  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* arg_keys_[2] = {nullptr, nullptr};
  std::uint64_t arg_vals_[2] = {0, 0};
  std::uint64_t start_ns_ = 0;
  std::uint8_t nargs_ = 0;
  bool live_ = false;
};

namespace detail {
/// Events recorded by this thread since its ring was last flushed or
/// wrapped (test hook for wrap/nesting assertions).
[[nodiscard]] std::uint64_t thread_events_recorded() noexcept;
/// Per-thread ring capacity currently in effect (test hook).
[[nodiscard]] std::uint64_t ring_capacity() noexcept;
}  // namespace detail

}  // namespace optpower::obs
