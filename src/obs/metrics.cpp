#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <tuple>

namespace optpower::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

namespace {

/// Static-init hook: OPTPOWER_METRICS=0 (or "off"/"false") disables the
/// registry mirrors for the whole process.
struct MetricsEnvInit {
  MetricsEnvInit() {
    const char* v = std::getenv("OPTPOWER_METRICS");
    if (v != nullptr && (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
                         std::strcmp(v, "false") == 0)) {
      detail::g_metrics_enabled.store(false, std::memory_order_relaxed);
    }
  }
};

MetricsEnvInit g_metrics_env_init;

}  // namespace

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation, 1-based; quantile(0) is the first.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(clamped * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      // Bucket b holds values in [2^b, 2^(b+1)) (bucket 0 also holds 0).
      return b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{2} << b) - 1;
    }
  }
  return ~std::uint64_t{0};
}

template <typename T>
T& MetricsRegistry::intern(std::deque<std::pair<std::string, T>>& store, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : store) {
    if (entry.first == name) return entry.second;
  }
  // Deque: growth never moves existing elements, so handed-out references
  // stay valid for the life of the process.  Piecewise construction because
  // atomics are neither copyable nor movable.
  store.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                     std::forward_as_tuple());
  return store.back().second;
}

Counter& MetricsRegistry::counter(const std::string& name) { return intern(counters_, name); }
Gauge& MetricsRegistry::gauge(const std::string& name) { return intern(gauges_, name); }
Histogram& MetricsRegistry::histogram(const std::string& name) { return intern(histograms_, name); }

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c.value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g.value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h.count();
    hs.sum = h.sum();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      hs.buckets[static_cast<std::size_t>(b)] = h.bucket(b);
    }
    snap.histograms.emplace_back(name, hs);
  }
  return snap;
}

namespace {

/// "serve.cache.hits" -> "optpower_serve_cache_hits".
std::string exposition_name(const std::string& name) {
  std::string out = "optpower_";
  for (const char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

}  // namespace

std::string MetricsRegistry::text_dump() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string e = exposition_name(name);
    out += "# TYPE " + e + " counter\n";
    out += e + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string e = exposition_name(name);
    out += "# TYPE " + e + " gauge\n";
    out += e + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hs] : snap.histograms) {
    const std::string e = exposition_name(name);
    out += "# TYPE " + e + " histogram\n";
    std::uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = hs.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;  // sparse dump; cumulative semantics are kept
      cumulative += n;
      const std::uint64_t le = b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{2} << b) - 1;
      out += e + "_bucket{le=\"" + std::to_string(le) + "\"} " + std::to_string(cumulative) + "\n";
    }
    out += e + "_bucket{le=\"+Inf\"} " + std::to_string(hs.count) + "\n";
    out += e + "_sum " + std::to_string(hs.sum) + "\n";
    out += e + "_count " + std::to_string(hs.count) + "\n";
    out += e + "_p50 " + std::to_string(hs.p50()) + "\n";
    out += e + "_p95 " + std::to_string(hs.p95()) + "\n";
    out += e + "_p99 " + std::to_string(hs.p99()) + "\n";
  }
  return out;
}

void MetricsRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    (void)name;
    c.reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g.set(0);
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h.reset();
  }
}

MetricsRegistry& registry() {
  // Leaked singleton: instruments must outlive every static-destruction-time
  // user (thread pools draining at exit, atexit trace flushes).
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace optpower::obs
