#include "obs/build_info.h"

#include "optpower_version.h"
#include "simd/simd.h"

namespace optpower::obs {

const char* build_version() noexcept { return OPTPOWER_GIT_DESCRIBE; }

const char* build_compiler() noexcept {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

std::string active_simd_backend() { return simd::backend_name(simd::default_backend()); }

}  // namespace optpower::obs
