// Sequential (add-and-shift) multipliers: the paper's compact family.
//
// "the basic implementation computes the multiplication with a sequence of
// add and shift operations ... as many clock cycles as the operand width ...
// only one 16-bit adder is necessary.  Note, this corresponds to an internal
// clock running 16 times faster than the 31.25 MHz data clock."
//
// All three variants keep one fast (carry-select) adder and stream the
// multiplier operand through it:
//  * sequential_multiplier:      1 bit/cycle, W cycles per result
//  * sequential_multiplier_4x:   4 bits/cycle via a 4xW carry-save block
//                                ("4_16 Wallace"), W/4 cycles per result
//  * sequential_multiplier_parallel: two basic cores on alternating operands
#pragma once

#include "netlist/netlist.h"

namespace optpower {

/// Basic add-and-shift multiplier.  New operands are captured every `width`
/// clock cycles (when the internal counter wraps); the 2W-bit result of one
/// operand pair appears one data period + one cycle later and stays stable
/// for a full period.
[[nodiscard]] Netlist sequential_multiplier(int width);

/// "4_16 Wallace": adds 4 partial products per cycle with a carry-save
/// block, needing width/4 cycles per result.  width must be divisible by 4.
[[nodiscard]] Netlist sequential_multiplier_4x(int width);

/// Replicated-and-multiplexed pair of basic cores: even data periods go to
/// lane 0, odd to lane 1; each lane has two data periods per result.
[[nodiscard]] Netlist sequential_multiplier_parallel(int width);

/// Clock cycles per result for each variant (the internal-vs-data clock
/// ratio the activity normalization and LDeff need).
[[nodiscard]] int sequential_cycles_per_result(int width) noexcept;
[[nodiscard]] int sequential4x_cycles_per_result(int width) noexcept;

}  // namespace optpower
