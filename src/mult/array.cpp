#include "mult/array.h"

#include "netlist/builder.h"
#include "netlist/cell.h"
#include "netlist/transform.h"
#include "util/error.h"
#include "util/format.h"

namespace optpower {

Netlist array_multiplier(int width) {
  require(width >= 2 && width <= 32, "array_multiplier: width must lie in [2, 32]");
  Netlist nl(strprintf("rca_mult%d", width));
  const Bus a = add_input_bus(nl, "a", width);
  const Bus b = add_input_bus(nl, "b", width);

  // Partial products, tagged by array position.
  std::vector<Bus> pp(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    Bus row;
    row.reserve(static_cast<std::size_t>(width));
    for (int j = 0; j < width; ++j) {
      row.push_back(nl.add_gate(CellType::kAnd2, {a[static_cast<std::size_t>(j)],
                                                  b[static_cast<std::size_t>(i)]}));
      nl.tag_last_cell(i, j);
    }
    pp[static_cast<std::size_t>(i)] = std::move(row);
  }

  // Row-by-row ripple accumulation.  After row i the product bits 0..i are
  // final; `acc` holds the running top (width-1) bits, `carry_top` the MSB.
  Bus product;
  product.reserve(static_cast<std::size_t>(2 * width));
  product.push_back(pp[0][0]);
  Bus acc(pp[0].begin() + 1, pp[0].end());  // width-1 bits
  NetId carry_top = kNoNet;

  for (int i = 1; i < width; ++i) {
    // Operand = acc extended by the previous row's carry-out (0 for row 1).
    Bus operand = acc;
    operand.push_back(carry_top == kNoNet ? nl.const0() : carry_top);

    // Ripple add partial-product row i; tag the adders with their position.
    const Bus& addend = pp[static_cast<std::size_t>(i)];
    Bus sum;
    sum.reserve(static_cast<std::size_t>(width));
    NetId carry = kNoNet;
    for (int j = 0; j < width; ++j) {
      std::vector<NetId> outs;
      if (carry == kNoNet) {
        outs = nl.add_cell(CellType::kHalfAdder, {operand[static_cast<std::size_t>(j)],
                                                  addend[static_cast<std::size_t>(j)]});
      } else {
        outs = nl.add_cell(CellType::kFullAdder, {operand[static_cast<std::size_t>(j)],
                                                  addend[static_cast<std::size_t>(j)], carry});
      }
      nl.tag_last_cell(i, j);
      sum.push_back(outs[0]);
      carry = outs[1];
    }
    product.push_back(sum[0]);
    acc.assign(sum.begin() + 1, sum.end());
    carry_top = carry;
  }

  for (const NetId bit : acc) product.push_back(bit);
  product.push_back(carry_top);
  add_output_bus(nl, "p", product);
  nl.verify();
  return nl;
}

Netlist array_multiplier_hpipe(int width, int stages) {
  require(stages >= 2, "array_multiplier_hpipe: need >= 2 stages");
  const Netlist base = array_multiplier(width);
  Netlist out = pipeline_netlist(base, stages, horizontal_stages(stages, width - 1));
  out.set_name(strprintf("rca_mult%d_hpipe%d", width, stages));
  return out;
}

Netlist array_multiplier_dpipe(int width, int stages) {
  require(stages >= 2, "array_multiplier_dpipe: need >= 2 stages");
  const Netlist base = array_multiplier(width);
  Netlist out = pipeline_netlist(base, stages, diagonal_stages(stages, 2 * (width - 1)));
  out.set_name(strprintf("rca_mult%d_dpipe%d", width, stages));
  return out;
}

}  // namespace optpower
