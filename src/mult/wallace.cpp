#include "mult/wallace.h"

#include "netlist/builder.h"
#include "netlist/cell.h"
#include "util/error.h"
#include "util/format.h"

namespace optpower {

Netlist wallace_multiplier(int width) {
  require(width >= 2 && width <= 32, "wallace_multiplier: width must lie in [2, 32]");
  Netlist nl(strprintf("wallace_mult%d", width));
  const Bus a = add_input_bus(nl, "a", width);
  const Bus b = add_input_bus(nl, "b", width);

  // Dot diagram: columns[k] collects all bits of weight 2^k.
  std::vector<std::vector<NetId>> columns(static_cast<std::size_t>(2 * width));
  for (int i = 0; i < width; ++i) {
    for (int j = 0; j < width; ++j) {
      const NetId dot = nl.add_gate(
          CellType::kAnd2, {a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(i)]});
      nl.tag_last_cell(i, j);
      columns[static_cast<std::size_t>(i + j)].push_back(dot);
    }
  }

  // Wallace reduction: per pass, compress every group of 3 in a column with
  // a full adder and every remaining pair with a half adder, until all
  // columns have height <= 2.
  int level = width;  // tag pipeline levels below the pp rows
  auto max_height = [&]() {
    std::size_t h = 0;
    for (const auto& col : columns) h = std::max(h, col.size());
    return h;
  };
  while (max_height() > 2) {
    std::vector<std::vector<NetId>> next(columns.size());
    for (std::size_t k = 0; k < columns.size(); ++k) {
      auto& col = columns[k];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const auto outs = nl.add_cell(CellType::kFullAdder, {col[i], col[i + 1], col[i + 2]});
        nl.tag_last_cell(level, static_cast<std::int32_t>(k));
        next[k].push_back(outs[0]);
        if (k + 1 < next.size()) next[k + 1].push_back(outs[1]);
        i += 3;
      }
      if (col.size() - i == 2) {
        const auto outs = nl.add_cell(CellType::kHalfAdder, {col[i], col[i + 1]});
        nl.tag_last_cell(level, static_cast<std::int32_t>(k));
        next[k].push_back(outs[0]);
        if (k + 1 < next.size()) next[k + 1].push_back(outs[1]);
        i += 2;
      }
      for (; i < col.size(); ++i) next[k].push_back(col[i]);
    }
    columns = std::move(next);
    ++level;
  }

  // Final two-row addition with the fast carry-select adder.
  Bus row0, row1;
  row0.reserve(columns.size());
  row1.reserve(columns.size());
  for (auto& col : columns) {
    row0.push_back(col.empty() ? nl.const0() : col[0]);
    row1.push_back(col.size() > 1 ? col[1] : nl.const0());
  }
  const AdderResult final_sum = carry_select_adder(nl, row0, row1, kNoNet, 4);
  Bus product = final_sum.sum;  // 2W bits; the carry-out of bit 2W-1 is zero
  add_output_bus(nl, "p", product);
  nl.verify();
  return nl;
}

}  // namespace optpower
