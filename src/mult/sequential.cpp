#include "mult/sequential.h"

#include "netlist/builder.h"
#include "netlist/cell.h"
#include "util/error.h"
#include "util/format.h"

namespace optpower {
namespace {

/// A register bank created on placeholder inputs; the D cones are rewired
/// once the feedback logic exists (the sequential-feedback pattern enabled
/// by Netlist::rewire_input).
struct RegBank {
  Bus q;
  std::vector<CellId> cells;
};

RegBank make_reg_bank(Netlist& nl, int width) {
  RegBank bank;
  const NetId placeholder = nl.const0();
  bank.q.reserve(static_cast<std::size_t>(width));
  bank.cells.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const NetId q = nl.add_gate(CellType::kDff, {placeholder});
    bank.cells.push_back(nl.driver_of(q));
    bank.q.push_back(q);
  }
  return bank;
}

void connect_reg_bank(Netlist& nl, const RegBank& bank, const Bus& d) {
  require(d.size() == bank.q.size(), "connect_reg_bank: width mismatch");
  for (std::size_t i = 0; i < d.size(); ++i) nl.rewire_input(bank.cells[i], 0, d[i]);
}

Bus shift_left_pad(Netlist& nl, const Bus& bus, int k, int width) {
  Bus out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < k && static_cast<int>(out.size()) < width; ++i) out.push_back(nl.const0());
  for (const NetId b : bus) {
    if (static_cast<int>(out.size()) >= width) break;
    out.push_back(b);
  }
  while (static_cast<int>(out.size()) < width) out.push_back(nl.const0());
  return out;
}

/// Gate every bit of `bus` with NOT(load): the P operand is zero on load
/// cycles (starting a fresh accumulation).
Bus gate_with_not(Netlist& nl, const Bus& bus, NetId load) {
  const NetId nload = nl.add_gate(CellType::kInv, {load});
  return and_with_bit(nl, bus, nload);
}

/// Appends one add-and-shift core processing `bits_per_cycle` multiplier
/// bits per clock.  `a_in`/`b_in` are the operand buses (sampled on the
/// core's internal load cycle); returns the 2W-bit registered result.
Bus append_sequential_core(Netlist& nl, const Bus& a_in, const Bus& b_in, int bits_per_cycle) {
  const int width = static_cast<int>(a_in.size());
  require(width >= 4 && width % bits_per_cycle == 0,
          "append_sequential_core: width must be a multiple of bits_per_cycle");
  const int steps = width / bits_per_cycle;
  int counter_bits = 0;
  while ((1 << counter_bits) < steps) ++counter_bits;
  require((1 << counter_bits) == steps, "append_sequential_core: steps must be a power of two");

  // Internal sequencing: counter wraps every `steps` cycles; load on wrap.
  const Bus counter = add_counter(nl, counter_bits);
  // load = (counter == 0): AND of inverted state bits.
  NetId load = nl.add_gate(CellType::kInv, {counter[0]});
  for (std::size_t i = 1; i < counter.size(); ++i) {
    const NetId inv = nl.add_gate(CellType::kInv, {counter[i]});
    load = nl.add_gate(CellType::kAnd2, {load, inv});
  }

  RegBank a_reg = make_reg_bank(nl, width);
  RegBank b_reg = make_reg_bank(nl, width);
  RegBank p_reg = make_reg_bank(nl, width);

  // Operand selection: on load cycles the datapath consumes the fresh
  // operands directly (embedding the first add-shift step into the load),
  // otherwise the registered state.
  const Bus a_used = mux_bus(nl, load, a_reg.q, a_in);
  Bus b_low_used;  // the bits_per_cycle multiplier bits consumed this cycle
  for (int j = 0; j < bits_per_cycle; ++j) {
    b_low_used.push_back(nl.add_gate(
        CellType::kMux2,
        {b_reg.q[static_cast<std::size_t>(j)], b_in[static_cast<std::size_t>(j)], load}));
  }
  const Bus p_used = gate_with_not(nl, p_reg.q, load);

  // Partial-product block + accumulation.
  const int sum_width = width + bits_per_cycle;
  Bus sum;
  if (bits_per_cycle == 1) {
    // addend = a_used & b0; sum = p + addend (width+1 bits via carry-out).
    const Bus addend = and_with_bit(nl, a_used, b_low_used[0]);
    const AdderResult r = carry_select_adder(nl, p_used, addend, kNoNet, 4);
    sum = r.sum;
    sum.push_back(r.carry_out);
  } else {
    // Carry-save accumulate bits_per_cycle partial products plus P.
    std::vector<Bus> addends;
    for (int j = 0; j < bits_per_cycle; ++j) {
      const Bus pp = and_with_bit(nl, a_used, b_low_used[static_cast<std::size_t>(j)]);
      addends.push_back(shift_left_pad(nl, pp, j, sum_width));
    }
    addends.push_back(shift_left_pad(nl, p_used, 0, sum_width));
    // Reduce to two rows with 3:2 compressors.
    while (addends.size() > 2) {
      const Bus s0 = addends[0], s1 = addends[1], s2 = addends[2];
      addends.erase(addends.begin(), addends.begin() + 3);
      const CarrySaveRow row = carry_save_row(nl, s0, s1, s2);
      addends.push_back(row.sum);
      addends.push_back(shift_left_pad(nl, row.carry, 1, sum_width));
    }
    const AdderResult r = carry_select_adder(nl, addends[0], addends[1], kNoNet, 4);
    sum = r.sum;  // sum < 2^sum_width by construction: carry-out unused
  }

  // State update: A holds (or loads), P <- sum >> bits_per_cycle,
  // B shifts down by bits_per_cycle with the new product bits on top.
  connect_reg_bank(nl, a_reg, a_used);
  Bus p_next;
  for (int i = 0; i < width; ++i) {
    p_next.push_back(sum[static_cast<std::size_t>(i + bits_per_cycle)]);
  }
  connect_reg_bank(nl, p_reg, p_next);
  Bus b_next;
  for (int i = 0; i < width - bits_per_cycle; ++i) {
    b_next.push_back(
        nl.add_gate(CellType::kMux2, {b_reg.q[static_cast<std::size_t>(i + bits_per_cycle)],
                                      b_in[static_cast<std::size_t>(i + bits_per_cycle)], load}));
  }
  for (int j = 0; j < bits_per_cycle; ++j) b_next.push_back(sum[static_cast<std::size_t>(j)]);
  connect_reg_bank(nl, b_reg, b_next);

  // Result register: captured on the next load, i.e. when {B, P} hold the
  // finished product of the previous operand pair.
  Bus result_d = b_reg.q;
  result_d.insert(result_d.end(), p_reg.q.begin(), p_reg.q.end());
  return register_bus(nl, result_d, load);
}

}  // namespace

int sequential_cycles_per_result(int width) noexcept { return width; }
int sequential4x_cycles_per_result(int width) noexcept { return width / 4; }

Netlist sequential_multiplier(int width) {
  require(width >= 4 && width <= 32, "sequential_multiplier: width must lie in [4, 32]");
  Netlist nl(strprintf("seq_mult%d", width));
  const Bus a = add_input_bus(nl, "a", width);
  const Bus b = add_input_bus(nl, "b", width);
  const Bus p = append_sequential_core(nl, a, b, 1);
  add_output_bus(nl, "p", p);
  nl.verify();
  return nl;
}

Netlist sequential_multiplier_4x(int width) {
  require(width >= 8 && width % 4 == 0, "sequential_multiplier_4x: width must be a multiple of 4");
  Netlist nl(strprintf("seq4_mult%d", width));
  const Bus a = add_input_bus(nl, "a", width);
  const Bus b = add_input_bus(nl, "b", width);
  const Bus p = append_sequential_core(nl, a, b, 4);
  add_output_bus(nl, "p", p);
  nl.verify();
  return nl;
}

Netlist sequential_multiplier_parallel(int width) {
  require(width >= 4 && width <= 32, "sequential_multiplier_parallel: width must lie in [4, 32]");
  Netlist nl(strprintf("seqpar_mult%d", width));
  const Bus a = add_input_bus(nl, "a", width);
  const Bus b = add_input_bus(nl, "b", width);

  // Phase: MSB of a counter spanning two data periods; lane k holds the
  // operands of every other data period.
  int counter_bits = 1;
  while ((1 << counter_bits) < 2 * width) ++counter_bits;
  const Bus phase_counter = add_counter(nl, counter_bits);
  const NetId phase = phase_counter[static_cast<std::size_t>(counter_bits - 1)];
  const NetId phase_n = nl.add_gate(CellType::kInv, {phase});

  Bus outputs;
  std::vector<Bus> lane_results;
  for (int lane = 0; lane < 2; ++lane) {
    const NetId hold_en = (lane == 0) ? phase_n : phase;
    Bus a_held, b_held;
    for (const NetId bit : a) a_held.push_back(nl.add_gate(CellType::kDffEnable, {bit, hold_en}));
    for (const NetId bit : b) b_held.push_back(nl.add_gate(CellType::kDffEnable, {bit, hold_en}));
    lane_results.push_back(append_sequential_core(nl, a_held, b_held, 1));
  }
  outputs = mux_bus(nl, phase, lane_results[0], lane_results[1]);
  add_output_bus(nl, "p", outputs);
  nl.verify();
  return nl;
}

}  // namespace optpower
