#include "mult/factory.h"

#include "mult/array.h"
#include "mult/sequential.h"
#include "mult/wallace.h"
#include "netlist/transform.h"
#include "util/error.h"

namespace optpower {

const std::vector<std::string>& multiplier_names() {
  static const std::vector<std::string> kNames = {
      "RCA",           "RCA parallel",  "RCA parallel 4", "RCA hor.pipe2", "RCA hor.pipe4",
      "RCA diagpipe2", "RCA diagpipe4", "Wallace",        "Wallace parallel", "Wallace par4",
      "Sequential",    "Seq4_16",       "Seq parallel",
  };
  return kNames;
}

GeneratedMultiplier build_multiplier(const std::string& name, int width) {
  GeneratedMultiplier g{name, Netlist("empty"), width, 1, 1, false};
  if (name == "RCA") {
    g.netlist = array_multiplier(width);
  } else if (name == "RCA parallel") {
    g.netlist = parallelize_netlist(array_multiplier(width), 2);
    g.ways = 2;
  } else if (name == "RCA parallel 4") {
    g.netlist = parallelize_netlist(array_multiplier(width), 4);
    g.ways = 4;
  } else if (name == "RCA hor.pipe2") {
    g.netlist = array_multiplier_hpipe(width, 2);
  } else if (name == "RCA hor.pipe4") {
    g.netlist = array_multiplier_hpipe(width, 4);
  } else if (name == "RCA diagpipe2") {
    g.netlist = array_multiplier_dpipe(width, 2);
  } else if (name == "RCA diagpipe4") {
    g.netlist = array_multiplier_dpipe(width, 4);
  } else if (name == "Wallace") {
    g.netlist = wallace_multiplier(width);
  } else if (name == "Wallace parallel") {
    g.netlist = parallelize_netlist(wallace_multiplier(width), 2);
    g.ways = 2;
  } else if (name == "Wallace par4") {
    g.netlist = parallelize_netlist(wallace_multiplier(width), 4);
    g.ways = 4;
  } else if (name == "Sequential") {
    g.netlist = sequential_multiplier(width);
    g.cycles_per_result = sequential_cycles_per_result(width);
    g.is_sequential = true;
  } else if (name == "Seq4_16") {
    g.netlist = sequential_multiplier_4x(width);
    g.cycles_per_result = sequential4x_cycles_per_result(width);
    g.is_sequential = true;
  } else if (name == "Seq parallel") {
    g.netlist = sequential_multiplier_parallel(width);
    g.cycles_per_result = sequential_cycles_per_result(width);
    g.ways = 2;
    g.is_sequential = true;
  } else {
    throw InvalidArgument("build_multiplier: unknown architecture '" + name + "'");
  }
  return g;
}

std::vector<GeneratedMultiplier> build_all_multipliers(int width) {
  std::vector<GeneratedMultiplier> all;
  all.reserve(multiplier_names().size());
  for (const auto& name : multiplier_names()) all.push_back(build_multiplier(name, width));
  return all;
}

}  // namespace optpower
