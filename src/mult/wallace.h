// Wallace-tree multiplier: "adds the partial products using Carry Save
// Adders in parallel.  Path delays are better balanced than in RCA,
// resulting in an overall faster architecture."
#pragma once

#include "netlist/netlist.h"

namespace optpower {

/// Unsigned WxW Wallace-tree multiplier, combinational: column-wise 3:2
/// compression of the partial-product matrix to height 2, then a
/// carry-select final adder.
[[nodiscard]] Netlist wallace_multiplier(int width);

}  // namespace optpower
