// Ripple-carry array (Braun) multipliers: the paper's RCA family.
//
// "the basic implementation is constructed as an array of 1-bit adders, its
// speed being limited by the carry propagation" - rows of ripple adders
// accumulate one partial-product row each.  Cells carry (row, col) tags so
// the scheduling-based pipeliner can cut the array horizontally (Figure 3)
// or diagonally (Figure 4).
#pragma once

#include "netlist/netlist.h"

namespace optpower {

/// Unsigned WxW array multiplier, combinational: inputs a[W], b[W];
/// outputs p[2W].
[[nodiscard]] Netlist array_multiplier(int width);

/// Horizontally pipelined array multiplier (registers inserted between row
/// bands; Figure 3).  Latency = stages - 1 cycles.
[[nodiscard]] Netlist array_multiplier_hpipe(int width, int stages);

/// Diagonally pipelined array multiplier (registers along anti-diagonal
/// cuts; Figure 4).  Shorter logic depth per stage, more path-delay spread
/// (hence more glitching).  Latency = stages - 1 cycles.
[[nodiscard]] Netlist array_multiplier_dpipe(int width, int stages);

}  // namespace optpower
