// Factory for the paper's thirteen 16-bit multiplier architectures
// (Section 4), with the metadata the forward characterization flow needs:
// internal clock ratio, parallelization factor, and how results line up
// with applied operands.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace optpower {

/// One generated architecture plus its scheduling metadata.
struct GeneratedMultiplier {
  std::string name;                ///< Table-1 row name
  Netlist netlist;
  int width = 16;
  int cycles_per_result = 1;       ///< internal clock cycles per data period
  int ways = 1;                    ///< parallel replication factor
  bool is_sequential = false;      ///< uses an internal faster clock
  /// Timing relaxation vs. the data period: LDeff = LD_sta *
  /// cycles_per_result / ways (see sta/sta.h).
};

/// Names in the paper's Table-1 order.
[[nodiscard]] const std::vector<std::string>& multiplier_names();

/// Build one architecture by its Table-1 name ("RCA", "Wallace par4",
/// "Seq4_16", ...).  Throws InvalidArgument for unknown names.
[[nodiscard]] GeneratedMultiplier build_multiplier(const std::string& name, int width = 16);

/// Build all thirteen (expensive: ~40k cells total at width 16).
[[nodiscard]] std::vector<GeneratedMultiplier> build_all_multipliers(int width = 16);

}  // namespace optpower
