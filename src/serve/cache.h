// Content-addressed LRU result cache: canonical key material (serve/
// hashing.h) -> cached OptimumResponse core.  Bounded by an entry-count
// capacity with least-recently-used eviction; every lookup/insert updates
// the hit/miss/eviction counters that responses and StatsResponse surface.
// Thread-safe (one mutex - the critical sections are map operations, orders
// of magnitude cheaper than the computes they shortcut).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "serve/msg.h"

namespace optpower::serve {

/// Counter snapshot (also the wire form, see CacheStatsWire).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;

  [[nodiscard]] CacheStatsWire to_wire() const noexcept {
    return CacheStatsWire{hits, misses, evictions, entries, capacity};
  }
};

/// LRU-bounded map from canonical key material to the cached result.  Only
/// successful results belong in the cache (the controller enforces this);
/// capacity 0 disables storage entirely (every lookup is a miss, inserts
/// are dropped).
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Cached value for `key_material`, refreshing its recency; counts a hit
  /// or a miss either way.  `request_id` only labels the lookup's trace span
  /// so cache activity correlates with the request that caused it.
  [[nodiscard]] std::optional<OptimumResponse> lookup(const std::string& key_material,
                                                      std::uint64_t request_id = 0);

  /// Insert or refresh an entry, evicting least-recently-used entries while
  /// over capacity.  `request_id` labels the trace span only.
  void insert(const std::string& key_material, const OptimumResponse& value,
              std::uint64_t request_id = 0);

  [[nodiscard]] CacheStats stats() const;

  /// Drop every entry (counters are kept - they are lifetime totals).
  void clear();

 private:
  using LruList = std::list<std::pair<std::string, OptimumResponse>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  // Per-instance wire counters, always maintained (mutated and read under
  // mutex_, so plain integers - zero extra cost on the lookup path).  The
  // same events are mirrored into the registry's process totals
  // ("serve.cache.hits"/"misses"/"evictions") for kMetrics, gated on
  // obs::metrics_enabled().
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace optpower::serve
