#include "serve/hashing.h"

#include <cstring>

#include "mult/factory.h"
#include "report/forward_flow.h"
#include "sim/event_sim.h"
#include "util/hash.h"

namespace optpower::serve {

namespace {

/// Canonical little-endian appends (the material must be identical across
/// processes and machines, so no raw struct memory and no host order).
void put_u8(std::string& s, std::uint8_t v) { s.push_back(static_cast<char>(v)); }

void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}

void put_f64(std::string& s, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(s, bits);
}

}  // namespace

CacheKey derive_cache_key(const OptimumRequest& req, std::uint64_t netlist_hash,
                          std::uint64_t tech_hash) {
  // Canonicalize engine-ignored fields so requests with provably identical
  // answers share one entry (mirrors characterize_multiplier's handling).
  std::uint8_t delay_mode = req.delay_mode;
  std::uint64_t seed = req.seed;
  const auto source = static_cast<ActivitySource>(req.activity_source);
  if (source == ActivitySource::kBddExact) {
    delay_mode = static_cast<std::uint8_t>(SimDelayMode::kZero);
    seed = 0;
  }

  CacheKey key;
  key.material.reserve(64);
  key.material += "opsv2:";  // key-schema version, bumped when fields change
  put_u64(key.material, netlist_hash);
  put_u64(key.material, tech_hash);
  put_u32(key.material, req.width);
  put_f64(key.material, req.frequency);
  put_u8(key.material, req.activity_source);
  put_u32(key.material, req.activity_vectors);
  put_u64(key.material, seed);
  put_u8(key.material, delay_mode);
  put_f64(key.material, req.io_per_cell_scale);
  put_f64(key.material, req.zeta_cell_scale);

  Fnv1a64 h;
  h.update_bytes(key.material.data(), key.material.size());
  key.digest = h.digest();
  return key;
}

std::uint64_t ArchHashRegistry::netlist_hash(const std::string& arch_name, int width) {
  const std::pair<std::string, int> id(arch_name, width);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
  }
  // Build outside the lock: generation is deterministic, so two threads
  // racing on the same (family, width) insert the same value.
  const std::uint64_t hash = content_hash(build_multiplier(arch_name, width).netlist);
  std::lock_guard<std::mutex> lock(mutex_);
  return memo_.emplace(id, hash).first->second;
}

}  // namespace optpower::serve
