// Worker side of the serving fleet: a request evaluator that reproduces the
// serial library path (report/forward_flow.h run_forward_flow) BIT-IDENTICALLY
// while keeping per-design state resident - the generated netlist, its STA
// report, and the EventSimulator / BitSimulator instances - so repeated
// cache-missing queries against the same design skip construction (verify +
// topo sort + wheel/lane setup).  Bit-identity is guaranteed by the
// measure_activity_with / measure_activity_lanes_with contract: reset + rerun
// equals a fresh simulator, counter for counter.
//
// One WorkerEngine per worker process (or per worker thread in the in-process
// transport); it owns an exec/ thread pool sized from OPTPOWER_THREADS whose
// parallel results are bit-identical to serial by the exec/ determinism
// contract, so the fleet's answers never depend on worker thread counts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "exec/exec.h"
#include "mult/factory.h"
#include "serve/msg.h"
#include "sim/bitsim.h"
#include "sim/event_sim.h"
#include "sta/sta.h"

namespace optpower::serve {

/// Deterministic optimum evaluator with resident per-design simulators.
class WorkerEngine {
 public:
  /// `ctx` is the worker-owned pool every optimizer search fans out over
  /// (default: OPTPOWER_THREADS workers via ExecContext::from_env()).
  explicit WorkerEngine(ExecContext ctx = ExecContext::from_env());

  /// Evaluate one query.  Request-level failures (unknown architecture,
  /// infeasible constraint, invalid fields) come back as a response with a
  /// non-kOk error code - compute() itself only throws on logic errors the
  /// caller cannot map to a protocol reply.  A kOk response's OperatingPoint
  /// is bit-identical to run_forward_flow(arch, tech, frequency, options)
  /// with the matching ForwardFlowOptions.
  [[nodiscard]] OptimumResponse compute(const OptimumRequest& req);

  /// Requests evaluated (the per-worker "served" counter's local twin).
  [[nodiscard]] std::uint64_t computed() const noexcept { return computed_; }

 private:
  struct Design {
    GeneratedMultiplier gen;
    NetlistStats stats;
    TimingReport timing;
    std::optional<EventSimulator> event_sim;  // re-built when delay mode changes
    std::optional<BitSimulator> bit_sim;
  };

  Design& design_for(const std::string& arch_name, int width);

  ExecContext ctx_;
  std::map<std::pair<std::string, int>, Design> designs_;
  std::uint64_t computed_ = 0;
};

/// Blocking worker service loop over a socket fd: answers kOptimumRequest
/// frames with kOptimumResponse, acknowledges kShutdownRequest and returns,
/// returns on EOF (controller died or closed the channel), and reports
/// anything else as a protocol error frame.  Never throws across the loop -
/// a transport failure just ends the loop (the controller sees EOF and
/// requeues).  This is the whole worker: the process transport runs it in a
/// forked child, the thread transport in a std::thread.
void run_worker_loop(int fd);

}  // namespace optpower::serve
