// The serving controller: owns the worker fleet, the content-addressed
// result cache, and the client-facing listener.
//
//   client --frame--> controller --(miss)--> worker[shard] --> response
//                        |  \__ cache lookup/insert (serve/cache.h)
//                        |______ cache hit: answered with no worker traffic
//
// Lifecycle (order matters): construct -> start() forks the worker
// processes BEFORE any controller thread exists (fork-safety) -> listen_unix()
// / listen_tcp() spawns the accept thread -> wait() parks the owner until a
// client sends kShutdownRequest (or stop() is called) -> stop() joins every
// thread and reaps every worker.  Tests may skip the listener entirely and
// call handle_optimum() / handle_stats() / drain() in-process: the protocol
// handlers are the public API, the socket layer is a thin shell around them.
//
// Robustness contract (docs/SERVING.md "Timeouts, retries, failover"):
//  * every dispatch is bounded by the request's timeout_ms (0 = the
//    controller default); on expiry the worker is killed and counted dead;
//  * a dead worker (timeout or EOF) triggers a retry on the next live shard,
//    up to max_retries, after which kTimeout / kWorkerLost is returned;
//  * drain() finishes in-flight dispatches, stops every worker gracefully,
//    and leaves the controller serving cache hits only (kDraining otherwise).
#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/hashing.h"
#include "serve/msg.h"

namespace optpower::serve {

/// How a cache miss picks its worker.
enum class ShardMode : std::uint8_t {
  /// worker = cache-key digest mod fleet size (skipping dead workers):
  /// deterministic, so a given query always lands on the same shard and its
  /// resident simulators stay warm.  The default.
  kByKeyHash = 0,
  /// Rotating counter: even load under many distinct queries.
  kRoundRobin = 1,
};

/// How workers are hosted.
enum class WorkerTransport : std::uint8_t {
  /// fork()ed child processes over AF_UNIX socketpairs (the production
  /// mode): crash isolation, killable on timeout.  start() must run before
  /// any controller thread exists.
  kProcess = 0,
  /// std::thread per worker over the same socketpair protocol: no fork, so
  /// usable under ThreadSanitizer; a timed-out thread worker cannot be
  /// killed, only abandoned (its channel is closed and it is joined at
  /// stop()).  Answers are identical - the worker loop is shared code.
  kThread = 1,
};

struct ControllerOptions {
  int num_workers = 2;
  std::size_t cache_capacity = 256;       ///< entries; 0 disables the cache
  ShardMode shard_mode = ShardMode::kByKeyHash;
  WorkerTransport transport = WorkerTransport::kProcess;
  std::uint32_t default_timeout_ms = 60000;  ///< per-dispatch budget when the
                                             ///< request says timeout_ms = 0
  std::uint32_t max_retries = 2;          ///< re-dispatches after death/timeout
  std::string server_name = "optpower-serve";
};

/// Aggregate controller counters (the StatsResponse core).
struct ControllerStats {
  CacheStats cache;
  std::uint64_t requests = 0;
  std::uint64_t worker_dispatches = 0;
  std::uint64_t retries = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t rejected = 0;
  bool draining = false;
  std::vector<WorkerStatsWire> workers;
};

class Controller {
 public:
  explicit Controller(ControllerOptions options = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Spawn the worker fleet.  With the process transport this forks, so it
  /// must be the first thing the controller does - before listen_*() and
  /// before the embedding program starts threads of its own.
  void start();

  /// Bind + listen on a Unix-domain socket at `path` (unlinking any stale
  /// file first) and spawn the accept thread.
  void listen_unix(const std::string& path);

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral) and spawn the accept
  /// thread.  Returns the actually bound port.
  std::uint16_t listen_tcp(std::uint16_t port);

  /// Block until a client requests shutdown or stop() is called.
  void wait();

  /// Full stop: close the listener, unblock and join every connection
  /// thread, stop (or reap) every worker.  Idempotent.
  void stop();

  // --- protocol handlers (also the in-process test API) -------------------

  /// Serve one optimum query: cache lookup, shard dispatch with timeout +
  /// retry, cache fill.  Never throws; failures are encoded in the response.
  [[nodiscard]] OptimumResponse handle_optimum(const OptimumRequest& req);

  [[nodiscard]] StatsResponse handle_stats(const StatsRequest& req);

  /// Graceful drain: waits for in-flight dispatches, shuts every worker
  /// down, and flips the controller into cache-only mode.  Returns how many
  /// workers were stopped by THIS call (0 when already drained).
  std::uint32_t drain();

  [[nodiscard]] ControllerStats stats_snapshot();

  /// PIDs of live process-transport workers (test hook for the
  /// worker-death/retry scenario).  Empty under the thread transport.
  [[nodiscard]] std::vector<pid_t> worker_pids();

  [[nodiscard]] const ControllerOptions& options() const noexcept { return options_; }

 private:
  struct Worker {
    int id = -1;
    int fd = -1;           ///< controller end of the socketpair
    pid_t pid = -1;        ///< process transport only
    std::thread thread;    ///< thread transport only
    std::atomic<bool> alive{false};  ///< read lock-free by pick_worker()
    std::uint64_t served = 0;
    std::mutex mutex;      ///< serializes request/response on this channel
  };

  void spawn_worker(Worker& worker);
  /// Mark dead + kill/reap (process) or abandon (thread).  Caller holds
  /// worker.mutex.
  void retire_worker(Worker& worker);
  /// Dispatch `req` to `worker`; returns false (and retires the worker) on
  /// timeout or channel loss.  On success fills `out`.
  bool dispatch(Worker& worker, const OptimumRequest& req, std::uint32_t timeout_ms,
                OptimumResponse& out);
  int pick_worker(std::uint64_t digest, int attempt);

  void run_accept_loop();
  void serve_connection(int fd);
  void request_stop();

  ControllerOptions options_;
  ResultCache cache_;
  ArchHashRegistry registry_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_requested_{false};
  // Per-instance counters as obs::Counter: one accounting scheme for every
  // reader (drain, stats, tests) instead of bespoke atomics.  The same
  // events also bump the registry's process totals for kMetrics.
  obs::Counter requests_;
  obs::Counter worker_dispatches_;
  obs::Counter retries_;
  obs::Counter worker_deaths_;
  obs::Counter rejected_;
  std::atomic<std::uint32_t> round_robin_{0};

  std::mutex lifecycle_mutex_;  ///< guards drain()/stop() transitions
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  int listen_fd_ = -1;
  std::string unix_path_;
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  bool stopped_ = false;
};

}  // namespace optpower::serve
