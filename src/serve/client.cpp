#include "serve/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "report/forward_flow.h"

namespace optpower::serve {

ServeClient::~ServeClient() { close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

void ServeClient::connect_unix(const std::string& path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ServeError("connect_unix: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ServeError(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("connect " + path + ": " + why);
  }
  fd_ = fd;
}

void ServeClient::connect_tcp(std::uint16_t port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ServeError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("connect 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  fd_ = fd;
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Frame ServeClient::round_trip(const Frame& frame, MsgType expect, std::uint64_t request_id) {
  if (fd_ < 0) throw ServeError("ServeClient: not connected");
  write_frame(fd_, frame);
  Frame reply;
  if (read_frame(fd_, reply) != IoStatus::kOk) {
    throw ServeError("ServeClient: server closed the connection");
  }
  if (reply.type == MsgType::kErrorResponse && expect != MsgType::kErrorResponse) {
    const ErrorResponse err = decode_error_response(reply);
    throw ServeError(std::string("server error (") + to_string(static_cast<ErrorCode>(err.error)) +
                     "): " + err.text);
  }
  if (reply.type != expect) {
    throw ServeError(std::string("ServeClient: expected ") + to_string(expect) + ", got " +
                     to_string(reply.type));
  }
  (void)request_id;  // checked per message type by the callers below
  return reply;
}

HelloResponse ServeClient::hello(const std::string& client_name) {
  HelloRequest req;
  req.request_id = next_request_id_++;
  req.client_name = client_name;
  const HelloResponse resp =
      decode_hello_response(round_trip(encode(req), MsgType::kHelloResponse, req.request_id));
  if (resp.version != kProtocolVersion) {
    throw ServeError("server speaks protocol version " + std::to_string(int(resp.version)));
  }
  return resp;
}

OptimumResponse ServeClient::optimum(OptimumRequest req) {
  req.request_id = next_request_id_++;
  const OptimumResponse resp =
      decode_optimum_response(round_trip(encode(req), MsgType::kOptimumResponse, req.request_id));
  if (resp.request_id != req.request_id) {
    throw ServeError("ServeClient: response id mismatch");
  }
  return resp;
}

StatsResponse ServeClient::stats() {
  StatsRequest req;
  req.request_id = next_request_id_++;
  return decode_stats_response(round_trip(encode(req), MsgType::kStatsResponse, req.request_id));
}

MetricsResponse ServeClient::metrics() {
  MetricsRequest req;
  req.request_id = next_request_id_++;
  return decode_metrics_response(
      round_trip(encode(req), MsgType::kMetricsResponse, req.request_id));
}

DrainResponse ServeClient::drain() {
  DrainRequest req;
  req.request_id = next_request_id_++;
  return decode_drain_response(round_trip(encode(req), MsgType::kDrainResponse, req.request_id));
}

ShutdownResponse ServeClient::shutdown() {
  ShutdownRequest req;
  req.request_id = next_request_id_++;
  return decode_shutdown_response(
      round_trip(encode(req), MsgType::kShutdownResponse, req.request_id));
}

OptimumRequest make_optimum_request(const std::string& arch_name, const Technology& tech,
                                    double frequency) {
  const ForwardFlowOptions defaults;  // single source of truth for the flow's knobs
  OptimumRequest req;
  req.arch_name = arch_name;
  req.width = static_cast<std::uint32_t>(defaults.width);
  req.tech = tech;
  req.frequency = frequency;
  req.activity_source = static_cast<std::uint8_t>(defaults.activity_source);
  req.activity_vectors = static_cast<std::uint32_t>(defaults.activity_vectors);
  req.seed = defaults.seed;
  req.delay_mode = static_cast<std::uint8_t>(defaults.delay_mode);
  req.io_per_cell_scale = defaults.io_per_cell_scale;
  req.zeta_cell_scale = defaults.zeta_cell_scale;
  return req;
}

}  // namespace optpower::serve
