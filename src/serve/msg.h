// Wire protocol of the optimum-serving layer: versioned, length-prefixed
// binary frames over a blocking byte stream (Unix-domain socket or TCP on
// localhost).  The normative field-level specification lives in
// docs/SERVING.md; tests/serve/msg_test.cpp cross-references the MsgType
// enumerators below against that document so the two cannot drift apart.
//
// Framing (12-byte header, all integers little-endian):
//
//   u32 magic = kFrameMagic   u8 version   u8 type   u16 reserved (0)
//   u32 payload_len           payload[payload_len]
//
// Payloads are flat little-endian encodings written by msg.cpp's
// Writer/Reader - never raw struct memory (no padding bytes on the wire) -
// and doubles travel as their IEEE-754 bit pattern, so a value decoded on
// any peer is bit-identical to the value encoded.  That is what lets the
// fleet tests assert fleet answers == the serial library path with `==`.
//
// Error handling convention: request-LEVEL failures (unknown architecture,
// infeasible constraint, worker timeout, draining, ...) come back as an
// OptimumResponse whose `error` field is a non-kOk ErrorCode; frame/
// protocol-LEVEL failures (bad magic, unsupported version, undecodable
// payload, unknown type) come back as a kErrorResponse frame.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/model.h"
#include "tech/technology.h"
#include "util/error.h"

namespace optpower::serve {

/// First four bytes of every frame: "OPS1" read as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x3153504fu;

/// Protocol version this build speaks.  A peer announcing a different
/// version is rejected with ErrorCode::kUnsupportedVersion.
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Upper bound on a frame payload; larger announced lengths are rejected as
/// malformed before any allocation (garbage-length defense).
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

/// A protocol violation (framing, encoding, version) or transport failure.
class ServeError : public Error {
 public:
  explicit ServeError(const std::string& what) : Error(what) {}
};

/// Every message type on the wire.  Requests flow client -> controller (and
/// controller -> worker for kOptimumRequest / kShutdownRequest); responses
/// flow back on the same connection.  docs/SERVING.md documents each one.
enum class MsgType : std::uint8_t {
  kHelloRequest = 1,      ///< version handshake + client name
  kHelloResponse = 2,     ///< server version, fleet size, cache capacity
  kOptimumRequest = 3,    ///< one optimum query (the payload the cache keys on)
  kOptimumResponse = 4,   ///< optimum + provenance + cache-counter snapshot
  kStatsRequest = 5,      ///< fleet/cache counters probe
  kStatsResponse = 6,     ///< cache + per-worker counters
  kDrainRequest = 7,      ///< graceful drain: finish in-flight, stop workers
  kDrainResponse = 8,     ///< drain completed (cache-only mode from here on)
  kShutdownRequest = 9,   ///< stop the controller (workers already drained or killed)
  kShutdownResponse = 10, ///< acknowledged; connection closes after this
  kErrorResponse = 11,    ///< protocol-level failure report
  kMetricsRequest = 12,   ///< obs registry probe
  kMetricsResponse = 13,  ///< Prometheus-style text exposition of the registry
};

/// Request-level status codes (OptimumResponse::error / ErrorResponse::error).
enum class ErrorCode : std::uint16_t {
  kOk = 0,
  kUnsupportedVersion = 1,  ///< peer version != kProtocolVersion
  kMalformedFrame = 2,      ///< bad magic, bad length, undecodable payload
  kUnknownMessageType = 3,  ///< type byte not in MsgType
  kInvalidRequest = 4,      ///< field-level precondition violated
  kUnknownArchitecture = 5, ///< arch_name/width not buildable by mult/factory
  kInfeasible = 6,          ///< no (Vdd, Vth) meets the frequency constraint
  kTimeout = 7,             ///< per-request timeout expired (worker killed)
  kWorkerLost = 8,          ///< worker died; retries exhausted
  kDraining = 9,            ///< fleet drained: cache hits only, no computes
  kInternal = 10,           ///< unexpected server-side failure
};

[[nodiscard]] const char* to_string(MsgType type) noexcept;
[[nodiscard]] const char* to_string(ErrorCode code) noexcept;

/// One decoded frame: the type byte plus the raw payload bytes.
struct Frame {
  MsgType type = MsgType::kErrorResponse;
  std::vector<std::uint8_t> payload;
};

// --- payload structs -------------------------------------------------------

struct HelloRequest {
  std::uint64_t request_id = 0;
  std::uint8_t version = kProtocolVersion;
  std::string client_name;
};

struct HelloResponse {
  std::uint64_t request_id = 0;
  std::uint8_t version = kProtocolVersion;
  std::uint32_t num_workers = 0;
  std::uint64_t cache_capacity = 0;
  std::string server_name;
};

/// OptimumRequest::flags bits.
inline constexpr std::uint32_t kFlagNoCacheRead = 1u << 0;   ///< force recompute
inline constexpr std::uint32_t kFlagNoCacheStore = 1u << 1;  ///< don't cache result

/// One optimum query: everything run_forward_flow() needs, by value.  The
/// cache key derives from the content-bearing fields only (see
/// serve/hashing.h); request_id, flags, and timeout_ms are delivery
/// metadata.
struct OptimumRequest {
  std::uint64_t request_id = 0;
  std::string arch_name;         ///< Table-1 family name ("RCA", "Wallace par4", ...)
  std::uint32_t width = 16;
  Technology tech;               ///< full parameter vector, by value
  double frequency = 0.0;        ///< the timing constraint [Hz]
  std::uint8_t activity_source = 0;  ///< report/forward_flow.h ActivitySource
  std::uint32_t activity_vectors = 96;
  std::uint64_t seed = 0x5eed0001;
  std::uint8_t delay_mode = 0;   ///< sim/event_sim.h SimDelayMode
  double io_per_cell_scale = 16.0;
  double zeta_cell_scale = 1.0;
  std::uint32_t flags = 0;       ///< kFlagNoCacheRead | kFlagNoCacheStore
  std::uint32_t timeout_ms = 0;  ///< per-request budget; 0 = controller default
};

/// Cache-counter snapshot carried in responses.
struct CacheStatsWire {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;
};

struct OptimumResponse {
  std::uint64_t request_id = 0;
  std::uint16_t error = 0;       ///< ErrorCode; fields below valid when kOk
  std::string error_text;        ///< diagnostic, empty when kOk
  OperatingPoint point;          ///< the constrained optimum
  double frequency = 0.0;        ///< echoed constraint
  std::uint8_t on_constraint = 0;
  std::uint8_t converged = 0;
  double activity = 0.0;         ///< the measured switching factor "a"
  std::uint64_t cache_key = 0;   ///< 64-bit digest of the derived cache key
  std::uint8_t served_from_cache = 0;
  std::int32_t worker_id = -1;   ///< computing worker; -1 = cache hit
  std::uint32_t retries = 0;     ///< worker-death/timeout retries consumed
  CacheStatsWire cache;          ///< counters after this request
};

struct StatsRequest {
  std::uint64_t request_id = 0;
};

struct WorkerStatsWire {
  std::int32_t worker_id = -1;
  std::uint8_t alive = 0;
  std::uint64_t served = 0;      ///< requests this worker computed
};

struct StatsResponse {
  std::uint64_t request_id = 0;
  CacheStatsWire cache;
  std::uint64_t requests = 0;           ///< optimum requests accepted
  std::uint64_t worker_dispatches = 0;  ///< simulator invocations (cache misses sent to workers)
  std::uint64_t retries = 0;            ///< dispatch retries after death/timeout
  std::uint64_t worker_deaths = 0;      ///< workers lost (EOF or killed on timeout)
  std::uint64_t rejected = 0;           ///< requests refused (draining, no workers)
  std::uint8_t draining = 0;
  std::vector<WorkerStatsWire> workers;
  // Build provenance: which binary is answering?  Filled by the controller
  // from obs/build_info.h so fleet answers and recorded benches stay
  // attributable to a compiler + git revision + live SIMD backend.
  std::string build_version;   ///< `git describe` baked in at configure time
  std::string build_compiler;  ///< e.g. "gcc 13.2.0 ..."
  std::string simd_backend;    ///< runtime-dispatched backend ("avx2", ...)
};

struct DrainRequest {
  std::uint64_t request_id = 0;
};

struct DrainResponse {
  std::uint64_t request_id = 0;
  std::uint32_t workers_stopped = 0;
  CacheStatsWire cache;
};

struct ShutdownRequest {
  std::uint64_t request_id = 0;
};

struct ShutdownResponse {
  std::uint64_t request_id = 0;
};

struct ErrorResponse {
  std::uint64_t request_id = 0;  ///< 0 when the offending frame had no id
  std::uint16_t error = 0;       ///< ErrorCode
  std::string text;
};

struct MetricsRequest {
  std::uint64_t request_id = 0;
};

struct MetricsResponse {
  std::uint64_t request_id = 0;
  std::string text;  ///< MetricsRegistry::text_dump() of the controller process
};

// --- encode / decode -------------------------------------------------------
// decode_* throws ServeError when the frame has the wrong type or the
// payload does not parse (truncated, trailing bytes, oversized string).

[[nodiscard]] Frame encode(const HelloRequest& msg);
[[nodiscard]] Frame encode(const HelloResponse& msg);
[[nodiscard]] Frame encode(const OptimumRequest& msg);
[[nodiscard]] Frame encode(const OptimumResponse& msg);
[[nodiscard]] Frame encode(const StatsRequest& msg);
[[nodiscard]] Frame encode(const StatsResponse& msg);
[[nodiscard]] Frame encode(const DrainRequest& msg);
[[nodiscard]] Frame encode(const DrainResponse& msg);
[[nodiscard]] Frame encode(const ShutdownRequest& msg);
[[nodiscard]] Frame encode(const ShutdownResponse& msg);
[[nodiscard]] Frame encode(const ErrorResponse& msg);
[[nodiscard]] Frame encode(const MetricsRequest& msg);
[[nodiscard]] Frame encode(const MetricsResponse& msg);

[[nodiscard]] HelloRequest decode_hello_request(const Frame& frame);
[[nodiscard]] HelloResponse decode_hello_response(const Frame& frame);
[[nodiscard]] OptimumRequest decode_optimum_request(const Frame& frame);
[[nodiscard]] OptimumResponse decode_optimum_response(const Frame& frame);
[[nodiscard]] StatsRequest decode_stats_request(const Frame& frame);
[[nodiscard]] StatsResponse decode_stats_response(const Frame& frame);
[[nodiscard]] DrainRequest decode_drain_request(const Frame& frame);
[[nodiscard]] DrainResponse decode_drain_response(const Frame& frame);
[[nodiscard]] ShutdownRequest decode_shutdown_request(const Frame& frame);
[[nodiscard]] ShutdownResponse decode_shutdown_response(const Frame& frame);
[[nodiscard]] ErrorResponse decode_error_response(const Frame& frame);
[[nodiscard]] MetricsRequest decode_metrics_request(const Frame& frame);
[[nodiscard]] MetricsResponse decode_metrics_response(const Frame& frame);

// --- blocking frame IO -----------------------------------------------------

/// Outcome of a read with a deadline.
enum class IoStatus {
  kOk,       ///< a complete frame was read
  kEof,      ///< the peer closed the stream cleanly before a header byte
  kTimeout,  ///< the deadline expired before a complete frame arrived
};

/// Write one frame (header + payload) to a blocking socket fd.  Throws
/// ServeError on any transport error (EPIPE is reported, never raised as a
/// signal: sends use MSG_NOSIGNAL).
void write_frame(int fd, const Frame& frame);

/// Read one complete frame.  Returns kEof on a clean close at a frame
/// boundary; throws ServeError on transport errors, bad magic, version
/// mismatch, oversized payload, or mid-frame EOF.  `timeout_ms` < 0 blocks
/// indefinitely; >= 0 bounds the wait for EVERY byte of the frame.
[[nodiscard]] IoStatus read_frame(int fd, Frame& out, int timeout_ms = -1);

}  // namespace optpower::serve
