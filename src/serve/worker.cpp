#include "serve/worker.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "power/optimum.h"
#include "report/forward_flow.h"
#include "sim/activity.h"
#include "util/error.h"

namespace optpower::serve {

WorkerEngine::WorkerEngine(ExecContext ctx) : ctx_(std::move(ctx)) {}

WorkerEngine::Design& WorkerEngine::design_for(const std::string& arch_name, int width) {
  const std::pair<std::string, int> id(arch_name, width);
  const auto it = designs_.find(id);
  if (it != designs_.end()) return it->second;
  Design d;
  d.gen = build_multiplier(arch_name, width);
  d.stats = d.gen.netlist.stats();
  d.timing = analyze_timing(d.gen.netlist);
  return designs_.emplace(id, std::move(d)).first->second;
}

OptimumResponse WorkerEngine::compute(const OptimumRequest& req) {
  // Worker-side request span: shares the wire request id with the
  // controller's serve.request / serve.dispatch spans, which is what ties
  // the two processes' timelines together in one trace.
  obs::Span span("worker.compute", "serve");
  span.arg("request_id", req.request_id);
  static obs::Counter& computes = obs::registry().counter("worker.computes");
  if (obs::metrics_enabled()) computes.add();
  OptimumResponse resp;
  resp.request_id = req.request_id;
  resp.frequency = req.frequency;

  const auto fail = [&resp](ErrorCode code, const std::string& text) {
    resp.error = static_cast<std::uint16_t>(code);
    resp.error_text = text;
    return resp;
  };

  if (req.frequency <= 0.0) return fail(ErrorCode::kInvalidRequest, "frequency must be positive");
  if (req.width < 1 || req.width > 64) {
    return fail(ErrorCode::kInvalidRequest, "width must lie in [1, 64]");
  }
  if (req.activity_vectors < 1) {
    return fail(ErrorCode::kInvalidRequest, "activity_vectors must be >= 1");
  }
  const auto source = static_cast<ActivitySource>(req.activity_source);
  if (source != ActivitySource::kEventSim && source != ActivitySource::kBitParallel &&
      source != ActivitySource::kBddExact) {
    return fail(ErrorCode::kInvalidRequest, "unknown activity source");
  }
  const auto delay_mode = static_cast<SimDelayMode>(req.delay_mode);
  if (delay_mode != SimDelayMode::kUnit && delay_mode != SimDelayMode::kCellDepth &&
      delay_mode != SimDelayMode::kZero) {
    return fail(ErrorCode::kInvalidRequest, "unknown delay mode");
  }
  try {
    validate(req.tech);
  } catch (const InvalidArgument& e) {
    return fail(ErrorCode::kInvalidRequest, e.what());
  }

  Design* design = nullptr;
  try {
    design = &design_for(req.arch_name, static_cast<int>(req.width));
  } catch (const Error& e) {
    return fail(ErrorCode::kUnknownArchitecture, e.what());
  }

  try {
    // The characterize_multiplier schedule, evaluated on the resident
    // simulators (bit-identical to fresh construction by the *_with
    // contract) - every branch mirrors sim/activity.h measure_activity's
    // engine dispatch exactly.
    ActivityOptions act;
    act.num_vectors = static_cast<int>(req.activity_vectors);
    act.cycles_per_vector = design->gen.cycles_per_result;
    act.seed = req.seed;
    act.delay_mode = delay_mode;
    ActivityMeasurement activity;
    {
      obs::Span activity_span("worker.activity", "serve");
      activity_span.arg("request_id", req.request_id);
      switch (source) {
        case ActivitySource::kEventSim: {
          act.engine = ActivityEngine::kScalarEvent;
          if (!design->event_sim.has_value() ||
              design->event_sim->delay_mode() != act.delay_mode) {
            design->event_sim.emplace(design->gen.netlist, act.delay_mode);
          }
          activity = measure_activity_with(*design->event_sim, act);
          break;
        }
        case ActivitySource::kBitParallel: {
          act.engine = ActivityEngine::kBitParallel;
          if (!design->bit_sim.has_value() ||
              design->bit_sim->delay_mode() != act.delay_mode) {
            design->bit_sim.emplace(design->gen.netlist, act.delay_mode);
          }
          activity = merge_activity(design->gen.netlist,
                                    measure_activity_lanes_with(*design->bit_sim, act));
          break;
        }
        case ActivitySource::kBddExact: {
          act.engine = ActivityEngine::kBddExact;  // seed/delay_mode ignored
          activity = measure_activity(design->gen.netlist, act);
          break;
        }
      }
    }

    ArchitectureParams arch;
    arch.name = design->gen.name;
    arch.n_cells = static_cast<double>(design->stats.num_cells);
    arch.activity = activity.activity;
    arch.logic_depth = effective_logic_depth(design->timing.critical_path_units,
                                             design->gen.cycles_per_result, design->gen.ways);
    arch.cell_cap = design->stats.avg_cell_cap_f;
    arch.area_um2 = design->stats.area_um2;
    validate(arch);

    Technology scaled = req.tech;
    scaled.io = req.tech.io * req.io_per_cell_scale;
    scaled.zeta = req.tech.zeta * req.zeta_cell_scale;
    const PowerModel model(scaled, arch);
    const OptimumResult opt = [&] {
      obs::Span optimize_span("worker.optimize", "serve");
      optimize_span.arg("request_id", req.request_id);
      return find_optimum(model, req.frequency, OptimumOptions{}, ctx_);
    }();

    resp.point = opt.point;
    resp.on_constraint = opt.on_constraint ? 1 : 0;
    resp.converged = opt.converged ? 1 : 0;
    resp.activity = activity.activity;
    ++computed_;
    return resp;
  } catch (const NumericalError& e) {
    return fail(ErrorCode::kInfeasible, e.what());
  } catch (const Error& e) {
    return fail(ErrorCode::kInternal, e.what());
  }
}

void run_worker_loop(int fd) {
  WorkerEngine engine;
  try {
    for (;;) {
      Frame frame;
      if (read_frame(fd, frame) != IoStatus::kOk) return;  // EOF: controller gone
      switch (frame.type) {
        case MsgType::kOptimumRequest: {
          const OptimumRequest req = decode_optimum_request(frame);
          write_frame(fd, encode(engine.compute(req)));
          break;
        }
        case MsgType::kShutdownRequest: {
          const ShutdownRequest req = decode_shutdown_request(frame);
          ShutdownResponse resp;
          resp.request_id = req.request_id;
          write_frame(fd, encode(resp));
          return;
        }
        default: {
          ErrorResponse err;
          err.error = static_cast<std::uint16_t>(ErrorCode::kUnknownMessageType);
          err.text = std::string("worker: unexpected frame ") + to_string(frame.type);
          write_frame(fd, encode(err));
          break;
        }
      }
    }
  } catch (const Error&) {
    // Transport or protocol failure: fall out; the controller observes EOF
    // on this channel, marks the worker dead, and requeues in-flight work.
  }
}

}  // namespace optpower::serve
