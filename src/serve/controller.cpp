#include "serve/controller.h"

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/build_info.h"
#include "obs/trace.h"
#include "serve/worker.h"
#include "tech/technology.h"
#include "util/error.h"

namespace optpower::serve {

namespace {

void close_quiet(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

[[nodiscard]] int make_socketpair(int out[2]) {
  return ::socketpair(AF_UNIX, SOCK_STREAM, 0, out);
}

// Process-lifetime fleet instruments for kMetrics / `serve_ctl metrics`;
// resolved once, then each touch is a relaxed atomic op.
struct FleetMetrics {
  obs::Counter& requests = obs::registry().counter("serve.requests");
  obs::Counter& dispatches = obs::registry().counter("serve.dispatches");
  obs::Counter& retries = obs::registry().counter("serve.retries");
  obs::Counter& worker_deaths = obs::registry().counter("serve.worker_deaths");
  obs::Counter& rejected = obs::registry().counter("serve.rejected");
  obs::Gauge& live_workers = obs::registry().gauge("serve.workers.live");
  obs::Gauge& inflight = obs::registry().gauge("serve.inflight");
  obs::Histogram& request_us = obs::registry().histogram("serve.request_micros");
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics* m = new FleetMetrics();
  return *m;
}

}  // namespace

Controller::Controller(ControllerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity) {
  require(options_.num_workers >= 1, "Controller: num_workers must be >= 1");
}

Controller::~Controller() { stop(); }

void Controller::spawn_worker(Worker& worker) {
  int sv[2];
  if (make_socketpair(sv) != 0) {
    throw ServeError(std::string("socketpair: ") + std::strerror(errno));
  }
  if (options_.transport == WorkerTransport::kProcess) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw ServeError(std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Worker child: sees only its channel.  Close inherited sibling
      // channels so a dead controller reads as EOF everywhere, and _exit
      // (not exit) so no parent atexit handlers or stream flushes run twice.
      ::close(sv[0]);
      for (const auto& sibling : workers_) {
        if (sibling->fd >= 0) ::close(sibling->fd);
      }
      ::signal(SIGPIPE, SIG_IGN);
      run_worker_loop(sv[1]);
      // _exit skips atexit handlers, so the child must push its spans to the
      // shared trace file itself (the flock append protocol interleaves them
      // with the controller's).
      obs::trace_flush();
      ::close(sv[1]);
      ::_exit(0);
    }
    ::close(sv[1]);
    worker.fd = sv[0];
    worker.pid = pid;
  } else {
    worker.fd = sv[0];
    worker.thread = std::thread([fd = sv[1]] {
      run_worker_loop(fd);
      ::close(fd);
    });
  }
  worker.alive = true;
  if (obs::metrics_enabled()) fleet_metrics().live_workers.add();
}

void Controller::start() {
  require(!started_.load(), "Controller::start: already started");
  ::signal(SIGPIPE, SIG_IGN);  // belt and braces; sends also use MSG_NOSIGNAL
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->id = i;
    spawn_worker(*worker);
    workers_.push_back(std::move(worker));
  }
  started_.store(true);
}

void Controller::retire_worker(Worker& worker) {
  if (!worker.alive.load()) return;
  worker.alive.store(false);
  worker_deaths_.add();
  if (obs::metrics_enabled()) {
    fleet_metrics().worker_deaths.add();
    fleet_metrics().live_workers.sub();
  }
  close_quiet(worker.fd);
  if (options_.transport == WorkerTransport::kProcess && worker.pid > 0) {
    ::kill(worker.pid, SIGKILL);
    ::waitpid(worker.pid, nullptr, 0);
    worker.pid = -1;
  }
  // Thread transport: the worker thread exits once its channel write fails;
  // it is joined at stop().
}

bool Controller::dispatch(Worker& worker, const OptimumRequest& req, std::uint32_t timeout_ms,
                          OptimumResponse& out) {
  try {
    write_frame(worker.fd, encode(req));
    Frame frame;
    const IoStatus status =
        read_frame(worker.fd, frame, timeout_ms == 0 ? -1 : static_cast<int>(timeout_ms));
    if (status == IoStatus::kTimeout) {
      retire_worker(worker);
      out.error = static_cast<std::uint16_t>(ErrorCode::kTimeout);
      out.error_text = "worker dispatch timed out";
      return false;
    }
    if (status == IoStatus::kEof || frame.type != MsgType::kOptimumResponse) {
      retire_worker(worker);
      out.error = static_cast<std::uint16_t>(ErrorCode::kWorkerLost);
      out.error_text = "worker channel lost";
      return false;
    }
    out = decode_optimum_response(frame);
    ++worker.served;
    return true;
  } catch (const Error& e) {
    retire_worker(worker);
    out.error = static_cast<std::uint16_t>(ErrorCode::kWorkerLost);
    out.error_text = std::string("worker channel error: ") + e.what();
    return false;
  }
}

int Controller::pick_worker(std::uint64_t digest, int attempt) {
  const int n = static_cast<int>(workers_.size());
  int start = 0;
  if (options_.shard_mode == ShardMode::kByKeyHash) {
    start = static_cast<int>(digest % static_cast<std::uint64_t>(n));
  } else {
    start = static_cast<int>(round_robin_.fetch_add(1) % static_cast<std::uint32_t>(n));
  }
  // Probe from the home shard (offset by the attempt so a retry moves on),
  // skipping dead workers.  Races on `alive` are benign: a worker that dies
  // between the check and the dispatch just costs one more retry.
  for (int probe = 0; probe < n; ++probe) {
    const int idx = (start + attempt + probe) % n;
    if (workers_[static_cast<std::size_t>(idx)]->alive.load()) return idx;
  }
  return -1;
}

OptimumResponse Controller::handle_optimum(const OptimumRequest& req) {
  obs::Span span("serve.request", "serve");
  span.arg("request_id", req.request_id);
  FleetMetrics& fm = fleet_metrics();
  // In-flight gauge + latency histogram maintained on every exit path.  The
  // clock reads and registry touches are the priciest part of an otherwise
  // cache-hit-fast request, so the whole scope keys off the metrics switch
  // once (instance counters like requests_ stay unconditional - they are
  // wire-visible stats, not telemetry).
  struct RequestScope {
    FleetMetrics& fm;
    const bool on = obs::metrics_enabled();
    std::chrono::steady_clock::time_point t0;
    explicit RequestScope(FleetMetrics& metrics) : fm(metrics) {
      if (on) {
        t0 = std::chrono::steady_clock::now();
        fm.inflight.add();
      }
    }
    ~RequestScope() {
      if (!on) return;
      fm.inflight.sub();
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0);
      fm.request_us.observe(static_cast<std::uint64_t>(us.count()));
    }
  } scope(fm);
  requests_.add();
  if (scope.on) fm.requests.add();
  OptimumResponse resp;
  resp.request_id = req.request_id;
  resp.frequency = req.frequency;

  const auto finish = [this, &resp]() -> OptimumResponse {
    resp.cache = cache_.stats().to_wire();
    return resp;
  };
  const auto fail = [&](ErrorCode code, const std::string& text) {
    resp.error = static_cast<std::uint16_t>(code);
    resp.error_text = text;
    // `rejected` counts capacity refusals only (draining, no live workers) -
    // not malformed or unknown-design requests.
    if (code == ErrorCode::kDraining || code == ErrorCode::kWorkerLost) {
      rejected_.add();
      if (obs::metrics_enabled()) fleet_metrics().rejected.add();
    }
    return finish();
  };

  // Key derivation (also the cheap front-line validation: unknown designs
  // fail here without touching a worker).
  CacheKey key;
  try {
    const std::uint64_t netlist_hash =
        registry_.netlist_hash(req.arch_name, static_cast<int>(req.width));
    key = derive_cache_key(req, netlist_hash, content_hash(req.tech));
  } catch (const InvalidArgument& e) {
    return fail(ErrorCode::kUnknownArchitecture, e.what());
  } catch (const Error& e) {
    return fail(ErrorCode::kInvalidRequest, e.what());
  }
  resp.cache_key = key.digest;

  if ((req.flags & kFlagNoCacheRead) == 0) {
    if (auto cached = cache_.lookup(key.material, req.request_id)) {
      resp = *cached;
      resp.request_id = req.request_id;
      resp.served_from_cache = 1;
      resp.worker_id = -1;
      resp.retries = 0;
      resp.cache_key = key.digest;
      return finish();
    }
  }

  if (draining_.load() || !started_.load()) {
    return fail(ErrorCode::kDraining, "fleet drained: serving cache hits only");
  }

  const std::uint32_t timeout_ms =
      req.timeout_ms != 0 ? req.timeout_ms : options_.default_timeout_ms;
  const std::uint32_t max_attempts = options_.max_retries + 1;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const int idx = pick_worker(key.digest, static_cast<int>(attempt));
    if (idx < 0) {
      if (draining_.load()) {  // lost the fleet to a concurrent drain
        return fail(ErrorCode::kDraining, "fleet drained: serving cache hits only");
      }
      if (resp.error == 0) {
        return fail(ErrorCode::kWorkerLost, "no live workers");
      }
      rejected_.add();
      if (scope.on) fm.rejected.add();
      return finish();
    }
    Worker& worker = *workers_[static_cast<std::size_t>(idx)];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (!worker.alive.load()) {  // lost the race with another retirement
      retries_.add();
      if (scope.on) fm.retries.add();
      resp.retries = attempt + 1;
      continue;
    }
    worker_dispatches_.add();
    if (scope.on) fm.dispatches.add();
    bool dispatched = false;
    {
      obs::Span dispatch_span("serve.dispatch", "serve");
      dispatch_span.arg("request_id", req.request_id);
      dispatch_span.arg("worker", static_cast<std::uint64_t>(worker.id));
      dispatched = dispatch(worker, req, timeout_ms, resp);
    }
    if (dispatched) {
      resp.request_id = req.request_id;
      resp.served_from_cache = 0;
      resp.worker_id = worker.id;
      resp.retries = attempt;
      resp.cache_key = key.digest;
      if (resp.error == static_cast<std::uint16_t>(ErrorCode::kOk) &&
          (req.flags & kFlagNoCacheStore) == 0) {
        cache_.insert(key.material, resp, req.request_id);
      }
      return finish();
    }
    retries_.add();
    if (scope.on) fm.retries.add();
    resp.retries = attempt + 1;
  }
  if (draining_.load()) {  // retries burned racing a concurrent drain
    return fail(ErrorCode::kDraining, "fleet drained: serving cache hits only");
  }
  if (resp.error == 0) {  // every attempt lost the alive-check race
    return fail(ErrorCode::kWorkerLost, "no live workers");
  }
  // resp.error already carries kTimeout / kWorkerLost from the last attempt.
  return finish();
}

StatsResponse Controller::handle_stats(const StatsRequest& req) {
  const ControllerStats s = stats_snapshot();
  StatsResponse resp;
  resp.request_id = req.request_id;
  resp.cache = s.cache.to_wire();
  resp.requests = s.requests;
  resp.worker_dispatches = s.worker_dispatches;
  resp.retries = s.retries;
  resp.worker_deaths = s.worker_deaths;
  resp.rejected = s.rejected;
  resp.draining = s.draining ? 1 : 0;
  resp.workers = s.workers;
  resp.build_version = obs::build_version();
  resp.build_compiler = obs::build_compiler();
  resp.simd_backend = obs::active_simd_backend();
  return resp;
}

ControllerStats Controller::stats_snapshot() {
  ControllerStats s;
  s.cache = cache_.stats();
  s.requests = requests_.value();
  s.worker_dispatches = worker_dispatches_.value();
  s.retries = retries_.value();
  s.worker_deaths = worker_deaths_.value();
  s.rejected = rejected_.value();
  s.draining = draining_.load();
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    WorkerStatsWire w;
    w.worker_id = worker->id;
    w.alive = worker->alive.load() ? 1 : 0;
    w.served = worker->served;
    s.workers.push_back(w);
  }
  return s;
}

std::vector<pid_t> Controller::worker_pids() {
  std::vector<pid_t> pids;
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    if (worker->alive.load() && worker->pid > 0) pids.push_back(worker->pid);
  }
  return pids;
}

std::uint32_t Controller::drain() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  draining_.store(true);
  std::uint32_t stopped = 0;
  for (const auto& worker : workers_) {
    // Taking the channel mutex waits for the in-flight dispatch, if any - the
    // "finish in-flight work" half of the drain contract.
    std::lock_guard<std::mutex> lock(worker->mutex);
    if (!worker->alive.load()) continue;
    try {
      ShutdownRequest req;
      write_frame(worker->fd, encode(req));
      Frame frame;
      (void)read_frame(worker->fd, frame, 5000);
    } catch (const Error&) {
      // Already gone; reaped below either way.
    }
    worker->alive.store(false);
    if (obs::metrics_enabled()) fleet_metrics().live_workers.sub();
    close_quiet(worker->fd);
    if (options_.transport == WorkerTransport::kProcess && worker->pid > 0) {
      ::waitpid(worker->pid, nullptr, 0);
      worker->pid = -1;
    }
    ++stopped;
  }
  return stopped;
}

// --- socket front-end ------------------------------------------------------

void Controller::listen_unix(const std::string& path) {
  require(listen_fd_ < 0, "Controller: already listening");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path), "Controller: unix socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ServeError(std::string("socket: ") + std::strerror(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("bind/listen " + path + ": " + why);
  }
  listen_fd_ = fd;
  unix_path_ = path;
  accept_thread_ = std::thread([this] { run_accept_loop(); });
}

std::uint16_t Controller::listen_tcp(std::uint16_t port) {
  require(listen_fd_ < 0, "Controller: already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw ServeError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw ServeError("bind/listen 127.0.0.1: " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { run_accept_loop(); });
  return ntohs(addr.sin_port);
}

void Controller::run_accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    if (stop_requested_.load()) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Controller::serve_connection(int fd) {
  try {
    for (;;) {
      Frame frame;
      if (read_frame(fd, frame) != IoStatus::kOk) break;
      try {
        switch (frame.type) {
          case MsgType::kHelloRequest: {
            const HelloRequest req = decode_hello_request(frame);
            if (req.version != kProtocolVersion) {
              ErrorResponse err;
              err.request_id = req.request_id;
              err.error = static_cast<std::uint16_t>(ErrorCode::kUnsupportedVersion);
              err.text = "server speaks protocol version " + std::to_string(kProtocolVersion);
              write_frame(fd, encode(err));
              break;
            }
            HelloResponse resp;
            resp.request_id = req.request_id;
            resp.num_workers = static_cast<std::uint32_t>(workers_.size());
            resp.cache_capacity = options_.cache_capacity;
            resp.server_name = options_.server_name;
            write_frame(fd, encode(resp));
            break;
          }
          case MsgType::kOptimumRequest:
            write_frame(fd, encode(handle_optimum(decode_optimum_request(frame))));
            break;
          case MsgType::kStatsRequest:
            write_frame(fd, encode(handle_stats(decode_stats_request(frame))));
            break;
          case MsgType::kMetricsRequest: {
            const MetricsRequest req = decode_metrics_request(frame);
            MetricsResponse resp;
            resp.request_id = req.request_id;
            resp.text = obs::registry().text_dump();
            write_frame(fd, encode(resp));
            break;
          }
          case MsgType::kDrainRequest: {
            const DrainRequest req = decode_drain_request(frame);
            DrainResponse resp;
            resp.request_id = req.request_id;
            resp.workers_stopped = drain();
            resp.cache = cache_.stats().to_wire();
            write_frame(fd, encode(resp));
            break;
          }
          case MsgType::kShutdownRequest: {
            const ShutdownRequest req = decode_shutdown_request(frame);
            ShutdownResponse resp;
            resp.request_id = req.request_id;
            write_frame(fd, encode(resp));
            request_stop();
            ::shutdown(fd, SHUT_RDWR);
            return;
          }
          default: {
            ErrorResponse err;
            err.error = static_cast<std::uint16_t>(ErrorCode::kUnknownMessageType);
            err.text = std::string("unexpected frame ") + to_string(frame.type);
            write_frame(fd, encode(err));
            break;
          }
        }
      } catch (const ServeError& e) {
        // Undecodable payload: report and keep the connection.
        ErrorResponse err;
        err.error = static_cast<std::uint16_t>(ErrorCode::kMalformedFrame);
        err.text = e.what();
        write_frame(fd, encode(err));
      }
    }
  } catch (const Error&) {
    // Transport failure (client vanished mid-frame): just drop the
    // connection.
  }
}

void Controller::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);  // no lost wakeup vs wait()
    stop_requested_.store(true);
  }
  // Unblock the accept loop; fully closing the listener is stop()'s job.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  stop_cv_.notify_all();
}

void Controller::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_requested_.load(); });
}

void Controller::stop() {
  {
    std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  close_quiet(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& thread : conn_threads_) {
    if (thread.joinable()) thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    if (worker->alive.load()) {
      try {
        ShutdownRequest req;
        write_frame(worker->fd, encode(req));
        Frame frame;
        (void)read_frame(worker->fd, frame, 5000);
      } catch (const Error&) {
      }
      worker->alive.store(false);
      if (obs::metrics_enabled()) fleet_metrics().live_workers.sub();
    }
    close_quiet(worker->fd);
    if (options_.transport == WorkerTransport::kProcess && worker->pid > 0) {
      ::kill(worker->pid, SIGKILL);  // no-op if it exited on shutdown
      ::waitpid(worker->pid, nullptr, 0);
      worker->pid = -1;
    }
  }
  for (const auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

}  // namespace optpower::serve
