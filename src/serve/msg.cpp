#include "serve/msg.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace optpower::serve {

namespace {

/// Flat little-endian payload writer.  Strings are u32-length-prefixed and
/// bounded by kMaxPayloadBytes so a decoder can reject garbage lengths
/// before allocating.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Strict payload reader: every decode must consume the payload exactly
/// (done() asserted by decode_payload below), so trailing garbage is a
/// malformed frame rather than silently ignored bytes.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(buf_[pos_++]) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxPayloadBytes) throw ServeError("serve: oversized string in payload");
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_.data()) + pos_, n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) {
    if (buf_.size() - pos_ < n) throw ServeError("serve: truncated payload");
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

void put_tech(Writer& w, const Technology& tech) {
  w.str(tech.name);
  w.f64(tech.io);
  w.f64(tech.n);
  w.f64(tech.alpha);
  w.f64(tech.zeta);
  w.f64(tech.vdd_nom);
  w.f64(tech.vth0_nom);
  w.f64(tech.eta);
  w.f64(tech.temperature_k);
}

Technology get_tech(Reader& r) {
  Technology t;
  t.name = r.str();
  t.io = r.f64();
  t.n = r.f64();
  t.alpha = r.f64();
  t.zeta = r.f64();
  t.vdd_nom = r.f64();
  t.vth0_nom = r.f64();
  t.eta = r.f64();
  t.temperature_k = r.f64();
  return t;
}

void put_point(Writer& w, const OperatingPoint& p) {
  w.f64(p.vdd);
  w.f64(p.vth);
  w.f64(p.vth0);
  w.f64(p.pdyn);
  w.f64(p.pstat);
  w.f64(p.ptot);
}

OperatingPoint get_point(Reader& r) {
  OperatingPoint p;
  p.vdd = r.f64();
  p.vth = r.f64();
  p.vth0 = r.f64();
  p.pdyn = r.f64();
  p.pstat = r.f64();
  p.ptot = r.f64();
  return p;
}

void put_cache(Writer& w, const CacheStatsWire& c) {
  w.u64(c.hits);
  w.u64(c.misses);
  w.u64(c.evictions);
  w.u64(c.entries);
  w.u64(c.capacity);
}

CacheStatsWire get_cache(Reader& r) {
  CacheStatsWire c;
  c.hits = r.u64();
  c.misses = r.u64();
  c.evictions = r.u64();
  c.entries = r.u64();
  c.capacity = r.u64();
  return c;
}

Frame make_frame(MsgType type, Writer& w) {
  Frame f;
  f.type = type;
  f.payload = w.take();
  return f;
}

/// Common decode preamble: type check, then hand a strict Reader to `body`
/// and require full consumption.
template <typename T, typename Body>
T decode_payload(const Frame& frame, MsgType expected, Body&& body) {
  if (frame.type != expected) {
    throw ServeError(std::string("serve: expected ") + to_string(expected) + " frame, got " +
                     to_string(frame.type));
  }
  Reader r(frame.payload);
  T msg = body(r);
  if (!r.done()) throw ServeError("serve: trailing bytes in payload");
  return msg;
}

}  // namespace

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHelloRequest: return "kHelloRequest";
    case MsgType::kHelloResponse: return "kHelloResponse";
    case MsgType::kOptimumRequest: return "kOptimumRequest";
    case MsgType::kOptimumResponse: return "kOptimumResponse";
    case MsgType::kStatsRequest: return "kStatsRequest";
    case MsgType::kStatsResponse: return "kStatsResponse";
    case MsgType::kDrainRequest: return "kDrainRequest";
    case MsgType::kDrainResponse: return "kDrainResponse";
    case MsgType::kShutdownRequest: return "kShutdownRequest";
    case MsgType::kShutdownResponse: return "kShutdownResponse";
    case MsgType::kErrorResponse: return "kErrorResponse";
    case MsgType::kMetricsRequest: return "kMetricsRequest";
    case MsgType::kMetricsResponse: return "kMetricsResponse";
  }
  return "unknown";
}

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "kOk";
    case ErrorCode::kUnsupportedVersion: return "kUnsupportedVersion";
    case ErrorCode::kMalformedFrame: return "kMalformedFrame";
    case ErrorCode::kUnknownMessageType: return "kUnknownMessageType";
    case ErrorCode::kInvalidRequest: return "kInvalidRequest";
    case ErrorCode::kUnknownArchitecture: return "kUnknownArchitecture";
    case ErrorCode::kInfeasible: return "kInfeasible";
    case ErrorCode::kTimeout: return "kTimeout";
    case ErrorCode::kWorkerLost: return "kWorkerLost";
    case ErrorCode::kDraining: return "kDraining";
    case ErrorCode::kInternal: return "kInternal";
  }
  return "unknown";
}

Frame encode(const HelloRequest& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.u8(msg.version);
  w.str(msg.client_name);
  return make_frame(MsgType::kHelloRequest, w);
}

HelloRequest decode_hello_request(const Frame& frame) {
  return decode_payload<HelloRequest>(frame, MsgType::kHelloRequest, [](Reader& r) {
    HelloRequest m;
    m.request_id = r.u64();
    m.version = r.u8();
    m.client_name = r.str();
    return m;
  });
}

Frame encode(const HelloResponse& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.u8(msg.version);
  w.u32(msg.num_workers);
  w.u64(msg.cache_capacity);
  w.str(msg.server_name);
  return make_frame(MsgType::kHelloResponse, w);
}

HelloResponse decode_hello_response(const Frame& frame) {
  return decode_payload<HelloResponse>(frame, MsgType::kHelloResponse, [](Reader& r) {
    HelloResponse m;
    m.request_id = r.u64();
    m.version = r.u8();
    m.num_workers = r.u32();
    m.cache_capacity = r.u64();
    m.server_name = r.str();
    return m;
  });
}

Frame encode(const OptimumRequest& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.str(msg.arch_name);
  w.u32(msg.width);
  put_tech(w, msg.tech);
  w.f64(msg.frequency);
  w.u8(msg.activity_source);
  w.u32(msg.activity_vectors);
  w.u64(msg.seed);
  w.u8(msg.delay_mode);
  w.f64(msg.io_per_cell_scale);
  w.f64(msg.zeta_cell_scale);
  w.u32(msg.flags);
  w.u32(msg.timeout_ms);
  return make_frame(MsgType::kOptimumRequest, w);
}

OptimumRequest decode_optimum_request(const Frame& frame) {
  return decode_payload<OptimumRequest>(frame, MsgType::kOptimumRequest, [](Reader& r) {
    OptimumRequest m;
    m.request_id = r.u64();
    m.arch_name = r.str();
    m.width = r.u32();
    m.tech = get_tech(r);
    m.frequency = r.f64();
    m.activity_source = r.u8();
    m.activity_vectors = r.u32();
    m.seed = r.u64();
    m.delay_mode = r.u8();
    m.io_per_cell_scale = r.f64();
    m.zeta_cell_scale = r.f64();
    m.flags = r.u32();
    m.timeout_ms = r.u32();
    return m;
  });
}

Frame encode(const OptimumResponse& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.u16(msg.error);
  w.str(msg.error_text);
  put_point(w, msg.point);
  w.f64(msg.frequency);
  w.u8(msg.on_constraint);
  w.u8(msg.converged);
  w.f64(msg.activity);
  w.u64(msg.cache_key);
  w.u8(msg.served_from_cache);
  w.i32(msg.worker_id);
  w.u32(msg.retries);
  put_cache(w, msg.cache);
  return make_frame(MsgType::kOptimumResponse, w);
}

OptimumResponse decode_optimum_response(const Frame& frame) {
  return decode_payload<OptimumResponse>(frame, MsgType::kOptimumResponse, [](Reader& r) {
    OptimumResponse m;
    m.request_id = r.u64();
    m.error = r.u16();
    m.error_text = r.str();
    m.point = get_point(r);
    m.frequency = r.f64();
    m.on_constraint = r.u8();
    m.converged = r.u8();
    m.activity = r.f64();
    m.cache_key = r.u64();
    m.served_from_cache = r.u8();
    m.worker_id = r.i32();
    m.retries = r.u32();
    m.cache = get_cache(r);
    return m;
  });
}

Frame encode(const StatsRequest& msg) {
  Writer w;
  w.u64(msg.request_id);
  return make_frame(MsgType::kStatsRequest, w);
}

StatsRequest decode_stats_request(const Frame& frame) {
  return decode_payload<StatsRequest>(frame, MsgType::kStatsRequest, [](Reader& r) {
    StatsRequest m;
    m.request_id = r.u64();
    return m;
  });
}

Frame encode(const StatsResponse& msg) {
  Writer w;
  w.u64(msg.request_id);
  put_cache(w, msg.cache);
  w.u64(msg.requests);
  w.u64(msg.worker_dispatches);
  w.u64(msg.retries);
  w.u64(msg.worker_deaths);
  w.u64(msg.rejected);
  w.u8(msg.draining);
  w.u32(static_cast<std::uint32_t>(msg.workers.size()));
  for (const WorkerStatsWire& ws : msg.workers) {
    w.i32(ws.worker_id);
    w.u8(ws.alive);
    w.u64(ws.served);
  }
  w.str(msg.build_version);
  w.str(msg.build_compiler);
  w.str(msg.simd_backend);
  return make_frame(MsgType::kStatsResponse, w);
}

StatsResponse decode_stats_response(const Frame& frame) {
  return decode_payload<StatsResponse>(frame, MsgType::kStatsResponse, [](Reader& r) {
    StatsResponse m;
    m.request_id = r.u64();
    m.cache = get_cache(r);
    m.requests = r.u64();
    m.worker_dispatches = r.u64();
    m.retries = r.u64();
    m.worker_deaths = r.u64();
    m.rejected = r.u64();
    m.draining = r.u8();
    const std::uint32_t n = r.u32();
    if (n > kMaxPayloadBytes / 13) throw ServeError("serve: oversized worker list");
    m.workers.resize(n);
    for (WorkerStatsWire& ws : m.workers) {
      ws.worker_id = r.i32();
      ws.alive = r.u8();
      ws.served = r.u64();
    }
    m.build_version = r.str();
    m.build_compiler = r.str();
    m.simd_backend = r.str();
    return m;
  });
}

Frame encode(const DrainRequest& msg) {
  Writer w;
  w.u64(msg.request_id);
  return make_frame(MsgType::kDrainRequest, w);
}

DrainRequest decode_drain_request(const Frame& frame) {
  return decode_payload<DrainRequest>(frame, MsgType::kDrainRequest, [](Reader& r) {
    DrainRequest m;
    m.request_id = r.u64();
    return m;
  });
}

Frame encode(const DrainResponse& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.u32(msg.workers_stopped);
  put_cache(w, msg.cache);
  return make_frame(MsgType::kDrainResponse, w);
}

DrainResponse decode_drain_response(const Frame& frame) {
  return decode_payload<DrainResponse>(frame, MsgType::kDrainResponse, [](Reader& r) {
    DrainResponse m;
    m.request_id = r.u64();
    m.workers_stopped = r.u32();
    m.cache = get_cache(r);
    return m;
  });
}

Frame encode(const ShutdownRequest& msg) {
  Writer w;
  w.u64(msg.request_id);
  return make_frame(MsgType::kShutdownRequest, w);
}

ShutdownRequest decode_shutdown_request(const Frame& frame) {
  return decode_payload<ShutdownRequest>(frame, MsgType::kShutdownRequest, [](Reader& r) {
    ShutdownRequest m;
    m.request_id = r.u64();
    return m;
  });
}

Frame encode(const ShutdownResponse& msg) {
  Writer w;
  w.u64(msg.request_id);
  return make_frame(MsgType::kShutdownResponse, w);
}

ShutdownResponse decode_shutdown_response(const Frame& frame) {
  return decode_payload<ShutdownResponse>(frame, MsgType::kShutdownResponse, [](Reader& r) {
    ShutdownResponse m;
    m.request_id = r.u64();
    return m;
  });
}

Frame encode(const ErrorResponse& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.u16(msg.error);
  w.str(msg.text);
  return make_frame(MsgType::kErrorResponse, w);
}

ErrorResponse decode_error_response(const Frame& frame) {
  return decode_payload<ErrorResponse>(frame, MsgType::kErrorResponse, [](Reader& r) {
    ErrorResponse m;
    m.request_id = r.u64();
    m.error = r.u16();
    m.text = r.str();
    return m;
  });
}

Frame encode(const MetricsRequest& msg) {
  Writer w;
  w.u64(msg.request_id);
  return make_frame(MsgType::kMetricsRequest, w);
}

MetricsRequest decode_metrics_request(const Frame& frame) {
  return decode_payload<MetricsRequest>(frame, MsgType::kMetricsRequest, [](Reader& r) {
    MetricsRequest m;
    m.request_id = r.u64();
    return m;
  });
}

Frame encode(const MetricsResponse& msg) {
  Writer w;
  w.u64(msg.request_id);
  w.str(msg.text);
  return make_frame(MsgType::kMetricsResponse, w);
}

MetricsResponse decode_metrics_response(const Frame& frame) {
  return decode_payload<MetricsResponse>(frame, MsgType::kMetricsResponse, [](Reader& r) {
    MetricsResponse m;
    m.request_id = r.u64();
    m.text = r.str();
    return m;
  });
}

// --- blocking frame IO -----------------------------------------------------

namespace {

constexpr std::size_t kHeaderBytes = 12;

void put_header(std::uint8_t* h, MsgType type, std::uint32_t payload_len) {
  for (int i = 0; i < 4; ++i) h[i] = static_cast<std::uint8_t>(kFrameMagic >> (8 * i));
  h[4] = kProtocolVersion;
  h[5] = static_cast<std::uint8_t>(type);
  h[6] = 0;
  h[7] = 0;
  for (int i = 0; i < 4; ++i) h[8 + i] = static_cast<std::uint8_t>(payload_len >> (8 * i));
}

/// Wait until `fd` is readable or `deadline` passes.  Returns false on
/// timeout.  `timeout_ms` < 0 = no deadline.
bool wait_readable(int fd, int timeout_ms) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, timeout_ms < 0 ? -1 : timeout_ms);
    if (rc > 0) return true;  // readable, error, or hangup: recv() reports which
    if (rc == 0) return false;
    if (errno != EINTR) throw ServeError(std::string("serve: poll: ") + std::strerror(errno));
  }
}

struct ReadResult {
  std::size_t got = 0;
  bool timed_out = false;
};

/// Read exactly n bytes.  got == n on success; got < n with timed_out set
/// when the deadline expired first, cleared when the peer closed (EOF).
ReadResult read_exact(int fd, std::uint8_t* buf, std::size_t n, int timeout_ms) {
  ReadResult r;
  while (r.got < n) {
    if (!wait_readable(fd, timeout_ms)) {
      r.timed_out = true;
      return r;
    }
    const ssize_t rc = recv(fd, buf + r.got, n - r.got, 0);
    if (rc > 0) {
      r.got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return r;  // EOF
    if (errno == EINTR) continue;
    throw ServeError(std::string("serve: recv: ") + std::strerror(errno));
  }
  return r;
}

}  // namespace

void write_frame(int fd, const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    throw ServeError("serve: payload exceeds kMaxPayloadBytes");
  }
  std::uint8_t header[kHeaderBytes];
  put_header(header, frame.type, static_cast<std::uint32_t>(frame.payload.size()));
  std::vector<std::uint8_t> wire;
  wire.reserve(kHeaderBytes + frame.payload.size());
  wire.insert(wire.end(), header, header + kHeaderBytes);
  wire.insert(wire.end(), frame.payload.begin(), frame.payload.end());

  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t rc = send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw ServeError(std::string("serve: send: ") + std::strerror(errno));
  }
}

IoStatus read_frame(int fd, Frame& out, int timeout_ms) {
  std::uint8_t header[kHeaderBytes];
  // A timeout mid-frame is indistinguishable from a stalled peer, so the
  // deadline bounds every byte: the caller treats kTimeout as fatal for the
  // connection/worker rather than retrying the read.
  ReadResult rr = read_exact(fd, header, kHeaderBytes, timeout_ms);
  if (rr.got < kHeaderBytes) {
    if (rr.timed_out) return IoStatus::kTimeout;
    if (rr.got == 0) return IoStatus::kEof;
    throw ServeError("serve: EOF inside frame header");
  }

  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (magic != kFrameMagic) throw ServeError("serve: bad frame magic");
  if (header[4] != kProtocolVersion) {
    throw ServeError("serve: protocol version mismatch (got " + std::to_string(header[4]) +
                     ", speak " + std::to_string(kProtocolVersion) + ")");
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[8 + i]) << (8 * i);
  if (len > kMaxPayloadBytes) throw ServeError("serve: oversized frame payload");

  out.type = static_cast<MsgType>(header[5]);
  out.payload.resize(len);
  if (len > 0) {
    rr = read_exact(fd, out.payload.data(), len, timeout_ms);
    if (rr.got < len) {
      if (rr.timed_out) return IoStatus::kTimeout;
      throw ServeError("serve: EOF inside frame payload");
    }
  }
  return IoStatus::kOk;
}

}  // namespace optpower::serve
