#include "serve/cache.h"

#include "obs/trace.h"

namespace optpower::serve {

namespace {

// Process-lifetime totals mirrored into the registry besides the
// per-instance wire counters.
struct CacheMetrics {
  obs::Counter& hits = obs::registry().counter("serve.cache.hits");
  obs::Counter& misses = obs::registry().counter("serve.cache.misses");
  obs::Counter& evictions = obs::registry().counter("serve.cache.evictions");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics* m = new CacheMetrics();
  return *m;
}

}  // namespace

std::optional<OptimumResponse> ResultCache::lookup(const std::string& key_material,
                                                   std::uint64_t request_id) {
  obs::Span span("serve.cache.lookup", "serve");
  span.arg("request_id", request_id);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key_material);
  if (it == index_.end()) {
    ++misses_;
    if (obs::metrics_enabled()) cache_metrics().misses.add();
    span.arg("hit", 0);
    return std::nullopt;
  }
  ++hits_;
  if (obs::metrics_enabled()) cache_metrics().hits.add();
  span.arg("hit", 1);
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::insert(const std::string& key_material, const OptimumResponse& value,
                         std::uint64_t request_id) {
  if (capacity_ == 0) return;
  obs::Span span("serve.cache.store", "serve");
  span.arg("request_id", request_id);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key_material);
  if (it != index_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key_material, value);
  index_.emplace(key_material, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    if (obs::metrics_enabled()) cache_metrics().evictions.add();
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace optpower::serve
