#include "serve/cache.h"

namespace optpower::serve {

std::optional<OptimumResponse> ResultCache::lookup(const std::string& key_material) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key_material);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::insert(const std::string& key_material, const OptimumResponse& value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key_material);
  if (it != index_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key_material, value);
  index_.emplace(key_material, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace optpower::serve
