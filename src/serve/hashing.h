// Content-addressed cache-key derivation for the serving layer.
//
// A key is a canonical byte string ("material") built from the
// content-bearing fields of an OptimumRequest plus the stable content hashes
// of the referenced netlist and technology (netlist/netlist.h and
// tech/technology.h content_hash()).  Two requests map to the same cache
// entry exactly when the deterministic library path would compute
// bit-identical answers for both - names, request ids, flags, and timeouts
// are delivery metadata and never enter the key.  docs/SERVING.md documents
// the derivation field by field.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "serve/msg.h"

namespace optpower::serve {

/// A derived cache key: the canonical material (map key) and its 64-bit
/// FNV-1a digest (the compact form reported in responses/logs).
struct CacheKey {
  std::string material;
  std::uint64_t digest = 0;
};

/// Derive the cache key for `req` given the content hashes of its netlist
/// and technology.  Engine-ignored fields are canonicalized first so
/// requests that cannot differ in their answer share an entry:
///  * kBddExact zeroes seed and delay_mode (the exact expectation ignores
///    both).
/// kEventSim and kBitParallel honor every field: the bit-parallel engine
/// runs all delay modes, so delay_mode is key material for both.
[[nodiscard]] CacheKey derive_cache_key(const OptimumRequest& req, std::uint64_t netlist_hash,
                                        std::uint64_t tech_hash);

/// Memoized (family, width) -> netlist content hash.  Generation is
/// deterministic, so the hash is a pure function of the pair; the registry
/// builds each requested design once (controller-side, at first sight) and
/// serves every later key derivation from the map.  Thread-safe.  Throws
/// whatever mult/factory build_multiplier throws for unknown names/widths.
class ArchHashRegistry {
 public:
  [[nodiscard]] std::uint64_t netlist_hash(const std::string& arch_name, int width);

 private:
  std::mutex mutex_;
  std::map<std::pair<std::string, int>, std::uint64_t> memo_;
};

}  // namespace optpower::serve
