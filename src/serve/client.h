// Blocking client for the serving protocol: connects to a controller over a
// Unix-domain socket or TCP on localhost, performs the version handshake,
// and exposes one method per request type.  Request ids are assigned
// sequentially per connection and checked on every response.  All methods
// throw ServeError on transport/protocol failures; request-level failures
// stay data (OptimumResponse::error).  Not thread-safe: one ServeClient per
// thread (the protocol is strictly request -> response per connection).
#pragma once

#include <cstdint>
#include <string>

#include "serve/msg.h"

namespace optpower::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  /// Connect to a controller's Unix-domain socket.
  void connect_unix(const std::string& path);

  /// Connect to a controller on 127.0.0.1:`port`.
  void connect_tcp(std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Version handshake; throws ServeError if the server rejects our version.
  [[nodiscard]] HelloResponse hello(const std::string& client_name = "optpower-client");

  /// One optimum query (the round trip the cache fronts).
  [[nodiscard]] OptimumResponse optimum(OptimumRequest req);

  [[nodiscard]] StatsResponse stats();

  /// Prometheus-style text dump of the controller's metrics registry.
  [[nodiscard]] MetricsResponse metrics();

  /// Graceful fleet drain; the controller keeps serving cache hits after.
  [[nodiscard]] DrainResponse drain();

  /// Stop the controller.  The connection is unusable afterwards.
  [[nodiscard]] ShutdownResponse shutdown();

  void close();

 private:
  /// Send `frame`, read the reply, and check it against `expect` /
  /// `request_id`; a kErrorResponse reply is rethrown as ServeError.
  [[nodiscard]] Frame round_trip(const Frame& frame, MsgType expect, std::uint64_t request_id);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
};

/// Convenience: an OptimumRequest pre-filled to mirror report/forward_flow.h
/// ForwardFlowOptions defaults, so `fleet answer == run_forward_flow answer`
/// holds field for field.
[[nodiscard]] OptimumRequest make_optimum_request(const std::string& arch_name,
                                                  const Technology& tech, double frequency);

}  // namespace optpower::serve
