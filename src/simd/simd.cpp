#include "simd/simd.h"

#include <cstdlib>
#include <string>

#include "util/error.h"

namespace optpower::simd {

namespace detail {
// Defined in the kernels_<backend>.cpp TUs; a backend whose TU was built
// without its ISA flags (compiler probe failed) returns nullptr.
const Kernels* scalar_kernels();
const Kernels* avx2_kernels();
const Kernels* avx512_kernels();
}  // namespace detail

namespace {

const Kernels* table_of(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar: return detail::scalar_kernels();
    case Backend::kAvx2: return detail::avx2_kernels();
    case Backend::kAvx512: return detail::avx512_kernels();
  }
  return nullptr;
}

bool cpu_has(Backend backend) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  switch (backend) {
    case Backend::kScalar: return true;
    case Backend::kAvx2: return __builtin_cpu_supports("avx2") != 0;
    case Backend::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512dq") != 0;
  }
  return false;
#else
  return backend == Backend::kScalar;
#endif
}

Backend resolve_default() {
  const char* env = std::getenv("OPTPOWER_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const std::string want(env);
    Backend backend = Backend::kScalar;
    if (want == "scalar") backend = Backend::kScalar;
    else if (want == "avx2") backend = Backend::kAvx2;
    else if (want == "avx512") backend = Backend::kAvx512;
    else {
      throw InvalidArgument("OPTPOWER_SIMD: unknown backend '" + want +
                            "' (expected scalar|avx2|avx512)");
    }
    require(backend_supported(backend),
            "OPTPOWER_SIMD: backend '" + want + "' is not supported on this machine");
    return backend;
  }
  return detect_backend();
}

}  // namespace

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
  }
  return "?";
}

bool backend_compiled(Backend backend) noexcept { return table_of(backend) != nullptr; }

bool backend_supported(Backend backend) noexcept {
  return backend_compiled(backend) && cpu_has(backend);
}

Backend detect_backend() noexcept {
  static const Backend best = [] {
    if (backend_supported(Backend::kAvx512)) return Backend::kAvx512;
    if (backend_supported(Backend::kAvx2)) return Backend::kAvx2;
    return Backend::kScalar;
  }();
  return best;
}

Backend default_backend() {
  static const Backend resolved = resolve_default();
  return resolved;
}

std::vector<Backend> supported_backends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    if (backend_supported(b)) out.push_back(b);
  }
  return out;
}

const Kernels& kernels(Backend backend) {
  require(backend_supported(backend),
          std::string("simd::kernels: backend '") + backend_name(backend) +
              "' is not supported on this machine");
  return *table_of(backend);
}

}  // namespace optpower::simd
