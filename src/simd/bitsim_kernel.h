// Shared implementation of every SIMD kernel, templated over a backend ops
// policy.  Included ONLY by the kernels_<backend>.cpp TUs (which are the only
// sources compiled with ISA flags); everything here must therefore stay
// header-only and free of non-inline definitions.
//
// An integer ops policy describes one vector register of Ops::kVecWords
// uint64_t lanes with load/store and the bitwise ops the gate kernels need;
// the kernels loop a whole kWordsPerBlock net block in NV = 8/kVecWords
// register steps.  Because every operation is a lane-wise 64-bit integer op,
// all backends are bit-identical by construction.
//
// The double ops policy powers total_power_row.  Its exp is a fixed
// polynomial evaluated with plain mul/add (never fma - the TUs compile with
// -ffp-contract=off), so the scalar tail and every vector width agree to the
// last bit.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "netlist/cell.h"
#include "simd/simd.h"

namespace optpower::simd {

// ---------------------------------------------------------------------------
// PCG32 constants (util/random.h Pcg32, replicated bit-for-bit).  A fair-coin
// draw advances the state twice; folding both steps gives the single affine
// map s' = s * kPcgMult^2 + inc * (kPcgMult + 1) mod 2^64 - identical to two
// chained advances, at half the 64-bit multiplies.
inline constexpr std::uint64_t kPcgMult = 6364136223846793005ULL;
inline constexpr std::uint64_t kPcgMult2 = kPcgMult * kPcgMult;  // mod 2^64
inline constexpr std::uint64_t kPcgMultP1 = kPcgMult + 1;

// ---------------------------------------------------------------------------
// Scalar double policy: shared by every TU both as the scalar backend and as
// the vector backends' remainder tail, so tails match full vectors exactly.
struct ScalarDOps {
  using D = double;
  static constexpr std::size_t kDoubles = 1;
  static D load(const double* p) { return *p; }
  static void store(double* p, D v) { *p = v; }
  static D set1(double v) { return v; }
  static D add(D a, D b) { return a + b; }
  static D sub(D a, D b) { return a - b; }
  static D mul(D a, D b) { return a * b; }
  static D min(D a, D b) { return b < a ? b : a; }
  static D max(D a, D b) { return b > a ? b : a; }
  static D floor(D a) { return __builtin_floor(a); }
  /// 2^k for an integral-valued k in [-1021, 1021]: exponent-field assembly.
  static D pow2i(D k) {
    const std::int64_t ki = static_cast<std::int64_t>(k);
    const std::uint64_t bits = static_cast<std::uint64_t>(ki + 1023) << 52;
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }
};

// ---------------------------------------------------------------------------
// exp(x) as a fixed-degree Taylor polynomial around 0 after range reduction
// x = k*ln2 + r, |r| <= ln2/2: exp(x) = 2^k * poly(r).  Max relative error
// ~1e-14 on the clamp range (r^12/12! at |r| = 0.347), which the power tests
// absorb (they compare against closed-form curves with far looser bands).
// Every step is a plain IEEE mul/add on identical operands in every backend.
template <class DO>
inline typename DO::D exp_pd(typename DO::D x) {
  using D = typename DO::D;
  // Clamp keeps 2^k inside pow2i's exponent-assembly range; the power model
  // only ever needs exp of -Vth/(n*Ut), comfortably within [-60, 0].
  x = DO::min(DO::set1(700.0), DO::max(DO::set1(-700.0), x));
  const D k = DO::floor(DO::add(DO::mul(x, DO::set1(1.4426950408889634074)), DO::set1(0.5)));
  D r = DO::sub(x, DO::mul(k, DO::set1(6.93147180369123816490e-01)));   // ln2 high
  r = DO::sub(r, DO::mul(k, DO::set1(1.90821492927058770002e-10)));     // ln2 low
  D p = DO::set1(1.0 / 39916800.0);  // 1/11!
  p = DO::add(DO::mul(p, r), DO::set1(1.0 / 3628800.0));
  p = DO::add(DO::mul(p, r), DO::set1(1.0 / 362880.0));
  p = DO::add(DO::mul(p, r), DO::set1(1.0 / 40320.0));
  p = DO::add(DO::mul(p, r), DO::set1(1.0 / 5040.0));
  p = DO::add(DO::mul(p, r), DO::set1(1.0 / 720.0));
  p = DO::add(DO::mul(p, r), DO::set1(1.0 / 120.0));
  p = DO::add(DO::mul(p, r), DO::set1(1.0 / 24.0));
  p = DO::add(DO::mul(p, r), DO::set1(1.0 / 6.0));
  p = DO::add(DO::mul(p, r), DO::set1(0.5));
  p = DO::add(DO::mul(p, r), DO::set1(1.0));
  p = DO::add(DO::mul(p, r), DO::set1(1.0));
  return DO::mul(p, DO::pow2i(k));
}

/// out[i] = pdyn + stat_coeff * exp(vth[i] * neg_inv_nut), vector body plus
/// a bit-identical scalar tail.
template <class DO>
inline void total_power_row_impl(const PowRowArgs& a) {
  using D = typename DO::D;
  std::size_t i = 0;
  for (; i + DO::kDoubles <= a.n; i += DO::kDoubles) {
    const D x = DO::mul(DO::load(a.vth + i), DO::set1(a.neg_inv_nut));
    const D e = exp_pd<DO>(x);
    DO::store(a.out + i, DO::add(DO::set1(a.pdyn), DO::mul(DO::set1(a.stat_coeff), e)));
  }
  for (; i < a.n; ++i) {
    a.out[i] = a.pdyn + a.stat_coeff * exp_pd<ScalarDOps>(a.vth[i] * a.neg_inv_nut);
  }
}

// ---------------------------------------------------------------------------
// Integer kernels.
template <class Ops>
struct BitsimKernel {
  using V = typename Ops::V;
  static constexpr std::size_t W = Ops::kVecWords;
  static constexpr std::size_t NV = kWordsPerBlock / W;
  static_assert(NV * W == kWordsPerBlock, "vector width must divide the block");

  /// Carry-save add of one event block of per-lane weight 2^base into the
  /// bit-sliced planes (plane p occupies planes[p*kWordsPerBlock .. +8)).
  /// The ripple runs until EVERY lane's carry dies, so adding single events
  /// here directly costs ~log2(lanes) plane round trips - hot paths batch
  /// events through a CsaAcc instead and only spill here.
  static inline void acc_add(std::uint64_t* planes, std::size_t& used,
                             const std::uint64_t* bits, std::size_t base = 0) {
    for (std::size_t v = 0; v < NV; ++v) {
      V carry = Ops::load(bits + v * W);
      if (Ops::is_zero(carry)) continue;
      std::size_t p = base;
      do {
        std::uint64_t* pp = planes + p * kWordsPerBlock + v * W;
        const V t = Ops::load(pp);
        Ops::store(pp, Ops::bxor(t, carry));
        carry = Ops::band(t, carry);
        ++p;
      } while (!Ops::is_zero(carry));
      if (p > used) used = p;
    }
  }

  /// In-register Harley-Seal batcher in front of acc_add: events accumulate
  /// into the ones/twos/fours blocks with three half-adder steps (six cheap
  /// bitwise ops), and only every eighth per-lane event produces a carry
  /// that touches the memory planes.  One accumulator lives on the stack for
  /// the duration of a step_cycle and flushes into the planes at the end,
  /// which keeps the planes' invariant (they hold the complete count between
  /// kernel calls) while removing the per-event ripple latency.
  struct CsaAcc {
    alignas(64) std::uint64_t ones[kWordsPerBlock] = {};
    alignas(64) std::uint64_t twos[kWordsPerBlock] = {};
    alignas(64) std::uint64_t fours[kWordsPerBlock] = {};
  };

  static inline void csa_add(CsaAcc& acc, std::uint64_t* planes, std::size_t& used,
                             const std::uint64_t* bits) {
    alignas(64) std::uint64_t c8[kWordsPerBlock];
    V any = Ops::zero();
    for (std::size_t v = 0; v < NV; ++v) {
      const V e = Ops::load(bits + v * W);
      const V o = Ops::load(acc.ones + v * W);
      const V c1 = Ops::band(o, e);
      Ops::store(acc.ones + v * W, Ops::bxor(o, e));
      const V t = Ops::load(acc.twos + v * W);
      const V c2 = Ops::band(t, c1);
      Ops::store(acc.twos + v * W, Ops::bxor(t, c1));
      const V f = Ops::load(acc.fours + v * W);
      const V c4 = Ops::band(f, c2);
      Ops::store(acc.fours + v * W, Ops::bxor(f, c2));
      Ops::store(c8 + v * W, c4);
      any = Ops::bor(any, c4);
    }
    if (!Ops::is_zero(any)) acc_add(planes, used, c8, 3);
  }

  /// Spill an accumulator's residue (0..7 events per lane) into the planes.
  static inline void csa_flush(CsaAcc& acc, std::uint64_t* planes, std::size_t& used) {
    acc_add(planes, used, acc.ones, 0);
    acc_add(planes, used, acc.twos, 1);
    acc_add(planes, used, acc.fours, 2);
  }

  /// Evaluate one combinational cell's outputs into o0/o1 (stack blocks).
  static inline void eval_cell(const BitsimCtx& ctx, const FlatCell& c, std::uint64_t* o0,
                               std::uint64_t* o1) {
    const std::uint64_t* a = ctx.words + std::size_t{c.in[0]} * kWordsPerBlock;
    const std::uint64_t* b = ctx.words + std::size_t{c.in[1]} * kWordsPerBlock;
    const std::uint64_t* s = ctx.words + std::size_t{c.in[2]} * kWordsPerBlock;
    switch (c.type) {
      case CellType::kConst0:
        for (std::size_t v = 0; v < NV; ++v) Ops::store(o0 + v * W, Ops::zero());
        return;
      case CellType::kConst1:
        for (std::size_t v = 0; v < NV; ++v) Ops::store(o0 + v * W, Ops::ones());
        return;
      case CellType::kBuf:
        for (std::size_t v = 0; v < NV; ++v) Ops::store(o0 + v * W, Ops::load(a + v * W));
        return;
      case CellType::kInv:
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(o0 + v * W, Ops::bnot(Ops::load(a + v * W)));
        }
        return;
      case CellType::kAnd2:
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(o0 + v * W, Ops::band(Ops::load(a + v * W), Ops::load(b + v * W)));
        }
        return;
      case CellType::kOr2:
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(o0 + v * W, Ops::bor(Ops::load(a + v * W), Ops::load(b + v * W)));
        }
        return;
      case CellType::kNand2:
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(o0 + v * W, Ops::bnot(Ops::band(Ops::load(a + v * W), Ops::load(b + v * W))));
        }
        return;
      case CellType::kNor2:
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(o0 + v * W, Ops::bnot(Ops::bor(Ops::load(a + v * W), Ops::load(b + v * W))));
        }
        return;
      case CellType::kXor2:
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(o0 + v * W, Ops::bxor(Ops::load(a + v * W), Ops::load(b + v * W)));
        }
        return;
      case CellType::kXnor2:
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(o0 + v * W, Ops::bnot(Ops::bxor(Ops::load(a + v * W), Ops::load(b + v * W))));
        }
        return;
      case CellType::kMux2:
        // inputs {a, b, sel} -> sel ? b : a
        for (std::size_t v = 0; v < NV; ++v) {
          const V vs = Ops::load(s + v * W);
          Ops::store(o0 + v * W, Ops::bor(Ops::band(vs, Ops::load(b + v * W)),
                                          Ops::band(Ops::bnot(vs), Ops::load(a + v * W))));
        }
        return;
      case CellType::kHalfAdder:
        for (std::size_t v = 0; v < NV; ++v) {
          const V va = Ops::load(a + v * W);
          const V vb = Ops::load(b + v * W);
          Ops::store(o0 + v * W, Ops::bxor(va, vb));
          Ops::store(o1 + v * W, Ops::band(va, vb));
        }
        return;
      case CellType::kFullAdder:
        for (std::size_t v = 0; v < NV; ++v) {
          const V va = Ops::load(a + v * W);
          const V vb = Ops::load(b + v * W);
          const V vc = Ops::load(s + v * W);
          const V ab = Ops::bxor(va, vb);
          Ops::store(o0 + v * W, Ops::bxor(ab, vc));
          Ops::store(o1 + v * W, Ops::bor(Ops::band(va, vb), Ops::band(vc, ab)));
        }
        return;
      case CellType::kDff:
      case CellType::kDffEnable:
        // Sequential cells never appear in ctx.cells; keep the switch total.
        for (std::size_t v = 0; v < NV; ++v) Ops::store(o0 + v * W, Ops::load(a + v * W));
        return;
    }
  }

  /// Commit one net's new block: diff against the current value, tally the
  /// masked transitions (batched through the step's transition CsaAcc),
  /// snapshot the cycle-start value on first touch, and mark the net dirty
  /// for downstream consumers.  No-op when unchanged.
  static inline void commit(BitsimCtx& ctx, CsaAcc& tacc, std::uint32_t net,
                            const std::uint64_t* nv) {
    std::uint64_t* cur = ctx.words + std::size_t{net} * kWordsPerBlock;
    alignas(64) std::uint64_t diff[kWordsPerBlock];
    V any = Ops::zero();
    for (std::size_t v = 0; v < NV; ++v) {
      const V d = Ops::bxor(Ops::load(cur + v * W), Ops::load(nv + v * W));
      Ops::store(diff + v * W, d);
      any = Ops::bor(any, d);
    }
    if (Ops::is_zero(any)) return;
    ++ctx.stat_events;
    if (ctx.count_func && !ctx.touched[net]) {
      ctx.touched[net] = 1;
      ctx.touched_list[ctx.touched_count++] = net;
      std::memcpy(ctx.start_words + std::size_t{net} * kWordsPerBlock, cur,
                  kWordsPerBlock * sizeof(std::uint64_t));
    }
    if (ctx.mask_full) {
      csa_add(tacc, ctx.trans_planes, ctx.trans_used, diff);
    } else {
      alignas(64) std::uint64_t md[kWordsPerBlock];
      V anym = Ops::zero();
      for (std::size_t v = 0; v < NV; ++v) {
        const V m = Ops::band(Ops::load(diff + v * W), Ops::load(ctx.mask + v * W));
        Ops::store(md + v * W, m);
        anym = Ops::bor(anym, m);
      }
      if (!Ops::is_zero(anym)) csa_add(tacc, ctx.trans_planes, ctx.trans_used, md);
    }
    for (std::size_t v = 0; v < NV; ++v) Ops::store(cur + v * W, Ops::load(nv + v * W));
    if (!ctx.dirty[net]) {
      ctx.dirty[net] = 1;
      ctx.dirty_list[ctx.dirty_count++] = net;
    }
  }

  /// One topological pass over the combinational cells.  In incremental mode
  /// cells whose fanin carries no dirt are skipped - exact, because a single
  /// levelized pass sees every change of the cycle, so clean fanin means the
  /// cell's output cannot change.  All dirt is consumed at the end.
  static void settle(BitsimCtx& ctx, CsaAcc& tacc) {
    const bool inc = ctx.incremental;
    ++ctx.settle_passes;
    // Nothing dirty means no cell can change: the whole pass collapses to
    // this check (the post-edge settle of purely combinational designs).
    if (inc && ctx.dirty_count == 0) return;
    alignas(64) std::uint64_t o0[kWordsPerBlock] = {};
    alignas(64) std::uint64_t o1[kWordsPerBlock] = {};
    std::uint64_t evaluated = 0;  // local tally: no per-cell memory traffic
    for (std::size_t i = 0; i < ctx.num_cells; ++i) {
      const FlatCell& c = ctx.cells[i];
      if (inc && (ctx.dirty[c.in[0]] | ctx.dirty[c.in[1]] | ctx.dirty[c.in[2]]) == 0) continue;
      ++evaluated;
      eval_cell(ctx, c, o0, o1);
      commit(ctx, tacc, c.out[0], o0);
      if (c.num_outputs == 2) commit(ctx, tacc, c.out[1], o1);
    }
    ctx.cells_evaluated += evaluated;
    for (std::size_t i = 0; i < ctx.dirty_count; ++i) ctx.dirty[ctx.dirty_list[i]] = 0;
    ctx.dirty_count = 0;
  }

  /// Clock edge: sample every D (and EN) first, then apply all Q updates
  /// (shared between the levelized and timed cycle kernels).
  static inline void clock_edge(BitsimCtx& ctx, CsaAcc& tacc) {
    for (std::size_t s = 0; s < ctx.num_seq; ++s) {
      const SeqCell& fc = ctx.seq[s];
      const std::uint64_t* d = ctx.words + std::size_t{fc.d} * kWordsPerBlock;
      std::uint64_t* nx = ctx.dff_next + s * kWordsPerBlock;
      if (fc.en != 0xffffffffu) {
        const std::uint64_t* en = ctx.words + std::size_t{fc.en} * kWordsPerBlock;
        const std::uint64_t* q = ctx.words + std::size_t{fc.q} * kWordsPerBlock;
        for (std::size_t v = 0; v < NV; ++v) {
          const V ve = Ops::load(en + v * W);
          Ops::store(nx + v * W, Ops::bor(Ops::band(ve, Ops::load(d + v * W)),
                                          Ops::band(Ops::bnot(ve), Ops::load(q + v * W))));
        }
      } else {
        for (std::size_t v = 0; v < NV; ++v) Ops::store(nx + v * W, Ops::load(d + v * W));
      }
    }
    for (std::size_t s = 0; s < ctx.num_seq; ++s) {
      commit(ctx, tacc, ctx.seq[s].q, ctx.dff_next + s * kWordsPerBlock);
    }
  }

  /// Close the cycle's books: functional accounting over the nets that
  /// changed this cycle (the masked start-vs-end toggles feed the func
  /// planes; glitches are transitions beyond them), then flush the step's
  /// accumulator and count the cycle per active lane.  Purely combinational
  /// zero-delay designs skip the functional pass entirely (count_func off:
  /// functional == transitions per cycle by construction).
  static inline void finish_cycle(BitsimCtx& ctx, CsaAcc& tacc) {
    if (ctx.count_func) {
      CsaAcc facc;
      alignas(64) std::uint64_t fd[kWordsPerBlock];
      for (std::size_t i = 0; i < ctx.touched_count; ++i) {
        const std::uint32_t net = ctx.touched_list[i];
        ctx.touched[net] = 0;
        const std::uint64_t* end = ctx.words + std::size_t{net} * kWordsPerBlock;
        const std::uint64_t* start = ctx.start_words + std::size_t{net} * kWordsPerBlock;
        V any = Ops::zero();
        for (std::size_t v = 0; v < NV; ++v) {
          V d = Ops::bxor(Ops::load(end + v * W), Ops::load(start + v * W));
          if (!ctx.mask_full) d = Ops::band(d, Ops::load(ctx.mask + v * W));
          Ops::store(fd + v * W, d);
          any = Ops::bor(any, d);
        }
        if (!Ops::is_zero(any)) {
          ++ctx.stat_events;
          csa_add(facc, ctx.func_planes, ctx.func_used, fd);
        }
      }
      ctx.touched_count = 0;
      csa_flush(facc, ctx.func_planes, ctx.func_used);
    }
    csa_flush(tacc, ctx.trans_planes, ctx.trans_used);
    ++ctx.stat_events;
    acc_add(ctx.cycle_planes, ctx.cycle_used, ctx.mask);
  }

  /// Full clock cycle (BitSimulator::step_cycle's kernel half).
  static void step_cycle(BitsimCtx& ctx) {
    CsaAcc tacc;  // batches this cycle's transition events
    // Pre-edge settle: this cycle's input changes through the logic.
    settle(ctx, tacc);
    clock_edge(ctx, tacc);
    // Post-edge settle: the new Q values through the logic (near-free for
    // purely combinational designs - no Q changed, nothing is dirty).
    settle(ctx, tacc);
    finish_cycle(ctx, tacc);
  }

  // --- timed mode (kUnit / kCellDepth) --------------------------------------

  /// Seed-time schedule: all lanes of order index `oi` get pending value
  /// `val` with target slot `slot`.  Full-block writes are safe because the
  /// previous settle drained every pending (has_pend == 0, membership == 0).
  static inline void schedule_all(BitsimCtx& ctx, std::uint32_t oi, std::uint32_t slot,
                                  const std::uint64_t* val) {
    std::memcpy(ctx.pend_val + std::size_t{oi} * kWordsPerBlock, val,
                kWordsPerBlock * sizeof(std::uint64_t));
    std::uint64_t* hp = ctx.has_pend + std::size_t{oi} * kWordsPerBlock;
    for (std::size_t v = 0; v < NV; ++v) Ops::store(hp + v * W, Ops::ones());
    std::uint64_t* sp = ctx.stamp + std::size_t{oi} * kStampPlanes * kWordsPerBlock;
    for (std::size_t p = 0; p < kStampPlanes; ++p) {
      const V pv = ((slot >> p) & 1u) ? Ops::ones() : Ops::zero();
      for (std::size_t v = 0; v < NV; ++v) Ops::store(sp + p * kWordsPerBlock + v * W, pv);
    }
    push_slot(ctx, oi, slot);
  }

  /// Masked re-schedule (phase 2): lanes in `m` get pending value `val` with
  /// target slot `slot`; other lanes keep whatever they were holding.
  static inline void schedule_masked(BitsimCtx& ctx, std::uint32_t oi, std::uint32_t slot,
                                     const std::uint64_t* val, const std::uint64_t* m) {
    std::uint64_t* pv = ctx.pend_val + std::size_t{oi} * kWordsPerBlock;
    std::uint64_t* hp = ctx.has_pend + std::size_t{oi} * kWordsPerBlock;
    for (std::size_t v = 0; v < NV; ++v) {
      const V mm = Ops::load(m + v * W);
      Ops::store(pv + v * W, Ops::bor(Ops::band(Ops::bnot(mm), Ops::load(pv + v * W)),
                                      Ops::band(mm, Ops::load(val + v * W))));
      Ops::store(hp + v * W, Ops::bor(Ops::load(hp + v * W), mm));
    }
    std::uint64_t* sp = ctx.stamp + std::size_t{oi} * kStampPlanes * kWordsPerBlock;
    for (std::size_t p = 0; p < kStampPlanes; ++p) {
      std::uint64_t* pp = sp + p * kWordsPerBlock;
      if ((slot >> p) & 1u) {
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(pp + v * W, Ops::bor(Ops::load(pp + v * W), Ops::load(m + v * W)));
        }
      } else {
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(pp + v * W, Ops::band(Ops::load(pp + v * W), Ops::bnot(Ops::load(m + v * W))));
        }
      }
    }
    push_slot(ctx, oi, slot);
  }

  static inline void push_slot(BitsimCtx& ctx, std::uint32_t oi, std::uint32_t slot) {
    if (ctx.slot_member[oi] & (1u << slot)) return;  // already queued for this slot
    ctx.slot_member[oi] |= 1u << slot;
    ctx.slot_entries[std::size_t{slot} * ctx.num_order + ctx.slot_count[slot]++] = oi;
    ++ctx.slot_total;
    ++ctx.timed_scheduled;
  }

  /// Timed settle: level-synchronized event propagation with per-net pending
  /// blocks, lane-for-lane bit-identical to EventSimulator's canonical
  /// intra-tick semantics (sim/event_sim.h).  Each tick runs two phases:
  /// phase 1 applies the tick's surviving events in canonical net order
  /// (ascending order index; a lane whose driver was already retriggered by
  /// an earlier event this tick skips - the pending is superseded), phase 2
  /// re-evaluates every triggered cell once, in topo order, scheduling its
  /// outputs `delay` ticks ahead.  Inertial cancellation falls out of the
  /// stamp overwrite: a newer schedule changes the lane's target tick, so
  /// the stale slot entry misses on the stamp compare.
  static void settle_timed(BitsimCtx& ctx, CsaAcc& tacc) {
    ++ctx.settle_passes;
    const bool inc = ctx.incremental;
    // Nothing dirty means every cell output already equals its evaluation:
    // the seed would schedule only no-op pendings (the post-edge settle of
    // purely combinational designs collapses to this check).
    if (inc && ctx.dirty_count == 0) return;
    alignas(64) std::uint64_t o0[kWordsPerBlock] = {};
    alignas(64) std::uint64_t o1[kWordsPerBlock] = {};

    // Seed: evaluate every combinational cell with a dirty fanin against the
    // current image and schedule its outputs at t = delay (the scalar seeds
    // ALL cells, but a clean-fanin cell's pending is a no-op by the settle
    // fixpoint invariant, so the dirty gate is exact).
    std::uint64_t evaluated = 0;
    for (std::size_t i = 0; i < ctx.num_cells; ++i) {
      const FlatCell& c = ctx.cells[i];
      if (inc && (ctx.dirty[c.in[0]] | ctx.dirty[c.in[1]] | ctx.dirty[c.in[2]]) == 0) continue;
      ++evaluated;
      eval_cell(ctx, c, o0, o1);
      const std::uint32_t slot = ctx.delay[i];  // target tick of a schedule at t = 0
      const std::uint32_t base = ctx.cell_order_base[i];
      schedule_all(ctx, base, slot, o0);
      if (c.num_outputs == 2) schedule_all(ctx, base + 1, slot, o1);
    }
    ctx.cells_evaluated += evaluated;
    for (std::size_t i = 0; i < ctx.dirty_count; ++i) ctx.dirty[ctx.dirty_list[i]] = 0;
    ctx.dirty_count = 0;

    for (std::int64_t tick = 1; ctx.slot_total > 0; ++tick) {
      if (tick > kMaxTimedTicks) {
        ctx.oscillated = true;
        return;
      }
      const std::uint32_t s = static_cast<std::uint32_t>(tick) & (kTimedSlots - 1);
      const std::uint32_t n = ctx.slot_count[s];
      if (n == 0) continue;
      ++ctx.timed_ticks;
      std::uint32_t* ent = ctx.slot_entries + std::size_t{s} * ctx.num_order;
      ctx.slot_count[s] = 0;
      ctx.slot_total -= n;
      // Canonical intra-tick order IS ascending order index.
      std::sort(ent, ent + n);
      std::size_t n_trig = 0;

      // Phase 1: apply surviving events, count transitions, mark triggers.
      for (std::uint32_t e = 0; e < n; ++e) {
        const std::uint32_t oi = ent[e];
        ctx.slot_member[oi] &= ~(1u << s);
        std::uint64_t* hp = ctx.has_pend + std::size_t{oi} * kWordsPerBlock;
        const std::uint64_t* sp = ctx.stamp + std::size_t{oi} * kStampPlanes * kWordsPerBlock;
        alignas(64) std::uint64_t valid[kWordsPerBlock];
        V anyv = Ops::zero();
        for (std::size_t v = 0; v < NV; ++v) {
          V vv = Ops::load(hp + v * W);
          for (std::size_t p = 0; p < kStampPlanes; ++p) {
            const V pl = Ops::load(sp + p * kWordsPerBlock + v * W);
            vv = Ops::band(vv, ((s >> p) & 1u) ? pl : Ops::bnot(pl));
          }
          Ops::store(valid + v * W, vv);
          anyv = Ops::bor(anyv, vv);
        }
        if (Ops::is_zero(anyv)) continue;  // stale entry: superseded or consumed
        const std::uint64_t* rt = ctx.retrig + std::size_t{ctx.order_driver[oi]} * kWordsPerBlock;
        const std::uint32_t q = ctx.order_to_net[oi];
        std::uint64_t* cur = ctx.words + std::size_t{q} * kWordsPerBlock;
        const std::uint64_t* pv = ctx.pend_val + std::size_t{oi} * kWordsPerBlock;
        alignas(64) std::uint64_t change[kWordsPerBlock];
        V anyc = Ops::zero();
        for (std::size_t v = 0; v < NV; ++v) {
          const V vv = Ops::load(valid + v * W);
          // Consume the pending for every valid lane, retriggered ones
          // included - phase 2 re-establishes exactly those lanes, since a
          // cell's retrig mask is also its re-schedule commit mask.
          Ops::store(hp + v * W, Ops::band(Ops::load(hp + v * W), Ops::bnot(vv)));
          const V apply = Ops::band(vv, Ops::bnot(Ops::load(rt + v * W)));
          const V ch = Ops::band(apply, Ops::bxor(Ops::load(pv + v * W), Ops::load(cur + v * W)));
          Ops::store(change + v * W, ch);
          anyc = Ops::bor(anyc, ch);
        }
        if (Ops::is_zero(anyc)) continue;
        if (!ctx.touched[q]) {  // count_func is always on in timed mode
          ctx.touched[q] = 1;
          ctx.touched_list[ctx.touched_count++] = q;
          std::memcpy(ctx.start_words + std::size_t{q} * kWordsPerBlock, cur,
                      kWordsPerBlock * sizeof(std::uint64_t));
        }
        for (std::size_t v = 0; v < NV; ++v) {
          Ops::store(cur + v * W, Ops::bxor(Ops::load(cur + v * W), Ops::load(change + v * W)));
        }
        ++ctx.stat_events;
        if (ctx.mask_full) {
          csa_add(tacc, ctx.trans_planes, ctx.trans_used, change);
        } else {
          alignas(64) std::uint64_t md[kWordsPerBlock];
          V anym = Ops::zero();
          for (std::size_t v = 0; v < NV; ++v) {
            const V m = Ops::band(Ops::load(change + v * W), Ops::load(ctx.mask + v * W));
            Ops::store(md + v * W, m);
            anym = Ops::bor(anym, m);
          }
          if (!Ops::is_zero(anym)) csa_add(tacc, ctx.trans_planes, ctx.trans_used, md);
        }
        for (std::uint32_t f = ctx.fanout_offset[oi]; f < ctx.fanout_offset[oi + 1]; ++f) {
          const std::uint32_t r = ctx.fanout_cells[f];
          std::uint64_t* rr = ctx.retrig + std::size_t{r} * kWordsPerBlock;
          for (std::size_t v = 0; v < NV; ++v) {
            Ops::store(rr + v * W, Ops::bor(Ops::load(rr + v * W), Ops::load(change + v * W)));
          }
          if (!ctx.trig_mark[r]) {
            ctx.trig_mark[r] = 1;
            ctx.trig_list[n_trig++] = r;
          }
        }
      }
      if (n_trig == 0) continue;

      // Phase 2: triggered cells re-evaluate once, in topo order (flat comb
      // cell indices already ARE topo order, so a plain sort suffices).
      std::sort(ctx.trig_list, ctx.trig_list + n_trig);
      ctx.cells_evaluated += n_trig;
      for (std::size_t e = 0; e < n_trig; ++e) {
        const std::uint32_t i = ctx.trig_list[e];
        const FlatCell& c = ctx.cells[i];
        eval_cell(ctx, c, o0, o1);
        std::uint64_t* m = ctx.retrig + std::size_t{i} * kWordsPerBlock;
        const std::uint32_t slot =
            (static_cast<std::uint32_t>(tick) + ctx.delay[i]) & (kTimedSlots - 1);
        const std::uint32_t base = ctx.cell_order_base[i];
        schedule_masked(ctx, base, slot, o0, m);
        if (c.num_outputs == 2) schedule_masked(ctx, base + 1, slot, o1, m);
        ctx.trig_mark[i] = 0;
        for (std::size_t v = 0; v < NV; ++v) Ops::store(m + v * W, Ops::zero());
      }
    }
  }

  /// Timed clock cycle: step_cycle with each settle replaced by the event
  /// engine.  On oscillation the cycle aborts with ctx.oscillated set (this
  /// cycle's batched stats are dropped; reset_state recovers, mirroring the
  /// scalar simulator's throw).
  static void step_cycle_timed(BitsimCtx& ctx) {
    CsaAcc tacc;
    settle_timed(ctx, tacc);
    if (ctx.oscillated) return;
    clock_edge(ctx, tacc);
    settle_timed(ctx, tacc);
    if (ctx.oscillated) return;
    finish_cycle(ctx, tacc);
  }

  /// Evaluate every combinational cell once, storing outputs directly with
  /// no statistics or bookkeeping, then drop all dirty/touched state: the
  /// reset_state path (establishes constants and the settled all-zero image).
  static void settle_full(BitsimCtx& ctx) {
    alignas(64) std::uint64_t o0[kWordsPerBlock] = {};
    alignas(64) std::uint64_t o1[kWordsPerBlock] = {};
    for (std::size_t i = 0; i < ctx.num_cells; ++i) {
      const FlatCell& c = ctx.cells[i];
      eval_cell(ctx, c, o0, o1);
      std::memcpy(ctx.words + std::size_t{c.out[0]} * kWordsPerBlock, o0,
                  kWordsPerBlock * sizeof(std::uint64_t));
      if (c.num_outputs == 2) {
        std::memcpy(ctx.words + std::size_t{c.out[1]} * kWordsPerBlock, o1,
                    kWordsPerBlock * sizeof(std::uint64_t));
      }
    }
    for (std::size_t i = 0; i < ctx.dirty_count; ++i) ctx.dirty[ctx.dirty_list[i]] = 0;
    ctx.dirty_count = 0;
    for (std::size_t i = 0; i < ctx.touched_count; ++i) ctx.touched[ctx.touched_list[i]] = 0;
    ctx.touched_count = 0;
  }
};

// ---------------------------------------------------------------------------
// Vectorized PCG32 stimulus.
//
// One next_bool(0.5) draw consumes two next_u32 state advances; its value is
// next_double() < 0.5, and because next_double scales a 53-bit integer by
// 2^-53 (exact), that compare reduces to bit 52 of the integer - which is
// bit 31 of the FIRST next_u32 output.  So per draw: advance the state
// twice, extract one output bit of the first advance, invert it.
//
// The output bit: u32 = rotr32(xorshifted, rot) with xorshifted =
// ((old >> 18) ^ old) >> 27 and rot = old >> 59, so bit 31 of u32 is bit
// ((31 + rot) & 31) of xorshifted - always within the valid low 32 bits,
// letting the kernel skip masking the 64-bit lane.
//
// An RngOps policy adds to the integer policy:
//   fold_inc(inc)    inc * (kPcgMult + 1), the folded two-step increment -
//                    computed once per lane group and reused for every input
//   step2(st, inc2)  st * kPcgMult^2 + inc2, both advances in one multiply
//   true_mask(st)    one bit per lane: the draw's outcome, extracted from
//                    the PRE-advance state (PCG outputs the old state)
// Scalar reference of the exact same arithmetic, shared by every TU for
// partial vector groups (lane subsets of a group drawing on the final
// partial step).
inline bool draw_bool_scalar(std::uint64_t& state, std::uint64_t inc) {
  const std::uint64_t old = state;
  state = old * kPcgMult + inc;
  state = state * kPcgMult + inc;
  const std::uint64_t xs = ((old >> 18) ^ old) >> 27;
  const std::uint64_t idx = ((old >> 59) + 31) & 31;
  return ((xs >> idx) & 1u) == 0;
}

template <class RO>
inline void draw_bools_impl(StimCtx& ctx) {
  using V = typename RO::V;
  constexpr std::size_t G = RO::kVecWords;  // lanes advancing per register
  // Interleave NC independent generator registers per chunk: one step2 is a
  // serial 64-bit multiply chain (~5 cycle latency against ~1/cycle
  // throughput), so walking one register through all the inputs is latency
  // bound.  Eight chains in flight keep the multiplier busy and assemble a
  // whole bit-group of the input word per iteration.
  constexpr std::size_t NC = 8;
  constexpr std::size_t CL = NC * G;  // lanes per chunk
  static_assert(64 % CL == 0, "chunk must tile a 64-lane word");
  const std::uint64_t full = CL >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << CL) - 1);
  for (std::size_t chunk = 0; chunk < kLanesPerBlock / CL; ++chunk) {
    const std::size_t lane0 = chunk * CL;
    const std::size_t w = lane0 / 64;
    const std::size_t off = lane0 % 64;
    const std::uint64_t cm = (ctx.draw_mask[w] >> off) & full;
    if (cm == 0) continue;
    if (cm == full) {
      V st[NC];
      V inc2[NC];
      for (std::size_t k = 0; k < NC; ++k) {
        st[k] = RO::load(ctx.state + lane0 + k * G);
        inc2[k] = RO::fold_inc(RO::load(ctx.inc + lane0 + k * G));
      }
      for (std::size_t i = 0; i < ctx.n_inputs; ++i) {
        std::uint64_t bits = 0;
        for (std::size_t k = 0; k < NC; ++k) {
          bits |= RO::true_mask(st[k]) << (k * G);
          st[k] = RO::step2(st[k], inc2[k]);
        }
        std::uint64_t* word = ctx.blocks + i * kWordsPerBlock + w;
        *word = (*word & ~(full << off)) | (bits << off);
      }
      for (std::size_t k = 0; k < NC; ++k) RO::store(ctx.state + lane0 + k * G, st[k]);
    } else {
      // Partial chunk (the boundary of a prefix draw mask): per-lane scalar
      // replica of the identical arithmetic.
      for (std::uint64_t m = cm; m != 0; m &= m - 1) {
        const std::size_t l = lane0 + static_cast<std::size_t>(__builtin_ctzll(m));
        std::uint64_t st = ctx.state[l];
        const std::uint64_t bit = std::uint64_t{1} << (l % 64);
        for (std::size_t i = 0; i < ctx.n_inputs; ++i) {
          std::uint64_t* word = ctx.blocks + i * kWordsPerBlock + l / 64;
          *word = draw_bool_scalar(st, ctx.inc[l]) ? (*word | bit) : (*word & ~bit);
        }
        ctx.state[l] = st;
      }
    }
  }
}

}  // namespace optpower::simd
