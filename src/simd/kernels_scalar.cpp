// Scalar kernel backend: plain uint64_t loops over the 8-word block.  The
// always-available reference every other backend must match bit-for-bit,
// and the only TU of the three compiled without ISA flags.
#include "simd/bitsim_kernel.h"

namespace optpower::simd::detail {

namespace {

struct ScalarOps {
  using V = std::uint64_t;
  static constexpr std::size_t kVecWords = 1;
  static V load(const std::uint64_t* p) { return *p; }
  static void store(std::uint64_t* p, V v) { *p = v; }
  static V band(V a, V b) { return a & b; }
  static V bor(V a, V b) { return a | b; }
  static V bxor(V a, V b) { return a ^ b; }
  static V bnot(V a) { return ~a; }
  static bool is_zero(V a) { return a == 0; }
  static V zero() { return 0; }
  static V ones() { return ~std::uint64_t{0}; }
};

struct ScalarRngOps {
  using V = std::uint64_t;
  static constexpr std::size_t kVecWords = 1;
  static V load(const std::uint64_t* p) { return *p; }
  static void store(std::uint64_t* p, V v) { *p = v; }
  static V fold_inc(V inc) { return inc * kPcgMultP1; }
  static V step2(V st, V inc2) { return st * kPcgMult2 + inc2; }
  static std::uint64_t true_mask(V st) {
    const std::uint64_t xs = ((st >> 18) ^ st) >> 27;
    const std::uint64_t idx = ((st >> 59) + 31) & 31;
    return ((xs >> idx) & 1u) ^ 1u;
  }
};

void draw_bools(StimCtx& ctx) { draw_bools_impl<ScalarRngOps>(ctx); }

void total_power_row(const PowRowArgs& args) { total_power_row_impl<ScalarDOps>(args); }

}  // namespace

const Kernels* scalar_kernels() {
  static const Kernels k{"scalar", &BitsimKernel<ScalarOps>::step_cycle,
                         &BitsimKernel<ScalarOps>::step_cycle_timed,
                         &BitsimKernel<ScalarOps>::settle_full, &draw_bools, &total_power_row};
  return &k;
}

}  // namespace optpower::simd::detail
