// Runtime-dispatched SIMD kernel layer: one scalar / AVX2 / AVX-512 backend
// behind a common kernel table, selected once per process from cpuid (widest
// supported wins) and overridable with OPTPOWER_SIMD=scalar|avx2|avx512 for
// testing every dispatch path on one machine.
//
// The contract that makes the dispatch safe to test: every backend computes
// BIT-IDENTICAL results.  Integer kernels (the bit-parallel simulator and
// its PCG32 stimulus generator) are pure 64-bit integer arithmetic evaluated
// per lane, so width only changes how many lanes one instruction touches.
// The double kernel (total_power_row) uses one shared polynomial exp
// evaluated with plain IEEE mul/add (the kernel TUs compile with
// -ffp-contract=off so no backend silently fuses into FMA), which again
// makes scalar == AVX2 == AVX-512 to the last bit.
//
// Only the three kernels_<backend>.cpp TUs are compiled with ISA flags
// (per-source -m options in src/CMakeLists.txt); this header and simd.cpp
// stay ISA-clean so no illegal instruction can leak into generic code paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace optpower {
enum class CellType : std::uint8_t;
}

namespace optpower::simd {

/// 64-bit words per lane block: 8 x 64 = 512 independent lanes per pass.
/// One AVX-512 op covers a whole block, AVX2 takes two, scalar eight.
inline constexpr std::size_t kWordsPerBlock = 8;

/// Lanes per block.
inline constexpr std::size_t kLanesPerBlock = kWordsPerBlock * 64;

/// Carry-save accumulator depth: per-lane event tallies are kept bit-sliced
/// (plane p holds bit p of every lane's count), so a window of up to 2^32-1
/// events per lane can accumulate between flushes.
inline constexpr std::size_t kAccPlanes = 32;

/// Timed-mode slot ring size.  Every cell delay is required to be strictly
/// below this, so a pending event's target tick mod kTimedSlots identifies
/// its tick unambiguously within the live window (the slot was last visited
/// more than one maximum delay ago).
inline constexpr std::size_t kTimedSlots = 32;

/// Bit-sliced planes holding a pending event's target tick mod kTimedSlots.
inline constexpr std::size_t kStampPlanes = 5;
static_assert(std::size_t{1} << kStampPlanes == kTimedSlots);

/// Oscillation guard for timed settles, shared with the scalar schedulers.
inline constexpr std::int64_t kMaxTimedTicks = std::int64_t{1} << 22;

/// Instruction-set backend of a kernel table.
enum class Backend {
  kScalar = 0,  ///< plain uint64_t loops; always compiled, always supported
  kAvx2 = 1,    ///< 256-bit blocks (needs AVX2)
  kAvx512 = 2,  ///< 512-bit blocks (needs AVX-512 F+DQ)
};

inline constexpr int kNumBackends = 3;

/// One combinational cell flattened for the settle kernel, topo order.
/// Unused input pins are padded with in[0] (or the output net for tie
/// cells) so the dirty-cone check can read all three unconditionally.
struct FlatCell {
  CellType type;
  std::uint8_t num_outputs;
  std::uint32_t in[3];
  std::uint32_t out[2];
};

/// One sequential cell (kDff / kDffEnable) for the clock-edge kernel.
/// `en` is 0xffffffff (kNoNet) for plain DFFs.
struct SeqCell {
  std::uint32_t d;
  std::uint32_t en;
  std::uint32_t q;
};

/// Mutable view of one BitSimulator's state, handed to the cycle kernels.
/// All pointers alias the simulator's own vectors; sizes never change after
/// construction.  Per-net blocks are `kWordsPerBlock` consecutive words.
struct BitsimCtx {
  const FlatCell* cells = nullptr;  ///< combinational cells, topo order
  std::size_t num_cells = 0;
  const SeqCell* seq = nullptr;  ///< sequential cells
  std::size_t num_seq = 0;
  std::size_t num_nets = 0;

  std::uint64_t* words = nullptr;     ///< per net: one lane block
  std::uint64_t* dff_next = nullptr;  ///< per seq cell: sampled D block
  const std::uint64_t* mask = nullptr;  ///< active-lane mask block (stats only)
  bool mask_full = true;  ///< every lane active: the mask-AND passes collapse

  /// Functional (start-vs-end) accounting runs only when the design has
  /// sequential cells.  A purely combinational design settles in ONE
  /// levelized pass per cycle, so each net changes at most once and the
  /// functional toggle count per cycle IS the transition count (glitches are
  /// identically zero, matching the scalar kZero simulator); the simulator
  /// then folds the transition planes into both counters on flush and the
  /// kernel skips the touched-list snapshots and the whole end-of-cycle
  /// start-vs-end pass.
  bool count_func = true;

  // Dirty-cone bookkeeping (net granularity).  `dirty` marks nets whose
  // value changed since their consumers last settled; each settle consumes
  // and clears the flags through `dirty_list`.
  std::uint8_t* dirty = nullptr;
  std::uint32_t* dirty_list = nullptr;
  std::size_t dirty_count = 0;
  bool incremental = true;  ///< false = evaluate every cell every settle

  // Per-cycle functional bookkeeping: nets whose block changed this cycle,
  // with their cycle-start value snapshotted on first touch.
  std::uint8_t* touched = nullptr;
  std::uint32_t* touched_list = nullptr;
  std::size_t touched_count = 0;
  std::uint64_t* start_words = nullptr;

  // Carry-save planes (kAccPlanes x kWordsPerBlock each) and their used
  // depth; flushed into per-lane scalar counters by the simulator.
  std::uint64_t* trans_planes = nullptr;
  std::size_t trans_used = 0;
  std::uint64_t* func_planes = nullptr;
  std::size_t func_used = 0;
  std::uint64_t* cycle_planes = nullptr;
  std::size_t cycle_used = 0;

  // Observability tallies: bumped by the kernels with plain (non-atomic)
  // adds - the ctx is single-owner - and drained into the metrics registry
  // by BitSimulator after each cycle.  Dirty-cone skips are derivable as
  // settle_passes * num_cells - cells_evaluated.
  std::uint64_t settle_passes = 0;    ///< settle() invocations (collapsed ones included)
  std::uint64_t cells_evaluated = 0;  ///< cells actually evaluated after dirty-cone skip

  // --- timed mode (kUnit / kCellDepth): level-synchronized event engine ----
  // Null / unused when `timed` is false.  An "order index" is the canonical
  // rank of a combinational output net - cells in topo order, output pins in
  // declaration order - so sorting raw order indices IS the canonical
  // intra-tick event order the scalar schedulers apply (sim/event_sim.h).
  // Pending events live per order index as a value block, a lanes-with-a-
  // pending mask block, and kStampPlanes bit-sliced target-tick planes; the
  // slot ring holds order indices keyed by target tick mod kTimedSlots, with
  // a per-index membership bitmask for dedup (superseded schedules simply
  // overwrite the stamp and let the stale entry miss on it).
  bool timed = false;
  std::size_t num_order = 0;                       ///< combinational output nets
  const std::uint8_t* delay = nullptr;             ///< per comb cell: ticks, 1..kTimedSlots-1
  const std::uint32_t* cell_order_base = nullptr;  ///< per comb cell: order idx of out[0]
  const std::uint32_t* order_to_net = nullptr;     ///< order idx -> net
  const std::uint32_t* order_driver = nullptr;     ///< order idx -> flat comb cell idx
  const std::uint32_t* fanout_offset = nullptr;    ///< order idx -> comb-reader CSR range
  const std::uint32_t* fanout_cells = nullptr;     ///< CSR payload: flat comb cell indices
  std::uint64_t* pend_val = nullptr;   ///< per order idx: pending value block
  std::uint64_t* has_pend = nullptr;   ///< per order idx: lanes holding a pending event
  std::uint64_t* stamp = nullptr;      ///< per order idx: kStampPlanes target-tick planes
  std::uint32_t* slot_entries = nullptr;  ///< kTimedSlots x num_order ring of order indices
  std::uint32_t* slot_count = nullptr;    ///< per slot: live entry count
  std::uint32_t* slot_member = nullptr;   ///< per order idx: slot membership bitmask
  std::size_t slot_total = 0;             ///< entries across all slots (settle ends at 0)
  std::uint64_t* retrig = nullptr;     ///< per comb cell: lanes triggered this tick
  std::uint8_t* trig_mark = nullptr;   ///< per comb cell: already on trig_list
  std::uint32_t* trig_list = nullptr;  ///< comb cells triggered this tick
  bool oscillated = false;  ///< a settle hit kMaxTimedTicks; state needs reset_state()
  std::uint64_t stat_events = 0;     ///< plane event adds since last drain (flush guard)
  std::uint64_t timed_ticks = 0;     ///< non-empty wheel ticks processed
  std::uint64_t timed_scheduled = 0; ///< slot pushes (pending-event schedules)
};

/// Vectorized PCG32 stimulus drawing: advance the per-lane generators of
/// every lane selected in `draw_mask` by one fair-coin draw per input, and
/// deposit the outcome in bit `lane` of each input's block.  Lanes outside
/// `draw_mask` keep their previous bit and their generator state untouched.
/// The arithmetic replicates util/random.h Pcg32 (state update, xorshift-
/// rotate output, next_double composition, < 0.5 compare) exactly, so lane
/// l's stream is bit-identical to `Pcg32(seed + l).next_bool()` draws.
struct StimCtx {
  std::uint64_t* state = nullptr;      ///< per-lane PCG32 state, kLanesPerBlock
  const std::uint64_t* inc = nullptr;  ///< per-lane PCG32 increment
  std::uint64_t* blocks = nullptr;     ///< n_inputs input blocks, input-major
  std::size_t n_inputs = 0;
  const std::uint64_t* draw_mask = nullptr;  ///< lane block: lanes that draw
};

/// Arguments of the total_power row kernel:
/// out[i] = pdyn + stat_coeff * exp(vth[i] * neg_inv_nut).
struct PowRowArgs {
  const double* vth = nullptr;
  double* out = nullptr;
  std::size_t n = 0;
  double pdyn = 0.0;        ///< N * a * C * vdd^2 * f
  double stat_coeff = 0.0;  ///< N * vdd * Io
  double neg_inv_nut = 0.0; ///< -1 / (n * Ut)
};

/// One backend's kernel table.
struct Kernels {
  const char* name;  ///< "scalar" / "avx2" / "avx512"
  /// Full clock cycle: pre-edge settle, DFF sample + Q commit, post-edge
  /// settle, functional accounting over the touched list (which it clears).
  void (*step_cycle)(BitsimCtx& ctx);
  /// Timed (kUnit / kCellDepth) clock cycle: the same shape, but each settle
  /// is a level-synchronized event propagation through the slot ring -
  /// glitch-accurate and lane-for-lane bit-identical to the scalar
  /// EventSimulator under the same delay mode.  Requires the ctx's timed
  /// state; sets ctx.oscillated instead of throwing on a failed settle.
  void (*step_cycle_timed)(BitsimCtx& ctx);
  /// Evaluate every combinational cell once, storing outputs with no
  /// statistics and no bookkeeping; clears all dirty/touched state (the
  /// reset_state path).
  void (*settle_full)(BitsimCtx& ctx);
  /// Vectorized stimulus drawing (see StimCtx).
  void (*draw_bools)(StimCtx& ctx);
  /// SIMD total-power row (see PowRowArgs).
  void (*total_power_row)(const PowRowArgs& args);
};

/// Backend display name ("scalar" / "avx2" / "avx512").
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// Whether the backend's kernel TU was compiled into this binary.
[[nodiscard]] bool backend_compiled(Backend backend) noexcept;

/// Whether the backend can run here: compiled in AND the CPU reports the
/// required ISA extensions (AVX2, or AVX-512 F+DQ).  kScalar is always true.
[[nodiscard]] bool backend_supported(Backend backend) noexcept;

/// Widest supported backend (cpuid probe, cached).
[[nodiscard]] Backend detect_backend() noexcept;

/// The process-wide default: $OPTPOWER_SIMD when set (throws InvalidArgument
/// on an unknown value or an unsupported backend - tests probe first and
/// skip), else detect_backend().  Resolved once and cached.
[[nodiscard]] Backend default_backend();

/// Every backend supported on this machine, scalar first.
[[nodiscard]] std::vector<Backend> supported_backends();

/// Kernel table of a backend; throws InvalidArgument when unsupported.
[[nodiscard]] const Kernels& kernels(Backend backend);

}  // namespace optpower::simd
