// AVX2 kernel backend: 256-bit registers, two per 8-word net block.  This TU
// (alone) is compiled with -mavx2; it is only entered through the kernel
// table after a cpuid check, so no AVX2 instruction can fault elsewhere.
#include "simd/bitsim_kernel.h"

#ifdef __AVX2__
#include <immintrin.h>

namespace optpower::simd::detail {

namespace {

struct Avx2Ops {
  using V = __m256i;
  static constexpr std::size_t kVecWords = 4;
  static V load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V band(V a, V b) { return _mm256_and_si256(a, b); }
  static V bor(V a, V b) { return _mm256_or_si256(a, b); }
  static V bxor(V a, V b) { return _mm256_xor_si256(a, b); }
  static V bnot(V a) { return _mm256_xor_si256(a, ones()); }
  static bool is_zero(V a) { return _mm256_testz_si256(a, a) != 0; }
  static V zero() { return _mm256_setzero_si256(); }
  static V ones() { return _mm256_set1_epi64x(-1); }
};

struct Avx2RngOps {
  using V = __m256i;
  static constexpr std::size_t kVecWords = 4;
  static V load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  /// a * b mod 2^64 per lane (AVX2 has no 64-bit mullo): three 32x32
  /// partial products.
  static V mul64(V a, V b) {
    const V lolo = _mm256_mul_epu32(a, b);
    const V ahi = _mm256_srli_epi64(a, 32);
    const V bhi = _mm256_srli_epi64(b, 32);
    const V mid = _mm256_add_epi64(_mm256_mul_epu32(ahi, b), _mm256_mul_epu32(a, bhi));
    return _mm256_add_epi64(lolo, _mm256_slli_epi64(mid, 32));
  }
  static V fold_inc(V inc) {
    return mul64(inc, _mm256_set1_epi64x(static_cast<long long>(kPcgMultP1)));
  }
  static V step2(V st, V inc2) {
    return _mm256_add_epi64(mul64(st, _mm256_set1_epi64x(static_cast<long long>(kPcgMult2))),
                            inc2);
  }
  static std::uint64_t true_mask(V st) {
    const V xs = _mm256_srli_epi64(_mm256_xor_si256(_mm256_srli_epi64(st, 18), st), 27);
    const V thirty_one = _mm256_set1_epi64x(31);
    const V idx =
        _mm256_and_si256(_mm256_add_epi64(_mm256_srli_epi64(st, 59), thirty_one), thirty_one);
    const V bit = _mm256_and_si256(_mm256_srlv_epi64(xs, idx), _mm256_set1_epi64x(1));
    // next_bool is TRUE where the output bit is 0: invert, move to the sign
    // bit, movemask down to one bit per lane.
    const V t = _mm256_slli_epi64(_mm256_xor_si256(bit, _mm256_set1_epi64x(1)), 63);
    return static_cast<std::uint64_t>(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(t))));
  }
};

struct Avx2DOps {
  using D = __m256d;
  static constexpr std::size_t kDoubles = 4;
  static D load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, D v) { _mm256_storeu_pd(p, v); }
  static D set1(double v) { return _mm256_set1_pd(v); }
  static D add(D a, D b) { return _mm256_add_pd(a, b); }
  static D sub(D a, D b) { return _mm256_sub_pd(a, b); }
  static D mul(D a, D b) { return _mm256_mul_pd(a, b); }
  static D min(D a, D b) { return _mm256_min_pd(a, b); }
  static D max(D a, D b) { return _mm256_max_pd(a, b); }
  static D floor(D a) { return _mm256_floor_pd(a); }
  static D pow2i(D k) {
    const __m128i k32 = _mm256_cvttpd_epi32(k);  // exact: k is integral, |k| < 2^31
    const __m256i k64 = _mm256_cvtepi32_epi64(k32);
    const __m256i bits =
        _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
    return _mm256_castsi256_pd(bits);
  }
};

void draw_bools(StimCtx& ctx) { draw_bools_impl<Avx2RngOps>(ctx); }

void total_power_row(const PowRowArgs& args) { total_power_row_impl<Avx2DOps>(args); }

}  // namespace

const Kernels* avx2_kernels() {
  static const Kernels k{"avx2", &BitsimKernel<Avx2Ops>::step_cycle,
                         &BitsimKernel<Avx2Ops>::step_cycle_timed,
                         &BitsimKernel<Avx2Ops>::settle_full, &draw_bools, &total_power_row};
  return &k;
}

}  // namespace optpower::simd::detail

#else  // !__AVX2__: TU built without the flag (unsupported compiler probe)

namespace optpower::simd::detail {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace optpower::simd::detail

#endif
