// AVX-512 kernel backend: one 512-bit register covers a whole net block.
// Compiled with -mavx512f -mavx512dq (DQ only for vpmullq in the PCG32
// advance); entered only through the kernel table after a cpuid check.
#include "simd/bitsim_kernel.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#include <immintrin.h>

// GCC's avx512fintrin.h implements the unmasked intrinsics by passing an
// _mm512_undefined_*() source to the masked builtin, which trips
// -Wmaybe-uninitialized after inlining (GCC PR105593).  The values are dead
// by construction; silence the false positive for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace optpower::simd::detail {

namespace {

struct Avx512Ops {
  using V = __m512i;
  static constexpr std::size_t kVecWords = 8;
  static V load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }
  static void store(std::uint64_t* p, V v) { _mm512_storeu_si512(p, v); }
  static V band(V a, V b) { return _mm512_and_epi64(a, b); }
  static V bor(V a, V b) { return _mm512_or_epi64(a, b); }
  static V bxor(V a, V b) { return _mm512_xor_epi64(a, b); }
  static V bnot(V a) { return _mm512_xor_epi64(a, ones()); }
  static bool is_zero(V a) { return _mm512_test_epi64_mask(a, a) == 0; }
  static V zero() { return _mm512_setzero_si512(); }
  static V ones() { return _mm512_set1_epi64(-1); }
};

struct Avx512RngOps {
  using V = __m512i;
  static constexpr std::size_t kVecWords = 8;
  static V load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }
  static void store(std::uint64_t* p, V v) { _mm512_storeu_si512(p, v); }
  static V fold_inc(V inc) {
    return _mm512_mullo_epi64(inc, _mm512_set1_epi64(static_cast<long long>(kPcgMultP1)));
  }
  static V step2(V st, V inc2) {
    return _mm512_add_epi64(
        _mm512_mullo_epi64(st, _mm512_set1_epi64(static_cast<long long>(kPcgMult2))), inc2);
  }
  static std::uint64_t true_mask(V st) {
    const V xs = _mm512_srli_epi64(_mm512_xor_epi64(_mm512_srli_epi64(st, 18), st), 27);
    const V thirty_one = _mm512_set1_epi64(31);
    const V idx =
        _mm512_and_epi64(_mm512_add_epi64(_mm512_srli_epi64(st, 59), thirty_one), thirty_one);
    const V bit = _mm512_srlv_epi64(xs, idx);
    // next_bool is TRUE where the extracted bit is 0.
    const __mmask8 zero_mask = _mm512_test_epi64_mask(bit, _mm512_set1_epi64(1));
    return static_cast<std::uint64_t>(static_cast<std::uint8_t>(~zero_mask));
  }
};

struct Avx512DOps {
  using D = __m512d;
  static constexpr std::size_t kDoubles = 8;
  static D load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, D v) { _mm512_storeu_pd(p, v); }
  static D set1(double v) { return _mm512_set1_pd(v); }
  static D add(D a, D b) { return _mm512_add_pd(a, b); }
  static D sub(D a, D b) { return _mm512_sub_pd(a, b); }
  static D mul(D a, D b) { return _mm512_mul_pd(a, b); }
  static D min(D a, D b) { return _mm512_min_pd(a, b); }
  static D max(D a, D b) { return _mm512_max_pd(a, b); }
  static D floor(D a) {
    return _mm512_roundscale_pd(a, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  }
  static D pow2i(D k) {
    const __m256i k32 = _mm512_cvttpd_epi32(k);  // exact: k is integral, |k| < 2^31
    const __m512i k64 = _mm512_cvtepi32_epi64(k32);
    const __m512i bits = _mm512_slli_epi64(_mm512_add_epi64(k64, _mm512_set1_epi64(1023)), 52);
    return _mm512_castsi512_pd(bits);
  }
};

void draw_bools(StimCtx& ctx) { draw_bools_impl<Avx512RngOps>(ctx); }

void total_power_row(const PowRowArgs& args) { total_power_row_impl<Avx512DOps>(args); }

}  // namespace

const Kernels* avx512_kernels() {
  static const Kernels k{"avx512", &BitsimKernel<Avx512Ops>::step_cycle,
                         &BitsimKernel<Avx512Ops>::step_cycle_timed,
                         &BitsimKernel<Avx512Ops>::settle_full, &draw_bools, &total_power_row};
  return &k;
}

}  // namespace optpower::simd::detail

#else  // TU built without the flags (unsupported compiler probe)

namespace optpower::simd::detail {
const Kernels* avx512_kernels() { return nullptr; }
}  // namespace optpower::simd::detail

#endif
