#include "spice/testbench.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tech/stm_cmos09.h"
#include "util/constants.h"
#include "util/error.h"

namespace optpower {
namespace {

InverterConfig ll_inverter() {
  InverterConfig cfg;
  cfg.nmos = stm_cmos09_ll().reference_transistor();
  return cfg;
}

TEST(Testbench, ChainDelayPositiveAndFinite) {
  const double d = inverter_chain_delay(ll_inverter(), 5, 1.2);
  EXPECT_GT(d, 1e-13);
  EXPECT_LT(d, 1e-9);
}

TEST(Testbench, DelayGrowsAsSupplyDrops) {
  const InverterConfig cfg = ll_inverter();
  double prev = 0.0;
  for (const double vdd : {1.2, 1.0, 0.8, 0.6, 0.5}) {
    const double d = inverter_chain_delay(cfg, 5, vdd);
    EXPECT_GT(d, prev) << "vdd=" << vdd;
    prev = d;
  }
}

TEST(Testbench, RingAndChainAgree) {
  // Two independent measurement methods of the same quantity (the paper's
  // "inverter chains ring oscillators") must agree within a few percent.
  const InverterConfig cfg = ll_inverter();
  const double chain = inverter_chain_delay(cfg, 5, 1.2);
  const double ring = ring_oscillator_stage_delay(cfg, 5, 1.2);
  EXPECT_NEAR(ring / chain, 1.0, 0.10);
}

TEST(Testbench, RingRequiresOddStageCount) {
  EXPECT_THROW((void)ring_oscillator_stage_delay(ll_inverter(), 4, 1.2), InvalidArgument);
}

TEST(Testbench, SubthresholdSweepIsExponential) {
  const MosfetParams nmos = stm_cmos09_ll().reference_transistor();
  const auto sweep = measure_subthreshold(nmos, 1.2, 0.05, 0.25, 9);
  ASSERT_EQ(sweep.vgs.size(), 9u);
  // Slope: one decade per n*Ut*ln(10).
  const double decade_v = nmos.n * thermal_voltage() * std::log(10.0);
  for (std::size_t i = 1; i < sweep.vgs.size(); ++i) {
    EXPECT_GT(sweep.ids[i], sweep.ids[i - 1]);
  }
  const double measured_decades =
      std::log10(sweep.ids.back() / sweep.ids.front());
  const double expected_decades = (sweep.vgs.back() - sweep.vgs.front()) / decade_v;
  EXPECT_NEAR(measured_decades / expected_decades, 1.0, 0.02);
}

TEST(Testbench, InverterLeakageMatchesDeviceOffCurrent) {
  const InverterConfig cfg = ll_inverter();
  const double leak = measure_inverter_leakage(cfg, 1.2);
  const Mosfet ref(cfg.nmos);
  // The supply delivers (through the on PMOS) exactly the NMOS off-current.
  EXPECT_NEAR(leak / ref.off_current(1.2), 1.0, 0.05);
}

TEST(Testbench, LeakageOrderingAcrossFlavors) {
  // HS leaks more than LL leaks more than ULL (Table 2's Vth/Io ordering).
  double leak_ull, leak_ll, leak_hs;
  {
    InverterConfig cfg;
    cfg.nmos = stm_cmos09_ull().reference_transistor();
    leak_ull = measure_inverter_leakage(cfg, 1.2);
    cfg.nmos = stm_cmos09_ll().reference_transistor();
    leak_ll = measure_inverter_leakage(cfg, 1.2);
    cfg.nmos = stm_cmos09_hs().reference_transistor();
    leak_hs = measure_inverter_leakage(cfg, 1.2);
  }
  EXPECT_LT(leak_ull, leak_ll);
  EXPECT_LT(leak_ll, leak_hs);
}

TEST(Testbench, DelaySweepRejectsSubThresholdSupply) {
  EXPECT_THROW((void)measure_delay_vs_vdd(ll_inverter(), {0.2}), InvalidArgument);
}

}  // namespace
}  // namespace optpower
