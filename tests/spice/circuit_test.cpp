#include "spice/circuit.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tech/stm_cmos09.h"
#include "util/error.h"

namespace optpower {
namespace {

TEST(Circuit, ResistorDividerDc) {
  Circuit c;
  const NodeId vin = c.add_node("vin");
  const NodeId mid = c.add_node("mid");
  c.add_dc_source(vin, 1.0);
  c.add_resistor(vin, mid, 1000.0);
  c.add_resistor(mid, kGround, 3000.0);
  const auto v = c.dc_operating_point();
  EXPECT_NEAR(v[static_cast<std::size_t>(mid)], 0.75, 1e-6);
}

TEST(Circuit, SourceCurrentMatchesOhm) {
  Circuit c;
  const NodeId vin = c.add_node("vin");
  c.add_dc_source(vin, 2.0);
  c.add_resistor(vin, kGround, 1000.0);
  const auto v = c.dc_operating_point();
  EXPECT_NEAR(c.source_current(vin, v), 2e-3, 1e-9);
}

TEST(Circuit, RcDischargeMatchesAnalytic) {
  // Cap charged to 1 V decays through R with tau = RC.
  Circuit c;
  const NodeId n = c.add_node("n");
  c.add_resistor(n, kGround, 1e4);
  c.add_capacitor(n, kGround, 1e-12);  // tau = 10 ns
  std::vector<double> init(static_cast<std::size_t>(c.num_nodes()), 0.0);
  init[static_cast<std::size_t>(n)] = 1.0;
  const auto tr = c.transient(50e-9, 0.02e-9, init);
  const double v_end = tr.voltages.back()[static_cast<std::size_t>(n)];
  EXPECT_NEAR(v_end, std::exp(-5.0), 2e-3);  // 5 tau, BE is first order
}

TEST(Circuit, InverterDcTransferEndpoints) {
  const MosfetParams nmos = stm_cmos09_ll().reference_transistor();
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.add_dc_source(vdd, 1.2);
  c.add_dc_source(in, 0.0);
  c.add_nmos(out, in, kGround, nmos);
  c.add_pmos(out, in, vdd, complementary_pmos(nmos));
  const auto v_low_in = c.dc_operating_point();
  EXPECT_NEAR(v_low_in[static_cast<std::size_t>(out)], 1.2, 0.01);
}

TEST(Circuit, InverterOutputLowWhenInputHigh) {
  const MosfetParams nmos = stm_cmos09_ll().reference_transistor();
  Circuit c;
  const NodeId vdd = c.add_node("vdd");
  const NodeId in = c.add_node("in");
  const NodeId out = c.add_node("out");
  c.add_dc_source(vdd, 1.2);
  c.add_dc_source(in, 1.2);
  c.add_nmos(out, in, kGround, nmos);
  c.add_pmos(out, in, vdd, complementary_pmos(nmos));
  std::vector<double> guess(static_cast<std::size_t>(c.num_nodes()), 0.0);
  guess[static_cast<std::size_t>(vdd)] = 1.2;
  guess[static_cast<std::size_t>(in)] = 1.2;
  const auto v = c.dc_operating_point(0.0, guess);
  EXPECT_NEAR(v[static_cast<std::size_t>(out)], 0.0, 0.01);
}

TEST(Circuit, RejectsBadElements) {
  Circuit c;
  const NodeId n = c.add_node("n");
  EXPECT_THROW(c.add_capacitor(n, kGround, -1e-15), InvalidArgument);
  EXPECT_THROW(c.add_resistor(n, 99, 100.0), InvalidArgument);
  c.add_dc_source(n, 1.0);
  EXPECT_THROW(c.add_dc_source(n, 2.0), InvalidArgument);  // double drive
}

TEST(Circuit, TransientRejectsBadTimes) {
  Circuit c;
  (void)c.add_node("n");
  EXPECT_THROW((void)c.transient(0.0, 1e-12), InvalidArgument);
  EXPECT_THROW((void)c.transient(1e-9, 2e-9), InvalidArgument);
}

}  // namespace
}  // namespace optpower
