#include "device/mosfet.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace optpower {
namespace {

MosfetParams ll_params() {
  MosfetParams p;  // defaults approximate STM LL
  return p;
}

TEST(Mosfet, SubthresholdSlopeIsNUt) {
  const Mosfet m(ll_params());
  const double nut = ll_params().n_ut();
  // One decade of current per n*Ut*ln(10) of gate drive below threshold.
  const double i1 = m.saturation_current(-0.2);
  const double i2 = m.saturation_current(-0.2 + nut * std::log(10.0));
  EXPECT_NEAR(i2 / i1, 10.0, 1e-9);
}

TEST(Mosfet, CurrentAtThresholdIsIo) {
  const Mosfet m(ll_params());
  EXPECT_NEAR(m.saturation_current(0.0) / ll_params().io, 1.0, 1e-12);
}

TEST(Mosfet, C1ContinuityAtMatchPoint) {
  const Mosfet m(ll_params());
  const double vswitch = ll_params().match_overdrive();
  const double below = m.saturation_current(vswitch - 1e-9);
  const double above = m.saturation_current(vswitch + 1e-9);
  EXPECT_NEAR(below / above, 1.0, 1e-6);
  // Slope continuity: numerical derivative from both sides agrees to ~0.1%.
  const double h = 1e-7;
  const double slope_below =
      (m.saturation_current(vswitch) - m.saturation_current(vswitch - h)) / h;
  const double slope_above =
      (m.saturation_current(vswitch + h) - m.saturation_current(vswitch)) / h;
  EXPECT_NEAR(slope_below / slope_above, 1.0, 1e-3);
}

TEST(Mosfet, AlphaPowerInStrongInversion) {
  const MosfetParams p = ll_params();
  const Mosfet m(p);
  const double vgt = 0.8;
  const double expected =
      p.io * std::pow(2.718281828459045 * vgt / (p.alpha * p.n_ut()), p.alpha);
  EXPECT_NEAR(m.saturation_current(vgt) / expected, 1.0, 1e-12);
}

TEST(Mosfet, DiblLowersThresholdWithVds) {
  MosfetParams p = ll_params();
  p.eta = 0.08;
  const Mosfet m(p);
  EXPECT_NEAR(m.threshold(0.0), p.vth0, 1e-12);
  EXPECT_NEAR(m.threshold(1.0), p.vth0 - 0.08, 1e-12);
  // More drain bias, more leakage.
  EXPECT_GT(m.off_current(1.2), m.off_current(0.6));
}

TEST(Mosfet, TriodeRegionBelowSaturation) {
  const Mosfet m(ll_params());
  const double vgs = 1.2;
  // Small vds: current rises roughly linearly; saturates at large vds.
  const double i_small = m.drain_current(vgs, 0.05);
  const double i_half = m.drain_current(vgs, 0.3);
  const double i_sat = m.drain_current(vgs, 1.2);
  EXPECT_LT(i_small, i_half);
  EXPECT_LT(i_half, i_sat);
}

TEST(Mosfet, ChannelLengthModulationRaisesSaturatedCurrent) {
  MosfetParams p = ll_params();
  p.lambda = 0.1;
  const Mosfet m(p);
  EXPECT_GT(m.drain_current(1.2, 1.2), m.drain_current(1.2, 0.9));
}

TEST(Mosfet, NegativeVdsMirrorsTerminals) {
  const Mosfet m(ll_params());
  // Id(vgs, -vds) = -Id(vgs + vds_applied...) -- antisymmetric sign at least.
  EXPECT_LT(m.drain_current(1.0, -0.5), 0.0);
}

TEST(Mosfet, TransconductancePositive) {
  const Mosfet m(ll_params());
  EXPECT_GT(m.gm(0.8, 1.0), 0.0);
  EXPECT_GT(m.gds(0.8, 0.2), 0.0);
}

TEST(Mosfet, RejectsBadParameters) {
  MosfetParams p = ll_params();
  p.io = -1.0;
  EXPECT_THROW(Mosfet{p}, InvalidArgument);
  p = ll_params();
  p.alpha = 2.5;
  EXPECT_THROW(Mosfet{p}, InvalidArgument);
  p = ll_params();
  p.n = 0.5;
  EXPECT_THROW(Mosfet{p}, InvalidArgument);
}

TEST(Mosfet, ComplementaryPmosCopiesMagnitudes) {
  const MosfetParams n = ll_params();
  const MosfetParams p = complementary_pmos(n);
  EXPECT_EQ(p.polarity, MosPolarity::kPmos);
  EXPECT_DOUBLE_EQ(p.io, n.io);
  EXPECT_DOUBLE_EQ(p.vth0, n.vth0);
}

class OverdriveSweep : public ::testing::TestWithParam<double> {};

TEST_P(OverdriveSweep, CurrentStrictlyIncreasingInVgt) {
  const Mosfet m(ll_params());
  const double vgt = GetParam();
  EXPECT_GT(m.saturation_current(vgt + 1e-4), m.saturation_current(vgt));
}

INSTANTIATE_TEST_SUITE_P(Overdrives, OverdriveSweep,
                         ::testing::Values(-0.3, -0.1, 0.0, 0.05, 0.064, 0.1, 0.3, 0.8));

}  // namespace
}  // namespace optpower
