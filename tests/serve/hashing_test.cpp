// Cache-key derivation tests: stability (within a process, across forked
// processes, across repeated netlist generation), sensitivity to every
// content-bearing field, insensitivity to delivery metadata, and the
// canonicalization rules that let provably identical requests share an
// entry.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "mult/factory.h"
#include "netlist/netlist.h"
#include "serve/client.h"
#include "serve/hashing.h"
#include "sim/event_sim.h"
#include "report/forward_flow.h"
#include "tech/stm_cmos09.h"

namespace optpower::serve {
namespace {

OptimumRequest base_request() {
  return make_optimum_request("RCA", stm_cmos09_ull(), 10e6);
}

CacheKey key_of(const OptimumRequest& req) {
  ArchHashRegistry registry;
  const std::uint64_t nh = registry.netlist_hash(req.arch_name, static_cast<int>(req.width));
  return derive_cache_key(req, nh, content_hash(req.tech));
}

TEST(ServeHashingTest, NetlistContentHashIsStableAcrossRebuilds) {
  const auto a = content_hash(build_multiplier("RCA", 16).netlist);
  const auto b = content_hash(build_multiplier("RCA", 16).netlist);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, content_hash(build_multiplier("RCA", 8).netlist));
  EXPECT_NE(a, content_hash(build_multiplier("Wallace", 16).netlist));
}

TEST(ServeHashingTest, TechnologyHashIgnoresNameOnly) {
  Technology t = stm_cmos09_ull();
  Technology renamed = t;
  renamed.name = "same-numbers-different-label";
  EXPECT_EQ(content_hash(t), content_hash(renamed));
  Technology tweaked = t;
  tweaked.io *= 1.0000001;
  EXPECT_NE(content_hash(t), content_hash(tweaked));
}

TEST(ServeHashingTest, KeyIsDeterministicAndMetadataFree) {
  const CacheKey a = key_of(base_request());
  const CacheKey b = key_of(base_request());
  EXPECT_EQ(a.material, b.material);
  EXPECT_EQ(a.digest, b.digest);

  // request_id / flags / timeout_ms are delivery metadata: same key.
  OptimumRequest req = base_request();
  req.request_id = 999;
  req.flags = kFlagNoCacheRead | kFlagNoCacheStore;
  req.timeout_ms = 12345;
  EXPECT_EQ(key_of(req).digest, a.digest);
}

TEST(ServeHashingTest, KeyIsSensitiveToEveryContentField) {
  const std::uint64_t base = key_of(base_request()).digest;
  {
    OptimumRequest r = base_request();
    r.frequency *= 2.0;
    EXPECT_NE(key_of(r).digest, base);
  }
  {
    OptimumRequest r = base_request();
    r.seed += 1;
    EXPECT_NE(key_of(r).digest, base);
  }
  {
    OptimumRequest r = base_request();
    r.activity_vectors += 1;
    EXPECT_NE(key_of(r).digest, base);
  }
  {
    OptimumRequest r = base_request();
    r.arch_name = "Wallace";
    EXPECT_NE(key_of(r).digest, base);
  }
  {
    OptimumRequest r = base_request();
    r.tech.zeta *= 1.01;
    EXPECT_NE(key_of(r).digest, base);
  }
  {
    OptimumRequest r = base_request();
    r.io_per_cell_scale = 17.0;
    EXPECT_NE(key_of(r).digest, base);
  }
}

TEST(ServeHashingTest, CanonicalizationMergesProvablyIdenticalRequests) {
  // kBddExact ignores the seed and the delay mode (exact expectation).
  OptimumRequest c = base_request();
  c.activity_source = static_cast<std::uint8_t>(ActivitySource::kBddExact);
  c.seed = 1;
  OptimumRequest d = c;
  d.seed = 2;
  d.delay_mode = static_cast<std::uint8_t>(SimDelayMode::kUnit);
  EXPECT_EQ(key_of(c).digest, key_of(d).digest);

  // The event-sim source keeps both distinctions.
  OptimumRequest e = base_request();
  OptimumRequest f = e;
  f.seed += 1;
  EXPECT_NE(key_of(e).digest, key_of(f).digest);
}

TEST(ServeHashingTest, BitParallelKeysAreDelayModeSensitive) {
  // The bit-parallel engine runs every delay mode, so a kZero request and a
  // glitch-accurate kCellDepth request MUST NOT share a cache entry: their
  // activities (and therefore optima) genuinely differ.
  OptimumRequest a = base_request();
  a.activity_source = static_cast<std::uint8_t>(ActivitySource::kBitParallel);
  a.delay_mode = static_cast<std::uint8_t>(SimDelayMode::kZero);
  OptimumRequest b = a;
  b.delay_mode = static_cast<std::uint8_t>(SimDelayMode::kCellDepth);
  OptimumRequest c = a;
  c.delay_mode = static_cast<std::uint8_t>(SimDelayMode::kUnit);
  EXPECT_NE(key_of(a).digest, key_of(b).digest);
  EXPECT_NE(key_of(a).digest, key_of(c).digest);
  EXPECT_NE(key_of(b).digest, key_of(c).digest);

  // And a bit-parallel request keys differently from the same scalar request
  // only through the activity_source byte - both honor delay_mode now.
  OptimumRequest scalar = b;
  scalar.activity_source = static_cast<std::uint8_t>(ActivitySource::kEventSim);
  EXPECT_NE(key_of(scalar).digest, key_of(b).digest);
}

TEST(ServeHashingTest, KeyDigestIsStableAcrossProcesses) {
  // Fork a child that derives the same key and reports its digest through a
  // pipe: catches any accidental dependence on ASLR, pointer values, or
  // process-local state (e.g. std::hash) sneaking into the material.
  const std::uint64_t parent_digest = key_of(base_request()).digest;
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const std::uint64_t child_digest = key_of(base_request()).digest;
    (void)!::write(pipefd[1], &child_digest, sizeof(child_digest));
    ::_exit(0);
  }
  ::close(pipefd[1]);
  std::uint64_t child_digest = 0;
  ASSERT_EQ(::read(pipefd[0], &child_digest, sizeof(child_digest)),
            static_cast<ssize_t>(sizeof(child_digest)));
  ::close(pipefd[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_EQ(child_digest, parent_digest);
}

TEST(ServeHashingTest, RegistryMemoizesAndRejectsUnknownDesigns) {
  ArchHashRegistry registry;
  const std::uint64_t h1 = registry.netlist_hash("RCA", 16);
  const std::uint64_t h2 = registry.netlist_hash("RCA", 16);
  EXPECT_EQ(h1, h2);
  EXPECT_THROW((void)registry.netlist_hash("no-such-multiplier", 16), InvalidArgument);
}

}  // namespace
}  // namespace optpower::serve
