// Wire-protocol tests: every message type round-trips bit-identically,
// malformed frames are rejected with ServeError (never UB, never a partial
// decode), frame IO over a real socketpair honors EOF/timeout semantics, and
// the MsgType enumerators in serve/msg.h are cross-referenced against
// docs/SERVING.md so the spec cannot silently drift from the code.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/msg.h"
#include "tech/stm_cmos09.h"

namespace optpower::serve {
namespace {

OptimumRequest sample_request() {
  OptimumRequest req;
  req.request_id = 42;
  req.arch_name = "Wallace par4";
  req.width = 16;
  req.tech = stm_cmos09_ull();
  req.frequency = 12.5e6;
  req.activity_source = 1;
  req.activity_vectors = 96;
  req.seed = 0x5eed0001;
  req.delay_mode = 1;
  req.io_per_cell_scale = 16.0;
  req.zeta_cell_scale = 1.25;
  req.flags = kFlagNoCacheStore;
  req.timeout_ms = 1500;
  return req;
}

OptimumResponse sample_response() {
  OptimumResponse resp;
  resp.request_id = 42;
  resp.error = 0;
  resp.point.vdd = 0.5591274328;
  resp.point.vth = 0.2833461;
  resp.point.vth0 = 0.3441;
  resp.point.pdyn = 1.25e-5;
  resp.point.pstat = 3.75e-6;
  resp.point.ptot = 1.625e-5;
  resp.frequency = 12.5e6;
  resp.on_constraint = 1;
  resp.converged = 1;
  resp.activity = 0.10390625;
  resp.cache_key = 0xdeadbeefcafef00dULL;
  resp.served_from_cache = 1;
  resp.worker_id = 3;
  resp.retries = 2;
  resp.cache = CacheStatsWire{10, 4, 1, 3, 256};
  return resp;
}

TEST(ServeMsgTest, OptimumRequestRoundTripsBitIdentically) {
  const OptimumRequest req = sample_request();
  const OptimumRequest back = decode_optimum_request(encode(req));
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_EQ(back.arch_name, req.arch_name);
  EXPECT_EQ(back.width, req.width);
  EXPECT_EQ(back.tech.name, req.tech.name);
  EXPECT_EQ(back.tech.io, req.tech.io);          // doubles travel as bit patterns,
  EXPECT_EQ(back.tech.zeta, req.tech.zeta);      // so == is exact
  EXPECT_EQ(back.tech.vth0_nom, req.tech.vth0_nom);
  EXPECT_EQ(back.frequency, req.frequency);
  EXPECT_EQ(back.activity_source, req.activity_source);
  EXPECT_EQ(back.activity_vectors, req.activity_vectors);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.delay_mode, req.delay_mode);
  EXPECT_EQ(back.io_per_cell_scale, req.io_per_cell_scale);
  EXPECT_EQ(back.zeta_cell_scale, req.zeta_cell_scale);
  EXPECT_EQ(back.flags, req.flags);
  EXPECT_EQ(back.timeout_ms, req.timeout_ms);
}

TEST(ServeMsgTest, OptimumResponseRoundTripsBitIdentically) {
  const OptimumResponse resp = sample_response();
  const OptimumResponse back = decode_optimum_response(encode(resp));
  EXPECT_EQ(back.request_id, resp.request_id);
  EXPECT_EQ(back.error, resp.error);
  EXPECT_EQ(back.point.vdd, resp.point.vdd);
  EXPECT_EQ(back.point.vth, resp.point.vth);
  EXPECT_EQ(back.point.vth0, resp.point.vth0);
  EXPECT_EQ(back.point.pdyn, resp.point.pdyn);
  EXPECT_EQ(back.point.pstat, resp.point.pstat);
  EXPECT_EQ(back.point.ptot, resp.point.ptot);
  EXPECT_EQ(back.frequency, resp.frequency);
  EXPECT_EQ(back.on_constraint, resp.on_constraint);
  EXPECT_EQ(back.converged, resp.converged);
  EXPECT_EQ(back.activity, resp.activity);
  EXPECT_EQ(back.cache_key, resp.cache_key);
  EXPECT_EQ(back.served_from_cache, resp.served_from_cache);
  EXPECT_EQ(back.worker_id, resp.worker_id);
  EXPECT_EQ(back.retries, resp.retries);
  EXPECT_EQ(back.cache.hits, resp.cache.hits);
  EXPECT_EQ(back.cache.misses, resp.cache.misses);
  EXPECT_EQ(back.cache.evictions, resp.cache.evictions);
  EXPECT_EQ(back.cache.entries, resp.cache.entries);
  EXPECT_EQ(back.cache.capacity, resp.cache.capacity);
}

TEST(ServeMsgTest, EveryOtherMessageTypeRoundTrips) {
  HelloRequest hq;
  hq.request_id = 1;
  hq.client_name = "tester";
  EXPECT_EQ(decode_hello_request(encode(hq)).client_name, "tester");

  HelloResponse hr;
  hr.request_id = 1;
  hr.num_workers = 4;
  hr.cache_capacity = 512;
  hr.server_name = "srv";
  const HelloResponse hr2 = decode_hello_response(encode(hr));
  EXPECT_EQ(hr2.num_workers, 4u);
  EXPECT_EQ(hr2.cache_capacity, 512u);
  EXPECT_EQ(hr2.server_name, "srv");

  StatsRequest sq;
  sq.request_id = 7;
  EXPECT_EQ(decode_stats_request(encode(sq)).request_id, 7u);

  StatsResponse sr;
  sr.request_id = 7;
  sr.cache = CacheStatsWire{1, 2, 3, 4, 5};
  sr.requests = 9;
  sr.worker_dispatches = 8;
  sr.retries = 2;
  sr.worker_deaths = 1;
  sr.rejected = 3;
  sr.draining = 1;
  sr.workers.push_back(WorkerStatsWire{0, 1, 5});
  sr.workers.push_back(WorkerStatsWire{1, 0, 3});
  sr.build_version = "1.2.3-4-gabc";
  sr.build_compiler = "gcc 12.2.0";
  sr.simd_backend = "avx512";
  const StatsResponse sr2 = decode_stats_response(encode(sr));
  EXPECT_EQ(sr2.cache.misses, 2u);
  EXPECT_EQ(sr2.requests, 9u);
  EXPECT_EQ(sr2.draining, 1);
  ASSERT_EQ(sr2.workers.size(), 2u);
  EXPECT_EQ(sr2.workers[1].worker_id, 1);
  EXPECT_EQ(sr2.workers[1].served, 3u);
  EXPECT_EQ(sr2.build_version, "1.2.3-4-gabc");
  EXPECT_EQ(sr2.build_compiler, "gcc 12.2.0");
  EXPECT_EQ(sr2.simd_backend, "avx512");

  MetricsRequest mq;
  mq.request_id = 19;
  EXPECT_EQ(decode_metrics_request(encode(mq)).request_id, 19u);

  MetricsResponse mr;
  mr.request_id = 19;
  mr.text = "# TYPE optpower_serve_requests counter\noptpower_serve_requests 9\n";
  const MetricsResponse mr2 = decode_metrics_response(encode(mr));
  EXPECT_EQ(mr2.request_id, 19u);
  EXPECT_EQ(mr2.text, mr.text);

  DrainRequest dq;
  dq.request_id = 11;
  EXPECT_EQ(decode_drain_request(encode(dq)).request_id, 11u);

  DrainResponse dr;
  dr.request_id = 11;
  dr.workers_stopped = 2;
  dr.cache = CacheStatsWire{0, 0, 0, 1, 256};
  const DrainResponse dr2 = decode_drain_response(encode(dr));
  EXPECT_EQ(dr2.workers_stopped, 2u);
  EXPECT_EQ(dr2.cache.capacity, 256u);

  ShutdownRequest xq;
  xq.request_id = 13;
  EXPECT_EQ(decode_shutdown_request(encode(xq)).request_id, 13u);
  ShutdownResponse xr;
  xr.request_id = 13;
  EXPECT_EQ(decode_shutdown_response(encode(xr)).request_id, 13u);

  ErrorResponse er;
  er.request_id = 17;
  er.error = static_cast<std::uint16_t>(ErrorCode::kMalformedFrame);
  er.text = "boom";
  const ErrorResponse er2 = decode_error_response(encode(er));
  EXPECT_EQ(er2.error, static_cast<std::uint16_t>(ErrorCode::kMalformedFrame));
  EXPECT_EQ(er2.text, "boom");
}

TEST(ServeMsgTest, DecodeRejectsWrongTypeTruncationAndTrailingBytes) {
  const Frame good = encode(sample_request());
  EXPECT_THROW((void)decode_stats_request(good), ServeError);  // wrong type

  Frame truncated = good;
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_THROW((void)decode_optimum_request(truncated), ServeError);

  Frame trailing = good;
  trailing.payload.push_back(0);
  EXPECT_THROW((void)decode_optimum_request(trailing), ServeError);

  Frame empty;
  empty.type = MsgType::kOptimumRequest;
  EXPECT_THROW((void)decode_optimum_request(empty), ServeError);
}

TEST(ServeMsgTest, FrameIoRoundTripsOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const Frame sent = encode(sample_response());
  write_frame(sv[0], sent);
  Frame got;
  ASSERT_EQ(read_frame(sv[1], got), IoStatus::kOk);
  EXPECT_EQ(got.type, MsgType::kOptimumResponse);
  EXPECT_EQ(got.payload, sent.payload);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ServeMsgTest, ReadFrameReportsEofOnCleanClose) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[0]);
  Frame got;
  EXPECT_EQ(read_frame(sv[1], got), IoStatus::kEof);
  ::close(sv[1]);
}

TEST(ServeMsgTest, ReadFrameTimesOutOnSilence) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Frame got;
  EXPECT_EQ(read_frame(sv[1], got, 50), IoStatus::kTimeout);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ServeMsgTest, ReadFrameRejectsBadMagicAndOversizedPayload) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::uint8_t garbage[12] = {0xff, 0xff, 0xff, 0xff, 1, 3, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::send(sv[0], garbage, sizeof(garbage), 0), static_cast<ssize_t>(sizeof(garbage)));
  Frame got;
  EXPECT_THROW((void)read_frame(sv[1], got), ServeError);
  ::close(sv[0]);
  ::close(sv[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Valid magic/version/type but an announced payload far over the cap.
  std::uint8_t huge[12] = {0x4f, 0x50, 0x53, 0x31, 1, 3, 0, 0, 0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::send(sv[0], huge, sizeof(huge), 0), static_cast<ssize_t>(sizeof(huge)));
  EXPECT_THROW((void)read_frame(sv[1], got), ServeError);
  ::close(sv[0]);
  ::close(sv[1]);
}

// --- spec cross-reference --------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ServeMsgTest, EveryMsgTypeInHeaderIsDocumentedInServingMd) {
  const std::string header = slurp(std::string(OPTPOWER_SOURCE_DIR) + "/src/serve/msg.h");
  const std::string doc = slurp(std::string(OPTPOWER_SOURCE_DIR) + "/docs/SERVING.md");

  // Pull every `kName = N` enumerator out of the MsgType enum block.
  const std::size_t begin = header.find("enum class MsgType");
  const std::size_t end = header.find("};", begin);
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  const std::string block = header.substr(begin, end - begin);
  const std::regex entry(R"((k[A-Za-z]+)\s*=\s*(\d+))");
  int found = 0;
  for (auto it = std::sregex_iterator(block.begin(), block.end(), entry);
       it != std::sregex_iterator(); ++it, ++found) {
    const std::string name = (*it)[1];
    const std::string value = (*it)[2];
    // The spec table lists each message as `kName` with its numeric type id.
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "MsgType::" << name << " is not documented in docs/SERVING.md";
    EXPECT_NE(doc.find("| " + value + " "), std::string::npos)
        << "type id " << value << " (" << name << ") missing from the SERVING.md table";
  }
  EXPECT_EQ(found, 13) << "MsgType enumerator count changed; update this test AND SERVING.md";
}

TEST(ServeMsgTest, EveryErrorCodeIsDocumentedInServingMd) {
  const std::string header = slurp(std::string(OPTPOWER_SOURCE_DIR) + "/src/serve/msg.h");
  const std::string doc = slurp(std::string(OPTPOWER_SOURCE_DIR) + "/docs/SERVING.md");
  const std::size_t begin = header.find("enum class ErrorCode");
  const std::size_t end = header.find("};", begin);
  ASSERT_NE(begin, std::string::npos);
  const std::string block = header.substr(begin, end - begin);
  const std::regex entry(R"((k[A-Za-z]+)\s*=\s*(\d+))");
  int found = 0;
  for (auto it = std::sregex_iterator(block.begin(), block.end(), entry);
       it != std::sregex_iterator(); ++it, ++found) {
    const std::string name = (*it)[1];
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "ErrorCode::" << name << " is not documented in docs/SERVING.md";
  }
  EXPECT_EQ(found, 11) << "ErrorCode enumerator count changed; update this test AND SERVING.md";
}

}  // namespace
}  // namespace optpower::serve
