// Fleet integration tests: bit-identity of fleet answers against the serial
// library path for every Table-1 family, counter-verified cache hits with no
// simulator invocation, worker-death retry transparency, the full socket
// round trip, and (in the Parallel-named suite, thread transport, TSan-safe)
// graceful drain under concurrent in-flight load.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "mult/factory.h"
#include "report/forward_flow.h"
#include "serve/client.h"
#include "serve/controller.h"
#include "tech/stm_cmos09.h"

namespace optpower::serve {
namespace {

constexpr double kFrequency = 10e6;
constexpr int kVectors = 32;  // smaller testbench than the default 96: the
                              // bit-identity claim is seed-for-seed anyway

OptimumRequest request_for(const std::string& arch) {
  OptimumRequest req = make_optimum_request(arch, stm_cmos09_ull(), kFrequency);
  req.activity_vectors = kVectors;
  return req;
}

ForwardFlowOptions serial_options() {
  ForwardFlowOptions options;
  options.activity_vectors = kVectors;
  return options;
}

void expect_bit_identical(const OptimumResponse& fleet, const ForwardResult& serial,
                          const std::string& arch) {
  EXPECT_EQ(fleet.error, 0) << arch << ": " << fleet.error_text;
  EXPECT_EQ(fleet.point.vdd, serial.optimum.vdd) << arch;
  EXPECT_EQ(fleet.point.vth, serial.optimum.vth) << arch;
  EXPECT_EQ(fleet.point.vth0, serial.optimum.vth0) << arch;
  EXPECT_EQ(fleet.point.pdyn, serial.optimum.pdyn) << arch;
  EXPECT_EQ(fleet.point.pstat, serial.optimum.pstat) << arch;
  EXPECT_EQ(fleet.point.ptot, serial.optimum.ptot) << arch;
  EXPECT_EQ(fleet.activity, serial.character.activity.activity) << arch;
}

TEST(ServeFleetTest, AllFamiliesBitIdenticalToSerialLibraryPath) {
  ControllerOptions opts;
  opts.num_workers = 2;
  Controller controller(opts);
  controller.start();

  const Technology tech = stm_cmos09_ull();
  for (const std::string& arch : multiplier_names()) {
    const OptimumResponse fleet = controller.handle_optimum(request_for(arch));
    const ForwardResult serial = run_forward_flow(arch, tech, kFrequency, serial_options());
    expect_bit_identical(fleet, serial, arch);
    EXPECT_EQ(fleet.served_from_cache, 0) << arch;
    EXPECT_GE(fleet.worker_id, 0) << arch;
  }
  controller.stop();
}

TEST(ServeFleetTest, RepeatedQueryIsServedFromCacheWithoutDispatch) {
  ControllerOptions opts;
  opts.num_workers = 2;
  Controller controller(opts);
  controller.start();

  const OptimumRequest req = request_for("RCA");
  const OptimumResponse first = controller.handle_optimum(req);
  ASSERT_EQ(first.error, 0) << first.error_text;
  EXPECT_EQ(first.served_from_cache, 0);
  const ControllerStats after_miss = controller.stats_snapshot();
  EXPECT_EQ(after_miss.worker_dispatches, 1u);
  EXPECT_EQ(after_miss.cache.misses, 1u);
  EXPECT_EQ(after_miss.cache.hits, 0u);

  const OptimumResponse second = controller.handle_optimum(req);
  EXPECT_EQ(second.served_from_cache, 1);
  EXPECT_EQ(second.worker_id, -1);
  EXPECT_EQ(second.cache_key, first.cache_key);
  // The cached answer is byte-for-byte the computed one.
  EXPECT_EQ(second.point.vdd, first.point.vdd);
  EXPECT_EQ(second.point.ptot, first.point.ptot);
  EXPECT_EQ(second.activity, first.activity);

  // No simulator invocation on the hit: the dispatch counter is unchanged.
  const ControllerStats after_hit = controller.stats_snapshot();
  EXPECT_EQ(after_hit.worker_dispatches, 1u);
  EXPECT_EQ(after_hit.cache.hits, 1u);

  // kFlagNoCacheRead forces a recompute and its answer matches the cache.
  OptimumRequest fresh = req;
  fresh.flags = kFlagNoCacheRead;
  const OptimumResponse third = controller.handle_optimum(fresh);
  EXPECT_EQ(third.served_from_cache, 0);
  EXPECT_EQ(third.point.ptot, first.point.ptot);
  EXPECT_EQ(controller.stats_snapshot().worker_dispatches, 2u);
  controller.stop();
}

TEST(ServeFleetTest, WorkerDeathRetriesTransparentlyAndBitIdentically) {
  ControllerOptions opts;
  opts.num_workers = 2;
  Controller controller(opts);
  controller.start();

  const OptimumRequest req = request_for("RCA");
  const OptimumResponse first = controller.handle_optimum(req);
  ASSERT_EQ(first.error, 0) << first.error_text;
  ASSERT_GE(first.worker_id, 0);

  // Kill the worker that owns this key's shard; the deterministic shard mode
  // sends the recompute straight at the corpse, forcing the retry path.
  const std::vector<pid_t> pids = controller.worker_pids();
  ASSERT_EQ(pids.size(), 2u);
  ::kill(pids[static_cast<std::size_t>(first.worker_id)], SIGKILL);

  OptimumRequest fresh = req;
  fresh.flags = kFlagNoCacheRead;
  const OptimumResponse retried = controller.handle_optimum(fresh);
  EXPECT_EQ(retried.error, 0) << retried.error_text;
  EXPECT_GE(retried.retries, 1u);
  EXPECT_NE(retried.worker_id, first.worker_id);
  // The survivor computes the identical answer.
  EXPECT_EQ(retried.point.vdd, first.point.vdd);
  EXPECT_EQ(retried.point.vth, first.point.vth);
  EXPECT_EQ(retried.point.ptot, first.point.ptot);
  EXPECT_EQ(retried.activity, first.activity);

  const ControllerStats stats = controller.stats_snapshot();
  EXPECT_GE(stats.worker_deaths, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(controller.worker_pids().size(), 1u);
  controller.stop();
}

TEST(ServeFleetTest, FullSocketRoundTripServesHelloQueryStatsDrainShutdown) {
  const std::string path = "/tmp/optpower_fleet_test_" + std::to_string(::getpid()) + ".sock";
  ControllerOptions opts;
  opts.num_workers = 2;
  Controller controller(opts);
  controller.start();  // fork first, listener thread second
  controller.listen_unix(path);

  ServeClient client;
  client.connect_unix(path);
  const HelloResponse hello = client.hello("fleet_test");
  EXPECT_EQ(hello.num_workers, 2u);
  EXPECT_EQ(hello.server_name, "optpower-serve");

  const OptimumResponse resp = client.optimum(request_for("RCA"));
  EXPECT_EQ(resp.error, 0) << resp.error_text;
  const ForwardResult serial = run_forward_flow("RCA", stm_cmos09_ull(), kFrequency,
                                                serial_options());
  expect_bit_identical(resp, serial, "RCA");

  const StatsResponse stats = client.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.worker_dispatches, 1u);
  ASSERT_EQ(stats.workers.size(), 2u);

  const DrainResponse drained = client.drain();
  EXPECT_EQ(drained.workers_stopped, 2u);

  // Cache hits survive the drain; cold misses are refused.
  const OptimumResponse hit = client.optimum(request_for("RCA"));
  EXPECT_EQ(hit.served_from_cache, 1);
  OptimumResponse miss = client.optimum(request_for("Wallace"));
  EXPECT_EQ(miss.error, static_cast<std::uint16_t>(ErrorCode::kDraining));

  (void)client.shutdown();
  controller.wait();
  controller.stop();
}

// Named to match the sanitizer CI filter (ThreadPool|ExecContext|Parallel):
// this suite runs under TSan, so it uses the thread transport - fork without
// exec is off the table there, and the drain/dispatch races it hunts live in
// the controller, which is transport-agnostic shared code.
TEST(ServeParallelDrainTest, DrainUnderInFlightLoadIsGracefulAndRaceFree) {
  ControllerOptions opts;
  opts.num_workers = 2;
  opts.transport = WorkerTransport::kThread;
  Controller controller(opts);
  controller.start();

  // Warm one entry so post-drain cache service can be asserted.
  OptimumRequest warm = request_for("RCA");
  warm.activity_vectors = 8;
  ASSERT_EQ(controller.handle_optimum(warm).error, 0);

  std::atomic<int> ok{0};
  std::atomic<int> draining{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  clients.reserve(3);
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        OptimumRequest req = request_for("RCA");
        req.activity_vectors = 8;
        req.seed = 0x1000u + static_cast<std::uint64_t>(t * 16 + i);  // distinct misses
        const OptimumResponse resp = controller.handle_optimum(req);
        if (resp.error == 0) {
          ok.fetch_add(1);
        } else if (resp.error == static_cast<std::uint16_t>(ErrorCode::kDraining)) {
          draining.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  controller.drain();  // races the in-flight computes by design
  for (auto& thread : clients) thread.join();

  // Every request resolved to a clean verdict: computed before the drain
  // finished, or refused as draining - never lost, never an internal error.
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + draining.load(), 12);

  const ControllerStats stats = controller.stats_snapshot();
  EXPECT_TRUE(stats.draining);
  for (const WorkerStatsWire& w : stats.workers) EXPECT_EQ(w.alive, 0);

  // The warmed entry is still served from cache after the fleet is gone.
  const OptimumResponse hit = controller.handle_optimum(warm);
  EXPECT_EQ(hit.served_from_cache, 1);
  controller.stop();
}

}  // namespace
}  // namespace optpower::serve
