// ResultCache tests: hit/miss/eviction accounting, LRU ordering under
// recency refresh, the capacity-0 disabled mode, and counter persistence
// across clear().
#include <gtest/gtest.h>

#include <string>

#include "serve/cache.h"

namespace optpower::serve {
namespace {

OptimumResponse value(double vdd) {
  OptimumResponse resp;
  resp.point.vdd = vdd;
  return resp;
}

TEST(ServeCacheTest, CountsHitsAndMisses) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.lookup("a").has_value());
  cache.insert("a", value(0.5));
  const auto hit = cache.lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->point.vdd, 0.5);
  EXPECT_FALSE(cache.lookup("b").has_value());

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.capacity, 4u);
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert("a", value(1.0));
  cache.insert("b", value(2.0));
  ASSERT_TRUE(cache.lookup("a").has_value());  // refresh "a": "b" is now LRU
  cache.insert("c", value(3.0));               // evicts "b"

  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(ServeCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  cache.insert("a", value(1.0));
  cache.insert("b", value(2.0));
  cache.insert("a", value(9.0));  // refresh + overwrite, no eviction
  cache.insert("c", value(3.0));  // evicts "b", not "a"

  const auto a = cache.lookup("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->point.vdd, 9.0);
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeCacheTest, CapacityZeroDisablesStorage) {
  ResultCache cache(0);
  cache.insert("a", value(1.0));
  EXPECT_FALSE(cache.lookup("a").has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(ServeCacheTest, ClearDropsEntriesButKeepsLifetimeCounters) {
  ResultCache cache(4);
  cache.insert("a", value(1.0));
  ASSERT_TRUE(cache.lookup("a").has_value());
  cache.clear();
  EXPECT_FALSE(cache.lookup("a").has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 1u);    // lifetime totals survive the clear
  EXPECT_EQ(s.misses, 1u);
}

}  // namespace
}  // namespace optpower::serve
