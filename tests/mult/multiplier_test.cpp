// Functional and structural tests of the thirteen multiplier architectures:
// every netlist must compute exact products through the event simulator
// (with latency discovered once and then required to be constant), and the
// family must reproduce the paper's structural orderings.
#include "mult/factory.h"

#include <cctype>

#include <gtest/gtest.h>

#include "mult/array.h"
#include "mult/sequential.h"
#include "mult/wallace.h"
#include "netlist/transform.h"
#include "sim/activity.h"
#include "sim/event_sim.h"
#include "sta/sta.h"
#include "util/error.h"
#include "util/random.h"

namespace optpower {
namespace {

std::vector<bool> pack_operands(std::uint64_t a, std::uint64_t b, int width) {
  std::vector<bool> v(static_cast<std::size_t>(2 * width));
  for (int i = 0; i < width; ++i) {
    v[static_cast<std::size_t>(i)] = (a >> i) & 1;
    v[static_cast<std::size_t>(width + i)] = (b >> i) & 1;
  }
  return v;
}

/// Streams `periods` random operand pairs through the design and checks the
/// output stream equals the expected products at a constant latency
/// (discovered from the first few outputs).
void check_multiplier_stream(const GeneratedMultiplier& g, int periods, std::uint64_t seed,
                             SimDelayMode mode = SimDelayMode::kUnit) {
  EventSimulator sim(g.netlist, mode);
  Pcg32 rng(seed);
  std::vector<std::uint64_t> expected, got;
  for (int p = 0; p < periods; ++p) {
    const std::uint64_t a = rng.next_bits(g.width);
    const std::uint64_t b = rng.next_bits(g.width);
    expected.push_back(a * b);
    sim.set_inputs(pack_operands(a, b, g.width));
    for (int c = 0; c < g.cycles_per_result; ++c) sim.step_cycle();
    got.push_back(sim.outputs_word());
  }
  int latency = -1;
  for (int cand = 0; cand <= 8 && latency < 0; ++cand) {
    bool ok = true;
    for (int p = cand + 2; p < periods; ++p) {
      if (got[static_cast<std::size_t>(p)] != expected[static_cast<std::size_t>(p - cand)]) {
        ok = false;
        break;
      }
    }
    if (ok) latency = cand;
  }
  ASSERT_GE(latency, 0) << g.name << ": no constant latency <= 8 periods matches the stream";
  // Every post-warmup output must match (not just most).
  for (int p = latency + 2; p < periods; ++p) {
    EXPECT_EQ(got[static_cast<std::size_t>(p)], expected[static_cast<std::size_t>(p - latency)])
        << g.name << " period " << p;
  }
}

class AllMultipliers : public ::testing::TestWithParam<std::string> {};

TEST_P(AllMultipliers, ComputesExactProductsWidth8) {
  const GeneratedMultiplier g = build_multiplier(GetParam(), 8);
  check_multiplier_stream(g, 48, 0xabc1);
}

TEST_P(AllMultipliers, ComputesExactProductsWidth16) {
  const GeneratedMultiplier g = build_multiplier(GetParam(), 16);
  check_multiplier_stream(g, 24, 0xabc2);
}

TEST_P(AllMultipliers, CorrectUnderTimedDelaysToo) {
  // Glitches must never corrupt the settled result.
  const GeneratedMultiplier g = build_multiplier(GetParam(), 8);
  check_multiplier_stream(g, 24, 0xabc3, SimDelayMode::kCellDepth);
}

TEST_P(AllMultipliers, NetlistVerifies) {
  const GeneratedMultiplier g = build_multiplier(GetParam(), 16);
  EXPECT_NO_THROW(g.netlist.verify());
  EXPECT_GT(g.netlist.stats().num_cells, 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperSet, AllMultipliers,
                         ::testing::ValuesIn(multiplier_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string s = info.param;
                           for (char& c : s) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return s;
                         });

TEST(MultiplierFactory, RejectsUnknownName) {
  EXPECT_THROW((void)build_multiplier("Booth"), InvalidArgument);
}

TEST(MultiplierFactory, CornerOperandsWidth16) {
  // Zero, one, all-ones and single-bit patterns on the two fastest designs.
  for (const char* name : {"RCA", "Wallace"}) {
    const GeneratedMultiplier g = build_multiplier(name, 16);
    EventSimulator sim(g.netlist, SimDelayMode::kUnit);
    const std::uint64_t cases[][2] = {
        {0, 0}, {0, 65535}, {1, 65535}, {65535, 65535}, {32768, 32768}, {1, 1}, {43690, 21845}};
    for (const auto& c : cases) {
      sim.set_inputs(pack_operands(c[0], c[1], 16));
      sim.step_cycle();
      EXPECT_EQ(sim.outputs_word(), c[0] * c[1]) << name << " " << c[0] << "*" << c[1];
    }
  }
}

// --- structural orderings from Section 4 of the paper ----------------------

TEST(MultiplierStructure, WallaceShorterThanRca) {
  const auto rca = analyze_timing(build_multiplier("RCA", 16).netlist);
  const auto wal = analyze_timing(build_multiplier("Wallace", 16).netlist);
  EXPECT_LT(wal.critical_path_units, 0.6 * rca.critical_path_units);
}

TEST(MultiplierStructure, PipeliningShortensLogicDepth) {
  const double base = analyze_timing(build_multiplier("RCA", 16).netlist).critical_path_units;
  const double h2 =
      analyze_timing(build_multiplier("RCA hor.pipe2", 16).netlist).critical_path_units;
  const double h4 =
      analyze_timing(build_multiplier("RCA hor.pipe4", 16).netlist).critical_path_units;
  EXPECT_LT(h2, base);
  EXPECT_LT(h4, h2);
  // "although not exactly divided by 2 or 4" - check it is a partial cut.
  EXPECT_GT(h2, base / 2.0 * 0.8);
}

TEST(MultiplierStructure, DiagonalCutsDeeperThanHorizontal) {
  // Figure 3 vs Figure 4: the diagonal cut yields a shorter per-stage path.
  const double h2 =
      analyze_timing(build_multiplier("RCA hor.pipe2", 16).netlist).critical_path_units;
  const double d2 =
      analyze_timing(build_multiplier("RCA diagpipe2", 16).netlist).critical_path_units;
  EXPECT_LE(d2, h2);
}

TEST(MultiplierStructure, ParallelizationRelaxesEffectiveDepth) {
  const auto base = build_multiplier("Wallace", 16);
  const auto par2 = build_multiplier("Wallace parallel", 16);
  const auto par4 = build_multiplier("Wallace par4", 16);
  const double ld0 = effective_logic_depth(
      analyze_timing(base.netlist).critical_path_units, base.cycles_per_result, base.ways);
  const double ld2 = effective_logic_depth(
      analyze_timing(par2.netlist).critical_path_units, par2.cycles_per_result, par2.ways);
  const double ld4 = effective_logic_depth(
      analyze_timing(par4.netlist).critical_path_units, par4.cycles_per_result, par4.ways);
  EXPECT_LT(ld2, ld0);
  EXPECT_LT(ld4, ld2);
  // ... at more than double the cells.
  EXPECT_GT(par2.netlist.stats().num_cells, 2 * base.netlist.stats().num_cells);
}

TEST(MultiplierStructure, SequentialIsSmallButEffectivelyDeep) {
  const auto seq = build_multiplier("Sequential", 16);
  const auto rca = build_multiplier("RCA", 16);
  EXPECT_LT(seq.netlist.stats().num_cells, rca.netlist.stats().num_cells);
  const double ld_seq = effective_logic_depth(
      analyze_timing(seq.netlist).critical_path_units, seq.cycles_per_result, seq.ways);
  const double ld_rca = effective_logic_depth(
      analyze_timing(rca.netlist).critical_path_units, rca.cycles_per_result, rca.ways);
  EXPECT_GT(ld_seq, 2.0 * ld_rca);
}

TEST(MultiplierActivity, DiagonalPipelineGlitchesMoreThanHorizontal) {
  // The paper's key pipelining observation: "a diagonal pipeline, presenting
  // a shorter logical depth than the horizontal one, was penalized due to
  // the increased number of glitches (reflected by the increase in
  // activity)."
  ActivityOptions opt;
  opt.num_vectors = 64;
  const auto hor = measure_activity(build_multiplier("RCA hor.pipe4", 16).netlist, opt);
  const auto diag = measure_activity(build_multiplier("RCA diagpipe4", 16).netlist, opt);
  EXPECT_GT(diag.activity, hor.activity);
  EXPECT_GT(diag.glitch_fraction, hor.glitch_fraction);
}

TEST(MultiplierActivity, SequentialActivityExceedsOne) {
  // "the activity ... can be very high and even bigger than 1 in some cases".
  ActivityOptions opt;
  opt.num_vectors = 32;
  opt.cycles_per_vector = 16;
  const auto seq = measure_activity(build_multiplier("Sequential", 16).netlist, opt);
  EXPECT_GT(seq.activity, 1.0);
}

TEST(MultiplierActivity, ParallelizationReducesActivity) {
  ActivityOptions opt;
  opt.num_vectors = 64;
  const auto base = measure_activity(build_multiplier("RCA", 16).netlist, opt);
  const auto par = measure_activity(build_multiplier("RCA parallel", 16).netlist, opt);
  EXPECT_LT(par.activity, base.activity);
}

class WidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WidthSweep, RcaAndWallaceCorrectAcrossWidths) {
  const int width = GetParam();
  check_multiplier_stream(build_multiplier("RCA", width), 32, 0x11);
  check_multiplier_stream(build_multiplier("Wallace", width), 32, 0x22);
}

TEST_P(WidthSweep, SequentialCorrectAcrossWidths) {
  const int width = GetParam();
  check_multiplier_stream(build_multiplier("Sequential", width), 24, 0x33);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep, ::testing::Values(4, 8, 16));

}  // namespace
}  // namespace optpower
