// Word-level (BMD backward-substitution) proofs: the checker that carries
// the 16x16 acceptance criterion.  Every multiplier family is proven equal
// to p = a * b at width 16 - combinational ones monolithically, pipelines
// by structural settling, cyclic-control ones by orbit unrolling (the basic
// add-and-shift multiplier falls back to the bounded-window theorem, which
// the test asserts explicitly).  Mutants must be refuted with replayed
// counterexamples at full width.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "bdd/equiv.h"
#include "mult/array.h"
#include "mult/factory.h"
#include "mult/sequential.h"
#include "mult/wallace.h"
#include "netlist/cell.h"
#include "netlist/transform.h"

namespace optpower {
namespace {

TEST(WordEquivTest, Array16MatchesSpec) {
  const EquivResult r = check_multiplier_word_level(array_multiplier(16), 16);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.proven);
  EXPECT_FALSE(r.bounded);
  EXPECT_EQ(r.collapsed_regions, 0u);  // pure ripple: no carry-select to collapse
}

TEST(WordEquivTest, Wallace16MatchesSpecViaAdderCollapse) {
  const EquivResult r = check_multiplier_word_level(wallace_multiplier(16), 16);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.proven);
  EXPECT_FALSE(r.bounded);
  // The carry-select final adder must have been proven + collapsed.
  EXPECT_GE(r.collapsed_regions, 1u);
}

TEST(WordEquivTest, Pipelined16MatchesSpecAtItsLatency) {
  const EquivResult hp = check_multiplier_word_level(array_multiplier_hpipe(16, 2), 16);
  EXPECT_TRUE(hp.equivalent);
  EXPECT_TRUE(hp.proven);
  EXPECT_FALSE(hp.bounded);
  EXPECT_EQ(hp.matched_at_cycle, 2);  // latency = stages - 1, observed at cycle 2

  const EquivResult dp = check_multiplier_word_level(array_multiplier_dpipe(16, 4), 16);
  EXPECT_TRUE(dp.equivalent);
  EXPECT_TRUE(dp.proven);
  EXPECT_EQ(dp.matched_at_cycle, 4);
}

TEST(WordEquivTest, SequentialFourBitsPerCycle16MatchesSpec) {
  // "Seq4_16": the paper's 4-bits-per-cycle add-and-shift at full width.
  const GeneratedMultiplier g = build_multiplier("Seq4_16", 16);
  const EquivResult r = check_multiplier_word_level(g.netlist, 16);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.proven);
  EXPECT_GE(r.collapsed_regions, 1u);
}

TEST(WordEquivTest, SequentialBitSerial8IsProvenUnbounded) {
  // The 1-bit-per-cycle machine at width 8: closure may or may not be
  // word-tractable depending on alignment; the verdict must be a proof.
  const EquivResult r = check_multiplier_word_level(sequential_multiplier(8), 8);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.proven);
}

TEST(WordEquivTest, SequentialBitSerial16BoundedWindowProof) {
  // The width-16 bit-serial machine: its shift registers hold bit-reversed
  // product words, so state closure is word-level intractable and the
  // checker must fall back to the bounded steady-window theorem (all
  // operand values, every steady cycle of the first period).  ~25 s in
  // Release - opt in via OPTPOWER_BDD_HEAVY=1 (the CI bench job does).
  const char* heavy = std::getenv("OPTPOWER_BDD_HEAVY");
  if (heavy == nullptr || std::string(heavy) != "1") {
    GTEST_SKIP() << "set OPTPOWER_BDD_HEAVY=1 to run the 16-bit bit-serial proof";
  }
  const EquivResult r = check_multiplier_word_level(sequential_multiplier(16), 16);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.proven);
  EXPECT_TRUE(r.bounded);
}

TEST(WordEquivTest, SeqParallel16MatchesSpec) {
  const GeneratedMultiplier g = build_multiplier("Seq parallel", 16);
  const EquivResult r = check_multiplier_word_level(g.netlist, 16);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.proven);
}

TEST(WordEquivTest, MutatedArray16YieldsReplayedCounterexample) {
  const Netlist good = array_multiplier(16);
  CellId victim = Netlist::kNoCell;
  for (CellId c = 0; c < good.num_cells(); ++c) {
    if (good.cell(c).type == CellType::kAnd2) victim = c;  // last partial product
  }
  ASSERT_NE(victim, Netlist::kNoCell);
  const Netlist bad = replace_cell_type(good, victim, CellType::kOr2);
  const EquivResult r = check_multiplier_word_level(bad, 16);
  EXPECT_FALSE(r.equivalent);
  EXPECT_TRUE(r.proven);
  ASSERT_TRUE(r.counterexample.has_value());
  const EquivCounterexample& cx = *r.counterexample;
  EXPECT_TRUE(cx.replay_confirms);
  EXPECT_EQ(cx.simulated, cx.predicted);
  EXPECT_NE(cx.simulated, cx.expected);
  EXPECT_EQ(cx.expected, cx.a * cx.b);
}

TEST(WordEquivTest, MutatedWallaceTreeIsRefutedOrRejected) {
  // A mutation inside the compressor tree either produces a counterexample
  // (tree cut) or fails a region proof (collapse bails) - never a false
  // "equivalent".
  const Netlist good = wallace_multiplier(12);
  CellId victim = Netlist::kNoCell;
  for (CellId c = 0; c < good.num_cells(); ++c) {
    if (good.cell(c).type == CellType::kAnd2) victim = c;  // deepest partial product
  }
  ASSERT_NE(victim, Netlist::kNoCell);
  const Netlist bad = replace_cell_type(good, victim, CellType::kOr2);
  const EquivResult r = check_multiplier_word_level(bad, 12);
  EXPECT_FALSE(r.equivalent && r.proven);
}

TEST(WordEquivTest, AgreesWithBitLevelCheckerAtSharedWidths) {
  // The two engines must agree family-by-family where both are tractable.
  for (const char* name : {"RCA", "Wallace", "Seq4_16"}) {
    const GeneratedMultiplier g = build_multiplier(name, 8);
    const EquivResult word = check_multiplier_word_level(g.netlist, 8);
    const EquivResult bit = check_multiplier_against_spec(g.netlist, 8);
    EXPECT_TRUE(word.equivalent) << name;
    EXPECT_TRUE(bit.equivalent) << name;
    EXPECT_EQ(word.proven && bit.proven, true) << name;
  }
}

}  // namespace
}  // namespace optpower
