// Core engine checks: canonicity (hash-consing), operator semantics against
// exhaustive truth tables, probability propagation against enumeration,
// satisfying-assignment extraction, node budgets, and the BMD word engine.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "bdd/bdd.h"
#include "bdd/bmd.h"
#include "util/error.h"
#include "util/random.h"

namespace optpower {
namespace {

TEST(BddEngineTest, TerminalsAndVariables) {
  BddManager m(3);
  EXPECT_EQ(BddManager::constant(false), kBddFalse);
  EXPECT_EQ(BddManager::constant(true), kBddTrue);
  EXPECT_EQ(m.num_vars(), 3);
  EXPECT_NE(m.var(0), m.var(1));
  EXPECT_EQ(m.var(2), m.var(2));  // interned
  EXPECT_EQ(m.bdd_not(m.bdd_not(m.var(1))), m.var(1));
}

TEST(BddEngineTest, IteMatchesTruthTableExhaustively) {
  // All 256 three-input functions, built as ITE trees over minterms, must
  // evaluate exactly like their defining table.
  BddManager m(3);
  for (int truth = 0; truth < 256; ++truth) {
    BddRef f = kBddFalse;
    for (int row = 0; row < 8; ++row) {
      if (((truth >> row) & 1) == 0) continue;
      BddRef minterm = kBddTrue;
      for (int v = 0; v < 3; ++v) {
        minterm = m.bdd_and(minterm, ((row >> v) & 1) != 0 ? m.var(v) : m.nvar(v));
      }
      f = m.bdd_or(f, minterm);
    }
    for (int row = 0; row < 8; ++row) {
      std::vector<char> assignment = {static_cast<char>(row & 1),
                                      static_cast<char>((row >> 1) & 1),
                                      static_cast<char>((row >> 2) & 1)};
      EXPECT_EQ(m.eval(f, assignment), ((truth >> row) & 1) != 0)
          << "truth " << truth << " row " << row;
    }
  }
}

TEST(BddEngineTest, CanonicityMakesEqualityARefCompare) {
  BddManager m(4);
  // (a & b) | (a & c)  ==  a & (b | c)
  const BddRef lhs = m.bdd_or(m.bdd_and(m.var(0), m.var(1)), m.bdd_and(m.var(0), m.var(2)));
  const BddRef rhs = m.bdd_and(m.var(0), m.bdd_or(m.var(1), m.var(2)));
  EXPECT_EQ(lhs, rhs);
  // XOR via two different formulations.
  const BddRef x1 = m.bdd_xor(m.var(2), m.var(3));
  const BddRef x2 = m.bdd_or(m.bdd_and(m.var(2), m.bdd_not(m.var(3))),
                             m.bdd_and(m.bdd_not(m.var(2)), m.var(3)));
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(m.ite(m.var(0), lhs, lhs), lhs);  // redundant test collapses
}

TEST(BddEngineTest, FullAddMatchesArithmetic) {
  BddManager m(3);
  const BddManager::BitSum s = m.full_add(m.var(0), m.var(1), m.var(2));
  for (int row = 0; row < 8; ++row) {
    std::vector<char> assignment = {static_cast<char>(row & 1),
                                    static_cast<char>((row >> 1) & 1),
                                    static_cast<char>((row >> 2) & 1)};
    const int total = (row & 1) + ((row >> 1) & 1) + ((row >> 2) & 1);
    EXPECT_EQ(m.eval(s.sum, assignment), (total & 1) != 0);
    EXPECT_EQ(m.eval(s.carry, assignment), total >= 2);
  }
}

TEST(BddEngineTest, ProbabilityMatchesEnumeration) {
  BddManager m(4);
  m.set_var_probability(0, 0.5);
  m.set_var_probability(1, 0.25);
  m.set_var_probability(2, 0.75);
  m.set_var_probability(3, 0.1);
  const double p[] = {0.5, 0.25, 0.75, 0.1};
  // f = (v0 & v1) ^ (v2 | ~v3)
  const BddRef f =
      m.bdd_xor(m.bdd_and(m.var(0), m.var(1)), m.bdd_or(m.var(2), m.bdd_not(m.var(3))));
  double expected = 0.0;
  for (int row = 0; row < 16; ++row) {
    std::vector<char> assignment(4);
    double weight = 1.0;
    for (int v = 0; v < 4; ++v) {
      assignment[v] = static_cast<char>((row >> v) & 1);
      weight *= assignment[v] != 0 ? p[v] : (1.0 - p[v]);
    }
    if (m.eval(f, assignment)) expected += weight;
  }
  EXPECT_NEAR(m.probability(f), expected, 1e-12);
  // The cache must survive repeated queries bit-identically.
  EXPECT_EQ(m.probability(f), m.probability(f));
}

TEST(BddEngineTest, FindSatReturnsASatisfyingAssignment) {
  BddManager m(5);
  BddRef f = kBddTrue;
  // v0 & ~v2 & v4
  f = m.bdd_and(f, m.var(0));
  f = m.bdd_and(f, m.nvar(2));
  f = m.bdd_and(f, m.var(4));
  const std::vector<char> assignment = m.find_sat(f);
  EXPECT_TRUE(m.eval(f, assignment));
  EXPECT_EQ(assignment[0], 1);
  EXPECT_EQ(assignment[2], 0);
  EXPECT_EQ(assignment[4], 1);
  EXPECT_THROW((void)m.find_sat(kBddFalse), InvalidArgument);
}

TEST(BddEngineTest, DagSizeCountsSharedStructureOnce) {
  BddManager m(3);
  const BddRef x = m.bdd_xor(m.var(0), m.var(1));
  // x xor x collapses to false; (x & v2) | (x & ~v2) collapses to x.
  EXPECT_EQ(m.bdd_xor(x, x), kBddFalse);
  EXPECT_EQ(m.bdd_or(m.bdd_and(x, m.var(2)), m.bdd_and(x, m.nvar(2))), x);
  EXPECT_EQ(m.dag_size(kBddTrue), 0u);
  EXPECT_EQ(m.dag_size(m.var(0)), 1u);
  EXPECT_EQ(m.dag_size(x), 3u);  // top node + one node per phase of v1
}

TEST(BddEngineTest, NodeBudgetThrowsInsteadOfThrashing) {
  BddOptions options;
  options.max_nodes = 64;
  BddManager m(24, options);
  const auto blow_up = [&] {
    BddRef parity = kBddFalse;
    for (int v = 0; v < 24; ++v) parity = m.bdd_xor(parity, m.var(v));
    // Parity is linear, so force a product ladder instead.
    BddRef f = kBddFalse;
    for (int v = 0; v + 1 < 24; v += 2) {
      f = m.bdd_or(f, m.bdd_and(m.var(v), m.var(v + 1)));
    }
    return f;
  };
  EXPECT_THROW((void)blow_up(), NumericalError);
}

// --- BMD (word-level) engine -----------------------------------------------

TEST(BmdEngineTest, ConstantsAndVariablesEvaluate) {
  BmdManager m(3);
  EXPECT_EQ(m.eval(m.constant(42), {}), 42);
  EXPECT_TRUE(m.is_zero(m.constant(0)));
  const BmdRef f = m.add(m.mul_const(m.var(0), 3), m.mul_const(m.var(2), -5));
  EXPECT_EQ(m.eval(f, {1, 0, 0}), 3);
  EXPECT_EQ(m.eval(f, {1, 0, 1}), -2);
  EXPECT_EQ(m.eval(f, {0, 0, 1}), -5);
}

TEST(BmdEngineTest, MulIsIdempotentOnBooleanVars) {
  BmdManager m(2);
  EXPECT_EQ(m.mul(m.var(0), m.var(0)), m.var(0));  // x * x = x
  const BmdRef prod = m.mul(m.var(0), m.var(1));
  EXPECT_EQ(m.eval(prod, {1, 1}), 1);
  EXPECT_EQ(m.eval(prod, {1, 0}), 0);
}

TEST(BmdEngineTest, WordProductMatchesIntegerMultiply) {
  // (sum 2^i a_i) * (sum 2^j b_j) evaluated on random assignments equals
  // integer multiplication - the golden spec the equivalence checker uses.
  const int w = 6;
  BmdManager m(2 * w);
  BmdRef aw = m.constant(0);
  BmdRef bw = m.constant(0);
  for (int i = 0; i < w; ++i) {
    aw = m.add(aw, m.mul_const(m.var(i), std::int64_t{1} << i));
    bw = m.add(bw, m.mul_const(m.var(w + i), std::int64_t{1} << i));
  }
  const BmdRef prod = m.mul(aw, bw);
  Pcg32 rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t a = rng.next_bits(w);
    const std::uint64_t b = rng.next_bits(w);
    std::vector<char> assignment(2 * static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      assignment[static_cast<std::size_t>(i)] = static_cast<char>((a >> i) & 1);
      assignment[static_cast<std::size_t>(w + i)] = static_cast<char>((b >> i) & 1);
    }
    EXPECT_EQ(m.eval(prod, assignment), static_cast<std::int64_t>(a * b));
  }
}

TEST(BmdEngineTest, SubstituteEliminatesAVariable) {
  BmdManager m(3);
  // f = 4*y + x*y with y := x0 xor x2 (boolean moment polynomial).
  const int y = m.add_var();
  const BmdRef f = m.add(m.mul_const(m.var(y), 4), m.mul(m.var(0), m.var(y)));
  const BmdRef h = m.b_xor(m.var(0), m.var(2));
  const BmdRef g = m.substitute(f, y, h);
  for (int row = 0; row < 8; ++row) {
    std::vector<char> assignment = {static_cast<char>(row & 1),
                                    static_cast<char>((row >> 1) & 1),
                                    static_cast<char>((row >> 2) & 1), 0};
    const std::int64_t yv = (assignment[0] != 0) ^ (assignment[2] != 0) ? 1 : 0;
    EXPECT_EQ(m.eval(g, assignment), 4 * yv + (assignment[0] != 0 ? 1 : 0) * yv);
  }
}

TEST(BmdEngineTest, FindNonzeroAndOverflowGuard) {
  BmdManager m(2);
  const BmdRef f = m.sub(m.var(0), m.var(1));  // zero iff x0 == x1
  const std::vector<char> assignment = m.find_nonzero(f);
  EXPECT_NE(m.eval(f, assignment), 0);
  EXPECT_THROW((void)m.find_nonzero(m.constant(0)), InvalidArgument);
  const BmdRef big = m.constant(INT64_MAX);
  EXPECT_THROW((void)m.add(big, m.constant(1)), NumericalError);
}

}  // namespace
}  // namespace optpower
