// BDD determinism: same netlist + same variable order -> bit-identical node
// counts, probabilities, and verdicts across repeated runs AND across thread
// counts (the equivalence checker's case fan-out).  Extends the
// tests/exec/determinism_test.cpp pattern into the bdd/ subsystem; the
// "Parallel" suite name keeps these under the TSan CI job's filter.
#include <gtest/gtest.h>

#include <vector>

#include "bdd/equiv.h"
#include "bdd/symbolic.h"
#include "exec/exec.h"
#include "mult/array.h"
#include "mult/sequential.h"
#include "mult/wallace.h"
#include "netlist/cell.h"
#include "netlist/transform.h"

namespace optpower {
namespace {

const std::vector<int> kThreadCounts = {2, 3, 5};

TEST(BddParallelDeterminismTest, CompileIsBitIdenticalAcrossRuns) {
  const Netlist nl = wallace_multiplier(6);
  std::vector<std::size_t> node_counts;
  std::vector<BddRef> first_output;
  std::vector<double> probabilities;
  for (int run = 0; run < 3; ++run) {
    SymbolicSimulator sym(nl);
    sym.inject_fresh_inputs();
    sym.settle();
    node_counts.push_back(sym.manager().node_count());
    first_output.push_back(sym.outputs()[0]);
    probabilities.push_back(sym.manager().probability(sym.outputs()[5]));
  }
  // Same op sequence -> same arena layout: even the REF VALUES must repeat.
  EXPECT_EQ(node_counts[0], node_counts[1]);
  EXPECT_EQ(node_counts[0], node_counts[2]);
  EXPECT_EQ(first_output[0], first_output[1]);
  EXPECT_EQ(first_output[0], first_output[2]);
  EXPECT_EQ(probabilities[0], probabilities[1]);
  EXPECT_EQ(probabilities[0], probabilities[2]);
}

TEST(BddParallelDeterminismTest, CompilesAreIndependentAcrossWorkerThreads) {
  // One private manager per task: compiling the same netlist on N workers
  // must give N bit-identical results for any thread count.
  const Netlist nl = array_multiplier(6);
  (void)nl.fanout();  // warm the shared cache before the fan-out
  struct Fingerprint {
    std::size_t nodes = 0;
    BddRef root = kBddFalse;
    double probability = 0.0;
  };
  Fingerprint serial;
  {
    SymbolicSimulator sym(nl);
    sym.inject_fresh_inputs();
    sym.settle();
    serial = {sym.manager().node_count(), sym.outputs()[7],
              sym.manager().probability(sym.outputs()[7])};
  }
  for (const int threads : kThreadCounts) {
    const ExecContext ctx(threads);
    const auto prints = parallel_map<Fingerprint>(ctx, 8, [&](std::size_t) {
      SymbolicSimulator sym(nl);
      sym.inject_fresh_inputs();
      sym.settle();
      return Fingerprint{sym.manager().node_count(), sym.outputs()[7],
                         sym.manager().probability(sym.outputs()[7])};
    });
    for (const Fingerprint& fp : prints) {
      EXPECT_EQ(fp.nodes, serial.nodes) << "threads " << threads;
      EXPECT_EQ(fp.root, serial.root) << "threads " << threads;
      EXPECT_EQ(fp.probability, serial.probability) << "threads " << threads;
    }
  }
}

TEST(BddParallelDeterminismTest, ExactActivityIsBitIdenticalAcrossRuns) {
  const Netlist nl = sequential_multiplier(4);
  ExactActivityOptions opts;
  opts.num_vectors = 3;
  opts.cycles_per_vector = 4;
  opts.warmup_vectors = 1;
  const ExactActivity first = exact_activity(nl, opts);
  const ExactActivity second = exact_activity(nl, opts);
  EXPECT_EQ(first.activity, second.activity);
  EXPECT_EQ(first.expected_transitions, second.expected_transitions);
  EXPECT_EQ(first.bdd_nodes, second.bdd_nodes);
  ASSERT_EQ(first.net_toggle.size(), second.net_toggle.size());
  for (std::size_t n = 0; n < first.net_toggle.size(); ++n) {
    EXPECT_EQ(first.net_toggle[n], second.net_toggle[n]) << "net " << n;
  }
}

TEST(BddParallelDeterminismTest, EquivalenceVerdictIdenticalForAnyThreadCount) {
  const Netlist nl = array_multiplier(8);
  EquivOptions options;
  options.case_split_bits = 3;
  const EquivResult serial = check_multiplier_against_spec(nl, 8, options);
  EXPECT_TRUE(serial.equivalent);
  for (const int threads : kThreadCounts) {
    const EquivResult parallel =
        check_multiplier_against_spec(nl, 8, options, ExecContext(threads));
    EXPECT_EQ(parallel.equivalent, serial.equivalent) << "threads " << threads;
    EXPECT_EQ(parallel.cases, serial.cases);
    EXPECT_EQ(parallel.bdd_nodes, serial.bdd_nodes);
    EXPECT_EQ(parallel.matched_at_cycle, serial.matched_at_cycle);
  }
}

TEST(BddParallelDeterminismTest, CounterexampleIdenticalForAnyThreadCount) {
  // The lowest failing case wins regardless of which worker finds what.
  const Netlist good = array_multiplier(6);
  CellId and_cell = Netlist::kNoCell;
  for (CellId c = 0; c < good.num_cells(); ++c) {
    if (good.cell(c).type == CellType::kAnd2) and_cell = c;
  }
  ASSERT_NE(and_cell, Netlist::kNoCell);
  const Netlist mutant = replace_cell_type(good, and_cell, CellType::kOr2);
  EquivOptions options;
  options.case_split_bits = 3;
  const EquivResult serial = check_multiplier_against_spec(mutant, 6, options);
  ASSERT_TRUE(serial.counterexample.has_value());
  for (const int threads : kThreadCounts) {
    const EquivResult parallel =
        check_multiplier_against_spec(mutant, 6, options, ExecContext(threads));
    ASSERT_TRUE(parallel.counterexample.has_value()) << "threads " << threads;
    EXPECT_EQ(parallel.counterexample->a, serial.counterexample->a);
    EXPECT_EQ(parallel.counterexample->b, serial.counterexample->b);
    EXPECT_EQ(parallel.counterexample->inputs, serial.counterexample->inputs);
  }
}

}  // namespace
}  // namespace optpower
