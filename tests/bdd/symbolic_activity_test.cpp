// Exact switching activity via BDD signal probabilities, validated three
// ways: against brute-force enumeration (small netlists, exact equality up
// to rounding), against the Monte-Carlo event-simulator testbench (the
// statistical-tolerance acceptance check on RCA/Wallace), and through the
// power stack (ActivitySource::kBddExact feeding find_optimum /
// power_surface).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bdd/symbolic.h"
#include "mult/array.h"
#include "mult/sequential.h"
#include "mult/wallace.h"
#include "netlist/builder.h"
#include "netlist/cell.h"
#include "power/optimum.h"
#include "power/surface.h"
#include "report/forward_flow.h"
#include "sim/activity.h"
#include "tech/stm_cmos09.h"
#include "util/random.h"

namespace optpower {
namespace {

/// Brute-force E[zero-delay activity]: enumerate all (previous, current)
/// input pairs, count cell-driven net value changes, normalize like
/// ActivityMeasurement::activity.
double brute_force_activity(const Netlist& nl) {
  const std::size_t num_inputs = nl.primary_inputs().size();
  const std::size_t combos = std::size_t{1} << num_inputs;
  EXPECT_LE(num_inputs, 12u);

  const auto settled = [&](std::size_t word) {
    std::vector<char> values(nl.num_nets(), 0);
    for (std::size_t i = 0; i < num_inputs; ++i) {
      values[nl.primary_inputs()[i]] = static_cast<char>((word >> i) & 1u);
    }
    for (const CellId c : nl.topo_order()) {
      const CellInstance& cell = nl.cell(c);
      std::uint8_t in = 0;
      for (std::size_t pin = 0; pin < cell.inputs.size(); ++pin) {
        in |= static_cast<std::uint8_t>((values[cell.inputs[pin]] ? 1u : 0u) << pin);
      }
      const std::uint8_t out = eval_cell(cell.type, in);
      for (std::size_t k = 0; k < cell.outputs.size(); ++k) {
        values[cell.outputs[k]] = static_cast<char>((out >> k) & 1u);
      }
    }
    return values;
  };

  std::vector<std::vector<char>> images;
  images.reserve(combos);
  for (std::size_t w = 0; w < combos; ++w) images.push_back(settled(w));

  double transitions = 0.0;
  for (std::size_t prev = 0; prev < combos; ++prev) {
    for (std::size_t cur = 0; cur < combos; ++cur) {
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        if (nl.driver_of(n) == Netlist::kNoCell) continue;
        if (images[prev][n] != images[cur][n]) transitions += 1.0;
      }
    }
  }
  transitions /= static_cast<double>(combos) * static_cast<double>(combos);
  const double n_cells = static_cast<double>(nl.stats().num_cells);
  return 0.5 * transitions / n_cells;
}

TEST(ExactActivityTest, MatchesBruteForceOnSmallAdder) {
  Netlist nl("adder4");
  const Bus a = add_input_bus(nl, "a", 4);
  const Bus b = add_input_bus(nl, "b", 4);
  const AdderResult r = ripple_adder(nl, a, b);
  add_output_bus(nl, "s", r.sum);
  nl.add_output("cout", r.carry_out);

  const ExactActivity exact = exact_activity(nl);
  EXPECT_TRUE(exact.combinational);
  EXPECT_NEAR(exact.activity, brute_force_activity(nl), 1e-12);
  EXPECT_EQ(exact.glitch_fraction, 0.0);
}

TEST(ExactActivityTest, MatchesBruteForceOnTinyMultiplier) {
  const Netlist nl = array_multiplier(4);
  const ExactActivity exact = exact_activity(nl);
  EXPECT_NEAR(exact.activity, brute_force_activity(nl), 1e-12);
}

TEST(ExactActivityTest, NetProbabilitiesAreProbabilities) {
  const Netlist nl = wallace_multiplier(6);
  const ExactActivity exact = exact_activity(nl);
  ASSERT_EQ(exact.net_probability.size(), nl.num_nets());
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    EXPECT_GE(exact.net_probability[n], 0.0);
    EXPECT_LE(exact.net_probability[n], 1.0);
  }
  // Primary inputs are unbiased coins.
  for (const NetId pi : nl.primary_inputs()) {
    EXPECT_DOUBLE_EQ(exact.net_probability[pi], 0.5);
  }
  EXPECT_GT(exact.bdd_nodes, 0u);
}

// The strict-equality check, no estimator in between: enumerate EVERY
// ordered (previous, current) input pair, run the real kZero EventSimulator
// on each transition, and average.  That average IS the expectation the BDD
// computes, so levelized kZero must match it to rounding - the delta-cycle
// scheduler this replaced failed here on reconvergent paths (its hazards
// inflated the count by the old a*(1-glitch_fraction) reconciliation gap).
TEST(ExactActivityTest, PairwiseEnumerationEqualsSimulatorExactly) {
  const auto simulated_expectation = [](const Netlist& nl) {
    const std::size_t num_inputs = nl.primary_inputs().size();
    EXPECT_LE(num_inputs, 10u);
    const std::size_t combos = std::size_t{1} << num_inputs;
    EventSimulator sim(nl, SimDelayMode::kZero);
    std::vector<bool> vec(num_inputs);
    const auto apply = [&](std::size_t word) {
      for (std::size_t i = 0; i < num_inputs; ++i) vec[i] = ((word >> i) & 1u) != 0;
      sim.set_inputs(vec);
      sim.step_cycle();
    };
    std::uint64_t transitions = 0;
    std::uint64_t glitches = 0;
    for (std::size_t prev = 0; prev < combos; ++prev) {
      for (std::size_t cur = 0; cur < combos; ++cur) {
        apply(prev);
        sim.reset_stats();
        apply(cur);
        transitions += sim.stats().total_transitions;
        glitches += sim.stats().glitch_transitions;
      }
    }
    EXPECT_EQ(glitches, 0u);  // levelized zero-delay cannot hazard
    const double per_period =
        static_cast<double>(transitions) / (static_cast<double>(combos) * combos);
    return 0.5 * per_period / static_cast<double>(nl.stats().num_cells);
  };

  {
    const Netlist nl = array_multiplier(4);
    EXPECT_NEAR(simulated_expectation(nl), exact_activity(nl).activity, 1e-12);
  }
  {
    // Carry-select reconvergence: exactly where the delta-cycle kZero used
    // to hazard.
    Netlist nl("csel4");
    const Bus a = add_input_bus(nl, "a", 4);
    const Bus b = add_input_bus(nl, "b", 4);
    const AdderResult r = carry_select_adder(nl, a, b, kNoNet, 2);
    Bus out = r.sum;
    out.push_back(r.carry_out);
    add_output_bus(nl, "s", out);
    EXPECT_NEAR(simulated_expectation(nl), exact_activity(nl).activity, 1e-12);
  }
}

// The statistical check at the acceptance widths: exact BDD signal
// probabilities against the RAW Monte-Carlo zero-delay activity - same
// estimand now, no a*(1-glitch_fraction) reconciliation, and the levelized
// simulator must report exactly zero glitches on combinational netlists.
TEST(ExactActivityTest, AgreesWithMonteCarloOnRcaAndWallace) {
  for (const bool wallace : {false, true}) {
    const Netlist nl = wallace ? wallace_multiplier(8) : array_multiplier(8);
    const ExactActivity exact = exact_activity(nl);

    ActivityOptions mc;
    mc.num_vectors = 8192;
    mc.delay_mode = SimDelayMode::kZero;
    const ActivityMeasurement measured = measure_activity_sharded(nl, mc, 8);

    // ~1e6 pooled net-transitions put the estimator's sigma far below the
    // 3% gate.
    EXPECT_EQ(measured.glitches, 0u) << (wallace ? "wallace" : "rca");
    EXPECT_NEAR(measured.activity, exact.activity, 0.03 * exact.activity)
        << (wallace ? "wallace" : "rca");
  }
}

// And through the bit-parallel engine: same expectation, 64 lanes per pass.
TEST(ExactActivityTest, AgreesWithBitParallelMonteCarlo) {
  const Netlist nl = array_multiplier(8);
  const ExactActivity exact = exact_activity(nl);
  ActivityOptions mc;
  mc.num_vectors = 8192;
  mc.delay_mode = SimDelayMode::kZero;
  mc.engine = ActivityEngine::kBitParallel;
  const ActivityMeasurement measured = measure_activity(nl, mc);
  EXPECT_EQ(measured.glitches, 0u);
  EXPECT_NEAR(measured.activity, exact.activity, 0.03 * exact.activity);
}

TEST(ExactActivityTest, SequentialScheduleMatchesMonteCarloMean) {
  // For a DFF netlist the symbolic run replays the exact testbench schedule,
  // so it equals the EXPECTATION of the Monte-Carlo estimator over seeds.
  const Netlist nl = sequential_multiplier(4);

  ExactActivityOptions opts;
  opts.num_vectors = 6;
  opts.cycles_per_vector = 4;
  opts.warmup_vectors = 2;
  const ExactActivity exact = exact_activity(nl, opts);
  EXPECT_FALSE(exact.combinational);
  EXPECT_GT(exact.activity, 0.0);

  std::vector<ActivityOptions> runs(64);
  for (std::size_t s = 0; s < runs.size(); ++s) {
    runs[s].num_vectors = opts.num_vectors;
    runs[s].cycles_per_vector = opts.cycles_per_vector;
    runs[s].warmup_vectors = opts.warmup_vectors;
    runs[s].delay_mode = SimDelayMode::kZero;
    runs[s].seed = 0x5eed0001 + 7919 * s;
  }
  const std::vector<ActivityMeasurement> measurements = measure_activity_multi(nl, runs);
  double mean = 0.0;
  // Raw activity, no hazard reconciliation: levelized kZero estimates the
  // symbolic expectation directly.
  for (const ActivityMeasurement& m : measurements) mean += m.activity;
  mean /= static_cast<double>(measurements.size());
  EXPECT_NEAR(mean, exact.activity, 0.10 * exact.activity);
}

TEST(ExactActivityTest, PipelineStagesKeepExactnessPerPeriod) {
  // Pipelined netlists: every net consumes exactly one data vector, so the
  // closed-form 2p(1-p) path does not apply (DFFs present) but the temporal
  // path must still agree with Monte-Carlo.
  const Netlist nl = array_multiplier_dpipe(6, 2);
  ExactActivityOptions opts;
  opts.num_vectors = 4;
  opts.warmup_vectors = 4;
  const ExactActivity exact = exact_activity(nl, opts);

  std::vector<ActivityOptions> runs(48);
  for (std::size_t s = 0; s < runs.size(); ++s) {
    runs[s].num_vectors = opts.num_vectors;
    runs[s].warmup_vectors = opts.warmup_vectors;
    runs[s].delay_mode = SimDelayMode::kZero;
    runs[s].seed = 0xfeed + 104729 * s;
  }
  const std::vector<ActivityMeasurement> measurements = measure_activity_multi(nl, runs);
  double mean = 0.0;
  for (const ActivityMeasurement& m : measurements) mean += m.activity;
  mean /= static_cast<double>(measurements.size());
  EXPECT_NEAR(mean, exact.activity, 0.10 * exact.activity);
}

// ActivitySource::kBddExact must flow through characterization into the
// power model, and the optimum it produces must sit near the Monte-Carlo
// one (same netlist, exact vs estimated "a").
TEST(ExactActivityTest, BddActivitySourceFeedsPowerOptimum) {
  const Technology tech = stm_cmos09_ll();
  const double frequency = 31.25e6;

  ForwardFlowOptions exact_opts;
  exact_opts.width = 6;
  exact_opts.activity_vectors = 16;
  exact_opts.activity_source = ActivitySource::kBddExact;
  const ForwardResult exact = run_forward_flow("RCA", tech, frequency, exact_opts);

  ForwardFlowOptions mc_opts = exact_opts;
  mc_opts.activity_source = ActivitySource::kEventSim;
  mc_opts.delay_mode = SimDelayMode::kZero;
  mc_opts.activity_vectors = 4096;
  const ForwardResult mc = run_forward_flow("RCA", tech, frequency, mc_opts);

  // Same estimand since kZero went levelized: the exact value sits inside
  // the Monte-Carlo estimator's (tight, 4096-vector) statistical band.
  EXPECT_NEAR(exact.character.arch.activity, mc.character.arch.activity,
              0.03 * mc.character.arch.activity);
  EXPECT_NEAR(exact.optimum.vdd, mc.optimum.vdd, 0.05);
  EXPECT_GT(exact.optimum.ptot, 0.0);

  // And the exact-activity model drives a power surface without surprises.
  const PowerModel model(tech, exact.character.arch);
  const auto surface = power_surface(model, frequency, 0.2, 1.2, 9, 0.0, 0.5, 9);
  ASSERT_EQ(surface.size(), 81u);
  const OptimumResult opt = find_optimum(model, frequency);
  EXPECT_TRUE(opt.converged);
}

}  // namespace
}  // namespace optpower
