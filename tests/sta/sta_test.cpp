#include "sta/sta.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "netlist/cell.h"
#include "util/error.h"

namespace optpower {
namespace {

TEST(Sta, InverterChainDepthAccumulates) {
  Netlist nl;
  NetId x = nl.add_input("a");
  for (int i = 0; i < 5; ++i) x = nl.add_gate(CellType::kInv, {x});
  nl.add_output("y", x);
  const TimingReport r = analyze_timing(nl);
  EXPECT_NEAR(r.critical_path_units, 5.0 * cell_spec(CellType::kInv).depth_units, 1e-9);
  EXPECT_EQ(r.critical_path.size(), 5u);
}

TEST(Sta, PicksTheLongerBranch) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  // Short branch: one INV.  Long branch: XOR (1.8) + FA (2.0).
  const NetId s = nl.add_gate(CellType::kInv, {a});
  const NetId x = nl.add_gate(CellType::kXor2, {a, a});
  const auto fa = nl.add_cell(CellType::kFullAdder, {x, a, a});
  const NetId y = nl.add_gate(CellType::kAnd2, {s, fa[0]});
  nl.add_output("y", y);
  const TimingReport r = analyze_timing(nl);
  const double expected = cell_spec(CellType::kXor2).depth_units +
                          cell_spec(CellType::kFullAdder).depth_units +
                          cell_spec(CellType::kAnd2).depth_units;
  EXPECT_NEAR(r.critical_path_units, expected, 1e-9);
}

TEST(Sta, RegisterBoundariesCutPaths) {
  // in -> INV x4 -> DFF -> INV x2 -> out: worst register-to-register /
  // boundary path is the 4-inverter launch cone (plus nothing), and the DFF
  // launches the 2-inverter cone with its clk-to-q.
  Netlist nl;
  NetId x = nl.add_input("a");
  for (int i = 0; i < 4; ++i) x = nl.add_gate(CellType::kInv, {x});
  const NetId q = nl.add_gate(CellType::kDff, {x});
  NetId y = q;
  for (int i = 0; i < 2; ++i) y = nl.add_gate(CellType::kInv, {y});
  nl.add_output("y", y);
  const TimingReport r = analyze_timing(nl);
  const double inv = cell_spec(CellType::kInv).depth_units;
  const double dff = cell_spec(CellType::kDff).depth_units;
  // Paths: 4*inv (to DFF D) vs dff + 2*inv (Q to output).
  EXPECT_NEAR(r.critical_path_units, std::max(4.0 * inv, dff + 2.0 * inv), 1e-9);
}

TEST(Sta, SequentialLoopDoesNotDiverge) {
  Netlist nl;
  const NetId q = nl.add_gate(CellType::kDff, {nl.const0()});
  const NetId nq = nl.add_gate(CellType::kInv, {q});
  nl.rewire_input(nl.driver_of(q), 0, nq);
  nl.add_output("q", q);
  const TimingReport r = analyze_timing(nl);
  EXPECT_GT(r.critical_path_units, 0.0);
  EXPECT_LT(r.critical_path_units, 10.0);
}

TEST(Sta, EffectiveLogicDepthScaling) {
  // Sequential: x16 internal cycles; parallel: /ways.
  EXPECT_DOUBLE_EQ(effective_logic_depth(14.0, 16, 1), 224.0);  // the paper's Sequential
  EXPECT_DOUBLE_EQ(effective_logic_depth(30.0, 4, 1), 120.0);   // Seq4_16 shape
  EXPECT_DOUBLE_EQ(effective_logic_depth(61.0, 1, 2), 30.5);    // RCA parallel
  EXPECT_DOUBLE_EQ(effective_logic_depth(61.0, 1, 4), 15.25);
}

TEST(Sta, EffectiveLogicDepthRejectsBadInputs) {
  EXPECT_THROW((void)effective_logic_depth(0.0, 1, 1), InvalidArgument);
  EXPECT_THROW((void)effective_logic_depth(10.0, 0, 1), InvalidArgument);
  EXPECT_THROW((void)effective_logic_depth(10.0, 1, 0), InvalidArgument);
}

TEST(Sta, CriticalPathTraceEndsAtEndpoint) {
  Netlist nl;
  NetId x = nl.add_input("a");
  for (int i = 0; i < 3; ++i) x = nl.add_gate(CellType::kNand2, {x, x});
  nl.add_output("y", x);
  const TimingReport r = analyze_timing(nl);
  ASSERT_FALSE(r.critical_path.empty());
  EXPECT_EQ(nl.cell(r.critical_path.back()).outputs[0], r.critical_endpoint);
}

}  // namespace
}  // namespace optpower
