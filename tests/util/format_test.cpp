#include "util/format.h"

#include <gtest/gtest.h>

namespace optpower {
namespace {

TEST(Strprintf, BasicFormatting) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%.3f", 1.23456), "1.235");
}

TEST(Strprintf, EmptyAndLongStrings) {
  EXPECT_EQ(strprintf("%s", ""), "");
  const std::string big(500, 'a');
  EXPECT_EQ(strprintf("%s", big.c_str()), big);
}

TEST(FmtFixed, RoundsCorrectly) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-0.005, 2), "-0.01");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
}

TEST(FmtSci, FormatsExponent) {
  EXPECT_EQ(fmt_sci(3.34e-6, 2), "3.34e-06");
}

TEST(FmtSi, PicksSiPrefix) {
  EXPECT_EQ(fmt_si(3.34e-6, "A", 2), "3.34 uA");
  EXPECT_EQ(fmt_si(5.5e-12, "F", 1), "5.5 pF");
  EXPECT_EQ(fmt_si(31.25e6, "Hz", 2), "31.25 MHz");
  EXPECT_EQ(fmt_si(0.478, "V", 3), "478.000 mV");
}

TEST(FmtSi, HandlesZeroAndNegative) {
  EXPECT_EQ(fmt_si(0.0, "W", 1), "0.0 W");
  EXPECT_EQ(fmt_si(-191.44e-6, "W", 2), "-191.44 uW");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // longer than width: unchanged
}

TEST(Join, VariousSizes) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(Repeat, ProducesRun) {
  EXPECT_EQ(repeat('-', 4), "----");
  EXPECT_EQ(repeat('x', 0), "");
}

}  // namespace
}  // namespace optpower
