#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace optpower {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  CsvWriter w({"vdd", "ptot"});
  w.add_row(std::vector<double>{0.478, 191.44});
  EXPECT_EQ(w.to_string(), "vdd,ptot\n0.478,191.44\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  CsvWriter w({"name", "note"});
  w.add_row(std::vector<std::string>{"a,b", "say \"hi\""});
  EXPECT_EQ(w.to_string(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, RejectsColumnMismatch) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row(std::vector<double>{1.0}), InvalidArgument);
}

TEST(CsvWriter, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter w({}), InvalidArgument);
}

TEST(CsvWriter, NumericPrecisionPreserved) {
  CsvWriter w({"x"});
  w.add_row(std::vector<double>{3.34e-6});
  EXPECT_NE(w.to_string().find("3.34e-06"), std::string::npos);
}

TEST(CsvWriter, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/optpower_csv_test.csv";
  CsvWriter w({"a"});
  w.add_row(std::vector<double>{1.5});
  w.write_file(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a");
  std::getline(f, line);
  EXPECT_EQ(line, "1.5");
  std::remove(path.c_str());
}

TEST(CsvWriter, WriteFileThrowsOnBadPath) {
  CsvWriter w({"a"});
  EXPECT_THROW(w.write_file("/nonexistent-dir-xyz/file.csv"), Error);
}

}  // namespace
}  // namespace optpower
