#include "util/random.h"

#include <gtest/gtest.h>

namespace optpower {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, NextBelowStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

TEST(Pcg32, NextBitsMasksWidth) {
  Pcg32 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.next_bits(16), 1u << 16);
    EXPECT_LT(rng.next_bits(1), 2u);
  }
}

TEST(Pcg32, BiasedCoinApproximatesProbability) {
  Pcg32 rng(13);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.next_bool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Pcg32, NextInRespectsBounds) {
  Pcg32 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_in(-2.5, 3.5);
    ASSERT_GE(v, -2.5);
    ASSERT_LT(v, 3.5);
  }
}

}  // namespace
}  // namespace optpower
