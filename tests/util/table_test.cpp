#include "util/table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace optpower {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Arch", "Ptot"});
  t.add_row({"RCA", "191.44"});
  t.add_row({"Wallace", "71.86"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Arch "), std::string::npos);
  EXPECT_NE(s.find("191.44"), std::string::npos);
  EXPECT_NE(s.find("Wallace"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, AlignsRightByDefaultExceptFirst) {
  Table t({"name", "val"});
  t.add_row({"a", "1"});
  const std::string s = t.to_string();
  // First column left: "| a    |"; second right: "|   1 |".
  EXPECT_NE(s.find("| a    |"), std::string::npos);
  EXPECT_NE(s.find("|   1 |"), std::string::npos);
}

TEST(Table, ThrowsOnColumnMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgument);
}

TEST(Table, ThrowsOnEmptyHeader) {
  EXPECT_THROW(Table t({}), InvalidArgument);
}

TEST(Table, SeparatorAndCaption) {
  Table t({"x"});
  t.set_caption("Table 1 - results");
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  EXPECT_EQ(s.rfind("Table 1 - results", 0), 0u);  // caption first
  // Expect at least 4 rule lines (top, after header, separator, bottom).
  int rules = 0;
  for (std::size_t pos = 0; (pos = s.find("+-", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_GE(rules, 4);
}

TEST(Table, SetAlignValidatesColumn) {
  Table t({"a", "b"});
  t.set_align(1, Align::kLeft);
  EXPECT_THROW(t.set_align(2, Align::kLeft), InvalidArgument);
}

TEST(Table, WidthsAdaptToLongestCell) {
  Table t({"h"});
  t.add_row({"a-very-long-cell"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a-very-long-cell |"), std::string::npos);
}

}  // namespace
}  // namespace optpower
