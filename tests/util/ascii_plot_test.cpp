#include "util/ascii_plot.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace optpower {
namespace {

TEST(AsciiPlot, RendersSeriesGlyphs) {
  AsciiPlot plot({.width = 40, .height = 10, .title = "demo"});
  plot.add_series({{0.0, 1.0, 2.0}, {0.0, 1.0, 4.0}, '*', "y=x^2"});
  const std::string s = plot.render();
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("y=x^2"), std::string::npos);
}

TEST(AsciiPlot, MarkerAppears) {
  AsciiPlot plot({.width = 40, .height = 10});
  plot.add_series({{0.0, 1.0}, {0.0, 1.0}, '.', ""});
  plot.add_marker(0.5, 0.5, 'X', "optimum");
  const std::string s = plot.render();
  EXPECT_NE(s.find('X'), std::string::npos);
}

TEST(AsciiPlot, LogScaleHandlesDecades) {
  AsciiPlot plot({.width = 40, .height = 12, .log_y = true});
  plot.add_series({{0.0, 1.0, 2.0}, {1e-6, 1e-4, 1e-2}, 'o', ""});
  EXPECT_FALSE(plot.render().empty());
}

TEST(AsciiPlot, RejectsMismatchedSeries) {
  AsciiPlot plot;
  EXPECT_THROW(plot.add_series({{1.0}, {1.0, 2.0}, '*', ""}), InvalidArgument);
  EXPECT_THROW(plot.add_series({{}, {}, '*', ""}), InvalidArgument);
}

TEST(AsciiPlot, RejectsTinyCanvas) {
  EXPECT_THROW(AsciiPlot({.width = 2, .height = 2}), InvalidArgument);
}

TEST(AsciiPlot, EmptyPlotRendersPlaceholder) {
  AsciiPlot plot;
  EXPECT_EQ(plot.render(), "(empty plot)\n");
}

TEST(AsciiPlot, AxisLabelsPrinted) {
  AsciiPlot plot({.width = 30, .height = 8, .x_label = "Vdd [V]"});
  plot.add_series({{0.3, 1.0}, {1.0, 2.0}, '*', ""});
  EXPECT_NE(plot.render().find("Vdd [V]"), std::string::npos);
}

}  // namespace
}  // namespace optpower
