// Cross-module integration tests: the paper's end-to-end claims exercised
// through the full stack (calibration -> model -> optimizer -> closed form)
// at operating points beyond the published ones.
#include <cmath>

#include <gtest/gtest.h>

#include "calib/calibrate.h"
#include "power/closed_form.h"
#include "power/optimum.h"
#include "tech/stm_cmos09.h"

namespace optpower {
namespace {

class CalibratedSweep : public ::testing::TestWithParam<double> {};

TEST_P(CalibratedSweep, GridConfirmsConstrainedOptimumAtOffPaperFrequencies) {
  // The 1-D/2-D agreement must hold away from the calibration frequency too.
  const double f = GetParam() * kPaperFrequency;
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("Wallace"), stm_cmos09_ll());
  const OptimumResult fine = find_optimum(cal.model, f);
  const OptimumResult grid = find_optimum_grid(cal.model, f);
  EXPECT_NEAR(grid.point.ptot / fine.point.ptot, 1.0, 0.03) << "f scale " << GetParam();
  EXPECT_GE(grid.point.ptot, fine.point.ptot * (1.0 - 1e-9));
}

TEST_P(CalibratedSweep, Eq13TracksAcrossFrequencies) {
  const double f = GetParam() * kPaperFrequency;
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("RCA hor.pipe4"), stm_cmos09_ll());
  const OptimumResult num = find_optimum(cal.model, f);
  const ClosedFormResult cf = closed_form_optimum(cal.model, f);
  if (!cf.valid || num.point.vdd > 1.3) return;  // outside Eq. 13 validity
  EXPECT_NEAR(cf.ptot_eq13 / num.point.ptot, 1.0, 0.08) << "f scale " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FrequencyScales, CalibratedSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

TEST(PaperClaims, OptimalVddRisesWithFrequencyVthFalls) {
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("RCA"), stm_cmos09_ll());
  double prev_vdd = 0.0, prev_vth = 1.0;
  bool vdd_monotone_after_knee = true;
  for (const double scale : {1.0, 2.0, 4.0}) {
    const OptimumResult r = find_optimum(cal.model, scale * kPaperFrequency);
    if (r.point.vdd < prev_vdd) vdd_monotone_after_knee = false;
    EXPECT_LT(r.point.vth, prev_vth) << scale;
    prev_vdd = r.point.vdd;
    prev_vth = r.point.vth;
  }
  EXPECT_TRUE(vdd_monotone_after_knee);
}

TEST(PaperClaims, DynStatRatioMatchesStationarityPrediction) {
  // Exact stationarity along the constraint: with g = dVth/dVdd =
  // 1 - (chi/alpha) Vdd^{1/alpha - 1},
  //   Pdyn/Pstat = (g*Vdd/nUt - 1)/2.
  // Eq. 11's approximate form Vdd(1 - chi*A)/(2 nUt) drops the "-1"
  // (the Vdd >> nUt assumption), overestimating by ~15% - both asserted.
  const Linearization lin = linearize_vdd_root(1.86, 0.3, 1.0);
  for (const char* name : {"RCA", "Wallace", "RCA parallel 4"}) {
    const CalibratedModel cal =
        calibrate_from_table1_row(*find_table1_row(name), stm_cmos09_ll());
    const OptimumResult r = find_optimum(cal.model, kPaperFrequency);
    const Technology& tech = cal.model.tech();
    const double g =
        1.0 - (cal.chi / tech.alpha) * std::pow(r.point.vdd, 1.0 / tech.alpha - 1.0);
    const double exact = (g * r.point.vdd / tech.n_ut() - 1.0) / 2.0;
    EXPECT_NEAR(r.point.dyn_stat_ratio() / exact, 1.0, 0.03) << name;
    const double eq11_form =
        r.point.vdd * (1.0 - cal.chi * lin.a) / (2.0 * tech.n_ut());
    EXPECT_GT(eq11_form, exact) << name;                       // always overestimates
    EXPECT_NEAR(r.point.dyn_stat_ratio() / eq11_form, 0.85, 0.12) << name;
  }
}

TEST(PaperClaims, CalibrationConsistentAcrossBothMethods) {
  // The Wallace rows appear in Table 1 (full split) and can also be
  // calibrated optimum-only (the Table-3/4 method) from the same LL data;
  // both must infer the same parameters.
  const Table1Row row = *find_table1_row("Wallace");
  const CalibratedModel full = calibrate_from_table1_row(row, stm_cmos09_ll());
  WallaceFlavorRow opt_only{row.name, row.vdd_opt, row.vth_opt, row.ptot, row.ptot_eq13,
                            row.eq13_err_pct};
  const CalibratedModel lean = calibrate_from_optimum(opt_only, row, stm_cmos09_ll());
  EXPECT_NEAR(lean.cell_cap / full.cell_cap, 1.0, 0.05);
  EXPECT_NEAR(lean.io_eff / full.io_eff, 1.0, 0.10);
  EXPECT_NEAR(lean.chi / full.chi, 1.0, 1e-9);
}

TEST(PaperClaims, Eq13EtaFreeAcrossTheWholeTable) {
  // Sweep eta through every calibrated row: Eq. 13 must not move.
  for (const Table1Row& row : paper_table1()) {
    const CalibratedModel cal = calibrate_from_table1_row(row, stm_cmos09_ll());
    Technology dibl = cal.model.tech();
    dibl.eta = 0.12;
    const PowerModel with_dibl(dibl, cal.model.arch());
    const ClosedFormResult a = closed_form_optimum(cal.model, kPaperFrequency);
    const ClosedFormResult b = closed_form_optimum(with_dibl, kPaperFrequency);
    ASSERT_TRUE(a.valid && b.valid) << row.name;
    EXPECT_DOUBLE_EQ(a.ptot_eq13, b.ptot_eq13) << row.name;
  }
}

TEST(PaperClaims, OptimumScalesLinearlyWithCells) {
  // Ptot* proportional to N with everything else fixed (Eq. 13 prefactor).
  const CalibratedModel cal =
      calibrate_from_table1_row(*find_table1_row("Wallace"), stm_cmos09_ll());
  ArchitectureParams doubled = cal.model.arch();
  doubled.n_cells *= 2.0;
  const double p1 = find_optimum(cal.model, kPaperFrequency).point.ptot;
  const double p2 =
      find_optimum(PowerModel(cal.model.tech(), doubled), kPaperFrequency).point.ptot;
  EXPECT_NEAR(p2 / p1, 2.0, 1e-6);
}

}  // namespace
}  // namespace optpower
