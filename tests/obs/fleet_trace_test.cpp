// Cross-layer trace correlation: one traced optimum query through a running
// fleet must produce controller-side spans (serve.request, serve.dispatch,
// serve.cache.lookup) AND worker-side spans (worker.compute) that all carry
// the same wire request id - the property that turns a trace file into a
// per-request timeline.  Thread transport keeps everything in-process so the
// test can read one file without coordinating flushes across pids (the
// forked-worker variant of the same assertion runs in CI against the
// serve_ctl demo, via tools/check_trace.py).
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "serve/client.h"
#include "serve/controller.h"
#include "tech/stm_cmos09.h"

namespace optpower::serve {
namespace {

constexpr std::uint64_t kRequestId = 777;

std::vector<std::string> event_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"name\":") != std::string::npos) lines.push_back(line);
  }
  return lines;
}

std::size_t count_with_request_id(const std::vector<std::string>& lines, const std::string& name) {
  const std::string name_token = "\"name\":\"" + name + "\"";
  const std::string id_token = "\"request_id\":" + std::to_string(kRequestId);
  std::size_t n = 0;
  for (const std::string& line : lines) {
    if (line.find(name_token) == std::string::npos) continue;
    EXPECT_NE(line.find(id_token), std::string::npos)
        << name << " span without the wire request id: " << line;
    ++n;
  }
  return n;
}

TEST(ObsFleetTraceTest, ControllerAndWorkerSpansShareOneRequestId) {
  const std::string path =
      "/tmp/optpower_obs_fleet_trace_" + std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(obs::trace_start(path.c_str()));

  ControllerOptions opts;
  opts.num_workers = 2;
  opts.transport = WorkerTransport::kThread;
  Controller controller(opts);
  controller.start();

  OptimumRequest req = make_optimum_request("RCA", stm_cmos09_ull(), 10e6);
  req.activity_vectors = 8;
  req.request_id = kRequestId;
  const OptimumResponse resp = controller.handle_optimum(req);
  ASSERT_EQ(resp.error, 0) << resp.error_text;
  controller.stop();  // worker threads exit; their rings park as orphans

  obs::trace_stop();
  const std::vector<std::string> lines = event_lines(path);
  EXPECT_EQ(count_with_request_id(lines, "serve.request"), 1u);
  EXPECT_EQ(count_with_request_id(lines, "serve.dispatch"), 1u);
  EXPECT_EQ(count_with_request_id(lines, "serve.cache.lookup"), 1u);
  EXPECT_EQ(count_with_request_id(lines, "serve.cache.store"), 1u);
  EXPECT_EQ(count_with_request_id(lines, "worker.compute"), 1u);
  EXPECT_EQ(count_with_request_id(lines, "worker.activity"), 1u);
  EXPECT_EQ(count_with_request_id(lines, "worker.optimize"), 1u);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace optpower::serve
