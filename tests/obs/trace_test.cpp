// Trace-layer tests: disabled-path inertness, ring-buffer wrap (the ring
// keeps the newest `capacity` events), span nesting and argument capture,
// and the trace-file JSON schema across multiple flushes (the file must be
// complete, parseable JSON after every flush - that is the multi-process
// append contract).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.h"

namespace optpower::obs {
namespace {

std::string temp_trace_path(const char* tag) {
  return std::string("/tmp/optpower_obs_trace_test_") + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ObsTraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(trace_enabled());
  const std::uint64_t before = detail::thread_events_recorded();
  {
    Span span("trace_test.disabled", "test");
    span.arg("request_id", 1);
  }
  EXPECT_EQ(detail::thread_events_recorded(), before);
}

TEST(ObsTraceTest, RingWrapKeepsTheNewestCapacityEvents) {
  const std::string path = temp_trace_path("wrap");
  ASSERT_TRUE(trace_start(path.c_str()));
  const std::uint64_t cap = detail::ring_capacity();
  ASSERT_GE(cap, 16u);

  const std::uint64_t base = detail::thread_events_recorded();
  const std::uint64_t total = cap + 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    Span span("trace_test.wrap", "test");
    span.arg("i", i);
  }
  // `recorded` counts past the wrap; the ring itself holds only `cap` slots.
  EXPECT_EQ(detail::thread_events_recorded(), base + total);

  trace_stop();
  const std::string text = slurp(path);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"trace_test.wrap\""), cap);
  // The head of the history was overwritten: the oldest surviving event is
  // number total - cap, not number 0.
  EXPECT_EQ(text.find("\"i\":0}"), std::string::npos);
  EXPECT_NE(text.find("\"i\":" + std::to_string(total - 1) + "}"), std::string::npos);
  EXPECT_NE(text.find("\"i\":" + std::to_string(total - cap) + "}"), std::string::npos);
  ::unlink(path.c_str());
}

TEST(ObsTraceTest, NestedSpansBothRecordWithArgsAndStartOrder) {
  const std::string path = temp_trace_path("nest");
  ASSERT_TRUE(trace_start(path.c_str()));
  const std::uint64_t base = detail::thread_events_recorded();
  {
    Span outer("trace_test.outer", "test");
    outer.arg("request_id", 777);
    outer.arg("worker", 3);
    outer.arg("dropped", 99);  // third arg: dropped by contract
    {
      Span inner("trace_test.inner", "test");
      inner.arg("request_id", 777);
    }
  }
  EXPECT_EQ(detail::thread_events_recorded(), base + 2);

  trace_stop();
  const std::string text = slurp(path);
  const std::size_t outer_pos = text.find("\"name\":\"trace_test.outer\"");
  const std::size_t inner_pos = text.find("\"name\":\"trace_test.inner\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  // Events are sorted by start timestamp: the outer span opened first.
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_NE(text.find("\"args\":{\"request_id\":777,\"worker\":3}"), std::string::npos);
  EXPECT_EQ(text.find("dropped"), std::string::npos);
  ::unlink(path.c_str());
}

TEST(ObsTraceTest, TraceFileIsCompleteJsonAfterEveryFlush) {
  const std::string path = temp_trace_path("schema");
  ASSERT_TRUE(trace_start(path.c_str()));
  {
    Span span("trace_test.first", "test");
    span.arg("request_id", 1);
  }
  trace_flush();
  const std::string after_first = slurp(path);
  // Complete JSON right now, not only at trace_stop: a concurrent reader (or
  // a crashed process) always sees a parseable file.
  EXPECT_EQ(after_first.rfind("[\n", 0), 0u);
  EXPECT_EQ(after_first.substr(after_first.size() - 3), "\n]\n");
  EXPECT_EQ(count_occurrences(after_first, "\"name\":\"trace_test.first\""), 1u);

  {
    Span span("trace_test.second", "test");
    span.arg("request_id", 2);
  }
  trace_stop();  // second flush must splice, not restart or double-bracket
  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("[\n", 0), 0u);
  EXPECT_EQ(text.substr(text.size() - 3), "\n]\n");
  EXPECT_EQ(count_occurrences(text, "["), 1u);
  EXPECT_EQ(count_occurrences(text, "]"), 1u);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"trace_test.first\""), 1u);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"trace_test.second\""), 1u);
  // Chrome trace_event schema fields on every event line.
  const std::size_t events = count_occurrences(text, "\"name\":");
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), events);
  EXPECT_EQ(count_occurrences(text, "\"ts\":"), events);
  EXPECT_EQ(count_occurrences(text, "\"dur\":"), events);
  EXPECT_EQ(count_occurrences(text, "\"pid\":"), events);
  EXPECT_EQ(count_occurrences(text, "\"tid\":"), events);
  EXPECT_EQ(count_occurrences(text, "\"cat\":\"test\""), events);
  ::unlink(path.c_str());
}

TEST(ObsTraceTest, StopWithoutStartAndFlushWhenDisabledAreNoOps) {
  ASSERT_FALSE(trace_enabled());
  trace_flush();
  trace_stop();
  EXPECT_FALSE(trace_enabled());
}

}  // namespace
}  // namespace optpower::obs
