// MetricsRegistry unit tests: instrument semantics (counter/gauge/histogram),
// name interning with stable references, snapshot consistency, the
// Prometheus-style text exposition, and - in the Parallel-named suite that
// the sanitizer CI filter picks up - concurrent hammering from many threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace optpower::obs {
namespace {

TEST(ObsMetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, GaugeIsSignedAndNeverWraps) {
  Gauge g;
  g.add(3);
  g.sub(5);
  EXPECT_EQ(g.value(), -2);  // transient imbalance reads negative, not 2^64-2
  g.set(7);
  EXPECT_EQ(g.value(), 7);
}

TEST(ObsMetricsTest, HistogramBucketsByLog2AndEstimatesQuantiles) {
  Histogram h;
  // 0 and 1 share bucket 0; v lands in bucket floor(log2(v)).
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(100);  // bucket 6: [64, 128)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(6), 1u);

  MetricsRegistry reg;
  Histogram& lat = reg.histogram("test.latency");
  for (int i = 0; i < 50; ++i) lat.observe(1);
  for (int i = 0; i < 50; ++i) lat.observe(1000);  // bucket 9: [512, 1024)
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0].second;
  EXPECT_EQ(hs.count, 100u);
  // Quantiles report the bucket's inclusive upper bound: <= 2x relative error.
  EXPECT_EQ(hs.p50(), 1u);
  EXPECT_EQ(hs.p95(), 1023u);
  EXPECT_EQ(hs.p99(), 1023u);
  EXPECT_EQ(hs.quantile(0.0), 1u);
  EXPECT_EQ(hs.quantile(1.0), 1023u);
}

TEST(ObsMetricsTest, RegistryInternsByNameWithStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("test.hits");
  a.add(5);
  // Force deque growth; `a` must stay valid and re-lookup must find it.
  for (int i = 0; i < 100; ++i) (void)reg.counter("test.filler." + std::to_string(i));
  Counter& b = reg.counter("test.hits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.value(), 5u);
  // Counter, gauge, and histogram namespaces are independent.
  Gauge& g = reg.gauge("test.hits");
  g.set(-1);
  EXPECT_EQ(reg.counter("test.hits").value(), 5u);
}

TEST(ObsMetricsTest, TextDumpIsPrometheusStyleExposition) {
  MetricsRegistry reg;
  reg.counter("serve.cache.hits").add(3);
  reg.gauge("serve.workers.live").set(2);
  Histogram& h = reg.histogram("serve.request_micros");
  h.observe(100);
  h.observe(100);
  h.observe(5000);  // bucket 12: [4096, 8192)

  const std::string dump = reg.text_dump();
  EXPECT_NE(dump.find("# TYPE optpower_serve_cache_hits counter\n"), std::string::npos);
  EXPECT_NE(dump.find("optpower_serve_cache_hits 3\n"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE optpower_serve_workers_live gauge\n"), std::string::npos);
  EXPECT_NE(dump.find("optpower_serve_workers_live 2\n"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE optpower_serve_request_micros histogram\n"), std::string::npos);
  // Sparse cumulative buckets: 2 observations <= 127, all 3 <= 8191 and +Inf.
  EXPECT_NE(dump.find("optpower_serve_request_micros_bucket{le=\"127\"} 2\n"), std::string::npos);
  EXPECT_NE(dump.find("optpower_serve_request_micros_bucket{le=\"8191\"} 3\n"), std::string::npos);
  EXPECT_NE(dump.find("optpower_serve_request_micros_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(dump.find("optpower_serve_request_micros_sum 5200\n"), std::string::npos);
  EXPECT_NE(dump.find("optpower_serve_request_micros_count 3\n"), std::string::npos);
  EXPECT_NE(dump.find("optpower_serve_request_micros_p50 127\n"), std::string::npos);

  reg.reset_all();
  const std::string zeroed = reg.text_dump();
  EXPECT_NE(zeroed.find("optpower_serve_cache_hits 0\n"), std::string::npos);
  EXPECT_NE(zeroed.find("optpower_serve_request_micros_count 0\n"), std::string::npos);
}

TEST(ObsMetricsTest, ProcessRegistryHoldsTheWiredInstruments) {
  // The global registry is shared with the library; instruments registered by
  // linked-in layers (thread pool statics, etc.) may or may not have fired,
  // but our own registration must round-trip through the process singleton.
  Counter& c = registry().counter("test.metrics_test.probe");
  c.add(9);
  EXPECT_NE(registry().text_dump().find("optpower_test_metrics_test_probe 9"),
            std::string::npos);
}

// Named to match the sanitizer CI filter (ThreadPool|ExecContext|Parallel):
// this suite runs under TSan and hammers one instrument from many threads -
// the relaxed-atomic contract says no update is ever lost and no data race
// is ever reported.
TEST(ObsParallelHammerTest, ConcurrentCounterGaugeHistogramLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  MetricsRegistry reg;
  Counter& hits = reg.counter("hammer.hits");
  Gauge& depth = reg.gauge("hammer.depth");
  Histogram& lat = reg.histogram("hammer.latency");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        hits.add();
        depth.add(1);
        lat.observe(static_cast<std::uint64_t>(t * kIters + i));
        depth.sub(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(hits.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(depth.value(), 0);
  EXPECT_EQ(lat.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) bucket_total += lat.bucket(b);
  EXPECT_EQ(bucket_total, lat.count());
}

TEST(ObsParallelHammerTest, ConcurrentInterningYieldsOneInstrumentPerName) {
  constexpr int kThreads = 8;
  MetricsRegistry reg;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter& c = reg.counter("hammer.interned");
      c.add();
      seen[static_cast<std::size_t>(t)] = &c;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  EXPECT_EQ(reg.counter("hammer.interned").value(), static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace optpower::obs
