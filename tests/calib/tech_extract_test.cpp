#include "calib/tech_extract.h"

#include <cmath>

#include <gtest/gtest.h>

#include "spice/testbench.h"
#include "tech/stm_cmos09.h"
#include "util/constants.h"
#include "util/error.h"

namespace optpower {
namespace {

TEST(ExtractSubthreshold, RecoversSyntheticParameters) {
  const double io = 3.34e-6, n = 1.33, vth0 = 0.354, ut = thermal_voltage();
  std::vector<double> vgs, ids;
  for (int i = 0; i <= 12; ++i) {
    const double v = 0.02 + 0.02 * i;
    vgs.push_back(v);
    ids.push_back(io * std::exp((v - vth0) / (n * ut)));
  }
  const auto fit = extract_subthreshold(vgs, ids, vth0, ut);
  EXPECT_NEAR(fit.n, n, 1e-6);
  EXPECT_NEAR(fit.io / io, 1.0, 1e-6);
  EXPECT_LT(fit.rms_log_error, 1e-9);
}

TEST(ExtractSubthreshold, RejectsAboveThresholdSamples) {
  EXPECT_THROW((void)extract_subthreshold({0.1, 0.2, 0.5}, {1e-9, 1e-8, 1e-6}, 0.354,
                                          thermal_voltage()),
               InvalidArgument);
}

TEST(ExtractThresholdMaxGm, FindsKnownThreshold) {
  // Quadratic above vth, zero below: tangent extrapolation hits ~vth + small.
  const double vth = 0.4;
  std::vector<double> vgs, ids;
  for (int i = 0; i <= 40; ++i) {
    const double v = 0.025 * i;
    vgs.push_back(v);
    ids.push_back(v > vth ? (v - vth) * (v - vth) * 1e-3 : 0.0);
  }
  const double extracted = extract_threshold_max_gm(vgs, ids);
  EXPECT_NEAR(extracted, vth, 0.35);  // linear extrapolation overshoots for pure quadratics
  EXPECT_GT(extracted, vth - 0.05);
}

TEST(ExtractDelay, RecoversSyntheticZetaAlpha) {
  const double zeta = 5.5e-12, alpha = 1.86, io = 3.34e-6, n = 1.33, vth0 = 0.354;
  const double ut = thermal_voltage();
  std::vector<double> vdd, tgate;
  for (int i = 0; i <= 10; ++i) {
    const double v = 0.55 + 0.07 * i;
    const double ion = io * std::pow(kEuler * (v - vth0) / (alpha * n * ut), alpha);
    vdd.push_back(v);
    tgate.push_back(zeta * v / ion);
  }
  const auto fit = extract_delay_params(vdd, tgate, io, n, vth0, 0.0, ut);
  EXPECT_NEAR(fit.alpha, alpha, 1e-5);
  EXPECT_NEAR(fit.zeta / zeta, 1.0, 1e-5);
  EXPECT_LT(fit.rms_rel_error, 1e-6);
}

TEST(ExtractDelay, DiblAwareFit) {
  const double zeta = 6.1e-12, alpha = 1.58, io = 7.08e-6, n = 1.33, vth0 = 0.328, eta = 0.08;
  const double ut = thermal_voltage();
  std::vector<double> vdd, tgate;
  for (int i = 0; i <= 10; ++i) {
    const double v = 0.5 + 0.07 * i;
    const double vth = vth0 - eta * v;
    const double ion = io * std::pow(kEuler * (v - vth) / (alpha * n * ut), alpha);
    vdd.push_back(v);
    tgate.push_back(zeta * v / ion);
  }
  const auto fit = extract_delay_params(vdd, tgate, io, n, vth0, eta, ut);
  EXPECT_NEAR(fit.alpha, alpha, 1e-4);
  EXPECT_NEAR(fit.zeta / zeta, 1.0, 1e-4);
}

// --- end-to-end: mini-SPICE measurement -> extraction (Table 2 flow) -------

class FlavorExtraction : public ::testing::TestWithParam<int> {
 protected:
  Technology tech() const { return stm_cmos09_all()[static_cast<std::size_t>(GetParam())]; }
};

TEST_P(FlavorExtraction, RecoversDeviceParametersFromSimulatedSweeps) {
  const Technology t = tech();
  InverterConfig cfg;
  cfg.nmos = t.reference_transistor();

  const auto sub = measure_subthreshold(cfg.nmos, 1.2, 0.02, t.vth0_nom - 0.08, 15);
  const auto subfit = extract_subthreshold(sub.vgs, sub.ids, t.vth0_nom, thermal_voltage());
  EXPECT_NEAR(subfit.n, t.n, 0.03) << t.name;
  EXPECT_NEAR(subfit.io / t.io, 1.0, 0.08) << t.name;

  std::vector<double> supplies;
  for (double v = 0.55; v <= 1.21; v += 0.1) supplies.push_back(v);
  const auto sweep = measure_delay_vs_vdd(cfg, supplies, 5);
  const auto dly =
      extract_delay_params(sweep.vdd, sweep.tgate, subfit.io, subfit.n, t.vth0_nom, 0.0,
                           thermal_voltage());
  // The transient "measurement" includes triode-region and slope effects the
  // pure alpha model lumps into its exponent: 0.12 absolute tolerance.
  EXPECT_NEAR(dly.alpha, t.alpha, 0.12) << t.name;
  EXPECT_GT(dly.zeta, 0.0);
  EXPECT_LT(dly.rms_rel_error, 0.05) << t.name;
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, FlavorExtraction, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace optpower
