// The central reproduction tests: calibrating per-architecture models from
// the published rows and checking that (a) the published working point is
// the model's numerical optimum, and (b) Eq. 13 lands within the paper's
// claimed <3% of the numerical optimum, with the published error magnitudes.
#include "calib/calibrate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "power/closed_form.h"
#include "power/optimum.h"
#include "tech/stm_cmos09.h"
#include "util/error.h"

namespace optpower {
namespace {

class Table1Calibration : public ::testing::TestWithParam<int> {
 protected:
  const Table1Row& row() const { return paper_table1()[static_cast<std::size_t>(GetParam())]; }
};

TEST_P(Table1Calibration, RoundTripsPublishedPowersExactly) {
  const Table1Row& r = row();
  const CalibratedModel cal = calibrate_from_table1_row(r, stm_cmos09_ll());
  // By construction the calibrated model reproduces the published row at the
  // published voltages.
  EXPECT_NEAR(cal.model.dynamic_power(r.vdd_opt, kPaperFrequency) / r.pdyn, 1.0, 1e-10);
  EXPECT_NEAR(cal.model.static_power(r.vdd_opt, r.vth_opt) / r.pstat, 1.0, 1e-10);
  EXPECT_NEAR(cal.model.vth_on_constraint(r.vdd_opt, kPaperFrequency), r.vth_opt, 1e-10);
}

TEST_P(Table1Calibration, PublishedPointIsTheNumericalOptimum) {
  // NOT true by construction: optimality is a prediction of the calibration.
  const Table1Row& r = row();
  const CalibratedModel cal = calibrate_from_table1_row(r, stm_cmos09_ll());
  const OptimumResult opt = find_optimum(cal.model, kPaperFrequency);
  EXPECT_NEAR(opt.point.vdd, r.vdd_opt, 0.004) << r.name;
  EXPECT_NEAR(opt.point.vth, r.vth_opt, 0.003) << r.name;
  EXPECT_NEAR(opt.point.ptot / r.ptot, 1.0, 0.002) << r.name;
  // The dyn/stat split is exponentially sensitive to the mV-level Vdd shift
  // between our optimizer and the paper's grid, hence the looser 5%.
  EXPECT_NEAR(opt.point.pdyn / r.pdyn, 1.0, 0.05) << r.name;
  EXPECT_NEAR(opt.point.pstat / r.pstat, 1.0, 0.05) << r.name;
}

TEST_P(Table1Calibration, Eq13WithinPaperToleranceAndSign) {
  const Table1Row& r = row();
  const CalibratedModel cal = calibrate_from_table1_row(r, stm_cmos09_ll());
  const OptimumResult opt = find_optimum(cal.model, kPaperFrequency);
  // The paper evaluates Eq. 13 with its published A/B fit.
  Linearization lin;
  lin.a = paper_model_constants().lin_a;
  lin.b = paper_model_constants().lin_b;
  lin.alpha = cal.model.tech().alpha;
  lin.lo = 0.3;
  lin.hi = 1.0;
  const ClosedFormResult cf = closed_form_optimum(cal.model, kPaperFrequency, lin);
  ASSERT_TRUE(cf.valid) << r.name;
  // Headline claim: |error| < 3% (we allow 3.2% for calibration slack).
  const double err_pct = (opt.point.ptot - cf.ptot_eq13) / opt.point.ptot * 100.0;
  EXPECT_LT(std::fabs(err_pct), 3.2) << r.name;
  // Our Eq. 13 value must sit close to the paper's published Eq. 13 value.
  EXPECT_NEAR(cf.ptot_eq13 / r.ptot_eq13, 1.0, 0.01) << r.name;
  // And the error sign must match the paper's reported sign.
  if (std::fabs(r.eq13_err_pct) > 0.3) {
    EXPECT_GT(err_pct * r.eq13_err_pct, 0.0)
        << r.name << ": our err " << err_pct << "% vs paper " << r.eq13_err_pct << "%";
  }
}

TEST_P(Table1Calibration, InferredParametersArePhysical) {
  const Table1Row& r = row();
  const CalibratedModel cal = calibrate_from_table1_row(r, stm_cmos09_ll());
  EXPECT_GT(cal.cell_cap, 5e-15) << r.name;    // > 5 fF per average cell
  EXPECT_LT(cal.cell_cap, 500e-15) << r.name;  // < 500 fF
  EXPECT_GT(cal.io_eff, 1e-7) << r.name;
  EXPECT_LT(cal.io_eff, 1e-3) << r.name;
  EXPECT_GT(cal.zeta_eff, 1e-14) << r.name;
  EXPECT_LT(cal.zeta_eff, 1e-9) << r.name;
  EXPECT_GT(cal.chi, 0.0) << r.name;
  EXPECT_LT(cal.chi * 0.671, 1.0) << r.name;  // Eq. 13 validity: chi*A < 1
}

INSTANTIATE_TEST_SUITE_P(AllThirteenMultipliers, Table1Calibration,
                         ::testing::Range(0, 13));

// ---------------------------------------------------------------------------

struct FlavorCase {
  const char* table;
  int index;
};

class FlavorCalibration : public ::testing::TestWithParam<FlavorCase> {
 protected:
  const WallaceFlavorRow& row() const {
    const auto& rows = std::string(GetParam().table) == "ULL" ? paper_table3_ull()
                                                              : paper_table4_hs();
    return rows[static_cast<std::size_t>(GetParam().index)];
  }
  Technology tech() const {
    return std::string(GetParam().table) == "ULL" ? stm_cmos09_ull() : stm_cmos09_hs();
  }
};

TEST_P(FlavorCalibration, ReproducesPublishedOptimum) {
  const WallaceFlavorRow& r = row();
  const auto structure = find_table1_row(r.name);
  ASSERT_TRUE(structure.has_value());
  const CalibratedModel cal = calibrate_from_optimum(r, *structure, tech());
  const OptimumResult opt = find_optimum(cal.model, kPaperFrequency);
  EXPECT_NEAR(opt.point.vdd, r.vdd_opt, 0.004) << r.name;
  EXPECT_NEAR(opt.point.vth, r.vth_opt, 0.003) << r.name;
  EXPECT_NEAR(opt.point.ptot / r.ptot, 1.0, 0.002) << r.name;
}

TEST_P(FlavorCalibration, Eq13WithinToleranceUsingFlavorLinearization) {
  const WallaceFlavorRow& r = row();
  const auto structure = find_table1_row(r.name);
  ASSERT_TRUE(structure.has_value());
  const Technology t = tech();
  const CalibratedModel cal = calibrate_from_optimum(r, *structure, t);
  const Linearization lin = linearize_vdd_root(t.alpha, 0.3, 1.0);
  const ClosedFormResult cf = closed_form_optimum(cal.model, kPaperFrequency, lin);
  ASSERT_TRUE(cf.valid);
  const OptimumResult opt = find_optimum(cal.model, kPaperFrequency);
  const double err_pct = (opt.point.ptot - cf.ptot_eq13) / opt.point.ptot * 100.0;
  EXPECT_LT(std::fabs(err_pct), 3.0) << r.name;
  EXPECT_NEAR(cf.ptot_eq13 / r.ptot_eq13, 1.0, 0.01) << r.name;
}

INSTANTIATE_TEST_SUITE_P(WallaceFamilies, FlavorCalibration,
                         ::testing::Values(FlavorCase{"ULL", 0}, FlavorCase{"ULL", 1},
                                           FlavorCase{"ULL", 2}, FlavorCase{"HS", 0},
                                           FlavorCase{"HS", 1}, FlavorCase{"HS", 2}));

// ---------------------------------------------------------------------------

TEST(CalibrateHelpers, ChiFromPublishedPointInvertsEq5) {
  const Technology ll = stm_cmos09_ll();
  const double vdd = 0.478, vth = 0.213;
  const double chi = chi_from_published_point(vdd, vth, ll);
  EXPECT_NEAR(vdd - chi * std::pow(vdd, 1.0 / ll.alpha), vth, 1e-12);
}

TEST(CalibrateHelpers, ZetaFromChiInvertsEq6) {
  const Technology ll = stm_cmos09_ll();
  const double chi = 0.394, io = 6e-5, ld = 61.0;
  const double zeta = zeta_from_chi(chi, io, ld, kPaperFrequency, ll);
  // Recompute chi via Eq. 6 and compare.
  const double chi_back = (ll.alpha * ll.n_ut() / 2.718281828459045) *
                          std::pow(zeta * ld * kPaperFrequency / io, 1.0 / ll.alpha);
  EXPECT_NEAR(chi_back / chi, 1.0, 1e-12);
}

TEST(CalibrateHelpers, RejectsNonsensePoints) {
  const Technology ll = stm_cmos09_ll();
  EXPECT_THROW((void)chi_from_published_point(0.5, 0.6, ll), InvalidArgument);
  EXPECT_THROW((void)zeta_from_chi(-1.0, 1e-6, 10.0, 1e6, ll), InvalidArgument);
}

TEST(CalibrateErrors, RowWithZeroPowerRejected) {
  Table1Row bad = paper_table1()[0];
  bad.pstat = 0.0;
  EXPECT_THROW((void)calibrate_from_table1_row(bad, stm_cmos09_ll()), InvalidArgument);
}

TEST(WallaceParallelizationCrossover, HsPenalizesParallelUllRewardsIt) {
  // Section 5's key qualitative finding, checked end-to-end on our
  // calibrated models: on HS, Wallace parallel consumes MORE than basic
  // Wallace; on ULL (and LL) it consumes LESS.
  const auto structure0 = *find_table1_row("Wallace");
  const auto structure1 = *find_table1_row("Wallace parallel");

  const auto hs0 = calibrate_from_optimum(paper_table4_hs()[0], structure0, stm_cmos09_hs());
  const auto hs1 = calibrate_from_optimum(paper_table4_hs()[1], structure1, stm_cmos09_hs());
  EXPECT_GT(find_optimum(hs1.model, kPaperFrequency).point.ptot,
            find_optimum(hs0.model, kPaperFrequency).point.ptot);

  const auto ull0 = calibrate_from_optimum(paper_table3_ull()[0], structure0, stm_cmos09_ull());
  const auto ull1 = calibrate_from_optimum(paper_table3_ull()[1], structure1, stm_cmos09_ull());
  EXPECT_LT(find_optimum(ull1.model, kPaperFrequency).point.ptot,
            find_optimum(ull0.model, kPaperFrequency).point.ptot);
}

TEST(FlavorOrdering, LlBeatsUllAndHsForWholeWallaceFamily) {
  // "the technology presenting the lowest optimal power consumption is the
  // LL, showing that extreme technology flavors (ULL and HS) are penalized".
  for (std::size_t i = 0; i < 3; ++i) {
    const double ll = paper_table1()[7 + i].ptot;       // Wallace rows of Table 1
    const double ull = paper_table3_ull()[i].ptot;
    const double hs = paper_table4_hs()[i].ptot;
    EXPECT_LT(ll, ull);
    EXPECT_LT(ll, hs);
    EXPECT_LT(ull, hs);  // additional published ordering
  }
}

}  // namespace
}  // namespace optpower
